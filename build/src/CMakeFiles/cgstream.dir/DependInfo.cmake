
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/dash_video.cpp" "src/CMakeFiles/cgstream.dir/apps/dash_video.cpp.o" "gcc" "src/CMakeFiles/cgstream.dir/apps/dash_video.cpp.o.d"
  "/root/repo/src/core/aggregate.cpp" "src/CMakeFiles/cgstream.dir/core/aggregate.cpp.o" "gcc" "src/CMakeFiles/cgstream.dir/core/aggregate.cpp.o.d"
  "/root/repo/src/core/collectors.cpp" "src/CMakeFiles/cgstream.dir/core/collectors.cpp.o" "gcc" "src/CMakeFiles/cgstream.dir/core/collectors.cpp.o.d"
  "/root/repo/src/core/metrics.cpp" "src/CMakeFiles/cgstream.dir/core/metrics.cpp.o" "gcc" "src/CMakeFiles/cgstream.dir/core/metrics.cpp.o.d"
  "/root/repo/src/core/ping.cpp" "src/CMakeFiles/cgstream.dir/core/ping.cpp.o" "gcc" "src/CMakeFiles/cgstream.dir/core/ping.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/CMakeFiles/cgstream.dir/core/report.cpp.o" "gcc" "src/CMakeFiles/cgstream.dir/core/report.cpp.o.d"
  "/root/repo/src/core/runner.cpp" "src/CMakeFiles/cgstream.dir/core/runner.cpp.o" "gcc" "src/CMakeFiles/cgstream.dir/core/runner.cpp.o.d"
  "/root/repo/src/core/scenario.cpp" "src/CMakeFiles/cgstream.dir/core/scenario.cpp.o" "gcc" "src/CMakeFiles/cgstream.dir/core/scenario.cpp.o.d"
  "/root/repo/src/core/testbed.cpp" "src/CMakeFiles/cgstream.dir/core/testbed.cpp.o" "gcc" "src/CMakeFiles/cgstream.dir/core/testbed.cpp.o.d"
  "/root/repo/src/core/tracelog.cpp" "src/CMakeFiles/cgstream.dir/core/tracelog.cpp.o" "gcc" "src/CMakeFiles/cgstream.dir/core/tracelog.cpp.o.d"
  "/root/repo/src/net/codel.cpp" "src/CMakeFiles/cgstream.dir/net/codel.cpp.o" "gcc" "src/CMakeFiles/cgstream.dir/net/codel.cpp.o.d"
  "/root/repo/src/net/link.cpp" "src/CMakeFiles/cgstream.dir/net/link.cpp.o" "gcc" "src/CMakeFiles/cgstream.dir/net/link.cpp.o.d"
  "/root/repo/src/net/packet.cpp" "src/CMakeFiles/cgstream.dir/net/packet.cpp.o" "gcc" "src/CMakeFiles/cgstream.dir/net/packet.cpp.o.d"
  "/root/repo/src/net/queue.cpp" "src/CMakeFiles/cgstream.dir/net/queue.cpp.o" "gcc" "src/CMakeFiles/cgstream.dir/net/queue.cpp.o.d"
  "/root/repo/src/net/router.cpp" "src/CMakeFiles/cgstream.dir/net/router.cpp.o" "gcc" "src/CMakeFiles/cgstream.dir/net/router.cpp.o.d"
  "/root/repo/src/net/sniffer.cpp" "src/CMakeFiles/cgstream.dir/net/sniffer.cpp.o" "gcc" "src/CMakeFiles/cgstream.dir/net/sniffer.cpp.o.d"
  "/root/repo/src/sim/event_queue.cpp" "src/CMakeFiles/cgstream.dir/sim/event_queue.cpp.o" "gcc" "src/CMakeFiles/cgstream.dir/sim/event_queue.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/CMakeFiles/cgstream.dir/sim/simulator.cpp.o" "gcc" "src/CMakeFiles/cgstream.dir/sim/simulator.cpp.o.d"
  "/root/repo/src/sim/timer.cpp" "src/CMakeFiles/cgstream.dir/sim/timer.cpp.o" "gcc" "src/CMakeFiles/cgstream.dir/sim/timer.cpp.o.d"
  "/root/repo/src/stream/controllers/geforce_like.cpp" "src/CMakeFiles/cgstream.dir/stream/controllers/geforce_like.cpp.o" "gcc" "src/CMakeFiles/cgstream.dir/stream/controllers/geforce_like.cpp.o.d"
  "/root/repo/src/stream/controllers/luna_like.cpp" "src/CMakeFiles/cgstream.dir/stream/controllers/luna_like.cpp.o" "gcc" "src/CMakeFiles/cgstream.dir/stream/controllers/luna_like.cpp.o.d"
  "/root/repo/src/stream/controllers/stadia_like.cpp" "src/CMakeFiles/cgstream.dir/stream/controllers/stadia_like.cpp.o" "gcc" "src/CMakeFiles/cgstream.dir/stream/controllers/stadia_like.cpp.o.d"
  "/root/repo/src/stream/display.cpp" "src/CMakeFiles/cgstream.dir/stream/display.cpp.o" "gcc" "src/CMakeFiles/cgstream.dir/stream/display.cpp.o.d"
  "/root/repo/src/stream/frame_source.cpp" "src/CMakeFiles/cgstream.dir/stream/frame_source.cpp.o" "gcc" "src/CMakeFiles/cgstream.dir/stream/frame_source.cpp.o.d"
  "/root/repo/src/stream/packetizer.cpp" "src/CMakeFiles/cgstream.dir/stream/packetizer.cpp.o" "gcc" "src/CMakeFiles/cgstream.dir/stream/packetizer.cpp.o.d"
  "/root/repo/src/stream/profiles.cpp" "src/CMakeFiles/cgstream.dir/stream/profiles.cpp.o" "gcc" "src/CMakeFiles/cgstream.dir/stream/profiles.cpp.o.d"
  "/root/repo/src/stream/receiver.cpp" "src/CMakeFiles/cgstream.dir/stream/receiver.cpp.o" "gcc" "src/CMakeFiles/cgstream.dir/stream/receiver.cpp.o.d"
  "/root/repo/src/stream/sender.cpp" "src/CMakeFiles/cgstream.dir/stream/sender.cpp.o" "gcc" "src/CMakeFiles/cgstream.dir/stream/sender.cpp.o.d"
  "/root/repo/src/tcp/bbr.cpp" "src/CMakeFiles/cgstream.dir/tcp/bbr.cpp.o" "gcc" "src/CMakeFiles/cgstream.dir/tcp/bbr.cpp.o.d"
  "/root/repo/src/tcp/bulk_app.cpp" "src/CMakeFiles/cgstream.dir/tcp/bulk_app.cpp.o" "gcc" "src/CMakeFiles/cgstream.dir/tcp/bulk_app.cpp.o.d"
  "/root/repo/src/tcp/cubic.cpp" "src/CMakeFiles/cgstream.dir/tcp/cubic.cpp.o" "gcc" "src/CMakeFiles/cgstream.dir/tcp/cubic.cpp.o.d"
  "/root/repo/src/tcp/rate_sampler.cpp" "src/CMakeFiles/cgstream.dir/tcp/rate_sampler.cpp.o" "gcc" "src/CMakeFiles/cgstream.dir/tcp/rate_sampler.cpp.o.d"
  "/root/repo/src/tcp/reno.cpp" "src/CMakeFiles/cgstream.dir/tcp/reno.cpp.o" "gcc" "src/CMakeFiles/cgstream.dir/tcp/reno.cpp.o.d"
  "/root/repo/src/tcp/rtt_estimator.cpp" "src/CMakeFiles/cgstream.dir/tcp/rtt_estimator.cpp.o" "gcc" "src/CMakeFiles/cgstream.dir/tcp/rtt_estimator.cpp.o.d"
  "/root/repo/src/tcp/tcp_receiver.cpp" "src/CMakeFiles/cgstream.dir/tcp/tcp_receiver.cpp.o" "gcc" "src/CMakeFiles/cgstream.dir/tcp/tcp_receiver.cpp.o.d"
  "/root/repo/src/tcp/tcp_sender.cpp" "src/CMakeFiles/cgstream.dir/tcp/tcp_sender.cpp.o" "gcc" "src/CMakeFiles/cgstream.dir/tcp/tcp_sender.cpp.o.d"
  "/root/repo/src/tcp/vegas.cpp" "src/CMakeFiles/cgstream.dir/tcp/vegas.cpp.o" "gcc" "src/CMakeFiles/cgstream.dir/tcp/vegas.cpp.o.d"
  "/root/repo/src/util/csv.cpp" "src/CMakeFiles/cgstream.dir/util/csv.cpp.o" "gcc" "src/CMakeFiles/cgstream.dir/util/csv.cpp.o.d"
  "/root/repo/src/util/logging.cpp" "src/CMakeFiles/cgstream.dir/util/logging.cpp.o" "gcc" "src/CMakeFiles/cgstream.dir/util/logging.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "src/CMakeFiles/cgstream.dir/util/stats.cpp.o" "gcc" "src/CMakeFiles/cgstream.dir/util/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
