file(REMOVE_RECURSE
  "libcgstream.a"
)
