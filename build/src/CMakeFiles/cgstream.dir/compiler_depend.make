# Empty compiler generated dependencies file for cgstream.
# This may be replaced when dependencies are built.
