# Empty dependencies file for bufferbloat_study.
# This may be replaced when dependencies are built.
