file(REMOVE_RECURSE
  "CMakeFiles/bufferbloat_study.dir/bufferbloat_study.cpp.o"
  "CMakeFiles/bufferbloat_study.dir/bufferbloat_study.cpp.o.d"
  "bufferbloat_study"
  "bufferbloat_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bufferbloat_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
