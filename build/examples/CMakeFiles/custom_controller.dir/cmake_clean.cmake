file(REMOVE_RECURSE
  "CMakeFiles/custom_controller.dir/custom_controller.cpp.o"
  "CMakeFiles/custom_controller.dir/custom_controller.cpp.o.d"
  "custom_controller"
  "custom_controller.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_controller.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
