# Empty dependencies file for custom_controller.
# This may be replaced when dependencies are built.
