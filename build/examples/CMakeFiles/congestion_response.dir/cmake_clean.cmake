file(REMOVE_RECURSE
  "CMakeFiles/congestion_response.dir/congestion_response.cpp.o"
  "CMakeFiles/congestion_response.dir/congestion_response.cpp.o.d"
  "congestion_response"
  "congestion_response.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/congestion_response.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
