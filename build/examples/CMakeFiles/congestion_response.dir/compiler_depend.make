# Empty compiler generated dependencies file for congestion_response.
# This may be replaced when dependencies are built.
