file(REMOVE_RECURSE
  "CMakeFiles/tcp_e2e_test.dir/tcp/tcp_e2e_test.cpp.o"
  "CMakeFiles/tcp_e2e_test.dir/tcp/tcp_e2e_test.cpp.o.d"
  "tcp_e2e_test"
  "tcp_e2e_test.pdb"
  "tcp_e2e_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcp_e2e_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
