# Empty compiler generated dependencies file for codel_test.
# This may be replaced when dependencies are built.
