file(REMOVE_RECURSE
  "CMakeFiles/codel_test.dir/net/codel_test.cpp.o"
  "CMakeFiles/codel_test.dir/net/codel_test.cpp.o.d"
  "codel_test"
  "codel_test.pdb"
  "codel_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/codel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
