# Empty dependencies file for rtt_estimator_test.
# This may be replaced when dependencies are built.
