file(REMOVE_RECURSE
  "CMakeFiles/rtt_estimator_test.dir/tcp/rtt_estimator_test.cpp.o"
  "CMakeFiles/rtt_estimator_test.dir/tcp/rtt_estimator_test.cpp.o.d"
  "rtt_estimator_test"
  "rtt_estimator_test.pdb"
  "rtt_estimator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtt_estimator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
