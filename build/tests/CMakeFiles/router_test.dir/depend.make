# Empty dependencies file for router_test.
# This may be replaced when dependencies are built.
