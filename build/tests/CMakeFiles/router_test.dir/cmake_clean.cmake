file(REMOVE_RECURSE
  "CMakeFiles/router_test.dir/net/router_test.cpp.o"
  "CMakeFiles/router_test.dir/net/router_test.cpp.o.d"
  "router_test"
  "router_test.pdb"
  "router_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/router_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
