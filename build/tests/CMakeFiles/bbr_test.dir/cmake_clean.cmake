file(REMOVE_RECURSE
  "CMakeFiles/bbr_test.dir/tcp/bbr_test.cpp.o"
  "CMakeFiles/bbr_test.dir/tcp/bbr_test.cpp.o.d"
  "bbr_test"
  "bbr_test.pdb"
  "bbr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bbr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
