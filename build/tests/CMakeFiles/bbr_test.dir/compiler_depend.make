# Empty compiler generated dependencies file for bbr_test.
# This may be replaced when dependencies are built.
