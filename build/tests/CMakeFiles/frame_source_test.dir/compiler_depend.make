# Empty compiler generated dependencies file for frame_source_test.
# This may be replaced when dependencies are built.
