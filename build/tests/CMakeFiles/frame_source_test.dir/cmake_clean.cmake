file(REMOVE_RECURSE
  "CMakeFiles/frame_source_test.dir/stream/frame_source_test.cpp.o"
  "CMakeFiles/frame_source_test.dir/stream/frame_source_test.cpp.o.d"
  "frame_source_test"
  "frame_source_test.pdb"
  "frame_source_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/frame_source_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
