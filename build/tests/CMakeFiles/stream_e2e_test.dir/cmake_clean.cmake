file(REMOVE_RECURSE
  "CMakeFiles/stream_e2e_test.dir/stream/stream_e2e_test.cpp.o"
  "CMakeFiles/stream_e2e_test.dir/stream/stream_e2e_test.cpp.o.d"
  "stream_e2e_test"
  "stream_e2e_test.pdb"
  "stream_e2e_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stream_e2e_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
