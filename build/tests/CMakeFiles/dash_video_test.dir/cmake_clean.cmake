file(REMOVE_RECURSE
  "CMakeFiles/dash_video_test.dir/apps/dash_video_test.cpp.o"
  "CMakeFiles/dash_video_test.dir/apps/dash_video_test.cpp.o.d"
  "dash_video_test"
  "dash_video_test.pdb"
  "dash_video_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dash_video_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
