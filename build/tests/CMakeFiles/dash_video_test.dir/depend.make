# Empty dependencies file for dash_video_test.
# This may be replaced when dependencies are built.
