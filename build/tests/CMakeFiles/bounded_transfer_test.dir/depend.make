# Empty dependencies file for bounded_transfer_test.
# This may be replaced when dependencies are built.
