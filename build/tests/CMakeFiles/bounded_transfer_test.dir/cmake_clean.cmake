file(REMOVE_RECURSE
  "CMakeFiles/bounded_transfer_test.dir/tcp/bounded_transfer_test.cpp.o"
  "CMakeFiles/bounded_transfer_test.dir/tcp/bounded_transfer_test.cpp.o.d"
  "bounded_transfer_test"
  "bounded_transfer_test.pdb"
  "bounded_transfer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bounded_transfer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
