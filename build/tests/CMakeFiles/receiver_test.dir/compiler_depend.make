# Empty compiler generated dependencies file for receiver_test.
# This may be replaced when dependencies are built.
