file(REMOVE_RECURSE
  "CMakeFiles/receiver_test.dir/stream/receiver_test.cpp.o"
  "CMakeFiles/receiver_test.dir/stream/receiver_test.cpp.o.d"
  "receiver_test"
  "receiver_test.pdb"
  "receiver_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/receiver_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
