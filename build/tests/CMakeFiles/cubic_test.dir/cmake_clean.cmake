file(REMOVE_RECURSE
  "CMakeFiles/cubic_test.dir/tcp/cubic_test.cpp.o"
  "CMakeFiles/cubic_test.dir/tcp/cubic_test.cpp.o.d"
  "cubic_test"
  "cubic_test.pdb"
  "cubic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cubic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
