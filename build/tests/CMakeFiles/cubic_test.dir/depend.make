# Empty dependencies file for cubic_test.
# This may be replaced when dependencies are built.
