file(REMOVE_RECURSE
  "CMakeFiles/rate_sampler_test.dir/tcp/rate_sampler_test.cpp.o"
  "CMakeFiles/rate_sampler_test.dir/tcp/rate_sampler_test.cpp.o.d"
  "rate_sampler_test"
  "rate_sampler_test.pdb"
  "rate_sampler_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rate_sampler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
