# Empty compiler generated dependencies file for rate_sampler_test.
# This may be replaced when dependencies are built.
