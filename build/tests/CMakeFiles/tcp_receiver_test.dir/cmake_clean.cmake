file(REMOVE_RECURSE
  "CMakeFiles/tcp_receiver_test.dir/tcp/tcp_receiver_test.cpp.o"
  "CMakeFiles/tcp_receiver_test.dir/tcp/tcp_receiver_test.cpp.o.d"
  "tcp_receiver_test"
  "tcp_receiver_test.pdb"
  "tcp_receiver_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcp_receiver_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
