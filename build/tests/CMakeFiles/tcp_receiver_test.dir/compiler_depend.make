# Empty compiler generated dependencies file for tcp_receiver_test.
# This may be replaced when dependencies are built.
