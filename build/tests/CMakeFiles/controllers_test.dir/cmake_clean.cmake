file(REMOVE_RECURSE
  "CMakeFiles/controllers_test.dir/stream/controllers_test.cpp.o"
  "CMakeFiles/controllers_test.dir/stream/controllers_test.cpp.o.d"
  "controllers_test"
  "controllers_test.pdb"
  "controllers_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/controllers_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
