# Empty dependencies file for controllers_test.
# This may be replaced when dependencies are built.
