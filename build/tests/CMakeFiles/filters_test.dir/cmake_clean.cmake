file(REMOVE_RECURSE
  "CMakeFiles/filters_test.dir/util/filters_test.cpp.o"
  "CMakeFiles/filters_test.dir/util/filters_test.cpp.o.d"
  "filters_test"
  "filters_test.pdb"
  "filters_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/filters_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
