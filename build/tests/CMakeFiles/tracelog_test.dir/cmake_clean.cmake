file(REMOVE_RECURSE
  "CMakeFiles/tracelog_test.dir/core/tracelog_test.cpp.o"
  "CMakeFiles/tracelog_test.dir/core/tracelog_test.cpp.o.d"
  "tracelog_test"
  "tracelog_test.pdb"
  "tracelog_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tracelog_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
