# Empty compiler generated dependencies file for tracelog_test.
# This may be replaced when dependencies are built.
