# Empty dependencies file for reno_vegas_test.
# This may be replaced when dependencies are built.
