file(REMOVE_RECURSE
  "CMakeFiles/reno_vegas_test.dir/tcp/reno_vegas_test.cpp.o"
  "CMakeFiles/reno_vegas_test.dir/tcp/reno_vegas_test.cpp.o.d"
  "reno_vegas_test"
  "reno_vegas_test.pdb"
  "reno_vegas_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reno_vegas_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
