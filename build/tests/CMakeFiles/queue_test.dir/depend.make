# Empty dependencies file for queue_test.
# This may be replaced when dependencies are built.
