file(REMOVE_RECURSE
  "CMakeFiles/queue_test.dir/net/queue_test.cpp.o"
  "CMakeFiles/queue_test.dir/net/queue_test.cpp.o.d"
  "queue_test"
  "queue_test.pdb"
  "queue_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/queue_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
