# Empty dependencies file for paper_shape_test.
# This may be replaced when dependencies are built.
