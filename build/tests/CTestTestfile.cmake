# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/units_test[1]_include.cmake")
include("/root/repo/build/tests/rng_test[1]_include.cmake")
include("/root/repo/build/tests/filters_test[1]_include.cmake")
include("/root/repo/build/tests/stats_test[1]_include.cmake")
include("/root/repo/build/tests/simulator_test[1]_include.cmake")
include("/root/repo/build/tests/queue_test[1]_include.cmake")
include("/root/repo/build/tests/link_test[1]_include.cmake")
include("/root/repo/build/tests/codel_test[1]_include.cmake")
include("/root/repo/build/tests/rtt_estimator_test[1]_include.cmake")
include("/root/repo/build/tests/rate_sampler_test[1]_include.cmake")
include("/root/repo/build/tests/cubic_test[1]_include.cmake")
include("/root/repo/build/tests/bbr_test[1]_include.cmake")
include("/root/repo/build/tests/tcp_receiver_test[1]_include.cmake")
include("/root/repo/build/tests/tcp_e2e_test[1]_include.cmake")
include("/root/repo/build/tests/frame_source_test[1]_include.cmake")
include("/root/repo/build/tests/controllers_test[1]_include.cmake")
include("/root/repo/build/tests/stream_e2e_test[1]_include.cmake")
include("/root/repo/build/tests/metrics_test[1]_include.cmake")
include("/root/repo/build/tests/report_test[1]_include.cmake")
include("/root/repo/build/tests/testbed_test[1]_include.cmake")
include("/root/repo/build/tests/dash_video_test[1]_include.cmake")
include("/root/repo/build/tests/bounded_transfer_test[1]_include.cmake")
include("/root/repo/build/tests/invariants_test[1]_include.cmake")
include("/root/repo/build/tests/reno_vegas_test[1]_include.cmake")
include("/root/repo/build/tests/router_test[1]_include.cmake")
include("/root/repo/build/tests/tracelog_test[1]_include.cmake")
include("/root/repo/build/tests/paper_shape_test[1]_include.cmake")
include("/root/repo/build/tests/receiver_test[1]_include.cmake")
