# Empty compiler generated dependencies file for ext_harm.
# This may be replaced when dependencies are built.
