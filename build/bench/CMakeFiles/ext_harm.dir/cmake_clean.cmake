file(REMOVE_RECURSE
  "CMakeFiles/ext_harm.dir/ext_harm.cpp.o"
  "CMakeFiles/ext_harm.dir/ext_harm.cpp.o.d"
  "ext_harm"
  "ext_harm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_harm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
