# Empty dependencies file for table3_rtt_solo.
# This may be replaced when dependencies are built.
