file(REMOVE_RECURSE
  "CMakeFiles/table3_rtt_solo.dir/table3_rtt_solo.cpp.o"
  "CMakeFiles/table3_rtt_solo.dir/table3_rtt_solo.cpp.o.d"
  "table3_rtt_solo"
  "table3_rtt_solo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_rtt_solo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
