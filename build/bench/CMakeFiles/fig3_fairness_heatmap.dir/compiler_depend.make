# Empty compiler generated dependencies file for fig3_fairness_heatmap.
# This may be replaced when dependencies are built.
