file(REMOVE_RECURSE
  "CMakeFiles/fig3_fairness_heatmap.dir/fig3_fairness_heatmap.cpp.o"
  "CMakeFiles/fig3_fairness_heatmap.dir/fig3_fairness_heatmap.cpp.o.d"
  "fig3_fairness_heatmap"
  "fig3_fairness_heatmap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_fairness_heatmap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
