# Empty dependencies file for fig4_adaptiveness_fairness.
# This may be replaced when dependencies are built.
