file(REMOVE_RECURSE
  "CMakeFiles/fig4_adaptiveness_fairness.dir/fig4_adaptiveness_fairness.cpp.o"
  "CMakeFiles/fig4_adaptiveness_fairness.dir/fig4_adaptiveness_fairness.cpp.o.d"
  "fig4_adaptiveness_fairness"
  "fig4_adaptiveness_fairness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_adaptiveness_fairness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
