file(REMOVE_RECURSE
  "CMakeFiles/perf_simcore.dir/perf_simcore.cpp.o"
  "CMakeFiles/perf_simcore.dir/perf_simcore.cpp.o.d"
  "perf_simcore"
  "perf_simcore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_simcore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
