# Empty compiler generated dependencies file for perf_simcore.
# This may be replaced when dependencies are built.
