# Empty compiler generated dependencies file for ablation_controller.
# This may be replaced when dependencies are built.
