file(REMOVE_RECURSE
  "CMakeFiles/fig2_bitrate_timeseries.dir/fig2_bitrate_timeseries.cpp.o"
  "CMakeFiles/fig2_bitrate_timeseries.dir/fig2_bitrate_timeseries.cpp.o.d"
  "fig2_bitrate_timeseries"
  "fig2_bitrate_timeseries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_bitrate_timeseries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
