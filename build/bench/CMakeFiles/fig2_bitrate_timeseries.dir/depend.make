# Empty dependencies file for fig2_bitrate_timeseries.
# This may be replaced when dependencies are built.
