file(REMOVE_RECURSE
  "CMakeFiles/table4_rtt_competing.dir/table4_rtt_competing.cpp.o"
  "CMakeFiles/table4_rtt_competing.dir/table4_rtt_competing.cpp.o.d"
  "table4_rtt_competing"
  "table4_rtt_competing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_rtt_competing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
