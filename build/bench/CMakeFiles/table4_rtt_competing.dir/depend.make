# Empty dependencies file for table4_rtt_competing.
# This may be replaced when dependencies are built.
