# Empty compiler generated dependencies file for ablation_tcp_vs_tcp.
# This may be replaced when dependencies are built.
