file(REMOVE_RECURSE
  "CMakeFiles/ablation_tcp_vs_tcp.dir/ablation_tcp_vs_tcp.cpp.o"
  "CMakeFiles/ablation_tcp_vs_tcp.dir/ablation_tcp_vs_tcp.cpp.o.d"
  "ablation_tcp_vs_tcp"
  "ablation_tcp_vs_tcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_tcp_vs_tcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
