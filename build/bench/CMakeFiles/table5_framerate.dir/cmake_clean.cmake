file(REMOVE_RECURSE
  "CMakeFiles/table5_framerate.dir/table5_framerate.cpp.o"
  "CMakeFiles/table5_framerate.dir/table5_framerate.cpp.o.d"
  "table5_framerate"
  "table5_framerate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_framerate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
