# Empty compiler generated dependencies file for table5_framerate.
# This may be replaced when dependencies are built.
