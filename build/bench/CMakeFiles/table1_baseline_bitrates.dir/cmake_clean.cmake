file(REMOVE_RECURSE
  "CMakeFiles/table1_baseline_bitrates.dir/table1_baseline_bitrates.cpp.o"
  "CMakeFiles/table1_baseline_bitrates.dir/table1_baseline_bitrates.cpp.o.d"
  "table1_baseline_bitrates"
  "table1_baseline_bitrates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_baseline_bitrates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
