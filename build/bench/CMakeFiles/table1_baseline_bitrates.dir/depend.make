# Empty dependencies file for table1_baseline_bitrates.
# This may be replaced when dependencies are built.
