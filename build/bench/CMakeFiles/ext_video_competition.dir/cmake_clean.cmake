file(REMOVE_RECURSE
  "CMakeFiles/ext_video_competition.dir/ext_video_competition.cpp.o"
  "CMakeFiles/ext_video_competition.dir/ext_video_competition.cpp.o.d"
  "ext_video_competition"
  "ext_video_competition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_video_competition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
