# Empty dependencies file for ext_video_competition.
# This may be replaced when dependencies are built.
