file(REMOVE_RECURSE
  "CMakeFiles/ext_multiflow.dir/ext_multiflow.cpp.o"
  "CMakeFiles/ext_multiflow.dir/ext_multiflow.cpp.o.d"
  "ext_multiflow"
  "ext_multiflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_multiflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
