# Empty dependencies file for ext_multiflow.
# This may be replaced when dependencies are built.
