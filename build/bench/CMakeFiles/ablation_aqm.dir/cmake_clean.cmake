file(REMOVE_RECURSE
  "CMakeFiles/ablation_aqm.dir/ablation_aqm.cpp.o"
  "CMakeFiles/ablation_aqm.dir/ablation_aqm.cpp.o.d"
  "ablation_aqm"
  "ablation_aqm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_aqm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
