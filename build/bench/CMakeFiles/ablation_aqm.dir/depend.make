# Empty dependencies file for ablation_aqm.
# This may be replaced when dependencies are built.
