// cgs-sweepd: crash-tolerant sweep-as-a-service daemon.
//
// Runs the svc::Server on a loopback TCP port: submissions (named grids or
// inline scenarios) are validated at admission, journaled always, executed
// one at a time on the work-stealing pool, and streamed as throttled
// progress snapshots to any number of subscribers.  SIGTERM/SIGINT drain
// gracefully (in-flight job interrupted-and-journaled, queue persisted);
// kill -9 loses nothing durable — the next incarnation rescans its state
// directory and resumes every interrupted sweep with byte-identical
// results.
//
//   sweepd --dir state/ [--port 0] [--queue 16] [--threads 0] [--runs 5]
//          [--isolation none|forked] [--job-wall SECONDS]
//          [--snapshot-ms 200] [--client-buffer BYTES] [--no-sync]
//
// Prints "sweepd listening on 127.0.0.1:<port>" on stdout once bound and
// writes the port to <dir>/sweepd.port so scripts never hardcode one.
#include <signal.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <optional>
#include <string>
#include <vector>

#include "cgstream.hpp"
#include "exit_codes.hpp"
#include "grids.hpp"
#include "svc/server.hpp"

namespace {

using cgs::tools::kExitOk;
using cgs::tools::kExitUsage;
using cgs::tools::kExitVerifyFailed;

cgs::svc::Server* g_server = nullptr;

void on_signal(int) {
  if (g_server != nullptr) g_server->request_drain();
}

void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --dir DIR [options]\n"
      "  --dir DIR            state directory (journals, CSVs, queue)\n"
      "  --port N             TCP port on 127.0.0.1 (default 0 = "
      "OS-chosen)\n"
      "  --queue N            admission queue capacity (default 16)\n"
      "  --threads N          sweep threads per job (default 0 = all "
      "cores)\n"
      "  --runs N             default runs per cell (default 5)\n"
      "  --isolation MODE     none|forked (default none)\n"
      "  --job-wall SECONDS   stuck-job wall budget (default 0 = off)\n"
      "  --snapshot-ms MS     progress snapshot throttle (default 200)\n"
      "  --client-buffer B    per-client send buffer bytes (default "
      "262144)\n"
      "  --no-sync            skip per-record journal fsync (tests only)\n"
      "Submissions name a grid (grid=%s)\n"
      "or give an inline scenario (system=, cc=, cap_mbps=, ...).\n",
      argv0, cgs::tools::kGridNames);
}

/// Daemon-side grid resolution: named grids from tools/grids.hpp, inline
/// specs via the svc parser.  Deterministic — resume depends on a grid
/// resolving identically across restarts.
std::vector<cgs::core::SweepCell> resolve_spec(const cgs::svc::KvMap& spec) {
  const std::string grid = cgs::svc::kv_get(spec, "grid");
  if (grid.empty()) return cgs::svc::inline_cells_from_spec(spec);
  const std::uint64_t seed = std::strtoull(
      cgs::svc::kv_get(spec, "seed", "42").c_str(), nullptr, 10);
  const std::optional<std::vector<cgs::core::SweepCell>> cells =
      cgs::tools::grid_by_name(grid, seed);
  return cells.value_or(std::vector<cgs::core::SweepCell>{});
}

}  // namespace

int main(int argc, char** argv) {
  cgs::svc::ServerConfig cfg;
  cfg.resolver = resolve_spec;
  bool have_dir = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "sweepd: %s needs a value\n", arg.c_str());
        std::exit(kExitUsage);
      }
      return argv[++i];
    };
    if (arg == "--dir") {
      cfg.dir = value();
      have_dir = true;
    } else if (arg == "--port") {
      cfg.port = std::atoi(value());
    } else if (arg == "--queue") {
      cfg.max_queue = std::size_t(std::atoi(value()));
    } else if (arg == "--threads") {
      cfg.threads = std::atoi(value());
    } else if (arg == "--runs") {
      cfg.default_runs = std::atoi(value());
    } else if (arg == "--isolation") {
      const std::string mode = value();
      if (mode == "forked") {
        cfg.forked = true;
      } else if (mode != "none") {
        std::fprintf(stderr, "sweepd: unknown isolation '%s'\n",
                     mode.c_str());
        return kExitUsage;
      }
    } else if (arg == "--job-wall") {
      cfg.job_wall_s = std::atof(value());
    } else if (arg == "--snapshot-ms") {
      cfg.snapshot_ms = std::uint32_t(std::atoi(value()));
    } else if (arg == "--client-buffer") {
      cfg.client_buffer_bytes = std::size_t(std::atol(value()));
    } else if (arg == "--no-sync") {
      cfg.journal_sync = false;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return kExitOk;
    } else {
      std::fprintf(stderr, "sweepd: unknown option '%s'\n", arg.c_str());
      usage(argv[0]);
      return kExitUsage;
    }
  }
  if (!have_dir) {
    usage(argv[0]);
    return kExitUsage;
  }

  try {
    cgs::svc::Server server(cfg);
    const int port = server.listen();

    // The port file is how scripts find an OS-chosen port: write to a tmp
    // name then rename so a concurrent reader never sees a torn write.
    const std::string port_path = cfg.dir + "/sweepd.port";
    const std::string tmp_path = port_path + ".tmp";
    if (std::FILE* f = std::fopen(tmp_path.c_str(), "w")) {
      std::fprintf(f, "%d\n", port);
      std::fclose(f);
      (void)std::rename(tmp_path.c_str(), port_path.c_str());
    }
    std::printf("sweepd listening on 127.0.0.1:%d\n", port);
    std::fflush(stdout);

    g_server = &server;
    struct sigaction sa;
    std::memset(&sa, 0, sizeof sa);
    sa.sa_handler = on_signal;
    sigemptyset(&sa.sa_mask);
    (void)sigaction(SIGTERM, &sa, nullptr);
    (void)sigaction(SIGINT, &sa, nullptr);
    (void)signal(SIGPIPE, SIG_IGN);

    server.run();
    g_server = nullptr;
    std::printf("sweepd drained\n");
    return kExitOk;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "sweepd: %s\n", e.what());
    return kExitVerifyFailed;
  }
}
