// sweep — run a named paper grid on the work-stealing sweep engine and
// write the per-cell CSV.
//
//   sweep --grid=fig3    # 2 CC x 3 systems x 3 capacities x 3 queues (54)
//   sweep --grid=table3  # solo: 3 systems x 3 capacities x 3 queues (27)
//   sweep --grid=table4  # same grid as fig3, RTT-oriented columns
//   sweep --grid=smoke   # 30 s schedule, 2 systems x 2 queues (CI)
//   sweep --grid=sick    # 1 healthy + 1 watchdog-tripping cell (triage CI)
//   sweep --grid=poison  # 1 healthy + crash/oom/spin cells (chaos CI)
//   sweep --grid=fleet   # hybrid-fidelity fleet: sessions x churn (CI)
//
// Fault isolation: --isolation=forked runs every (cell, seed) job in a
// fork()ed child under a supervisor, so a crashing or runaway scenario
// kills only its own job.  --job-timeout / --job-mem / --job-cpu cap each
// child's wall clock, address space and CPU time; a job that keeps dying
// is quarantined after --strikes executions and lands in the failure CSV
// with quarantined=1.  Forked results are bit-identical to in-process.
//
// Crash safety: --journal=PATH appends every finished (cell, seed) job to
// an fsync'd journal; re-running the same command after a crash (or after
// SIGINT/SIGTERM, which drain gracefully) resumes from it and produces
// results bit-identical to an uninterrupted sweep.  Failed jobs are
// triaged by error class, dumped to <prefix>_failures.csv and reflected
// in the exit status:
//
//   0  clean sweep (and verify passed, when requested)
//   1  --verify mismatch (streaming != batch)
//   2  usage error / unknown grid
//   3  sweep completed but some jobs failed (see the triage table)
//   4  interrupted (SIGINT/SIGTERM) — partial results journaled, resumable
//   5  refused to resume: journal belongs to a different grid
//
// --verify re-runs every cell through the sequential batch path
// (run_many + summarize) and fails unless the streaming results match —
// the end-to-end determinism check the CI sweep-smoke job asserts.
// Prints wall-clock and peak-RSS so EXPERIMENTS.md recipes can quote them.
#include <sys/resource.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "cgstream.hpp"
#include "exit_codes.hpp"
#include "grids.hpp"

namespace {

using cgs::core::SweepCell;
using cgs::tools::kExitInterrupted;
using cgs::tools::kExitJobsFailed;
using cgs::tools::kExitJournalMismatch;
using cgs::tools::kExitOk;
using cgs::tools::kExitUsage;
using cgs::tools::kExitVerifyFailed;

std::atomic<bool> g_stop{false};

void on_signal(int) { g_stop.store(true); }

struct Args {
  std::string grid = "fig3";
  int runs = 5;
  int threads = 0;
  std::uint64_t seed = 42;
  std::string csv_prefix;
  std::string journal;
  int retries = 0;
  bool verify = false;
  bool progress = true;
  // Fault isolation (forked workers, core/proc.hpp).
  bool forked = false;
  double job_timeout_s = 0;  // supervisor wall deadline per job
  double job_mem_mb = 0;     // RLIMIT_AS per job
  int job_cpu_s = 0;         // RLIMIT_CPU per job
  int strikes = 3;           // executions before quarantine
};

Args parse_args(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--grid=", 7) == 0) {
      a.grid = arg + 7;
    } else if (std::strncmp(arg, "--runs=", 7) == 0) {
      a.runs = std::atoi(arg + 7);
    } else if (std::strncmp(arg, "--threads=", 10) == 0) {
      a.threads = std::atoi(arg + 10);
    } else if (std::strncmp(arg, "--seed=", 7) == 0) {
      a.seed = std::strtoull(arg + 7, nullptr, 10);
    } else if (std::strncmp(arg, "--csv=", 6) == 0) {
      a.csv_prefix = arg + 6;
    } else if (std::strncmp(arg, "--journal=", 10) == 0) {
      a.journal = arg + 10;
    } else if (std::strncmp(arg, "--retries=", 10) == 0) {
      a.retries = std::atoi(arg + 10);
    } else if (std::strncmp(arg, "--isolation=", 12) == 0) {
      const char* mode = arg + 12;
      if (std::strcmp(mode, "forked") == 0) {
        a.forked = true;
      } else if (std::strcmp(mode, "inprocess") == 0) {
        a.forked = false;
      } else {
        std::fprintf(stderr, "unknown isolation '%s' (forked|inprocess)\n",
                     mode);
        std::exit(kExitUsage);
      }
    } else if (std::strncmp(arg, "--job-timeout=", 14) == 0) {
      a.job_timeout_s = std::atof(arg + 14);
    } else if (std::strncmp(arg, "--job-mem=", 10) == 0) {
      a.job_mem_mb = std::atof(arg + 10);
    } else if (std::strncmp(arg, "--job-cpu=", 10) == 0) {
      a.job_cpu_s = std::atoi(arg + 10);
    } else if (std::strncmp(arg, "--strikes=", 10) == 0) {
      a.strikes = std::atoi(arg + 10);
    } else if (std::strcmp(arg, "--verify") == 0) {
      a.verify = true;
    } else if (std::strcmp(arg, "--no-progress") == 0) {
      a.progress = false;
    } else {
      std::printf(
          "usage: sweep [--grid=%s] [--runs=N]\n"
          "             [--threads=N] [--seed=S] [--csv=PREFIX]\n"
          "             [--journal=PATH] [--retries=N] [--verify]\n"
          "             [--no-progress]\n"
          "             [--isolation=forked|inprocess] [--strikes=K]\n"
          "             [--job-timeout=SECS] [--job-mem=MB] [--job-cpu=SECS]\n",
          cgs::tools::kGridNames);
      std::exit(std::strcmp(arg, "--help") == 0 ? kExitOk : kExitUsage);
    }
  }
  if (a.csv_prefix.empty()) a.csv_prefix = a.grid;
  return a;
}

/// True when a and b agree exactly or to 1e-9 relative.
bool close(double a, double b) {
  if (a == b) return true;
  const double scale = std::max(std::fabs(a), std::fabs(b));
  return std::fabs(a - b) <= 1e-9 * scale;
}

/// Compare the streaming sweep result against the batch path for one cell.
bool verify_cell(const SweepCell& cell, const cgs::core::ConditionResult& got,
                 int runs) {
  cgs::core::RunnerOptions ropts;
  ropts.runs = runs;
  ropts.threads = 1;
  const auto traces = cgs::core::run_many(cell.scenario, ropts);
  const auto want = cgs::core::summarize(cell.scenario, traces);

  bool ok = got.runs == want.runs &&
            got.game.mean.size() == want.game.mean.size() &&
            got.flow_rows.size() == want.flow_rows.size();
  const std::pair<double, double> scalars[] = {
      {got.fairness_mean, want.fairness_mean},
      {got.fairness_sd, want.fairness_sd},
      {got.game_fair_mbps, want.game_fair_mbps},
      {got.tcp_fair_mbps, want.tcp_fair_mbps},
      {got.jain_mean, want.jain_mean},
      {got.jain_sd, want.jain_sd},
      {got.rtt_mean_ms, want.rtt_mean_ms},
      {got.rtt_sd_ms, want.rtt_sd_ms},
      {got.fps_mean, want.fps_mean},
      {got.loss_mean, want.loss_mean},
      {got.steady_mean_mbps, want.steady_mean_mbps},
      {got.rr.response_s, want.rr.response_s},
      {got.rr.recovery_s, want.rr.recovery_s},
  };
  for (auto [a, b] : scalars) ok = ok && close(a, b);
  // Fleet population digests (when the cell runs a fluid fleet).
  ok = ok && got.fleet.active == want.fleet.active;
  if (got.fleet.active) {
    const std::pair<double, double> fleet_scalars[] = {
        {got.fleet.p50_mean, want.fleet.p50_mean},
        {got.fleet.p95_mean, want.fleet.p95_mean},
        {got.fleet.p99_mean, want.fleet.p99_mean},
        {got.fleet.mean_mbps_mean, want.fleet.mean_mbps_mean},
        {got.fleet.stall_mean, want.fleet.stall_mean},
        {got.fleet.jain_mean, want.fleet.jain_mean},
        {got.fleet.peak_sessions_mean, want.fleet.peak_sessions_mean},
        {got.fleet.arrivals_mean, want.fleet.arrivals_mean},
        {got.fleet.departures_mean, want.fleet.departures_mean},
    };
    for (auto [a, b] : fleet_scalars) ok = ok && close(a, b);
  }
  if (ok) {
    for (std::size_t i = 0; i < want.game.mean.size(); ++i) {
      ok = ok && close(got.game.mean[i], want.game.mean[i]) &&
           close(got.game.sd[i], want.game.sd[i]);
    }
  }
  if (!ok) {
    std::fprintf(stderr, "verify FAILED: cell '%s' streaming != batch\n",
                 cell.label.c_str());
  }
  return ok;
}

/// Triage table: failures grouped by (cell, class) with first messages.
void print_triage(const cgs::core::SweepReport& report) {
  std::fprintf(stderr, "\nfailure triage (%zu failed job%s", report.failed(),
               report.failed() == 1 ? "" : "s");
  if (report.retries > 0) {
    std::fprintf(stderr, ", %d retr%s granted", report.retries,
                 report.retries == 1 ? "y" : "ies");
  }
  if (report.quarantined > 0) {
    std::fprintf(stderr, ", %d quarantined", report.quarantined);
  }
  std::fprintf(stderr, "):\n");

  std::map<std::pair<std::string, cgs::core::ErrorClass>, int> groups;
  for (const auto& f : report.failures) {
    ++groups[{f.cell_label, f.cls}];
  }
  for (const auto& [key, n] : groups) {
    std::fprintf(stderr, "  %-12s %3d x  %s\n",
                 std::string(to_string(key.second)).c_str(), n,
                 key.first.c_str());
  }
  std::fprintf(stderr, "  first messages:\n");
  std::size_t shown = 0;
  for (const auto& f : report.failures) {
    if (shown++ >= 5) break;
    std::fprintf(stderr, "    seed %llu: %s\n",
                 (unsigned long long)f.seed, f.what.c_str());
  }
  if (report.failures_suppressed > 0) {
    std::fprintf(stderr, "  (%zu further failure records suppressed)\n",
                 report.failures_suppressed);
  }
}

/// Dump every kept failure record as CSV for offline triage.
void write_failures_csv(const std::string& path,
                        const cgs::core::SweepReport& report) {
  cgs::CsvWriter csv(path);
  csv.header({"cell", "seed", "class", "attempts", "quarantined", "message"});
  for (const auto& f : report.failures) {
    csv.row({f.cell_label, std::to_string(f.seed),
             std::string(to_string(f.cls)), std::to_string(f.attempts),
             f.quarantined ? "1" : "0", f.what});
  }
  std::fprintf(stderr, "wrote %s (%zu failure records)\n", path.c_str(),
               report.failures.size());
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse_args(argc, argv);

  auto cells_opt = cgs::tools::grid_by_name(args.grid, args.seed);
  if (!cells_opt) {
    std::fprintf(stderr, "unknown grid '%s' (%s)\n", args.grid.c_str(),
                 cgs::tools::kGridNames);
    return kExitUsage;
  }
  std::vector<SweepCell> cells = std::move(*cells_opt);

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);

  cgs::core::SweepOptions opts;
  opts.runs = args.runs;
  opts.threads = args.threads;
  opts.max_retries = args.retries;
  if (args.forked) {
    opts.isolation = cgs::core::Isolation::kForked;
    opts.quarantine_strikes = args.strikes;
    opts.limits.wall_seconds = args.job_timeout_s;
    opts.limits.cpu_seconds = args.job_cpu_s;
    opts.limits.address_space_bytes =
        std::uint64_t(args.job_mem_mb * 1024.0 * 1024.0);
  }
  opts.stop = &g_stop;
  opts.throw_on_failure = false;
  opts.journal_path = args.journal;
  opts.journal_note = "grid=" + args.grid + " seed=" +
                      std::to_string(args.seed) +
                      " runs=" + std::to_string(args.runs);
  if (args.progress) {
    // Throttled snapshots (not per-job callbacks): a 10k-job grid repaints
    // the line a few times a second, not ten thousand times.
    opts.on_snapshot = [](const cgs::core::ProgressSnapshot& s) {
      std::fprintf(stderr, "\r%d / %d runs (%zu/%zu cells", s.finished,
                   s.total, s.cells_finished, s.cells);
      if (s.failed > 0) std::fprintf(stderr, ", %d failed", s.failed);
      if (s.retries > 0) std::fprintf(stderr, ", %d retries", s.retries);
      std::fprintf(stderr, ")");
      if (s.final) std::fprintf(stderr, "\n");
    };
    opts.snapshot_interval_ms = 100;
  }

  const std::string journal_suffix =
      args.journal.empty() ? "" : " (journal: " + args.journal + ")";
  std::printf("sweep '%s': %zu cells x %d runs%s\n", args.grid.c_str(),
              cells.size(), args.runs, journal_suffix.c_str());
  const auto t0 = std::chrono::steady_clock::now();
  cgs::core::SweepResult sweep;
  try {
    sweep = cgs::core::run_sweep(cells, opts);
  } catch (const cgs::core::JournalMismatchError& e) {
    std::fprintf(stderr, "\n%s\n", e.what());
    return kExitJournalMismatch;
  }
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  const auto& report = sweep.report;

  if (report.skipped > 0) {
    std::printf("resumed: %d of %d jobs restored from the journal\n",
                report.skipped, report.total);
  }

  if (report.interrupted) {
    std::fprintf(stderr,
                 "\ninterrupted: %d of %d jobs finished (%d remaining)%s\n",
                 report.finished, report.total, report.remaining(),
                 args.journal.empty()
                     ? " — no journal, progress is lost"
                     : ", journaled and resumable");
    if (!args.journal.empty()) {
      std::fprintf(stderr,
                   "resume with:\n  sweep --grid=%s --runs=%d --seed=%llu "
                   "--journal=%s\n",
                   args.grid.c_str(), args.runs,
                   (unsigned long long)args.seed, args.journal.c_str());
    }
    return kExitInterrupted;
  }

  struct rusage ru {};
  getrusage(RUSAGE_SELF, &ru);
  const double peak_rss_mb = double(ru.ru_maxrss) / 1024.0;  // Linux: KiB

  // One shared writer (core/report) defines the CSV format for the CLI and
  // the daemon — the crash-recovery cmp checks depend on that.
  const cgs::core::SweepCsvFiles files =
      cgs::core::write_sweep_csvs(args.csv_prefix, sweep);
  std::printf("wrote %s (%zu cells) — wall %.1f s, peak RSS %.1f MB\n",
              files.cells_path.c_str(), files.cell_rows, wall, peak_rss_mb);
  std::printf("wrote %s (%zu link rows)\n", files.links_path.c_str(),
              files.link_rows);
  if (!files.fleet_path.empty()) {
    std::printf("wrote %s (%zu fleet rows)\n", files.fleet_path.c_str(),
                files.fleet_rows);
  }
  if (report.progress_errors > 0) {
    std::fprintf(stderr, "warning: progress callback threw %d time%s\n",
                 report.progress_errors,
                 report.progress_errors == 1 ? "" : "s");
  }

  if (report.failed() != 0) {
    print_triage(report);
    write_failures_csv(args.csv_prefix + "_failures.csv", report);
    if (!args.journal.empty()) {
      std::fprintf(stderr,
                   "replay a failure with:\n  replay --journal=%s --failed\n",
                   args.journal.c_str());
    }
    return kExitJobsFailed;
  }

  if (args.verify) {
    bool all_ok = true;
    for (std::size_t i = 0; i < sweep.cells.size(); ++i) {
      all_ok = verify_cell(sweep.cells[i], sweep.results[i], args.runs) &&
               all_ok;
    }
    if (!all_ok) return kExitVerifyFailed;
    std::printf("verify OK: streaming == batch for all %zu cells\n",
                sweep.cells.size());
  }
  return kExitOk;
}
