// sweep — run a named paper grid on the work-stealing sweep engine and
// write the per-cell CSV.
//
//   sweep --grid=fig3    # 2 CC x 3 systems x 3 capacities x 3 queues (54)
//   sweep --grid=table3  # solo: 3 systems x 3 capacities x 3 queues (27)
//   sweep --grid=table4  # same grid as fig3, RTT-oriented columns
//   sweep --grid=smoke   # 30 s schedule, 2 systems x 2 queues (CI)
//
// --verify re-runs every cell through the sequential batch path
// (run_many + summarize) and fails unless the streaming results match —
// the end-to-end determinism check the CI sweep-smoke job asserts.
// Prints wall-clock and peak-RSS so EXPERIMENTS.md recipes can quote them.
#include <sys/resource.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "cgstream.hpp"

namespace {

using cgs::core::Scenario;
using cgs::core::SweepCell;
using cgs::stream::GameSystem;
using cgs::tcp::CcAlgo;

struct Args {
  std::string grid = "fig3";
  int runs = 5;
  int threads = 0;
  std::uint64_t seed = 42;
  std::string csv_prefix;
  bool verify = false;
  bool progress = true;
};

Args parse_args(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--grid=", 7) == 0) {
      a.grid = arg + 7;
    } else if (std::strncmp(arg, "--runs=", 7) == 0) {
      a.runs = std::atoi(arg + 7);
    } else if (std::strncmp(arg, "--threads=", 10) == 0) {
      a.threads = std::atoi(arg + 10);
    } else if (std::strncmp(arg, "--seed=", 7) == 0) {
      a.seed = std::strtoull(arg + 7, nullptr, 10);
    } else if (std::strncmp(arg, "--csv=", 6) == 0) {
      a.csv_prefix = arg + 6;
    } else if (std::strcmp(arg, "--verify") == 0) {
      a.verify = true;
    } else if (std::strcmp(arg, "--no-progress") == 0) {
      a.progress = false;
    } else {
      std::printf(
          "usage: sweep [--grid=fig3|table3|table4|smoke] [--runs=N]\n"
          "             [--threads=N] [--seed=S] [--csv=PREFIX] [--verify]\n"
          "             [--no-progress]\n");
      std::exit(std::strcmp(arg, "--help") == 0 ? 0 : 2);
    }
  }
  if (a.csv_prefix.empty()) a.csv_prefix = a.grid;
  return a;
}

Scenario base_scenario(GameSystem sys, double cap_mbps, double queue_mult,
                       std::optional<CcAlgo> cc, std::uint64_t seed) {
  Scenario sc;
  sc.system = sys;
  sc.capacity = cgs::Bandwidth::mbps(cap_mbps);
  sc.queue_bdp_mult = queue_mult;
  sc.tcp_algo = cc;
  sc.seed = seed;
  return sc;
}

const char* sys_name(GameSystem s) {
  switch (s) {
    case GameSystem::kStadia: return "Stadia";
    case GameSystem::kGeForce: return "GeForce";
    case GameSystem::kLuna: return "Luna";
  }
  return "?";
}

std::string cell_label(GameSystem sys, double cap, double q,
                       std::optional<CcAlgo> cc) {
  char buf[96];
  std::snprintf(buf, sizeof buf, "%s %.0fMb/s %.1fxBDP %s", sys_name(sys),
                cap, q,
                cc ? std::string(cgs::tcp::to_string(*cc)).c_str() : "solo");
  return buf;
}

/// The paper's full competing-flow grid (Fig 3 / Table 4).
std::vector<SweepCell> competing_grid(std::uint64_t seed) {
  std::vector<SweepCell> cells;
  for (CcAlgo cc : {CcAlgo::kCubic, CcAlgo::kBbr}) {
    for (GameSystem sys : cgs::core::kAllSystems) {
      for (double cap : cgs::core::kCapacitiesMbps) {
        for (double q : cgs::core::kQueueMults) {
          cells.push_back({cell_label(sys, cap, q, cc),
                           base_scenario(sys, cap, q, cc, seed)});
        }
      }
    }
  }
  return cells;
}

/// Table 3's solo grid.
std::vector<SweepCell> solo_grid(std::uint64_t seed) {
  std::vector<SweepCell> cells;
  for (GameSystem sys : cgs::core::kAllSystems) {
    for (double cap : cgs::core::kCapacitiesMbps) {
      for (double q : cgs::core::kQueueMults) {
        cells.push_back({cell_label(sys, cap, q, std::nullopt),
                         base_scenario(sys, cap, q, std::nullopt, seed)});
      }
    }
  }
  return cells;
}

/// Tiny grid on a 30 s schedule: the CI smoke target.
std::vector<SweepCell> smoke_grid(std::uint64_t seed) {
  std::vector<SweepCell> cells;
  for (GameSystem sys : {GameSystem::kStadia, GameSystem::kLuna}) {
    for (double q : {0.5, 2.0}) {
      Scenario sc = base_scenario(sys, 25.0, q, CcAlgo::kCubic, seed);
      sc.duration = std::chrono::seconds(30);
      sc.tcp_start = std::chrono::seconds(5);
      sc.tcp_stop = std::chrono::seconds(20);
      cells.push_back({cell_label(sys, 25.0, q, CcAlgo::kCubic), sc});
    }
  }
  return cells;
}

/// True when a and b agree exactly or to 1e-9 relative.
bool close(double a, double b) {
  if (a == b) return true;
  const double scale = std::max(std::fabs(a), std::fabs(b));
  return std::fabs(a - b) <= 1e-9 * scale;
}

/// Compare the streaming sweep result against the batch path for one cell.
bool verify_cell(const SweepCell& cell, const cgs::core::ConditionResult& got,
                 int runs) {
  cgs::core::RunnerOptions ropts;
  ropts.runs = runs;
  ropts.threads = 1;
  const auto traces = cgs::core::run_many(cell.scenario, ropts);
  const auto want = cgs::core::summarize(cell.scenario, traces);

  bool ok = got.runs == want.runs &&
            got.game.mean.size() == want.game.mean.size() &&
            got.flow_rows.size() == want.flow_rows.size();
  const std::pair<double, double> scalars[] = {
      {got.fairness_mean, want.fairness_mean},
      {got.fairness_sd, want.fairness_sd},
      {got.game_fair_mbps, want.game_fair_mbps},
      {got.tcp_fair_mbps, want.tcp_fair_mbps},
      {got.jain_mean, want.jain_mean},
      {got.jain_sd, want.jain_sd},
      {got.rtt_mean_ms, want.rtt_mean_ms},
      {got.rtt_sd_ms, want.rtt_sd_ms},
      {got.fps_mean, want.fps_mean},
      {got.loss_mean, want.loss_mean},
      {got.steady_mean_mbps, want.steady_mean_mbps},
      {got.rr.response_s, want.rr.response_s},
      {got.rr.recovery_s, want.rr.recovery_s},
  };
  for (auto [a, b] : scalars) ok = ok && close(a, b);
  if (ok) {
    for (std::size_t i = 0; i < want.game.mean.size(); ++i) {
      ok = ok && close(got.game.mean[i], want.game.mean[i]) &&
           close(got.game.sd[i], want.game.sd[i]);
    }
  }
  if (!ok) {
    std::fprintf(stderr, "verify FAILED: cell '%s' streaming != batch\n",
                 cell.label.c_str());
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse_args(argc, argv);

  std::vector<SweepCell> cells;
  if (args.grid == "fig3" || args.grid == "table4") {
    cells = competing_grid(args.seed);
  } else if (args.grid == "table3") {
    cells = solo_grid(args.seed);
  } else if (args.grid == "smoke") {
    cells = smoke_grid(args.seed);
  } else {
    std::fprintf(stderr, "unknown grid '%s' (fig3|table3|table4|smoke)\n",
                 args.grid.c_str());
    return 2;
  }

  cgs::core::SweepOptions opts;
  opts.runs = args.runs;
  opts.threads = args.threads;
  if (args.progress) {
    opts.progress = [](int done, int total) {
      std::fprintf(stderr, "\r%d / %d runs", done, total);
      if (done == total) std::fprintf(stderr, "\n");
    };
  }

  std::printf("sweep '%s': %zu cells x %d runs\n", args.grid.c_str(),
              cells.size(), args.runs);
  const auto t0 = std::chrono::steady_clock::now();
  const auto sweep = cgs::core::run_sweep(cells, opts);
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  struct rusage ru {};
  getrusage(RUSAGE_SELF, &ru);
  const double peak_rss_mb = double(ru.ru_maxrss) / 1024.0;  // Linux: KiB

  const std::string path = args.csv_prefix + "_cells.csv";
  cgs::CsvWriter csv(path);
  csv.header({"cell", "runs", "fairness_mean", "fairness_sd",
              "game_fair_mbps", "tcp_fair_mbps", "jain_mean", "rtt_ms_mean",
              "rtt_ms_sd", "fps_mean", "loss_mean", "steady_mean_mbps",
              "response_s", "recovery_s"});
  for (std::size_t i = 0; i < sweep.results.size(); ++i) {
    const auto& r = sweep.results[i];
    csv.row({sweep.cells[i].label, std::to_string(r.runs),
             std::to_string(r.fairness_mean), std::to_string(r.fairness_sd),
             std::to_string(r.game_fair_mbps),
             std::to_string(r.tcp_fair_mbps), std::to_string(r.jain_mean),
             std::to_string(r.rtt_mean_ms), std::to_string(r.rtt_sd_ms),
             std::to_string(r.fps_mean), std::to_string(r.loss_mean),
             std::to_string(r.steady_mean_mbps),
             std::to_string(r.rr.response_s),
             std::to_string(r.rr.recovery_s)});
  }
  std::printf("wrote %s (%zu cells) — wall %.1f s, peak RSS %.1f MB\n",
              path.c_str(), sweep.results.size(), wall, peak_rss_mb);

  if (args.verify) {
    bool all_ok = true;
    for (std::size_t i = 0; i < sweep.cells.size(); ++i) {
      all_ok = verify_cell(sweep.cells[i], sweep.results[i], args.runs) &&
               all_ok;
    }
    if (!all_ok) return 1;
    std::printf("verify OK: streaming == batch for all %zu cells\n",
                sweep.cells.size());
  }
  return 0;
}
