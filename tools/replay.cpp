// replay — deterministically re-run journaled sweep jobs, one at a time.
//
//   replay --journal=fig3.jnl --failed        # re-run every failed job
//   replay --journal=fig3.jnl --seed=44       # re-run one seed (all cells)
//   replay --journal=fig3.jnl --cell=Stadia   # filter by cell substring
//   replay --journal=fig3.jnl --all           # re-run everything
//   replay --grid=sick --gridseed=42 --runs=3 --cellindex=1 --seed=43
//                                             # explicit job, no journal
//
// The journal's provenance note ("grid=... seed=... runs=...") pins the
// grid, so replay rebuilds the *exact* scenario a sweep worker ran —
// same cell mutators, same derived seed — and re-runs it single-threaded
// with the invariant auditor forced on and a per-packet TraceLog attached
// to every topology link.  Successful journal records must reproduce their
// trace hash bit-for-bit; failed records must fail again with the same
// error class.  --csv=PREFIX writes the per-event packet log per job.
//
// Process-class failures (crash/timeout/resource, journaled by a forked
// sweep) are replayed inside a forked sandbox — a reproducing SIGSEGV
// kills the child, not the tool — under --job-timeout/--job-mem/--job-cpu
// caps.  Only the error class is verified there: the packet log dies with
// the child.
//
// Exit: 0 all replays reproduced, 1 any mismatch, 2 usage/journal error.
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "cgstream.hpp"
#include "exit_codes.hpp"
#include "grids.hpp"

namespace {

using cgs::core::JournalEntry;
using cgs::tools::kExitOk;
using cgs::tools::kExitUsage;
using cgs::tools::kExitVerifyFailed;
using cgs::core::Scenario;
using cgs::core::SweepCell;

struct Args {
  std::string journal;
  std::string cell_filter;
  std::uint64_t seed = 0;  // 0 = no seed filter
  bool failed_only = false;
  bool all = false;
  std::string csv_prefix;
  // Explicit-job mode (no journal).
  std::string grid;
  std::uint64_t grid_seed = 42;
  int runs = 5;
  int cell_index = -1;
  // Sandbox caps for replaying process-class failures (crash/timeout/
  // resource) — those re-run fork()ed so a reproducing SIGSEGV kills the
  // sandbox child, not the replay tool.
  double job_timeout_s = 10;
  double job_mem_mb = 1024;
  int job_cpu_s = 0;
};

void usage() {
  std::printf(
      "usage: replay --journal=PATH [--failed | --all] [--cell=SUBSTR]\n"
      "              [--seed=S] [--csv=PREFIX]\n"
      "              [--job-timeout=SECS] [--job-mem=MB] [--job-cpu=SECS]\n"
      "       replay --grid=%s --gridseed=S --runs=N\n"
      "              --cellindex=I --seed=S [--csv=PREFIX]\n",
      cgs::tools::kGridNames);
}

Args parse_args(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--journal=", 10) == 0) {
      a.journal = arg + 10;
    } else if (std::strncmp(arg, "--cell=", 7) == 0) {
      a.cell_filter = arg + 7;
    } else if (std::strncmp(arg, "--seed=", 7) == 0) {
      a.seed = std::strtoull(arg + 7, nullptr, 10);
    } else if (std::strcmp(arg, "--failed") == 0) {
      a.failed_only = true;
    } else if (std::strcmp(arg, "--all") == 0) {
      a.all = true;
    } else if (std::strncmp(arg, "--csv=", 6) == 0) {
      a.csv_prefix = arg + 6;
    } else if (std::strncmp(arg, "--grid=", 7) == 0) {
      a.grid = arg + 7;
    } else if (std::strncmp(arg, "--gridseed=", 11) == 0) {
      a.grid_seed = std::strtoull(arg + 11, nullptr, 10);
    } else if (std::strncmp(arg, "--runs=", 7) == 0) {
      a.runs = std::atoi(arg + 7);
    } else if (std::strncmp(arg, "--cellindex=", 12) == 0) {
      a.cell_index = std::atoi(arg + 12);
    } else if (std::strncmp(arg, "--job-timeout=", 14) == 0) {
      a.job_timeout_s = std::atof(arg + 14);
    } else if (std::strncmp(arg, "--job-mem=", 10) == 0) {
      a.job_mem_mb = std::atof(arg + 10);
    } else if (std::strncmp(arg, "--job-cpu=", 10) == 0) {
      a.job_cpu_s = std::atoi(arg + 10);
    } else {
      usage();
      std::exit(std::strcmp(arg, "--help") == 0 ? kExitOk : kExitUsage);
    }
  }
  return a;
}

/// Parse "grid=fig3 seed=42 runs=5" from the journal's provenance note.
bool parse_note(const std::string& note, std::string& grid,
                std::uint64_t& seed, int& runs) {
  std::istringstream is(note);
  std::string tok;
  bool got_grid = false;
  while (is >> tok) {
    if (tok.rfind("grid=", 0) == 0) {
      grid = tok.substr(5);
      got_grid = true;
    } else if (tok.rfind("seed=", 0) == 0) {
      seed = std::strtoull(tok.c_str() + 5, nullptr, 10);
    } else if (tok.rfind("runs=", 0) == 0) {
      runs = std::atoi(tok.c_str() + 5);
    }
  }
  return got_grid;
}

/// Re-run one journaled job and check it reproduces.  Returns true on a
/// faithful reproduction (same hash for successes, same error class for
/// failures).
bool replay_job(const std::vector<SweepCell>& cells, const JournalEntry& e,
                const std::string& csv_prefix,
                const cgs::core::proc::ResourceLimits& limits) {
  const SweepCell& cell = cells[e.cell];
  Scenario sc = cell.scenario;
  sc.seed = e.seed;
  // Force the auditor on: replay is the forensic path, and the auditor is
  // observer-only, so the trace hash must still match the journaled run.
  sc.audit = Scenario::AuditMode::kOn;

  std::printf("replay cell %u '%s' seed %" PRIu64 " (journal: %s)\n", e.cell,
              cell.label.c_str(), e.seed, e.ok ? "ok" : "failed");

  if (!e.ok && cgs::core::is_process_failure(e.cls)) {
    // A journaled process death (crash/timeout/resource) would take the
    // replay tool down with it if re-run in-process, so re-run it in the
    // same forked sandbox the sweep used.  The packet log lives in the
    // child and dies with it, so this path verifies the error class only.
    std::printf("  process-class failure: replaying in a forked sandbox "
                "(timeout %.1f s, mem %.0f MB, cpu %u s)\n",
                limits.wall_seconds,
                double(limits.address_space_bytes) / (1024.0 * 1024.0),
                limits.cpu_seconds);
    const cgs::core::proc::ChildResult cr = cgs::core::proc::run_forked(
        [&sc] {
          cgs::core::Testbed bed(sc);
          return cgs::core::serialize_trace(bed.run());
        },
        limits);
    if (cr.ok) {
      std::printf(
          "  journaled failure did NOT reproduce (sandboxed run "
          "succeeded)\n");
      return false;
    }
    const bool reproduced = cr.cls == e.cls;
    std::printf("  failure reproduced [%s vs journal %s] — %s\n    %s\n",
                std::string(to_string(cr.cls)).c_str(),
                std::string(to_string(e.cls)).c_str(),
                reproduced ? "MATCH" : "CLASS MISMATCH", cr.message.c_str());
    return reproduced;
  }

  cgs::core::Testbed bed(sc);
  cgs::core::TraceLog log;
  constexpr unsigned kAllEvents =
      (1u << unsigned(cgs::core::TraceEvent::kArrival)) |
      (1u << unsigned(cgs::core::TraceEvent::kDrop)) |
      (1u << unsigned(cgs::core::TraceEvent::kTransmit)) |
      (1u << unsigned(cgs::core::TraceEvent::kDeliver));
  // Every link of the topology: the single bottleneck for synthesized
  // scenarios, each hop for multi-bottleneck graphs.  Multi-hop flows are
  // recorded once per hop, which is the point of a forensic capture.
  for (std::size_t li = 0; li < bed.topology().link_count(); ++li) {
    log.attach(bed.topology().link_at(li), kAllEvents);
  }

  bool reproduced = false;
  try {
    const cgs::core::RunTrace trace = bed.run();
    const std::uint64_t h = cgs::core::trace_hash(trace);
    if (e.ok) {
      reproduced = h == e.trace_hash;
      std::printf("  trace hash 0x%016" PRIx64 " vs journal 0x%016" PRIx64
                  " — %s\n",
                  h, e.trace_hash, reproduced ? "MATCH" : "MISMATCH");
    } else {
      std::printf("  journaled failure did NOT reproduce (run succeeded, "
                  "hash 0x%016" PRIx64 ")\n",
                  h);
    }
  } catch (const std::exception& ex) {
    const cgs::core::ErrorClass cls = cgs::core::classify(ex);
    if (e.ok) {
      std::printf("  journaled success now FAILS [%s]: %s\n",
                  std::string(to_string(cls)).c_str(), ex.what());
    } else {
      reproduced = cls == e.cls;
      std::printf("  failure reproduced [%s vs journal %s] — %s\n    %s\n",
                  std::string(to_string(cls)).c_str(),
                  std::string(to_string(e.cls)).c_str(),
                  reproduced ? "MATCH" : "CLASS MISMATCH", ex.what());
    }
  }

  // Per-flow forensic digest of the bottleneck capture.
  for (const auto& fs : log.summarize()) {
    std::printf("  flow %u: %" PRIu64 " delivered, %" PRIu64
                " dropped, %.2f Mb/s goodput, jitter %.3f ms\n",
                fs.flow, fs.packets_delivered, fs.packets_dropped,
                fs.goodput().megabits_per_sec(),
                cgs::to_seconds(fs.jitter) * 1e3);
  }
  if (!csv_prefix.empty()) {
    const std::string path = csv_prefix + "_cell" + std::to_string(e.cell) +
                             "_seed" + std::to_string(e.seed) + ".csv";
    log.write_csv(path);
    std::printf("  wrote %s (%zu events)\n", path.c_str(), log.size());
  }
  return reproduced;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse_args(argc, argv);

  cgs::core::proc::ResourceLimits limits;
  limits.wall_seconds = args.job_timeout_s;
  limits.cpu_seconds = std::uint32_t(args.job_cpu_s);
  limits.address_space_bytes =
      std::uint64_t(args.job_mem_mb * 1024.0 * 1024.0);

  std::string grid_name;
  std::uint64_t grid_seed = 42;
  int runs = 5;
  std::vector<JournalEntry> entries;

  if (!args.journal.empty()) {
    std::optional<cgs::core::JournalScan> scan;
    try {
      scan = cgs::core::read_journal(args.journal);
    } catch (const cgs::core::JournalError& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return kExitUsage;
    }
    if (!scan) {
      std::fprintf(stderr, "no journal at '%s'\n", args.journal.c_str());
      return kExitUsage;
    }
    if (scan->torn_tail) {
      std::fprintf(stderr,
                   "note: journal has a torn trailing record (crash "
                   "mid-write); ignoring it\n");
    }
    if (!parse_note(scan->meta.note, grid_name, grid_seed, runs)) {
      std::fprintf(stderr,
                   "journal note '%s' does not name its grid — pass "
                   "--grid/--gridseed/--runs explicitly\n",
                   scan->meta.note.c_str());
      return kExitUsage;
    }
    entries = std::move(scan->entries);
  } else if (!args.grid.empty()) {
    grid_name = args.grid;
    grid_seed = args.grid_seed;
    runs = args.runs;
  } else {
    usage();
    return kExitUsage;
  }

  auto cells_opt = cgs::tools::grid_by_name(grid_name, grid_seed);
  if (!cells_opt) {
    std::fprintf(stderr, "unknown grid '%s' (%s)\n", grid_name.c_str(),
                 cgs::tools::kGridNames);
    return kExitUsage;
  }
  const std::vector<SweepCell> cells = std::move(*cells_opt);

  if (args.journal.empty()) {
    // Explicit-job mode: synthesize the one entry to replay.  Without a
    // journal there is nothing to verify against, so treat it as a failed
    // record of unknown class — the run executes with full verbosity and
    // the command exits 0 only if it fails (reproducing *some* failure).
    if (args.cell_index < 0 ||
        std::size_t(args.cell_index) >= cells.size() || args.seed == 0) {
      std::fprintf(stderr,
                   "explicit mode needs --cellindex=0..%zu and --seed=S\n",
                   cells.size() - 1);
      return kExitUsage;
    }
    JournalEntry e;
    e.cell = std::uint32_t(args.cell_index);
    e.seed = args.seed;
    e.ok = false;
    e.cls = cgs::core::ErrorClass::kUnclassified;
    // Nothing journaled to verify against: this is a pure forensic run,
    // so the outcome (and the packet log) is the product, not a verdict.
    std::printf("explicit mode: no journal record to verify against\n");
    (void)replay_job(cells, e, args.csv_prefix, limits);
    return kExitOk;
  }

  // Filter the journal's entries down to the jobs to replay.
  std::vector<JournalEntry> selected;
  for (JournalEntry& e : entries) {
    if (e.cell >= cells.size()) continue;
    if (args.failed_only && e.ok) continue;
    if (args.seed != 0 && e.seed != args.seed) continue;
    if (!args.cell_filter.empty() &&
        cells[e.cell].label.find(args.cell_filter) == std::string::npos) {
      continue;
    }
    if (!args.failed_only && !args.all && args.seed == 0 &&
        args.cell_filter.empty() && e.ok) {
      continue;  // bare `replay --journal=X` defaults to failed jobs
    }
    selected.push_back(std::move(e));
  }
  if (selected.empty()) {
    std::printf("nothing to replay (%zu journal entries, none selected)\n",
                entries.size());
    return kExitOk;
  }

  std::printf("replaying %zu of %zu journaled jobs from grid '%s'\n",
              selected.size(), entries.size(), grid_name.c_str());
  int mismatches = 0;
  for (const JournalEntry& e : selected) {
    if (!replay_job(cells, e, args.csv_prefix, limits)) ++mismatches;
  }
  if (mismatches > 0) {
    std::fprintf(stderr, "%d of %zu replays did NOT reproduce\n", mismatches,
                 selected.size());
    return kExitVerifyFailed;
  }
  std::printf("all %zu replays reproduced\n", selected.size());
  return kExitOk;
}
