// Named parameter grids shared by the sweep and replay tools.
//
// A grid name + base seed fully determines the cell list, which is what
// lets a journal reference its grid with a one-line note
// ("grid=fig3 seed=42 runs=5") and tools/replay rebuild the exact same
// cells to re-run a journaled job.
#pragma once

#include <chrono>
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "cgstream.hpp"

namespace cgs::tools {

using core::Scenario;
using core::SweepCell;
using stream::GameSystem;
using tcp::CcAlgo;

inline Scenario base_scenario(GameSystem sys, double cap_mbps,
                              double queue_mult, std::optional<CcAlgo> cc,
                              std::uint64_t seed) {
  Scenario sc;
  sc.system = sys;
  sc.capacity = Bandwidth::mbps(cap_mbps);
  sc.queue_bdp_mult = queue_mult;
  sc.tcp_algo = cc;
  sc.seed = seed;
  return sc;
}

inline const char* sys_name(GameSystem s) {
  switch (s) {
    case GameSystem::kStadia: return "Stadia";
    case GameSystem::kGeForce: return "GeForce";
    case GameSystem::kLuna: return "Luna";
  }
  return "?";
}

inline std::string cell_label(GameSystem sys, double cap, double q,
                              std::optional<CcAlgo> cc) {
  char buf[96];
  std::snprintf(buf, sizeof buf, "%s %.0fMb/s %.1fxBDP %s", sys_name(sys),
                cap, q,
                cc ? std::string(tcp::to_string(*cc)).c_str() : "solo");
  return buf;
}

/// The paper's full competing-flow grid (Fig 3 / Table 4).
inline std::vector<SweepCell> competing_grid(std::uint64_t seed) {
  std::vector<SweepCell> cells;
  for (CcAlgo cc : {CcAlgo::kCubic, CcAlgo::kBbr}) {
    for (GameSystem sys : core::kAllSystems) {
      for (double cap : core::kCapacitiesMbps) {
        for (double q : core::kQueueMults) {
          cells.push_back({cell_label(sys, cap, q, cc),
                           base_scenario(sys, cap, q, cc, seed)});
        }
      }
    }
  }
  return cells;
}

/// Table 3's solo grid.
inline std::vector<SweepCell> solo_grid(std::uint64_t seed) {
  std::vector<SweepCell> cells;
  for (GameSystem sys : core::kAllSystems) {
    for (double cap : core::kCapacitiesMbps) {
      for (double q : core::kQueueMults) {
        cells.push_back({cell_label(sys, cap, q, std::nullopt),
                         base_scenario(sys, cap, q, std::nullopt, seed)});
      }
    }
  }
  return cells;
}

/// Tiny grid on a 30 s schedule: the CI smoke target.
inline std::vector<SweepCell> smoke_grid(std::uint64_t seed) {
  std::vector<SweepCell> cells;
  for (GameSystem sys : {GameSystem::kStadia, GameSystem::kLuna}) {
    for (double q : {0.5, 2.0}) {
      Scenario sc = base_scenario(sys, 25.0, q, CcAlgo::kCubic, seed);
      sc.duration = std::chrono::seconds(30);
      sc.tcp_start = std::chrono::seconds(5);
      sc.tcp_stop = std::chrono::seconds(20);
      cells.push_back({cell_label(sys, 25.0, q, CcAlgo::kCubic), sc});
    }
  }
  return cells;
}

/// Failure-triage exercise grid: one healthy 30 s cell plus one whose
/// watchdog budget is deliberately too small for its schedule, so every
/// run of it fails deterministically with a WatchdogError.  CI drives the
/// sweep tool's triage/exit-code path and replay with this grid.
inline std::vector<SweepCell> sick_grid(std::uint64_t seed) {
  std::vector<SweepCell> cells;
  Scenario ok = base_scenario(GameSystem::kStadia, 25.0, 2.0, CcAlgo::kCubic,
                              seed);
  ok.duration = std::chrono::seconds(30);
  ok.tcp_start = std::chrono::seconds(5);
  ok.tcp_stop = std::chrono::seconds(20);
  cells.push_back({"healthy " + cell_label(GameSystem::kStadia, 25.0, 2.0,
                                           CcAlgo::kCubic),
                   ok});

  Scenario sick = ok;
  sick.watchdog_event_budget = 50'000;  // ~1000x too small for 30 s
  cells.push_back({"sick watchdog " + cell_label(GameSystem::kStadia, 25.0,
                                                 2.0, CcAlgo::kCubic),
                   sick});
  return cells;
}

/// Chaos-engineering grid for forked isolation: the smoke grid's first
/// cell kept healthy (the survivor baseline — its rows must be
/// bit-identical to a clean smoke run) plus three poisoned cells whose
/// every job dies a different process death: SIGSEGV, unbounded
/// allocation, and a wall-clock spin.  Only meaningful with
/// --isolation=forked; in-process the crash cell kills the whole tool,
/// which is exactly the failure mode forked isolation exists to remove.
inline std::vector<SweepCell> poison_grid(std::uint64_t seed) {
  const std::vector<SweepCell> smoke = smoke_grid(seed);
  std::vector<SweepCell> cells;
  cells.push_back(smoke[0]);  // untouched survivor

  const Scenario::FaultKind kinds[] = {Scenario::FaultKind::kCrash,
                                       Scenario::FaultKind::kOom,
                                       Scenario::FaultKind::kSpin};
  const char* names[] = {"crash", "oom", "spin"};
  for (std::size_t i = 0; i < 3; ++i) {
    SweepCell c = smoke[i + 1];
    c.scenario.fault.kind = kinds[i];
    c.label = std::string("poison-") + names[i] + " " + c.label;
    cells.push_back(std::move(c));
  }
  return cells;
}

/// Multi-bottleneck smoke grid: 3-hop parking lots on a 30 s schedule.
/// Varies per-hop queue depth and the primary mix (game + cross traffic
/// only, or adding a 2-BBR-vs-2-Cubic end-to-end melee), with single-hop
/// cubic cross traffic competing on every hop in all cells.
inline std::vector<SweepCell> parkinglot_grid(std::uint64_t seed) {
  std::vector<SweepCell> cells;
  for (double q : {0.5, 2.0}) {
    for (bool melee : {false, true}) {
      core::ParkingLotParams p;
      p.hops = 3;
      p.queue_bdp_mult = q;
      p.bbr_flows = melee ? 2 : 0;
      p.cubic_flows = melee ? 2 : 0;
      p.duration = std::chrono::seconds(30);
      p.tcp_start = std::chrono::seconds(5);
      p.tcp_stop = std::chrono::seconds(20);
      p.seed = seed;
      char buf[96];
      std::snprintf(buf, sizeof buf, "parkinglot3 %.1fxBDP %s", q,
                    melee ? "2bbr+2cubic melee" : "cross-only");
      cells.push_back({buf, core::parking_lot_scenario(p)});
    }
  }
  return cells;
}

/// Hybrid-fidelity fleet grid: the paper's game stream + cubic competitor
/// on an aggregation-scale 1 Gb/s bottleneck, with a fluid background
/// fleet sharing the link.  Axes: population size x churn (static vs
/// Poisson arrivals with exponential holding times), 30 s schedule.  Each
/// fleet splits across the three envelope classes (game / bulk-cubic /
/// bulk-bbr).
inline std::vector<SweepCell> fleet_grid(std::uint64_t seed) {
  std::vector<SweepCell> cells;
  for (std::uint32_t sessions : {50u, 200u}) {
    for (bool churn : {false, true}) {
      Scenario sc = base_scenario(GameSystem::kStadia, 1000.0, 2.0,
                                  CcAlgo::kCubic, seed);
      sc.duration = std::chrono::seconds(30);
      sc.tcp_start = std::chrono::seconds(5);
      sc.tcp_stop = std::chrono::seconds(20);
      const auto place = [&](net::FluidClass cls, std::uint32_t n) {
        net::FluidSourceSpec src;
        src.cls = cls;
        src.sessions = n;
        if (churn) {
          // ~12 arrivals/min against a 10 s mean hold, capped at 2x the
          // initial population.
          src.arrival_per_min = 12.0;
          src.mean_holding_s = 10.0;
          src.max_sessions = n * 2;
          src.diurnal = {0.5, 1.5, 1.0};
        }
        sc.fleet.sources.push_back(src);
      };
      place(net::FluidClass::kGameStream, sessions / 2);
      place(net::FluidClass::kBulkCubic, sessions / 4);
      place(net::FluidClass::kBulkBbr, sessions - sessions / 2 - sessions / 4);
      char buf[96];
      std::snprintf(buf, sizeof buf, "fleet%u %s Stadia 1Gb/s cubic",
                    sessions, churn ? "churn" : "static");
      cells.push_back({buf, sc});
    }
  }
  return cells;
}

/// Build the named grid, or nullopt for an unknown name.
inline std::optional<std::vector<SweepCell>> grid_by_name(
    const std::string& name, std::uint64_t seed) {
  if (name == "fig3" || name == "table4") return competing_grid(seed);
  if (name == "table3") return solo_grid(seed);
  if (name == "smoke") return smoke_grid(seed);
  if (name == "sick") return sick_grid(seed);
  if (name == "poison") return poison_grid(seed);
  if (name == "parkinglot") return parkinglot_grid(seed);
  if (name == "fleet") return fleet_grid(seed);
  return std::nullopt;
}

inline constexpr const char* kGridNames =
    "fig3|table3|table4|smoke|sick|poison|parkinglot|fleet";

}  // namespace cgs::tools
