// Shared exit-code taxonomy for the CLI tools (sweep, replay, sweepd,
// sweepctl).  Scripts — the CI jobs first among them — branch on these
// values, so they are pinned by tests/tools/exit_codes_test.cpp: append
// new codes, never renumber.
#pragma once

namespace cgs::tools {

enum ExitCode : int {
  /// Clean run (and verification passed, where requested).
  kExitOk = 0,
  /// A verification pass failed: streaming != batch, or a watched sweep
  /// ended in a failed state.
  kExitVerifyFailed = 1,
  /// Usage error: unknown flag, unknown grid, malformed argument.
  kExitUsage = 2,
  /// The sweep completed but some jobs failed (triage table printed).
  kExitJobsFailed = 3,
  /// Interrupted (SIGINT/SIGTERM): partial results journaled, resumable.
  kExitInterrupted = 4,
  /// Refused to resume: the journal belongs to a different grid.
  kExitJournalMismatch = 5,
  /// The sweep daemon could not be reached (connect/reconnect exhausted)
  /// or refused the request.
  kExitUnavailable = 6,
};

}  // namespace cgs::tools
