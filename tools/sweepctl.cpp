// sweepctl: command-line client for cgs-sweepd.
//
//   sweepctl --port N        submit key=value [key=value ...]
//   sweepctl --portfile P    status
//                            watch JOB
//                            cancel JOB
//                            drain
//
// watch streams progress snapshots until the job reaches a terminal
// state, reconnecting with bounded exponential backoff (core/proc
// backoff_ms) across daemon restarts and resuming from the last seen
// snapshot seq — a drained-and-restarted daemon looks like a brief pause,
// not a failure.
//
// Exit codes (tools/exit_codes.hpp): 0 done, 2 usage, 3 refused/failed,
// 4 cancelled, 6 daemon unreachable.
#include <netinet/in.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "cgstream.hpp"
#include "exit_codes.hpp"
#include "svc/protocol.hpp"

namespace {

using cgs::svc::Frame;
using cgs::svc::FrameParser;
using cgs::svc::KvMap;
using cgs::svc::MsgType;
using cgs::tools::kExitInterrupted;
using cgs::tools::kExitJobsFailed;
using cgs::tools::kExitOk;
using cgs::tools::kExitUnavailable;
using cgs::tools::kExitUsage;

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s (--port N | --portfile PATH) VERB [args]\n"
               "  submit key=value ...   admit a sweep (grid=NAME or an\n"
               "                         inline system=/cc=/... scenario)\n"
               "  status                 list the daemon's jobs\n"
               "  watch JOB              stream progress until terminal\n"
               "  cancel JOB             cancel a queued or running job\n"
               "  drain                  ask the daemon to drain and exit\n",
               argv0);
}

/// Blocking loopback connection; -1 when the daemon is unreachable.
int dial(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(std::uint16_t(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool send_frame(int fd, MsgType type, const std::string& payload) {
  const auto bytes = cgs::svc::encode_frame(type, payload);
  return cgs::core::proc::write_exact(fd, bytes.data(), bytes.size());
}

/// Read one frame (blocking).  False on EOF/error/garbage.
bool recv_frame(int fd, FrameParser& parser, Frame& out) {
  for (;;) {
    const FrameParser::Status st = parser.next(out);
    if (st == FrameParser::Status::kFrame) return true;
    if (st == FrameParser::Status::kBad) return false;
    unsigned char chunk[4096];
    const long r = cgs::core::proc::read_some(fd, chunk, sizeof chunk);
    if (r <= 0) return false;
    parser.feed(chunk, std::size_t(r));
  }
}

void print_error(const Frame& f) {
  const KvMap kv = cgs::svc::parse_kv(f.text());
  std::fprintf(stderr, "sweepctl: %s: %s\n",
               cgs::svc::kv_get(kv, "name", "error").c_str(),
               cgs::svc::kv_get(kv, "message").c_str());
  const std::string retry = cgs::svc::kv_get(kv, "retry_after_s");
  if (!retry.empty()) {
    std::fprintf(stderr, "sweepctl: retry after %ss\n", retry.c_str());
  }
}

/// One-shot request/response verbs (submit, status, cancel, drain).
int simple_request(int port, MsgType type, const std::string& payload) {
  const int fd = dial(port);
  if (fd < 0) {
    std::fprintf(stderr, "sweepctl: cannot reach daemon on 127.0.0.1:%d\n",
                 port);
    return kExitUnavailable;
  }
  FrameParser parser;
  Frame f;
  int rc = kExitUnavailable;
  if (send_frame(fd, type, payload) && recv_frame(fd, parser, f)) {
    switch (f.type) {
      case MsgType::kAccepted: {
        const KvMap kv = cgs::svc::parse_kv(f.text());
        std::printf("job %s accepted (journal %s)\n",
                    cgs::svc::kv_get(kv, "job").c_str(),
                    cgs::svc::kv_get(kv, "journal").c_str());
        rc = kExitOk;
        break;
      }
      case MsgType::kReport:
        std::fputs(f.text().c_str(), stdout);
        rc = kExitOk;
        break;
      case MsgType::kError:
        print_error(f);
        rc = kExitJobsFailed;
        break;
      default:
        std::fprintf(stderr, "sweepctl: unexpected reply type %d\n",
                     int(std::uint8_t(f.type)));
        rc = kExitJobsFailed;
        break;
    }
  } else {
    std::fprintf(stderr, "sweepctl: connection lost\n");
  }
  ::close(fd);
  return rc;
}

void print_snapshot(const KvMap& kv) {
  std::printf("job %s  %s  %s/%s runs (%s/%s cells)",
              cgs::svc::kv_get(kv, "job").c_str(),
              cgs::svc::kv_get(kv, "state").c_str(),
              cgs::svc::kv_get(kv, "finished", "0").c_str(),
              cgs::svc::kv_get(kv, "total", "?").c_str(),
              cgs::svc::kv_get(kv, "cells_finished", "0").c_str(),
              cgs::svc::kv_get(kv, "cells", "?").c_str());
  const std::string failed = cgs::svc::kv_get(kv, "failed", "0");
  if (failed != "0") std::printf("  %s failed", failed.c_str());
  if (cgs::svc::kv_get(kv, "lossy") == "1") std::printf("  [lossy]");
  std::printf("\n");
  std::fflush(stdout);
}

/// Stream a job to its terminal state, reconnecting with deterministic
/// bounded backoff and resuming from the last seen snapshot seq.
int watch(int port, const std::string& job) {
  std::uint64_t last_seq = 0;
  int attempt = 0;
  constexpr int kMaxAttempts = 8;

  for (;;) {
    const int fd = dial(port);
    if (fd < 0) {
      ++attempt;
      if (attempt > kMaxAttempts) {
        std::fprintf(stderr,
                     "sweepctl: daemon unreachable after %d attempts\n",
                     kMaxAttempts);
        return kExitUnavailable;
      }
      const std::uint32_t wait = cgs::core::proc::backoff_ms(
          100, 5'000, attempt, std::uint64_t(port) ^ 0x77617463ULL);
      std::this_thread::sleep_for(std::chrono::milliseconds(wait));
      continue;
    }
    attempt = 0;  // a successful dial resets the clock

    KvMap req;
    req["job"] = job;
    if (last_seq > 0) req["seq"] = std::to_string(last_seq);
    FrameParser parser;
    Frame f;
    bool alive = send_frame(fd, MsgType::kWatch, cgs::svc::encode_kv(req));
    while (alive && recv_frame(fd, parser, f)) {
      const KvMap kv = cgs::svc::parse_kv(f.text());
      switch (f.type) {
        case MsgType::kSnapshot: {
          const std::string seq = cgs::svc::kv_get(kv, "seq");
          if (!seq.empty()) {
            last_seq = std::strtoull(seq.c_str(), nullptr, 10);
          }
          print_snapshot(kv);
          break;
        }
        case MsgType::kDone: {
          const std::string state = cgs::svc::kv_get(kv, "state");
          const std::string csv = cgs::svc::kv_get(kv, "csv");
          std::printf("job %s %s", job.c_str(), state.c_str());
          if (!csv.empty()) std::printf("  (csv %s_*.csv)", csv.c_str());
          const std::string error = cgs::svc::kv_get(kv, "error");
          if (!error.empty()) std::printf("  [%s]", error.c_str());
          std::printf("\n");
          ::close(fd);
          if (state == "done") return kExitOk;
          if (state == "cancelled") return kExitInterrupted;
          return kExitJobsFailed;
        }
        case MsgType::kError:
          print_error(f);
          ::close(fd);
          return kExitJobsFailed;
        default:
          break;  // reports etc.: ignore while watching
      }
    }
    // Connection dropped mid-watch (daemon drained or crashed): back off
    // and reconnect; last_seq suppresses replays of what we already saw.
    ::close(fd);
    ++attempt;
    if (attempt > kMaxAttempts) {
      std::fprintf(stderr, "sweepctl: lost the daemon for good\n");
      return kExitUnavailable;
    }
    const std::uint32_t wait = cgs::core::proc::backoff_ms(
        100, 5'000, attempt, std::uint64_t(port) ^ 0x77617463ULL);
    std::this_thread::sleep_for(std::chrono::milliseconds(wait));
  }
}

}  // namespace

int main(int argc, char** argv) {
  (void)::signal(SIGPIPE, SIG_IGN);
  int port = 0;
  int i = 1;
  for (; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--port" && i + 1 < argc) {
      port = std::atoi(argv[++i]);
    } else if (arg == "--portfile" && i + 1 < argc) {
      std::FILE* f = std::fopen(argv[++i], "r");
      if (f == nullptr || std::fscanf(f, "%d", &port) != 1) {
        std::fprintf(stderr, "sweepctl: cannot read port from %s\n",
                     argv[i]);
        if (f != nullptr) std::fclose(f);
        return kExitUsage;
      }
      std::fclose(f);
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return kExitOk;
    } else {
      break;  // first non-option: the verb
    }
  }
  if (port <= 0 || i >= argc) {
    usage(argv[0]);
    return kExitUsage;
  }

  const std::string verb = argv[i++];
  if (verb == "submit") {
    KvMap spec;
    for (; i < argc; ++i) {
      const std::string kv = argv[i];
      const std::size_t eq = kv.find('=');
      if (eq == std::string::npos || eq == 0) {
        std::fprintf(stderr, "sweepctl: submit args are key=value, got "
                             "'%s'\n",
                     kv.c_str());
        return kExitUsage;
      }
      spec[kv.substr(0, eq)] = kv.substr(eq + 1);
    }
    if (spec.empty()) {
      std::fprintf(stderr, "sweepctl: submit needs at least one "
                           "key=value\n");
      return kExitUsage;
    }
    return simple_request(port, MsgType::kSubmit, cgs::svc::encode_kv(spec));
  }
  if (verb == "status") return simple_request(port, MsgType::kStatus, "");
  if (verb == "watch") {
    if (i >= argc) {
      std::fprintf(stderr, "sweepctl: watch needs a job id\n");
      return kExitUsage;
    }
    return watch(port, argv[i]);
  }
  if (verb == "cancel") {
    if (i >= argc) {
      std::fprintf(stderr, "sweepctl: cancel needs a job id\n");
      return kExitUsage;
    }
    return simple_request(port, MsgType::kCancel,
                          "job=" + std::string(argv[i]) + "\n");
  }
  if (verb == "drain") return simple_request(port, MsgType::kDrain, "");

  std::fprintf(stderr, "sweepctl: unknown verb '%s'\n", verb.c_str());
  usage(argv[0]);
  return kExitUsage;
}
