#!/usr/bin/env python3
"""Run bench/perf_simcore and record the perf trajectory in BENCH_simcore.json.

Usage: bench_simcore_json.py <perf_simcore-binary> [output-json] [--allow-debug]

Writes one entry per benchmark with the median-of-repetitions wall time and
items/sec, so successive PRs have a machine-readable baseline to compare
against (see DESIGN.md "Performance architecture"). Run via the CMake target:

    cmake --build build --target bench_simcore_json

The baseline is only meaningful from an optimized binary: the run is REFUSED
when the binary reports a non-release build type (perf_simcore embeds it via
the cgs_build_type benchmark context), unless --allow-debug is passed — and
then the output is loudly marked tainted.
"""

import json
import subprocess
import sys
import tempfile


def main() -> int:
    args = [a for a in sys.argv[1:] if a != "--allow-debug"]
    allow_debug = "--allow-debug" in sys.argv[1:]
    if len(args) < 1:
        print(__doc__, file=sys.stderr)
        return 2
    binary = args[0]
    out_path = args[1] if len(args) > 1 else "BENCH_simcore.json"

    with tempfile.NamedTemporaryFile(suffix=".json") as tmp:
        try:
            subprocess.run(
                [
                    binary,
                    "--benchmark_repetitions=5",
                    "--benchmark_report_aggregates_only=true",
                    f"--benchmark_out={tmp.name}",
                    "--benchmark_out_format=json",
                ],
                check=True,
            )
        except (OSError, subprocess.CalledProcessError) as err:
            print(f"error: failed to run {binary}: {err}", file=sys.stderr)
            return 1
        raw = json.load(open(tmp.name))

    # The binary's own build type (bench/CMakeLists.txt bakes it in);
    # library_build_type is libbenchmark's and says nothing about our code.
    build_type = raw["context"].get(
        "cgs_build_type", raw["context"].get("library_build_type", "unknown")
    )
    if str(build_type).lower() not in ("release", "relwithdebinfo"):
        print(
            f"error: perf_simcore was built '{build_type}', not Release — a "
            "debug baseline poisons every future comparison.\n"
            "Rebuild with -DCMAKE_BUILD_TYPE=Release (or pass --allow-debug "
            "to record a tainted baseline anyway).",
            file=sys.stderr,
        )
        if not allow_debug:
            return 1
        print("warning: recording TAINTED non-release baseline", file=sys.stderr)

    results = {}
    for bench in raw["benchmarks"]:
        if bench.get("aggregate_name") != "median":
            continue
        name = bench["run_name"]
        entry = {
            "real_time": bench["real_time"],
            "time_unit": bench["time_unit"],
        }
        if "items_per_second" in bench:
            entry["items_per_second"] = bench["items_per_second"]
        results[name] = entry

    doc = {
        "context": {
            "host": raw["context"].get("host_name", "unknown"),
            "num_cpus": raw["context"].get("num_cpus"),
            "mhz_per_cpu": raw["context"].get("mhz_per_cpu"),
            "build_type": str(build_type).lower(),
        },
        "benchmarks": results,
    }
    with open(out_path, "w") as f:
        json.dump(doc, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"wrote {out_path} ({len(results)} benchmarks)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
