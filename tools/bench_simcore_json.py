#!/usr/bin/env python3
"""Record or check the simulation-core perf baseline (BENCH_simcore.json).

Record mode (default) runs bench/perf_simcore and writes one entry per
benchmark with the median-of-repetitions wall time and items/sec, so
successive PRs have a machine-readable baseline to compare against (see
DESIGN.md "Performance architecture"):

    bench_simcore_json.py <perf_simcore-binary> [output-json] [options]
    cmake --build build --target bench_simcore_json      # canonical route

Check mode re-runs the benchmarks and diffs them against a committed
baseline, exiting non-zero when any benchmark's median wall time regressed
beyond the tolerance:

    bench_simcore_json.py --check <perf_simcore-binary> [baseline-json] \\
        [--tolerance=0.15] [--filter=REGEX] [--repetitions=N]

Caveats the tolerance must absorb (and why the default is a generous 15%,
with CI running even looser — see .github/workflows/ci.yml):

  * absolute times are machine-dependent: a baseline recorded on one host
    is only a smoke bound on another, never a precision gate;
  * shared/virtualised runners add noise; medians help but do not fix a
    busy machine.  For real perf work, ignore this gate and A/B two
    binaries interleaved on a quiet host (EXPERIMENTS.md "Perf recipe").

Benchmarks present in the run but absent from the baseline are reported as
new (not failures); benchmarks in the baseline that no longer exist are
warnings, so stale baselines surface without bricking CI on a rename.

The baseline is only meaningful from an optimized binary: the run is
REFUSED when the binary reports a non-release build type (perf_simcore
embeds it via the cgs_build_type benchmark context), unless --allow-debug
is passed — and then the output is loudly marked tainted.
"""

import json
import re
import subprocess
import sys
import tempfile


def parse_args(argv):
    opts = {
        "check": False,
        "allow_debug": False,
        "tolerance": 0.15,
        "repetitions": 5,
        "filter": None,
        "positional": [],
    }
    for arg in argv:
        if arg == "--check":
            opts["check"] = True
        elif arg == "--allow-debug":
            opts["allow_debug"] = True
        elif arg.startswith("--tolerance="):
            opts["tolerance"] = float(arg.split("=", 1)[1])
        elif arg.startswith("--repetitions="):
            opts["repetitions"] = int(arg.split("=", 1)[1])
        elif arg.startswith("--filter="):
            opts["filter"] = arg.split("=", 1)[1]
        elif arg.startswith("--"):
            print(f"error: unknown option {arg}\n", file=sys.stderr)
            print(__doc__, file=sys.stderr)
            sys.exit(2)
        else:
            opts["positional"].append(arg)
    return opts


def run_benchmarks(binary, repetitions, bench_filter):
    """Run perf_simcore, return the parsed google-benchmark JSON document."""
    with tempfile.NamedTemporaryFile(suffix=".json") as tmp:
        cmd = [
            binary,
            f"--benchmark_repetitions={repetitions}",
            "--benchmark_report_aggregates_only=true",
            f"--benchmark_out={tmp.name}",
            "--benchmark_out_format=json",
        ]
        if bench_filter:
            cmd.append(f"--benchmark_filter={bench_filter}")
        subprocess.run(cmd, check=True)
        return json.load(open(tmp.name))


def build_type_of(raw):
    # The binary's own build type (bench/CMakeLists.txt bakes it in);
    # library_build_type is libbenchmark's and says nothing about our code.
    return str(
        raw["context"].get(
            "cgs_build_type", raw["context"].get("library_build_type", "unknown")
        )
    ).lower()


def refuse_debug(build_type, allow_debug):
    if build_type in ("release", "relwithdebinfo"):
        return
    print(
        f"error: perf_simcore was built '{build_type}', not Release — a "
        "debug baseline poisons every future comparison.\n"
        "Rebuild with -DCMAKE_BUILD_TYPE=Release (or pass --allow-debug "
        "to proceed with tainted numbers anyway).",
        file=sys.stderr,
    )
    if not allow_debug:
        sys.exit(1)
    print("warning: proceeding with TAINTED non-release numbers", file=sys.stderr)


def medians_of(raw):
    """Map run_name -> {real_time, time_unit, items_per_second?} medians.

    With --repetitions=1 google-benchmark emits no aggregates at all; fall
    back to the plain per-run rows so a single-repetition check still
    compares something instead of silently passing an empty diff.
    """
    medians = {}
    plain = {}
    for bench in raw["benchmarks"]:
        entry = {
            "real_time": bench["real_time"],
            "time_unit": bench["time_unit"],
        }
        if "items_per_second" in bench:
            entry["items_per_second"] = bench["items_per_second"]
        if bench.get("aggregate_name") == "median":
            medians[bench["run_name"]] = entry
        elif "aggregate_name" not in bench:
            plain[bench["run_name"]] = entry
    return medians or plain


def record(binary, out_path, opts):
    try:
        raw = run_benchmarks(binary, opts["repetitions"], opts["filter"])
    except (OSError, subprocess.CalledProcessError,
            json.JSONDecodeError) as err:
        print(f"error: failed to run {binary}: {err}", file=sys.stderr)
        return 1
    build_type = build_type_of(raw)
    refuse_debug(build_type, opts["allow_debug"])
    results = medians_of(raw)
    doc = {
        "context": {
            "host": raw["context"].get("host_name", "unknown"),
            "num_cpus": raw["context"].get("num_cpus"),
            "mhz_per_cpu": raw["context"].get("mhz_per_cpu"),
            "build_type": build_type,
        },
        "benchmarks": results,
    }
    with open(out_path, "w") as f:
        json.dump(doc, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"wrote {out_path} ({len(results)} benchmarks)")
    return 0


def to_ns(value, unit):
    scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}
    return value * scale.get(unit, 1.0)


def check(binary, baseline_path, opts):
    try:
        baseline = json.load(open(baseline_path))
    except (OSError, json.JSONDecodeError) as err:
        print(f"error: cannot read baseline {baseline_path}: {err}",
              file=sys.stderr)
        return 1
    base_benches = baseline.get("benchmarks", {})
    if opts["filter"]:
        pat = re.compile(opts["filter"])
        base_benches = {k: v for k, v in base_benches.items() if pat.search(k)}

    try:
        raw = run_benchmarks(binary, opts["repetitions"], opts["filter"])
    except (OSError, subprocess.CalledProcessError,
            json.JSONDecodeError) as err:
        print(f"error: failed to run {binary}: {err}", file=sys.stderr)
        return 1
    refuse_debug(build_type_of(raw), opts["allow_debug"])
    current = medians_of(raw)
    if not current:
        print("error: the benchmark run produced no results (bad --filter?)",
              file=sys.stderr)
        return 1

    tol = opts["tolerance"]
    regressions = []
    width = max((len(n) for n in current), default=20)
    print(f"\n{'benchmark':<{width}}  {'baseline':>12}  {'current':>12}  delta")
    for name in sorted(current):
        cur = current[name]
        cur_ns = to_ns(cur["real_time"], cur["time_unit"])
        if name not in base_benches:
            print(f"{name:<{width}}  {'—':>12}  {cur_ns:>10.0f}ns  (new)")
            continue
        base = base_benches[name]
        base_ns = to_ns(base["real_time"], base["time_unit"])
        delta = (cur_ns - base_ns) / base_ns
        flag = ""
        if delta > tol:
            flag = f"  REGRESSION (>{tol:.0%})"
            regressions.append((name, delta))
        print(
            f"{name:<{width}}  {base_ns:>10.0f}ns  {cur_ns:>10.0f}ns  "
            f"{delta:+7.1%}{flag}"
        )
    for name in sorted(set(base_benches) - set(current)):
        print(f"warning: baseline benchmark '{name}' not in this run",
              file=sys.stderr)

    if regressions:
        print(
            f"\nFAIL: {len(regressions)} benchmark(s) regressed beyond "
            f"{tol:.0%} vs {baseline_path}",
            file=sys.stderr,
        )
        return 1
    print(f"\nOK: no benchmark regressed beyond {tol:.0%} vs {baseline_path}")
    return 0


def main() -> int:
    opts = parse_args(sys.argv[1:])
    if len(opts["positional"]) < 1:
        print(__doc__, file=sys.stderr)
        return 2
    binary = opts["positional"][0]
    if opts["check"]:
        baseline = (
            opts["positional"][1]
            if len(opts["positional"]) > 1
            else "BENCH_simcore.json"
        )
        return check(binary, baseline, opts)
    out_path = (
        opts["positional"][1]
        if len(opts["positional"]) > 1
        else "BENCH_simcore.json"
    )
    return record(binary, out_path, opts)


if __name__ == "__main__":
    sys.exit(main())
