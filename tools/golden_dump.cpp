// Dumps FNV-1a hashes of the RunTrace series for a fixed set of paper-mix
// scenarios.  Used to (re)generate the constants in
// tests/integration/golden_trace_test.cpp: any refactor of the
// scenario -> testbed -> collectors spine must keep these bit-identical.
#include <cstdio>
#include <cstring>

#include "core/journal.hpp"
#include "core/testbed.hpp"

namespace {

// The whole-trace digest is the shared golden hasher (core/journal.hpp) —
// the same function the sweep journal stamps on every record, so journaled
// hashes are directly comparable to the golden constants.
using cgs::core::trace_hash;

template <typename T>
std::uint64_t hash_series(const std::vector<T>& v) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const T& x : v) h = cgs::core::fnv1a_bytes(h, &x, sizeof(T));
  return h;
}

}  // namespace

int main() {
  using namespace std::chrono;
  struct Cell {
    const char* name;
    cgs::stream::GameSystem sys;
    std::optional<cgs::tcp::CcAlgo> cc;
    std::uint64_t seed;
  };
  const Cell cells[] = {
      {"stadia_cubic", cgs::stream::GameSystem::kStadia,
       cgs::tcp::CcAlgo::kCubic, 1},
      {"geforce_bbr", cgs::stream::GameSystem::kGeForce,
       cgs::tcp::CcAlgo::kBbr, 11},
      {"luna_solo", cgs::stream::GameSystem::kLuna, std::nullopt, 5},
  };
  for (const Cell& c : cells) {
    cgs::core::Scenario sc;
    sc.system = c.sys;
    sc.tcp_algo = c.cc;
    sc.duration = seconds(90);
    sc.tcp_start = seconds(30);
    sc.tcp_stop = seconds(60);
    sc.seed = c.seed;
    cgs::core::Testbed bed(sc);
    const cgs::core::RunTrace t = bed.run();
    std::printf("%-14s trace=0x%016llx game=0x%016llx tcp=0x%016llx\n",
                c.name, (unsigned long long)trace_hash(t),
                (unsigned long long)hash_series(t.game_mbps),
                (unsigned long long)hash_series(t.tcp_mbps));
  }
  return 0;
}
