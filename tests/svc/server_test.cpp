// End-to-end daemon tests over a real loopback socket: submit/watch/done
// round trips, structured errors on a surviving session, bad-frame
// handling, slow-subscriber bounds, watch reconnect with seq resume, and
// the drain -> restart -> journal-resume path asserting byte-identical
// CSVs against an uninterrupted reference run.
#include "svc/server.hpp"

#include <gtest/gtest.h>
#include <netinet/in.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

#include <chrono>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/proc.hpp"
#include "core/report.hpp"
#include "core/sweep.hpp"
#include "svc/job_store.hpp"
#include "svc/protocol.hpp"

namespace cgs::svc {
namespace {

std::string tmp_dir(const std::string& name) {
  const std::string path = ::testing::TempDir() + "cgs_server_" + name;
  (void)::mkdir(path.c_str(), 0755);
  for (int id = 1; id <= 4; ++id) {
    const std::string base = path + "/job-" + std::to_string(id);
    for (const char* suffix : {".jnl", "_cells.csv", "_links.csv",
                               "_fleet.csv"}) {
      std::remove((base + suffix).c_str());
    }
  }
  std::remove((path + "/sweepd.state").c_str());
  std::remove((path + "/ref_cells.csv").c_str());
  std::remove((path + "/ref_links.csv").c_str());
  return path;
}

/// Fast inline cell: the 2-simulated-second full mix the sweep tests use.
KvMap quick_spec(int runs) {
  KvMap spec;
  spec["system"] = "stadia";
  spec["cc"] = "cubic";
  spec["duration_s"] = "2";
  spec["tcp_start_s"] = "0.5";
  spec["tcp_stop_s"] = "1.5";
  spec["seed"] = "100";
  spec["runs"] = std::to_string(runs);
  return spec;
}

std::string slurp(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

/// Blocking protocol client for tests.
class TestClient {
 public:
  explicit TestClient(int port) {
    (void)::signal(SIGPIPE, SIG_IGN);
    fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(std::uint16_t(port));
    connected_ = ::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                           sizeof addr) == 0;
  }
  ~TestClient() {
    if (fd_ >= 0) ::close(fd_);
  }
  TestClient(const TestClient&) = delete;
  TestClient& operator=(const TestClient&) = delete;

  [[nodiscard]] bool connected() const { return connected_; }

  void send(MsgType type, std::string_view payload) {
    const auto bytes = encode_frame(type, payload);
    ASSERT_TRUE(core::proc::write_exact(fd_, bytes.data(), bytes.size()));
  }

  void send_raw(const void* data, std::size_t n) {
    ASSERT_TRUE(core::proc::write_exact(fd_, data, n));
  }

  /// Next frame within `timeout_ms`; false on timeout, EOF or bad bytes.
  bool recv_frame(Frame& out, int timeout_ms = 60'000) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    for (;;) {
      const FrameParser::Status st = parser_.next(out);
      if (st == FrameParser::Status::kFrame) return true;
      if (st == FrameParser::Status::kBad) return false;
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - std::chrono::steady_clock::now());
      if (left.count() <= 0) return false;
      pollfd pfd{fd_, POLLIN, 0};
      const int pr = ::poll(&pfd, 1, int(left.count()));
      if (pr <= 0 && errno != EINTR) return false;
      unsigned char chunk[4096];
      const long r = core::proc::read_some(fd_, chunk, sizeof chunk);
      if (r <= 0) return false;  // EOF or error
      parser_.feed(chunk, std::size_t(r));
    }
  }

  /// Drain frames until one of `type` arrives (collecting everything).
  bool recv_until(MsgType type, std::vector<Frame>& seen,
                  int timeout_ms = 120'000) {
    Frame f;
    while (recv_frame(f, timeout_ms)) {
      seen.push_back(f);
      if (f.type == type) return true;
    }
    return false;
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
  FrameParser parser_;
};

/// Server on an OS-chosen port plus the thread running it.
class DaemonFixture {
 public:
  explicit DaemonFixture(ServerConfig cfg) : server_(std::move(cfg)) {
    port_ = server_.listen();
    thread_ = std::thread([this] { server_.run(); });
  }
  ~DaemonFixture() { stop(); }

  void stop() {
    if (thread_.joinable()) {
      server_.request_drain();
      thread_.join();
    }
  }

  [[nodiscard]] int port() const { return port_; }
  [[nodiscard]] Server& server() { return server_; }

 private:
  Server server_;
  int port_ = 0;
  std::thread thread_;
};

ServerConfig quick_config(const std::string& dir) {
  ServerConfig cfg;
  cfg.dir = dir;
  cfg.port = 0;  // OS-chosen: tests must never hardcode ports
  cfg.snapshot_ms = 10;
  cfg.default_runs = 2;
  cfg.journal_sync = false;  // in-process tests don't crash; fsync is slow
  return cfg;
}

TEST(Svc, SubmitWatchStreamsSnapshotsToDone) {
  const std::string dir = tmp_dir("submit");
  DaemonFixture daemon(quick_config(dir));
  TestClient client(daemon.port());
  ASSERT_TRUE(client.connected());

  client.send(MsgType::kSubmit, encode_kv(quick_spec(2)));
  Frame f;
  ASSERT_TRUE(client.recv_frame(f));
  ASSERT_EQ(f.type, MsgType::kAccepted) << f.text();
  const KvMap ack = parse_kv(f.text());
  EXPECT_EQ(kv_get(ack, "job"), "1");
  EXPECT_FALSE(kv_get(ack, "journal").empty());

  client.send(MsgType::kWatch, "job=1\n");
  std::vector<Frame> seen;
  ASSERT_TRUE(client.recv_until(MsgType::kDone, seen));

  int snapshots = 0;
  for (const Frame& fr : seen) {
    if (fr.type == MsgType::kSnapshot) ++snapshots;
  }
  EXPECT_GE(snapshots, 1) << "watch must stream at least one snapshot";

  const KvMap done = parse_kv(seen.back().text());
  EXPECT_EQ(kv_get(done, "job"), "1");
  EXPECT_EQ(kv_get(done, "state"), "done");
  const std::string prefix = kv_get(done, "csv");
  ASSERT_FALSE(prefix.empty());
  const std::string cells = slurp(prefix + "_cells.csv");
  EXPECT_NE(cells.find("cell,runs,"), std::string::npos)
      << "per-cell CSV must exist with its header";
}

TEST(Svc, StructuredErrorsLeaveTheSessionUsable) {
  const std::string dir = tmp_dir("errors");
  DaemonFixture daemon(quick_config(dir));
  TestClient client(daemon.port());
  ASSERT_TRUE(client.connected());
  Frame f;

  client.send(MsgType::kSubmit, "grid=no-such-grid\n");
  ASSERT_TRUE(client.recv_frame(f));
  ASSERT_EQ(f.type, MsgType::kError);
  EXPECT_EQ(kv_get(parse_kv(f.text()), "name"), "unknown-grid");

  KvMap bad = quick_spec(1);
  bad["cc"] = "warp-drive";
  client.send(MsgType::kSubmit, encode_kv(bad));
  ASSERT_TRUE(client.recv_frame(f));
  ASSERT_EQ(f.type, MsgType::kError);
  EXPECT_EQ(kv_get(parse_kv(f.text()), "name"), "invalid-scenario");

  KvMap invalid = quick_spec(1);
  invalid["duration_s"] = "-3";
  client.send(MsgType::kSubmit, encode_kv(invalid));
  ASSERT_TRUE(client.recv_frame(f));
  ASSERT_EQ(f.type, MsgType::kError);
  EXPECT_EQ(kv_get(parse_kv(f.text()), "name"), "invalid-scenario");

  client.send(MsgType::kWatch, "job=42\n");
  ASSERT_TRUE(client.recv_frame(f));
  ASSERT_EQ(f.type, MsgType::kError);
  EXPECT_EQ(kv_get(parse_kv(f.text()), "name"), "unknown-job");

  client.send(MsgType::kCancel, "job=42\n");
  ASSERT_TRUE(client.recv_frame(f));
  ASSERT_EQ(f.type, MsgType::kError);
  EXPECT_EQ(kv_get(parse_kv(f.text()), "name"), "unknown-job");

  // After all that abuse the session still serves status.
  client.send(MsgType::kStatus, "");
  ASSERT_TRUE(client.recv_frame(f));
  EXPECT_EQ(f.type, MsgType::kReport);
}

TEST(Svc, MalformedBytesGetOneBadFrameErrorThenClose) {
  const std::string dir = tmp_dir("badframe");
  DaemonFixture daemon(quick_config(dir));
  TestClient client(daemon.port());
  ASSERT_TRUE(client.connected());

  const char junk[] = "GET / HTTP/1.1\r\n\r\n";  // a confused port scanner
  client.send_raw(junk, sizeof junk - 1);
  Frame f;
  ASSERT_TRUE(client.recv_frame(f));
  ASSERT_EQ(f.type, MsgType::kError);
  EXPECT_EQ(kv_get(parse_kv(f.text()), "name"), "bad-frame");
  // Framing is lost: the daemon closes after the goodbye.
  EXPECT_FALSE(client.recv_frame(f, 10'000));

  // ...and a fresh, well-behaved session works fine.
  TestClient again(daemon.port());
  ASSERT_TRUE(again.connected());
  again.send(MsgType::kStatus, "");
  ASSERT_TRUE(again.recv_frame(f));
  EXPECT_EQ(f.type, MsgType::kReport);
}

TEST(Svc, SlowSubscriberNeverDelaysSweepCompletion) {
  const std::string dir = tmp_dir("slowsub");
  ServerConfig cfg = quick_config(dir);
  cfg.client_buffer_bytes = 512;  // tiny: force snapshot drops
  cfg.snapshot_ms = 1;            // and lots of snapshots to drop
  DaemonFixture daemon(cfg);

  TestClient stalled(daemon.port());
  ASSERT_TRUE(stalled.connected());
  stalled.send(MsgType::kSubmit, encode_kv(quick_spec(3)));
  Frame f;
  ASSERT_TRUE(stalled.recv_frame(f));
  ASSERT_EQ(f.type, MsgType::kAccepted);
  stalled.send(MsgType::kWatch, "job=1\n");
  // ...and then the stalled client never reads again.

  // A healthy client watches the same job to completion: the stalled
  // subscriber's full buffer must not slow the sweep or the daemon.
  TestClient healthy(daemon.port());
  ASSERT_TRUE(healthy.connected());
  healthy.send(MsgType::kWatch, "job=1\n");
  std::vector<Frame> seen;
  ASSERT_TRUE(healthy.recv_until(MsgType::kDone, seen));
  EXPECT_EQ(kv_get(parse_kv(seen.back().text()), "state"), "done");

  // The stalled session is still connected and, once it finally reads,
  // catches up to the terminal state (possibly marked lossy).
  std::vector<Frame> late;
  ASSERT_TRUE(stalled.recv_until(MsgType::kDone, late));
  EXPECT_EQ(kv_get(parse_kv(late.back().text()), "state"), "done");
}

TEST(Svc, WatchReconnectWithSeqSkipsOldSnapshots) {
  const std::string dir = tmp_dir("reconnect");
  DaemonFixture daemon(quick_config(dir));
  {
    TestClient client(daemon.port());
    ASSERT_TRUE(client.connected());
    client.send(MsgType::kSubmit, encode_kv(quick_spec(2)));
    Frame f;
    ASSERT_TRUE(client.recv_frame(f));
    ASSERT_EQ(f.type, MsgType::kAccepted);
    client.send(MsgType::kWatch, "job=1\n");
    std::vector<Frame> seen;
    ASSERT_TRUE(client.recv_until(MsgType::kDone, seen));
  }  // disconnect

  // Reconnect claiming a seq far past everything published: no stale
  // snapshot replays, just the terminal notification.
  TestClient back(daemon.port());
  ASSERT_TRUE(back.connected());
  back.send(MsgType::kWatch, "job=1\nseq=999999\n");
  Frame f;
  ASSERT_TRUE(back.recv_frame(f));
  EXPECT_EQ(f.type, MsgType::kDone) << f.text();

  // Reconnect from seq=0 replays the latest snapshot first.
  TestClient fresh(daemon.port());
  ASSERT_TRUE(fresh.connected());
  fresh.send(MsgType::kWatch, "job=1\n");
  ASSERT_TRUE(fresh.recv_frame(f));
  EXPECT_EQ(f.type, MsgType::kSnapshot);
  ASSERT_TRUE(fresh.recv_frame(f));
  EXPECT_EQ(f.type, MsgType::kDone);
}

TEST(Svc, DrainRequeuesInFlightJobAndRestartResumesByteIdentical) {
  const std::string dir = tmp_dir("resume");

  // Reference: the same cell run uninterrupted, straight on the engine.
  const KvMap spec = quick_spec(4);
  {
    core::SweepOptions opts;
    opts.runs = 4;
    core::SweepResult ref =
        core::run_sweep(inline_cells_from_spec(spec), opts);
    (void)core::write_sweep_csvs(dir + "/ref", ref);
  }

  // Incarnation 1: submit, wait for the first snapshot, then drain — the
  // in-flight job is interrupted, journaled and re-queued.
  {
    ServerConfig cfg = quick_config(dir);
    cfg.journal_sync = true;  // the crash-safety contract under test
    DaemonFixture daemon(cfg);
    TestClient client(daemon.port());
    ASSERT_TRUE(client.connected());
    client.send(MsgType::kSubmit, encode_kv(spec));
    Frame f;
    ASSERT_TRUE(client.recv_frame(f));
    ASSERT_EQ(f.type, MsgType::kAccepted) << f.text();
    client.send(MsgType::kWatch, "job=1\n");
    ASSERT_TRUE(client.recv_frame(f));
    daemon.stop();  // graceful drain mid-sweep
    JobState state{};
    ASSERT_TRUE(daemon.server().store().snapshot(1, &state, nullptr, nullptr,
                                                 nullptr, nullptr));
    // Usually kQueued (interrupted + re-queued); kDone only if the sweep
    // outran the drain.  Either way the restart below must converge.
    EXPECT_TRUE(state == JobState::kQueued || state == JobState::kDone)
        << to_string(state);
  }

  // Incarnation 2: recovery re-admits the job, the journal resume path
  // replays finished runs and executes the rest.
  {
    ServerConfig cfg = quick_config(dir);
    cfg.journal_sync = true;
    DaemonFixture daemon(cfg);
    TestClient client(daemon.port());
    ASSERT_TRUE(client.connected());
    client.send(MsgType::kWatch, "job=1\n");
    std::vector<Frame> seen;
    ASSERT_TRUE(client.recv_until(MsgType::kDone, seen));
    EXPECT_EQ(kv_get(parse_kv(seen.back().text()), "state"), "done");
  }

  // The whole point: the interrupted-and-resumed run's per-cell CSV is
  // byte-identical to the uninterrupted reference.
  const std::string resumed = slurp(dir + "/job-1_cells.csv");
  const std::string reference = slurp(dir + "/ref_cells.csv");
  ASSERT_FALSE(resumed.empty());
  EXPECT_EQ(resumed, reference);
}

TEST(Svc, SubmitDuringDrainIsRefusedStructurally) {
  const std::string dir = tmp_dir("draining");
  ServerConfig cfg = quick_config(dir);
  DaemonFixture daemon(cfg);
  TestClient client(daemon.port());
  ASSERT_TRUE(client.connected());

  // Keep the runner busy so the poll loop outlives the drain request long
  // enough to answer us.
  client.send(MsgType::kSubmit, encode_kv(quick_spec(4)));
  Frame f;
  ASSERT_TRUE(client.recv_frame(f));
  ASSERT_EQ(f.type, MsgType::kAccepted);

  daemon.server().request_drain();
  client.send(MsgType::kSubmit, encode_kv(quick_spec(1)));
  if (client.recv_frame(f, 30'000)) {
    ASSERT_EQ(f.type, MsgType::kError);
    EXPECT_EQ(kv_get(parse_kv(f.text()), "name"), "draining");
  }
  // (If the daemon won the race and closed first, the refusal is the
  // closed socket itself — equally structural, nothing hung.)
  daemon.stop();
}

}  // namespace
}  // namespace cgs::svc
