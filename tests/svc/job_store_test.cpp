// JobStore tests: bounded admission with retry-after backpressure, the
// job state machine (claim/finish/cancel/requeue), inline-spec parsing,
// and crash-tolerant persistence — state-file round trips, corrupt state
// files discarded, and journal-directory rescan re-admitting jobs the
// state file never heard of.
#include "svc/job_store.hpp"

#include <gtest/gtest.h>
#include <sys/stat.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/journal.hpp"
#include "stream/profiles.hpp"
#include "tcp/congestion_control.hpp"

namespace cgs::svc {
namespace {

/// Fresh scratch directory under gtest's temp dir.
std::string tmp_dir(const std::string& name) {
  const std::string path = ::testing::TempDir() + "cgs_job_store_" + name;
  (void)::mkdir(path.c_str(), 0755);
  // Reruns start clean: drop anything a previous run left behind.
  for (const char* f : {"/sweepd.state", "/job-1.jnl", "/job-2.jnl",
                        "/job-3.jnl", "/job-7.jnl"}) {
    std::remove((path + f).c_str());
  }
  return path;
}

KvMap smoke_spec(const std::string& seed = "1") {
  KvMap spec;
  spec["system"] = "stadia";
  spec["cc"] = "cubic";
  spec["duration_s"] = "2";
  spec["seed"] = seed;
  return spec;
}

TEST(Svc, AdmissionAssignsMonotonicIdsAndPersists) {
  const std::string dir = tmp_dir("admit");
  JobStore store(dir, 8);
  const auto a = store.submit(smoke_spec("1"));
  const auto b = store.submit(smoke_spec("2"));
  EXPECT_EQ(a.err, core::ProtoError::kNone);
  EXPECT_EQ(a.id, 1u);
  EXPECT_EQ(b.id, 2u);
  EXPECT_EQ(store.queued_count(), 2u);

  std::ifstream state(store.state_path(), std::ios::binary);
  EXPECT_TRUE(state.good()) << "submit must persist the state file";
}

TEST(Svc, FullQueueRejectsWithRetryAfter) {
  JobStore store(tmp_dir("full"), 2);
  ASSERT_EQ(store.submit(smoke_spec("1")).err, core::ProtoError::kNone);
  ASSERT_EQ(store.submit(smoke_spec("2")).err, core::ProtoError::kNone);
  const auto rejected = store.submit(smoke_spec("3"));
  EXPECT_EQ(rejected.err, core::ProtoError::kQueueFull);
  EXPECT_GT(rejected.retry_after_s, 0.0);
  EXPECT_EQ(store.queued_count(), 2u);
  // Claiming one frees a slot.
  EXPECT_EQ(store.claim_next(), 1u);
  EXPECT_EQ(store.submit(smoke_spec("3")).err, core::ProtoError::kNone);
}

TEST(Svc, ClaimFinishLifecycle) {
  JobStore store(tmp_dir("life"), 8);
  const auto adm = store.submit(smoke_spec());
  EXPECT_EQ(store.claim_next(), adm.id);
  JobState state{};
  ASSERT_TRUE(store.snapshot(adm.id, &state, nullptr, nullptr, nullptr,
                             nullptr));
  EXPECT_EQ(state, JobState::kRunning);
  EXPECT_EQ(store.claim_next(), 0u) << "queue is empty while job runs";

  store.finish(adm.id, JobState::kDone, "");
  ASSERT_TRUE(store.snapshot(adm.id, &state, nullptr, nullptr, nullptr,
                             nullptr));
  EXPECT_EQ(state, JobState::kDone);
}

TEST(Svc, CancelQueuedIsImmediateRunningIsFlagged) {
  JobStore store(tmp_dir("cancel"), 8);
  const auto a = store.submit(smoke_spec("1"));
  const auto b = store.submit(smoke_spec("2"));

  EXPECT_EQ(store.cancel(999), core::ProtoError::kUnknownJob);

  // Queued: terminal immediately, and out of the queue.
  EXPECT_EQ(store.cancel(b.id), core::ProtoError::kNone);
  JobState state{};
  ASSERT_TRUE(store.snapshot(b.id, &state, nullptr, nullptr, nullptr,
                             nullptr));
  EXPECT_EQ(state, JobState::kCancelled);
  EXPECT_EQ(store.queued_count(), 1u);
  EXPECT_EQ(store.cancel(b.id), core::ProtoError::kNone) << "idempotent";

  // Running: the stop flag flips; state stays running until the runner
  // observes the interruption.
  ASSERT_EQ(store.claim_next(), a.id);
  EXPECT_EQ(store.cancel(a.id), core::ProtoError::kNone);
  Job* job = store.find(a.id);
  ASSERT_NE(job, nullptr);
  EXPECT_TRUE(job->stop.load());
  EXPECT_TRUE(job->cancel_requested);
}

TEST(Svc, RequeueFrontPutsDrainedJobFirst) {
  JobStore store(tmp_dir("requeue"), 8);
  const auto a = store.submit(smoke_spec("1"));
  (void)store.submit(smoke_spec("2"));
  ASSERT_EQ(store.claim_next(), a.id);
  store.find(a.id)->stop.store(true);
  store.requeue_front(a.id);
  EXPECT_EQ(store.queued_count(), 2u);
  EXPECT_EQ(store.claim_next(), a.id) << "drained job resumes first";
  EXPECT_FALSE(store.find(a.id)->stop.load()) << "stop flag reset";
}

TEST(Svc, RecoverRoundTripsStateAndRequeuesNonTerminal) {
  const std::string dir = tmp_dir("recover");
  std::uint64_t running_id = 0;
  {
    JobStore store(dir, 8);
    (void)store.submit(smoke_spec("1"));       // stays queued
    const auto b = store.submit(smoke_spec("2"));
    running_id = store.claim_next();           // id 1 claimed first
    EXPECT_EQ(running_id, 1u);
    store.finish(b.id, JobState::kDone, "");   // terminal: must NOT requeue
  }
  JobStore store(dir, 8);
  const auto resumed = store.recover();
  // Job 1 was running at "crash" time: reported as resumed, re-queued.
  ASSERT_EQ(resumed.size(), 1u);
  EXPECT_EQ(resumed[0], 1u);
  EXPECT_EQ(store.queued_count(), 1u);
  JobState state{};
  KvMap spec;
  ASSERT_TRUE(store.snapshot(1, &state, &spec, nullptr, nullptr, nullptr));
  EXPECT_EQ(state, JobState::kQueued);
  EXPECT_EQ(kv_get(spec, "seed"), "1") << "spec survives the round trip";
  ASSERT_TRUE(store.snapshot(2, &state, nullptr, nullptr, nullptr, nullptr));
  EXPECT_EQ(state, JobState::kDone);
  // New ids continue past everything recovered.
  EXPECT_EQ(store.submit(smoke_spec("9")).id, 3u);
}

TEST(Svc, CorruptStateFileIsDiscardedNotFatal) {
  const std::string dir = tmp_dir("corrupt");
  {
    JobStore store(dir, 8);
    (void)store.submit(smoke_spec("1"));
  }
  {
    std::fstream fs(dir + "/sweepd.state",
                    std::ios::binary | std::ios::in | std::ios::out);
    fs.seekp(12);
    const char x = 0x5a;
    fs.write(&x, 1);
  }
  JobStore store(dir, 8);
  EXPECT_TRUE(store.recover().empty());
  EXPECT_EQ(store.queued_count(), 0u) << "corrupt state yields empty store";
  EXPECT_EQ(store.submit(smoke_spec()).id, 1u) << "ids restart cleanly";
}

TEST(Svc, JournalRescanReadmitsJobsTheStateFileMissed) {
  // Simulate the worst crash: no state file at all, only a job journal
  // whose provenance note carries the submission spec.
  const std::string dir = tmp_dir("rescan");
  const KvMap spec = smoke_spec("42");
  core::JournalMeta meta;
  meta.fingerprint = 0x1234ULL;
  meta.runs = 3;
  meta.cells = 1;
  meta.note = encode_kv(spec);
  { auto w = core::JournalWriter::create(dir + "/job-7.jnl", meta, true); }

  JobStore store(dir, 8);
  (void)store.recover();
  EXPECT_EQ(store.queued_count(), 1u);
  EXPECT_EQ(store.claim_next(), 7u);
  KvMap got;
  ASSERT_TRUE(store.snapshot(7, nullptr, &got, nullptr, nullptr, nullptr));
  EXPECT_EQ(got, spec) << "spec re-derived from the journal note";
  // next_id advanced past the rescanned id.
  EXPECT_EQ(store.submit(smoke_spec()).id, 8u);
}

TEST(Svc, InlineSpecBuildsOneValidatedCell) {
  KvMap spec;
  spec["system"] = "luna";
  spec["cc"] = "bbr";
  spec["cap_mbps"] = "15";
  spec["queue"] = "0.5";
  spec["duration_s"] = "2";
  spec["tcp_start_s"] = "0.5";
  spec["tcp_stop_s"] = "1.5";
  spec["seed"] = "77";
  const auto cells = inline_cells_from_spec(spec);
  ASSERT_EQ(cells.size(), 1u);
  const core::Scenario& sc = cells[0].scenario;
  EXPECT_EQ(sc.system, stream::GameSystem::kLuna);
  ASSERT_TRUE(sc.tcp_algo.has_value());
  EXPECT_EQ(*sc.tcp_algo, tcp::CcAlgo::kBbr);
  EXPECT_DOUBLE_EQ(sc.capacity.megabits_per_sec(), 15.0);
  EXPECT_DOUBLE_EQ(sc.queue_bdp_mult, 0.5);
  EXPECT_EQ(sc.seed, 77u);
  EXPECT_NO_THROW(sc.validate());
}

TEST(Svc, InlineSpecRejectsMalformedValuesNamingTheKey) {
  KvMap bad_system = smoke_spec();
  bad_system["system"] = "shadow";
  EXPECT_THROW((void)inline_cells_from_spec(bad_system),
               std::invalid_argument);

  KvMap bad_cap = smoke_spec();
  bad_cap["cap_mbps"] = "fast";
  try {
    (void)inline_cells_from_spec(bad_cap);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("cap_mbps"), std::string::npos)
        << "error must name the offending key: " << e.what();
  }

  KvMap bad_cc = smoke_spec();
  bad_cc["cc"] = "hybla";
  EXPECT_THROW((void)inline_cells_from_spec(bad_cc), std::invalid_argument);
}

}  // namespace
}  // namespace cgs::svc
