// Wire-protocol tests: frame round trips, incremental parsing across
// arbitrary byte-stream fragmentation, the bad-frame taxonomy (magic, CRC,
// oversized length), kv payload round trips, and a deterministic fuzz pass
// asserting the parser classifies garbage instead of crashing.
#include "svc/protocol.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "util/crc32.hpp"

namespace cgs::svc {
namespace {

std::vector<Frame> parse_all(FrameParser& p, const unsigned char* data,
                             std::size_t n, std::size_t chunk = SIZE_MAX) {
  std::vector<Frame> out;
  std::size_t off = 0;
  while (off < n) {
    const std::size_t take = std::min(chunk, n - off);
    p.feed(data + off, take);
    off += take;
    Frame f;
    while (p.next(f) == FrameParser::Status::kFrame) out.push_back(f);
  }
  return out;
}

TEST(Svc, FrameRoundTripsThroughParser) {
  const std::string payload = "grid=smoke\nruns=3\n";
  const auto bytes = encode_frame(MsgType::kSubmit, payload);
  EXPECT_EQ(bytes.size(), kFrameOverhead + payload.size());

  FrameParser p;
  const auto frames = parse_all(p, bytes.data(), bytes.size());
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].type, MsgType::kSubmit);
  EXPECT_EQ(frames[0].text(), payload);
}

TEST(Svc, ParserReassemblesAcrossByteAtATimeDelivery) {
  std::vector<unsigned char> stream;
  for (int i = 0; i < 5; ++i) {
    const auto f = encode_frame(MsgType::kSnapshot,
                                "job=1\nseq=" + std::to_string(i) + "\n");
    stream.insert(stream.end(), f.begin(), f.end());
  }
  FrameParser p;
  const auto frames = parse_all(p, stream.data(), stream.size(), 1);
  ASSERT_EQ(frames.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(kv_get(parse_kv(frames[i].text()), "seq"), std::to_string(i));
  }
}

TEST(Svc, EmptyPayloadFrameIsValid) {
  const auto bytes = encode_frame(MsgType::kStatus, "");
  FrameParser p;
  const auto frames = parse_all(p, bytes.data(), bytes.size());
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].type, MsgType::kStatus);
  EXPECT_TRUE(frames[0].payload.empty());
}

TEST(Svc, BadMagicIsTerminal) {
  auto bytes = encode_frame(MsgType::kStatus, "");
  bytes[0] ^= 0xff;
  FrameParser p;
  p.feed(bytes.data(), bytes.size());
  Frame f;
  EXPECT_EQ(p.next(f), FrameParser::Status::kBad);
  EXPECT_FALSE(p.bad_reason().empty());
  // Terminal: even good bytes afterwards stay bad (framing is lost).
  const auto good = encode_frame(MsgType::kStatus, "");
  p.feed(good.data(), good.size());
  EXPECT_EQ(p.next(f), FrameParser::Status::kBad);
}

TEST(Svc, CorruptedCrcIsTerminal) {
  auto bytes = encode_frame(MsgType::kSubmit, "grid=smoke\n");
  bytes[bytes.size() - 1] ^= 0x5a;
  FrameParser p;
  p.feed(bytes.data(), bytes.size());
  Frame f;
  EXPECT_EQ(p.next(f), FrameParser::Status::kBad);
}

TEST(Svc, CorruptedPayloadByteFailsCrc) {
  auto bytes = encode_frame(MsgType::kSubmit, "grid=smoke\n");
  bytes[kFrameOverhead - 4] ^= 0x01;  // first payload byte
  FrameParser p;
  p.feed(bytes.data(), bytes.size());
  Frame f;
  EXPECT_EQ(p.next(f), FrameParser::Status::kBad);
}

TEST(Svc, OversizedLengthRejectedBeforeBuffering) {
  // Hand-build a header claiming a payload far beyond kMaxPayload; the
  // parser must classify it from the 13 header bytes alone.
  std::vector<unsigned char> bytes(9);
  std::memcpy(bytes.data(), &kFrameMagic, 4);
  bytes[4] = std::uint8_t(MsgType::kSubmit);
  const std::uint32_t huge = std::uint32_t(kMaxPayload) + 1;
  std::memcpy(bytes.data() + 5, &huge, 4);
  FrameParser p;
  p.feed(bytes.data(), bytes.size());
  Frame f;
  EXPECT_EQ(p.next(f), FrameParser::Status::kBad);
}

TEST(Svc, PartialFrameNeedsMoreUntilComplete) {
  const auto bytes = encode_frame(MsgType::kWatch, "job=7\n");
  FrameParser p;
  Frame f;
  p.feed(bytes.data(), bytes.size() - 1);
  EXPECT_EQ(p.next(f), FrameParser::Status::kNeedMore);
  p.feed(bytes.data() + bytes.size() - 1, 1);
  EXPECT_EQ(p.next(f), FrameParser::Status::kFrame);
  EXPECT_EQ(f.type, MsgType::kWatch);
}

TEST(Svc, KvRoundTripsAndSorts) {
  KvMap kv;
  kv["runs"] = "3";
  kv["grid"] = "smoke";
  kv["note"] = "two words";
  const std::string text = encode_kv(kv);
  EXPECT_EQ(text, "grid=smoke\nnote=two words\nruns=3\n");
  EXPECT_EQ(parse_kv(text), kv);
}

TEST(Svc, KvNewlinesInValuesAreFlattened) {
  KvMap kv;
  kv["msg"] = "line1\nline2";
  const KvMap back = parse_kv(encode_kv(kv));
  EXPECT_EQ(kv_get(back, "msg"), "line1 line2");
}

TEST(Svc, KvParserSkipsGarbageLinesAndKeepsLastDuplicate) {
  const KvMap kv = parse_kv("no-equals-here\n=empty-key\na=1\na=2\n\n");
  EXPECT_EQ(kv.size(), 1u);
  EXPECT_EQ(kv_get(kv, "a"), "2");
  EXPECT_EQ(kv_get(kv, "missing", "fb"), "fb");
}

TEST(Svc, ErrorPayloadCarriesCodeNameMessageAndRetry) {
  const auto payload =
      encode_error(core::ProtoError::kQueueFull, "queue is full", 12.5);
  const KvMap kv = parse_kv(std::string(payload.begin(), payload.end()));
  EXPECT_EQ(kv_get(kv, "code"),
            std::to_string(int(core::ProtoError::kQueueFull)));
  EXPECT_EQ(kv_get(kv, "name"), "queue-full");
  EXPECT_EQ(kv_get(kv, "message"), "queue is full");
  EXPECT_EQ(kv_get(kv, "retry_after_s"), std::to_string(12.5));

  const auto no_retry = encode_error(core::ProtoError::kBadRequest, "nope");
  const KvMap kv2 = parse_kv(std::string(no_retry.begin(), no_retry.end()));
  EXPECT_EQ(kv2.count("retry_after_s"), 0u);
}

TEST(Svc, FuzzGarbageNeverParsesAsAFrame) {
  // Deterministic xorshift garbage: every stream must classify as kBad or
  // starve (kNeedMore) — never produce a frame, never crash.  Streams that
  // happen to open with the real magic are the interesting half of the
  // space, so force that on odd rounds.
  std::uint64_t rng = 0x9e3779b97f4a7c15ULL;
  const auto next = [&rng] {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    return rng;
  };
  for (int round = 0; round < 200; ++round) {
    std::vector<unsigned char> junk(1 + next() % 256);
    for (auto& b : junk) b = static_cast<unsigned char>(next());
    if (round % 2 == 1 && junk.size() >= 4) {
      std::memcpy(junk.data(), &kFrameMagic, 4);
    }
    FrameParser p;
    p.feed(junk.data(), junk.size());
    Frame f;
    const FrameParser::Status st = p.next(f);
    EXPECT_NE(st, FrameParser::Status::kFrame) << "round " << round;
  }
}

TEST(Svc, FuzzTruncatedRealFramesNeverCrash) {
  const auto whole = encode_frame(MsgType::kSubmit, "grid=smoke\nruns=3\n");
  for (std::size_t cut = 0; cut < whole.size(); ++cut) {
    FrameParser p;
    p.feed(whole.data(), cut);
    Frame f;
    EXPECT_EQ(p.next(f), FrameParser::Status::kNeedMore) << "cut " << cut;
  }
}

}  // namespace
}  // namespace cgs::svc
