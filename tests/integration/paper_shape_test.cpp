// Regression guards for the paper's headline comparative findings
// (EXPERIMENTS.md). These pin the calibrated dynamics: if a refactor flips
// one of the qualitative results, a test fails — not a bench eyeball.
// Shortened schedule (300 s, TCP in [100, 220)) keeps each run ~1 s.
#include <gtest/gtest.h>

#include "core/runner.hpp"

namespace cgs::core {
namespace {

using namespace cgs::literals;
using stream::GameSystem;
using tcp::CcAlgo;

ConditionResult run_cell(GameSystem sys, std::optional<CcAlgo> cc,
                         double cap_mbps, double queue_mult, int runs = 2) {
  Scenario sc;
  sc.system = sys;
  sc.tcp_algo = cc;
  sc.capacity = Bandwidth::mbps(cap_mbps);
  sc.queue_bdp_mult = queue_mult;
  sc.duration = 300_sec;
  sc.tcp_start = 100_sec;
  sc.tcp_stop = 220_sec;
  sc.seed = 7;
  RunnerOptions opts;
  opts.runs = runs;
  return run_condition(sc, opts);
}

// AnalysisWindows matching the shortened schedule.
AnalysisWindows short_windows() {
  AnalysisWindows w;
  w.original_from = 40_sec;
  w.original_to = 100_sec;
  w.settled_from = 160_sec;
  w.settled_to = 220_sec;
  w.fairness_from = 130_sec;
  w.fairness_to = 220_sec;
  w.recovery_limit = 80_sec;
  return w;
}

double fairness(const ConditionResult& r) {
  return fairness_ratio(r.game.mean, r.tcp.mean,
                        std::chrono::milliseconds(500), r.scenario.capacity,
                        short_windows());
}

// §4.1/Fig 3: "Stadia dominates, taking about twice what is fair" vs Cubic
// at small queues.
TEST(PaperShape, StadiaBeatsCubicAtSmallQueue) {
  const auto r = run_cell(GameSystem::kStadia, CcAlgo::kCubic, 35.0, 0.5);
  EXPECT_GT(fairness(r), 0.2);
}

// Fig 3: Stadia defers at bloated queues vs Cubic (the two cool 7x cells).
TEST(PaperShape, StadiaDefersToCubicAtBloatedQueue) {
  const auto r = run_cell(GameSystem::kStadia, CcAlgo::kCubic, 35.0, 7.0);
  EXPECT_LT(fairness(r), -0.1);
}

// §4.1: "GeForce defers and lets the TCP flow have about twice what is
// fair" — below fair share against both CCAs.
TEST(PaperShape, GeForceAlwaysBelowFairShare) {
  for (CcAlgo cc : {CcAlgo::kCubic, CcAlgo::kBbr}) {
    for (double q : {0.5, 7.0}) {
      const auto r = run_cell(GameSystem::kGeForce, cc, 25.0, q);
      EXPECT_LT(fairness(r), 0.0)
          << "cc=" << tcp::to_string(cc) << " q=" << q;
    }
  }
}

// §4.1: Luna loses its fair share to BBR at every queue size.
TEST(PaperShape, LunaLosesToBbr) {
  for (double q : {0.5, 2.0, 7.0}) {
    const auto r = run_cell(GameSystem::kLuna, CcAlgo::kBbr, 25.0, q);
    EXPECT_LT(fairness(r), -0.15) << "q=" << q;
  }
}

// §4.3/Table 4: with Cubic the RTT tracks the 7x queue limit; with BBR it
// is roughly halved (inflight cap).
TEST(PaperShape, BbrHalvesBufferbloatRtt) {
  const auto cubic = run_cell(GameSystem::kStadia, CcAlgo::kCubic, 25.0, 7.0);
  const auto bbr = run_cell(GameSystem::kStadia, CcAlgo::kBbr, 25.0, 7.0);
  EXPECT_GT(cubic.rtt_mean_ms, 80.0);
  EXPECT_LT(bbr.rtt_mean_ms, cubic.rtt_mean_ms / 1.5);
}

// Table 3: solo systems keep queuing low even at a bloated queue.
TEST(PaperShape, SoloSystemsAvoidSelfBufferbloat) {
  for (GameSystem sys : {GameSystem::kStadia, GameSystem::kGeForce}) {
    const auto r = run_cell(sys, std::nullopt, 25.0, 7.0);
    EXPECT_LT(r.rtt_mean_ms, 35.0) << stream::to_string(sys);
  }
}

// Table 5: GeForce's frame rate is resilient under competition while
// Stadia's and Luna's degrade against BBR at a small queue.
TEST(PaperShape, GeForceFramerateResilient) {
  const auto gf = run_cell(GameSystem::kGeForce, CcAlgo::kBbr, 25.0, 0.5);
  const auto st = run_cell(GameSystem::kStadia, CcAlgo::kBbr, 25.0, 0.5);
  const auto lu = run_cell(GameSystem::kLuna, CcAlgo::kBbr, 25.0, 0.5);
  EXPECT_GT(gf.fps_mean, 45.0);
  EXPECT_LT(st.fps_mean, gf.fps_mean);
  EXPECT_LT(lu.fps_mean, gf.fps_mean);
}

// Table 5 7x rows: nearly full frame rate for Stadia/GeForce when the
// queue absorbs the burstiness.
TEST(PaperShape, BigQueuesRestoreFramerate) {
  const auto st = run_cell(GameSystem::kStadia, CcAlgo::kBbr, 25.0, 7.0);
  EXPECT_GT(st.fps_mean, 55.0);
}

// §4.3: loss stays small in absolute terms (well under a few percent) for
// the solo baselines.
TEST(PaperShape, SoloLossNearZero) {
  for (GameSystem sys : {GameSystem::kStadia, GameSystem::kGeForce,
                         GameSystem::kLuna}) {
    const auto r = run_cell(sys, std::nullopt, 25.0, 2.0);
    EXPECT_LT(r.loss_mean, 0.02) << stream::to_string(sys);
  }
}

}  // namespace
}  // namespace cgs::core
