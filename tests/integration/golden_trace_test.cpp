// Golden same-seed traces: the paper-default scenario must produce
// bit-identical RunTrace series across refactors of the
// scenario -> testbed -> collectors spine.  The constants below were
// captured with tools/golden_dump.cpp; if a change legitimately alters
// the simulation (new RNG draws, different event order), regenerate them
// with that tool and justify the break in the commit message.
#include <gtest/gtest.h>

#include <cstdint>

#include "core/journal.hpp"
#include "core/testbed.hpp"

namespace cgs::core {
namespace {

using namespace std::chrono;

// The shared golden hasher (core/journal.hpp) — the exact function the
// sweep journal stamps on every record, so journaled hashes are directly
// comparable to the constants below.
std::uint64_t hash_trace(const RunTrace& t) { return trace_hash(t); }

struct GoldenCell {
  const char* name;
  stream::GameSystem sys;
  std::optional<tcp::CcAlgo> cc;
  std::uint64_t seed;
  std::uint64_t trace_hash;
};

// Captured from the pre-refactor (scalar-only) testbed; see file comment.
const GoldenCell kCells[] = {
    {"stadia_cubic", stream::GameSystem::kStadia, tcp::CcAlgo::kCubic, 1,
     0x058c4966df7104a9ULL},
    {"geforce_bbr", stream::GameSystem::kGeForce, tcp::CcAlgo::kBbr, 11,
     0x77398256f15628cfULL},
    {"luna_solo", stream::GameSystem::kLuna, std::nullopt, 5,
     0x7ba4077b404e8f04ULL},
};

Scenario scalar_scenario(const GoldenCell& c) {
  Scenario sc;
  sc.system = c.sys;
  sc.tcp_algo = c.cc;
  sc.duration = seconds(90);
  sc.tcp_start = seconds(30);
  sc.tcp_stop = seconds(60);
  sc.seed = c.seed;
  return sc;
}

TEST(GoldenTrace, ScalarScenarioMatchesPreRefactorHashes) {
  for (const GoldenCell& c : kCells) {
    Testbed bed(scalar_scenario(c));
    EXPECT_EQ(hash_trace(bed.run()), c.trace_hash) << c.name;
  }
}

TEST(GoldenTrace, ExplicitPaperMixMatchesScalarSynthesis) {
  // Spelling the default mix out as FlowSpecs — with the historical ids —
  // must be indistinguishable from the scalar back-compat path.
  for (const GoldenCell& c : kCells) {
    Scenario sc = scalar_scenario(c);
    FlowSpec g = FlowSpec::game_stream();
    g.id = 1;
    g.name = "game";
    sc.flows.push_back(g);
    if (c.cc) {
      FlowSpec t = FlowSpec::bulk_tcp(*c.cc, seconds(30), seconds(60));
      t.id = 2;
      t.name = "tcp";
      sc.flows.push_back(t);
    }
    FlowSpec p = FlowSpec::ping();
    p.id = 3;
    p.name = "ping";
    sc.flows.push_back(p);

    Testbed bed(sc);
    EXPECT_EQ(hash_trace(bed.run()), c.trace_hash) << c.name;
  }
}

}  // namespace
}  // namespace cgs::core
