// Golden same-seed traces: the paper-default scenario must produce
// bit-identical RunTrace series across refactors of the
// scenario -> testbed -> collectors spine.  The constants below were
// captured with tools/golden_dump.cpp; if a change legitimately alters
// the simulation (new RNG draws, different event order), regenerate them
// with that tool and justify the break in the commit message.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "core/journal.hpp"
#include "core/sweep.hpp"
#include "core/testbed.hpp"

namespace cgs::core {
namespace {

using namespace std::chrono;

// The shared golden hasher (core/journal.hpp) — the exact function the
// sweep journal stamps on every record, so journaled hashes are directly
// comparable to the constants below.
std::uint64_t hash_trace(const RunTrace& t) { return trace_hash(t); }

struct GoldenCell {
  const char* name;
  stream::GameSystem sys;
  std::optional<tcp::CcAlgo> cc;
  std::uint64_t seed;
  std::uint64_t trace_hash;
};

// Captured from the pre-refactor (scalar-only) testbed; see file comment.
const GoldenCell kCells[] = {
    {"stadia_cubic", stream::GameSystem::kStadia, tcp::CcAlgo::kCubic, 1,
     0x058c4966df7104a9ULL},
    {"geforce_bbr", stream::GameSystem::kGeForce, tcp::CcAlgo::kBbr, 11,
     0x77398256f15628cfULL},
    {"luna_solo", stream::GameSystem::kLuna, std::nullopt, 5,
     0x7ba4077b404e8f04ULL},
};

Scenario scalar_scenario(const GoldenCell& c) {
  Scenario sc;
  sc.system = c.sys;
  sc.tcp_algo = c.cc;
  sc.duration = seconds(90);
  sc.tcp_start = seconds(30);
  sc.tcp_stop = seconds(60);
  sc.seed = c.seed;
  return sc;
}

TEST(GoldenTrace, ScalarScenarioMatchesPreRefactorHashes) {
  for (const GoldenCell& c : kCells) {
    Testbed bed(scalar_scenario(c));
    EXPECT_EQ(hash_trace(bed.run()), c.trace_hash) << c.name;
  }
}

TEST(GoldenTrace, ExplicitPaperMixMatchesScalarSynthesis) {
  // Spelling the default mix out as FlowSpecs — with the historical ids —
  // must be indistinguishable from the scalar back-compat path.
  for (const GoldenCell& c : kCells) {
    Scenario sc = scalar_scenario(c);
    FlowSpec g = FlowSpec::game_stream();
    g.id = 1;
    g.name = "game";
    sc.flows.push_back(g);
    if (c.cc) {
      FlowSpec t = FlowSpec::bulk_tcp(*c.cc, seconds(30), seconds(60));
      t.id = 2;
      t.name = "tcp";
      sc.flows.push_back(t);
    }
    FlowSpec p = FlowSpec::ping();
    p.id = 3;
    p.name = "ping";
    sc.flows.push_back(p);

    Testbed bed(sc);
    EXPECT_EQ(hash_trace(bed.run()), c.trace_hash) << c.name;
  }
}

TEST(GoldenTrace, ExplicitSingleBottleneckTopologyMatchesScalarSynthesis) {
  // Spelling the paper's Figure-1 shape as an explicit one-link topology
  // must be indistinguishable from the scalar synthesis — same Link,
  // demux and queue-sizing construction, so byte-identical traces.
  for (const GoldenCell& c : kCells) {
    const Scenario scalar = scalar_scenario(c);
    Scenario topo = scalar;
    topo.topology =
        net::TopologySpec::single_bottleneck(scalar.capacity, kBottleneckProp);

    Testbed scalar_bed(scalar);
    Testbed topo_bed(topo);
    const auto scalar_bytes = serialize_trace(scalar_bed.run());
    const auto topo_bytes = serialize_trace(topo_bed.run());
    EXPECT_EQ(scalar_bytes, topo_bytes) << c.name;
    EXPECT_EQ(trace_hash(deserialize_trace(topo_bytes.data(),
                                           topo_bytes.size())),
              c.trace_hash)
        << c.name;
  }
}

TEST(GoldenTrace, TopologySpellingsJournalIdenticalBytesAtAnyThreadCount) {
  // Three spellings of the same stadia/cubic condition — scalar synthesis,
  // explicit FlowSpecs, explicit one-link topology — swept at 1/2/8
  // threads: every (cell, run) slot must journal the same payload bytes,
  // every spelling must journal the same trace as every other, and run 0
  // must still carry the pre-refactor golden hash.
  const GoldenCell& gold = kCells[0];
  const Scenario scalar = scalar_scenario(gold);

  Scenario flows = scalar;
  {
    FlowSpec g = FlowSpec::game_stream();
    g.id = 1;
    g.name = "game";
    flows.flows.push_back(g);
    FlowSpec t = FlowSpec::bulk_tcp(*gold.cc, seconds(30), seconds(60));
    t.id = 2;
    t.name = "tcp";
    flows.flows.push_back(t);
    FlowSpec p = FlowSpec::ping();
    p.id = 3;
    p.name = "ping";
    flows.flows.push_back(p);
  }

  Scenario topo = scalar;
  topo.topology =
      net::TopologySpec::single_bottleneck(scalar.capacity, kBottleneckProp);

  const std::vector<SweepCell> cells = {
      {"scalar", scalar}, {"flows", flows}, {"topo", topo}};
  constexpr int kRuns = 2;

  std::vector<std::vector<JournalEntry>> slots_by_threads;
  for (const int threads : {1, 2, 8}) {
    const std::string journal = ::testing::TempDir() +
                                "cgs_golden_topology_t" +
                                std::to_string(threads) + ".jnl";
    std::remove(journal.c_str());
    SweepOptions opts;
    opts.runs = kRuns;
    opts.threads = threads;
    opts.journal_path = journal;
    opts.journal_sync = false;
    const SweepResult swept = run_sweep(cells, opts);
    EXPECT_EQ(swept.report.failed(), 0u) << "threads=" << threads;

    const auto scan = read_journal(journal);
    ASSERT_TRUE(scan.has_value());
    ASSERT_EQ(scan->entries.size(), cells.size() * kRuns);
    std::vector<JournalEntry> slots(scan->entries.size());
    for (const JournalEntry& e : scan->entries) {
      slots[e.cell * kRuns + e.run] = e;
    }
    slots_by_threads.push_back(std::move(slots));
    std::remove(journal.c_str());
  }

  const auto& ref = slots_by_threads.front();
  for (std::size_t s = 0; s < ref.size(); ++s) {
    ASSERT_TRUE(ref[s].ok) << "slot " << s;
    // Thread-count independence: identical journal bytes per slot.
    for (std::size_t v = 1; v < slots_by_threads.size(); ++v) {
      EXPECT_EQ(slots_by_threads[v][s].trace_hash, ref[s].trace_hash)
          << "slot " << s;
      EXPECT_EQ(slots_by_threads[v][s].payload, ref[s].payload)
          << "slot " << s;
    }
    // Spelling independence: cells 1 and 2 match cell 0 run-for-run.
    EXPECT_EQ(ref[s].payload, ref[s % kRuns].payload) << "slot " << s;
  }
  // The pre-refactor pin: run 0 of every spelling is the golden seed.
  EXPECT_EQ(ref[0].trace_hash, gold.trace_hash);
}

}  // namespace
}  // namespace cgs::core
