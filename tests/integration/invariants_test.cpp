// Property-style invariant sweeps over the full experiment grid
// (parameterised gtest): conservation laws and sanity bounds that must hold
// for EVERY system x CCA x queue-size combination, on shortened schedules.
#include <gtest/gtest.h>

#include "core/testbed.hpp"

namespace cgs::core {
namespace {

using namespace cgs::literals;
using Param = std::tuple<stream::GameSystem, tcp::CcAlgo, double>;

class GridInvariants : public ::testing::TestWithParam<Param> {
 protected:
  Scenario scenario() const {
    const auto& [sys, cc, q] = GetParam();
    Scenario sc;
    sc.system = sys;
    sc.tcp_algo = cc;
    sc.capacity = 25_mbps;
    sc.queue_bdp_mult = q;
    sc.duration = 60_sec;
    sc.tcp_start = 20_sec;
    sc.tcp_stop = 40_sec;
    sc.seed = 99;
    return sc;
  }
};

TEST_P(GridInvariants, ConservationAndBounds) {
  const Scenario sc = scenario();
  Testbed bed(sc);

  // Tap the bottleneck for conservation accounting.
  std::uint64_t arrived = 0, dropped = 0, delivered = 0;
  std::int64_t delivered_bytes = 0;
  std::set<std::uint64_t> seen_uids;
  bool duplicate = false;
  bed.router().bottleneck().sniffer().on_arrival(
      [&](const net::Packet&, Time) { ++arrived; });
  bed.router().bottleneck().sniffer().on_drop(
      [&](const net::Packet&, net::DropReason, Time) { ++dropped; });
  bed.router().bottleneck().sniffer().on_deliver(
      [&](const net::Packet& p, Time) {
        ++delivered;
        delivered_bytes += p.size_bytes;
        duplicate |= !seen_uids.insert(p.uid).second;
      });

  const RunTrace trace = bed.run();

  // 1) Packet conservation at the queue: everything that arrived was
  //    delivered, dropped, or is still resident (in the queue, in the
  //    transmitter, or propagating — propagation holds at most
  //    prop_delay/serialisation_time ~ a few dozen packets).
  const std::uint64_t resident =
      bed.router().bottleneck().queue().packet_count() + 64;
  EXPECT_LE(arrived, delivered + dropped + resident);
  EXPECT_GE(arrived, delivered + dropped);

  // 2) No packet delivered twice.
  EXPECT_FALSE(duplicate);

  // 3) Link never exceeds capacity: delivered bytes over the run fit in
  //    capacity * duration (with one packet of slack).
  EXPECT_LE(delivered_bytes,
            sc.capacity.bytes_over(sc.duration).bytes() + 1514);

  // 4) The game receiver's loss accounting is a valid fraction.
  const double loss = bed.game_receiver().loss_rate();
  EXPECT_GE(loss, 0.0);
  EXPECT_LE(loss, 1.0);

  // 5) Every ping RTT >= base RTT (nothing travels faster than the path).
  for (const auto& s : trace.rtt) {
    EXPECT_GE(s.rtt, sc.base_rtt - 100_us);
  }

  // 6) Displayed frame rate can never exceed the 60 f/s encoder cadence.
  EXPECT_LE(trace.fps_over(5_sec, 60_sec), 61.0);

  // 7) TCP delivered bytes are contiguous in-order bytes; the receiver
  //    can't have delivered more than the sender ever ACKed + one window.
  auto* tcp = bed.tcp_flow();
  ASSERT_NE(tcp, nullptr);
  EXPECT_GE(tcp->sender().bytes_acked() + ByteSize(2 * 1448),
            tcp->receiver().bytes_delivered());

  // 8) Bitrate series are non-negative and bounded by capacity + slack.
  for (double v : trace.game_mbps) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, sc.capacity.megabits_per_sec() * 1.05 + 0.5);
  }
}

TEST_P(GridInvariants, DeterministicReplay) {
  const Scenario sc = scenario();
  auto run_sig = [&] {
    Testbed bed(sc);
    const RunTrace t = bed.run();
    double sum = 0;
    for (double v : t.game_mbps) sum += v;
    for (double v : t.tcp_mbps) sum += v;
    return std::tuple{sum, t.rtt.size(), t.frame_times.size(),
                      bed.simulator().processed_events()};
  };
  EXPECT_EQ(run_sig(), run_sig());
}

INSTANTIATE_TEST_SUITE_P(
    FullGrid, GridInvariants,
    ::testing::Combine(
        ::testing::Values(stream::GameSystem::kStadia,
                          stream::GameSystem::kGeForce,
                          stream::GameSystem::kLuna),
        ::testing::Values(tcp::CcAlgo::kCubic, tcp::CcAlgo::kBbr),
        ::testing::Values(0.5, 2.0, 7.0)),
    [](const auto& info) {
      const auto sys = std::get<0>(info.param);
      const auto cc = std::get<1>(info.param);
      const double q = std::get<2>(info.param);
      std::string name = std::string(stream::to_string(sys)) + "_" +
                         std::string(tcp::to_string(cc)) + "_q" +
                         (q < 1.0 ? "05" : (q < 5.0 ? "2" : "7"));
      return name;
    });

// The AQM disciplines must satisfy the same conservation law.
class AqmInvariants : public ::testing::TestWithParam<QueueKind> {};

TEST_P(AqmInvariants, Conservation) {
  Scenario sc;
  sc.queue_kind = GetParam();
  sc.capacity = 25_mbps;
  sc.duration = 40_sec;
  sc.tcp_start = 10_sec;
  sc.tcp_stop = 30_sec;
  Testbed bed(sc);
  std::uint64_t arrived = 0, dropped = 0, delivered = 0;
  bed.router().bottleneck().sniffer().on_arrival(
      [&](const net::Packet&, Time) { ++arrived; });
  bed.router().bottleneck().sniffer().on_drop(
      [&](const net::Packet&, net::DropReason, Time) { ++dropped; });
  bed.router().bottleneck().sniffer().on_deliver(
      [&](const net::Packet&, Time) { ++delivered; });
  (void)bed.run();
  EXPECT_LE(arrived, delivered + dropped +
                         bed.router().bottleneck().queue().packet_count() + 64);
  EXPECT_GE(arrived, delivered + dropped);
}

INSTANTIATE_TEST_SUITE_P(AllQdiscs, AqmInvariants,
                         ::testing::Values(QueueKind::kDropTail,
                                           QueueKind::kCoDel,
                                           QueueKind::kFqCoDel),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

}  // namespace
}  // namespace cgs::core
