// Parking-lot topology end-to-end: multi-bottleneck scenarios through the
// full Testbed -> collectors -> aggregate -> sweep/journal spine, with the
// conservation and fairness sanity checks the single-bottleneck testbed
// never needed (per-hop occupancy bounds, per-link drop accounting,
// hop-local congestion, cross-traffic fairness per hop).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <numeric>
#include <string>
#include <vector>

#include "core/journal.hpp"
#include "core/sweep.hpp"
#include "core/testbed.hpp"

namespace cgs::core {
namespace {

using namespace std::chrono;

/// Fast 3-hop lot: cross traffic on every hop from t=5 s.
ParkingLotParams quick_lot(std::uint64_t seed = 3) {
  ParkingLotParams p;
  p.hops = 3;
  p.duration = seconds(30);
  p.tcp_start = seconds(5);
  p.tcp_stop = seconds(25);
  p.seed = seed;
  return p;
}

double mean_over(const RunTrace& t, const std::vector<double>& series,
                 Time from, Time to) {
  return t.mean_bitrate_mbps(series, from, to);
}

/// End-of-run value of a boundary-indexed cumulative counter series.
/// The series carries n_buckets + 1 boundary slots but the sampler's last
/// firing lands on the penultimate boundary (a legacy collectors quirk kept
/// for golden bit-identity), so the final written count lives at size()-2.
std::uint64_t final_count(const std::vector<std::uint64_t>& s) {
  return s.size() >= 2 ? s[s.size() - 2] : 0;
}

TEST(ParkingLot, RunsEndToEndWithPerLinkSeries) {
  Scenario sc = parking_lot_scenario(quick_lot());
  sc.audit = Scenario::AuditMode::kOn;
  Testbed bed(sc);
  EXPECT_EQ(bed.topology().link_count(), 3u);
  const RunTrace t = bed.run();

  ASSERT_EQ(t.links.size(), 3u);
  EXPECT_EQ(t.links[0].name, "hop0");
  EXPECT_EQ(t.links[2].name, "hop2");
  ASSERT_NE(t.link("hop1"), nullptr);
  EXPECT_EQ(t.link("nope"), nullptr);

  // The game stream crossed all three hops and delivered.
  EXPECT_GT(mean_over(t, t.game_mbps, seconds(10), seconds(25)), 1.0);
  // Every hop carried at least the end-to-end game traffic mid-run.
  for (const LinkTrace& l : t.links) {
    EXPECT_GT(mean_over(t, l.util_mbps, seconds(10), seconds(25)), 1.0)
        << l.name;
  }
}

TEST(ParkingLot, TestbedRouterRefusesMultiBottleneckTopologies) {
  Scenario sc = parking_lot_scenario(quick_lot());
  Testbed bed(sc);
  try {
    (void)bed.router();
    FAIL() << "expected std::logic_error";
  } catch (const std::logic_error& e) {
    EXPECT_NE(std::string(e.what()).find("parkinglot3"), std::string::npos)
        << e.what();
  }
  // The per-link surface still addresses each hop.
  EXPECT_EQ(bed.topology().link_at(1).name(), "hop1");
}

TEST(ParkingLot, QueueOccupancyStaysWithinEachHopsCapacity) {
  ParkingLotParams p = quick_lot(5);
  p.queue_bdp_mult = 0.5;  // shallow queues: the bound actually binds
  Scenario sc = parking_lot_scenario(p);
  sc.audit = Scenario::AuditMode::kOn;  // event-granularity bound check
  Testbed bed(sc);
  const RunTrace t = bed.run();

  ASSERT_EQ(t.links.size(), bed.topology().link_count());
  for (std::size_t i = 0; i < t.links.size(); ++i) {
    const auto cap = std::uint64_t(bed.topology().queue_capacity(i).bytes());
    for (std::uint64_t depth : t.links[i].depth_bytes) {
      ASSERT_LE(depth, cap) << t.links[i].name;
    }
  }
}

TEST(ParkingLot, PerLinkDropAccountingSumsToRunTotals) {
  ParkingLotParams p = quick_lot(7);
  p.queue_bdp_mult = 0.5;  // force drops
  Scenario sc = parking_lot_scenario(p);
  sc.audit = Scenario::AuditMode::kOn;
  Testbed bed(sc);
  const RunTrace t = bed.run();

  ASSERT_FALSE(t.queue_drops.empty());
  std::uint64_t per_link_total = 0;
  for (const LinkTrace& l : t.links) {
    ASSERT_FALSE(l.drops.empty());
    per_link_total += final_count(l.drops);
  }
  EXPECT_EQ(per_link_total, final_count(t.queue_drops));
  EXPECT_GT(per_link_total, 0u);  // the shallow queues really dropped
}

TEST(ParkingLot, CongestionStaysLocalToTheLoadedHop) {
  // Cross traffic on the interior hop only: hop1 must congest while the
  // edge hops carry the same end-to-end flows without pressure.
  ParkingLotParams p = quick_lot(11);
  p.cross_per_hop = 0;
  p.queue_bdp_mult = 1.0;
  Scenario sc = parking_lot_scenario(p);
  FlowSpec cross = FlowSpec::bulk_tcp(tcp::CcAlgo::kCubic, seconds(5),
                                      seconds(25));
  cross.id = 50;
  cross.name = "x1_only";
  sc.flows.push_back(std::move(cross));
  sc.topology.paths.push_back({50, {"hop1"}, {}});
  sc.audit = Scenario::AuditMode::kOn;

  Testbed bed(sc);
  const RunTrace t = bed.run();
  const LinkTrace* hop0 = t.link("hop0");
  const LinkTrace* hop1 = t.link("hop1");
  const LinkTrace* hop2 = t.link("hop2");
  ASSERT_TRUE(hop0 && hop1 && hop2);

  // The loaded hop carries strictly more than the pass-through hops...
  const double u0 = mean_over(t, hop0->util_mbps, seconds(10), seconds(25));
  const double u1 = mean_over(t, hop1->util_mbps, seconds(10), seconds(25));
  EXPECT_GT(u1, u0 + 1.0);
  // ...queues deeper than both edges...
  const auto peak = [](const LinkTrace& l) {
    return *std::max_element(l.depth_bytes.begin(), l.depth_bytes.end());
  };
  EXPECT_GT(peak(*hop1), peak(*hop0));
  EXPECT_GT(peak(*hop1), peak(*hop2));
  // ...and owns the overwhelming share of the run's drops (the bursty
  // game-frame ingress may shed a handful at the access hop).  Per-link
  // accounting must still sum exactly to the run total.
  const std::uint64_t d0 = final_count(hop0->drops);
  const std::uint64_t d1 = final_count(hop1->drops);
  const std::uint64_t d2 = final_count(hop2->drops);
  EXPECT_EQ(d0 + d1 + d2, final_count(t.queue_drops));
  EXPECT_GT(d1, 4 * (d0 + d2));
}

TEST(ParkingLot, CrossTrafficSharesEachHopFairly) {
  // Two same-algo cross flows per hop with identical paths must split
  // their hop's spare capacity about evenly (Jain over the active window).
  ParkingLotParams p = quick_lot(13);
  p.cross_per_hop = 2;
  p.duration = seconds(60);
  p.tcp_stop = seconds(55);
  Scenario sc = parking_lot_scenario(p);
  sc.audit = Scenario::AuditMode::kOn;
  Testbed bed(sc);
  const RunTrace t = bed.run();

  for (std::size_t hop = 0; hop < 3; ++hop) {
    std::vector<double> rates;
    for (std::size_t c = 0; c < 2; ++c) {
      const std::string name =
          "x" + std::to_string(hop) + "_" + std::to_string(c);
      const FlowTrace* f = nullptr;
      for (const FlowTrace& ft : t.flows) {
        if (ft.name == name) f = &ft;
      }
      ASSERT_NE(f, nullptr) << name;
      rates.push_back(mean_over(t, f->mbps, seconds(25), seconds(55)));
    }
    const double sum = rates[0] + rates[1];
    const double sumsq = rates[0] * rates[0] + rates[1] * rates[1];
    ASSERT_GT(sum, 0.0) << "hop" << hop;
    const double jain = sum * sum / (2.0 * sumsq);
    EXPECT_GT(jain, 0.75) << "hop" << hop << ": " << rates[0] << " vs "
                          << rates[1];
  }
}

TEST(ParkingLot, BbrCubicMeleeSharesTheThreeHopPath) {
  // N-BBR vs N-Cubic end-to-end melee over the full lot, with per-hop
  // cross traffic underneath: every participant must get goodput and no
  // hop may deliver beyond its capacity.
  ParkingLotParams p = quick_lot(17);
  p.bbr_flows = 2;
  p.cubic_flows = 2;
  p.duration = seconds(40);
  p.tcp_stop = seconds(35);
  Scenario sc = parking_lot_scenario(p);
  sc.audit = Scenario::AuditMode::kOn;
  Testbed bed(sc);
  const RunTrace t = bed.run();

  for (const char* name : {"bbr0", "bbr1", "cubic0", "cubic1"}) {
    const FlowTrace* f = nullptr;
    for (const FlowTrace& ft : t.flows) {
      if (ft.name == name) f = &ft;
    }
    ASSERT_NE(f, nullptr) << name;
    EXPECT_GT(mean_over(t, f->mbps, seconds(15), seconds(35)), 0.05) << name;
  }
  // The game stream crossed the melee and still delivered.
  EXPECT_GT(mean_over(t, t.game_mbps, seconds(15), seconds(35)), 0.5);
  // Per-hop deliveries never exceed the hop's capacity (small slack for
  // bucket-boundary rounding).
  for (const LinkTrace& l : t.links) {
    for (double u : l.util_mbps) {
      ASSERT_LE(u, 25.0 * 1.05) << l.name;
    }
  }
}

TEST(ParkingLot, SweepJournalReplayRoundTripCarriesLinkSeries) {
  ParkingLotParams p = quick_lot(19);
  p.duration = seconds(12);
  p.tcp_start = seconds(2);
  p.tcp_stop = seconds(10);
  const Scenario sc = parking_lot_scenario(p);

  const std::string journal =
      ::testing::TempDir() + "cgs_parking_lot_roundtrip.jnl";
  std::remove(journal.c_str());

  SweepOptions opts;
  opts.runs = 2;
  opts.threads = 2;
  opts.journal_path = journal;
  opts.journal_sync = false;
  const SweepResult swept = run_sweep({{"lot", sc}}, opts);
  EXPECT_EQ(swept.report.failed(), 0u);

  // The aggregate carries one digest row per hop.
  ASSERT_EQ(swept.results.size(), 1u);
  ASSERT_EQ(swept.results[0].link_rows.size(), 3u);
  EXPECT_EQ(swept.results[0].link_rows[1].name, "hop1");

  const auto scan = read_journal(journal);
  ASSERT_TRUE(scan.has_value());
  ASSERT_EQ(scan->entries.size(), 2u);
  for (const JournalEntry& e : scan->entries) {
    ASSERT_TRUE(e.ok);
    // The journaled payload round-trips with its per-link series intact.
    const RunTrace back = deserialize_trace(e.payload.data(),
                                            e.payload.size());
    ASSERT_EQ(back.links.size(), 3u);
    EXPECT_EQ(back.links[2].name, "hop2");
    EXPECT_EQ(trace_hash(back), e.trace_hash);

    // A fresh single-threaded re-run of the journaled job reproduces the
    // journal bytes exactly (the replay tool's contract).
    Scenario replay_sc = sc;
    replay_sc.seed = e.seed;
    replay_sc.audit = Scenario::AuditMode::kOn;
    Testbed bed(replay_sc);
    EXPECT_EQ(serialize_trace(bed.run()), e.payload) << "seed " << e.seed;
  }
  std::remove(journal.c_str());
}

}  // namespace
}  // namespace cgs::core
