// N-flow traffic mixes end to end: fairness between competing TCP flows,
// per-flow traces, seed isolation, and the mix-extension determinism
// contract (adding a flow never perturbs the other flows' streams).
#include <gtest/gtest.h>

#include <stdexcept>

#include "core/metrics.hpp"
#include "core/testbed.hpp"

namespace cgs::core {
namespace {

using namespace cgs::literals;
using namespace std::chrono;

/// Fairness window covering the steady part of a short run.
AnalysisWindows short_windows(Time from, Time to) {
  AnalysisWindows w;
  w.fairness_from = from;
  w.fairness_to = to;
  return w;
}

TEST(MultiFlow, TwoCubicFlowsShareEvenly) {
  Scenario sc;
  sc.capacity = 25_mbps;
  sc.queue_bdp_mult = 1.0;
  sc.duration = 120_sec;
  sc.seed = 3;
  sc.flows = {FlowSpec::bulk_tcp(tcp::CcAlgo::kCubic, kTimeZero, std::nullopt),
              FlowSpec::bulk_tcp(tcp::CcAlgo::kCubic, kTimeZero, std::nullopt)};
  Testbed bed(sc);
  const RunTrace t = bed.run();

  const double a = t.mean_flow_mbps(1, 30_sec, 120_sec);
  const double b = t.mean_flow_mbps(2, 30_sec, 120_sec);
  // Identical algorithm and RTT: each flow gets ~half the 25 Mb/s pipe.
  EXPECT_NEAR(a, 12.5, 2.5);
  EXPECT_NEAR(b, 12.5, 2.5);
  EXPECT_GT(jain_index(t, short_windows(30_sec, 120_sec)), 0.95);
}

TEST(MultiFlow, BbrDominatesCubicInShallowBuffers) {
  // The paper's BBRv1 dominance result: with a small bottleneck buffer
  // BBR's inflight cap starves loss-based cubic.
  Scenario sc;
  sc.capacity = 25_mbps;
  sc.queue_bdp_mult = 0.5;
  sc.duration = 120_sec;
  sc.seed = 3;
  sc.flows = {FlowSpec::bulk_tcp(tcp::CcAlgo::kBbr, kTimeZero, std::nullopt),
              FlowSpec::bulk_tcp(tcp::CcAlgo::kCubic, kTimeZero, std::nullopt)};
  Testbed bed(sc);
  const RunTrace t = bed.run();

  const double bbr = t.mean_flow_mbps(1, 30_sec, 120_sec);
  const double cubic = t.mean_flow_mbps(2, 30_sec, 120_sec);
  EXPECT_GT(bbr, 2.0 * cubic);
  EXPECT_LT(jain_index(t, short_windows(30_sec, 120_sec)), 0.9);
}

TEST(MultiFlow, RttHandicapReducesCubicShare) {
  // Cubic throughput scales inversely with RTT: a flow with extra one-way
  // delay on its access link must lose the bandwidth race.
  Scenario sc;
  sc.capacity = 25_mbps;
  sc.queue_bdp_mult = 1.0;
  sc.duration = 120_sec;
  sc.seed = 3;
  FlowSpec slow =
      FlowSpec::bulk_tcp(tcp::CcAlgo::kCubic, kTimeZero, std::nullopt);
  slow.extra_owd = 50_ms;
  sc.flows = {FlowSpec::bulk_tcp(tcp::CcAlgo::kCubic, kTimeZero, std::nullopt),
              slow};
  Testbed bed(sc);
  const RunTrace t = bed.run();
  EXPECT_GT(t.mean_flow_mbps(1, 30_sec, 120_sec),
            t.mean_flow_mbps(2, 30_sec, 120_sec));
}

TEST(MultiFlow, TwoGamePlusTcpCompletesAndIsDeterministic) {
  Scenario sc;
  sc.capacity = 50_mbps;
  sc.queue_bdp_mult = 2.0;
  sc.duration = 60_sec;
  sc.seed = 7;
  sc.flows = {FlowSpec::game_stream(stream::GameSystem::kStadia),
              FlowSpec::game_stream(stream::GameSystem::kGeForce),
              FlowSpec::bulk_tcp(tcp::CcAlgo::kCubic, 20_sec, 50_sec),
              FlowSpec::ping()};

  auto run_once = [&sc] {
    Testbed bed(sc);
    return bed.run();
  };
  const RunTrace t1 = run_once();
  ASSERT_EQ(t1.flows.size(), 4u);
  // Both streams deliver video throughout.
  EXPECT_GT(t1.mean_flow_mbps(1, 10_sec, 60_sec), 3.0);
  EXPECT_GT(t1.mean_flow_mbps(2, 10_sec, 60_sec), 3.0);
  // TCP only in its scheduled window.
  EXPECT_DOUBLE_EQ(t1.mean_flow_mbps(3, kTimeZero, 19_sec), 0.0);
  EXPECT_GT(t1.mean_flow_mbps(3, 25_sec, 45_sec), 1.0);

  // Same-seed bit-exactness across the whole per-flow trace set.
  const RunTrace t2 = run_once();
  ASSERT_EQ(t2.flows.size(), t1.flows.size());
  for (std::size_t i = 0; i < t1.flows.size(); ++i) {
    EXPECT_EQ(t1.flows[i].mbps, t2.flows[i].mbps) << "flow " << i;
    EXPECT_EQ(t1.flows[i].pkts_recv, t2.flows[i].pkts_recv) << "flow " << i;
    EXPECT_EQ(t1.flows[i].pkts_lost, t2.flows[i].pkts_lost) << "flow " << i;
  }
  EXPECT_EQ(t1.game_mbps, t2.game_mbps);
  EXPECT_EQ(t1.tcp_mbps, t2.tcp_mbps);
}

TEST(MultiFlow, AddingLateFlowPreservesEarlierTraces) {
  // The registry contract: per-flow seeds are pure functions of (seed, id),
  // so appending a flow that only becomes active at t=80 s must leave every
  // other flow's trace byte-identical up to that activation.
  Scenario base;
  base.capacity = 25_mbps;
  base.queue_bdp_mult = 2.0;
  base.duration = 90_sec;
  base.seed = 11;
  base.flows = {FlowSpec::game_stream(stream::GameSystem::kStadia),
                FlowSpec::bulk_tcp(tcp::CcAlgo::kCubic, 30_sec, 60_sec),
                FlowSpec::ping()};

  Scenario extended = base;
  extended.flows.push_back(
      FlowSpec::bulk_tcp(tcp::CcAlgo::kBbr, 80_sec, 88_sec));

  Testbed bed_a(base);
  const RunTrace a = bed_a.run();
  Testbed bed_b(extended);
  const RunTrace b = bed_b.run();

  const std::size_t cut = a.bucket_of(80_sec);
  ASSERT_GT(cut, 0u);
  for (std::size_t f = 0; f < a.flows.size(); ++f) {
    ASSERT_EQ(a.flows[f].id, b.flows[f].id);
    for (std::size_t k = 0; k < cut; ++k) {
      ASSERT_EQ(a.flows[f].mbps[k], b.flows[f].mbps[k])
          << "flow " << f << " bucket " << k;
      ASSERT_EQ(a.flows[f].pkts_recv[k], b.flows[f].pkts_recv[k])
          << "flow " << f << " bucket " << k;
      ASSERT_EQ(a.flows[f].pkts_lost[k], b.flows[f].pkts_lost[k])
          << "flow " << f << " bucket " << k;
    }
  }
  // RTT probes and frame presentations before the new flow's start match 1:1.
  for (std::size_t i = 0; i < a.rtt.size() && i < b.rtt.size(); ++i) {
    if (a.rtt[i].at >= 80_sec) break;
    ASSERT_EQ(a.rtt[i].at, b.rtt[i].at) << i;
    ASSERT_EQ(a.rtt[i].rtt, b.rtt[i].rtt) << i;
  }
  for (std::size_t i = 0; i < a.frame_times.size() && i < b.frame_times.size();
       ++i) {
    if (a.frame_times[i] >= 80_sec) break;
    ASSERT_EQ(a.frame_times[i], b.frame_times[i]) << i;
  }
}

TEST(MultiFlow, AccessorsThrowWhenFlowAbsent) {
  Scenario sc;
  sc.duration = 10_sec;
  sc.flows = {FlowSpec::bulk_tcp(tcp::CcAlgo::kCubic, kTimeZero, std::nullopt)};
  Testbed bed(sc);
  EXPECT_THROW((void)bed.game_sender(), std::logic_error);
  EXPECT_THROW((void)bed.game_receiver(), std::logic_error);
  EXPECT_THROW((void)bed.ping(), std::logic_error);
  EXPECT_EQ(bed.tcp_flow(), &*bed.tcp_flows().front().flow);

  try {
    (void)bed.game_sender();
    FAIL() << "expected std::logic_error";
  } catch (const std::logic_error& e) {
    EXPECT_NE(std::string(e.what()).find("no game-stream flow"),
              std::string::npos)
        << e.what();
  }
}

TEST(MultiFlow, FlowMasterRngIsAPureFunctionOfSeedAndId) {
  // Same (seed, id) -> same stream; different id -> different stream;
  // id 1 keeps the historical single-master derivation.
  Pcg32 a = Testbed::flow_master_rng(42, 2);
  Pcg32 b = Testbed::flow_master_rng(42, 2);
  Pcg32 c = Testbed::flow_master_rng(42, 3);
  Pcg32 legacy = Testbed::flow_master_rng(42, 1);
  Pcg32 master(42);
  bool differs = false;
  for (int i = 0; i < 64; ++i) {
    const auto va = a.next_u32();
    EXPECT_EQ(va, b.next_u32());
    differs = differs || va != c.next_u32();
    EXPECT_EQ(legacy.next_u32(), master.next_u32());
  }
  EXPECT_TRUE(differs);
}

TEST(MultiFlow, PerFlowImpairmentOverrideCreatesOneStage) {
  Scenario sc;
  sc.duration = 10_sec;
  net::ImpairmentConfig lossy;
  lossy.loss_rate = 0.05;
  FlowSpec impaired =
      FlowSpec::bulk_tcp(tcp::CcAlgo::kCubic, kTimeZero, std::nullopt);
  impaired.impair_up = lossy;
  sc.flows = {FlowSpec::bulk_tcp(tcp::CcAlgo::kCubic, kTimeZero, std::nullopt),
              impaired};
  Testbed bed(sc);
  // Only the overridden flow gets an upstream impairment stage.
  EXPECT_EQ(bed.upstream_impairments().size(), 1u);
  (void)bed.run();
}

TEST(MultiFlow, FourFlowMixEndToEnd) {
  // Acceptance mix: 2 game streams + 2 TCP flows through one bottleneck,
  // per-flow series populated and an N-flow Jain index over all four.
  Scenario sc;
  sc.capacity = 50_mbps;
  sc.queue_bdp_mult = 2.0;
  sc.duration = 90_sec;
  sc.seed = 5;
  sc.flows = {FlowSpec::game_stream(stream::GameSystem::kStadia),
              FlowSpec::game_stream(stream::GameSystem::kLuna),
              FlowSpec::bulk_tcp(tcp::CcAlgo::kCubic, 10_sec, 80_sec),
              FlowSpec::bulk_tcp(tcp::CcAlgo::kBbr, 10_sec, 80_sec),
              FlowSpec::ping()};
  Testbed bed(sc);
  const RunTrace t = bed.run();

  ASSERT_EQ(t.flows.size(), 5u);
  for (const FlowTrace& f : t.flows) {
    EXPECT_EQ(f.mbps.size(), t.game_mbps.size()) << f.name;
  }
  // All four throughput-bearing flows moved data in the contested window.
  const auto tp = flow_throughputs_mbps(t, 20_sec, 70_sec);
  ASSERT_EQ(tp.size(), 4u);  // ping excluded
  for (double mbps : tp) EXPECT_GT(mbps, 0.5);

  const double jain = jain_index(t, short_windows(20_sec, 70_sec));
  EXPECT_GT(jain, 0.0);
  EXPECT_LE(jain, 1.0);

  // Legacy views: game_mbps mirrors the first game flow, tcp_mbps sums both
  // TCP flows.
  EXPECT_EQ(t.game_mbps, t.flows[0].mbps);
  for (std::size_t k = 0; k < t.tcp_mbps.size(); ++k) {
    EXPECT_DOUBLE_EQ(t.tcp_mbps[k], t.flows[2].mbps[k] + t.flows[3].mbps[k]);
  }
}

}  // namespace
}  // namespace cgs::core
