// Hybrid-fidelity fleet layer: fluid background sessions sharing the
// packet topology (net/fluid.hpp).
//
// Covers the four contracts DESIGN.md "Hybrid fidelity & fleet modeling"
// pins down: (1) an empty fleet spec is a strict no-op — the three golden
// trace hashes stay bit-identical; (2) fleet runs are deterministic, and
// their population digests survive the journal round trip; (3) the
// capacity-sharing rule actually steals serialization capacity from the
// packet path; (4) fluid populations cross-validate against full-fidelity
// packet populations within the pinned tolerances below.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <stdexcept>
#include <string>

#include "core/journal.hpp"
#include "core/runner.hpp"
#include "core/testbed.hpp"
#include "net/fluid.hpp"
#include "stream/profiles.hpp"

namespace cgs::core {
namespace {

using namespace std::chrono;

// Pinned packet-vs-fluid cross-validation tolerances (relative error on
// windowed bottleneck throughput).  Documented in DESIGN.md; a change here
// must be justified there.
constexpr double kUncongestedTol = 0.05;
constexpr double kCongestedTol = 0.10;

Scenario golden_scenario(stream::GameSystem sys, std::optional<tcp::CcAlgo> cc,
                         std::uint64_t seed) {
  Scenario sc;
  sc.system = sys;
  sc.tcp_algo = cc;
  sc.duration = seconds(90);
  sc.tcp_start = seconds(30);
  sc.tcp_stop = seconds(60);
  sc.seed = seed;
  return sc;
}

net::FluidSourceSpec fluid_source(net::FluidClass cls, std::uint32_t sessions,
                                  double jitter = 0.0) {
  net::FluidSourceSpec src;
  src.cls = cls;
  src.sessions = sessions;
  src.rate_jitter = jitter;
  return src;
}

TEST(Fleet, EmptyFleetSpecKeepsGoldenTraceHashes) {
  // The hybrid layer's zero-cost contract: a default (empty) FleetSpec
  // constructs no FluidAggregate, links never see a fluid load, and the
  // pre-fleet golden hashes hold bit for bit.
  struct Cell {
    stream::GameSystem sys;
    std::optional<tcp::CcAlgo> cc;
    std::uint64_t seed;
    std::uint64_t hash;
  };
  const Cell cells[] = {
      {stream::GameSystem::kStadia, tcp::CcAlgo::kCubic, 1,
       0x058c4966df7104a9ULL},
      {stream::GameSystem::kGeForce, tcp::CcAlgo::kBbr, 11,
       0x77398256f15628cfULL},
      {stream::GameSystem::kLuna, std::nullopt, 5, 0x7ba4077b404e8f04ULL},
  };
  for (const Cell& c : cells) {
    Scenario sc = golden_scenario(c.sys, c.cc, c.seed);
    ASSERT_TRUE(sc.fleet.empty());
    Testbed bed(sc);
    const RunTrace t = bed.run();
    EXPECT_EQ(trace_hash(t), c.hash);
    EXPECT_FALSE(t.fleet.active);
  }
}

TEST(Fleet, ValidationNamesExactFieldPaths) {
  const auto expect_invalid = [](Scenario sc, const std::string& needle) {
    try {
      sc.validate();
      FAIL() << "expected invalid_argument mentioning '" << needle << "'";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << "got: " << e.what();
    }
  };

  Scenario base;
  base.fleet.sources.push_back(fluid_source(net::FluidClass::kBulkCubic, 4));

  {
    Scenario sc = base;
    sc.fleet.tick = kTimeZero;
    expect_invalid(sc, "fleet.tick must be > 0");
  }
  {
    Scenario sc = base;
    sc.fleet.stall_threshold = 1.5;
    expect_invalid(sc, "fleet.stall_threshold must be in (0, 1]");
  }
  {
    Scenario sc = base;
    sc.fleet.sources[0].sessions = 0;
    expect_invalid(sc, "fleet.sources[0].sessions");
  }
  {
    Scenario sc = base;
    sc.fleet.sources.push_back(fluid_source(net::FluidClass::kBulkBbr, 2));
    sc.fleet.sources[1].rate_mbps = -1.0;
    expect_invalid(sc, "fleet.sources[1].rate_mbps");
  }
  {
    Scenario sc = base;
    sc.fleet.sources[0].diurnal = {1.0, -0.5};
    expect_invalid(sc, "fleet.sources[0].diurnal[1]");
  }
  {
    Scenario sc = base;
    sc.fleet.sources[0].max_sessions = 2;  // < sessions = 4
    expect_invalid(sc, "fleet.sources[0].max_sessions");
  }
  {
    Scenario sc = base;
    sc.fleet.sources[0].link = "no-such-link";
    expect_invalid(sc, "fleet.sources[0].link");
  }
  {
    Scenario sc = base;
    sc.trace_stride = 0;
    expect_invalid(sc, "trace_stride must be >= 1");
  }
}

Scenario fleet_scenario(std::uint64_t seed) {
  // Game stream + cubic competitor on 25 Mb/s, plus a small mixed fluid
  // fleet with churn on the same bottleneck.
  Scenario sc;
  sc.duration = seconds(30);
  sc.tcp_start = seconds(5);
  sc.tcp_stop = seconds(20);
  sc.seed = seed;
  sc.fleet.sources.push_back(fluid_source(net::FluidClass::kGameStream, 3,
                                          /*jitter=*/0.1));
  net::FluidSourceSpec churn = fluid_source(net::FluidClass::kBulkCubic, 2,
                                            /*jitter=*/0.1);
  churn.arrival_per_min = 30.0;
  churn.mean_holding_s = 5.0;
  churn.max_sessions = 8;
  churn.diurnal = {0.5, 2.0, 1.0};
  sc.fleet.sources.push_back(churn);
  return sc;
}

TEST(Fleet, DeterministicAndJournalRoundTrips) {
  const Scenario sc = fleet_scenario(7);
  Testbed a(sc);
  Testbed b(sc);
  const RunTrace ta = a.run();
  const RunTrace tb = b.run();

  ASSERT_TRUE(ta.fleet.active);
  EXPECT_GT(ta.fleet.ticks, 0u);
  EXPECT_GT(ta.fleet.session_ticks, 0u);

  // Same seed, same spec: byte-identical payloads (the fleet digest tail
  // included).
  const auto bytes_a = serialize_trace(ta);
  const auto bytes_b = serialize_trace(tb);
  EXPECT_EQ(bytes_a, bytes_b);

  // Round trip preserves every fleet field.
  const RunTrace rt = deserialize_trace(bytes_a.data(), bytes_a.size());
  EXPECT_EQ(rt.fleet.active, ta.fleet.active);
  EXPECT_EQ(rt.fleet.ticks, ta.fleet.ticks);
  EXPECT_EQ(rt.fleet.session_ticks, ta.fleet.session_ticks);
  EXPECT_EQ(rt.fleet.stall_ticks, ta.fleet.stall_ticks);
  EXPECT_EQ(rt.fleet.arrivals, ta.fleet.arrivals);
  EXPECT_EQ(rt.fleet.departures, ta.fleet.departures);
  EXPECT_EQ(rt.fleet.peak_sessions, ta.fleet.peak_sessions);
  EXPECT_EQ(rt.fleet.final_sessions, ta.fleet.final_sessions);
  EXPECT_DOUBLE_EQ(rt.fleet.mean_mbps, ta.fleet.mean_mbps);
  EXPECT_DOUBLE_EQ(rt.fleet.p50_mbps, ta.fleet.p50_mbps);
  EXPECT_DOUBLE_EQ(rt.fleet.p95_mbps, ta.fleet.p95_mbps);
  EXPECT_DOUBLE_EQ(rt.fleet.p99_mbps, ta.fleet.p99_mbps);
  EXPECT_DOUBLE_EQ(rt.fleet.stall_rate, ta.fleet.stall_rate);
  EXPECT_DOUBLE_EQ(rt.fleet.jain, ta.fleet.jain);
  ASSERT_EQ(rt.fleet.links.size(), ta.fleet.links.size());
  for (std::size_t i = 0; i < rt.fleet.links.size(); ++i) {
    EXPECT_EQ(rt.fleet.links[i].link, ta.fleet.links[i].link);
    EXPECT_DOUBLE_EQ(rt.fleet.links[i].offered_mbps_mean,
                     ta.fleet.links[i].offered_mbps_mean);
    EXPECT_DOUBLE_EQ(rt.fleet.links[i].served_mbps_mean,
                     ta.fleet.links[i].served_mbps_mean);
  }
}

TEST(Fleet, ChurnArrivesDepartsAndRespectsCap) {
  const Scenario sc = fleet_scenario(3);
  Testbed bed(sc);
  const RunTrace t = bed.run();
  ASSERT_TRUE(t.fleet.active);
  // 5 initial sessions placed as arrivals, plus Poisson churn on source 1.
  EXPECT_GT(t.fleet.arrivals, 5u);
  EXPECT_GT(t.fleet.departures, 0u);
  // Population cap: 3 static + at most 8 churning.
  EXPECT_LE(t.fleet.peak_sessions, 3u + 8u);
  EXPECT_GE(t.fleet.peak_sessions, t.fleet.final_sessions);
  // Jain over lifetime means is a valid index.
  EXPECT_GT(t.fleet.jain, 0.0);
  EXPECT_LE(t.fleet.jain, 1.0 + 1e-9);
}

TEST(Fleet, StealsBottleneckCapacityFromPacketPath) {
  // 4 fluid bulk-cubic sessions (~87.5 Mb/s offered) against a 25 Mb/s
  // bottleneck must depress the packet game stream's steady throughput
  // relative to a fleet-free run of the same seed.
  Scenario solo;
  solo.tcp_algo = std::nullopt;
  solo.duration = seconds(30);
  solo.seed = 2;

  Scenario crowded = solo;
  crowded.fleet.sources.push_back(
      fluid_source(net::FluidClass::kBulkCubic, 4));

  Testbed solo_bed(solo);
  Testbed crowded_bed(crowded);
  const RunTrace ts = solo_bed.run();
  const RunTrace tc = crowded_bed.run();

  const double solo_mbps =
      ts.mean_bitrate_mbps(ts.game_mbps, seconds(10), seconds(30));
  const double crowded_mbps =
      tc.mean_bitrate_mbps(tc.game_mbps, seconds(10), seconds(30));
  EXPECT_LT(crowded_mbps, 0.7 * solo_mbps)
      << "solo " << solo_mbps << " vs crowded " << crowded_mbps;

  // The fleet's served share never exceeds the 98% fluid-share cap.
  ASSERT_TRUE(tc.fleet.active);
  ASSERT_EQ(tc.fleet.links.size(), 1u);
  EXPECT_EQ(tc.fleet.links[0].link, "bottleneck");
  EXPECT_LE(tc.fleet.links[0].served_mbps_mean, 0.98 * 25.0 + 1e-6);
  EXPECT_GT(tc.fleet.links[0].served_mbps_mean, 0.0);
  // Oversubscribed 3.5x: virtually every session-tick stalls.
  EXPECT_GT(tc.fleet.stall_rate, 0.9);
}

TEST(Fleet, PacketVsFluidCrossValidationUncongested) {
  // 10 game streams on a 400 Mb/s bottleneck: every stream runs at its
  // native rate, so total bottleneck throughput must agree between a
  // full-fidelity population (10 packet streams) and a hybrid one
  // (1 packet stream + 9 fluid sessions) within kUncongestedTol.
  Scenario packet;
  packet.capacity = Bandwidth::mbps(400.0);
  packet.tcp_algo = std::nullopt;
  packet.duration = seconds(30);
  packet.seed = 4;
  for (int i = 0; i < 10; ++i) {
    packet.flows.push_back(FlowSpec::game_stream());
  }

  Scenario hybrid = packet;
  hybrid.flows.clear();
  hybrid.flows.push_back(FlowSpec::game_stream());
  net::FluidSourceSpec fleet =
      fluid_source(net::FluidClass::kGameStream, 9);
  // Envelope pinned to the system's Table-1 steady state — the fluid
  // counterpart of the packet streams being replaced.
  fleet.rate_mbps =
      double(stream::profile_for(packet.system).max_bitrate.bits_per_sec()) /
      1e6;
  hybrid.fleet.sources.push_back(fleet);

  Testbed packet_bed(packet);
  Testbed hybrid_bed(hybrid);
  const RunTrace tp = packet_bed.run();
  const RunTrace th = hybrid_bed.run();

  // Windowed (post-rampup) bottleneck throughput: packet bytes on the wire
  // vs packet bytes + mean served fluid rate.
  const auto* lp = tp.link("bottleneck");
  const auto* lh = th.link("bottleneck");
  ASSERT_NE(lp, nullptr);
  ASSERT_NE(lh, nullptr);
  const double packet_total =
      tp.mean_bitrate_mbps(lp->util_mbps, seconds(10), seconds(30));
  ASSERT_TRUE(th.fleet.active);
  ASSERT_EQ(th.fleet.links.size(), 1u);
  const double hybrid_total =
      th.mean_bitrate_mbps(lh->util_mbps, seconds(10), seconds(30)) +
      th.fleet.links[0].served_mbps_mean;

  const double rel =
      std::fabs(hybrid_total - packet_total) / packet_total;
  EXPECT_LT(rel, kUncongestedTol)
      << "packet " << packet_total << " Mb/s vs hybrid " << hybrid_total
      << " Mb/s";
}

TEST(Fleet, PacketVsFluidCrossValidationCongested) {
  // 10 bulk-cubic flows saturating a 50 Mb/s bottleneck: aggregate
  // delivered throughput must agree between the packet population and the
  // fluid one within kCongestedTol (the fluid model serves ~0.98 C when
  // oversubscribed; packet cubic keeps the link near-full).
  Scenario packet;
  packet.capacity = Bandwidth::mbps(50.0);
  packet.duration = seconds(30);
  packet.seed = 6;
  for (int i = 0; i < 10; ++i) {
    packet.flows.push_back(
        FlowSpec::bulk_tcp(tcp::CcAlgo::kCubic, kTimeZero, std::nullopt));
  }

  Scenario fluid = packet;
  fluid.flows.clear();
  fluid.flows.push_back(FlowSpec::ping());  // negligible packet demand
  fluid.fleet.sources.push_back(
      fluid_source(net::FluidClass::kBulkCubic, 10));

  Testbed packet_bed(packet);
  Testbed fluid_bed(fluid);
  const RunTrace tp = packet_bed.run();
  const RunTrace tf = fluid_bed.run();

  const auto* lp = tp.link("bottleneck");
  ASSERT_NE(lp, nullptr);
  const double packet_total =
      tp.mean_bitrate_mbps(lp->util_mbps, seconds(10), seconds(30));
  ASSERT_TRUE(tf.fleet.active);
  ASSERT_EQ(tf.fleet.links.size(), 1u);
  const double fluid_total = tf.fleet.links[0].served_mbps_mean;

  const double rel = std::fabs(fluid_total - packet_total) / packet_total;
  EXPECT_LT(rel, kCongestedTol)
      << "packet " << packet_total << " Mb/s vs fluid " << fluid_total
      << " Mb/s";
}

TEST(Fleet, AccessorErrorsNameFlowAndFleetComposition) {
  Scenario sc;
  sc.duration = seconds(5);
  sc.flows.push_back(
      FlowSpec::bulk_tcp(tcp::CcAlgo::kCubic, kTimeZero, std::nullopt));
  sc.fleet.sources.push_back(fluid_source(net::FluidClass::kGameStream, 4));
  Testbed bed(sc);

  try {
    bed.game_sender();
    FAIL() << "expected logic_error";
  } catch (const std::logic_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("no game-stream flow"), std::string::npos) << what;
    EXPECT_NE(what.find("mix[0 game + 1 tcp + 0 ping]"), std::string::npos)
        << what;
    EXPECT_NE(what.find("fleet[4 fluid sessions]"), std::string::npos)
        << what;
  }
  try {
    bed.ping();
    FAIL() << "expected logic_error";
  } catch (const std::logic_error& e) {
    EXPECT_NE(std::string(e.what()).find("no ping flow"), std::string::npos);
  }
}

TEST(Fleet, TracePolicyDefaultsKeepGoldenHash) {
  // trace_stride = 1 with a series cap above the mix size must be
  // indistinguishable from the unlimited default — same golden hash.
  Scenario sc = golden_scenario(stream::GameSystem::kStadia,
                                tcp::CcAlgo::kCubic, 1);
  sc.trace_stride = 1;
  sc.trace_max_flow_series = 16;  // mix has 3 flows
  Testbed bed(sc);
  EXPECT_EQ(trace_hash(bed.run()), 0x058c4966df7104a9ULL);
}

TEST(Fleet, TraceStrideCoarsensSamplingWithoutPerturbingTheRun) {
  Scenario fine;
  fine.duration = seconds(30);
  fine.tcp_start = seconds(5);
  fine.tcp_stop = seconds(20);
  fine.seed = 9;

  Scenario coarse = fine;
  coarse.trace_stride = 4;

  Testbed fine_bed(fine);
  Testbed coarse_bed(coarse);
  const RunTrace tf = fine_bed.run();
  const RunTrace tc = coarse_bed.run();

  EXPECT_EQ(tc.sample_interval.count(), 4 * tf.sample_interval.count());
  EXPECT_LT(tc.game_mbps.size(), tf.game_mbps.size());
  // The policy is observer-only: windowed means agree closely (same bytes,
  // coarser binning).
  const double fine_mean =
      tf.mean_bitrate_mbps(tf.game_mbps, seconds(10), seconds(20));
  const double coarse_mean =
      tc.mean_bitrate_mbps(tc.game_mbps, seconds(10), seconds(20));
  EXPECT_NEAR(coarse_mean, fine_mean, 0.05 * fine_mean);
}

TEST(Fleet, TraceTopKFoldsUntrackedTcpIntoAggregate) {
  // game + 3 cubic + ping, series capped at 2 (game + first tcp): the two
  // untracked tcp flows must fold into the aggregate tcp_mbps exactly —
  // the policy changes trace memory, never the simulation.
  Scenario full;
  full.duration = seconds(20);
  full.seed = 12;
  full.flows.push_back(FlowSpec::game_stream());
  for (int i = 0; i < 3; ++i) {
    full.flows.push_back(
        FlowSpec::bulk_tcp(tcp::CcAlgo::kCubic, seconds(2), std::nullopt));
  }
  full.flows.push_back(FlowSpec::ping());

  Scenario capped = full;
  capped.trace_max_flow_series = 2;

  Testbed full_bed(full);
  Testbed capped_bed(capped);
  const RunTrace tf = full_bed.run();
  const RunTrace tc = capped_bed.run();

  EXPECT_EQ(tf.flows.size(), 5u);
  ASSERT_EQ(tc.flows.size(), 2u);
  ASSERT_EQ(tc.tcp_mbps.size(), tf.tcp_mbps.size());
  for (std::size_t b = 0; b < tf.tcp_mbps.size(); ++b) {
    EXPECT_DOUBLE_EQ(tc.tcp_mbps[b], tf.tcp_mbps[b]) << "bucket " << b;
  }
  // The tracked game series is untouched by the cap.
  ASSERT_EQ(tc.game_mbps.size(), tf.game_mbps.size());
  for (std::size_t b = 0; b < tf.game_mbps.size(); ++b) {
    EXPECT_DOUBLE_EQ(tc.game_mbps[b], tf.game_mbps[b]) << "bucket " << b;
  }
}

TEST(Fleet, SweepAggregationCarriesFleetDigests) {
  // run_condition's streaming accumulator must surface the per-run fleet
  // digests as a FleetSummary.
  const Scenario sc = fleet_scenario(21);
  RunnerOptions opts;
  opts.runs = 2;
  opts.threads = 1;
  const ConditionResult res = run_condition(sc, opts);
  ASSERT_TRUE(res.fleet.active);
  EXPECT_GT(res.fleet.mean_mbps_mean, 0.0);
  EXPECT_GT(res.fleet.p50_mean, 0.0);
  EXPECT_GE(res.fleet.p99_mean, res.fleet.p95_mean);
  EXPECT_GE(res.fleet.p95_mean, res.fleet.p50_mean);
  EXPECT_GT(res.fleet.jain_mean, 0.0);
  EXPECT_GT(res.fleet.peak_sessions_mean, 0.0);

  // Fleet-free cells keep the summary inactive.
  Scenario plain;
  plain.duration = seconds(5);
  plain.tcp_algo = std::nullopt;
  const ConditionResult none = run_condition(plain, opts);
  EXPECT_FALSE(none.fleet.active);
}

}  // namespace
}  // namespace cgs::core
