// Full-testbed runs under the ISSUE's reference impairment: 1% bursty
// (Gilbert-Elliott) loss, 2 ms jitter, and one 3 s downstream outage —
// for every system x competing-TCP combination.  Checks completion,
// same-seed bit-exactness, and post-outage bitrate recovery.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <tuple>

#include "core/runner.hpp"
#include "core/testbed.hpp"

namespace cgs::core {
namespace {

using namespace cgs::literals;

constexpr Time kOutageStart = std::chrono::seconds(25);
constexpr Time kOutageStop = std::chrono::seconds(28);

Scenario impaired_scenario(stream::GameSystem system, tcp::CcAlgo algo) {
  Scenario sc;
  sc.system = system;
  sc.tcp_algo = algo;
  sc.capacity = 25_mbps;
  sc.queue_bdp_mult = 2.0;
  sc.duration = 45_sec;
  sc.tcp_start = 5_sec;
  sc.tcp_stop = 15_sec;
  sc.seed = 7;
  // ~1% stationary loss in bursts of mean length 4.
  sc.impair_down.gilbert_elliott = net::GilbertElliott{
      .p_good_bad = 0.0025, .p_bad_good = 0.25, .good_loss = 0.0,
      .bad_loss = 1.0};
  sc.impair_down.jitter = 2_ms;
  sc.impair_down.outages.push_back(
      {kOutageStart, kOutageStop, net::OutagePolicy::kDrop});
  return sc;
}

struct RunResult {
  RunTrace trace;
  std::uint64_t stalled_windows = 0;
  std::uint64_t dropped_outage = 0;
  std::uint64_t dropped_random = 0;
  std::uint64_t processed_events = 0;
};

RunResult run_impaired(const Scenario& sc) {
  Testbed bed(sc);
  RunResult r;
  r.trace = bed.run();
  r.stalled_windows = bed.game_sender().stalled_windows();
  const net::Impairment* imp = bed.downstream_impairment();
  r.dropped_outage = imp->counters().dropped_outage;
  r.dropped_random = imp->counters().dropped_random;
  r.processed_events = bed.simulator().processed_events();
  return r;
}

using Combo = std::tuple<stream::GameSystem, tcp::CcAlgo>;

class ImpairedPathTest : public ::testing::TestWithParam<Combo> {};

TEST_P(ImpairedPathTest, RunsToCompletionAndRecoversFromOutage) {
  const auto [system, algo] = GetParam();
  const Scenario sc = impaired_scenario(system, algo);
  const RunResult r = run_impaired(sc);  // watchdog armed; a hang would throw

  // The faults actually happened.
  EXPECT_GT(r.dropped_outage, 0u);
  EXPECT_GT(r.dropped_random, 0u);
  // The sender saw blackout feedback windows and froze instead of reacting
  // to their zeroed fields.
  EXPECT_GT(r.stalled_windows, 0u);

  // During the outage nothing reaches the bottleneck: the measured game
  // bitrate collapses.
  const double during =
      r.trace.mean_game_mbps(kOutageStart + 500_ms, kOutageStop);
  // Recovery criterion: within 10 s of the link returning, the stream gets
  // back to within 20% of its pre-outage (solo, post-TCP) mean.
  const double pre = r.trace.mean_game_mbps(20_sec, kOutageStart);
  double post_peak = 0.0;
  const std::size_t first = r.trace.bucket_of(kOutageStop);
  const std::size_t last = std::min(r.trace.bucket_of(kOutageStop + 10_sec),
                                    r.trace.game_mbps.size() - 1);
  for (std::size_t i = first; i <= last; ++i) {
    post_peak = std::max(post_peak, r.trace.game_mbps[i]);
  }
  ASSERT_GT(pre, 1.0) << "stream never established before the outage";
  EXPECT_LT(during, pre * 0.25);
  EXPECT_GT(post_peak, pre * 0.8)
      << "pre-outage " << pre << " Mb/s, recovered to only " << post_peak
      << " Mb/s within 10 s";
}

TEST_P(ImpairedPathTest, SameSeedIsBitIdentical) {
  const auto [system, algo] = GetParam();
  const Scenario sc = impaired_scenario(system, algo);
  const RunResult a = run_impaired(sc);
  const RunResult b = run_impaired(sc);
  EXPECT_EQ(a.trace.game_mbps, b.trace.game_mbps);
  EXPECT_EQ(a.trace.tcp_mbps, b.trace.tcp_mbps);
  EXPECT_EQ(a.stalled_windows, b.stalled_windows);
  EXPECT_EQ(a.dropped_outage, b.dropped_outage);
  EXPECT_EQ(a.dropped_random, b.dropped_random);
  EXPECT_EQ(a.processed_events, b.processed_events);
}

INSTANTIATE_TEST_SUITE_P(
    AllSystems, ImpairedPathTest,
    ::testing::Combine(::testing::Values(stream::GameSystem::kStadia,
                                         stream::GameSystem::kGeForce,
                                         stream::GameSystem::kLuna),
                       ::testing::Values(tcp::CcAlgo::kCubic,
                                         tcp::CcAlgo::kBbr)),
    [](const auto& info) {
      return std::string(stream::to_string(std::get<0>(info.param))) + "_" +
             std::string(tcp::to_string(std::get<1>(info.param)));
    });

TEST(ImpairedPath, HoldOutageReleasesBurstWithoutBreakingTheRun) {
  Scenario sc = impaired_scenario(stream::GameSystem::kStadia,
                                  tcp::CcAlgo::kCubic);
  sc.impair_down.outages.clear();
  sc.impair_down.outages.push_back(
      {kOutageStart, kOutageStop, net::OutagePolicy::kHold});
  Testbed bed(sc);
  const RunTrace trace = bed.run();
  const auto& c = bed.downstream_impairment()->counters();
  EXPECT_GT(c.held, 0u);
  EXPECT_EQ(c.held, c.released);
  // The parked burst floods the queue at release; the run must still
  // complete and the stream re-establish afterwards.
  const double pre = trace.mean_game_mbps(20_sec, kOutageStart);
  const double post = trace.mean_game_mbps(33_sec, kOutageStop + 10_sec);
  ASSERT_GT(pre, 1.0);
  EXPECT_GT(post, pre * 0.5);
}

TEST(ImpairedPath, UpstreamImpairmentInstantiatesPerFlow) {
  Scenario sc = impaired_scenario(stream::GameSystem::kLuna,
                                  tcp::CcAlgo::kBbr);
  sc.impair_up.loss_rate = 0.01;
  Testbed bed(sc);
  // game feedback + tcp ACKs + ping replies = three reverse paths.
  EXPECT_EQ(bed.upstream_impairments().size(), 3u);
  const RunTrace trace = bed.run();
  std::uint64_t up_drops = 0;
  for (const auto& imp : bed.upstream_impairments()) {
    up_drops += imp->counters().dropped_random;
  }
  EXPECT_GT(up_drops, 0u);
  EXPECT_GT(trace.mean_game_mbps(20_sec, kOutageStart), 1.0);
}

TEST(ImpairedPath, ImpairmentOffMatchesBaselineTopology) {
  // A default (no-op) impairment config must not instantiate any stage.
  Scenario sc;
  sc.tcp_algo.reset();
  sc.duration = 2_sec;
  Testbed bed(sc);
  EXPECT_EQ(bed.downstream_impairment(), nullptr);
  EXPECT_TRUE(bed.upstream_impairments().empty());
}

}  // namespace
}  // namespace cgs::core
