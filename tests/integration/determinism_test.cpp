// Same seed, same scenario => bit-identical traces.  Guards the simulation
// core's determinism contract (ordering by (time, insertion-seq)) across the
// pooled event queue, packet recycling, and timer reschedule-in-place paths.
#include <gtest/gtest.h>

#include "core/scenario.hpp"
#include "core/testbed.hpp"

namespace cgs::core {
namespace {

Scenario short_scenario(std::uint64_t seed, tcp::CcAlgo algo) {
  Scenario s;
  s.capacity = Bandwidth::mbps(25.0);
  s.queue_bdp_mult = 2.0;
  s.tcp_algo = algo;
  s.duration = std::chrono::seconds(30);
  s.tcp_start = std::chrono::seconds(8);
  s.tcp_stop = std::chrono::seconds(22);
  s.seed = seed;
  return s;
}

void expect_identical(const RunTrace& a, const RunTrace& b) {
  EXPECT_EQ(a.game_mbps, b.game_mbps);
  EXPECT_EQ(a.tcp_mbps, b.tcp_mbps);
  EXPECT_EQ(a.game_pkts_recv, b.game_pkts_recv);
  EXPECT_EQ(a.game_pkts_lost, b.game_pkts_lost);
  EXPECT_EQ(a.queue_drops, b.queue_drops);
  EXPECT_EQ(a.frame_times, b.frame_times);
  ASSERT_EQ(a.rtt.size(), b.rtt.size());
  for (std::size_t i = 0; i < a.rtt.size(); ++i) {
    EXPECT_EQ(a.rtt[i].at, b.rtt[i].at) << "rtt sample " << i;
    EXPECT_EQ(a.rtt[i].rtt, b.rtt[i].rtt) << "rtt sample " << i;
  }
}

TEST(Determinism, SameSeedSameTraceCubic) {
  RunTrace first = Testbed(short_scenario(7, tcp::CcAlgo::kCubic)).run();
  RunTrace second = Testbed(short_scenario(7, tcp::CcAlgo::kCubic)).run();
  expect_identical(first, second);
}

TEST(Determinism, SameSeedSameTraceBbr) {
  RunTrace first = Testbed(short_scenario(11, tcp::CcAlgo::kBbr)).run();
  RunTrace second = Testbed(short_scenario(11, tcp::CcAlgo::kBbr)).run();
  expect_identical(first, second);
}

TEST(Determinism, DifferentSeedsDiverge) {
  RunTrace first = Testbed(short_scenario(1, tcp::CcAlgo::kCubic)).run();
  RunTrace second = Testbed(short_scenario(2, tcp::CcAlgo::kCubic)).run();
  // The stochastic frame source must actually depend on the seed; identical
  // traces here would mean the seed is ignored and the test above is vacuous.
  EXPECT_NE(first.frame_times, second.frame_times);
}

}  // namespace
}  // namespace cgs::core
