// Invariant auditor: it must observe without perturbing (bit-identical
// traces audited or not), pass on healthy runs, and trip loudly — with
// classified, contextual errors — when the packet accounting books don't
// balance.
#include "core/audit.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "core/journal.hpp"
#include "core/testbed.hpp"
#include "net/link.hpp"
#include "net/queue.hpp"
#include "sim/simulator.hpp"

namespace cgs::core {
namespace {

using namespace std::chrono;

Scenario quick_scenario(std::uint64_t seed = 100) {
  Scenario sc;
  sc.duration = seconds(2);
  sc.tcp_start = milliseconds(500);
  sc.tcp_stop = milliseconds(1500);
  sc.seed = seed;
  return sc;
}

TEST(Audit, HealthyRunPassesWithChecksActuallyExecuted) {
  Scenario sc = quick_scenario(1);
  sc.audit = Scenario::AuditMode::kOn;
  Testbed bed(sc);
  ASSERT_NE(bed.auditor(), nullptr);
  (void)bed.run();  // would throw InvariantViolation on any trip
  EXPECT_GT(bed.auditor()->checks_run(), 0u);
  EXPECT_GT(bed.auditor()->arrived_bytes().bytes(), 0);
  // Conservation held at the end: everything arrived was settled.
  EXPECT_EQ(bed.auditor()->arrived_bytes().bytes(),
            bed.auditor()->dropped_bytes().bytes() +
                bed.auditor()->transmitted_bytes().bytes());
}

TEST(Audit, ModeSelectsPresence) {
  Scenario off = quick_scenario(1);
  off.audit = Scenario::AuditMode::kOff;
  EXPECT_EQ(Testbed(off).auditor(), nullptr);

  Scenario aut = quick_scenario(1);
  aut.audit = Scenario::AuditMode::kAuto;
  Testbed bed(aut);
#ifdef NDEBUG
  EXPECT_EQ(bed.auditor(), nullptr);  // Release: bench numbers stay clean
#else
  EXPECT_NE(bed.auditor(), nullptr);  // Debug: every test run is audited
#endif
}

TEST(Audit, ObserverOnlyTracesBitIdentical) {
  Scenario on = quick_scenario(33);
  on.audit = Scenario::AuditMode::kOn;
  Scenario off = quick_scenario(33);
  off.audit = Scenario::AuditMode::kOff;
  Testbed bed_on(on);
  Testbed bed_off(off);
  EXPECT_EQ(trace_hash(bed_on.run()), trace_hash(bed_off.run()));
}

TEST(Audit, PassesUnderImpairmentWithSequenceCheckGated) {
  // Downstream jitter + reordering legitimately breaks RTP monotonicity at
  // the bottleneck; the testbed must gate that check off, and the
  // conservation checks must still pass.
  Scenario sc = quick_scenario(55);
  sc.audit = Scenario::AuditMode::kOn;
  sc.impair_down.loss_rate = 0.02;
  sc.impair_down.jitter = milliseconds(3);
  sc.impair_down.allow_reorder = true;
  Testbed bed(sc);
  ASSERT_NE(bed.auditor(), nullptr);
  (void)bed.run();
  EXPECT_GT(bed.auditor()->checks_run(), 0u);
}

/// Forged-event harness: a bare Link + auditor where the test plays the
/// role of a buggy component by invoking the (public) sniffer notifiers
/// with books that cannot balance.
struct ForgeRig {
  sim::Simulator sim;
  net::Link link;
  SimAuditor auditor;

  struct NullSink final : net::PacketSink {
    void handle_packet(net::PacketPtr) override {}
  };
  static NullSink sink;

  explicit ForgeRig(SimAuditor::Options opts = {})
      : link(sim, "forged", Bandwidth::mbps(10.0), milliseconds(1),
             std::make_unique<net::DropTailQueue>(ByteSize(30'000)), &sink),
        auditor(std::move(opts)) {
    auditor.attach(link);
  }

  net::Packet packet(net::FlowId flow, std::int32_t size) const {
    net::Packet p;
    p.uid = 1;
    p.flow = flow;
    p.size_bytes = size;
    return p;
  }
};

ForgeRig::NullSink ForgeRig::sink;

TEST(Audit, TransmitWithoutArrivalTripsConservation) {
  ForgeRig rig;
  const net::Packet p = rig.packet(7, 1200);
  try {
    rig.link.sniffer().notify_transmit(p, milliseconds(5));
    FAIL() << "expected InvariantViolation";
  } catch (const InvariantViolation& e) {
    EXPECT_EQ(e.error_class(), ErrorClass::kInvariant);
    EXPECT_EQ(e.context().flow, 7u);
    EXPECT_EQ(e.context().sim_time, Time(milliseconds(5)));
  }
}

TEST(Audit, DropExceedingArrivalsTripsFlowSanity) {
  ForgeRig rig;
  const net::Packet p = rig.packet(3, 800);
  EXPECT_THROW(
      rig.link.sniffer().notify_drop(p, net::DropReason::kOverflow, Time{}),
      InvariantViolation);
}

TEST(Audit, FinalCheckCatchesVanishedBytes) {
  // A packet "arrives" but is never dropped, transmitted, or queued — the
  // end-of-run settlement must notice the leak.
  ForgeRig rig;
  const net::Packet p = rig.packet(2, 500);
  rig.link.sniffer().notify_arrival(p, Time{});
  EXPECT_THROW(rig.auditor.final_check(), InvariantViolation);
}

TEST(Audit, NonPositivePacketSizeTrips) {
  ForgeRig rig;
  const net::Packet p = rig.packet(1, 0);
  EXPECT_THROW(rig.link.sniffer().notify_arrival(p, Time{}),
               InvariantViolation);
}

}  // namespace
}  // namespace cgs::core
