// Stress tests for the hierarchical timer-wheel engine (event engine v2):
// deadlines spanning the near wheel (< ~16.8 ms), the coarse wheel
// (< ~4.3 s), and the far heap (beyond), with block rollovers, tier
// migration under reschedule, cancel-heavy churn, and exact same-deadline
// FIFO ordering — all checked against a brute-force reference model.
//
// The existing EventQueueStress suite confines itself to one near-wheel
// block; this suite exists precisely to cross those horizon boundaries.
#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace cgs::sim {
namespace {

// Engine geometry mirrored here on purpose: the tests must keep hitting
// the tier boundaries even if someone retunes the constants without
// updating this file — then these comments are the contract.
constexpr std::int64_t kNearSlotNs = 1 << 16;        // one near-wheel slot
constexpr std::int64_t kBlockNs = std::int64_t(1) << 24;   // near-wheel span
constexpr std::int64_t kCoarseSpanNs = std::int64_t(1) << 32;  // coarse span

/// Brute-force mirror of the queue's (time, insertion-seq) contract.
struct ModelEvent {
  int tag = 0;
  Time at = kTimeZero;
  std::uint64_t seq = 0;
  bool live = false;
  EventId id = kInvalidEventId;
};

class Model {
 public:
  int push(Time at) {
    events_.push_back(
        ModelEvent{int(events_.size()), at, next_seq_++, true, kInvalidEventId});
    return events_.back().tag;
  }

  void cancel(int tag) { events_[std::size_t(tag)].live = false; }

  void reschedule(int tag, Time at) {
    ModelEvent& e = events_[std::size_t(tag)];
    e.at = at;
    e.seq = next_seq_++;
  }

  /// Tag of the next event to fire (lowest (at, seq)), or -1 when drained.
  int pop() {
    int best = -1;
    for (const ModelEvent& e : events_) {
      if (!e.live) continue;
      if (best == -1 || e.at < events_[std::size_t(best)].at ||
          (e.at == events_[std::size_t(best)].at &&
           e.seq < events_[std::size_t(best)].seq)) {
        best = e.tag;
      }
    }
    if (best != -1) events_[std::size_t(best)].live = false;
    return best;
  }

  [[nodiscard]] std::size_t live_count() const {
    std::size_t n = 0;
    for (const ModelEvent& e : events_) n += e.live ? 1 : 0;
    return n;
  }

  [[nodiscard]] ModelEvent& at(int tag) { return events_[std::size_t(tag)]; }
  [[nodiscard]] std::vector<int> live_tags() const {
    std::vector<int> tags;
    for (const ModelEvent& e : events_) {
      if (e.live) tags.push_back(e.tag);
    }
    return tags;
  }

 private:
  std::vector<ModelEvent> events_;
  std::uint64_t next_seq_ = 1;
};

/// Random deadline drawn across all three tiers relative to `base`, with
/// deliberate mass on exact boundaries (block edges, slot edges) where
/// off-by-one routing bugs live.
Time random_deadline(Pcg32& rng, Time base) {
  std::int64_t off = 0;
  switch (rng.next_bounded(8)) {
    case 0:  // same-slot ties on a coarse grid
      off = std::int64_t(rng.next_bounded(16)) * kNearSlotNs;
      break;
    case 1:  // near wheel, arbitrary
      off = std::int64_t(rng.next_bounded(std::uint32_t(kBlockNs)));
      break;
    case 2:  // exact block boundary +/- 1
      off = std::int64_t(rng.next_bounded(4)) * kBlockNs +
            std::int64_t(rng.next_bounded(3)) - 1;
      break;
    case 3:
    case 4:  // coarse wheel
      off = std::int64_t(rng.next_bounded(255)) * kBlockNs +
            std::int64_t(rng.next_bounded(std::uint32_t(kBlockNs)));
      break;
    case 5:  // exact coarse-span boundary +/- 1
      off = kCoarseSpanNs + std::int64_t(rng.next_bounded(3)) - 1;
      break;
    default:  // far heap: seconds to a minute out
      off = kCoarseSpanNs +
            std::int64_t(rng.next_bounded(55'000)) * 1'000'000 +
            std::int64_t(rng.next_bounded(1'000'000));
      break;
  }
  return base + Time(off);
}

TEST(TimerWheel, RandomizedStressAcrossTiers) {
  Pcg32 rng(0x5EEDu);
  EventQueue q;
  Model model;
  std::vector<int> fired;
  Time base = kTimeZero;  // advances with pops so pushes keep crossing tiers

  for (int op = 0; op < 30000; ++op) {
    const std::uint32_t dice = rng.next_bounded(100);
    if (dice < 40 || model.live_count() == 0) {
      const Time at = random_deadline(rng, base);
      const int tag = model.push(at);
      model.at(tag).id = q.push(at, [tag, &fired] { fired.push_back(tag); });
      ASSERT_NE(model.at(tag).id, kInvalidEventId);
    } else if (dice < 55) {
      const auto tags = model.live_tags();
      const int tag = tags[rng.next_bounded(std::uint32_t(tags.size()))];
      q.cancel(model.at(tag).id);
      model.cancel(tag);
    } else if (dice < 75) {
      // Reschedule: the new deadline is drawn over all tiers, so events
      // routinely migrate near wheel <-> coarse wheel <-> far heap.
      const auto tags = model.live_tags();
      const int tag = tags[rng.next_bounded(std::uint32_t(tags.size()))];
      const Time at = random_deadline(rng, base);
      const EventId moved = q.reschedule(model.at(tag).id, at);
      ASSERT_NE(moved, kInvalidEventId);
      model.at(tag).id = moved;
      model.reschedule(tag, at);
    } else {
      ASSERT_FALSE(q.empty());
      const Time top = q.next_time();
      const std::size_t fired_before = fired.size();
      q.run_top();
      ASSERT_EQ(fired.size(), fired_before + 1);
      ASSERT_EQ(fired.back(), model.pop());
      // The wheels only ever advance, so deadline draws track the drain
      // front; pushing slightly in the past still happens (base jitter).
      if (top > base) base = top;
    }
    ASSERT_EQ(q.size(), model.live_count());
  }

  while (!q.empty()) {
    const std::size_t fired_before = fired.size();
    q.run_top();
    ASSERT_EQ(fired.size(), fired_before + 1);
    ASSERT_EQ(fired.back(), model.pop());
  }
  EXPECT_EQ(model.pop(), -1);
}

TEST(TimerWheel, SameDeadlineFifoAcrossTiers) {
  // Many events at the same instant, pushed while that instant sits in
  // different tiers (far heap first, then coarse, then near): they must
  // still fire in exact push order once the instant arrives.
  EventQueue q;
  const Time target(2 * kCoarseSpanNs + 5 * kBlockNs + 3 * kNearSlotNs + 7);
  std::vector<int> fired;

  // Pushed while `target` is beyond the coarse horizon (far heap).
  for (int i = 0; i < 8; ++i) {
    q.push(target, [i, &fired] { fired.push_back(i); });
  }
  // Drag the wheels forward so `target` enters the coarse, then near,
  // horizon, pushing more same-deadline events at each stage.
  q.push(Time(kCoarseSpanNs), [] {});
  while (!q.empty() && q.next_time() < target) q.run_top();
  for (int i = 8; i < 16; ++i) {
    q.push(target, [i, &fired] { fired.push_back(i); });
  }
  q.push(target - Time(kBlockNs / 2), [] {});
  while (!q.empty() && q.next_time() < target) q.run_top();
  for (int i = 16; i < 24; ++i) {
    q.push(target, [i, &fired] { fired.push_back(i); });
  }

  while (!q.empty()) q.run_top();
  ASSERT_EQ(fired.size(), 24u);
  for (int i = 0; i < 24; ++i) EXPECT_EQ(fired[std::size_t(i)], i);
}

TEST(TimerWheel, RescheduleMigratesBetweenTiers) {
  EventQueue q;
  std::vector<char> fired;

  // a: near -> far -> near again; b: far -> near; c: near -> coarse.
  EventId a = q.push(Time(1000), [&] { fired.push_back('a'); });
  EventId b = q.push(Time(10 * kCoarseSpanNs), [&] { fired.push_back('b'); });
  EventId c = q.push(Time(2000), [&] { fired.push_back('c'); });

  a = q.reschedule(a, Time(5 * kCoarseSpanNs));  // near -> far
  ASSERT_NE(a, kInvalidEventId);
  b = q.reschedule(b, Time(3000));               // far -> near
  ASSERT_NE(b, kInvalidEventId);
  c = q.reschedule(c, Time(100 * kBlockNs));     // near -> coarse
  ASSERT_NE(c, kInvalidEventId);
  a = q.reschedule(a, Time(1500));               // far -> near
  ASSERT_NE(a, kInvalidEventId);

  while (!q.empty()) q.run_top();
  ASSERT_EQ(fired.size(), 3u);
  EXPECT_EQ(fired[0], 'a');  // 1500
  EXPECT_EQ(fired[1], 'b');  // 3000
  EXPECT_EQ(fired[2], 'c');  // 100 blocks out
  // Old handles from before the migrations must be stale.
  EXPECT_EQ(q.reschedule(a, Time(1)), kInvalidEventId);
}

TEST(TimerWheel, CancelHeavyChurnAcrossTiers) {
  // Push thousands of events spread over every tier, cancel ~90% of them,
  // and verify the survivors fire in model order.  The cancel volume pushes
  // the engine through its lazy-deletion compaction sweeps.
  Pcg32 rng(0xDECAFu);
  EventQueue q;
  Model model;
  std::vector<int> fired;

  for (int round = 0; round < 40; ++round) {
    std::vector<int> tags;
    for (int i = 0; i < 200; ++i) {
      const Time at = random_deadline(rng, kTimeZero);
      const int tag = model.push(at);
      model.at(tag).id = q.push(at, [tag, &fired] { fired.push_back(tag); });
      tags.push_back(tag);
    }
    for (int i = 0; i < 180; ++i) {
      const int tag = tags[std::size_t(i)];
      q.cancel(model.at(tag).id);
      model.cancel(tag);
    }
    ASSERT_EQ(q.size(), model.live_count());
  }

  while (!q.empty()) {
    q.run_top();
    ASSERT_EQ(fired.back(), model.pop());
  }
  EXPECT_EQ(model.pop(), -1);
  EXPECT_EQ(fired.size(), 40u * 20u);
}

TEST(TimerWheel, BlockRolloverBoundaries) {
  // Events planted exactly on block and coarse-span edges (and one tick
  // either side) must fire in strict time order across the rollovers.
  EventQueue q;
  std::vector<std::int64_t> fired;
  std::vector<std::int64_t> expected;
  for (std::int64_t edge :
       {kBlockNs, 2 * kBlockNs, 255 * kBlockNs, 256 * kBlockNs,
        kCoarseSpanNs, kCoarseSpanNs + kBlockNs}) {
    for (std::int64_t t : {edge - 1, edge, edge + 1}) {
      q.push(Time(t), [t, &fired] { fired.push_back(t); });
      expected.push_back(t);
    }
  }
  while (!q.empty()) q.run_top();
  // 256 * kBlockNs and kCoarseSpanNs are the same edge, so some deadlines
  // repeat; a stable sort keeps duplicates in push (= seq) order, which is
  // exactly the engine's tie-break.
  std::stable_sort(expected.begin(), expected.end());
  EXPECT_EQ(fired, expected);
}

TEST(TimerWheel, EmptyQueueFastPathKeepsFarHorizon) {
  // Regression guard: pushing into an *empty* queue takes a fast path that
  // advances the wheel position to the event's slot.  That jump must stay
  // capped at the near horizon — an early far-future push must not strand
  // the wheels (turning every later push into a sorted-vector insert) nor
  // corrupt ordering for nearer events pushed afterwards.
  EventQueue q;
  std::vector<char> fired;
  q.push(Time(20 * kCoarseSpanNs), [&] { fired.push_back('f'); });  // far
  q.push(Time(1000), [&] { fired.push_back('n'); });               // near
  q.push(Time(3 * kBlockNs), [&] { fired.push_back('c'); });       // coarse
  while (!q.empty()) q.run_top();
  ASSERT_EQ(fired.size(), 3u);
  EXPECT_EQ(fired[0], 'n');
  EXPECT_EQ(fired[1], 'c');
  EXPECT_EQ(fired[2], 'f');

  // Same shape after a drain mid-run (the fast path re-arms every time the
  // queue empties, not just at construction).
  fired.clear();
  q.push(Time(40 * kCoarseSpanNs), [&] { fired.push_back('f'); });
  q.push(Time(21 * kCoarseSpanNs), [&] { fired.push_back('n'); });
  while (!q.empty()) q.run_top();
  ASSERT_EQ(fired.size(), 2u);
  EXPECT_EQ(fired[0], 'n');
  EXPECT_EQ(fired[1], 'f');
}

TEST(TimerWheel, RescheduleCurrentAcrossTiers) {
  // reschedule_current() from inside a firing callback must re-arm the
  // same slot at deadlines in any tier, preserving callback identity.
  EventQueue q;
  int hops = 0;
  Time next_hop(kBlockNs);  // near -> coarse -> far over successive firings
  q.push(Time(100), [&] {
    ++hops;
    if (hops < 4) {
      q.reschedule_current(next_hop);
      next_hop = Time(next_hop.count() * 300);
    }
  });
  while (!q.empty()) q.run_top();
  EXPECT_EQ(hops, 4);
  EXPECT_EQ(q.pushed_total(), 4u);  // one push + three in-place re-arms
}

}  // namespace
}  // namespace cgs::sim
