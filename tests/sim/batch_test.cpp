// Batched packet dispatch (event engine v2): run_top_batched() coalesces
// the maximal run of consecutive same-deadline, same-sink typed packet
// events into one handle_batch() call.  These tests prove the properties
// that make that safe: exact order preservation against per-event
// dispatch, coalescing only within (deadline, sink) runs, capacity splits,
// callbacks breaking runs, and a zero-allocation batched hot path.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <utility>
#include <vector>

#include "net/packet.hpp"
#include "sim/event_queue.hpp"
#include "sim/simulator.hpp"

namespace {

std::atomic<std::uint64_t> g_allocations{0};

}  // namespace

// Counting allocator for this test binary only (same idiom as
// zero_alloc_test): every overload funnels through malloc/free.
void* operator new(std::size_t n) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new(std::size_t n, std::align_val_t al) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(std::size_t(al), (n + std::size_t(al) - 1) &
                                                        ~(std::size_t(al) - 1)))
    return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void* operator new[](std::size_t n, std::align_val_t al) {
  return ::operator new(n, al);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace cgs::sim {
namespace {

/// One observed delivery: which sink, which packet (by uid), and whether it
/// arrived inside a handle_batch() call.
struct Delivery {
  int sink = 0;
  std::uint64_t uid = 0;
  bool batched = false;
};

/// Sink relying on the default handle_batch (unrolls to handle_packet):
/// records the pure per-packet order.
struct PlainSink final : net::PacketSink {
  PlainSink(int label, std::vector<Delivery>* log) : label(label), log(log) {}
  void handle_packet(net::PacketPtr pkt) override {
    log->push_back({label, pkt->uid, false});
  }
  int label;
  std::vector<Delivery>* log;
};

/// Sink with a bulk override: records batch boundaries and sizes.
struct BatchSink final : net::PacketSink {
  BatchSink(int label, std::vector<Delivery>* log) : label(label), log(log) {}
  void handle_packet(net::PacketPtr pkt) override {
    log->push_back({label, pkt->uid, false});
  }
  void handle_batch(net::PacketBatch& batch) override {
    for (std::size_t i = 0; i < batch.count; ++i) {
      log->push_back({label, batch.pkts[i]->uid, true});
    }
    batch_sizes.push_back(batch.count);
  }
  int label;
  std::vector<Delivery>* log;
  std::vector<std::size_t> batch_sizes;
};

net::PacketPtr mk(net::PacketFactory& f) {
  return f.make(1, net::TrafficClass::kGameStream, net::kRtpWire, kTimeZero,
                net::RtpHeader{});
}

TEST(Batch, OrderMatchesPerEventDispatch) {
  // The same randomised schedule pushed into two queues; one drained
  // per-event, one batched.  The observable (sink, uid) sequence must be
  // bit-identical — batching is an engine optimisation, not a semantic.
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    std::vector<Delivery> per_event, batched;
    std::uint64_t mix = seed * 0x9E3779B97F4A7C15ull;
    auto drive = [&](std::vector<Delivery>* log, bool use_batched) {
      EventQueue q;
      net::PacketFactory factory;  // uids restart at 1 for each queue
      PlainSink plain(1, log);
      BatchSink bulk(2, log);
      std::uint64_t x = mix;
      for (int i = 0; i < 400; ++i) {
        x = x * 6364136223846793005ull + 1442695040888963407ull;
        const Time at(std::int64_t((x >> 33) % 7) * 1000);
        switch ((x >> 13) % 5) {
          case 0:
            q.push(at, [log] { log->push_back({0, 0, false}); });
            break;
          case 1:
          case 2:
            q.push_packet(at, &plain, mk(factory));
            break;
          default:
            q.push_packet(at, &bulk, mk(factory));
            break;
        }
      }
      while (!q.empty()) {
        if (use_batched) {
          (void)q.run_top_batched();
        } else {
          q.run_top();
        }
      }
    };
    drive(&per_event, false);
    drive(&batched, true);
    ASSERT_EQ(per_event.size(), batched.size());
    for (std::size_t i = 0; i < per_event.size(); ++i) {
      EXPECT_EQ(per_event[i].sink, batched[i].sink) << "at " << i;
      EXPECT_EQ(per_event[i].uid, batched[i].uid) << "at " << i;
    }
  }
}

TEST(Batch, CoalescesSameDeadlineSameSinkRun) {
  EventQueue q;
  net::PacketFactory factory;
  std::vector<Delivery> log;
  BatchSink sink(1, &log);
  for (int i = 0; i < 5; ++i) q.push_packet(Time(1000), &sink, mk(factory));

  EXPECT_EQ(q.run_top_batched(), 5u);
  ASSERT_EQ(sink.batch_sizes.size(), 1u);
  EXPECT_EQ(sink.batch_sizes[0], 5u);
  ASSERT_EQ(log.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_TRUE(log[i].batched);
    EXPECT_EQ(log[i].uid, i + 1);  // factory uids are 1-based, push order
  }
  EXPECT_TRUE(q.empty());
}

TEST(Batch, SplitsAtCapacity) {
  EventQueue q;
  net::PacketFactory factory;
  std::vector<Delivery> log;
  BatchSink sink(1, &log);
  const std::size_t n = net::PacketBatch::kCapacity + 8;
  for (std::size_t i = 0; i < n; ++i) {
    q.push_packet(Time(1000), &sink, mk(factory));
  }

  EXPECT_EQ(q.run_top_batched(), net::PacketBatch::kCapacity);
  EXPECT_EQ(q.run_top_batched(), 8u);
  ASSERT_EQ(sink.batch_sizes.size(), 2u);
  EXPECT_EQ(sink.batch_sizes[0], net::PacketBatch::kCapacity);
  EXPECT_EQ(sink.batch_sizes[1], 8u);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(log[i].uid, i + 1);
}

TEST(Batch, NoCoalesceAcrossSinksOrDeadlines) {
  EventQueue q;
  net::PacketFactory factory;
  std::vector<Delivery> log;
  BatchSink a(1, &log), b(2, &log);
  // Alternating sinks at one instant, then a lone packet later: every
  // dispatch is a singleton, delivered via handle_packet (no PacketBatch
  // is even constructed for a run of one).
  q.push_packet(Time(1000), &a, mk(factory));
  q.push_packet(Time(1000), &b, mk(factory));
  q.push_packet(Time(1000), &a, mk(factory));
  q.push_packet(Time(2000), &a, mk(factory));

  std::size_t dispatches = 0;
  while (!q.empty()) {
    EXPECT_EQ(q.run_top_batched(), 1u);
    ++dispatches;
  }
  EXPECT_EQ(dispatches, 4u);
  EXPECT_TRUE(a.batch_sizes.empty());
  EXPECT_TRUE(b.batch_sizes.empty());
  ASSERT_EQ(log.size(), 4u);
  EXPECT_EQ(log[0].sink, 1);
  EXPECT_EQ(log[1].sink, 2);
  EXPECT_EQ(log[2].sink, 1);
  EXPECT_EQ(log[3].sink, 1);
  for (const Delivery& d : log) EXPECT_FALSE(d.batched);
}

TEST(Batch, CallbackBreaksRun) {
  // pkt pkt cb pkt, all same deadline: the callback sits between the runs
  // in (time, seq) order, so the engine must dispatch [pkt pkt], then the
  // callback, then the trailing singleton — never hoist it past the cb.
  EventQueue q;
  net::PacketFactory factory;
  std::vector<Delivery> log;
  BatchSink sink(1, &log);
  q.push_packet(Time(1000), &sink, mk(factory));
  q.push_packet(Time(1000), &sink, mk(factory));
  q.push(Time(1000), [&log] { log.push_back({0, 0, false}); });
  q.push_packet(Time(1000), &sink, mk(factory));

  EXPECT_EQ(q.run_top_batched(), 2u);
  EXPECT_EQ(q.run_top_batched(), 1u);  // the callback
  EXPECT_EQ(q.run_top_batched(), 1u);  // the trailing packet
  ASSERT_EQ(log.size(), 4u);
  EXPECT_EQ(log[0].uid, 1u);
  EXPECT_EQ(log[1].uid, 2u);
  EXPECT_EQ(log[2].sink, 0);
  EXPECT_EQ(log[3].uid, 3u);
  ASSERT_EQ(sink.batch_sizes.size(), 1u);
  EXPECT_EQ(sink.batch_sizes[0], 2u);
}

TEST(Batch, SimulatorRunDispatchesBatches) {
  // Through the Simulator front door: run_until() drives run_top_batched,
  // so a same-instant burst to one sink arrives as one batch and the
  // processed-event count still reflects every logical event.
  Simulator sim;
  net::PacketFactory factory;
  std::vector<Delivery> log;
  BatchSink sink(1, &log);
  for (int i = 0; i < 6; ++i) {
    sim.push_packet_in(Time(5000), &sink, mk(factory));
  }
  int cb_fired = 0;
  sim.schedule_in(Time(5000), [&] { ++cb_fired; });
  sim.run_until(Time(10000));

  EXPECT_EQ(cb_fired, 1);
  ASSERT_EQ(sink.batch_sizes.size(), 1u);
  EXPECT_EQ(sink.batch_sizes[0], 6u);
  ASSERT_EQ(log.size(), 6u);
  for (std::size_t i = 0; i < 6; ++i) EXPECT_EQ(log[i].uid, i + 1);
  EXPECT_EQ(sim.processed_events(), 7u);
}

TEST(Batch, ZeroAllocBatchedDispatch) {
  // The batched hot path — push_packet, coalesce, handle_batch, slot and
  // packet recycling — must not touch the allocator once pools are warm.
  struct NullSink final : net::PacketSink {
    void handle_packet(net::PacketPtr) override {}
  };
  EventQueue q;
  net::PacketFactory factory;
  NullSink sink;

  auto burst = [&] {
    for (std::size_t i = 0; i < 2 * net::PacketBatch::kCapacity; ++i) {
      q.push_packet(Time(1000), &sink, mk(factory));
    }
    while (!q.empty()) (void)q.run_top_batched();
  };
  burst();  // warm-up: slab, wheel nodes, due_/scratch_, packet pool

  const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  for (int round = 0; round < 100; ++round) burst();
  EXPECT_EQ(g_allocations.load(std::memory_order_relaxed) - before, 0u)
      << "batched packet dispatch must not allocate";
}

}  // namespace
}  // namespace cgs::sim
