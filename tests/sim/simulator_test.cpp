#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <functional>
#include <string>
#include <vector>

#include "sim/timer.hpp"

namespace cgs::sim {
namespace {

using namespace cgs::literals;

TEST(EventQueue, OrdersByTime) {
  EventQueue q;
  std::vector<int> fired;
  q.push(3_sec, [&] { fired.push_back(3); });
  q.push(1_sec, [&] { fired.push_back(1); });
  q.push(2_sec, [&] { fired.push_back(2); });
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TieBreakByInsertionOrder) {
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 10; ++i) {
    q.push(5_sec, [&fired, i] { fired.push_back(i); });
  }
  while (!q.empty()) q.pop().fn();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(fired[std::size_t(i)], i);
}

TEST(EventQueue, CancelPreventsFiring) {
  EventQueue q;
  int fired = 0;
  const EventId id = q.push(1_sec, [&] { ++fired; });
  q.push(2_sec, [&] { ++fired; });
  q.cancel(id);
  EXPECT_EQ(q.size(), 1u);
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(fired, 1);
}

TEST(EventQueue, CancelIsIdempotent) {
  EventQueue q;
  const EventId id = q.push(1_sec, [] {});
  q.cancel(id);
  q.cancel(id);  // no-op
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, NextTimeSkipsCancelled) {
  EventQueue q;
  const EventId id = q.push(1_sec, [] {});
  q.push(2_sec, [] {});
  q.cancel(id);
  EXPECT_EQ(q.next_time(), 2_sec);
}

TEST(Simulator, ClockAdvancesWithEvents) {
  Simulator sim;
  Time seen = kTimeZero;
  sim.schedule_at(5_sec, [&] { seen = sim.now(); });
  sim.run();
  EXPECT_EQ(seen, 5_sec);
  EXPECT_EQ(sim.now(), 5_sec);
}

TEST(Simulator, ScheduleInIsRelative) {
  Simulator sim;
  std::vector<Time> at;
  sim.schedule_in(1_sec, [&] {
    at.push_back(sim.now());
    sim.schedule_in(2_sec, [&] { at.push_back(sim.now()); });
  });
  sim.run();
  ASSERT_EQ(at.size(), 2u);
  EXPECT_EQ(at[0], 1_sec);
  EXPECT_EQ(at[1], 3_sec);
}

TEST(Simulator, PastSchedulesClampToNow) {
  Simulator sim;
  sim.schedule_at(10_sec, [&] {
    sim.schedule_at(1_sec, [&] { EXPECT_EQ(sim.now(), 10_sec); });
  });
  sim.run();
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(1_sec, [&] { ++fired; });
  sim.schedule_at(10_sec, [&] { ++fired; });
  sim.run_until(5_sec);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 5_sec);  // clock parked at the deadline
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.run_until(20_sec);
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, StopAbortsRun) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(1_sec, [&] {
    ++fired;
    sim.stop();
  });
  sim.schedule_at(2_sec, [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 1);
}

TEST(Simulator, EventCountTracking) {
  Simulator sim;
  for (int i = 0; i < 5; ++i) sim.schedule_in(Time(i), [] {});
  sim.run();
  EXPECT_EQ(sim.processed_events(), 5u);
}

TEST(Watchdog, DisabledByDefault) {
  Simulator sim;
  for (int i = 0; i < 100; ++i) sim.schedule_in(Time(i), [] {});
  EXPECT_NO_THROW(sim.run());
  EXPECT_EQ(sim.watchdog_event_budget(), 0u);
}

TEST(Watchdog, EventBudgetAbortsLivelock) {
  Simulator sim;
  sim.set_watchdog(/*max_events=*/1000);
  // Deliberate livelock: an event that perpetually reschedules itself at
  // the current time, so the clock never advances and run() never returns.
  std::uint64_t spins = 0;
  std::function<void()> spin = [&] {
    ++spins;
    sim.schedule_in(kTimeZero, [&] { spin(); });
  };
  sim.schedule_at(1_sec, [&] { spin(); });
  try {
    sim.run();
    FAIL() << "watchdog did not fire";
  } catch (const WatchdogError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("event budget"), std::string::npos) << what;
    EXPECT_NE(what.find("livelock"), std::string::npos) << what;
  }
  EXPECT_GE(sim.processed_events(), 1000u);
  EXPECT_LE(spins, 1001u);  // aborted promptly, not after millions of spins
}

TEST(Watchdog, SimTimeBudgetAborts) {
  Simulator sim;
  sim.set_watchdog(/*max_events=*/0, /*max_sim_time=*/10_sec);
  int fired_late = 0;
  sim.schedule_at(5_sec, [] {});
  sim.schedule_at(20_sec, [&] { ++fired_late; });
  try {
    sim.run();
    FAIL() << "watchdog did not fire";
  } catch (const WatchdogError& e) {
    EXPECT_NE(std::string(e.what()).find("sim-time budget"),
              std::string::npos);
  }
  EXPECT_EQ(fired_late, 0);  // the over-budget event never executed
}

TEST(Watchdog, GenerousBudgetDoesNotTriggerOnHealthyRun) {
  Simulator sim;
  sim.set_watchdog(/*max_events=*/10'000, /*max_sim_time=*/1000_sec);
  for (int i = 0; i < 100; ++i) sim.schedule_in(Time(i * 1000), [] {});
  EXPECT_NO_THROW(sim.run());
  EXPECT_EQ(sim.processed_events(), 100u);
}

TEST(Watchdog, WallClockBudgetCatchesSpinningHandlers) {
  Simulator sim;
  // No event or sim-time budget: each spin event is cheap by both counts
  // but burns ~5 ms of real time, which only the wall budget can see.
  sim.set_watchdog(/*max_events=*/0, /*max_sim_time=*/kTimeInfinite,
                   /*max_wall_seconds=*/0.2);
  EXPECT_DOUBLE_EQ(sim.watchdog_wall_budget_s(), 0.2);
  std::function<void()> spin = [&] {
    const auto until =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(5);
    while (std::chrono::steady_clock::now() < until) {}
    sim.schedule_in(1_ms, [&] { spin(); });
  };
  sim.schedule_at(kTimeZero, [&] { spin(); });
  const auto t0 = std::chrono::steady_clock::now();
  try {
    sim.run();
    FAIL() << "wall watchdog did not fire";
  } catch (const WatchdogError& e) {
    EXPECT_NE(std::string(e.what()).find("wall-clock"), std::string::npos)
        << e.what();
    EXPECT_DOUBLE_EQ(e.wall_budget_s(), 0.2);
    EXPECT_GT(e.wall_elapsed_s(), 0.2);
  }
  // The adaptive check interval must keep detection latency a small
  // multiple of the budget even with slow events (loose bound for CI).
  const double took =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_LT(took, 5.0);
}

TEST(Watchdog, WallClockBudgetIgnoresFastRuns) {
  Simulator sim;
  sim.set_watchdog(/*max_events=*/0, /*max_sim_time=*/kTimeInfinite,
                   /*max_wall_seconds=*/30.0);
  for (int i = 0; i < 20'000; ++i) sim.schedule_in(Time(i), [] {});
  EXPECT_NO_THROW(sim.run());
  EXPECT_EQ(sim.processed_events(), 20'000u);
}

TEST(OneShotTimer, FiresOnce) {
  Simulator sim;
  int fired = 0;
  OneShotTimer t(sim, [&] { ++fired; });
  t.arm(1_sec);
  EXPECT_TRUE(t.armed());
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(t.armed());
}

TEST(OneShotTimer, RearmResetsExpiry) {
  Simulator sim;
  int fired = 0;
  OneShotTimer t(sim, [&] { ++fired; });
  t.arm(1_sec);
  t.arm(5_sec);  // re-arm before firing
  sim.run_until(2_sec);
  EXPECT_EQ(fired, 0);
  sim.run_until(6_sec);
  EXPECT_EQ(fired, 1);
}

TEST(OneShotTimer, RearmFromOwnCallback) {
  Simulator sim;
  int fired = 0;
  OneShotTimer* tp = nullptr;
  OneShotTimer t(sim, [&] {
    if (++fired < 3) tp->arm(1_sec);
  });
  tp = &t;
  t.arm(1_sec);
  sim.run();
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(sim.now(), 3_sec);
}

TEST(OneShotTimer, CancelPreventsFire) {
  Simulator sim;
  int fired = 0;
  OneShotTimer t(sim, [&] { ++fired; });
  t.arm(1_sec);
  t.cancel();
  sim.run();
  EXPECT_EQ(fired, 0);
}

TEST(PeriodicTimer, FiresEveryPeriod) {
  Simulator sim;
  std::vector<Time> at;
  PeriodicTimer t(sim, 100_ms, [&] { at.push_back(sim.now()); });
  t.start();
  sim.run_until(1_sec);
  ASSERT_EQ(at.size(), 10u);
  EXPECT_EQ(at.front(), 100_ms);
  EXPECT_EQ(at.back(), 1_sec);
}

TEST(PeriodicTimer, FireNowStartsImmediately) {
  Simulator sim;
  std::vector<Time> at;
  PeriodicTimer t(sim, 100_ms, [&] { at.push_back(sim.now()); });
  t.start(/*fire_now=*/true);
  sim.run_until(250_ms);
  ASSERT_EQ(at.size(), 3u);  // 0, 100, 200 ms
  EXPECT_EQ(at.front(), kTimeZero);
}

TEST(PeriodicTimer, StopFromCallback) {
  Simulator sim;
  int fired = 0;
  PeriodicTimer* tp = nullptr;
  PeriodicTimer t(sim, 10_ms, [&] {
    if (++fired == 3) tp->stop();
  });
  tp = &t;
  t.start();
  sim.run_until(1_sec);
  EXPECT_EQ(fired, 3);
}

TEST(PeriodicTimer, DestructorCancels) {
  Simulator sim;
  int fired = 0;
  {
    PeriodicTimer t(sim, 10_ms, [&] { ++fired; });
    t.start();
  }
  sim.run_until(100_ms);
  EXPECT_EQ(fired, 0);
}

}  // namespace
}  // namespace cgs::sim
