// Proves the hot-path zero-allocation property with a counting global
// allocator: once warmed up, event push/pop/cancel/reschedule, periodic
// timer ticks, and packet make/free must not touch the heap at all.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "net/link.hpp"
#include "net/packet.hpp"
#include "net/queue.hpp"
#include "sim/simulator.hpp"
#include "sim/timer.hpp"

namespace {

std::atomic<std::uint64_t> g_allocations{0};

}  // namespace

// Counting allocator for this test binary only. All overloads funnel
// through plain malloc/free so alignment-extended forms stay correct.
void* operator new(std::size_t n) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new(std::size_t n, std::align_val_t al) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(std::size_t(al), (n + std::size_t(al) - 1) &
                                                        ~(std::size_t(al) - 1)))
    return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void* operator new[](std::size_t n, std::align_val_t al) {
  return ::operator new(n, al);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace cgs::sim {
namespace {

using namespace cgs::literals;

std::uint64_t allocation_count() {
  return g_allocations.load(std::memory_order_relaxed);
}

TEST(ZeroAlloc, EventQueueSteadyState) {
  EventQueue q;
  // Warm-up: size the slab and heap beyond anything the loop below needs.
  std::vector<EventId> ids;
  for (int i = 0; i < 512; ++i) ids.push_back(q.push(Time(i), [] {}));
  for (EventId id : ids) q.cancel(id);
  while (!q.empty()) q.pop();

  const std::uint64_t before = allocation_count();
  for (int round = 0; round < 100; ++round) {
    EventId keep[64];
    for (int i = 0; i < 64; ++i) keep[i] = q.push(Time(round * 64 + i), [] {});
    for (int i = 0; i < 64; i += 2) {
      keep[i] = q.reschedule(keep[i], Time(round * 64 + i + 1));
    }
    for (int i = 1; i < 64; i += 2) q.cancel(keep[i]);
    while (!q.empty()) q.pop();
  }
  EXPECT_EQ(allocation_count() - before, 0u)
      << "event push/pop/cancel/reschedule must not allocate";
}

TEST(ZeroAlloc, SimulatorTimerSteadyState) {
  Simulator sim;
  int ticks = 0;
  PeriodicTimer periodic(sim, 1_ms, [&] { ++ticks; });
  OneShotTimer oneshot(sim, [] {});
  periodic.start();
  // Warm-up: run some ticks and a burst of rearms so the slab, the heap
  // vector (including lazy-deletion headroom), and its growth are all
  // behind us before counting.
  for (int i = 0; i < 200; ++i) oneshot.arm(1_sec);
  oneshot.cancel();
  sim.run_until(50_ms);

  const std::uint64_t before = allocation_count();
  for (int i = 0; i < 200; ++i) oneshot.arm(5_ms);  // rearm-in-place path
  sim.run_until(1_sec);
  EXPECT_EQ(allocation_count() - before, 0u)
      << "periodic ticks and one-shot rearms must not allocate";
  EXPECT_EQ(ticks, 1000);
}

TEST(ZeroAlloc, PacketMakeFreeSteadyState) {
  net::PacketFactory factory;
  {
    // Warm-up: carve enough pooled storage for the loop's window.
    net::PacketPtr warm[64];
    for (auto& p : warm) {
      p = factory.make(1, net::TrafficClass::kTcpData, 1500, kTimeZero,
                       net::TcpHeader{});
    }
  }

  const std::uint64_t before = allocation_count();
  for (int round = 0; round < 1000; ++round) {
    net::PacketPtr window[32];
    for (auto& p : window) {
      p = factory.make(1, net::TrafficClass::kTcpData, 1500, Time(round),
                       net::TcpHeader{});
    }
  }
  EXPECT_EQ(allocation_count() - before, 0u)
      << "steady-state packet make/free must not allocate";
  EXPECT_GT(factory.pool().recycled_total(), 0u);
}

TEST(ZeroAlloc, LinkTrafficSteadyState) {
  // End-to-end: packets crossing a Link schedule serialisation and
  // propagation events whose closures own the PacketPtr — the whole cycle
  // must run allocation-free once pools are warm.
  struct NullSink final : net::PacketSink {
    void handle_packet(net::PacketPtr) override {}
  };
  Simulator sim;
  net::PacketFactory factory;
  NullSink sink;
  net::Link link(sim, "l", 1_gbps, 1_ms,
                 std::make_unique<net::DropTailQueue>(10_MB), &sink);

  auto drive = [&](int packets) {
    for (int i = 0; i < packets; ++i) {
      link.handle_packet(factory.make(1, net::TrafficClass::kTcpData, 1500,
                                      sim.now(), net::TcpHeader{}));
    }
    sim.run();
  };
  drive(256);  // warm-up

  const std::uint64_t before = allocation_count();
  drive(256);
  EXPECT_EQ(allocation_count() - before, 0u)
      << "packet forwarding through a Link must not allocate";
}

}  // namespace
}  // namespace cgs::sim
