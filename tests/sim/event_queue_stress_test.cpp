// Randomised stress test of the pooled EventQueue against a brute-force
// reference model: interleaved push / cancel / reschedule / pop sequences
// must fire in exactly the (time, insertion-seq) order the model predicts,
// and stale handles must stay inert.
#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace cgs::sim {
namespace {

// One live-or-dead event in the reference model. `seq` mirrors the queue's
// internal sequence counter: push and reschedule each claim the next value.
struct ModelEvent {
  int tag = 0;
  Time at = kTimeZero;
  std::uint64_t seq = 0;
  bool live = false;
  EventId id = kInvalidEventId;
};

class Model {
 public:
  int push(Time at) {
    events_.push_back(
        ModelEvent{int(events_.size()), at, next_seq_++, true, kInvalidEventId});
    return events_.back().tag;
  }

  void cancel(int tag) { events_[std::size_t(tag)].live = false; }

  void reschedule(int tag, Time at) {
    ModelEvent& e = events_[std::size_t(tag)];
    e.at = at;
    e.seq = next_seq_++;
  }

  /// Tag of the next event to fire (lowest (at, seq)), or -1 when drained.
  int pop() {
    int best = -1;
    for (const ModelEvent& e : events_) {
      if (!e.live) continue;
      if (best == -1 || e.at < events_[std::size_t(best)].at ||
          (e.at == events_[std::size_t(best)].at &&
           e.seq < events_[std::size_t(best)].seq)) {
        best = e.tag;
      }
    }
    if (best != -1) events_[std::size_t(best)].live = false;
    return best;
  }

  [[nodiscard]] std::size_t live_count() const {
    std::size_t n = 0;
    for (const ModelEvent& e : events_) n += e.live ? 1 : 0;
    return n;
  }

  [[nodiscard]] ModelEvent& at(int tag) { return events_[std::size_t(tag)]; }
  [[nodiscard]] std::vector<int> live_tags() const {
    std::vector<int> tags;
    for (const ModelEvent& e : events_) {
      if (e.live) tags.push_back(e.tag);
    }
    return tags;
  }

 private:
  std::vector<ModelEvent> events_;
  std::uint64_t next_seq_ = 1;
};

TEST(EventQueueStress, MatchesReferenceModel) {
  Pcg32 rng(0xC0FFEE);
  EventQueue q;
  Model model;
  std::vector<int> fired;

  for (int op = 0; op < 20000; ++op) {
    const std::uint32_t dice = rng.next_bounded(100);
    if (dice < 45 || model.live_count() == 0) {
      // Push at a random time (ties are frequent on purpose: coarse grid).
      const Time at = Time(rng.next_bounded(64) * 1000);
      const int tag = model.push(at);
      model.at(tag).id = q.push(at, [tag, &fired] { fired.push_back(tag); });
      ASSERT_NE(model.at(tag).id, kInvalidEventId);
    } else if (dice < 60) {
      // Cancel a random live event.
      const auto tags = model.live_tags();
      const int tag = tags[rng.next_bounded(std::uint32_t(tags.size()))];
      q.cancel(model.at(tag).id);
      model.cancel(tag);
    } else if (dice < 70) {
      // Cancel an already-dead handle: must be a no-op.
      q.cancel(kInvalidEventId);
    } else if (dice < 85) {
      // Reschedule a random live event to a new random time.
      const auto tags = model.live_tags();
      const int tag = tags[rng.next_bounded(std::uint32_t(tags.size()))];
      const Time at = Time(rng.next_bounded(64) * 1000);
      const EventId moved = q.reschedule(model.at(tag).id, at);
      ASSERT_NE(moved, kInvalidEventId);
      model.at(tag).id = moved;
      model.reschedule(tag, at);
    } else {
      // Fire the earliest event and check it against the model.
      ASSERT_FALSE(q.empty());
      const std::size_t fired_before = fired.size();
      q.pop().fn();
      ASSERT_EQ(fired.size(), fired_before + 1);
      EXPECT_EQ(fired.back(), model.pop());
    }
    ASSERT_EQ(q.size(), model.live_count());
  }

  // Drain: remaining events must fire in exact model order.
  while (!q.empty()) {
    const std::size_t fired_before = fired.size();
    q.pop().fn();
    ASSERT_EQ(fired.size(), fired_before + 1);
    EXPECT_EQ(fired.back(), model.pop());
  }
  EXPECT_EQ(model.pop(), -1);
}

TEST(EventQueueStress, StaleHandlesAreInert) {
  EventQueue q;
  int fired = 0;
  const EventId a = q.push(Time(1000), [&] { ++fired; });
  const EventId b = q.push(Time(2000), [&] { ++fired; });

  q.pop().fn();  // fires a
  EXPECT_EQ(fired, 1);
  q.cancel(a);                                     // stale: no-op
  EXPECT_EQ(q.reschedule(a, Time(5000)), kInvalidEventId);  // stale: refused
  EXPECT_EQ(q.size(), 1u);

  q.cancel(b);
  q.cancel(b);  // double cancel: no-op
  EXPECT_EQ(q.reschedule(b, Time(5000)), kInvalidEventId);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(fired, 1);
}

TEST(EventQueueStress, RescheduleKeepsCallback) {
  EventQueue q;
  int fired = 0;
  EventId id = q.push(Time(1000), [&] { ++fired; });
  id = q.reschedule(id, Time(3000));
  ASSERT_NE(id, kInvalidEventId);
  q.push(Time(2000), [] {});

  auto first = q.pop();
  EXPECT_EQ(first.at, Time(2000));
  auto second = q.pop();
  EXPECT_EQ(second.at, Time(3000));
  second.fn();
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueStress, SlotReuseAfterHeavyChurn) {
  // Push/cancel far more events than any single snapshot holds: the slab
  // must recycle slots rather than grow per event.
  EventQueue q;
  std::vector<EventId> ids;
  for (int round = 0; round < 1000; ++round) {
    ids.clear();
    for (int i = 0; i < 16; ++i) {
      ids.push_back(q.push(Time(round * 100 + i), [] {}));
    }
    for (int i = 0; i < 16; i += 2) q.cancel(ids[std::size_t(i)]);
    while (!q.empty()) q.pop();
  }
  EXPECT_EQ(q.pushed_total(), 16000u);
}

}  // namespace
}  // namespace cgs::sim
