#include "apps/dash_video.hpp"

#include <gtest/gtest.h>

#include "net/queue.hpp"
#include "net/router.hpp"

namespace cgs::apps {
namespace {

using namespace cgs::literals;

struct DashHarness {
  sim::Simulator sim;
  net::PacketFactory factory;
  net::BottleneckRouter router;
  net::DelayLine access;
  DashVideoClient client;

  explicit DashHarness(Bandwidth cap, DashConfig cfg = {},
                       tcp::CcAlgo algo = tcp::CcAlgo::kCubic)
      : router(sim, cap, 1_ms,
               std::make_unique<net::DropTailQueue>(
                   bdp(cap, Time(16500_us)) * 2)),
        access(sim, Time(7250_us), &router.downstream_in()),
        client(sim, factory, 5, algo, cfg) {
    router.register_client(5, &client.flow().receiver());
    client.attach(&access,
                  &router.make_upstream(Time(8250_us),
                                        &client.flow().sender()));
  }
};

TEST(DashVideo, FetchesChunksAndBuffers) {
  DashHarness h(50_mbps);
  h.client.start();
  h.sim.run_until(30_sec);
  EXPECT_GT(h.client.chunks_fetched(), 3);
  EXPECT_GT(h.client.buffer_level(h.sim.now()), 4_sec);
}

TEST(DashVideo, ClimbsLadderOnFastLink) {
  DashHarness h(50_mbps);
  h.client.start();
  h.sim.run_until(120_sec);
  // Plenty of capacity: should reach the top rung (20 Mb/s ladder, 50 Mb/s
  // link, 0.8 safety).
  EXPECT_EQ(h.client.current_quality(), DashConfig{}.ladder.size() - 1);
  EXPECT_LT(to_seconds(h.client.stall_time(h.sim.now())), 1.0);
}

TEST(DashVideo, StaysLowOnSlowLink) {
  DashHarness h(Bandwidth::mbps(3.0));
  h.client.start();
  h.sim.run_until(120_sec);
  // 3 Mb/s link: it must settle at or below the 2.5 Mb/s rung.
  EXPECT_LE(h.client.current_ladder_rate().megabits_per_sec(), 2.6);
}

TEST(DashVideo, BufferCapsNearTarget) {
  DashConfig cfg;
  cfg.buffer_target = 12_sec;
  DashHarness h(50_mbps, cfg);
  h.client.start();
  h.sim.run_until(120_sec);
  // Buffer never wildly exceeds target + one chunk.
  EXPECT_LE(h.client.buffer_level(h.sim.now()),
            cfg.buffer_target + 2 * cfg.chunk_duration);
  EXPECT_GE(h.client.buffer_level(h.sim.now()), 4_sec);
}

TEST(DashVideo, StallsWhenLinkDies) {
  DashHarness h(Bandwidth::mbps(8.0));
  h.client.start();
  h.sim.run_until(60_sec);
  const Time stalled_before = h.client.stall_time(h.sim.now());
  // Choke the link far below the lowest rung.
  h.router.bottleneck().set_rate(Bandwidth::kbps(200));
  h.sim.run_until(180_sec);
  EXPECT_GT(h.client.stall_time(h.sim.now()),
            stalled_before + 10_sec);
}

TEST(DashVideo, MeanQualityTracksFetches) {
  DashHarness h(50_mbps);
  h.client.start();
  h.sim.run_until(60_sec);
  EXPECT_GT(h.client.mean_quality().bits_per_sec(), 0);
  EXPECT_LE(h.client.mean_quality().megabits_per_sec(), 20.0);
}

TEST(DashVideo, StopHaltsFetching) {
  DashHarness h(50_mbps);
  h.client.start();
  h.sim.run_until(20_sec);
  h.client.stop();
  const int chunks = h.client.chunks_fetched();
  h.sim.run_until(60_sec);
  EXPECT_LE(h.client.chunks_fetched(), chunks + 1);  // at most the in-flight one
}

}  // namespace
}  // namespace cgs::apps
