// Behavioural tests for the three system rate controllers and the shared
// delay detectors.
#include <gtest/gtest.h>

#include "stream/controllers/geforce_like.hpp"
#include "stream/controllers/luna_like.hpp"
#include "stream/controllers/stadia_like.hpp"
#include "stream/delay_detector.hpp"
#include "stream/profiles.hpp"

namespace cgs::stream {
namespace {

using namespace cgs::literals;

FeedbackSnapshot fb(Time now, Bandwidth recv, double loss, Time qdelay) {
  FeedbackSnapshot s;
  s.now = now;
  s.recv_rate = recv;
  s.send_rate = recv;
  s.loss_fraction = loss;
  s.queuing_delay = qdelay;
  s.valid = true;
  return s;
}

// ----------------------------------------------------------- detectors ----

TEST(RelativeDelayDetector, ToleratesStableStandingQueue) {
  RelativeDelayDetector d({.norm_gain = 0.1,
                           .rel_factor = 1.5,
                           .abs_margin = 5_ms,
                           .hard_limit = kTimeInfinite});
  // Warm up on a stable 20 ms standing queue.
  for (int i = 0; i < 50; ++i) EXPECT_FALSE(d.overused(20_ms)) << i;
  // A jump to 40 ms (2x the norm) is overuse.
  EXPECT_TRUE(d.overused(40_ms));
}

TEST(RelativeDelayDetector, HardLimitAlwaysTrips) {
  RelativeDelayDetector d({.norm_gain = 0.1,
                           .rel_factor = 1.5,
                           .abs_margin = 5_ms,
                           .hard_limit = 60_ms});
  for (int i = 0; i < 200; ++i) d.overused(100_ms);  // norm saturates high
  EXPECT_TRUE(d.overused(100_ms));  // still above the hard ceiling
}

TEST(RelativeDelayDetector, LowDelayNeverOveruse) {
  RelativeDelayDetector d({});
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(d.overused(std::chrono::milliseconds(1 + i % 3)));
  }
}

TEST(StandingQueueDetector, CubicStyleDrainsReset) {
  StandingQueueDetector d(3_sec, 12_ms);
  Time t = kTimeZero;
  // Sawtooth 5..30 ms with dips below the floor: never standing.
  for (int i = 0; i < 100; ++i) {
    t += 100_ms;
    const Time q = std::chrono::milliseconds(5 + (i % 10) * 3);
    const bool s = d.standing(q, t);
    if (i > 30) EXPECT_FALSE(s) << i;
  }
}

TEST(StandingQueueDetector, BbrStyleStandingTrips) {
  StandingQueueDetector d(3_sec, 12_ms);
  Time t = kTimeZero;
  bool tripped = false;
  // Persistent 15-25 ms queue, never draining.
  for (int i = 0; i < 100; ++i) {
    t += 100_ms;
    const Time q = std::chrono::milliseconds(15 + (i % 10));
    tripped = d.standing(q, t);
  }
  EXPECT_TRUE(tripped);
}

// ------------------------------------------------------------- Stadia -----

TEST(StadiaLike, RampsToMaxWhenClean) {
  StadiaLikeConfig cfg;
  StadiaLikeController c(cfg);
  Time t = kTimeZero;
  ControlDecision d = c.current();
  for (int i = 0; i < 2000; ++i) {
    t += 100_ms;
    d = c.on_feedback(fb(t, d.target_bitrate, 0.0, 1_ms));
  }
  EXPECT_EQ(d.target_bitrate, cfg.max_bitrate);
  EXPECT_DOUBLE_EQ(d.target_fps, 60.0);
}

TEST(StadiaLike, ToleratesModerateLoss) {
  // GCC-class behaviour: 5% loss alone must not crash the rate.
  StadiaLikeConfig cfg;
  StadiaLikeController c(cfg);
  Time t = kTimeZero;
  ControlDecision d = c.current();
  for (int i = 0; i < 600; ++i) {
    t += 100_ms;
    d = c.on_feedback(fb(t, d.target_bitrate * 0.95, 0.05, 2_ms));
  }
  EXPECT_GT(d.target_bitrate.megabits_per_sec(), 20.0);
}

TEST(StadiaLike, HeavyLossErodesRate) {
  StadiaLikeConfig cfg;
  StadiaLikeController c(cfg);
  Time t = kTimeZero;
  ControlDecision d = c.current();
  for (int i = 0; i < 600; ++i) {
    t += 100_ms;
    d = c.on_feedback(fb(t, d.target_bitrate * 0.75, 0.25, 2_ms));
  }
  EXPECT_LT(d.target_bitrate.megabits_per_sec(),
            cfg.start_bitrate.megabits_per_sec());
}

TEST(StadiaLike, DelaySpikeBacksOffToRecvFraction) {
  StadiaLikeConfig cfg;
  StadiaLikeController c(cfg);
  Time t = kTimeZero;
  ControlDecision d = c.current();
  for (int i = 0; i < 300; ++i) {
    t += 100_ms;
    d = c.on_feedback(fb(t, d.target_bitrate, 0.0, 2_ms));
  }
  const double before = d.target_bitrate.megabits_per_sec();
  t += 100_ms;
  d = c.on_feedback(fb(t, Bandwidth::mbps(14.0), 0.0, 70_ms));  // hard limit
  EXPECT_LT(d.target_bitrate.megabits_per_sec(), before);
  EXPECT_GE(d.target_bitrate.megabits_per_sec(), before * 0.5 - 1e-9);
}

TEST(StadiaLike, FpsLadderFollowsLoss) {
  StadiaLikeConfig cfg;
  StadiaLikeController c(cfg);
  Time t = kTimeZero;
  ControlDecision d = c.current();
  EXPECT_DOUBLE_EQ(d.target_fps, 60.0);
  for (int i = 0; i < 50; ++i) {
    t += 100_ms;
    d = c.on_feedback(fb(t, Bandwidth::mbps(12), 0.005, 2_ms));
  }
  EXPECT_DOUBLE_EQ(d.target_fps, 50.0);
  for (int i = 0; i < 50; ++i) {
    t += 100_ms;
    d = c.on_feedback(fb(t, Bandwidth::mbps(12), 0.03, 2_ms));
  }
  EXPECT_DOUBLE_EQ(d.target_fps, 40.0);
}

// ------------------------------------------------------------ GeForce -----

TEST(GeForceLike, AlwaysTargets60Fps) {
  GeForceLikeConfig cfg;
  GeForceLikeController c(cfg);
  Time t = kTimeZero;
  ControlDecision d = c.current();
  for (int i = 0; i < 200; ++i) {
    t += 100_ms;
    d = c.on_feedback(fb(t, Bandwidth::mbps(5), 0.05, 30_ms));
    ASSERT_DOUBLE_EQ(d.target_fps, 60.0);
  }
}

TEST(GeForceLike, LightLossTriggersBackoff) {
  GeForceLikeConfig cfg;
  GeForceLikeController c(cfg);
  Time t = kTimeZero;
  ControlDecision d = c.current();
  const double before = d.target_bitrate.megabits_per_sec();
  t += 100_ms;
  d = c.on_feedback(fb(t, Bandwidth::mbps(10), 0.03, 1_ms));
  EXPECT_LT(d.target_bitrate.megabits_per_sec(), before);
}

TEST(GeForceLike, SlowAdditiveRecovery) {
  GeForceLikeConfig cfg;
  GeForceLikeController c(cfg);
  Time t = kTimeZero;
  // Knock it to the floor.
  for (int i = 0; i < 30; ++i) {
    t += 100_ms;
    c.on_feedback(fb(t, Bandwidth::mbps(3), 0.05, 30_ms));
  }
  // Clean network: it must climb, but no faster than step per interval.
  ControlDecision d = c.current();
  const double floor_rate = d.target_bitrate.megabits_per_sec();
  for (int i = 0; i < 100; ++i) {
    t += 100_ms;
    const double prev = d.target_bitrate.megabits_per_sec();
    d = c.on_feedback(fb(t, d.target_bitrate, 0.0, 1_ms));
    ASSERT_LE(d.target_bitrate.megabits_per_sec() - prev,
              cfg.increase_step.megabits_per_sec() + 1e-9);
  }
  EXPECT_GT(d.target_bitrate.megabits_per_sec(), floor_rate);
}

TEST(GeForceLike, StandingQueueSuppresses) {
  GeForceLikeConfig cfg;
  GeForceLikeController c(cfg);
  Time t = kTimeZero;
  ControlDecision d = c.current();
  // Persistent 18 ms standing queue (BBR-style), no loss.
  for (int i = 0; i < 400; ++i) {
    t += 100_ms;
    d = c.on_feedback(fb(t, d.target_bitrate, 0.0, 18_ms));
  }
  EXPECT_LT(d.target_bitrate.megabits_per_sec(), 10.0);
}

// --------------------------------------------------------------- Luna -----

TEST(LunaLike, FpsLadderFollowsBitrate) {
  LunaLikeConfig cfg;
  LunaLikeController c(cfg);
  // Climb the rate above the 60 f/s tier with clean feedback.
  Time tt = kTimeZero;
  ControlDecision dd = c.current();
  for (int i = 0; i < 600; ++i) {
    tt += 100_ms;
    dd = c.on_feedback(fb(tt, dd.target_bitrate, 0.0, 1_ms));
  }
  EXPECT_GE(dd.target_bitrate, cfg.fps60_at);
  EXPECT_DOUBLE_EQ(dd.target_fps, 60.0);
  LunaLikeController low(cfg);
  Time t = kTimeZero;
  ControlDecision d = low.current();
  for (int i = 0; i < 200; ++i) {
    t += 100_ms;
    d = low.on_feedback(fb(t, Bandwidth::mbps(3), 0.06, 1_ms));
  }
  EXPECT_LT(d.target_bitrate, cfg.fps40_at);
  EXPECT_DOUBLE_EQ(d.target_fps, 30.0);
}

TEST(LunaLike, ClimbsOnlyAfterCleanStreak) {
  LunaLikeConfig cfg;
  LunaLikeController c(cfg);
  Time t = kTimeZero;
  ControlDecision d = c.current();
  const double start = d.target_bitrate.megabits_per_sec();
  // Fewer clean intervals than required: no climb.
  for (int i = 0; i < cfg.clean_intervals_to_climb - 1; ++i) {
    t += 100_ms;
    d = c.on_feedback(fb(t, d.target_bitrate, 0.0, 1_ms));
  }
  EXPECT_DOUBLE_EQ(d.target_bitrate.megabits_per_sec(), start);
  // One more: climbs.
  t += 100_ms;
  d = c.on_feedback(fb(t, d.target_bitrate, 0.0, 1_ms));
  EXPECT_GT(d.target_bitrate.megabits_per_sec(), start);
}

TEST(LunaLike, LossResetsCleanStreak) {
  LunaLikeConfig cfg;
  LunaLikeController c(cfg);
  Time t = kTimeZero;
  ControlDecision d = c.current();
  const double start = d.target_bitrate.megabits_per_sec();
  for (int i = 0; i < 100; ++i) {
    t += 100_ms;
    // A dirty interval every clean_intervals-1 steps: never climbs.
    const double loss =
        (i % (cfg.clean_intervals_to_climb - 1) == 0) ? 0.05 : 0.0;
    d = c.on_feedback(fb(t, d.target_bitrate, loss, 1_ms));
  }
  EXPECT_LE(d.target_bitrate.megabits_per_sec(), start);
}

TEST(LunaLike, StandingQueuePinsRate) {
  LunaLikeConfig cfg;
  LunaLikeController c(cfg);
  Time t = kTimeZero;
  ControlDecision d = c.current();
  for (int i = 0; i < 400; ++i) {
    t += 100_ms;
    d = c.on_feedback(fb(t, d.target_bitrate, 0.0, 16_ms));
  }
  EXPECT_LT(d.target_bitrate.megabits_per_sec(),
            cfg.start_bitrate.megabits_per_sec());
}

// ------------------------------------------------------------ profiles ----

TEST(Profiles, Table1Baselines) {
  EXPECT_DOUBLE_EQ(
      profile_for(GameSystem::kStadia).max_bitrate.megabits_per_sec(), 27.5);
  EXPECT_DOUBLE_EQ(
      profile_for(GameSystem::kGeForce).max_bitrate.megabits_per_sec(), 24.5);
  EXPECT_DOUBLE_EQ(
      profile_for(GameSystem::kLuna).max_bitrate.megabits_per_sec(), 23.7);
}

TEST(Profiles, ControllersMatchSystems) {
  EXPECT_EQ(make_controller(GameSystem::kStadia)->name(), "stadia-like");
  EXPECT_EQ(make_controller(GameSystem::kGeForce)->name(), "geforce-like");
  EXPECT_EQ(make_controller(GameSystem::kLuna)->name(), "luna-like");
}

TEST(Profiles, Names) {
  EXPECT_EQ(to_string(GameSystem::kStadia), "Stadia");
  EXPECT_EQ(to_string(GameSystem::kGeForce), "GeForce");
  EXPECT_EQ(to_string(GameSystem::kLuna), "Luna");
}

}  // namespace
}  // namespace cgs::stream
