// Unit tests for StreamReceiver: feedback report contents, windowed loss,
// FEC decodability and playout-deadline decisions.
#include "stream/receiver.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace cgs::stream {
namespace {

using namespace cgs::literals;

class FeedbackCollector final : public net::PacketSink {
 public:
  void handle_packet(net::PacketPtr pkt) override {
    reports.push_back(std::get<net::FeedbackHeader>(pkt->header));
  }
  std::vector<net::FeedbackHeader> reports;
};

struct Rig {
  sim::Simulator sim;
  net::PacketFactory factory;
  FeedbackCollector fb;
  StreamReceiver recv;

  explicit Rig(StreamReceiver::Options opts = {.flow = 1,
                                               .feedback_interval = 100_ms,
                                               .fec_rate = 0.0,
                                               .playout_deadline = 100_ms})
      : recv(sim, factory, opts) {
    recv.set_output(&fb);
    recv.start();
  }

  /// Deliver one RTP packet of frame `fid` (index/count), sequence `seq`,
  /// created `owd` ago.
  void rtp(std::uint32_t seq, std::uint32_t fid, std::uint16_t idx,
           std::uint16_t count, Time owd = 5_ms, Time gen = kTimeZero) {
    net::RtpHeader h;
    h.seq = seq;
    h.frame_id = fid;
    h.pkt_index = idx;
    h.pkts_in_frame = count;
    h.frame_gen_time = gen == kTimeZero ? sim.now() : gen;
    auto pkt = factory.make(1, net::TrafficClass::kGameStream,
                            net::kRtpWire, sim.now() - owd, h);
    recv.handle_packet(std::move(pkt));
  }
};

TEST(StreamReceiverUnit, FeedbackEveryInterval) {
  Rig rig;
  rig.sim.run_until(1_sec);
  EXPECT_EQ(rig.fb.reports.size(), 10u);
}

TEST(StreamReceiverUnit, ReportsReceiveRate) {
  Rig rig;
  // 10 packets of 1200 B within the first 100 ms window.
  for (std::uint32_t i = 0; i < 10; ++i) rig.rtp(i, 0, std::uint16_t(i), 10);
  rig.sim.run_until(100_ms);
  ASSERT_FALSE(rig.fb.reports.empty());
  // 12000 B / 100 ms = 960 kb/s.
  EXPECT_NEAR(double(rig.fb.reports[0].recv_rate_bps), 960e3, 1e3);
}

TEST(StreamReceiverUnit, WindowLossFromSequenceGaps) {
  Rig rig;
  // Sequences 0..9 with 2 and 5 missing -> 8 received of 10 expected.
  for (std::uint32_t s : {0u, 1u, 3u, 4u, 6u, 7u, 8u, 9u}) {
    rig.rtp(s, 0, 0, 1);
  }
  rig.sim.run_until(100_ms);
  ASSERT_FALSE(rig.fb.reports.empty());
  // Expected counted from seq progress: first window uses highest+1 = 10.
  EXPECT_NEAR(rig.fb.reports[0].window_loss_fraction, 0.2, 0.01);
  EXPECT_EQ(rig.recv.packets_lost(), 2u);
}

TEST(StreamReceiverUnit, OwdStatsInFeedback) {
  Rig rig;
  rig.rtp(0, 0, 0, 2, /*owd=*/10_ms);
  rig.rtp(1, 0, 1, 2, /*owd=*/20_ms);
  rig.sim.run_until(100_ms);
  ASSERT_FALSE(rig.fb.reports.empty());
  EXPECT_EQ(rig.fb.reports[0].min_owd, 10_ms);
  EXPECT_EQ(rig.fb.reports[0].avg_owd, 15_ms);
}

TEST(StreamReceiverUnit, CompleteFramePresented) {
  Rig rig;
  rig.rtp(0, 0, 0, 3);
  rig.rtp(1, 0, 1, 3);
  rig.rtp(2, 0, 2, 3);
  rig.sim.run_until(1_sec);  // past the deadline
  EXPECT_EQ(rig.recv.display().presented_total(), 1u);
  EXPECT_EQ(rig.recv.display().dropped_total(), 0u);
}

TEST(StreamReceiverUnit, IncompleteFrameDroppedWithoutFec) {
  Rig rig;
  rig.rtp(0, 0, 0, 3);
  rig.rtp(2, 0, 2, 3);  // middle packet lost
  rig.sim.run_until(1_sec);
  EXPECT_EQ(rig.recv.display().presented_total(), 0u);
  EXPECT_EQ(rig.recv.display().dropped_total(), 1u);
}

TEST(StreamReceiverUnit, FecRecoversSingleLoss) {
  Rig rig({.flow = 1,
           .feedback_interval = 100_ms,
           .fec_rate = 0.10,  // ceil(0.1 * 10) = 1 packet budget
           .playout_deadline = 100_ms});
  // 9 of 10 packets arrive.
  for (std::uint32_t i = 0; i < 9; ++i) rig.rtp(i, 0, std::uint16_t(i), 10);
  rig.sim.run_until(1_sec);
  EXPECT_EQ(rig.recv.display().presented_total(), 1u);
}

TEST(StreamReceiverUnit, FecBudgetExceededDrops) {
  Rig rig({.flow = 1,
           .feedback_interval = 100_ms,
           .fec_rate = 0.10,
           .playout_deadline = 100_ms});
  // Only 8 of 10 arrive: two losses > 1-packet budget.
  for (std::uint32_t i = 0; i < 8; ++i) rig.rtp(i, 0, std::uint16_t(i), 10);
  rig.sim.run_until(1_sec);
  EXPECT_EQ(rig.recv.display().presented_total(), 0u);
}

TEST(StreamReceiverUnit, LatePacketsMissDeadline) {
  Rig rig;
  rig.rtp(0, 0, 0, 2);
  // Second packet arrives 150 ms after the first: past the 100 ms
  // arrival-relative deadline.
  rig.sim.schedule_at(150_ms, [&] { rig.rtp(1, 0, 1, 2); });
  rig.sim.run_until(1_sec);
  EXPECT_EQ(rig.recv.display().presented_total(), 0u);
  EXPECT_EQ(rig.recv.display().dropped_total(), 1u);
}

TEST(StreamReceiverUnit, LifetimeLossRate) {
  Rig rig;
  for (std::uint32_t s : {0u, 1u, 2u, 3u, 5u, 6u, 7u, 8u, 9u}) {
    rig.rtp(s, 0, 0, 1);
  }
  // 9 received, highest seq 9 -> 10 expected -> 10% loss.
  EXPECT_NEAR(rig.recv.loss_rate(), 0.1, 1e-9);
}

TEST(StreamReceiverUnit, DuplicatePacketsDiscardedBeforeAccounting) {
  Rig rig;
  rig.rtp(0, 0, 0, 2);
  rig.rtp(0, 0, 0, 2);  // path duplication: same seq again
  rig.rtp(1, 0, 1, 2);
  rig.rtp(1, 0, 1, 2);
  rig.sim.run_until(1_sec);
  EXPECT_EQ(rig.recv.duplicates_discarded(), 2u);
  EXPECT_EQ(rig.recv.packets_received(), 2u);  // copies touch no counter
  EXPECT_EQ(rig.recv.bytes_received().bytes(), 2 * net::kRtpWire);
  // A 2-packet frame plus two duplicates is still exactly one frame.
  EXPECT_EQ(rig.recv.display().presented_total(), 1u);
}

TEST(StreamReceiverUnit, DuplicatesDoNotInflateReportedRate) {
  Rig rig;
  for (std::uint32_t i = 0; i < 10; ++i) {
    rig.rtp(i, 0, std::uint16_t(i), 10);
    rig.rtp(i, 0, std::uint16_t(i), 10);  // every packet duplicated
  }
  rig.sim.run_until(100_ms);
  ASSERT_FALSE(rig.fb.reports.empty());
  EXPECT_NEAR(double(rig.fb.reports[0].recv_rate_bps), 960e3, 1e3);
  EXPECT_EQ(rig.fb.reports[0].window_recv_pkts, 10u);
  EXPECT_EQ(rig.recv.duplicates_discarded(), 10u);
}

TEST(StreamReceiverUnit, AncientPacketBeyondReplayWindowDiscarded) {
  Rig rig;
  rig.rtp(5000, 0, 0, 1);  // establishes a high-water mark
  rig.rtp(100, 1, 0, 1);   // > 4096 behind: indistinguishable from a replay
  EXPECT_EQ(rig.recv.duplicates_discarded(), 1u);
  EXPECT_EQ(rig.recv.packets_received(), 1u);
}

TEST(StreamReceiverUnit, ReorderedFreshPacketsStillAccepted) {
  Rig rig;
  rig.rtp(10, 0, 0, 1);
  rig.rtp(8, 1, 0, 1);  // late but within the window: genuine packet
  rig.rtp(9, 2, 0, 1);
  EXPECT_EQ(rig.recv.duplicates_discarded(), 0u);
  EXPECT_EQ(rig.recv.packets_received(), 3u);
}

TEST(StreamReceiverUnit, BlackoutWindowReportsZeroRecvAndSaneFields) {
  Rig rig;
  for (std::uint32_t i = 0; i < 5; ++i) rig.rtp(i, 0, std::uint16_t(i), 5);
  rig.sim.run_until(300_ms);  // reports at 100, 200, 300 ms; last two empty
  ASSERT_GE(rig.fb.reports.size(), 3u);
  const auto& empty = rig.fb.reports[1];
  EXPECT_EQ(empty.window_recv_pkts, 0u);
  EXPECT_EQ(empty.recv_rate_bps, 0);
  // No NaN / negative / stale-delay artefacts on a zero-packet window.
  EXPECT_EQ(empty.window_loss_fraction, 0.0);
  EXPECT_EQ(empty.avg_owd, kTimeZero);
  EXPECT_GE(empty.window_loss_fraction, 0.0);
  EXPECT_LE(empty.window_loss_fraction, 1.0);
}

TEST(StreamReceiverUnit, ConcealedFramesCounted) {
  Rig rig;
  rig.rtp(0, 0, 0, 3);
  rig.rtp(2, 0, 2, 3);  // frame 0 incomplete -> concealed
  rig.rtp(3, 1, 0, 1);  // frame 1 complete
  rig.sim.run_until(1_sec);
  EXPECT_EQ(rig.recv.frames_concealed(), 1u);
  EXPECT_EQ(rig.recv.display().presented_total(), 1u);
  EXPECT_EQ(rig.recv.display().dropped_total(), 1u);
}

TEST(StreamReceiverUnit, StopsFeedbackAfterStop) {
  Rig rig;
  rig.sim.run_until(300_ms);
  rig.recv.stop();
  const auto n = rig.fb.reports.size();
  rig.sim.run_until(1_sec);
  EXPECT_EQ(rig.fb.reports.size(), n);
}

}  // namespace
}  // namespace cgs::stream
