// Stream sender/receiver/display end-to-end over a bottleneck.
#include <gtest/gtest.h>

#include "net/queue.hpp"
#include "net/router.hpp"
#include "stream/profiles.hpp"
#include "stream/receiver.hpp"
#include "stream/sender.hpp"

namespace cgs::stream {
namespace {

using namespace cgs::literals;

struct StreamHarness {
  sim::Simulator sim;
  net::PacketFactory factory;
  net::BottleneckRouter router;
  net::DelayLine access;
  StreamSender sender;
  StreamReceiver receiver;

  explicit StreamHarness(GameSystem sys, Bandwidth cap = 100_mbps,
                         ByteSize queue = ByteSize(500'000))
      : router(sim, cap, 1_ms, std::make_unique<net::DropTailQueue>(queue)),
        access(sim, 7_ms, &router.downstream_in()),
        sender(sim, factory,
               StreamSender::Options{.flow = 9, .burst_factor = 1.35},
               frame_config_for(sys), make_controller(sys), Pcg32(77)),
        receiver(sim, factory,
                 StreamReceiver::Options{
                     .flow = 9,
                     .fec_rate = profile_for(sys).fec_rate,
                     .playout_deadline = profile_for(sys).playout_deadline}) {
    router.register_client(9, &receiver);
    sender.set_output(&access);
    receiver.set_output(&router.make_upstream(8_ms, &sender));
  }

  void run(Time dur) {
    receiver.start();
    sender.start();
    sim.run_until(dur);
  }
};

TEST(StreamE2e, UnconstrainedReaches60Fps) {
  StreamHarness h(GameSystem::kStadia);
  h.run(30_sec);
  EXPECT_NEAR(h.receiver.display().fps_over(10_sec, 30_sec), 60.0, 1.5);
  EXPECT_LT(h.receiver.loss_rate(), 0.001);
}

TEST(StreamE2e, RampsToProfileMax) {
  StreamHarness h(GameSystem::kStadia);
  h.run(60_sec);
  // The controller targets the profile max on the wire; the encoder runs at
  // the payload share of it (IP/UDP overhead deducted).
  EXPECT_NEAR(
      h.sender.controller().current().target_bitrate.megabits_per_sec(),
      27.5, 0.5);
  EXPECT_NEAR(h.sender.target_bitrate().megabits_per_sec(),
              27.5 * 1172.0 / 1200.0, 0.5);
}

TEST(StreamE2e, SelfInducedCongestionAdaptsBelowCapacity) {
  // 15 Mb/s capacity with a 2x-BDP queue: the controller must settle below
  // capacity with minimal standing queue (paper: solo systems keep queuing
  // low, Table 3).
  StreamHarness h(GameSystem::kStadia, 15_mbps, bdp(15_mbps, 16500_us) * 2);
  h.run(120_sec);
  const double rate = h.sender.target_bitrate().megabits_per_sec();
  EXPECT_LT(rate, 15.5);
  EXPECT_GT(rate, 8.0);
  // Lifetime loss small once settled.
  EXPECT_LT(h.receiver.loss_rate(), 0.03);
}

TEST(StreamE2e, AllSystemsSoloKeepLowLossAtConstrainedCapacity) {
  for (GameSystem sys : {GameSystem::kStadia, GameSystem::kGeForce,
                         GameSystem::kLuna}) {
    StreamHarness h(sys, 15_mbps, bdp(15_mbps, 16500_us) * 2);
    h.run(120_sec);
    EXPECT_LT(h.receiver.loss_rate(), 0.05)
        << "system " << to_string(sys);
    EXPECT_GT(h.receiver.display().fps_over(60_sec, 120_sec), 30.0)
        << "system " << to_string(sys);
  }
}

TEST(StreamE2e, FeedbackDrivesSenderState) {
  StreamHarness h(GameSystem::kLuna);
  h.run(10_sec);
  // Sender must have digested feedback: queuing delay tracked.
  EXPECT_GE(h.sender.last_queuing_delay(), kTimeZero);
  EXPECT_GT(h.sender.bytes_sent().bytes(), 0);
}

TEST(StreamE2e, DisplayCountsDroppedFramesUnderHeavyLoss) {
  // 5 Mb/s capacity, tiny queue, Stadia starting at 12 Mb/s: frames die.
  StreamHarness h(GameSystem::kStadia, Bandwidth::mbps(5.0), ByteSize(8000));
  h.run(10_sec);
  EXPECT_GT(h.receiver.display().dropped_total(), 0u);
  EXPECT_LT(h.receiver.display().fps_over(2_sec, 10_sec), 60.0);
}

TEST(StreamE2e, DeterministicAcrossRuns) {
  auto run_once = [] {
    StreamHarness h(GameSystem::kLuna, 25_mbps, 100_KB);
    h.run(20_sec);
    return std::tuple{h.sender.bytes_sent().bytes(),
                      h.receiver.packets_received(),
                      h.receiver.display().presented_total()};
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Packetizer, SplitsFramesIntoMtuPackets) {
  net::PacketFactory f;
  Packetizer p(f, 3);
  Frame frame{.id = 7, .bytes = ByteSize(5000), .keyframe = true,
              .gen_time = 1_sec};
  auto pkts = p.packetize(frame, 2_sec);
  // ceil(5000 / 1172) = 5 packets.
  ASSERT_EQ(pkts.size(), 5u);
  std::int64_t payload = 0;
  for (std::size_t i = 0; i < pkts.size(); ++i) {
    const auto& h = std::get<net::RtpHeader>(pkts[i]->header);
    EXPECT_EQ(h.frame_id, 7u);
    EXPECT_EQ(h.pkt_index, i);
    EXPECT_EQ(h.pkts_in_frame, 5);
    EXPECT_TRUE(h.keyframe);
    EXPECT_EQ(h.frame_gen_time, 1_sec);
    payload += pkts[i]->size_bytes - net::kIpUdpOverhead;
  }
  EXPECT_EQ(payload, 5000);
}

TEST(Packetizer, SequenceNumbersContinuous) {
  net::PacketFactory f;
  Packetizer p(f, 3);
  Frame a{.id = 0, .bytes = ByteSize(2000), .keyframe = false,
          .gen_time = kTimeZero};
  Frame b{.id = 1, .bytes = ByteSize(2000), .keyframe = false,
          .gen_time = kTimeZero};
  auto pa = p.packetize(a, kTimeZero);
  auto pb = p.packetize(b, kTimeZero);
  const auto last_a = std::get<net::RtpHeader>(pa.back()->header).seq;
  const auto first_b = std::get<net::RtpHeader>(pb.front()->header).seq;
  EXPECT_EQ(first_b, last_a + 1);
}

TEST(Display, FpsOverWindow) {
  DisplayModel d;
  for (int i = 0; i < 120; ++i) {
    d.frame_presented(std::uint32_t(i), Time(std::chrono::milliseconds(i * 25)));
  }
  // 40 f/s cadence.
  EXPECT_NEAR(d.fps_over(kTimeZero, 3_sec), 40.0, 0.5);
  EXPECT_NEAR(d.fps_over(1_sec, 2_sec), 40.0, 1.0);
  EXPECT_DOUBLE_EQ(d.fps_over(1_sec, 1_sec), 0.0);
}

}  // namespace
}  // namespace cgs::stream
