#include "stream/frame_source.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace cgs::stream {
namespace {

using namespace cgs::literals;

struct Capture {
  std::vector<Frame> frames;
  FrameSource::FrameHandler handler() {
    return [this](const Frame& f) { frames.push_back(f); };
  }
};

TEST(FrameSource, EmitsAtConfiguredFps) {
  sim::Simulator sim;
  Capture cap;
  FrameSourceConfig cfg;
  cfg.fps = 60.0;
  FrameSource src(sim, cfg, Pcg32(1), cap.handler());
  src.start();
  sim.run_until(1_sec);
  // 60 f/s for 1 s (first frame at t=0).
  EXPECT_NEAR(double(cap.frames.size()), 61.0, 1.0);
}

TEST(FrameSource, AverageSizeMatchesBitrate) {
  sim::Simulator sim;
  Capture cap;
  FrameSourceConfig cfg;
  cfg.bitrate = Bandwidth::mbps(24.0);
  cfg.fps = 60.0;
  cfg.keyframe_interval = 1 << 30;  // no keyframes for this test
  FrameSource src(sim, cfg, Pcg32(2), cap.handler());
  src.start();
  sim.run_until(30_sec);
  double total = 0;
  for (const auto& f : cap.frames) total += double(f.bytes.bytes());
  const double mbps = total * 8.0 / 30.0 / 1e6;
  EXPECT_NEAR(mbps, 24.0, 1.0);
}

TEST(FrameSource, KeyframesPeriodicAndLarger) {
  sim::Simulator sim;
  Capture cap;
  FrameSourceConfig cfg;
  cfg.keyframe_interval = 60;
  cfg.keyframe_scale = 2.5;
  FrameSource src(sim, cfg, Pcg32(3), cap.handler());
  src.start();
  sim.run_until(5_sec);
  double key_sum = 0, p_sum = 0;
  int keys = 0, ps = 0;
  for (const auto& f : cap.frames) {
    if (f.keyframe) {
      key_sum += double(f.bytes.bytes());
      ++keys;
    } else {
      p_sum += double(f.bytes.bytes());
      ++ps;
    }
  }
  ASSERT_GT(keys, 2);
  EXPECT_GT(key_sum / keys, 1.8 * (p_sum / ps));
}

TEST(FrameSource, BitrateChangeTakesEffect) {
  sim::Simulator sim;
  Capture cap;
  FrameSourceConfig cfg;
  cfg.bitrate = Bandwidth::mbps(10.0);
  cfg.keyframe_interval = 1 << 30;
  FrameSource src(sim, cfg, Pcg32(4), cap.handler());
  src.start();
  sim.run_until(5_sec);
  const auto before = cap.frames.size();
  src.set_bitrate(Bandwidth::mbps(20.0));
  sim.run_until(10_sec);
  double early = 0, late = 0;
  for (std::size_t i = 0; i < cap.frames.size(); ++i) {
    (i < before ? early : late) += double(cap.frames[i].bytes.bytes());
  }
  EXPECT_NEAR(late / early, 2.0, 0.25);
}

TEST(FrameSource, FpsChangeAdjustsCadence) {
  sim::Simulator sim;
  Capture cap;
  FrameSource src(sim, {}, Pcg32(5), cap.handler());
  src.start();
  sim.run_until(1_sec);
  const auto at_60 = cap.frames.size();
  src.set_fps(30.0);
  sim.run_until(2_sec);
  const auto at_30 = cap.frames.size() - at_60;
  EXPECT_NEAR(double(at_30), double(at_60) / 2.0, 3.0);
}

TEST(FrameSource, StopHaltsEmission) {
  sim::Simulator sim;
  Capture cap;
  FrameSource src(sim, {}, Pcg32(6), cap.handler());
  src.start();
  sim.run_until(1_sec);
  src.stop();
  const auto n = cap.frames.size();
  sim.run_until(2_sec);
  EXPECT_EQ(cap.frames.size(), n);
}

TEST(FrameSource, MonotonicFrameIds) {
  sim::Simulator sim;
  Capture cap;
  FrameSource src(sim, {}, Pcg32(7), cap.handler());
  src.start();
  sim.run_until(2_sec);
  for (std::size_t i = 0; i < cap.frames.size(); ++i) {
    ASSERT_EQ(cap.frames[i].id, i);
  }
}

TEST(FrameSource, DeterministicWithSeed) {
  auto sizes = [](std::uint64_t seed) {
    sim::Simulator sim;
    Capture cap;
    FrameSource src(sim, {}, Pcg32(seed), cap.handler());
    src.start();
    sim.run_until(2_sec);
    std::vector<std::int64_t> out;
    for (const auto& f : cap.frames) out.push_back(f.bytes.bytes());
    return out;
  };
  EXPECT_EQ(sizes(42), sizes(42));
  EXPECT_NE(sizes(42), sizes(43));
}

}  // namespace
}  // namespace cgs::stream
