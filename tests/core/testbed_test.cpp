// Full-testbed integration: the paper's schedule end to end (shortened
// scenarios where possible to keep ctest fast).
#include <gtest/gtest.h>

#include "core/runner.hpp"
#include "core/testbed.hpp"

namespace cgs::core {
namespace {

using namespace cgs::literals;

Scenario quick_scenario() {
  Scenario sc;
  sc.system = stream::GameSystem::kStadia;
  sc.capacity = 25_mbps;
  sc.queue_bdp_mult = 2.0;
  sc.tcp_algo = tcp::CcAlgo::kCubic;
  // Shortened schedule: 30 s warmup, TCP during [30, 60), 30 s recovery.
  sc.duration = 90_sec;
  sc.tcp_start = 30_sec;
  sc.tcp_stop = 60_sec;
  return sc;
}

TEST(Testbed, QueueBytesFollowBdpMultiple) {
  Scenario sc = quick_scenario();
  sc.queue_bdp_mult = 2.0;
  EXPECT_EQ(sc.queue_bytes().bytes(), 2 * 51'562);
  sc.queue_bdp_mult = 0.5;
  EXPECT_EQ(sc.queue_bytes().bytes(), 25'781);
}

TEST(Testbed, QueueNeverSmallerThanTwoPackets) {
  Scenario sc = quick_scenario();
  sc.capacity = Bandwidth::kbps(100);
  sc.queue_bdp_mult = 0.5;
  EXPECT_GE(sc.queue_bytes().bytes(), 2 * 1514);
}

TEST(Testbed, LabelDescribesCondition) {
  Scenario sc = quick_scenario();
  EXPECT_EQ(sc.label(), "Stadia 25Mb/s 2xBDP vs cubic");
  sc.tcp_algo.reset();
  EXPECT_EQ(sc.label(), "Stadia 25Mb/s 2xBDP solo");
  sc.queue_kind = QueueKind::kFqCoDel;
  EXPECT_EQ(sc.label(), "Stadia 25Mb/s 2xBDP solo [fq_codel]");
}

TEST(Testbed, RunProducesFullTrace) {
  Testbed bed(quick_scenario());
  const RunTrace t = bed.run();
  EXPECT_EQ(t.duration, 90_sec);
  EXPECT_EQ(t.game_mbps.size(), 181u);  // 90 s / 0.5 s + 1
  EXPECT_FALSE(t.rtt.empty());
  EXPECT_FALSE(t.frame_times.empty());
}

TEST(Testbed, GameRunsWholeTraceAndTcpOnlyMiddle) {
  Testbed bed(quick_scenario());
  const RunTrace t = bed.run();
  EXPECT_GT(t.mean_game_mbps(5_sec, 30_sec), 3.0);
  EXPECT_GT(t.mean_game_mbps(60_sec, 90_sec), 3.0);
  // No TCP before start or (modulo drain) after stop.
  EXPECT_DOUBLE_EQ(t.mean_tcp_mbps(kTimeZero, 29_sec), 0.0);
  EXPECT_GT(t.mean_tcp_mbps(35_sec, 55_sec), 5.0);
  EXPECT_LT(t.mean_tcp_mbps(65_sec, 90_sec), 0.5);
}

TEST(Testbed, SoloScenarioHasNoTcp) {
  Scenario sc = quick_scenario();
  sc.tcp_algo.reset();
  Testbed bed(sc);
  EXPECT_EQ(bed.tcp_flow(), nullptr);
  const RunTrace t = bed.run();
  EXPECT_DOUBLE_EQ(t.mean_tcp_mbps(kTimeZero, 90_sec), 0.0);
}

TEST(Testbed, PingSeesBaseRttWhenIdle) {
  Scenario sc = quick_scenario();
  sc.tcp_algo.reset();
  sc.capacity = 1_gbps;  // unconstrained: no queueing
  Testbed bed(sc);
  const RunTrace t = bed.run();
  const double rtt = t.mean_rtt_ms(10_sec, 80_sec);
  EXPECT_NEAR(rtt, 16.5, 0.5);
}

TEST(Testbed, CompetingCubicInflatesPingRtt) {
  Scenario sc = quick_scenario();
  sc.queue_bdp_mult = 7.0;
  Testbed bed(sc);
  const RunTrace t = bed.run();
  const double idle = t.mean_rtt_ms(5_sec, 28_sec);
  const double busy = t.mean_rtt_ms(40_sec, 60_sec);
  EXPECT_GT(busy, idle + 20.0);  // bufferbloat visible to the probe
}

TEST(Testbed, TraceWindowHelpers) {
  Testbed bed(quick_scenario());
  const RunTrace t = bed.run();
  EXPECT_GE(t.fps_over(10_sec, 30_sec), 20.0);
  EXPECT_LE(t.fps_over(10_sec, 30_sec), 61.0);
  EXPECT_GE(t.game_loss_in(30_sec, 60_sec), 0.0);
  EXPECT_LE(t.game_loss_in(30_sec, 60_sec), 1.0);
}

TEST(Runner, SeedsProduceDistinctButAggregableRuns) {
  Scenario sc = quick_scenario();
  RunnerOptions opts;
  opts.runs = 3;
  opts.threads = 3;
  const auto traces = run_many(sc, opts);
  ASSERT_EQ(traces.size(), 3u);
  // Distinct seeds -> distinct traces.
  EXPECT_NE(traces[0].game_mbps, traces[1].game_mbps);
  const auto res = summarize(sc, traces);
  EXPECT_EQ(res.runs, 3);
  EXPECT_EQ(res.game.mean.size(), res.game.ci95.size());
  EXPECT_GT(res.steady_mean_mbps, 0.0);
}

TEST(Runner, ParallelEqualsSequential) {
  Scenario sc = quick_scenario();
  RunnerOptions seq;
  seq.runs = 2;
  seq.threads = 1;
  RunnerOptions par;
  par.runs = 2;
  par.threads = 2;
  const auto a = run_many(sc, seq);
  const auto b = run_many(sc, par);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].game_mbps, b[i].game_mbps) << "run " << i;
    EXPECT_EQ(a[i].tcp_mbps, b[i].tcp_mbps) << "run " << i;
  }
}

TEST(Runner, ProgressCallbackFires) {
  Scenario sc = quick_scenario();
  sc.duration = 10_sec;
  sc.tcp_start = 3_sec;
  sc.tcp_stop = 6_sec;
  RunnerOptions opts;
  opts.runs = 2;
  opts.threads = 1;
  int calls = 0, last_done = 0;
  opts.progress = [&](int done, int total) {
    ++calls;
    last_done = done;
    EXPECT_EQ(total, 2);
  };
  (void)run_many(sc, opts);
  EXPECT_EQ(calls, 2);
  EXPECT_EQ(last_done, 2);
}

TEST(Aggregate, SeriesStatsShapes) {
  const std::vector<std::vector<double>> runs = {
      {1.0, 2.0, 3.0}, {3.0, 2.0, 1.0}, {2.0, 2.0, 2.0}};
  const SeriesStats s = aggregate_series(runs);
  ASSERT_EQ(s.mean.size(), 3u);
  EXPECT_DOUBLE_EQ(s.mean[0], 2.0);
  EXPECT_DOUBLE_EQ(s.mean[1], 2.0);
  EXPECT_DOUBLE_EQ(s.mean[2], 2.0);
  EXPECT_DOUBLE_EQ(s.sd[1], 0.0);
  EXPECT_GT(s.sd[0], 0.0);
  EXPECT_GT(s.ci95[0], 0.0);
}

TEST(Aggregate, TruncatesToShortestRun) {
  const std::vector<std::vector<double>> runs = {{1.0, 2.0, 3.0}, {1.0, 2.0}};
  EXPECT_EQ(aggregate_series(runs).mean.size(), 2u);
}

}  // namespace
}  // namespace cgs::core
