#include "core/runner.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace cgs::core {
namespace {

using namespace cgs::literals;

/// Small, fast scenario: solo game stream, 2 simulated seconds.
Scenario quick_scenario() {
  Scenario sc;
  sc.tcp_algo.reset();
  sc.duration = 2_sec;
  sc.seed = 100;
  return sc;
}

TEST(Runner, RejectsNonPositiveRuns) {
  RunnerOptions opts;
  opts.runs = 0;
  try {
    (void)run_many(quick_scenario(), opts);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("runs must be > 0"),
              std::string::npos);
  }
}

TEST(Runner, ValidatesScenarioBeforeSpawningWorkers) {
  Scenario sc = quick_scenario();
  sc.capacity = Bandwidth(0);
  RunnerOptions opts;
  opts.runs = 2;
  EXPECT_THROW((void)run_many(sc, opts), std::invalid_argument);
}

TEST(Runner, ReportsEveryFailingSeed) {
  Scenario sc = quick_scenario();
  // A watchdog budget this small guarantees every run aborts immediately.
  sc.watchdog_event_budget = 10;
  RunnerOptions opts;
  opts.runs = 3;
  opts.threads = 2;
  try {
    (void)run_many(sc, opts);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("3 of 3 runs failed"), std::string::npos) << what;
    // Every failing seed is named, in seed order, with its diagnostic.
    const auto p100 = what.find("seed 100");
    const auto p101 = what.find("seed 101");
    const auto p102 = what.find("seed 102");
    EXPECT_NE(p100, std::string::npos) << what;
    EXPECT_NE(p101, std::string::npos) << what;
    EXPECT_NE(p102, std::string::npos) << what;
    EXPECT_LT(p100, p101);
    EXPECT_LT(p101, p102);
    EXPECT_NE(what.find("watchdog"), std::string::npos) << what;
  }
}

TEST(Runner, ProgressCountsFailedRuns) {
  // Regression: progress used to count only successes, so a failing run
  // left the bar stuck short of total.  Completed = success OR failure.
  Scenario sc = quick_scenario();
  sc.watchdog_event_budget = 10;  // every run aborts
  RunnerOptions opts;
  opts.runs = 3;
  opts.threads = 2;
  std::mutex mu;
  std::vector<std::pair<int, int>> calls;
  opts.progress = [&](int done, int total) {
    std::lock_guard lk(mu);
    calls.push_back({done, total});
  };
  EXPECT_THROW((void)run_many(sc, opts), std::runtime_error);
  ASSERT_EQ(calls.size(), 3u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(calls[std::size_t(i)].first, i + 1);
    EXPECT_EQ(calls[std::size_t(i)].second, 3);
  }
}

TEST(Runner, ProgressCallbackThrowDoesNotAbortRuns) {
  RunnerOptions opts;
  opts.runs = 2;
  opts.threads = 2;
  std::atomic<int> calls{0};
  opts.progress = [&](int, int) {
    ++calls;
    throw std::runtime_error("reporting failure");
  };
  const auto traces = run_many(quick_scenario(), opts);
  EXPECT_EQ(traces.size(), 2u);
  EXPECT_EQ(calls.load(), 2);
  for (const auto& t : traces) EXPECT_FALSE(t.game_mbps.empty());
}

TEST(Runner, ParallelTracesMatchSerial) {
  const Scenario sc = quick_scenario();
  RunnerOptions serial;
  serial.runs = 3;
  serial.threads = 1;
  RunnerOptions parallel;
  parallel.runs = 3;
  parallel.threads = 3;
  const auto a = run_many(sc, serial);
  const auto b = run_many(sc, parallel);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].game_mbps, b[i].game_mbps) << "run " << i;
    EXPECT_EQ(a[i].tcp_mbps, b[i].tcp_mbps) << "run " << i;
  }
}

}  // namespace
}  // namespace cgs::core
