// Supervisor contract: every way a forked child can die maps to the right
// ErrorClass, intact result frames round-trip byte-exact, and the backoff
// schedule is deterministic.  These are the properties the sweep engine's
// forked-isolation mode is built on.
#include "core/proc.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <vector>

#include "sim/simulator.hpp"

namespace cgs::core::proc {
namespace {

// Sanitizer runtimes reserve huge address-space shadows and install their
// own death handlers, which breaks RLIMIT_AS semantics (and turns a clean
// bad_alloc into an allocator abort) — gate those cases off.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
constexpr bool kSanitized = true;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
constexpr bool kSanitized = true;
#else
constexpr bool kSanitized = false;
#endif
#else
constexpr bool kSanitized = false;
#endif

TEST(Proc, OkPayloadRoundTripsByteExact) {
  std::vector<unsigned char> want(10'000);
  for (std::size_t i = 0; i < want.size(); ++i) {
    want[i] = (unsigned char)(i * 131 + 7);
  }
  const ChildResult r = run_forked([&want] { return want; }, {});
  ASSERT_TRUE(r.ok) << r.message;
  EXPECT_EQ(r.payload, want);
  EXPECT_EQ(r.term_signal, 0);
  EXPECT_FALSE(r.timed_out);
}

TEST(Proc, ChildExceptionComesBackClassified) {
  const ChildResult r = run_forked(
      []() -> std::vector<unsigned char> {
        throw sim::WatchdogError("event budget exceeded",
                                 std::chrono::seconds(3), 42);
      },
      {});
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.cls, ErrorClass::kWatchdog);
  EXPECT_NE(r.message.find("event budget"), std::string::npos) << r.message;

  const ChildResult s = run_forked(
      []() -> std::vector<unsigned char> {
        throw std::invalid_argument("bad knob");
      },
      {});
  EXPECT_FALSE(s.ok);
  EXPECT_EQ(s.cls, ErrorClass::kScenario);
}

TEST(Proc, FatalSignalIsCrash) {
  const ChildResult r = run_forked(
      []() -> std::vector<unsigned char> {
        std::raise(SIGSEGV);
        return {};
      },
      {});
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.cls, ErrorClass::kCrash);
  EXPECT_EQ(r.term_signal, SIGSEGV);
  EXPECT_NE(r.message.find("SIGSEGV"), std::string::npos) << r.message;
}

TEST(Proc, SilentExitIsCrashWithStatus) {
  const ChildResult r = run_forked(
      []() -> std::vector<unsigned char> {
        std::_Exit(7);  // dies without writing a result frame
      },
      {});
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.cls, ErrorClass::kCrash);
  EXPECT_EQ(r.exit_status, 7);
  EXPECT_NE(r.message.find("status 7"), std::string::npos) << r.message;
}

TEST(Proc, WallDeadlineKillsAndClassifiesTimeout) {
  ResourceLimits limits;
  limits.wall_seconds = 0.2;
  const auto t0 = std::chrono::steady_clock::now();
  const ChildResult r = run_forked(
      []() -> std::vector<unsigned char> {
        for (;;) ::pause();  // wedged and idle: only a wall deadline sees it
      },
      limits);
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_FALSE(r.ok);
  EXPECT_TRUE(r.timed_out);
  EXPECT_EQ(r.cls, ErrorClass::kTimeout);
  EXPECT_NE(r.message.find("wall-clock"), std::string::npos) << r.message;
  EXPECT_LT(wall, 5.0) << "deadline must kill promptly, not hang the worker";
}

TEST(Proc, CpuRlimitKillIsResource) {
  ResourceLimits limits;
  limits.cpu_seconds = 1;
  const ChildResult r = run_forked(
      []() -> std::vector<unsigned char> {
        volatile std::uint64_t sink = 0;
        for (;;) sink += 1;  // burns CPU until SIGXCPU
      },
      limits);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.cls, ErrorClass::kResource);
  EXPECT_EQ(r.term_signal, SIGXCPU);
}

TEST(Proc, AddressSpaceLimitSurfacesAsResource) {
  if (kSanitized) {
    GTEST_SKIP() << "RLIMIT_AS is incompatible with sanitizer shadows";
  }
  ResourceLimits limits;
  limits.address_space_bytes = 512ull << 20;
  limits.wall_seconds = 30;  // backstop: never hang the suite
  const ChildResult r = run_forked(
      []() -> std::vector<unsigned char> {
        std::vector<std::unique_ptr<char[]>> hog;
        for (;;) {
          constexpr std::size_t kChunk = 16ull << 20;
          hog.push_back(std::make_unique<char[]>(kChunk));
          std::memset(hog.back().get(), 0x5a, kChunk);
        }
      },
      limits);
  EXPECT_FALSE(r.ok);
  // Orderly path: the allocation fails, the child reports bad_alloc as a
  // clean kResource failure (no signal at all).
  EXPECT_EQ(r.cls, ErrorClass::kResource) << r.message;
}

TEST(Proc, BackoffGrowsCapsAndJittersDeterministically) {
  // Same key -> identical schedule.
  for (int attempt = 1; attempt <= 6; ++attempt) {
    EXPECT_EQ(backoff_ms(100, 2000, attempt, 77),
              backoff_ms(100, 2000, attempt, 77));
  }
  // Jitter stays within [cap/2, cap]; the cap binds from attempt 6 on.
  for (int attempt = 1; attempt <= 10; ++attempt) {
    const std::uint32_t cap =
        std::min<std::uint32_t>(100u << (attempt - 1), 2000u);
    const std::uint32_t d = backoff_ms(100, 2000, attempt, 12345);
    EXPECT_GE(d, cap / 2) << "attempt " << attempt;
    EXPECT_LE(d, cap) << "attempt " << attempt;
  }
  // Different keys decorrelate.
  bool any_different = false;
  for (std::uint64_t key = 0; key < 8; ++key) {
    any_different = any_different ||
                    backoff_ms(100, 2000, 3, key) != backoff_ms(100, 2000, 3,
                                                                key + 100);
  }
  EXPECT_TRUE(any_different);
  EXPECT_EQ(backoff_ms(0, 2000, 3, 1), 0u) << "base 0 disables backoff";
}

}  // namespace
}  // namespace cgs::core::proc
