// Supervisor contract: every way a forked child can die maps to the right
// ErrorClass, intact result frames round-trip byte-exact, and the backoff
// schedule is deterministic.  These are the properties the sweep engine's
// forked-isolation mode is built on.
#include "core/proc.hpp"

#include <gtest/gtest.h>
#include <pthread.h>
#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "sim/simulator.hpp"

namespace cgs::core::proc {
namespace {

// Sanitizer runtimes reserve huge address-space shadows and install their
// own death handlers, which breaks RLIMIT_AS semantics (and turns a clean
// bad_alloc into an allocator abort) — gate those cases off.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
constexpr bool kSanitized = true;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
constexpr bool kSanitized = true;
#else
constexpr bool kSanitized = false;
#endif
#else
constexpr bool kSanitized = false;
#endif

TEST(Proc, OkPayloadRoundTripsByteExact) {
  std::vector<unsigned char> want(10'000);
  for (std::size_t i = 0; i < want.size(); ++i) {
    want[i] = (unsigned char)(i * 131 + 7);
  }
  const ChildResult r = run_forked([&want] { return want; }, {});
  ASSERT_TRUE(r.ok) << r.message;
  EXPECT_EQ(r.payload, want);
  EXPECT_EQ(r.term_signal, 0);
  EXPECT_FALSE(r.timed_out);
}

TEST(Proc, ChildExceptionComesBackClassified) {
  const ChildResult r = run_forked(
      []() -> std::vector<unsigned char> {
        throw sim::WatchdogError("event budget exceeded",
                                 std::chrono::seconds(3), 42);
      },
      {});
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.cls, ErrorClass::kWatchdog);
  EXPECT_NE(r.message.find("event budget"), std::string::npos) << r.message;

  const ChildResult s = run_forked(
      []() -> std::vector<unsigned char> {
        throw std::invalid_argument("bad knob");
      },
      {});
  EXPECT_FALSE(s.ok);
  EXPECT_EQ(s.cls, ErrorClass::kScenario);
}

TEST(Proc, FatalSignalIsCrash) {
  const ChildResult r = run_forked(
      []() -> std::vector<unsigned char> {
        std::raise(SIGSEGV);
        return {};
      },
      {});
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.cls, ErrorClass::kCrash);
  EXPECT_EQ(r.term_signal, SIGSEGV);
  EXPECT_NE(r.message.find("SIGSEGV"), std::string::npos) << r.message;
}

TEST(Proc, SilentExitIsCrashWithStatus) {
  const ChildResult r = run_forked(
      []() -> std::vector<unsigned char> {
        std::_Exit(7);  // dies without writing a result frame
      },
      {});
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.cls, ErrorClass::kCrash);
  EXPECT_EQ(r.exit_status, 7);
  EXPECT_NE(r.message.find("status 7"), std::string::npos) << r.message;
}

TEST(Proc, WallDeadlineKillsAndClassifiesTimeout) {
  ResourceLimits limits;
  limits.wall_seconds = 0.2;
  const auto t0 = std::chrono::steady_clock::now();
  const ChildResult r = run_forked(
      []() -> std::vector<unsigned char> {
        for (;;) ::pause();  // wedged and idle: only a wall deadline sees it
      },
      limits);
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_FALSE(r.ok);
  EXPECT_TRUE(r.timed_out);
  EXPECT_EQ(r.cls, ErrorClass::kTimeout);
  EXPECT_NE(r.message.find("wall-clock"), std::string::npos) << r.message;
  EXPECT_LT(wall, 5.0) << "deadline must kill promptly, not hang the worker";
}

TEST(Proc, CpuRlimitKillIsResource) {
  ResourceLimits limits;
  limits.cpu_seconds = 1;
  const ChildResult r = run_forked(
      []() -> std::vector<unsigned char> {
        volatile std::uint64_t sink = 0;
        for (;;) sink += 1;  // burns CPU until SIGXCPU
      },
      limits);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.cls, ErrorClass::kResource);
  EXPECT_EQ(r.term_signal, SIGXCPU);
}

TEST(Proc, AddressSpaceLimitSurfacesAsResource) {
  if (kSanitized) {
    GTEST_SKIP() << "RLIMIT_AS is incompatible with sanitizer shadows";
  }
  ResourceLimits limits;
  limits.address_space_bytes = 512ull << 20;
  limits.wall_seconds = 30;  // backstop: never hang the suite
  const ChildResult r = run_forked(
      []() -> std::vector<unsigned char> {
        std::vector<std::unique_ptr<char[]>> hog;
        for (;;) {
          constexpr std::size_t kChunk = 16ull << 20;
          hog.push_back(std::make_unique<char[]>(kChunk));
          std::memset(hog.back().get(), 0x5a, kChunk);
        }
      },
      limits);
  EXPECT_FALSE(r.ok);
  // Orderly path: the allocation fails, the child reports bad_alloc as a
  // clean kResource failure (no signal at all).
  EXPECT_EQ(r.cls, ErrorClass::kResource) << r.message;
}

// Counts deliveries so the storm test can prove signals actually landed.
std::atomic<int> g_storm_signals{0};
void storm_handler(int) { g_storm_signals.fetch_add(1); }

// Regression: a signal storm (SIGCHLD-adjacent, as sibling workers reap
// their children, plus operator signals) interrupting the supervisor while
// a multi-megabyte result frame crosses the pipe must cost retries, not
// bytes.  The handler is installed WITHOUT SA_RESTART so every landed
// signal turns an in-flight read/write into EINTR or a short transfer —
// exactly the case the EINTR-hardened I/O helpers exist for.
TEST(Proc, FrameSurvivesSignalStormDuringTransfer) {
  if (kSanitized) {
    GTEST_SKIP() << "signal-storm timing is unreliable under sanitizers";
  }
  struct sigaction sa{};
  struct sigaction old{};
  sa.sa_handler = storm_handler;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // deliberately no SA_RESTART: force EINTR
  ASSERT_EQ(sigaction(SIGUSR1, &sa, &old), 0);
  g_storm_signals.store(0);

  // A payload far beyond the pipe buffer, so the transfer spans many
  // syscalls on both sides and the storm has real windows to hit.
  std::vector<unsigned char> want(4u << 20);
  for (std::size_t i = 0; i < want.size(); ++i) {
    want[i] = (unsigned char)(i * 167 + 13);
  }

  const pthread_t target = pthread_self();
  std::atomic<bool> storming{true};
  std::thread storm([&] {
    while (storming.load(std::memory_order_relaxed)) {
      pthread_kill(target, SIGUSR1);
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
  });

  for (int i = 0; i < 8; ++i) {
    const ChildResult r = run_forked([&want] { return want; }, {});
    ASSERT_TRUE(r.ok) << "iteration " << i << ": " << r.message;
    ASSERT_EQ(r.payload, want) << "iteration " << i;
  }

  storming.store(false, std::memory_order_relaxed);
  storm.join();
  ASSERT_EQ(sigaction(SIGUSR1, &old, nullptr), 0);
  EXPECT_GT(g_storm_signals.load(), 0)
      << "storm never landed a signal — the test exercised nothing";
}

// The exact-I/O helpers on a plain pipe: short transfers accumulate and
// EOF-before-n is an orderly false, not garbage.
TEST(Proc, ExactIoHelpersAccumulateAndDetectEof) {
  int fds[2];
  ASSERT_EQ(pipe(fds), 0);
  std::vector<unsigned char> want(100'000);
  for (std::size_t i = 0; i < want.size(); ++i) {
    want[i] = (unsigned char)(i * 31 + 5);
  }
  std::thread writer([&] {
    ASSERT_TRUE(write_exact(fds[1], want.data(), want.size()));
    close(fds[1]);
  });
  std::vector<unsigned char> got(want.size());
  EXPECT_TRUE(read_exact(fds[0], got.data(), got.size()));
  EXPECT_EQ(got, want);
  unsigned char extra = 0;
  EXPECT_FALSE(read_exact(fds[0], &extra, 1)) << "EOF must read false";
  writer.join();
  close(fds[0]);
}

TEST(Proc, BackoffGrowsCapsAndJittersDeterministically) {
  // Same key -> identical schedule.
  for (int attempt = 1; attempt <= 6; ++attempt) {
    EXPECT_EQ(backoff_ms(100, 2000, attempt, 77),
              backoff_ms(100, 2000, attempt, 77));
  }
  // Jitter stays within [cap/2, cap]; the cap binds from attempt 6 on.
  for (int attempt = 1; attempt <= 10; ++attempt) {
    const std::uint32_t cap =
        std::min<std::uint32_t>(100u << (attempt - 1), 2000u);
    const std::uint32_t d = backoff_ms(100, 2000, attempt, 12345);
    EXPECT_GE(d, cap / 2) << "attempt " << attempt;
    EXPECT_LE(d, cap) << "attempt " << attempt;
  }
  // Different keys decorrelate.
  bool any_different = false;
  for (std::uint64_t key = 0; key < 8; ++key) {
    any_different = any_different ||
                    backoff_ms(100, 2000, 3, key) != backoff_ms(100, 2000, 3,
                                                                key + 100);
  }
  EXPECT_TRUE(any_different);
  EXPECT_EQ(backoff_ms(0, 2000, 3, 1), 0u) << "base 0 disables backoff";
}

}  // namespace
}  // namespace cgs::core::proc
