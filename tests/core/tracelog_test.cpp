#include "core/tracelog.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "net/queue.hpp"

namespace cgs::core {
namespace {

using namespace cgs::literals;

class NullSink final : public net::PacketSink {
 public:
  void handle_packet(net::PacketPtr) override {}
};

struct LinkRig {
  sim::Simulator sim;
  net::PacketFactory factory;
  NullSink sink;
  net::Link link{sim, "l", 12_mbps, 1_ms,
                 std::make_unique<net::DropTailQueue>(ByteSize(4500)), &sink};

  void send(net::FlowId flow, std::int32_t size) {
    link.handle_packet(factory.make(flow, net::TrafficClass::kTcpData, size,
                                    sim.now(), {}));
  }
};

TEST(TraceLog, RecordsDeliveriesAndDrops) {
  LinkRig rig;
  TraceLog log;
  log.attach(rig.link);
  for (int i = 0; i < 6; ++i) rig.send(1, 1500);  // queue holds 3 + 1 tx
  rig.sim.run();
  std::uint64_t delivers = 0, drops = 0;
  for (const auto& r : log.records()) {
    if (r.event == TraceEvent::kDeliver) ++delivers;
    if (r.event == TraceEvent::kDrop) ++drops;
  }
  EXPECT_EQ(delivers + drops, 6u);
  EXPECT_GT(drops, 0u);
}

TEST(TraceLog, EventMaskSelectsTapPoints) {
  LinkRig rig;
  TraceLog log;
  log.attach(rig.link, 1u << unsigned(TraceEvent::kArrival));
  rig.send(1, 1000);
  rig.sim.run();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log.records()[0].event, TraceEvent::kArrival);
}

TEST(TraceLog, SummarizePerFlow) {
  LinkRig rig;
  TraceLog log;
  log.attach(rig.link);
  // Interleave two flows, spaced so nothing drops.
  for (int i = 0; i < 10; ++i) {
    rig.sim.schedule_at(10_ms * i, [&rig, i] {
      rig.send(i % 2 == 0 ? 1 : 2, 1200);
    });
  }
  rig.sim.run();
  const auto flows = log.summarize();
  ASSERT_EQ(flows.size(), 2u);
  for (const auto& f : flows) {
    EXPECT_EQ(f.packets_delivered, 5u);
    EXPECT_EQ(f.bytes_delivered, 5 * 1200);
    EXPECT_EQ(f.packets_dropped, 0u);
    EXPECT_DOUBLE_EQ(f.drop_rate(), 0.0);
    EXPECT_GT(f.goodput().bits_per_sec(), 0);
    // Perfectly periodic deliveries: jitter ~ 0.
    EXPECT_LT(f.jitter, 1_ms);
  }
}

TEST(TraceLog, SummaryWindowFilters) {
  LinkRig rig;
  TraceLog log;
  log.attach(rig.link);
  for (int i = 0; i < 10; ++i) {
    rig.sim.schedule_at(10_ms * i, [&rig] { rig.send(1, 1200); });
  }
  rig.sim.run();
  const auto all = log.summarize();
  const auto half = log.summarize(kTimeZero, 50_ms);
  ASSERT_EQ(all.size(), 1u);
  ASSERT_EQ(half.size(), 1u);
  EXPECT_LT(half[0].packets_delivered, all[0].packets_delivered);
}

TEST(TraceLog, CsvRoundTrip) {
  LinkRig rig;
  TraceLog log;
  log.attach(rig.link);
  rig.send(7, 999);
  rig.sim.run();
  const std::string path = ::testing::TempDir() + "/trace.csv";
  log.write_csv(path);
  std::ifstream in(path);
  std::string header, row;
  std::getline(in, header);
  std::getline(in, row);
  EXPECT_EQ(header, "t_s,event,flow,class,size_bytes,uid");
  EXPECT_NE(row.find("deliver"), std::string::npos);
  EXPECT_NE(row.find("999"), std::string::npos);
  std::remove(path.c_str());
}

TEST(TraceLog, DropRateComputation) {
  FlowSummary s;
  s.packets_delivered = 90;
  s.packets_dropped = 10;
  EXPECT_DOUBLE_EQ(s.drop_rate(), 0.1);
  FlowSummary empty;
  EXPECT_DOUBLE_EQ(empty.drop_rate(), 0.0);
  EXPECT_TRUE(empty.goodput().is_zero());
}

}  // namespace
}  // namespace cgs::core
