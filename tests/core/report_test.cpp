#include "core/report.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/csv.hpp"

namespace cgs::core {
namespace {

TEST(Report, FmtMeanSd) {
  EXPECT_EQ(fmt_mean_sd(27.512, 2.31), "27.5 (2.3)");
  EXPECT_EQ(fmt_mean_sd(50.8, 1.83, 2), "50.80 (1.83)");
}

TEST(Report, TextTableAlignsColumns) {
  TextTable t;
  t.set_header({"System", "Bitrate"});
  t.add_row({"Stadia", "27.5 (2.3)"});
  t.add_row({"GeForce", "24.5 (1.8)"});
  const std::string out = t.render();
  EXPECT_NE(out.find("System"), std::string::npos);
  EXPECT_NE(out.find("Stadia"), std::string::npos);
  // Each line has the same alignment: header starts at col 0, and the
  // second column of every row starts at the same offset.
  std::istringstream is(out);
  std::string l1, sep, l2, l3;
  std::getline(is, l1);
  std::getline(is, sep);
  std::getline(is, l2);
  std::getline(is, l3);
  EXPECT_EQ(l1.find("Bitrate"), l2.find("27.5 (2.3)"));
  EXPECT_EQ(l2.find("27.5"), l3.find("24.5"));
}

TEST(Report, HeatmapContainsValuesAndLabels) {
  const std::string out = render_heatmap_block(
      "Stadia vs cubic", {35.0, 25.0}, {0.5, 2.0},
      {{0.42, -0.33}, {0.10, -0.05}}, /*color=*/false);
  EXPECT_NE(out.find("Stadia vs cubic"), std::string::npos);
  EXPECT_NE(out.find("+0.42"), std::string::npos);
  EXPECT_NE(out.find("-0.33"), std::string::npos);
  EXPECT_NE(out.find("35 Mb/s"), std::string::npos);
  EXPECT_NE(out.find("0.5x BDP"), std::string::npos);
  // No ANSI escapes without color.
  EXPECT_EQ(out.find('\033'), std::string::npos);
}

TEST(Report, HeatmapColorEmitsAnsi) {
  const std::string out = render_heatmap_block(
      "x", {25.0}, {2.0}, {{0.42}}, /*color=*/true);
  EXPECT_NE(out.find('\033'), std::string::npos);
}

TEST(Report, SparklineScalesToMax) {
  const std::string s = sparkline({0.0, 5.0, 10.0}, 3);
  // 3 UTF-8 block glyphs (or spaces); max value maps to the full block.
  EXPECT_NE(s.find("█"), std::string::npos);
}

TEST(Report, SeriesCsvRoundTrip) {
  SeriesStats game;
  game.mean = {10.0, 12.0};
  game.ci95 = {1.0, 0.5};
  game.sd = {1.0, 0.5};
  const std::string path = ::testing::TempDir() + "/series.csv";
  write_series_csv(path, std::chrono::milliseconds(500), game, nullptr);
  std::ifstream in(path);
  std::string header, row1, row2;
  std::getline(in, header);
  std::getline(in, row1);
  std::getline(in, row2);
  EXPECT_EQ(header, "t_s,game_mean_mbps,game_ci_lo,game_ci_hi");
  EXPECT_EQ(row1, "0,10,9,11");
  EXPECT_EQ(row2, "0.5,12,11.5,12.5");
  std::remove(path.c_str());
}

TEST(Csv, EscapesSpecials) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_escape("line\nbreak"), "\"line\nbreak\"");
}

}  // namespace
}  // namespace cgs::core
