// Error taxonomy: classification drives mechanical decisions (retry
// eligibility, triage grouping, journal bytes), so the mapping is pinned.
#include "core/error.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "sim/simulator.hpp"

namespace cgs::core {
namespace {

using namespace std::chrono;

TEST(ErrorTaxonomy, ClassifyMapsExceptionTypes) {
  EXPECT_EQ(classify(SimError(ErrorClass::kInvariant, "x")),
            ErrorClass::kInvariant);
  EXPECT_EQ(classify(InvariantViolation("x")), ErrorClass::kInvariant);
  EXPECT_EQ(classify(ScenarioError("x")), ErrorClass::kScenario);
  EXPECT_EQ(classify(sim::WatchdogError("budget")), ErrorClass::kWatchdog);
  EXPECT_EQ(classify(std::invalid_argument("bad field")),
            ErrorClass::kScenario);
  EXPECT_EQ(classify(std::logic_error("oops")), ErrorClass::kScenario);
  EXPECT_EQ(classify(std::runtime_error("env?")), ErrorClass::kUnclassified);
  // A failed allocation is a resource failure whether it happens in-process
  // or under a forked child's RLIMIT_AS cap.
  EXPECT_EQ(classify(std::bad_alloc()), ErrorClass::kResource);
}

TEST(ErrorTaxonomy, OnlyUnclassifiedIsTransient) {
  EXPECT_FALSE(is_transient(ErrorClass::kWatchdog));
  EXPECT_FALSE(is_transient(ErrorClass::kInvariant));
  EXPECT_FALSE(is_transient(ErrorClass::kScenario));
  EXPECT_TRUE(is_transient(ErrorClass::kUnclassified));
  EXPECT_FALSE(is_transient(ErrorClass::kCrash));
  EXPECT_FALSE(is_transient(ErrorClass::kTimeout));
  EXPECT_FALSE(is_transient(ErrorClass::kResource));
}

TEST(ErrorTaxonomy, ProcessFailuresAreTheSupervisorClasses) {
  EXPECT_TRUE(is_process_failure(ErrorClass::kCrash));
  EXPECT_TRUE(is_process_failure(ErrorClass::kTimeout));
  EXPECT_TRUE(is_process_failure(ErrorClass::kResource));
  EXPECT_FALSE(is_process_failure(ErrorClass::kWatchdog));
  EXPECT_FALSE(is_process_failure(ErrorClass::kInvariant));
  EXPECT_FALSE(is_process_failure(ErrorClass::kScenario));
  EXPECT_FALSE(is_process_failure(ErrorClass::kUnclassified));
}

TEST(ErrorTaxonomy, SimErrorCarriesStructuredContext) {
  ErrorContext ctx;
  ctx.cell_label = "Stadia 25Mb/s";
  ctx.seed = 44;
  ctx.sim_time = seconds(7);
  ctx.flow = 2;
  const InvariantViolation e("bytes leaked", ctx);
  EXPECT_EQ(e.error_class(), ErrorClass::kInvariant);
  EXPECT_EQ(e.context().seed, 44u);
  EXPECT_EQ(e.context().flow, 2u);
  // what() embeds every known context field, human-readable.
  const std::string what = e.what();
  EXPECT_NE(what.find("[invariant]"), std::string::npos) << what;
  EXPECT_NE(what.find("cell 'Stadia 25Mb/s'"), std::string::npos) << what;
  EXPECT_NE(what.find("seed 44"), std::string::npos) << what;
  EXPECT_NE(what.find("flow 2"), std::string::npos) << what;
  EXPECT_NE(what.find("bytes leaked"), std::string::npos) << what;
}

TEST(ErrorTaxonomy, ContextOfExtractsWhatTheExceptionKnows) {
  ErrorContext ctx;
  ctx.seed = 9;
  const SimError s(ErrorClass::kScenario, "m", ctx);
  EXPECT_EQ(context_of(s).seed, 9u);

  const sim::WatchdogError w("budget", seconds(12), 1'000'000);
  const ErrorContext wc = context_of(w);
  EXPECT_EQ(wc.sim_time, Time(seconds(12)));
  EXPECT_TRUE(wc.cell_label.empty());  // the sweep engine fills these in

  EXPECT_EQ(context_of(std::runtime_error("x")).sim_time, kTimeInfinite);
}

TEST(ErrorTaxonomy, ClassBytesRoundTripAndRejectGarbage) {
  for (const ErrorClass c :
       {ErrorClass::kWatchdog, ErrorClass::kInvariant, ErrorClass::kScenario,
        ErrorClass::kUnclassified, ErrorClass::kCrash, ErrorClass::kTimeout,
        ErrorClass::kResource}) {
    EXPECT_EQ(error_class_from_byte(std::uint8_t(c)), c);
  }
  // On-disk bytes are untrusted: unknown values degrade, never UB.
  EXPECT_EQ(error_class_from_byte(200), ErrorClass::kUnclassified);
  EXPECT_EQ(to_string(ErrorClass::kWatchdog), "watchdog");
  EXPECT_EQ(to_string(ErrorClass::kUnclassified), "unclassified");
  EXPECT_EQ(to_string(ErrorClass::kCrash), "crash");
  EXPECT_EQ(to_string(ErrorClass::kTimeout), "timeout");
  EXPECT_EQ(to_string(ErrorClass::kResource), "resource");
}

}  // namespace
}  // namespace cgs::core
