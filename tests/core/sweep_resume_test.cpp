// Crash-recovery contract: a sweep interrupted at an arbitrary job
// boundary — even with a torn trailing journal record — and then resumed
// must produce ConditionResults bit-identical to an uninterrupted run, at
// any thread count.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/journal.hpp"
#include "core/sweep.hpp"
#include "sweep_test_util.hpp"

namespace cgs::core {
namespace {

std::string tmp_journal(const std::string& name) {
  const std::string path = ::testing::TempDir() + "cgs_resume_test_" + name;
  std::remove(path.c_str());
  return path;
}

/// Two fast cells x 3 runs = 6 jobs; distinct seeds/queues so any
/// cross-cell mixup would show in the aggregates.
std::vector<SweepCell> small_grid() {
  Scenario a = quick_scenario(11);
  Scenario b = quick_scenario(23);
  b.queue_bdp_mult = 0.5;
  b.tcp_algo = tcp::CcAlgo::kBbr;
  return {{"a", a}, {"b", b}};
}

SweepResult reference_result(const std::vector<SweepCell>& cells) {
  SweepOptions opts;
  opts.runs = 3;
  opts.threads = 2;
  return run_sweep(cells, opts);
}

/// Run a journaled sweep that stops itself once `kill_after` jobs finish —
/// the librarified version of SIGINT-at-a-random-moment.
SweepResult interrupted_sweep(const std::vector<SweepCell>& cells,
                              const std::string& journal, int kill_after) {
  std::atomic<bool> stop{false};
  SweepOptions opts;
  opts.runs = 3;
  opts.threads = 2;
  opts.journal_path = journal;
  opts.journal_sync = false;  // crash semantics are journal_test's concern
  opts.stop = &stop;
  opts.progress = [&, kill_after](int done, int) {
    if (done >= kill_after) stop.store(true);
  };
  return run_sweep(cells, opts);
}

TEST(Resume, InterruptedAtAnyBoundaryThenResumedIsBitExact) {
  const auto cells = small_grid();
  const SweepResult want = reference_result(cells);

  // Kill points spread across the job list; resume at several widths.
  for (const int kill_after : {1, 2, 4}) {
    for (const int resume_threads : {1, 3}) {
      const std::string journal = tmp_journal(
          "kill" + std::to_string(kill_after) + "_t" +
          std::to_string(resume_threads) + ".jnl");
      const SweepResult partial = interrupted_sweep(cells, journal, kill_after);
      ASSERT_GE(partial.report.finished, kill_after);
      if (partial.report.finished == partial.report.total) {
        // In-flight jobs finished the grid before the flag was seen —
        // nothing left to resume, but the result must still be exact.
        expect_results_equal(partial.results[0], want.results[0]);
        std::remove(journal.c_str());
        continue;
      }
      EXPECT_TRUE(partial.report.interrupted);

      SweepOptions opts;
      opts.runs = 3;
      opts.threads = resume_threads;
      opts.journal_path = journal;
      opts.journal_sync = false;
      const SweepResult resumed = run_sweep(cells, opts);
      EXPECT_FALSE(resumed.report.interrupted);
      EXPECT_EQ(resumed.report.finished, resumed.report.total);
      EXPECT_EQ(resumed.report.skipped, partial.report.finished)
          << "every journaled job must be restored, none re-run";
      ASSERT_EQ(resumed.results.size(), want.results.size());
      for (std::size_t c = 0; c < want.results.size(); ++c) {
        expect_results_equal(resumed.results[c], want.results[c]);
      }
      std::remove(journal.c_str());
    }
  }
}

TEST(Resume, TornTrailingRecordIsDroppedNotFatal) {
  const auto cells = small_grid();
  const SweepResult want = reference_result(cells);
  const std::string journal = tmp_journal("torn.jnl");
  const SweepResult partial = interrupted_sweep(cells, journal, 2);
  ASSERT_TRUE(partial.report.interrupted);

  // Simulate a crash mid-append: garbage where the next record started.
  {
    std::ofstream os(journal, std::ios::binary | std::ios::app);
    const char junk[] = {0x47, 0x52, 0x4e, 0x4c, 0x7f, 0x01};
    os.write(junk, sizeof junk);
  }

  SweepOptions opts;
  opts.runs = 3;
  opts.threads = 2;
  opts.journal_path = journal;
  opts.journal_sync = false;
  const SweepResult resumed = run_sweep(cells, opts);
  EXPECT_EQ(resumed.report.skipped, partial.report.finished);
  for (std::size_t c = 0; c < want.results.size(); ++c) {
    expect_results_equal(resumed.results[c], want.results[c]);
  }
  std::remove(journal.c_str());
}

TEST(Resume, CompletedJournalShortCircuitsTheWholeSweep) {
  const auto cells = small_grid();
  const std::string journal = tmp_journal("full.jnl");
  SweepOptions opts;
  opts.runs = 3;
  opts.threads = 2;
  opts.journal_path = journal;
  opts.journal_sync = false;
  const SweepResult first = run_sweep(cells, opts);
  const SweepResult second = run_sweep(cells, opts);
  EXPECT_EQ(second.report.skipped, second.report.total);
  EXPECT_EQ(second.report.succeeded, 0);  // nothing re-ran
  for (std::size_t c = 0; c < first.results.size(); ++c) {
    expect_results_equal(second.results[c], first.results[c]);
  }
  std::remove(journal.c_str());
}

TEST(Resume, MismatchedGridIsRefused) {
  const auto cells = small_grid();
  const std::string journal = tmp_journal("mismatch.jnl");
  SweepOptions opts;
  opts.runs = 2;
  opts.threads = 2;
  opts.journal_path = journal;
  opts.journal_sync = false;
  (void)run_sweep(cells, opts);

  // Different run count -> different job list -> refuse.
  SweepOptions more_runs = opts;
  more_runs.runs = 3;
  EXPECT_THROW((void)run_sweep(cells, more_runs), JournalMismatchError);

  // Same shape but a mutated cell scenario -> refuse.
  auto mutated = cells;
  mutated[0].scenario.queue_bdp_mult = 7.0;
  EXPECT_THROW((void)run_sweep(mutated, opts), JournalMismatchError);
  std::remove(journal.c_str());
}

TEST(Resume, JournaledFailuresAreRestoredWithoutReRunning) {
  Scenario sick = quick_scenario(200);
  sick.watchdog_event_budget = 10;
  std::vector<SweepCell> cells = {{"healthy", quick_scenario(100)},
                                  {"sick", sick}};
  const std::string journal = tmp_journal("failures.jnl");
  SweepOptions opts;
  opts.runs = 2;
  opts.threads = 2;
  opts.journal_path = journal;
  opts.journal_sync = false;
  opts.throw_on_failure = false;
  const SweepResult first = run_sweep(cells, opts);
  EXPECT_EQ(first.report.failed(), 2u);

  const SweepResult second = run_sweep(cells, opts);
  EXPECT_EQ(second.report.succeeded, 0);  // failures not re-executed either
  EXPECT_EQ(second.report.skipped, second.report.total);
  EXPECT_EQ(second.report.failed(), 2u);
  ASSERT_EQ(second.report.failures.size(), 2u);
  EXPECT_EQ(second.report.failures[0].cls, ErrorClass::kWatchdog);
  EXPECT_EQ(second.report.failures[0].seed, 200u);
  EXPECT_NE(second.report.failures[0].what.find("watchdog"),
            std::string::npos);
  expect_results_equal(second.results[0], first.results[0]);
  std::remove(journal.c_str());
}

TEST(Resume, JournalHashesMatchTheGoldenHasher) {
  // Every ok record's stored hash must equal trace_hash() of its payload —
  // the property tools/replay relies on to verify reproductions.
  const auto cells = small_grid();
  const std::string journal = tmp_journal("hashes.jnl");
  SweepOptions opts;
  opts.runs = 2;
  opts.threads = 2;
  opts.journal_path = journal;
  opts.journal_sync = false;
  (void)run_sweep(cells, opts);

  const auto scan = read_journal(journal);
  ASSERT_TRUE(scan.has_value());
  ASSERT_EQ(scan->entries.size(), 4u);
  for (const JournalEntry& e : scan->entries) {
    ASSERT_TRUE(e.ok);
    const RunTrace t = deserialize_trace(e.payload.data(), e.payload.size());
    EXPECT_EQ(trace_hash(t), e.trace_hash);
    EXPECT_EQ(t.flows.empty() ? 0u : 1u, 1u);
  }
  std::remove(journal.c_str());
}

}  // namespace
}  // namespace cgs::core
