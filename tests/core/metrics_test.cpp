#include "core/metrics.hpp"

#include <gtest/gtest.h>

namespace cgs::core {
namespace {

using namespace cgs::literals;

constexpr Time kIval = 500_ms;

/// Build a bitrate series: `high` before 185 s, `low` during [185, 370),
/// `high` after, with instant transitions at the given lags.
std::vector<double> schedule_series(double high, double low,
                                    double response_lag_s = 0.0,
                                    double recovery_lag_s = 0.0) {
  std::vector<double> s(1110);
  for (std::size_t i = 0; i < s.size(); ++i) {
    const double t = double(i) * 0.5;
    if (t < 185.0 + response_lag_s) {
      s[i] = t < 185.0 ? high : high;  // still high during the lag
    } else if (t < 370.0) {
      s[i] = low;
    } else if (t < 370.0 + recovery_lag_s) {
      s[i] = low;
    } else {
      s[i] = high;
    }
  }
  return s;
}

TEST(Fairness, EqualSharesGiveZero) {
  const auto g = schedule_series(12.5, 12.5);
  const auto t = schedule_series(12.5, 12.5);
  EXPECT_NEAR(fairness_ratio(g, t, kIval, 25_mbps), 0.0, 1e-9);
}

TEST(Fairness, GameDominanceIsPositive) {
  const auto g = schedule_series(20.0, 20.0);
  const auto t = schedule_series(5.0, 5.0);
  EXPECT_NEAR(fairness_ratio(g, t, kIval, 25_mbps), 0.6, 1e-9);
}

TEST(Fairness, ClampedToUnitRange) {
  const auto g = schedule_series(100.0, 100.0);
  const auto t = schedule_series(0.0, 0.0);
  EXPECT_DOUBLE_EQ(fairness_ratio(g, t, kIval, 25_mbps), 1.0);
}

TEST(ResponseRecovery, InstantAdaptationIsFast) {
  const auto g = schedule_series(24.0, 12.0);
  const auto rr = response_recovery(g, kIval, 185_sec, 370_sec);
  EXPECT_TRUE(rr.responded);
  EXPECT_TRUE(rr.recovered);
  EXPECT_LT(rr.response_s, 5.0);
  EXPECT_LT(rr.recovery_s, 6.0);
}

TEST(ResponseRecovery, LagsAreMeasured) {
  const auto g = schedule_series(24.0, 12.0, /*response_lag=*/20.0,
                                 /*recovery_lag=*/40.0);
  const auto rr = response_recovery(g, kIval, 185_sec, 370_sec);
  EXPECT_TRUE(rr.responded);
  EXPECT_TRUE(rr.recovered);
  EXPECT_NEAR(rr.response_s, 20.0, 4.0);
  EXPECT_NEAR(rr.recovery_s, 40.0, 4.0);
}

TEST(ResponseRecovery, NeverRecoveringClampsToWindow) {
  // Drops at 185 s and stays low forever.
  std::vector<double> g(1110, 24.0);
  for (std::size_t i = 370; i < g.size(); ++i) g[i] = 12.0;
  const auto rr = response_recovery(g, kIval, 185_sec, 370_sec);
  EXPECT_TRUE(rr.responded);
  EXPECT_FALSE(rr.recovered);
  EXPECT_DOUBLE_EQ(rr.recovery_s, 185.0);
}

TEST(ResponseRecovery, NeverRespondingClamps) {
  // Never adjusts down: settled band (310-370 s) equals the original level,
  // so response is trivially immediate — instead test a series that swings
  // away from the settled level during the early competing window.
  std::vector<double> g(1110, 24.0);
  for (std::size_t i = 620; i < 740; ++i) g[i] = 12.0;  // 310..370 s low
  // During 185-310 s the series stays at 24, far from the settled 12.
  const auto rr = response_recovery(g, kIval, 185_sec, 370_sec);
  EXPECT_GT(rr.response_s, 50.0);
}

TEST(Adaptiveness, CombinesNormalizedTimes) {
  ResponseRecovery rr{.response_s = 10.0, .recovery_s = 20.0,
                      .responded = true, .recovered = true};
  // A = 0.5(1 - 10/40) + 0.5(1 - 20/80) = 0.375 + 0.375
  EXPECT_NEAR(adaptiveness(rr, 40.0, 80.0), 0.75, 1e-12);
  // Worst case: equal to the maxima.
  ResponseRecovery worst{.response_s = 40.0, .recovery_s = 80.0,
                         .responded = true, .recovered = true};
  EXPECT_NEAR(adaptiveness(worst, 40.0, 80.0), 0.0, 1e-12);
}

TEST(JainIndex, KnownValues) {
  EXPECT_DOUBLE_EQ(jain_index({10.0, 10.0, 10.0}), 1.0);
  EXPECT_NEAR(jain_index({10.0, 0.0}), 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(jain_index(std::vector<double>{}), 0.0);
  EXPECT_DOUBLE_EQ(jain_index({0.0, 0.0}), 0.0);
}

}  // namespace
}  // namespace cgs::core
