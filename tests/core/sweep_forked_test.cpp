// Fault-isolated sweep execution.
//
// Forked. — the determinism half of the contract: a sweep whose jobs run
// in fork()ed children must produce results bit-identical to the
// in-process engine at any thread count, journal the identical bytes, and
// resume across modes.
//
// Poison. — the robustness half: a grid with deliberately poisoned
// (cell, seed) jobs (SIGSEGV / unbounded allocation / wall-clock spin)
// must complete, quarantine exactly the poisoned jobs with the right
// ErrorClass, leave every healthy cell bit-identical to a clean run, and
// remember the quarantine through the journal.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <string>
#include <vector>

#include "core/journal.hpp"
#include "core/sweep.hpp"
#include "sweep_test_util.hpp"

namespace cgs::core {
namespace {

// fork() + RLIMIT_AS interact badly with sanitizer runtimes (shadow
// mappings count against RLIMIT_AS; TSan's runtime locks are not
// fork-safe in a multithreaded parent) — gate the process-heavy cases.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
constexpr bool kSanitized = true;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
constexpr bool kSanitized = true;
#else
constexpr bool kSanitized = false;
#endif
#else
constexpr bool kSanitized = false;
#endif

std::string tmp_journal(const std::string& name) {
  const std::string path = ::testing::TempDir() + "cgs_forked_test_" + name;
  std::remove(path.c_str());
  return path;
}

/// Two fast cells x 3 runs = 6 jobs, same shape as the Resume suite.
std::vector<SweepCell> small_grid() {
  Scenario a = quick_scenario(11);
  Scenario b = quick_scenario(23);
  b.queue_bdp_mult = 0.5;
  b.tcp_algo = tcp::CcAlgo::kBbr;
  return {{"a", a}, {"b", b}};
}

SweepOptions forked_opts(int threads) {
  SweepOptions opts;
  opts.runs = 3;
  opts.threads = threads;
  opts.isolation = Isolation::kForked;
  opts.backoff_base_ms = 0;  // no sleeps in tests
  return opts;
}

TEST(Forked, BitIdenticalToInProcessAtAnyThreadCount) {
  if (kSanitized) GTEST_SKIP() << "fork-per-job under sanitizers";
  const auto cells = small_grid();
  SweepOptions ref_opts;
  ref_opts.runs = 3;
  ref_opts.threads = 1;
  const SweepResult want = run_sweep(cells, ref_opts);

  for (const int threads : {1, 2, 8}) {
    const SweepResult got = run_sweep(cells, forked_opts(threads));
    EXPECT_EQ(got.report.failed(), 0u) << "threads=" << threads;
    EXPECT_EQ(got.report.succeeded, got.report.total);
    ASSERT_EQ(got.results.size(), want.results.size());
    for (std::size_t c = 0; c < want.results.size(); ++c) {
      expect_results_equal(got.results[c], want.results[c]);
    }
  }
}

TEST(Forked, JournalsTheIdenticalBytesAsInProcessMode) {
  if (kSanitized) GTEST_SKIP() << "fork-per-job under sanitizers";
  const auto cells = small_grid();
  const std::string jnl_in = tmp_journal("inproc.jnl");
  const std::string jnl_fk = tmp_journal("forked.jnl");

  SweepOptions in_opts;
  in_opts.runs = 3;
  in_opts.threads = 2;
  in_opts.journal_path = jnl_in;
  in_opts.journal_sync = false;
  (void)run_sweep(cells, in_opts);

  SweepOptions fk_opts = forked_opts(2);
  fk_opts.journal_path = jnl_fk;
  fk_opts.journal_sync = false;
  (void)run_sweep(cells, fk_opts);

  const auto scan_in = read_journal(jnl_in);
  const auto scan_fk = read_journal(jnl_fk);
  ASSERT_TRUE(scan_in.has_value());
  ASSERT_TRUE(scan_fk.has_value());
  EXPECT_EQ(scan_in->meta.fingerprint, scan_fk->meta.fingerprint);
  ASSERT_EQ(scan_in->entries.size(), 6u);
  ASSERT_EQ(scan_fk->entries.size(), 6u);

  // Same records (completion order may differ): key by (cell, run) and
  // demand byte-identical payloads and equal golden hashes.
  const auto by_slot = [](const JournalScan& s) {
    std::vector<const JournalEntry*> v(s.entries.size(), nullptr);
    for (const JournalEntry& e : s.entries) {
      v[e.cell * 3 + e.run] = &e;
    }
    return v;
  };
  const auto in_slots = by_slot(*scan_in);
  const auto fk_slots = by_slot(*scan_fk);
  for (std::size_t i = 0; i < in_slots.size(); ++i) {
    ASSERT_NE(in_slots[i], nullptr);
    ASSERT_NE(fk_slots[i], nullptr);
    EXPECT_TRUE(in_slots[i]->ok);
    EXPECT_TRUE(fk_slots[i]->ok);
    EXPECT_EQ(in_slots[i]->trace_hash, fk_slots[i]->trace_hash) << "slot " << i;
    EXPECT_EQ(in_slots[i]->payload, fk_slots[i]->payload) << "slot " << i;
  }

  std::remove(jnl_in.c_str());
  std::remove(jnl_fk.c_str());
}

TEST(Forked, ResumesAnInProcessJournalBitExactly) {
  if (kSanitized) GTEST_SKIP() << "fork-per-job under sanitizers";
  const auto cells = small_grid();
  SweepOptions ref_opts;
  ref_opts.runs = 3;
  ref_opts.threads = 2;
  const SweepResult want = run_sweep(cells, ref_opts);

  // Interrupt an in-process journaled sweep partway...
  const std::string journal = tmp_journal("crossmode.jnl");
  std::atomic<bool> stop{false};
  SweepOptions part_opts = ref_opts;
  part_opts.journal_path = journal;
  part_opts.journal_sync = false;
  part_opts.stop = &stop;
  part_opts.progress = [&](int done, int) {
    if (done >= 2) stop.store(true);
  };
  const SweepResult partial = run_sweep(cells, part_opts);
  if (partial.report.finished == partial.report.total) {
    GTEST_SKIP() << "in-flight jobs drained the grid before the stop landed";
  }

  // ...and finish it under forked isolation: journaled results restore,
  // the rest run in children, the fold is bit-identical.
  SweepOptions fk_opts = forked_opts(2);
  fk_opts.journal_path = journal;
  fk_opts.journal_sync = false;
  const SweepResult resumed = run_sweep(cells, fk_opts);
  EXPECT_EQ(resumed.report.skipped, partial.report.finished);
  EXPECT_EQ(resumed.report.finished, resumed.report.total);
  ASSERT_EQ(resumed.results.size(), want.results.size());
  for (std::size_t c = 0; c < want.results.size(); ++c) {
    expect_results_equal(resumed.results[c], want.results[c]);
  }
  std::remove(journal.c_str());
}

TEST(Poison, CrashCellIsQuarantinedAndSurvivorsAreBitExact) {
  if (kSanitized) GTEST_SKIP() << "fork-per-job under sanitizers";
  Scenario poison = quick_scenario(500);
  poison.fault.kind = Scenario::FaultKind::kCrash;  // every seed segfaults
  const std::vector<SweepCell> cells = {{"healthy", quick_scenario(11)},
                                        {"poison-crash", poison}};

  SweepOptions clean_opts;
  clean_opts.runs = 2;
  clean_opts.threads = 1;
  const SweepResult clean =
      run_sweep({{"healthy", quick_scenario(11)}}, clean_opts);

  SweepOptions opts = forked_opts(2);
  opts.runs = 2;
  opts.quarantine_strikes = 2;
  opts.throw_on_failure = false;
  const SweepResult got = run_sweep(cells, opts);

  // The sweep finished; only the poisoned cell's jobs failed.
  EXPECT_FALSE(got.report.interrupted);
  EXPECT_EQ(got.report.finished, got.report.total);
  EXPECT_EQ(got.report.cell_failures[0], 0u);
  EXPECT_EQ(got.report.cell_failures[1], 2u);
  EXPECT_EQ(got.report.quarantined, 2);
  ASSERT_EQ(got.report.failures.size(), 2u);
  for (const SweepFailure& f : got.report.failures) {
    EXPECT_EQ(f.cls, ErrorClass::kCrash);
    EXPECT_TRUE(f.quarantined);
    EXPECT_EQ(f.attempts, 2) << "each strike is one real execution";
    EXPECT_NE(f.what.find("SIGSEGV"), std::string::npos) << f.what;
  }
  // Strikes show up as retries: one extra execution per quarantined job.
  EXPECT_EQ(got.report.retries, 2);

  // The healthy cell never noticed its neighbors dying.
  expect_results_equal(got.results[0], clean.results[0]);
}

TEST(Poison, SeedTargetedFaultQuarantinesExactlyThatJob) {
  if (kSanitized) GTEST_SKIP() << "fork-per-job under sanitizers";
  Scenario poison = quick_scenario(700);
  poison.fault.kind = Scenario::FaultKind::kCrash;
  poison.fault.seed = 701;  // only run index 1 of this cell
  const std::vector<SweepCell> cells = {{"mostly-fine", poison}};

  SweepOptions opts = forked_opts(2);
  opts.runs = 3;
  opts.quarantine_strikes = 1;  // no second chances
  opts.throw_on_failure = false;
  const SweepResult got = run_sweep(cells, opts);

  EXPECT_EQ(got.report.succeeded, 2);
  EXPECT_EQ(got.report.quarantined, 1);
  ASSERT_EQ(got.report.failures.size(), 1u);
  EXPECT_EQ(got.report.failures[0].seed, 701u);
  EXPECT_EQ(got.report.failures[0].cls, ErrorClass::kCrash);
  EXPECT_TRUE(got.report.failures[0].quarantined);
  EXPECT_EQ(got.report.failures[0].attempts, 1);
  EXPECT_EQ(got.report.retries, 0);
}

TEST(Poison, OomFaultUnderAddressSpaceCapIsResource) {
  if (kSanitized) GTEST_SKIP() << "RLIMIT_AS under sanitizers";
  Scenario poison = quick_scenario(900);
  poison.fault.kind = Scenario::FaultKind::kOom;
  const std::vector<SweepCell> cells = {{"poison-oom", poison}};

  SweepOptions opts = forked_opts(1);
  opts.runs = 1;
  opts.quarantine_strikes = 1;
  opts.limits.address_space_bytes = 512ull << 20;
  opts.limits.wall_seconds = 30;  // backstop only
  opts.throw_on_failure = false;
  const SweepResult got = run_sweep(cells, opts);

  ASSERT_EQ(got.report.failures.size(), 1u);
  EXPECT_EQ(got.report.failures[0].cls, ErrorClass::kResource);
  EXPECT_TRUE(got.report.failures[0].quarantined);
}

TEST(Poison, SpinFaultHitsTheSupervisorDeadlineAsTimeout) {
  if (kSanitized) GTEST_SKIP() << "fork-per-job under sanitizers";
  Scenario poison = quick_scenario(1100);
  poison.fault.kind = Scenario::FaultKind::kSpin;
  const std::vector<SweepCell> cells = {{"poison-spin", poison}};

  SweepOptions opts = forked_opts(1);
  opts.runs = 1;
  opts.quarantine_strikes = 1;
  opts.limits.wall_seconds = 0.5;
  opts.throw_on_failure = false;
  const SweepResult got = run_sweep(cells, opts);

  ASSERT_EQ(got.report.failures.size(), 1u);
  EXPECT_EQ(got.report.failures[0].cls, ErrorClass::kTimeout);
  EXPECT_TRUE(got.report.failures[0].quarantined);
  EXPECT_NE(got.report.failures[0].what.find("wall-clock"), std::string::npos);
}

TEST(Poison, SpinFaultInProcessIsCaughtByTheWallWatchdog) {
  // No fork here: the scenario's own wall-clock watchdog budget converts
  // the spin into a clean, classified WatchdogError instead of a hang.
  Scenario poison = quick_scenario(1300);
  poison.fault.kind = Scenario::FaultKind::kSpin;
  poison.watchdog_wall_budget_s = 0.3;
  const std::vector<SweepCell> cells = {{"poison-spin-inproc", poison}};

  SweepOptions opts;
  opts.runs = 1;
  opts.threads = 1;
  opts.throw_on_failure = false;
  const SweepResult got = run_sweep(cells, opts);

  ASSERT_EQ(got.report.failures.size(), 1u);
  EXPECT_EQ(got.report.failures[0].cls, ErrorClass::kWatchdog);
  EXPECT_FALSE(got.report.failures[0].quarantined);
  EXPECT_NE(got.report.failures[0].what.find("wall-clock"), std::string::npos);
}

TEST(Poison, QuarantineIsRememberedThroughTheJournal) {
  if (kSanitized) GTEST_SKIP() << "fork-per-job under sanitizers";
  Scenario poison = quick_scenario(1500);
  poison.fault.kind = Scenario::FaultKind::kCrash;
  const std::vector<SweepCell> cells = {{"healthy", quick_scenario(11)},
                                        {"poison-crash", poison}};
  const std::string journal = tmp_journal("quarantine.jnl");

  SweepOptions opts = forked_opts(2);
  opts.runs = 2;
  opts.quarantine_strikes = 1;
  opts.journal_path = journal;
  opts.journal_sync = false;
  opts.throw_on_failure = false;
  const SweepResult first = run_sweep(cells, opts);
  EXPECT_EQ(first.report.failed(), 2u);
  EXPECT_EQ(first.report.quarantined, 2);

  // Resume: every job (quarantined failures included) restores from the
  // journal; no child is ever forked again for the poisoned jobs.
  const SweepResult second = run_sweep(cells, opts);
  EXPECT_EQ(second.report.skipped, second.report.total);
  EXPECT_EQ(second.report.succeeded, 0);
  EXPECT_EQ(second.report.failed(), 2u);
  ASSERT_EQ(second.report.failures.size(), 2u);
  for (const SweepFailure& f : second.report.failures) {
    EXPECT_EQ(f.cls, ErrorClass::kCrash);
  }
  expect_results_equal(second.results[0], first.results[0]);
  std::remove(journal.c_str());
}

}  // namespace
}  // namespace cgs::core
