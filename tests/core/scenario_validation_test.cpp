#include "core/scenario.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "core/testbed.hpp"

namespace cgs::core {
namespace {

using namespace cgs::literals;

/// Runs validate() and returns the exception message (empty = no throw).
std::string validation_message(const Scenario& sc) {
  try {
    sc.validate();
    return {};
  } catch (const std::invalid_argument& e) {
    return e.what();
  }
}

TEST(ScenarioValidation, DefaultScenarioIsValid) {
  EXPECT_EQ(validation_message(Scenario{}), "");
}

TEST(ScenarioValidation, RejectsNonPositiveCapacity) {
  Scenario sc;
  sc.capacity = Bandwidth(0);
  const std::string msg = validation_message(sc);
  EXPECT_NE(msg.find("Scenario:"), std::string::npos) << msg;
  EXPECT_NE(msg.find("capacity must be > 0"), std::string::npos) << msg;
}

TEST(ScenarioValidation, RejectsNonPositiveQueueMult) {
  Scenario sc;
  sc.queue_bdp_mult = 0.0;
  EXPECT_NE(validation_message(sc).find("queue_bdp_mult must be > 0"),
            std::string::npos);
  sc.queue_bdp_mult = -2.0;
  EXPECT_NE(validation_message(sc).find("queue_bdp_mult must be > 0"),
            std::string::npos);
  sc.queue_bdp_mult = std::numeric_limits<double>::quiet_NaN();
  EXPECT_NE(validation_message(sc).find("queue_bdp_mult"), std::string::npos);
}

TEST(ScenarioValidation, RejectsNonPositiveDuration) {
  Scenario sc;
  sc.duration = kTimeZero;
  sc.tcp_algo.reset();  // isolate the duration check
  EXPECT_NE(validation_message(sc).find("duration must be > 0"),
            std::string::npos);
}

TEST(ScenarioValidation, RejectsNonPositiveBaseRtt) {
  Scenario sc;
  sc.base_rtt = kTimeZero;
  EXPECT_NE(validation_message(sc).find("base_rtt must be > 0"),
            std::string::npos);
}

TEST(ScenarioValidation, RejectsTcpStartAfterStop) {
  Scenario sc;
  sc.tcp_start = 200_sec;
  sc.tcp_stop = 100_sec;
  const std::string msg = validation_message(sc);
  EXPECT_NE(msg.find("tcp_start"), std::string::npos) << msg;
  EXPECT_NE(msg.find("must be before tcp_stop"), std::string::npos) << msg;
}

TEST(ScenarioValidation, RejectsZeroLengthTcpSchedule) {
  // tcp_start == tcp_stop describes a flow that never sends; reject it
  // rather than silently running a misconfigured experiment.
  Scenario sc;
  sc.tcp_start = 185_sec;
  sc.tcp_stop = 185_sec;
  const std::string msg = validation_message(sc);
  EXPECT_NE(msg.find("tcp_start"), std::string::npos) << msg;
  EXPECT_NE(msg.find("must be before tcp_stop"), std::string::npos) << msg;
}

TEST(ScenarioValidation, RejectsNegativeTcpStart) {
  Scenario sc;
  sc.tcp_start = Time(-1);
  const std::string msg = validation_message(sc);
  EXPECT_NE(msg.find("tcp_start"), std::string::npos) << msg;
  EXPECT_NE(msg.find("must be >= 0"), std::string::npos) << msg;
}

TEST(ScenarioValidation, RejectsTcpStopPastDuration) {
  Scenario sc;
  sc.duration = 100_sec;
  sc.tcp_start = 10_sec;
  sc.tcp_stop = 200_sec;
  const std::string msg = validation_message(sc);
  EXPECT_NE(msg.find("tcp_stop"), std::string::npos) << msg;
  EXPECT_NE(msg.find("must not exceed duration"), std::string::npos) << msg;
}

TEST(ScenarioValidation, TcpScheduleIgnoredWithoutCompetingFlow) {
  // A solo (no-TCP) scenario with a short duration must not trip over the
  // default 370 s tcp_stop.
  Scenario sc;
  sc.tcp_algo.reset();
  sc.duration = 5_sec;
  EXPECT_EQ(validation_message(sc), "");
}

TEST(ScenarioValidation, RejectsInvalidImpairmentWithDirection) {
  Scenario sc;
  sc.impair_down.loss_rate = 7.0;
  const std::string down = validation_message(sc);
  EXPECT_NE(down.find("impair_down"), std::string::npos) << down;

  Scenario sc2;
  sc2.impair_up.jitter = Time(-5);
  const std::string up = validation_message(sc2);
  EXPECT_NE(up.find("impair_up"), std::string::npos) << up;
}

TEST(ScenarioValidation, RejectsDuplicateFlowIds) {
  Scenario sc;
  FlowSpec a = FlowSpec::game_stream();
  a.id = 7;
  FlowSpec b = FlowSpec::bulk_tcp(tcp::CcAlgo::kCubic, 10_sec, 100_sec);
  b.id = 7;
  sc.flows = {a, b};
  const std::string msg = validation_message(sc);
  EXPECT_NE(msg.find("flows[1].id"), std::string::npos) << msg;
  EXPECT_NE(msg.find("duplicates flow id 7"), std::string::npos) << msg;
}

TEST(ScenarioValidation, RejectsBadFlowSchedule) {
  Scenario sc;
  sc.flows = {FlowSpec::game_stream(),
              FlowSpec::bulk_tcp(tcp::CcAlgo::kCubic, Time(-5), 100_sec)};
  EXPECT_NE(validation_message(sc).find("flows[1].start must be >= 0"),
            std::string::npos);

  sc.flows[1] = FlowSpec::bulk_tcp(tcp::CcAlgo::kCubic, 100_sec, 100_sec);
  EXPECT_NE(validation_message(sc).find("flows[1].stop"), std::string::npos);

  sc.duration = 370_sec;
  sc.flows[1] = FlowSpec::bulk_tcp(tcp::CcAlgo::kCubic, 10_sec, 500_sec);
  const std::string msg = validation_message(sc);
  EXPECT_NE(msg.find("flows[1].stop"), std::string::npos) << msg;
  EXPECT_NE(msg.find("must not exceed duration"), std::string::npos) << msg;
}

TEST(ScenarioValidation, RejectsNegativeFlowExtraOwd) {
  Scenario sc;
  FlowSpec g = FlowSpec::game_stream();
  g.extra_owd = Time(-1);
  sc.flows = {g};
  EXPECT_NE(validation_message(sc).find("flows[0].extra_owd must be >= 0"),
            std::string::npos);
}

TEST(ScenarioValidation, RejectsBadPerFlowImpairment) {
  Scenario sc;
  FlowSpec g = FlowSpec::game_stream();
  net::ImpairmentConfig bad;
  bad.loss_rate = 7.0;
  g.impair_up = bad;
  sc.flows = {g};
  EXPECT_NE(validation_message(sc).find("flows[0].impair_up"),
            std::string::npos);
}

TEST(ScenarioValidation, ScalarScheduleIgnoredWithExplicitFlows) {
  // Once an explicit mix is given, the legacy scalar tcp_* fields are inert
  // and must not be validated against.
  Scenario sc;
  sc.tcp_start = 200_sec;
  sc.tcp_stop = 100_sec;  // would be rejected in scalar mode
  sc.flows = {FlowSpec::game_stream(),
              FlowSpec::bulk_tcp(tcp::CcAlgo::kBbr, 30_sec, 300_sec)};
  EXPECT_EQ(validation_message(sc), "");
}

TEST(ScenarioValidation, TestbedConstructionValidates) {
  Scenario sc;
  sc.capacity = Bandwidth(-1);
  EXPECT_THROW(Testbed bed(sc), std::invalid_argument);
}

TEST(ScenarioValidation, TopologyErrorsNameTheOffendingLinkField) {
  Scenario sc;
  sc.topology = net::TopologySpec::parking_lot(3, 25_mbps, 1_ms);

  sc.topology.links[1].rate = Bandwidth(0);
  EXPECT_NE(validation_message(sc).find("topology.links[1].rate must be > 0"),
            std::string::npos);
  sc.topology.links[1].rate = 25_mbps;

  sc.topology.links[2].queue_bdp_mult = -1.0;
  EXPECT_NE(validation_message(sc).find(
                "topology.links[2].queue_bdp_mult must be > 0"),
            std::string::npos);
  sc.topology.links[2].queue_bdp_mult.reset();

  sc.topology.links[0].queue_bytes = ByteSize(0);
  EXPECT_NE(
      validation_message(sc).find("topology.links[0].queue_bytes must be > 0"),
      std::string::npos);
  sc.topology.links[0].queue_bytes.reset();

  net::ImpairmentConfig bad;
  bad.loss_rate = 7.0;
  sc.topology.links[1].impair = bad;
  EXPECT_NE(validation_message(sc).find("topology.links[1].impair"),
            std::string::npos);
  sc.topology.links[1].impair.reset();

  EXPECT_EQ(validation_message(sc), "");
}

TEST(ScenarioValidation, TopologyRejectsUnsortedRateSchedules) {
  Scenario sc;
  sc.topology = net::TopologySpec::parking_lot(2, 25_mbps, 1_ms);
  sc.topology.links[0].rate_schedule = {{10_sec, 10_mbps}, {5_sec, 25_mbps}};
  EXPECT_NE(validation_message(sc).find(
                "topology.links[0].rate_schedule[1].at must be non-decreasing"),
            std::string::npos);
  sc.topology.links[0].rate_schedule = {{5_sec, Bandwidth(0)}};
  EXPECT_NE(validation_message(sc).find(
                "topology.links[0].rate_schedule[0].rate must be > 0"),
            std::string::npos);
}

TEST(ScenarioValidation, TopologyRejectsDuplicateAndUnknownLinkNames) {
  Scenario sc;
  sc.topology = net::TopologySpec::parking_lot(2, 25_mbps, 1_ms);
  sc.topology.links[1].name = "hop0";
  EXPECT_NE(validation_message(sc).find("duplicates link name 'hop0'"),
            std::string::npos);

  sc.topology = net::TopologySpec::parking_lot(2, 25_mbps, 1_ms);
  sc.topology.default_down = {"hop0", "hopX"};
  EXPECT_NE(validation_message(sc).find(
                "topology.default_down references unknown link 'hopX'"),
            std::string::npos);

  sc.topology = net::TopologySpec::parking_lot(2, 25_mbps, 1_ms);
  sc.topology.paths.push_back({1, {"nope"}, {}});
  EXPECT_NE(validation_message(sc).find(
                "topology.paths[0].down references unknown link 'nope'"),
            std::string::npos);
}

TEST(ScenarioValidation, TopologyRejectsScalarImpairDownCombination) {
  Scenario sc;
  sc.topology = net::TopologySpec::single_bottleneck(25_mbps, 1_ms);
  sc.impair_down.loss_rate = 0.01;
  EXPECT_NE(validation_message(sc).find("impair_down cannot be combined"),
            std::string::npos);
}

TEST(ScenarioValidation, TopologyRejectsInfeasibleRttPadding) {
  // Propagation across the hops exceeding base_rtt leaves no room for the
  // access pads — the scenario must be rejected up front.
  Scenario sc;
  sc.topology =
      net::TopologySpec::parking_lot(3, 25_mbps, std::chrono::milliseconds(4));
  EXPECT_NE(validation_message(sc).find("base_rtt"), std::string::npos);
}

}  // namespace
}  // namespace cgs::core
