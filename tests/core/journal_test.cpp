// Run-journal format tests: header/record round trips, the torn-tail
// truncation contract (a crash mid-append must cost exactly one record),
// corruption detection, and bit-exact RunTrace serialization.
#include "core/journal.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/testbed.hpp"
#include "sweep_test_util.hpp"

namespace cgs::core {
namespace {

/// Unique scratch path under gtest's temp dir; removed up front so reruns
/// start clean.
std::string tmp_journal(const std::string& name) {
  const std::string path = ::testing::TempDir() + "cgs_journal_test_" + name;
  std::remove(path.c_str());
  return path;
}

JournalMeta test_meta() {
  JournalMeta meta;
  meta.fingerprint = 0xfeedface12345678ULL;
  meta.runs = 3;
  meta.cells = 2;
  meta.note = "grid=smoke seed=42 runs=3";
  return meta;
}

JournalEntry ok_entry() {
  JournalEntry e;
  e.cell = 1;
  e.run = 2;
  e.seed = 44;
  e.ok = true;
  e.cls = ErrorClass::kUnclassified;
  e.trace_hash = 0x0123456789abcdefULL;
  e.payload = {1, 2, 3, 4, 5};
  return e;
}

JournalEntry failed_entry() {
  JournalEntry e;
  e.cell = 0;
  e.run = 0;
  e.seed = 42;
  e.ok = false;
  e.cls = ErrorClass::kWatchdog;
  e.trace_hash = 0;
  const std::string what = "[watchdog] cell 'sick' seed 42: budget";
  e.payload.assign(what.begin(), what.end());
  return e;
}

void append_raw(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream os(path, std::ios::binary | std::ios::app);
  os.write(bytes.data(), std::streamsize(bytes.size()));
}

void flip_byte(const std::string& path, std::uint64_t offset) {
  std::fstream fs(path, std::ios::binary | std::ios::in | std::ios::out);
  fs.seekg(std::streamoff(offset));
  char b = 0;
  fs.read(&b, 1);
  b = char(b ^ 0x5a);
  fs.seekp(std::streamoff(offset));
  fs.write(&b, 1);
}

TEST(Journal, HeaderAndRecordsRoundTrip) {
  const std::string path = tmp_journal("roundtrip.jnl");
  {
    JournalWriter w = JournalWriter::create(path, test_meta(), /*sync=*/true);
    w.append(ok_entry());
    w.append(failed_entry());
  }
  const auto scan = read_journal(path);
  ASSERT_TRUE(scan.has_value());
  EXPECT_FALSE(scan->torn_tail);
  EXPECT_EQ(scan->meta.fingerprint, test_meta().fingerprint);
  EXPECT_EQ(scan->meta.runs, 3u);
  EXPECT_EQ(scan->meta.cells, 2u);
  EXPECT_EQ(scan->meta.note, "grid=smoke seed=42 runs=3");
  ASSERT_EQ(scan->entries.size(), 2u);

  const JournalEntry& a = scan->entries[0];
  EXPECT_EQ(a.cell, 1u);
  EXPECT_EQ(a.run, 2u);
  EXPECT_EQ(a.seed, 44u);
  EXPECT_TRUE(a.ok);
  EXPECT_EQ(a.trace_hash, 0x0123456789abcdefULL);
  EXPECT_EQ(a.payload, (std::vector<std::uint8_t>{1, 2, 3, 4, 5}));

  const JournalEntry& b = scan->entries[1];
  EXPECT_FALSE(b.ok);
  EXPECT_EQ(b.cls, ErrorClass::kWatchdog);
  EXPECT_EQ(b.seed, 42u);
  std::remove(path.c_str());
}

TEST(Journal, MissingOrTruncatedHeaderMeansNoJournal) {
  // Absent file and a header too short to validate both report "no
  // journal" (the caller recreates it) rather than throwing.
  EXPECT_FALSE(read_journal(tmp_journal("missing.jnl")).has_value());
  const std::string path = tmp_journal("stub.jnl");
  append_raw(path, {'C', 'G', 'S', 'J'});
  EXPECT_FALSE(read_journal(path).has_value());
  std::remove(path.c_str());
}

TEST(Journal, CorruptHeaderThrows) {
  const std::string path = tmp_journal("badheader.jnl");
  { JournalWriter w = JournalWriter::create(path, test_meta(), true); }
  flip_byte(path, 14);  // inside the fingerprint field -> header CRC fails
  EXPECT_THROW((void)read_journal(path), JournalError);
  std::remove(path.c_str());
}

TEST(Journal, TornTailIsTruncatedAndRecoverable) {
  const std::string path = tmp_journal("torn.jnl");
  {
    JournalWriter w = JournalWriter::create(path, test_meta(), true);
    w.append(ok_entry());
  }
  const auto clean = read_journal(path);
  ASSERT_TRUE(clean.has_value());
  const std::uint64_t v1 = clean->valid_bytes;

  // Crash mid-append: a few bytes of a half-written record.
  append_raw(path, {0x47, 0x52, 0x4e, 0x4c, 0x01, 0x00, 0x00});
  const auto torn = read_journal(path);
  ASSERT_TRUE(torn.has_value());
  EXPECT_TRUE(torn->torn_tail);
  EXPECT_EQ(torn->valid_bytes, v1);
  ASSERT_EQ(torn->entries.size(), 1u);  // the complete record survives

  // append_to truncates the torn tail and continues the sequence.
  {
    JournalWriter w = JournalWriter::append_to(path, v1, true);
    w.append(failed_entry());
  }
  const auto healed = read_journal(path);
  ASSERT_TRUE(healed.has_value());
  EXPECT_FALSE(healed->torn_tail);
  ASSERT_EQ(healed->entries.size(), 2u);
  EXPECT_EQ(healed->entries[1].seed, 42u);
  std::remove(path.c_str());
}

TEST(Journal, CorruptLastRecordIsTornButMidFileThrows) {
  const std::string path = tmp_journal("corrupt.jnl");
  std::uint64_t v1 = 0;
  {
    JournalWriter w = JournalWriter::create(path, test_meta(), true);
    w.append(ok_entry());
  }
  v1 = read_journal(path)->valid_bytes;
  {
    JournalWriter w = JournalWriter::append_to(path, v1, true);
    w.append(failed_entry());
  }
  const std::uint64_t v2 = read_journal(path)->valid_bytes;

  // Bit rot in the *last* record: indistinguishable from a torn write, so
  // it is dropped, not fatal.
  flip_byte(path, v2 - 6);
  const auto torn = read_journal(path);
  ASSERT_TRUE(torn.has_value());
  EXPECT_TRUE(torn->torn_tail);
  EXPECT_EQ(torn->entries.size(), 1u);
  flip_byte(path, v2 - 6);  // restore

  // Bit rot *mid-file* (a later record follows) cannot be a torn write —
  // that is data corruption and must refuse, not silently drop.
  flip_byte(path, v1 - 6);
  EXPECT_THROW((void)read_journal(path), JournalError);
  std::remove(path.c_str());
}

TEST(Journal, TraceSerializationIsBitExact) {
  Scenario sc = quick_scenario(77);
  Testbed bed(sc);
  const RunTrace t = bed.run();

  const std::vector<std::uint8_t> bytes = serialize_trace(t);
  const RunTrace rt = deserialize_trace(bytes.data(), bytes.size());

  // Same digest, same re-serialization: the round trip loses nothing.
  EXPECT_EQ(trace_hash(rt), trace_hash(t));
  EXPECT_EQ(serialize_trace(rt), bytes);

  ASSERT_EQ(rt.flows.size(), t.flows.size());
  for (std::size_t i = 0; i < t.flows.size(); ++i) {
    EXPECT_EQ(rt.flows[i].id, t.flows[i].id);
    EXPECT_EQ(rt.flows[i].name, t.flows[i].name);
    EXPECT_EQ(rt.flows[i].kind, t.flows[i].kind);
    EXPECT_EQ(rt.flows[i].mbps, t.flows[i].mbps);
  }
  EXPECT_EQ(rt.game_mbps, t.game_mbps);
  EXPECT_EQ(rt.tcp_mbps, t.tcp_mbps);
  EXPECT_EQ(rt.game_pkts_recv, t.game_pkts_recv);
  EXPECT_EQ(rt.queue_drops, t.queue_drops);
  EXPECT_EQ(rt.frame_times, t.frame_times);
  EXPECT_EQ(rt.rtt.size(), t.rtt.size());
  EXPECT_EQ(rt.sample_interval, t.sample_interval);
  EXPECT_EQ(rt.duration, t.duration);

  // Truncated payloads never produce a half-parsed trace.
  EXPECT_THROW((void)deserialize_trace(bytes.data(), bytes.size() / 2),
               JournalError);
}

TEST(Journal, FingerprintPinsGridShape) {
  std::vector<SweepCell> cells = {{"a", quick_scenario(1)},
                                  {"b", quick_scenario(2)}};
  const std::uint64_t base = sweep_fingerprint(cells, 3);
  EXPECT_EQ(sweep_fingerprint(cells, 3), base);  // deterministic

  EXPECT_NE(sweep_fingerprint(cells, 4), base);  // runs count matters
  std::vector<SweepCell> renamed = cells;
  renamed[1].label = "b2";
  EXPECT_NE(sweep_fingerprint(renamed, 3), base);  // labels matter
  std::vector<SweepCell> reseeded = cells;
  reseeded[0].scenario.seed = 99;
  EXPECT_NE(sweep_fingerprint(reseeded, 3), base);  // seeds matter
  std::vector<SweepCell> requeued = cells;
  requeued[0].scenario.queue_bdp_mult = 7.0;
  EXPECT_NE(sweep_fingerprint(requeued, 3), base);  // scenario shape matters
}

TEST(Journal, ActiveFaultInjectionChangesTheFingerprint) {
  std::vector<SweepCell> cells = {{"a", quick_scenario(1)}};
  const std::uint64_t base = sweep_fingerprint(cells, 3);

  std::vector<SweepCell> poisoned = cells;
  poisoned[0].scenario.fault.kind = Scenario::FaultKind::kCrash;
  EXPECT_NE(sweep_fingerprint(poisoned, 3), base)
      << "a poisoned grid must not resume a clean journal";
  std::vector<SweepCell> targeted = poisoned;
  targeted[0].scenario.fault.seed = 2;
  EXPECT_NE(sweep_fingerprint(targeted, 3), sweep_fingerprint(poisoned, 3));

  // Environmental knobs must NOT move it: same experiment, slower host.
  std::vector<SweepCell> budgeted = cells;
  budgeted[0].scenario.watchdog_wall_budget_s = 5.0;
  EXPECT_EQ(sweep_fingerprint(budgeted, 3), base);
}

TEST(Journal, WriteFailureNamesThePathAndErrno) {
  // /dev/full accepts the open and fails every write with ENOSPC — the
  // exact failure mode of a journal on a filled-up disk.
  if (::std::ifstream("/dev/full").fail()) {
    GTEST_SKIP() << "no /dev/full on this host";
  }
  try {
    JournalWriter w =
        JournalWriter::create("/dev/full", test_meta(), /*sync=*/false);
    w.append(ok_entry());
    w.close();
    FAIL() << "writing a journal to /dev/full must throw";
  } catch (const JournalError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("/dev/full"), std::string::npos) << what;
    EXPECT_NE(what.find("errno"), std::string::npos) << what;
    EXPECT_NE(what.find("No space left"), std::string::npos) << what;
  }
}

TEST(Journal, CloseSurfacesDeferredErrorsAndIsIdempotent) {
  const std::string path = tmp_journal("close.jnl");
  JournalWriter w = JournalWriter::create(path, test_meta(), /*sync=*/false);
  w.append(ok_entry());
  EXPECT_NO_THROW(w.close());
  EXPECT_NO_THROW(w.close());  // second close is a no-op
  EXPECT_THROW(w.append(ok_entry()), JournalError);  // closed writer
  const auto scan = read_journal(path);
  ASSERT_TRUE(scan.has_value());
  EXPECT_EQ(scan->entries.size(), 1u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace cgs::core
