// Shared helpers for the sweep-engine test suites (Sweep. / Resume.):
// a fast full-mix scenario and the field-for-field ConditionResult
// comparison both suites use to assert bit-identical aggregation.
#pragma once

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>

#include "core/aggregate.hpp"
#include "core/scenario.hpp"

namespace cgs::core {

/// Small, fast cell: full 3-flow paper mix squeezed into 2 simulated
/// seconds so fairness/RTT/fps windows all contain samples.
inline Scenario quick_scenario(std::uint64_t seed = 100) {
  Scenario sc;
  sc.duration = std::chrono::seconds(2);
  sc.tcp_start = std::chrono::milliseconds(500);
  sc.tcp_stop = std::chrono::milliseconds(1500);
  sc.seed = seed;
  return sc;
}

/// Field-for-field ConditionResult comparison: exact for counters/ids,
/// bitwise-tight for floating stats (the streaming path performs the same
/// arithmetic in the same order as the batch path).
inline void expect_results_equal(const ConditionResult& a,
                                 const ConditionResult& b) {
  EXPECT_EQ(a.runs, b.runs);
  ASSERT_EQ(a.game.mean.size(), b.game.mean.size());
  for (std::size_t i = 0; i < a.game.mean.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.game.mean[i], b.game.mean[i]) << "game.mean[" << i << "]";
    EXPECT_DOUBLE_EQ(a.game.sd[i], b.game.sd[i]) << "game.sd[" << i << "]";
    EXPECT_DOUBLE_EQ(a.game.ci95[i], b.game.ci95[i]) << "game.ci95[" << i << "]";
  }
  ASSERT_EQ(a.tcp.mean.size(), b.tcp.mean.size());
  for (std::size_t i = 0; i < a.tcp.mean.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.tcp.mean[i], b.tcp.mean[i]) << "tcp.mean[" << i << "]";
  }
  ASSERT_EQ(a.flow_rows.size(), b.flow_rows.size());
  for (std::size_t f = 0; f < a.flow_rows.size(); ++f) {
    EXPECT_EQ(a.flow_rows[f].id, b.flow_rows[f].id);
    EXPECT_EQ(a.flow_rows[f].name, b.flow_rows[f].name);
    EXPECT_EQ(a.flow_rows[f].kind, b.flow_rows[f].kind);
    EXPECT_DOUBLE_EQ(a.flow_rows[f].fair_mbps_mean, b.flow_rows[f].fair_mbps_mean);
    EXPECT_DOUBLE_EQ(a.flow_rows[f].fair_mbps_sd, b.flow_rows[f].fair_mbps_sd);
    ASSERT_EQ(a.flow_rows[f].series.mean.size(), b.flow_rows[f].series.mean.size());
    for (std::size_t i = 0; i < a.flow_rows[f].series.mean.size(); ++i) {
      EXPECT_DOUBLE_EQ(a.flow_rows[f].series.mean[i],
                       b.flow_rows[f].series.mean[i]);
      EXPECT_DOUBLE_EQ(a.flow_rows[f].series.sd[i], b.flow_rows[f].series.sd[i]);
    }
  }
  EXPECT_DOUBLE_EQ(a.jain_mean, b.jain_mean);
  EXPECT_DOUBLE_EQ(a.jain_sd, b.jain_sd);
  EXPECT_DOUBLE_EQ(a.fairness_mean, b.fairness_mean);
  EXPECT_DOUBLE_EQ(a.fairness_sd, b.fairness_sd);
  EXPECT_DOUBLE_EQ(a.game_fair_mbps, b.game_fair_mbps);
  EXPECT_DOUBLE_EQ(a.tcp_fair_mbps, b.tcp_fair_mbps);
  EXPECT_DOUBLE_EQ(a.rtt_mean_ms, b.rtt_mean_ms);
  EXPECT_DOUBLE_EQ(a.rtt_sd_ms, b.rtt_sd_ms);
  EXPECT_DOUBLE_EQ(a.fps_mean, b.fps_mean);
  EXPECT_DOUBLE_EQ(a.fps_sd, b.fps_sd);
  EXPECT_DOUBLE_EQ(a.loss_mean, b.loss_mean);
  EXPECT_DOUBLE_EQ(a.steady_mean_mbps, b.steady_mean_mbps);
  EXPECT_DOUBLE_EQ(a.steady_sd_mbps, b.steady_sd_mbps);
  EXPECT_DOUBLE_EQ(a.rr.response_s, b.rr.response_s);
  EXPECT_DOUBLE_EQ(a.rr.recovery_s, b.rr.recovery_s);
  EXPECT_EQ(a.rr.responded, b.rr.responded);
  EXPECT_EQ(a.rr.recovered, b.rr.recovered);
}

}  // namespace cgs::core
