#include "core/sweep.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/runner.hpp"
#include "core/testbed.hpp"
#include "stream/profiles.hpp"
#include "sweep_test_util.hpp"

namespace cgs::core {
namespace {

TEST(Sweep, CrossProductExpandsRowMajor) {
  SweepSpec spec;
  spec.base = quick_scenario();
  spec.axis("cap", {{"15", [](Scenario& s) { s.capacity = Bandwidth::mbps(15.0); }},
                    {"25", [](Scenario& s) { s.capacity = Bandwidth::mbps(25.0); }}})
      .axis("queue", {{"0.5", [](Scenario& s) { s.queue_bdp_mult = 0.5; }},
                      {"2", [](Scenario& s) { s.queue_bdp_mult = 2.0; }},
                      {"7", [](Scenario& s) { s.queue_bdp_mult = 7.0; }}});
  const auto cells = spec.cells();
  ASSERT_EQ(cells.size(), 6u);
  EXPECT_EQ(cells[0].label, "cap=15 queue=0.5");
  EXPECT_EQ(cells[5].label, "cap=25 queue=7");
  // Last axis fastest; mutators composed onto the base.
  EXPECT_DOUBLE_EQ(cells[1].scenario.queue_bdp_mult, 2.0);
  EXPECT_DOUBLE_EQ(cells[1].scenario.capacity.megabits_per_sec(), 15.0);
  EXPECT_DOUBLE_EQ(cells[4].scenario.capacity.megabits_per_sec(), 25.0);
  // Axis-free spec: the base scenario as a single cell.
  SweepSpec bare;
  bare.base = quick_scenario();
  EXPECT_EQ(bare.cells().size(), 1u);
}

TEST(Sweep, RejectsNonPositiveRunsAndInvalidCells) {
  SweepOptions opts;
  opts.runs = 0;
  EXPECT_THROW((void)sweep_jobs({{"c", quick_scenario()}}, opts,
                                [](std::size_t, int, RunTrace&&) {}),
               std::invalid_argument);
  Scenario bad = quick_scenario();
  bad.capacity = Bandwidth(0);
  opts.runs = 2;
  EXPECT_THROW((void)sweep_jobs({{"bad", bad}}, opts,
                                [](std::size_t, int, RunTrace&&) {}),
               std::invalid_argument);
}

TEST(Sweep, SeedsExactlyMatchSerialTestbed) {
  // The engine's (cell, i) job must seed scenario.seed + i — byte-for-byte
  // the traces a serial Testbed loop produces.
  const Scenario sc = quick_scenario(7);
  SweepOptions opts;
  opts.runs = 3;
  opts.threads = 2;
  std::vector<RunTrace> got(3);
  const SweepReport report =
      sweep_jobs({{"cell", sc}}, opts,
                 [&](std::size_t, int run, RunTrace&& t) {
                   got[std::size_t(run)] = std::move(t);
                 });
  ASSERT_TRUE(report.failures.empty());
  EXPECT_EQ(report.total, 3);
  EXPECT_EQ(report.succeeded, 3);
  EXPECT_EQ(report.finished, 3);
  EXPECT_FALSE(report.interrupted);
  for (int i = 0; i < 3; ++i) {
    Scenario serial = sc;
    serial.seed = sc.seed + std::uint64_t(i);
    Testbed bed(serial);
    const RunTrace want = bed.run();
    EXPECT_EQ(got[std::size_t(i)].game_mbps, want.game_mbps) << "run " << i;
    EXPECT_EQ(got[std::size_t(i)].tcp_mbps, want.tcp_mbps) << "run " << i;
  }
}

TEST(Sweep, StreamingMatchesBatchSummarize) {
  // The headline determinism contract: streaming ConditionAccumulator
  // output == batch summarize, field for field, through the whole engine.
  std::vector<SweepCell> cells;
  Scenario a = quick_scenario(11);
  Scenario b = quick_scenario(23);
  b.queue_bdp_mult = 0.5;
  b.tcp_algo = tcp::CcAlgo::kBbr;
  cells.push_back({"a", a});
  cells.push_back({"b", b});

  SweepOptions opts;
  opts.runs = 4;
  opts.threads = 3;
  const auto sweep = run_sweep(cells, opts);
  ASSERT_EQ(sweep.results.size(), 2u);

  for (std::size_t c = 0; c < cells.size(); ++c) {
    RunnerOptions ropts;
    ropts.runs = 4;
    ropts.threads = 1;
    const auto traces = run_many(cells[c].scenario, ropts);
    const auto batch = summarize(cells[c].scenario, traces);
    expect_results_equal(sweep.results[c], batch);
  }
}

TEST(Sweep, AccumulatorMatchesSummarizeIncrementally) {
  RunnerOptions ropts;
  ropts.runs = 3;
  const auto traces = run_many(quick_scenario(), ropts);
  ConditionAccumulator acc(quick_scenario());
  for (const auto& t : traces) acc.add(t);
  EXPECT_EQ(acc.runs(), 3);
  expect_results_equal(acc.finalize(), summarize(quick_scenario(), traces));
}

TEST(Sweep, DeterministicAcrossThreadCounts) {
  std::vector<SweepCell> cells;
  for (double q : {0.5, 2.0, 7.0}) {
    Scenario sc = quick_scenario(42);
    sc.queue_bdp_mult = q;
    cells.push_back({"q" + std::to_string(q), sc});
  }
  SweepOptions serial;
  serial.runs = 3;
  serial.threads = 1;
  SweepOptions wide;
  wide.runs = 3;
  wide.threads = 4;
  const auto a = run_sweep(cells, serial);
  const auto b = run_sweep(cells, wide);
  ASSERT_EQ(a.results.size(), b.results.size());
  for (std::size_t c = 0; c < a.results.size(); ++c) {
    expect_results_equal(a.results[c], b.results[c]);
  }
}

TEST(Sweep, ReportsEveryFailingCellAndSeed) {
  // Cell 1 livelocks on every seed; cell 0 is healthy.  Every failure is
  // named and classified, healthy runs still stream through in seed order.
  Scenario sick = quick_scenario(200);
  sick.watchdog_event_budget = 10;
  std::vector<SweepCell> cells = {{"healthy", quick_scenario(100)},
                                  {"sick", sick}};

  SweepOptions opts;
  opts.runs = 2;
  opts.threads = 2;
  std::mutex mu;
  std::vector<std::pair<std::size_t, int>> delivered;
  const SweepReport report = sweep_jobs(
      cells, opts, [&](std::size_t cell, int run, RunTrace&&) {
        std::lock_guard lk(mu);
        delivered.push_back({cell, run});
      });
  ASSERT_EQ(report.failures.size(), 2u);
  EXPECT_EQ(report.failures[0].cell, 1u);
  EXPECT_EQ(report.failures[0].cell_label, "sick");
  EXPECT_EQ(report.failures[0].seed, 200u);
  EXPECT_EQ(report.failures[1].seed, 201u);
  EXPECT_NE(report.failures[0].what.find("watchdog"), std::string::npos);
  EXPECT_EQ(report.failures[0].cls, ErrorClass::kWatchdog);
  EXPECT_EQ(report.failures[0].attempts, 1);
  EXPECT_EQ(report.failed(), 2u);
  ASSERT_EQ(report.cell_failures.size(), 2u);
  EXPECT_EQ(report.cell_failures[0], 0u);
  EXPECT_EQ(report.cell_failures[1], 2u);
  EXPECT_EQ(report.finished, 4);
  // Healthy cell delivered both runs, in seed order.
  ASSERT_EQ(delivered.size(), 2u);
  EXPECT_EQ(delivered[0], (std::pair<std::size_t, int>{0, 0}));
  EXPECT_EQ(delivered[1], (std::pair<std::size_t, int>{0, 1}));

  // run_sweep surfaces the same failures as one diagnostic.
  try {
    (void)run_sweep(cells, opts);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("2 of 4 jobs failed"), std::string::npos) << what;
    EXPECT_NE(what.find("cell 'sick' seed 200"), std::string::npos) << what;
    EXPECT_NE(what.find("cell 'sick' seed 201"), std::string::npos) << what;
  }
}

TEST(Sweep, ProgressCountsFailuresAndReachesTotal) {
  // Mixed success/failure grid: progress must still count every job and
  // finish at (total, total), strictly increasing.
  Scenario sick = quick_scenario(300);
  sick.watchdog_event_budget = 10;
  std::vector<SweepCell> cells = {{"healthy", quick_scenario(100)},
                                  {"sick", sick}};
  SweepOptions opts;
  opts.runs = 3;
  opts.threads = 2;
  std::mutex mu;
  std::vector<std::pair<int, int>> calls;
  opts.progress = [&](int done, int total) {
    std::lock_guard lk(mu);
    calls.push_back({done, total});
  };
  const SweepReport report = sweep_jobs(cells, opts,
                                        [](std::size_t, int, RunTrace&&) {});
  EXPECT_EQ(report.failures.size(), 3u);
  ASSERT_EQ(calls.size(), 6u);
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(calls[std::size_t(i)].first, i + 1);
    EXPECT_EQ(calls[std::size_t(i)].second, 6);
  }
}

TEST(Sweep, ProgressExceptionsCountedNotFatal) {
  SweepOptions opts;
  opts.runs = 3;
  opts.threads = 2;
  opts.progress = [](int, int) { throw std::runtime_error("reporting broke"); };
  const SweepReport report = sweep_jobs({{"c", quick_scenario(500)}}, opts,
                                        [](std::size_t, int, RunTrace&&) {});
  EXPECT_TRUE(report.failures.empty());
  EXPECT_EQ(report.succeeded, 3);
  EXPECT_EQ(report.progress_errors, 3);
}

TEST(Sweep, RetriesTransientFailuresOnly) {
  // A controller_override that throws a foreign exception on its first
  // call models an environmental blip: classified kUnclassified, hence
  // retried; the retry draws a fresh Testbed and succeeds.
  std::atomic<int> calls{0};
  Scenario flaky = quick_scenario(600);
  flaky.controller_override =
      [&calls]() -> std::unique_ptr<stream::RateController> {
    if (calls.fetch_add(1) == 0) throw std::runtime_error("spurious failure");
    return stream::make_controller(stream::GameSystem::kStadia);
  };
  SweepOptions opts;
  opts.runs = 1;
  opts.threads = 1;
  opts.max_retries = 2;
  const SweepReport report = sweep_jobs({{"flaky", flaky}}, opts,
                                        [](std::size_t, int, RunTrace&&) {});
  EXPECT_TRUE(report.failures.empty());
  EXPECT_EQ(report.succeeded, 1);
  EXPECT_EQ(report.retries, 1);
}

TEST(Sweep, RetryBudgetExhaustedKeepsAttemptCount) {
  Scenario broken = quick_scenario(700);
  broken.controller_override = []() -> std::unique_ptr<stream::RateController> {
    throw std::runtime_error("always broken");
  };
  SweepOptions opts;
  opts.runs = 1;
  opts.threads = 1;
  opts.max_retries = 2;
  const SweepReport report = sweep_jobs({{"broken", broken}}, opts,
                                        [](std::size_t, int, RunTrace&&) {});
  ASSERT_EQ(report.failures.size(), 1u);
  EXPECT_EQ(report.failures[0].cls, ErrorClass::kUnclassified);
  EXPECT_EQ(report.failures[0].attempts, 3);  // 1 try + 2 retries
  EXPECT_EQ(report.retries, 2);
}

TEST(Sweep, DeterministicFailuresAreNeverRetried) {
  // A watchdog trip reproduces identically — re-running it wastes the
  // budget, so the engine must not.
  Scenario sick = quick_scenario(800);
  sick.watchdog_event_budget = 10;
  SweepOptions opts;
  opts.runs = 1;
  opts.threads = 1;
  opts.max_retries = 5;
  const SweepReport report = sweep_jobs({{"sick", sick}}, opts,
                                        [](std::size_t, int, RunTrace&&) {});
  ASSERT_EQ(report.failures.size(), 1u);
  EXPECT_EQ(report.failures[0].cls, ErrorClass::kWatchdog);
  EXPECT_EQ(report.failures[0].attempts, 1);
  EXPECT_EQ(report.retries, 0);
}

TEST(Sweep, FailureRecordsCappedPerCell) {
  Scenario sick = quick_scenario(900);
  sick.watchdog_event_budget = 10;
  SweepOptions opts;
  opts.runs = 5;
  opts.threads = 2;
  opts.max_failures_per_cell = 2;
  int on_failure_calls = 0;
  opts.on_failure = [&](const SweepFailure&) { ++on_failure_calls; };
  const SweepReport report = sweep_jobs({{"sick", sick}}, opts,
                                        [](std::size_t, int, RunTrace&&) {});
  EXPECT_EQ(report.failures.size(), 2u);       // records kept
  EXPECT_EQ(report.failures_suppressed, 3u);   // records dropped
  EXPECT_EQ(report.failed(), 5u);              // but all failures counted
  ASSERT_EQ(report.cell_failures.size(), 1u);
  EXPECT_EQ(report.cell_failures[0], 5u);
  EXPECT_EQ(on_failure_calls, 5);  // the hook sees suppressed failures too
}

TEST(Sweep, StopFlagDrainsGracefully) {
  std::atomic<bool> stop{false};
  SweepOptions opts;
  opts.runs = 4;
  opts.threads = 1;
  opts.stop = &stop;
  opts.progress = [&](int done, int) {
    if (done >= 2) stop.store(true);
  };
  std::atomic<int> consumed{0};
  const SweepReport report = sweep_jobs({{"c", quick_scenario(950)}}, opts,
                                        [&](std::size_t, int, RunTrace&&) {
                                          ++consumed;
                                        });
  EXPECT_TRUE(report.interrupted);
  EXPECT_GE(report.finished, 2);
  EXPECT_LT(report.finished, report.total);
  EXPECT_EQ(report.remaining(), report.total - report.finished);
  EXPECT_EQ(consumed.load(), report.finished);

  // A pre-raised flag stops the pool before any job runs.
  stop.store(true);
  const SweepReport none = sweep_jobs({{"c", quick_scenario(950)}}, opts,
                                      [](std::size_t, int, RunTrace&&) {});
  EXPECT_TRUE(none.interrupted);
  EXPECT_EQ(none.finished, 0);
  EXPECT_EQ(none.remaining(), none.total);
}

TEST(Sweep, PreloadedRunsDeliverInSeedOrderWithoutReExecution) {
  const Scenario sc = quick_scenario(31);
  // Compute runs 0 and 1 serially — what a journal would have stored.
  std::vector<PreloadedRun> pre;
  for (int i = 0; i < 2; ++i) {
    Scenario serial = sc;
    serial.seed = sc.seed + std::uint64_t(i);
    Testbed bed(serial);
    PreloadedRun p;
    p.cell = 0;
    p.run = i;
    p.trace = bed.run();
    pre.push_back(std::move(p));
  }
  SweepOptions opts;
  opts.runs = 3;
  opts.threads = 2;
  std::mutex mu;
  std::vector<int> order;
  const SweepReport report = sweep_jobs(
      {{"cell", sc}}, opts,
      [&](std::size_t, int run, RunTrace&&) {
        std::lock_guard lk(mu);
        order.push_back(run);
      },
      pre);
  EXPECT_EQ(report.skipped, 2);
  EXPECT_EQ(report.succeeded, 1);  // only run 2 executed fresh
  EXPECT_EQ(report.finished, 3);
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));

  // A preloaded failure is re-reported, never re-run.
  PreloadedRun bad;
  bad.cell = 0;
  bad.run = 0;
  bad.failure = SweepFailure{0, "cell", sc.seed, "recorded failure",
                             ErrorClass::kWatchdog};
  const SweepReport rep2 = sweep_jobs(
      {{"cell", sc}}, opts, [](std::size_t, int, RunTrace&&) {}, {bad});
  ASSERT_EQ(rep2.failures.size(), 1u);
  EXPECT_EQ(rep2.failures[0].cls, ErrorClass::kWatchdog);
  EXPECT_EQ(rep2.skipped, 1);
  EXPECT_EQ(rep2.succeeded, 2);

  // Invalid preload slots are rejected before any worker spawns.
  PreloadedRun oob;
  oob.cell = 5;
  EXPECT_THROW((void)sweep_jobs({{"cell", sc}}, opts,
                                [](std::size_t, int, RunTrace&&) {}, {oob}),
               std::invalid_argument);
  EXPECT_THROW((void)sweep_jobs({{"cell", sc}}, opts,
                                [](std::size_t, int, RunTrace&&) {},
                                {pre[0], pre[0]}),
               std::invalid_argument);
}

}  // namespace
}  // namespace cgs::core
