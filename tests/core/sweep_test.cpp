#include "core/sweep.hpp"

#include <gtest/gtest.h>

#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/runner.hpp"
#include "core/testbed.hpp"

namespace cgs::core {
namespace {

using namespace cgs::literals;

/// Small, fast cell: full 3-flow paper mix squeezed into 2 simulated
/// seconds so fairness/RTT/fps windows all contain samples.
Scenario quick_scenario(std::uint64_t seed = 100) {
  Scenario sc;
  sc.duration = 2_sec;
  sc.tcp_start = 500_ms;
  sc.tcp_stop = 1500_ms;
  sc.seed = seed;
  return sc;
}

/// Field-for-field ConditionResult comparison: exact for counters/ids,
/// bitwise-tight for floating stats (the streaming path performs the same
/// arithmetic in the same order as the batch path).
void expect_results_equal(const ConditionResult& a, const ConditionResult& b) {
  EXPECT_EQ(a.runs, b.runs);
  ASSERT_EQ(a.game.mean.size(), b.game.mean.size());
  for (std::size_t i = 0; i < a.game.mean.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.game.mean[i], b.game.mean[i]) << "game.mean[" << i << "]";
    EXPECT_DOUBLE_EQ(a.game.sd[i], b.game.sd[i]) << "game.sd[" << i << "]";
    EXPECT_DOUBLE_EQ(a.game.ci95[i], b.game.ci95[i]) << "game.ci95[" << i << "]";
  }
  ASSERT_EQ(a.tcp.mean.size(), b.tcp.mean.size());
  for (std::size_t i = 0; i < a.tcp.mean.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.tcp.mean[i], b.tcp.mean[i]) << "tcp.mean[" << i << "]";
  }
  ASSERT_EQ(a.flow_rows.size(), b.flow_rows.size());
  for (std::size_t f = 0; f < a.flow_rows.size(); ++f) {
    EXPECT_EQ(a.flow_rows[f].id, b.flow_rows[f].id);
    EXPECT_EQ(a.flow_rows[f].name, b.flow_rows[f].name);
    EXPECT_EQ(a.flow_rows[f].kind, b.flow_rows[f].kind);
    EXPECT_DOUBLE_EQ(a.flow_rows[f].fair_mbps_mean, b.flow_rows[f].fair_mbps_mean);
    EXPECT_DOUBLE_EQ(a.flow_rows[f].fair_mbps_sd, b.flow_rows[f].fair_mbps_sd);
    ASSERT_EQ(a.flow_rows[f].series.mean.size(), b.flow_rows[f].series.mean.size());
    for (std::size_t i = 0; i < a.flow_rows[f].series.mean.size(); ++i) {
      EXPECT_DOUBLE_EQ(a.flow_rows[f].series.mean[i],
                       b.flow_rows[f].series.mean[i]);
      EXPECT_DOUBLE_EQ(a.flow_rows[f].series.sd[i], b.flow_rows[f].series.sd[i]);
    }
  }
  EXPECT_DOUBLE_EQ(a.jain_mean, b.jain_mean);
  EXPECT_DOUBLE_EQ(a.jain_sd, b.jain_sd);
  EXPECT_DOUBLE_EQ(a.fairness_mean, b.fairness_mean);
  EXPECT_DOUBLE_EQ(a.fairness_sd, b.fairness_sd);
  EXPECT_DOUBLE_EQ(a.game_fair_mbps, b.game_fair_mbps);
  EXPECT_DOUBLE_EQ(a.tcp_fair_mbps, b.tcp_fair_mbps);
  EXPECT_DOUBLE_EQ(a.rtt_mean_ms, b.rtt_mean_ms);
  EXPECT_DOUBLE_EQ(a.rtt_sd_ms, b.rtt_sd_ms);
  EXPECT_DOUBLE_EQ(a.fps_mean, b.fps_mean);
  EXPECT_DOUBLE_EQ(a.fps_sd, b.fps_sd);
  EXPECT_DOUBLE_EQ(a.loss_mean, b.loss_mean);
  EXPECT_DOUBLE_EQ(a.steady_mean_mbps, b.steady_mean_mbps);
  EXPECT_DOUBLE_EQ(a.steady_sd_mbps, b.steady_sd_mbps);
  EXPECT_DOUBLE_EQ(a.rr.response_s, b.rr.response_s);
  EXPECT_DOUBLE_EQ(a.rr.recovery_s, b.rr.recovery_s);
  EXPECT_EQ(a.rr.responded, b.rr.responded);
  EXPECT_EQ(a.rr.recovered, b.rr.recovered);
}

TEST(Sweep, CrossProductExpandsRowMajor) {
  SweepSpec spec;
  spec.base = quick_scenario();
  spec.axis("cap", {{"15", [](Scenario& s) { s.capacity = Bandwidth::mbps(15.0); }},
                    {"25", [](Scenario& s) { s.capacity = Bandwidth::mbps(25.0); }}})
      .axis("queue", {{"0.5", [](Scenario& s) { s.queue_bdp_mult = 0.5; }},
                      {"2", [](Scenario& s) { s.queue_bdp_mult = 2.0; }},
                      {"7", [](Scenario& s) { s.queue_bdp_mult = 7.0; }}});
  const auto cells = spec.cells();
  ASSERT_EQ(cells.size(), 6u);
  EXPECT_EQ(cells[0].label, "cap=15 queue=0.5");
  EXPECT_EQ(cells[5].label, "cap=25 queue=7");
  // Last axis fastest; mutators composed onto the base.
  EXPECT_DOUBLE_EQ(cells[1].scenario.queue_bdp_mult, 2.0);
  EXPECT_DOUBLE_EQ(cells[1].scenario.capacity.megabits_per_sec(), 15.0);
  EXPECT_DOUBLE_EQ(cells[4].scenario.capacity.megabits_per_sec(), 25.0);
  // Axis-free spec: the base scenario as a single cell.
  SweepSpec bare;
  bare.base = quick_scenario();
  EXPECT_EQ(bare.cells().size(), 1u);
}

TEST(Sweep, RejectsNonPositiveRunsAndInvalidCells) {
  SweepOptions opts;
  opts.runs = 0;
  EXPECT_THROW((void)sweep_jobs({{"c", quick_scenario()}}, opts,
                                [](std::size_t, int, RunTrace&&) {}),
               std::invalid_argument);
  Scenario bad = quick_scenario();
  bad.capacity = Bandwidth(0);
  opts.runs = 2;
  EXPECT_THROW((void)sweep_jobs({{"bad", bad}}, opts,
                                [](std::size_t, int, RunTrace&&) {}),
               std::invalid_argument);
}

TEST(Sweep, SeedsExactlyMatchSerialTestbed) {
  // The engine's (cell, i) job must seed scenario.seed + i — byte-for-byte
  // the traces a serial Testbed loop produces.
  const Scenario sc = quick_scenario(7);
  SweepOptions opts;
  opts.runs = 3;
  opts.threads = 2;
  std::vector<RunTrace> got(3);
  const auto failures =
      sweep_jobs({{"cell", sc}}, opts,
                 [&](std::size_t, int run, RunTrace&& t) {
                   got[std::size_t(run)] = std::move(t);
                 });
  ASSERT_TRUE(failures.empty());
  for (int i = 0; i < 3; ++i) {
    Scenario serial = sc;
    serial.seed = sc.seed + std::uint64_t(i);
    Testbed bed(serial);
    const RunTrace want = bed.run();
    EXPECT_EQ(got[std::size_t(i)].game_mbps, want.game_mbps) << "run " << i;
    EXPECT_EQ(got[std::size_t(i)].tcp_mbps, want.tcp_mbps) << "run " << i;
  }
}

TEST(Sweep, StreamingMatchesBatchSummarize) {
  // The headline determinism contract: streaming ConditionAccumulator
  // output == batch summarize, field for field, through the whole engine.
  std::vector<SweepCell> cells;
  Scenario a = quick_scenario(11);
  Scenario b = quick_scenario(23);
  b.queue_bdp_mult = 0.5;
  b.tcp_algo = tcp::CcAlgo::kBbr;
  cells.push_back({"a", a});
  cells.push_back({"b", b});

  SweepOptions opts;
  opts.runs = 4;
  opts.threads = 3;
  const auto sweep = run_sweep(cells, opts);
  ASSERT_EQ(sweep.results.size(), 2u);

  for (std::size_t c = 0; c < cells.size(); ++c) {
    RunnerOptions ropts;
    ropts.runs = 4;
    ropts.threads = 1;
    const auto traces = run_many(cells[c].scenario, ropts);
    const auto batch = summarize(cells[c].scenario, traces);
    expect_results_equal(sweep.results[c], batch);
  }
}

TEST(Sweep, AccumulatorMatchesSummarizeIncrementally) {
  RunnerOptions ropts;
  ropts.runs = 3;
  const auto traces = run_many(quick_scenario(), ropts);
  ConditionAccumulator acc(quick_scenario());
  for (const auto& t : traces) acc.add(t);
  EXPECT_EQ(acc.runs(), 3);
  expect_results_equal(acc.finalize(), summarize(quick_scenario(), traces));
}

TEST(Sweep, DeterministicAcrossThreadCounts) {
  std::vector<SweepCell> cells;
  for (double q : {0.5, 2.0, 7.0}) {
    Scenario sc = quick_scenario(42);
    sc.queue_bdp_mult = q;
    cells.push_back({"q" + std::to_string(q), sc});
  }
  SweepOptions serial;
  serial.runs = 3;
  serial.threads = 1;
  SweepOptions wide;
  wide.runs = 3;
  wide.threads = 4;
  const auto a = run_sweep(cells, serial);
  const auto b = run_sweep(cells, wide);
  ASSERT_EQ(a.results.size(), b.results.size());
  for (std::size_t c = 0; c < a.results.size(); ++c) {
    expect_results_equal(a.results[c], b.results[c]);
  }
}

TEST(Sweep, ReportsEveryFailingCellAndSeed) {
  // Cell 1 livelocks on every seed; cell 0 is healthy.  Every failure is
  // named, healthy runs still stream through in seed order.
  Scenario sick = quick_scenario(200);
  sick.watchdog_event_budget = 10;
  std::vector<SweepCell> cells = {{"healthy", quick_scenario(100)},
                                  {"sick", sick}};

  SweepOptions opts;
  opts.runs = 2;
  opts.threads = 2;
  std::mutex mu;
  std::vector<std::pair<std::size_t, int>> delivered;
  const auto failures = sweep_jobs(
      cells, opts, [&](std::size_t cell, int run, RunTrace&&) {
        std::lock_guard lk(mu);
        delivered.push_back({cell, run});
      });
  ASSERT_EQ(failures.size(), 2u);
  EXPECT_EQ(failures[0].cell, 1u);
  EXPECT_EQ(failures[0].cell_label, "sick");
  EXPECT_EQ(failures[0].seed, 200u);
  EXPECT_EQ(failures[1].seed, 201u);
  EXPECT_NE(failures[0].what.find("watchdog"), std::string::npos);
  // Healthy cell delivered both runs, in seed order.
  ASSERT_EQ(delivered.size(), 2u);
  EXPECT_EQ(delivered[0], (std::pair<std::size_t, int>{0, 0}));
  EXPECT_EQ(delivered[1], (std::pair<std::size_t, int>{0, 1}));

  // run_sweep surfaces the same failures as one diagnostic.
  try {
    (void)run_sweep(cells, opts);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("2 of 4 jobs failed"), std::string::npos) << what;
    EXPECT_NE(what.find("cell 'sick' seed 200"), std::string::npos) << what;
    EXPECT_NE(what.find("cell 'sick' seed 201"), std::string::npos) << what;
  }
}

TEST(Sweep, ProgressCountsFailuresAndReachesTotal) {
  // Mixed success/failure grid: progress must still count every job and
  // finish at (total, total), strictly increasing.
  Scenario sick = quick_scenario(300);
  sick.watchdog_event_budget = 10;
  std::vector<SweepCell> cells = {{"healthy", quick_scenario(100)},
                                  {"sick", sick}};
  SweepOptions opts;
  opts.runs = 3;
  opts.threads = 2;
  std::mutex mu;
  std::vector<std::pair<int, int>> calls;
  opts.progress = [&](int done, int total) {
    std::lock_guard lk(mu);
    calls.push_back({done, total});
  };
  const auto failures = sweep_jobs(cells, opts,
                                   [](std::size_t, int, RunTrace&&) {});
  EXPECT_EQ(failures.size(), 3u);
  ASSERT_EQ(calls.size(), 6u);
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(calls[std::size_t(i)].first, i + 1);
    EXPECT_EQ(calls[std::size_t(i)].second, 6);
  }
}

}  // namespace
}  // namespace cgs::core
