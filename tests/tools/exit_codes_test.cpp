// The CLI exit codes are a contract with every script that branches on
// them — the CI jobs first among them.  This test pins the numeric values:
// a renumbering (as opposed to an append) must fail loudly here, not
// silently flip a script's error handling.
#include "tools/exit_codes.hpp"

#include <gtest/gtest.h>

namespace cgs::tools {
namespace {

TEST(ExitCodes, ValuesArePinned) {
  EXPECT_EQ(kExitOk, 0);
  EXPECT_EQ(kExitVerifyFailed, 1);
  EXPECT_EQ(kExitUsage, 2);
  EXPECT_EQ(kExitJobsFailed, 3);
  EXPECT_EQ(kExitInterrupted, 4);
  EXPECT_EQ(kExitJournalMismatch, 5);
  EXPECT_EQ(kExitUnavailable, 6);
}

TEST(ExitCodes, ValuesAreDistinct) {
  const int codes[] = {kExitOk,          kExitVerifyFailed,
                       kExitUsage,       kExitJobsFailed,
                       kExitInterrupted, kExitJournalMismatch,
                       kExitUnavailable};
  for (std::size_t i = 0; i < std::size(codes); ++i) {
    for (std::size_t j = i + 1; j < std::size(codes); ++j) {
      EXPECT_NE(codes[i], codes[j]) << "codes " << i << " and " << j;
    }
  }
}

}  // namespace
}  // namespace cgs::tools
