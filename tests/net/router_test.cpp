#include "net/router.hpp"

#include <gtest/gtest.h>

#include "net/queue.hpp"

namespace cgs::net {
namespace {

using namespace cgs::literals;

class Recorder final : public PacketSink {
 public:
  void handle_packet(PacketPtr pkt) override { pkts.push_back(std::move(pkt)); }
  std::vector<PacketPtr> pkts;
};

TEST(FlowDemux, RoutesByFlowId) {
  sim::Simulator sim;
  PacketFactory f;
  FlowDemux demux;
  Recorder a, b;
  demux.register_flow(1, &a);
  demux.register_flow(2, &b);
  demux.handle_packet(f.make(1, TrafficClass::kGameStream, 100, kTimeZero, {}));
  demux.handle_packet(f.make(2, TrafficClass::kTcpData, 100, kTimeZero, {}));
  demux.handle_packet(f.make(1, TrafficClass::kGameStream, 100, kTimeZero, {}));
  EXPECT_EQ(a.pkts.size(), 2u);
  EXPECT_EQ(b.pkts.size(), 1u);
}

TEST(FlowDemux, DropsUnroutable) {
  PacketFactory f;
  FlowDemux demux;
  demux.handle_packet(f.make(9, TrafficClass::kPing, 64, kTimeZero, {}));
  EXPECT_EQ(demux.unroutable_total(), 1u);
}

TEST(FlowDemux, ReRegistrationReplacesSink) {
  PacketFactory f;
  FlowDemux demux;
  Recorder a, b;
  demux.register_flow(1, &a);
  demux.register_flow(1, &b);
  demux.handle_packet(f.make(1, TrafficClass::kGameStream, 100, kTimeZero, {}));
  EXPECT_TRUE(a.pkts.empty());
  EXPECT_EQ(b.pkts.size(), 1u);
}

TEST(BottleneckRouter, SharedLinkDeliversToRegisteredClients) {
  sim::Simulator sim;
  PacketFactory f;
  BottleneckRouter router(sim, 10_mbps, 1_ms,
                          std::make_unique<DropTailQueue>(100_KB));
  Recorder a, b;
  router.register_client(1, &a);
  router.register_client(2, &b);
  router.downstream_in().handle_packet(
      f.make(1, TrafficClass::kGameStream, 1000, sim.now(), {}));
  router.downstream_in().handle_packet(
      f.make(2, TrafficClass::kTcpData, 1000, sim.now(), {}));
  sim.run();
  EXPECT_EQ(a.pkts.size(), 1u);
  EXPECT_EQ(b.pkts.size(), 1u);
}

TEST(BottleneckRouter, UpstreamBypassesBottleneck) {
  sim::Simulator sim;
  PacketFactory f;
  // Slow bottleneck, but the upstream path must be pure delay.
  BottleneckRouter router(sim, Bandwidth::kbps(8), 1_ms,
                          std::make_unique<DropTailQueue>(100_KB));
  Recorder server;
  PacketSink& up = router.make_upstream(5_ms, &server);
  up.handle_packet(f.make(1, TrafficClass::kTcpAck, 1500, sim.now(), {}));
  sim.run();
  ASSERT_EQ(server.pkts.size(), 1u);
  // Delivered after exactly 5 ms, not after 1.5 s of serialisation.
  EXPECT_EQ(sim.now(), 5_ms);
}

TEST(BottleneckRouter, SharedQueueCouplesFlows) {
  sim::Simulator sim;
  PacketFactory f;
  BottleneckRouter router(sim, 10_mbps, kTimeZero,
                          std::make_unique<DropTailQueue>(ByteSize(3000)));
  Recorder a, b;
  router.register_client(1, &a);
  router.register_client(2, &b);
  int drops = 0;
  router.bottleneck().sniffer().on_drop(
      [&](const Packet&, DropReason, Time) { ++drops; });
  // Flow 1 floods the shared queue; flow 2's packet arrives last and drops.
  for (int i = 0; i < 4; ++i) {
    router.downstream_in().handle_packet(
        f.make(1, TrafficClass::kTcpData, 1500, sim.now(), {}));
  }
  router.downstream_in().handle_packet(
      f.make(2, TrafficClass::kGameStream, 1500, sim.now(), {}));
  sim.run();
  EXPECT_GT(drops, 0);
  EXPECT_TRUE(b.pkts.empty());
}

}  // namespace
}  // namespace cgs::net
