// Topology graph layer: canonical shape factories, per-flow multi-hop
// routing, the single-bottleneck facade contract, and deterministic
// per-link rate schedules.
#include "net/topology.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/audit.hpp"
#include "net/queue.hpp"
#include "net/router.hpp"

namespace cgs::net {
namespace {

using namespace cgs::literals;
using namespace std::chrono;

class Recorder final : public PacketSink {
 public:
  void handle_packet(PacketPtr pkt) override { pkts.push_back(std::move(pkt)); }
  std::vector<PacketPtr> pkts;
};

TEST(Topology, FactoriesDescribeCanonicalShapes) {
  const TopologySpec single = TopologySpec::single_bottleneck(25_mbps, 1_ms);
  EXPECT_EQ(single.name, "bottleneck");
  ASSERT_EQ(single.links.size(), 1u);
  EXPECT_EQ(single.links[0].name, "bottleneck");
  ASSERT_EQ(single.default_down.size(), 1u);
  EXPECT_TRUE(single.default_up.empty());  // pure delay-line reverse path

  const TopologySpec lot = TopologySpec::parking_lot(3, 25_mbps, 1_ms);
  EXPECT_EQ(lot.name, "parkinglot3");
  ASSERT_EQ(lot.links.size(), 3u);
  EXPECT_EQ(lot.links[0].name, "hop0");
  EXPECT_EQ(lot.links[2].name, "hop2");
  // Default downstream path traverses every hop in order.
  ASSERT_EQ(lot.default_down.size(), 3u);
  EXPECT_EQ(lot.default_down[1], "hop1");
  EXPECT_EQ(lot.link_index("hop2"), 2);
  EXPECT_EQ(lot.link_index("nope"), -1);

  const TopologySpec asym = TopologySpec::asymmetric(25_mbps, 5_mbps, 1_ms);
  ASSERT_EQ(asym.links.size(), 2u);
  EXPECT_EQ(asym.default_down, std::vector<std::string>{"down"});
  EXPECT_EQ(asym.default_up, std::vector<std::string>{"up"});
}

TEST(Topology, ResolvedFillsEmptyLinkNames) {
  TopologySpec t;
  t.links.resize(2);
  t.links[1].name = "named";
  const TopologySpec r = t.resolved();
  EXPECT_EQ(r.links[0].name, "link0");
  EXPECT_EQ(r.links[1].name, "named");
}

TEST(Topology, MultiHopDeliveryTraversesEveryLink) {
  sim::Simulator sim;
  PacketFactory f;
  TopologyGraph g(sim, f, TopologySpec::parking_lot(3, 10_mbps, 1_ms), {});
  Recorder client;
  g.register_client(1, &client);

  g.downstream_entry(1).handle_packet(
      f.make(1, TrafficClass::kGameStream, 1000, sim.now(), {}));
  sim.run();

  ASSERT_EQ(client.pkts.size(), 1u);
  // Each hop serializes 1000 B at 10 Mb/s (800 us) then propagates 1 ms.
  EXPECT_EQ(sim.now(), 3 * (microseconds(800) + 1_ms));
  EXPECT_EQ(g.terminal_link(1), 2u);
  EXPECT_EQ(g.down_prop(1), 3_ms);
}

TEST(Topology, PerFlowPathsPinCrossTrafficToSingleHops) {
  TopologySpec spec = TopologySpec::parking_lot(3, 10_mbps, 1_ms);
  spec.paths.push_back({7, {"hop1"}, {}});

  sim::Simulator sim;
  PacketFactory f;
  TopologyGraph g(sim, f, spec, {});
  Recorder cross;
  g.register_client(7, &cross);

  int hop0_seen = 0;
  g.link_at(0).sniffer().on_arrival([&](const Packet&, Time) { ++hop0_seen; });

  g.downstream_entry(7).handle_packet(
      f.make(7, TrafficClass::kTcpData, 1000, sim.now(), {}));
  sim.run();

  ASSERT_EQ(cross.pkts.size(), 1u);
  EXPECT_EQ(hop0_seen, 0);  // single-hop path never touched hop0
  EXPECT_EQ(sim.now(), microseconds(800) + 1_ms);
  EXPECT_EQ(g.terminal_link(7), 1u);
}

TEST(Topology, AsymmetricUpstreamContendsOnUpLink) {
  sim::Simulator sim;
  PacketFactory f;
  TopologyGraph g(sim, f, TopologySpec::asymmetric(25_mbps, 1_mbps, 1_ms), {});
  Recorder server;
  PacketSink& up = g.make_upstream(1, 5_ms, &server);

  up.handle_packet(f.make(1, TrafficClass::kTcpAck, 1000, sim.now(), {}));
  sim.run();

  ASSERT_EQ(server.pkts.size(), 1u);
  // Pad 5 ms, then the 1 Mb/s "up" link serializes 1000 B in 8 ms + 1 ms
  // prop — a real bottleneck, not the legacy ideal delay line.
  EXPECT_EQ(sim.now(), 5_ms + 8_ms + 1_ms);
  EXPECT_EQ(g.up_prop(1), 1_ms);
}

TEST(Topology, BottleneckThrowsOnMultiLinkGraphs) {
  sim::Simulator sim;
  PacketFactory f;
  TopologyGraph g(sim, f, TopologySpec::parking_lot(2, 10_mbps, 1_ms), {});
  try {
    (void)g.bottleneck();
    FAIL() << "expected std::logic_error";
  } catch (const std::logic_error& e) {
    EXPECT_NE(std::string(e.what()).find("parkinglot2"), std::string::npos)
        << e.what();
  }
  // The facade refuses to wrap a multi-bottleneck graph at construction.
  EXPECT_THROW(BottleneckRouter view(g), std::logic_error);
}

TEST(Topology, FacadeOverSingleLinkGraphDelegates) {
  sim::Simulator sim;
  PacketFactory f;
  TopologyGraph g(sim, f, TopologySpec::single_bottleneck(10_mbps, 1_ms), {});
  BottleneckRouter view(g);
  Recorder client;
  view.register_client(1, &client);
  view.downstream_in().handle_packet(
      f.make(1, TrafficClass::kGameStream, 1000, sim.now(), {}));
  sim.run();
  ASSERT_EQ(client.pkts.size(), 1u);
  EXPECT_EQ(&view.bottleneck(), &g.link_at(0));
}

// Satellite: a deterministic rate change landing mid-transmission on an
// interior hop must not create or destroy bytes — the invariant auditor
// watches the changing link and every packet still arrives exactly once.
TEST(Topology, RateScheduleConservesBytesAcrossMidTransmissionChange) {
  TopologySpec spec = TopologySpec::parking_lot(3, 10_mbps, 1_ms);
  // hop1 drops to 1 Mb/s at t=1 ms: the first packet reaches hop1 at
  // 1.8 ms... schedule a change at 2 ms, mid-way through a back-to-back
  // burst draining hop1's queue, then restore at 20 ms.
  spec.links[1].rate_schedule = {{2_ms, 1_mbps}, {20_ms, 10_mbps}};
  spec.links[1].queue_bytes = ByteSize(1'000'000);  // no drops: exact count

  sim::Simulator sim;
  PacketFactory f;
  TopologyGraph g(sim, f, spec, {});
  g.schedule_rate_changes();

  core::SimAuditor::Options ao;
  ao.queue_capacity = ByteSize(1'000'000);
  ao.cell_label = "rate-schedule";
  core::SimAuditor auditor(ao);
  auditor.attach(g.link_at(1));

  Recorder client;
  g.register_client(1, &client);
  constexpr int kPackets = 20;
  for (int i = 0; i < kPackets; ++i) {
    g.downstream_entry(1).handle_packet(
        f.make(1, TrafficClass::kTcpData, 1500, sim.now(), {}));
  }
  sim.run();

  EXPECT_EQ(client.pkts.size(), std::size_t(kPackets));
  EXPECT_NO_THROW(auditor.final_check());
  EXPECT_EQ(auditor.arrived_bytes(), auditor.transmitted_bytes());
  EXPECT_EQ(auditor.dropped_bytes(), ByteSize(0));
  EXPECT_GT(auditor.checks_run(), 0u);
  // The slow window actually bit: 20 x 1500 B at 10 Mb/s would finish in
  // ~3.6 ms/hop; the 1 Mb/s dip stretches the run well past that.
  EXPECT_GT(sim.now(), 10_ms);
}

TEST(Topology, MakeQueueBuildsEachDiscipline) {
  for (QueueKind k :
       {QueueKind::kDropTail, QueueKind::kCoDel, QueueKind::kFqCoDel}) {
    auto q = make_queue(k, 64_KB);
    ASSERT_NE(q, nullptr) << to_string(k);
    EXPECT_EQ(q->byte_length(), ByteSize(0));
  }
  EXPECT_EQ(to_string(QueueKind::kFqCoDel), "fq_codel");
}

}  // namespace
}  // namespace cgs::net
