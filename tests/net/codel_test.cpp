#include "net/codel.hpp"

#include <gtest/gtest.h>

namespace cgs::net {
namespace {

using namespace cgs::literals;

PacketPtr make_pkt(PacketFactory& f, std::int32_t size, FlowId flow = 1) {
  return f.make(flow, TrafficClass::kTcpData, size, kTimeZero, {});
}

TEST(CodelQueue, PassesThroughUnderTarget) {
  PacketFactory f;
  CodelQueue q(CodelParams{});
  for (int i = 0; i < 10; ++i) q.enqueue(make_pkt(f, 1000), 1_ms * i);
  int out = 0;
  // Dequeue promptly: sojourn < target, no drops.
  while (auto p = q.dequeue(20_ms)) ++out;
  EXPECT_EQ(out, 10);
  EXPECT_EQ(q.drops_total(), 0u);
}

TEST(CodelQueue, DropsWhenSojournExceedsTargetForInterval) {
  PacketFactory f;
  CodelQueue q(CodelParams{});
  for (int i = 0; i < 200; ++i) q.enqueue(make_pkt(f, 1000), kTimeZero);
  // Dequeue slowly, with every packet having a huge sojourn time: after the
  // first interval (100 ms) CoDel must start dropping.
  Time t = 200_ms;
  int delivered = 0;
  while (auto p = q.dequeue(t)) {
    ++delivered;
    t += 10_ms;
  }
  EXPECT_GT(q.drops_total(), 0u);
  EXPECT_LT(delivered, 200);
}

TEST(CodelQueue, HardByteLimitEnforced) {
  PacketFactory f;
  CodelParams p;
  p.capacity = ByteSize(2500);
  CodelQueue q(p);
  q.enqueue(make_pkt(f, 1000), kTimeZero);
  q.enqueue(make_pkt(f, 1000), kTimeZero);
  q.enqueue(make_pkt(f, 1000), kTimeZero);  // over the limit
  EXPECT_EQ(q.packet_count(), 2u);
  EXPECT_EQ(q.drops_total(), 1u);
}

TEST(FqCodelQueue, IsolatesFlows) {
  PacketFactory f;
  FqCodelQueue q(CodelParams{});
  // Flow 1 floods; flow 2 sends two packets.
  for (int i = 0; i < 50; ++i) q.enqueue(make_pkt(f, 1000, 1), kTimeZero);
  q.enqueue(make_pkt(f, 1000, 2), kTimeZero);
  q.enqueue(make_pkt(f, 1000, 2), kTimeZero);

  // Flow 2's packets must surface within the first few dequeues (new-flow
  // priority + DRR), despite flow 1's 50-deep backlog.
  int flow2_seen = 0;
  for (int i = 0; i < 6; ++i) {
    auto p = q.dequeue(1_ms);
    ASSERT_NE(p, nullptr);
    if (p->flow == 2) ++flow2_seen;
  }
  EXPECT_EQ(flow2_seen, 2);
}

TEST(FqCodelQueue, RoundRobinFairDrain) {
  PacketFactory f;
  FqCodelQueue q(CodelParams{});
  for (int i = 0; i < 20; ++i) {
    q.enqueue(make_pkt(f, 1000, 1), kTimeZero);
    q.enqueue(make_pkt(f, 1000, 2), kTimeZero);
  }
  int c1 = 0, c2 = 0;
  for (int i = 0; i < 20; ++i) {
    auto p = q.dequeue(1_ms);
    ASSERT_NE(p, nullptr);
    (p->flow == 1 ? c1 : c2)++;
  }
  EXPECT_NEAR(c1, c2, 2);
}

TEST(FqCodelQueue, AggregateAccounting) {
  PacketFactory f;
  FqCodelQueue q(CodelParams{});
  q.enqueue(make_pkt(f, 1000, 1), kTimeZero);
  q.enqueue(make_pkt(f, 500, 2), kTimeZero);
  EXPECT_EQ(q.packet_count(), 2u);
  EXPECT_EQ(q.byte_length().bytes(), 1500);
  (void)q.dequeue(1_ms);
  (void)q.dequeue(1_ms);
  EXPECT_EQ(q.packet_count(), 0u);
  EXPECT_EQ(q.byte_length().bytes(), 0);
  EXPECT_EQ(q.dequeue(1_ms), nullptr);
}

}  // namespace
}  // namespace cgs::net
