#include "net/impairment.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "net/packet.hpp"

namespace cgs::net {
namespace {

using namespace cgs::literals;

class SinkRecorder final : public PacketSink {
 public:
  explicit SinkRecorder(sim::Simulator& sim) : sim_(sim) {}
  void handle_packet(PacketPtr pkt) override {
    arrivals.emplace_back(sim_.now(), std::move(pkt));
  }
  std::vector<std::pair<Time, PacketPtr>> arrivals;

 private:
  sim::Simulator& sim_;
};

/// RTP packet carrying `seq` so tests can track identity through the stage.
PacketPtr make_pkt(PacketFactory& f, Time now, std::uint32_t seq = 0) {
  RtpHeader h;
  h.seq = seq;
  return f.make(1, TrafficClass::kGameStream, kRtpWire, now, h);
}

std::uint32_t seq_of(const PacketPtr& p) {
  return std::get<RtpHeader>(p->header).seq;
}

TEST(ImpairmentConfig, DefaultIsNoOp) {
  ImpairmentConfig cfg;
  EXPECT_FALSE(cfg.any());
  EXPECT_NO_THROW(cfg.validate("test"));
}

TEST(ImpairmentConfig, AnyDetectsEachKnob) {
  {
    ImpairmentConfig c;
    c.loss_rate = 0.01;
    EXPECT_TRUE(c.any());
  }
  {
    ImpairmentConfig c;
    c.gilbert_elliott = GilbertElliott{};
    EXPECT_TRUE(c.any());
  }
  {
    ImpairmentConfig c;
    c.jitter = 1_ms;
    EXPECT_TRUE(c.any());
  }
  {
    ImpairmentConfig c;
    c.duplicate_rate = 0.5;
    EXPECT_TRUE(c.any());
  }
  {
    ImpairmentConfig c;
    c.outages.push_back({1_sec, 2_sec, OutagePolicy::kDrop});
    EXPECT_TRUE(c.any());
  }
}

TEST(ImpairmentConfig, ValidateRejectsBadProbabilities) {
  {
    ImpairmentConfig c;
    c.loss_rate = 1.5;
    EXPECT_THROW(
        {
          try {
            c.validate("down");
          } catch (const std::invalid_argument& e) {
            EXPECT_NE(std::string(e.what()).find("ImpairmentConfig(down)"),
                      std::string::npos);
            EXPECT_NE(std::string(e.what()).find("loss_rate"),
                      std::string::npos);
            throw;
          }
        },
        std::invalid_argument);
  }
  {
    ImpairmentConfig c;
    c.duplicate_rate = -0.1;
    EXPECT_THROW(c.validate("x"), std::invalid_argument);
  }
  {
    ImpairmentConfig c;
    c.loss_rate = std::numeric_limits<double>::quiet_NaN();
    EXPECT_THROW(c.validate("x"), std::invalid_argument);
  }
  {
    ImpairmentConfig c;
    c.gilbert_elliott = GilbertElliott{.p_good_bad = 2.0};
    EXPECT_THROW(
        {
          try {
            c.validate("up");
          } catch (const std::invalid_argument& e) {
            EXPECT_NE(std::string(e.what()).find("p_good_bad"),
                      std::string::npos);
            throw;
          }
        },
        std::invalid_argument);
  }
}

TEST(ImpairmentConfig, ValidateRejectsNegativeJitterAndBadOutages) {
  {
    ImpairmentConfig c;
    c.jitter = Time(-1);
    EXPECT_THROW(c.validate("x"), std::invalid_argument);
  }
  {
    ImpairmentConfig c;
    c.outages.push_back({2_sec, 1_sec, OutagePolicy::kDrop});  // stop < start
    EXPECT_THROW(
        {
          try {
            c.validate("x");
          } catch (const std::invalid_argument& e) {
            EXPECT_NE(std::string(e.what()).find("outage"), std::string::npos);
            throw;
          }
        },
        std::invalid_argument);
  }
  {
    ImpairmentConfig c;
    c.outages.push_back({1_sec, 1_sec, OutagePolicy::kHold});  // empty
    EXPECT_THROW(c.validate("x"), std::invalid_argument);
  }
}

TEST(Impairment, NoImpairmentPassesThrough) {
  sim::Simulator sim;
  PacketFactory f;
  SinkRecorder sink(sim);
  Impairment imp(sim, f, "pass", ImpairmentConfig{}, Pcg32(1, 2), &sink);
  for (std::uint32_t i = 0; i < 10; ++i) {
    imp.handle_packet(make_pkt(f, sim.now(), i));
  }
  sim.run();
  ASSERT_EQ(sink.arrivals.size(), 10u);
  for (std::uint32_t i = 0; i < 10; ++i) {
    EXPECT_EQ(sink.arrivals[i].first, kTimeZero);  // no added delay
    EXPECT_EQ(seq_of(sink.arrivals[i].second), i);
  }
  EXPECT_EQ(imp.counters().received, 10u);
  EXPECT_EQ(imp.counters().delivered, 10u);
}

TEST(Impairment, IidLossApproximatesConfiguredRate) {
  sim::Simulator sim;
  PacketFactory f;
  SinkRecorder sink(sim);
  ImpairmentConfig cfg;
  cfg.loss_rate = 0.1;
  Impairment imp(sim, f, "loss", cfg, Pcg32(42, 7), &sink);
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    imp.handle_packet(make_pkt(f, sim.now(), std::uint32_t(i)));
  }
  sim.run();
  const double measured = double(imp.counters().dropped_random) / kN;
  EXPECT_NEAR(measured, 0.1, 0.01);  // ~5 sigma for Bernoulli(0.1), n=20000
  EXPECT_EQ(imp.counters().delivered + imp.counters().dropped_random,
            std::uint64_t(kN));
}

TEST(Impairment, GilbertElliottLossIsBursty) {
  sim::Simulator sim;
  PacketFactory f;
  SinkRecorder sink(sim);
  ImpairmentConfig cfg;
  // Stationary loss ~= 0.02/(0.02+0.25) ~= 7.4%, mean burst length 4.
  cfg.gilbert_elliott =
      GilbertElliott{.p_good_bad = 0.02, .p_bad_good = 0.25,
                     .good_loss = 0.0, .bad_loss = 1.0};
  Impairment imp(sim, f, "ge", cfg, Pcg32(3, 11), &sink);
  constexpr std::uint32_t kN = 50000;
  for (std::uint32_t i = 0; i < kN; ++i) {
    imp.handle_packet(make_pkt(f, sim.now(), i));
  }
  sim.run();

  // Reconstruct the drop pattern from gaps in the delivered sequence.
  std::vector<bool> dropped(kN, true);
  for (const auto& [t, p] : sink.arrivals) dropped[seq_of(p)] = false;
  std::uint64_t bursts = 0, lost = 0;
  for (std::uint32_t i = 0; i < kN; ++i) {
    if (!dropped[i]) continue;
    ++lost;
    if (i == 0 || !dropped[i - 1]) ++bursts;
  }
  ASSERT_GT(bursts, 0u);
  const double mean_burst = double(lost) / double(bursts);
  const double loss_rate = double(lost) / double(kN);
  // i.i.d. loss at this rate would give mean bursts of ~1/(1-p) ~= 1.08;
  // the Markov chain's geometric sojourn gives ~1/p_bad_good = 4.
  EXPECT_NEAR(loss_rate, 0.074, 0.02);
  EXPECT_GT(mean_burst, 2.5);
  EXPECT_LT(mean_burst, 6.0);
}

TEST(Impairment, JitterWithoutReorderPreservesOrder) {
  sim::Simulator sim;
  PacketFactory f;
  SinkRecorder sink(sim);
  ImpairmentConfig cfg;
  cfg.jitter = 2_ms;
  cfg.allow_reorder = false;
  Impairment imp(sim, f, "jit", cfg, Pcg32(9, 1), &sink);
  // 100 us spacing << 2 ms jitter: naive jitter would reorder heavily.
  constexpr std::uint32_t kN = 500;
  for (std::uint32_t i = 0; i < kN; ++i) {
    sim.schedule_at(Time(std::int64_t(i) * 100'000),
                    [&imp, &f, &sim, i] {
                      imp.handle_packet(make_pkt(f, sim.now(), i));
                    });
  }
  sim.run();
  ASSERT_EQ(sink.arrivals.size(), kN);
  bool any_delayed = false;
  for (std::uint32_t i = 0; i < kN; ++i) {
    EXPECT_EQ(seq_of(sink.arrivals[i].second), i);  // FIFO preserved
    if (sink.arrivals[i].first > Time(std::int64_t(i) * 100'000)) {
      any_delayed = true;
    }
    if (i > 0) {
      EXPECT_GE(sink.arrivals[i].first, sink.arrivals[i - 1].first);
    }
  }
  EXPECT_TRUE(any_delayed);  // jitter actually applied
}

TEST(Impairment, JitterWithReorderAllowedInvertsSomePairs) {
  sim::Simulator sim;
  PacketFactory f;
  SinkRecorder sink(sim);
  ImpairmentConfig cfg;
  cfg.jitter = 2_ms;
  cfg.allow_reorder = true;
  Impairment imp(sim, f, "reord", cfg, Pcg32(9, 1), &sink);
  constexpr std::uint32_t kN = 500;
  for (std::uint32_t i = 0; i < kN; ++i) {
    sim.schedule_at(Time(std::int64_t(i) * 100'000),
                    [&imp, &f, &sim, i] {
                      imp.handle_packet(make_pkt(f, sim.now(), i));
                    });
  }
  sim.run();
  ASSERT_EQ(sink.arrivals.size(), kN);
  std::uint32_t inversions = 0;
  for (std::uint32_t i = 1; i < kN; ++i) {
    if (seq_of(sink.arrivals[i].second) < seq_of(sink.arrivals[i - 1].second)) {
      ++inversions;
    }
  }
  EXPECT_GT(inversions, 0u);
}

TEST(Impairment, DuplicationDeliversIdenticalCopy) {
  sim::Simulator sim;
  PacketFactory f;
  SinkRecorder sink(sim);
  ImpairmentConfig cfg;
  cfg.duplicate_rate = 1.0;
  Impairment imp(sim, f, "dup", cfg, Pcg32(5, 5), &sink);
  const Time created = sim.now();
  imp.handle_packet(make_pkt(f, created, 77));
  sim.run();
  ASSERT_EQ(sink.arrivals.size(), 2u);
  EXPECT_EQ(seq_of(sink.arrivals[0].second), 77u);
  EXPECT_EQ(seq_of(sink.arrivals[1].second), 77u);
  // The copy keeps the original creation stamp (OWD must not be skewed)
  // but is a distinct packet object.
  EXPECT_EQ(sink.arrivals[0].second->created, created);
  EXPECT_EQ(sink.arrivals[1].second->created, created);
  EXPECT_NE(sink.arrivals[0].second->uid, sink.arrivals[1].second->uid);
  EXPECT_EQ(imp.counters().duplicated, 1u);
  EXPECT_EQ(imp.counters().delivered, 2u);
}

TEST(Impairment, DropOutageBlackholesScheduledWindow) {
  sim::Simulator sim;
  PacketFactory f;
  SinkRecorder sink(sim);
  ImpairmentConfig cfg;
  cfg.outages.push_back({1_sec, 2_sec, OutagePolicy::kDrop});
  Impairment imp(sim, f, "out", cfg, Pcg32(1, 1), &sink);
  std::vector<Time> sends = {500_ms, 1500_ms, 1999_ms, 2500_ms};
  for (std::uint32_t i = 0; i < sends.size(); ++i) {
    sim.schedule_at(sends[i], [&imp, &f, &sim, i] {
      imp.handle_packet(make_pkt(f, sim.now(), i));
    });
  }
  bool up_at_500ms = false, up_at_1500ms = true;
  sim.schedule_at(500_ms, [&] { up_at_500ms = imp.link_up(); });
  sim.schedule_at(1500_ms, [&] { up_at_1500ms = imp.link_up(); });
  sim.run();
  ASSERT_EQ(sink.arrivals.size(), 2u);
  EXPECT_EQ(seq_of(sink.arrivals[0].second), 0u);
  EXPECT_EQ(seq_of(sink.arrivals[1].second), 3u);
  EXPECT_EQ(imp.counters().dropped_outage, 2u);
  EXPECT_TRUE(up_at_500ms);
  EXPECT_FALSE(up_at_1500ms);
}

TEST(Impairment, HoldOutageReleasesInOrderAtOutageEnd) {
  sim::Simulator sim;
  PacketFactory f;
  SinkRecorder sink(sim);
  ImpairmentConfig cfg;
  cfg.outages.push_back({1_sec, 2_sec, OutagePolicy::kHold});
  Impairment imp(sim, f, "hold", cfg, Pcg32(1, 1), &sink);
  std::vector<Time> sends = {500_ms, 1200_ms, 1400_ms, 2500_ms};
  for (std::uint32_t i = 0; i < sends.size(); ++i) {
    sim.schedule_at(sends[i], [&imp, &f, &sim, i] {
      imp.handle_packet(make_pkt(f, sim.now(), i));
    });
  }
  sim.run();
  ASSERT_EQ(sink.arrivals.size(), 4u);
  for (std::uint32_t i = 0; i < 4; ++i) {
    EXPECT_EQ(seq_of(sink.arrivals[i].second), i);
  }
  // Parked packets come out exactly when the outage ends.
  EXPECT_EQ(sink.arrivals[1].first, 2_sec);
  EXPECT_EQ(sink.arrivals[2].first, 2_sec);
  EXPECT_EQ(imp.counters().held, 2u);
  EXPECT_EQ(imp.counters().released, 2u);
}

TEST(Impairment, SameSeedSameArrivalSchedule) {
  auto run_once = [] {
    sim::Simulator sim;
    PacketFactory f;
    SinkRecorder sink(sim);
    ImpairmentConfig cfg;
    cfg.loss_rate = 0.05;
    cfg.jitter = 1_ms;
    cfg.duplicate_rate = 0.02;
    cfg.gilbert_elliott = GilbertElliott{.p_good_bad = 0.01, .p_bad_good = 0.3};
    Impairment imp(sim, f, "det", cfg, Pcg32(123, 0xd01), &sink);
    for (std::uint32_t i = 0; i < 2000; ++i) {
      sim.schedule_at(Time(std::int64_t(i) * 250'000),
                      [&imp, &f, &sim, i] {
                        imp.handle_packet(make_pkt(f, sim.now(), i));
                      });
    }
    sim.run();
    std::vector<std::pair<Time, std::uint32_t>> out;
    out.reserve(sink.arrivals.size());
    for (const auto& [t, p] : sink.arrivals) out.emplace_back(t, seq_of(p));
    return out;
  };
  const auto a = run_once();
  const auto b = run_once();
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace cgs::net
