#include "net/queue.hpp"

#include <gtest/gtest.h>

#include "net/packet.hpp"

namespace cgs::net {
namespace {

using namespace cgs::literals;

PacketPtr make_pkt(PacketFactory& f, std::int32_t size, FlowId flow = 1) {
  return f.make(flow, TrafficClass::kTcpData, size, kTimeZero, {});
}

TEST(DropTailQueue, FifoOrder) {
  PacketFactory f;
  DropTailQueue q(10_KB);
  auto a = make_pkt(f, 100);
  auto b = make_pkt(f, 100);
  const auto ua = a->uid, ub = b->uid;
  q.enqueue(std::move(a), kTimeZero);
  q.enqueue(std::move(b), kTimeZero);
  EXPECT_EQ(q.dequeue(kTimeZero)->uid, ua);
  EXPECT_EQ(q.dequeue(kTimeZero)->uid, ub);
  EXPECT_EQ(q.dequeue(kTimeZero), nullptr);
}

TEST(DropTailQueue, ByteAccounting) {
  PacketFactory f;
  DropTailQueue q(10_KB);
  q.enqueue(make_pkt(f, 1500), kTimeZero);
  q.enqueue(make_pkt(f, 500), kTimeZero);
  EXPECT_EQ(q.byte_length().bytes(), 2000);
  EXPECT_EQ(q.packet_count(), 2u);
  (void)q.dequeue(kTimeZero);
  EXPECT_EQ(q.byte_length().bytes(), 500);
}

TEST(DropTailQueue, DropsWhenFull) {
  PacketFactory f;
  DropTailQueue q(ByteSize(3000));
  int drops = 0;
  q.set_drop_handler([&](const Packet&, DropReason r, Time) {
    EXPECT_EQ(r, DropReason::kOverflow);
    ++drops;
  });
  q.enqueue(make_pkt(f, 1500), kTimeZero);
  q.enqueue(make_pkt(f, 1500), kTimeZero);
  q.enqueue(make_pkt(f, 1500), kTimeZero);  // over the 3000-byte limit
  EXPECT_EQ(drops, 1);
  EXPECT_EQ(q.drops_total(), 1u);
  EXPECT_EQ(q.packet_count(), 2u);
}

TEST(DropTailQueue, ExactFitAccepted) {
  PacketFactory f;
  DropTailQueue q(ByteSize(3000));
  q.enqueue(make_pkt(f, 1500), kTimeZero);
  q.enqueue(make_pkt(f, 1500), kTimeZero);
  EXPECT_EQ(q.packet_count(), 2u);
  EXPECT_EQ(q.drops_total(), 0u);
}

TEST(DropTailQueue, SmallPacketFitsAfterBigDrop) {
  PacketFactory f;
  DropTailQueue q(ByteSize(2000));
  q.enqueue(make_pkt(f, 1500), kTimeZero);
  q.enqueue(make_pkt(f, 1500), kTimeZero);  // dropped
  q.enqueue(make_pkt(f, 400), kTimeZero);   // fits
  EXPECT_EQ(q.packet_count(), 2u);
  EXPECT_EQ(q.drops_total(), 1u);
}

TEST(DropTailQueue, StampsEnqueueTime) {
  PacketFactory f;
  DropTailQueue q(10_KB);
  q.enqueue(make_pkt(f, 100), 5_sec);
  auto p = q.dequeue(6_sec);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->enqueued, 5_sec);
}

TEST(PacketFactory, UniqueIncreasingIds) {
  PacketFactory f;
  auto a = make_pkt(f, 100);
  auto b = make_pkt(f, 100);
  EXPECT_LT(a->uid, b->uid);
  EXPECT_EQ(f.created_total(), 2u);
}

TEST(TrafficClassNames, AllNamed) {
  EXPECT_EQ(to_string(TrafficClass::kGameStream), "game");
  EXPECT_EQ(to_string(TrafficClass::kTcpData), "tcp");
  EXPECT_EQ(to_string(TrafficClass::kTcpAck), "ack");
  EXPECT_EQ(to_string(TrafficClass::kPing), "ping");
  EXPECT_EQ(to_string(TrafficClass::kStreamInput), "input");
}

}  // namespace
}  // namespace cgs::net
