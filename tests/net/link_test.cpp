#include "net/link.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "net/packet.hpp"
#include "net/queue.hpp"

namespace cgs::net {
namespace {

using namespace cgs::literals;

class SinkRecorder final : public PacketSink {
 public:
  explicit SinkRecorder(sim::Simulator& sim) : sim_(sim) {}
  void handle_packet(PacketPtr pkt) override {
    arrivals.emplace_back(sim_.now(), std::move(pkt));
  }
  std::vector<std::pair<Time, PacketPtr>> arrivals;

 private:
  sim::Simulator& sim_;
};

PacketPtr make_pkt(PacketFactory& f, std::int32_t size, Time now,
                   FlowId flow = 1) {
  return f.make(flow, TrafficClass::kTcpData, size, now, {});
}

TEST(Link, SerializationPlusPropagation) {
  sim::Simulator sim;
  PacketFactory f;
  SinkRecorder sink(sim);
  // 1500 B at 12 Mb/s = 1 ms serialisation; +2 ms propagation = 3 ms.
  Link link(sim, "l", 12_mbps, 2_ms, std::make_unique<DropTailQueue>(100_KB),
            &sink);
  link.handle_packet(make_pkt(f, 1500, sim.now()));
  sim.run();
  ASSERT_EQ(sink.arrivals.size(), 1u);
  EXPECT_EQ(sink.arrivals[0].first, 3_ms);
}

TEST(Link, BackToBackPacketsSpacedBySerialization) {
  sim::Simulator sim;
  PacketFactory f;
  SinkRecorder sink(sim);
  Link link(sim, "l", 12_mbps, kTimeZero,
            std::make_unique<DropTailQueue>(100_KB), &sink);
  for (int i = 0; i < 3; ++i) link.handle_packet(make_pkt(f, 1500, sim.now()));
  sim.run();
  ASSERT_EQ(sink.arrivals.size(), 3u);
  EXPECT_EQ(sink.arrivals[0].first, 1_ms);
  EXPECT_EQ(sink.arrivals[1].first, 2_ms);
  EXPECT_EQ(sink.arrivals[2].first, 3_ms);
}

TEST(Link, PipeliningPropagationDoesNotBlockTransmitter) {
  sim::Simulator sim;
  PacketFactory f;
  SinkRecorder sink(sim);
  // Large propagation: packets must still leave every 1 ms.
  Link link(sim, "l", 12_mbps, 50_ms, std::make_unique<DropTailQueue>(100_KB),
            &sink);
  link.handle_packet(make_pkt(f, 1500, sim.now()));
  link.handle_packet(make_pkt(f, 1500, sim.now()));
  sim.run();
  ASSERT_EQ(sink.arrivals.size(), 2u);
  EXPECT_EQ(sink.arrivals[0].first, 51_ms);
  EXPECT_EQ(sink.arrivals[1].first, 52_ms);
}

TEST(Link, DeliveredStats) {
  sim::Simulator sim;
  PacketFactory f;
  SinkRecorder sink(sim);
  Link link(sim, "l", 12_mbps, kTimeZero,
            std::make_unique<DropTailQueue>(100_KB), &sink);
  link.handle_packet(make_pkt(f, 1500, sim.now()));
  link.handle_packet(make_pkt(f, 500, sim.now()));
  sim.run();
  EXPECT_EQ(link.packets_delivered(), 2u);
  EXPECT_EQ(link.bytes_delivered().bytes(), 2000);
}

TEST(Link, SnifferSeesArrivalTransmitDeliverDrop) {
  sim::Simulator sim;
  PacketFactory f;
  SinkRecorder sink(sim);
  Link link(sim, "l", 12_mbps, kTimeZero,
            std::make_unique<DropTailQueue>(ByteSize(1500)), &sink);
  int arrivals = 0, transmits = 0, delivers = 0, drops = 0;
  link.sniffer().on_arrival([&](const Packet&, Time) { ++arrivals; });
  link.sniffer().on_transmit([&](const Packet&, Time) { ++transmits; });
  link.sniffer().on_deliver([&](const Packet&, Time) { ++delivers; });
  link.sniffer().on_drop([&](const Packet&, DropReason, Time) { ++drops; });

  link.handle_packet(make_pkt(f, 1500, sim.now()));
  link.handle_packet(make_pkt(f, 1500, sim.now()));  // queue full: first is
                                                     // in the queue until
                                                     // transmission starts
  sim.run();
  EXPECT_EQ(arrivals, 2);
  EXPECT_GE(drops, 0);
  EXPECT_EQ(transmits + drops, 2);
  EXPECT_EQ(delivers, transmits);
}

TEST(Link, QueueOverflowDropsAreCounted) {
  sim::Simulator sim;
  PacketFactory f;
  SinkRecorder sink(sim);
  // Tiny queue: 1 packet of headroom while one is being serialised.
  Link link(sim, "l", Bandwidth::kbps(120), kTimeZero,
            std::make_unique<DropTailQueue>(ByteSize(1500)), &sink);
  int drops = 0;
  link.sniffer().on_drop([&](const Packet&, DropReason, Time) { ++drops; });
  // First goes straight to the transmitter, second queues, rest drop.
  for (int i = 0; i < 5; ++i) link.handle_packet(make_pkt(f, 1500, sim.now()));
  sim.run();
  EXPECT_EQ(drops, 3);
  EXPECT_EQ(sink.arrivals.size(), 2u);
}

TEST(Link, SetRateMidTransmissionNeitherStallsNorDoubleSchedules) {
  sim::Simulator sim;
  PacketFactory f;
  SinkRecorder sink(sim);
  // 1500 B at 12 Mb/s = 1 ms serialisation.
  Link link(sim, "l", 12_mbps, kTimeZero,
            std::make_unique<DropTailQueue>(100_KB), &sink);
  int transmits = 0;
  link.sniffer().on_transmit([&](const Packet&, Time) { ++transmits; });
  for (int i = 0; i < 3; ++i) link.handle_packet(make_pkt(f, 1500, sim.now()));
  // Drop the rate to 1.2 Mb/s (10 ms per packet) while packet 1 is on the
  // wire: its in-flight serialisation must finish on the old schedule, the
  // queued packets serialise at the new rate, and nothing is transmitted
  // twice or left stranded in the queue.
  sim.schedule_at(500_us, [&] { link.set_rate(Bandwidth::mbps(1.2)); });
  sim.run();
  ASSERT_EQ(sink.arrivals.size(), 3u);
  EXPECT_EQ(sink.arrivals[0].first, 1_ms);
  EXPECT_EQ(sink.arrivals[1].first, 11_ms);
  EXPECT_EQ(sink.arrivals[2].first, 21_ms);
  EXPECT_EQ(transmits, 3);
  EXPECT_EQ(link.packets_delivered(), 3u);
  EXPECT_EQ(link.queue().packet_count(), 0u);
}

TEST(Link, SetRateWhileIdleAppliesToNextPacket) {
  sim::Simulator sim;
  PacketFactory f;
  SinkRecorder sink(sim);
  Link link(sim, "l", 12_mbps, kTimeZero,
            std::make_unique<DropTailQueue>(100_KB), &sink);
  link.handle_packet(make_pkt(f, 1500, sim.now()));
  sim.run();  // drain; link idle again
  link.set_rate(24_mbps);
  sim.schedule_at(10_ms, [&] { link.handle_packet(make_pkt(f, 1500, sim.now())); });
  sim.run();
  ASSERT_EQ(sink.arrivals.size(), 2u);
  EXPECT_EQ(sink.arrivals[0].first, 1_ms);
  EXPECT_EQ(sink.arrivals[1].first, 10_ms + 500_us);  // 1500 B at 24 Mb/s
}

TEST(DelayLine, PureDelay) {
  sim::Simulator sim;
  PacketFactory f;
  SinkRecorder sink(sim);
  DelayLine line(sim, 7_ms, &sink);
  line.handle_packet(make_pkt(f, 1500, sim.now()));
  line.handle_packet(make_pkt(f, 9000, sim.now()));  // size irrelevant
  sim.run();
  ASSERT_EQ(sink.arrivals.size(), 2u);
  EXPECT_EQ(sink.arrivals[0].first, 7_ms);
  EXPECT_EQ(sink.arrivals[1].first, 7_ms);
}

TEST(DelayLine, PreservesOrderAcrossTime) {
  sim::Simulator sim;
  PacketFactory f;
  SinkRecorder sink(sim);
  DelayLine line(sim, 5_ms, &sink);
  auto p1 = make_pkt(f, 100, sim.now());
  const auto u1 = p1->uid;
  line.handle_packet(std::move(p1));
  sim.schedule_at(1_ms, [&] { line.handle_packet(make_pkt(f, 100, sim.now())); });
  sim.run();
  ASSERT_EQ(sink.arrivals.size(), 2u);
  EXPECT_EQ(sink.arrivals[0].second->uid, u1);
  EXPECT_EQ(sink.arrivals[0].first, 5_ms);
  EXPECT_EQ(sink.arrivals[1].first, 6_ms);
}

}  // namespace
}  // namespace cgs::net
