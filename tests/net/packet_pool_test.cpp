// Packet pool recycling: created_total() keeps counting logical packets
// while the arena reuses physical storage.
#include <gtest/gtest.h>

#include <variant>

#include "net/packet.hpp"

namespace cgs::net {
namespace {

PacketPtr make(PacketFactory& f, Time at = kTimeZero) {
  return f.make(1, TrafficClass::kTcpData, 1500, at, TcpHeader{});
}

TEST(PacketPool, CreatedTotalCountsLogicalPackets) {
  PacketFactory factory;
  PacketPtr a = make(factory);
  PacketPtr b = make(factory);
  PacketPtr c = make(factory);
  EXPECT_EQ(factory.created_total(), 3u);

  a.reset();
  b.reset();
  EXPECT_EQ(factory.pool().free_count(), 2u);

  PacketPtr d = make(factory);
  PacketPtr e = make(factory);
  // Recycled storage still counts as new logical packets with fresh uids.
  EXPECT_EQ(factory.created_total(), 5u);
  EXPECT_EQ(factory.pool().recycled_total(), 2u);
  EXPECT_EQ(factory.pool().storage_count(), 3u);
  EXPECT_NE(d->uid, c->uid);
  EXPECT_NE(e->uid, d->uid);
}

TEST(PacketPool, ReusesAddressesLifo) {
  PacketFactory factory;
  PacketPtr p = make(factory);
  const Packet* addr = p.get();
  p.reset();
  PacketPtr q = make(factory);
  EXPECT_EQ(q.get(), addr);
  EXPECT_EQ(factory.created_total(), 2u);
}

TEST(PacketPool, RecycledPacketsAreFullyReset) {
  PacketFactory factory;
  {
    PacketPtr p = make(factory, Time(std::chrono::seconds(3)));
    std::get<TcpHeader>(p->header).seq = 999;
    p->enqueued = Time(std::chrono::seconds(4));
  }
  PacketPtr q = factory.make(7, TrafficClass::kGameStream, 300,
                             Time(std::chrono::seconds(5)), RtpHeader{});
  EXPECT_EQ(q->flow, 7u);
  EXPECT_EQ(q->klass, TrafficClass::kGameStream);
  EXPECT_EQ(q->size_bytes, 300);
  EXPECT_TRUE(std::holds_alternative<RtpHeader>(q->header));
  EXPECT_EQ(std::get<RtpHeader>(q->header).seq, 0u);
  EXPECT_EQ(q->enqueued, kTimeZero);
}

TEST(PacketPool, PoolOutlivesFactory) {
  PacketPtr survivor;
  {
    PacketFactory factory;
    survivor = make(factory);
    PacketPtr tmp = make(factory);
  }  // factory gone; survivor's deleter still owns the pool
  std::get<TcpHeader>(survivor->header).seq = 42;  // storage still valid
  EXPECT_EQ(std::get<TcpHeader>(survivor->header).seq, 42u);
  survivor.reset();  // releases into the (soon-destroyed) pool, not free()
}

TEST(PacketPool, DistinctFactoriesDistinctPools) {
  PacketFactory f1;
  PacketFactory f2;
  PacketPtr a = make(f1);
  PacketPtr b = make(f2);
  EXPECT_NE(a.get(), b.get());
  EXPECT_EQ(f1.created_total(), 1u);
  EXPECT_EQ(f2.created_total(), 1u);
}

}  // namespace
}  // namespace cgs::net
