// Per-run bump-allocator (util::Arena) contract tests: alignment, geometric
// block growth, reset() retaining storage for reuse, oversized requests,
// and the integration property the event engine relies on — an arena can
// back an EventQueue's slabs and be recycled across queue lifetimes.
#include "util/arena.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

#include "sim/event_queue.hpp"

namespace cgs::util {
namespace {

bool aligned_to(const void* p, std::size_t align) {
  return (reinterpret_cast<std::uintptr_t>(p) & (align - 1)) == 0;
}

TEST(Arena, RespectsAlignment) {
  Arena arena(256);
  // Interleave odd sizes with every supported power-of-two alignment; each
  // returned pointer must satisfy its own request even when the previous
  // allocation left the cursor misaligned.
  for (int round = 0; round < 50; ++round) {
    for (std::size_t align : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
      void* p = arena.allocate(3, 1);  // deliberately skew the cursor
      ASSERT_NE(p, nullptr);
      void* q = arena.allocate(align + 1, align);
      ASSERT_NE(q, nullptr);
      EXPECT_TRUE(aligned_to(q, align)) << "align " << align;
      std::memset(q, 0xAB, align + 1);  // must be writable storage
    }
  }
  EXPECT_LE(std::size_t{64}, Arena::kBlockAlignment);
}

TEST(Arena, GrowsGeometrically) {
  // Blocks double: total capacity reaches N bytes in O(log N) blocks, not
  // O(N / first_block) — the property that keeps a growing run's slab
  // count (and allocator traffic) logarithmic.
  Arena arena(1024);
  for (int i = 0; i < 1000; ++i) (void)arena.allocate(512, 8);
  EXPECT_GE(arena.bytes_reserved(), 512u * 1000u);
  EXPECT_LE(arena.block_count(), 12u);
}

TEST(Arena, ResetRetainsBlocksForReuse) {
  Arena arena(1024);
  std::vector<void*> first;
  for (int i = 0; i < 200; ++i) first.push_back(arena.allocate(256, 8));
  const std::size_t blocks = arena.block_count();
  const std::size_t reserved = arena.bytes_reserved();
  ASSERT_GT(blocks, 1u);

  arena.reset();
  EXPECT_EQ(arena.bytes_used(), 0u);
  EXPECT_EQ(arena.block_count(), blocks) << "reset must keep storage";
  EXPECT_EQ(arena.reset_count(), 1u);

  // Replaying the same allocation pattern must be served entirely from the
  // retained blocks: no new block appears, and the first pointer repeats.
  std::vector<void*> second;
  for (int i = 0; i < 200; ++i) second.push_back(arena.allocate(256, 8));
  EXPECT_EQ(arena.block_count(), blocks);
  EXPECT_EQ(arena.bytes_reserved(), reserved);
  EXPECT_EQ(second.front(), first.front());
}

TEST(Arena, OversizedRequestGetsFittingBlock) {
  Arena arena(64);  // tiny first block
  void* p = arena.allocate(100'000, 64);
  ASSERT_NE(p, nullptr);
  EXPECT_TRUE(aligned_to(p, 64));
  std::memset(p, 0x5A, 100'000);
  EXPECT_GE(arena.bytes_reserved(), 100'000u);
}

TEST(Arena, AllocateArrayIsTypedAndUsable) {
  Arena arena;
  std::uint64_t* xs = arena.allocate_array<std::uint64_t>(1000);
  ASSERT_NE(xs, nullptr);
  EXPECT_TRUE(aligned_to(xs, alignof(std::uint64_t)));
  for (std::size_t i = 0; i < 1000; ++i) xs[i] = i * i;
  for (std::size_t i = 0; i < 1000; ++i) ASSERT_EQ(xs[i], i * i);
}

TEST(Arena, BytesUsedTracksHandouts) {
  Arena arena(4096);
  EXPECT_EQ(arena.bytes_used(), 0u);
  (void)arena.allocate(100, 8);
  const std::size_t after_first = arena.bytes_used();
  EXPECT_GE(after_first, 100u);
  (void)arena.allocate(100, 8);
  EXPECT_GE(arena.bytes_used(), after_first + 100);
}

TEST(Arena, BacksEventQueueAcrossResets) {
  // The engine's intended lifecycle: one arena, many runs.  Each queue
  // carves its slot/node slabs from the arena; after the queue dies, a
  // reset() recycles the same blocks for the next run, so the steady-state
  // block count stops growing.
  Arena arena(64 * 1024);
  std::size_t blocks_after_first = 0;
  for (int run = 0; run < 5; ++run) {
    {
      sim::EventQueue q(&arena);
      int fired = 0;
      for (int i = 0; i < 1000; ++i) {
        q.push(Time(i * 1000), [&fired] { ++fired; });
      }
      while (!q.empty()) q.run_top();
      EXPECT_EQ(fired, 1000);
      EXPECT_GT(arena.bytes_used(), 0u);
    }
    if (run == 0) {
      blocks_after_first = arena.block_count();
    } else {
      EXPECT_EQ(arena.block_count(), blocks_after_first)
          << "identical runs must reuse retained blocks, run " << run;
    }
    arena.reset();
  }
  EXPECT_EQ(arena.reset_count(), 5u);
}

}  // namespace
}  // namespace cgs::util
