#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace cgs {
namespace {

TEST(Pcg32, DeterministicForSameSeed) {
  Pcg32 a(123), b(123);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.next_u32(), b.next_u32());
  }
}

TEST(Pcg32, DifferentSeedsDiffer) {
  Pcg32 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u32() == b.next_u32()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Pcg32, DoubleInUnitInterval) {
  Pcg32 g(7);
  for (int i = 0; i < 10'000; ++i) {
    const double d = g.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
  }
}

TEST(Pcg32, BoundedRespectsBound) {
  Pcg32 g(9);
  for (int i = 0; i < 10'000; ++i) {
    ASSERT_LT(g.next_bounded(17), 17u);
  }
  EXPECT_EQ(g.next_bounded(1), 0u);
  EXPECT_EQ(g.next_bounded(0), 0u);
}

TEST(Pcg32, UniformMeanNearCenter) {
  Pcg32 g(11);
  double sum = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) sum += g.uniform(10.0, 20.0);
  EXPECT_NEAR(sum / n, 15.0, 0.05);
}

TEST(Pcg32, NormalMoments) {
  Pcg32 g(13);
  double sum = 0, sq = 0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) {
    const double x = g.normal(5.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.03);
  EXPECT_NEAR(var, 4.0, 0.1);
}

TEST(Pcg32, LognormalByMomentsMatchesTarget) {
  Pcg32 g(17);
  double sum = 0, sq = 0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) {
    const double x = g.lognormal_by_moments(100.0, 25.0);
    ASSERT_GT(x, 0.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double sd = std::sqrt(sq / n - mean * mean);
  EXPECT_NEAR(mean, 100.0, 1.0);
  EXPECT_NEAR(sd, 25.0, 1.0);
}

TEST(Pcg32, ExponentialMean) {
  Pcg32 g(19);
  double sum = 0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) sum += g.exponential(3.0);
  EXPECT_NEAR(sum / n, 3.0, 0.05);
}

TEST(Pcg32, BernoulliProbability) {
  Pcg32 g(23);
  int hits = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) hits += g.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(double(hits) / n, 0.3, 0.01);
}

TEST(Pcg32, ForkIndependence) {
  Pcg32 parent(31);
  Pcg32 c1 = parent.fork(1);
  Pcg32 c2 = parent.fork(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (c1.next_u32() == c2.next_u32()) ++same;
  }
  EXPECT_LT(same, 3);
}

}  // namespace
}  // namespace cgs
