#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace cgs {
namespace {

TEST(RunningStats, MeanAndVariance) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(RunningStats, EmptyAndSingle) {
  RunningStats s;
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, Reset) {
  RunningStats s;
  s.add(1.0);
  s.add(2.0);
  s.reset();
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(OnlineStats, LargeMeanTinySpreadKeepsVariance) {
  // The naive E[x^2] - mean^2 formulation loses ALL the variance here to
  // catastrophic cancellation (1e9^2 swamps a 1e-3 spread in a double's 53
  // bits); Welford must not.  16 samples alternating mean +/- 1e-3 have
  // sample sd = 1e-3 * sqrt(16/15).
  OnlineStats s;
  const double mean = 1e9;
  const double delta = 1e-3;
  for (int i = 0; i < 16; ++i) s.add(i % 2 == 0 ? mean + delta : mean - delta);
  EXPECT_DOUBLE_EQ(s.mean(), mean);
  // Analytic sd to within input quantization: at 1e9 a double's ulp is
  // ~1.2e-7, so the +/-1e-3 offsets carry ~1e-4 relative error before any
  // statistics happen.  Naive E[x^2]-mean^2 would be off by orders of
  // magnitude (or go negative); 1e-3 relative proves no cancellation.
  const double want_sd = delta * std::sqrt(16.0 / 15.0);
  EXPECT_NEAR(s.stddev() / want_sd, 1.0, 1e-3);
  // And agrees tightly with the two-pass batch computation on the SAME
  // quantized inputs — this is the algorithmic comparison.
  std::vector<double> xs;
  for (int i = 0; i < 16; ++i) {
    xs.push_back(i % 2 == 0 ? mean + delta : mean - delta);
  }
  EXPECT_NEAR(s.stddev() / stddev_of(xs), 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(s.mean(), mean_of(xs));
}

TEST(OnlineSeries, ElementwiseWelford) {
  OnlineSeries s;
  EXPECT_EQ(s.runs(), 0u);
  EXPECT_EQ(s.size(), 0u);
  const std::vector<double> a = {1.0, 10.0, 100.0};
  const std::vector<double> b = {3.0, 30.0, 300.0};
  s.add(a);
  s.add(b);
  EXPECT_EQ(s.runs(), 2u);
  ASSERT_EQ(s.size(), 3u);
  EXPECT_DOUBLE_EQ(s[0].mean(), 2.0);
  EXPECT_DOUBLE_EQ(s[1].mean(), 20.0);
  EXPECT_DOUBLE_EQ(s[2].mean(), 200.0);
  EXPECT_NEAR(s[2].stddev(), std::sqrt(20000.0), 1e-9);
}

TEST(OnlineSeries, TruncatesToShortestRun) {
  // Matches batch aggregate_series: ragged runs clip to the common prefix.
  OnlineSeries s;
  s.add(std::vector<double>{1.0, 2.0, 3.0});
  s.add(std::vector<double>{5.0, 6.0});
  EXPECT_EQ(s.runs(), 2u);
  ASSERT_EQ(s.size(), 2u);
  EXPECT_DOUBLE_EQ(s[0].mean(), 3.0);
  EXPECT_DOUBLE_EQ(s[1].mean(), 4.0);
}

TEST(TCritical, KnownValues) {
  EXPECT_DOUBLE_EQ(t_critical_95(2), 12.706);   // 1 dof
  EXPECT_DOUBLE_EQ(t_critical_95(15), 2.145);   // 14 dof — the paper's n
  EXPECT_DOUBLE_EQ(t_critical_95(31), 2.042);   // 30 dof
  EXPECT_DOUBLE_EQ(t_critical_95(1000), 1.960);
  EXPECT_DOUBLE_EQ(t_critical_95(1), 0.0);
  EXPECT_DOUBLE_EQ(t_critical_95(0), 0.0);
}

TEST(Ci95, HalfWidth) {
  RunningStats s;
  // 15 samples, sd = 1 -> hw = 2.145 / sqrt(15).
  for (int i = 0; i < 15; ++i) s.add(i % 2 == 0 ? 1.0 : -1.0);
  const double hw = ci95_halfwidth(s);
  EXPECT_NEAR(hw, 2.145 * s.stddev() / std::sqrt(15.0), 1e-12);
  RunningStats one;
  one.add(5.0);
  EXPECT_DOUBLE_EQ(ci95_halfwidth(one), 0.0);
}

TEST(SpanStats, MeanStd) {
  const std::vector<double> xs = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(mean_of(xs), 3.0);
  EXPECT_NEAR(stddev_of(xs), std::sqrt(2.5), 1e-12);
}

TEST(Percentile, InterpolatesAndClamps) {
  std::vector<double> xs = {10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile_of(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile_of(xs, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(percentile_of(xs, 0.5), 25.0);
  EXPECT_DOUBLE_EQ(percentile_of({}, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(percentile_of({7.0}, 0.9), 7.0);
}

TEST(PercentileDigest, EmptyAndMean) {
  PercentileDigest d(0.0, 100.0, 100);
  EXPECT_EQ(d.count(), 0u);
  EXPECT_DOUBLE_EQ(d.percentile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(d.mean(), 0.0);
  d.add(10.0);
  d.add(30.0);
  EXPECT_EQ(d.count(), 2u);
  EXPECT_DOUBLE_EQ(d.mean(), 20.0);
}

TEST(PercentileDigest, QuantilesWithinOneBinWidth) {
  // Uniform samples 0..999 into 1000 equal-width bins: the digest's
  // worst-case error contract is one bin width (here 1.0).
  PercentileDigest d(0.0, 1000.0, 1000);
  for (int i = 0; i < 1000; ++i) d.add(double(i));
  std::vector<double> xs;
  for (int i = 0; i < 1000; ++i) xs.push_back(double(i));
  for (double p : {0.1, 0.5, 0.9, 0.95, 0.99}) {
    EXPECT_NEAR(d.percentile(p), percentile_of(xs, p), 1.0) << "p=" << p;
  }
}

TEST(PercentileDigest, ClampsOutOfRangeSamples) {
  PercentileDigest d(0.0, 10.0, 10);
  d.add(-5.0);   // clamps to lo
  d.add(100.0);  // clamps to hi
  EXPECT_EQ(d.count(), 2u);
  EXPECT_GE(d.percentile(0.0), 0.0);
  EXPECT_LE(d.percentile(1.0), 10.0);
}

TEST(PercentileDigest, SinglePointMass) {
  PercentileDigest d(0.0, 50.0, 500);
  for (int i = 0; i < 1000; ++i) d.add(25.0);
  // Every quantile of a point mass lands inside the one occupied bin.
  EXPECT_NEAR(d.percentile(0.01), 25.0, 50.0 / 500);
  EXPECT_NEAR(d.percentile(0.5), 25.0, 50.0 / 500);
  EXPECT_NEAR(d.percentile(0.99), 25.0, 50.0 / 500);
}

}  // namespace
}  // namespace cgs
