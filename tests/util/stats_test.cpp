#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace cgs {
namespace {

TEST(RunningStats, MeanAndVariance) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(RunningStats, EmptyAndSingle) {
  RunningStats s;
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, Reset) {
  RunningStats s;
  s.add(1.0);
  s.add(2.0);
  s.reset();
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(TCritical, KnownValues) {
  EXPECT_DOUBLE_EQ(t_critical_95(2), 12.706);   // 1 dof
  EXPECT_DOUBLE_EQ(t_critical_95(15), 2.145);   // 14 dof — the paper's n
  EXPECT_DOUBLE_EQ(t_critical_95(31), 2.042);   // 30 dof
  EXPECT_DOUBLE_EQ(t_critical_95(1000), 1.960);
  EXPECT_DOUBLE_EQ(t_critical_95(1), 0.0);
  EXPECT_DOUBLE_EQ(t_critical_95(0), 0.0);
}

TEST(Ci95, HalfWidth) {
  RunningStats s;
  // 15 samples, sd = 1 -> hw = 2.145 / sqrt(15).
  for (int i = 0; i < 15; ++i) s.add(i % 2 == 0 ? 1.0 : -1.0);
  const double hw = ci95_halfwidth(s);
  EXPECT_NEAR(hw, 2.145 * s.stddev() / std::sqrt(15.0), 1e-12);
  RunningStats one;
  one.add(5.0);
  EXPECT_DOUBLE_EQ(ci95_halfwidth(one), 0.0);
}

TEST(SpanStats, MeanStd) {
  const std::vector<double> xs = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(mean_of(xs), 3.0);
  EXPECT_NEAR(stddev_of(xs), std::sqrt(2.5), 1e-12);
}

TEST(Percentile, InterpolatesAndClamps) {
  std::vector<double> xs = {10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile_of(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile_of(xs, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(percentile_of(xs, 0.5), 25.0);
  EXPECT_DOUBLE_EQ(percentile_of({}, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(percentile_of({7.0}, 0.9), 7.0);
}

}  // namespace
}  // namespace cgs
