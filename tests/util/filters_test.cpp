#include "util/filters.hpp"

#include <gtest/gtest.h>

namespace cgs {
namespace {

using namespace cgs::literals;

TEST(WindowedMaxFilter, TracksMaximum) {
  WindowedMaxFilter<int> f(10_sec);
  f.update(5, 1_sec);
  f.update(3, 2_sec);
  EXPECT_EQ(f.get(), 5);
  f.update(9, 3_sec);
  EXPECT_EQ(f.get(), 9);
}

TEST(WindowedMaxFilter, ExpiresOldSamples) {
  WindowedMaxFilter<int> f(10_sec);
  f.update(9, 1_sec);
  f.update(5, 2_sec);
  f.update(4, 12_sec);  // the 9 at t=1 is now outside the 10 s window
  EXPECT_EQ(f.get(), 5);
  f.update(1, 13_sec);  // 5 at t=2 expires too
  EXPECT_EQ(f.get(), 4);
}

TEST(WindowedMaxFilter, GetOrOnEmpty) {
  WindowedMaxFilter<int> f(1_sec);
  EXPECT_TRUE(f.empty());
  EXPECT_EQ(f.get_or(-1), -1);
  f.update(3, 1_sec);
  EXPECT_EQ(f.get_or(-1), 3);
}

TEST(WindowedMinFilter, TracksMinimum) {
  WindowedMinFilter<std::int64_t> f(10_sec);
  f.update(100, 1_sec);
  f.update(50, 2_sec);
  f.update(80, 3_sec);
  EXPECT_EQ(f.get(), 50);
  f.update(60, 13_sec);  // the 50 expires
  EXPECT_EQ(f.get(), 60);
}

TEST(WindowedMinFilter, MonotonicDequeBehaviour) {
  WindowedMinFilter<int> f(100_sec);
  for (int i = 10; i > 0; --i) f.update(i, Time(std::chrono::seconds(11 - i)));
  EXPECT_EQ(f.get(), 1);
  // A larger value cannot displace the current min.
  f.update(5, 11_sec);
  EXPECT_EQ(f.get(), 1);
}

TEST(Ewma, ConvergesToConstant) {
  Ewma e(0.2);
  EXPECT_FALSE(e.initialized());
  EXPECT_DOUBLE_EQ(e.value_or(7.0), 7.0);
  for (int i = 0; i < 100; ++i) e.update(10.0);
  EXPECT_NEAR(e.value(), 10.0, 1e-9);
}

TEST(Ewma, FirstSampleInitializes) {
  Ewma e(0.1);
  e.update(42.0);
  EXPECT_DOUBLE_EQ(e.value(), 42.0);
  e.update(52.0);
  EXPECT_DOUBLE_EQ(e.value(), 43.0);  // 42 + 0.1 * 10
}

TEST(RateMeter, ComputesWindowRate) {
  RateMeter m(1_sec);
  m.add(ByteSize(125'000), 500_ms);  // 1 Mbit
  EXPECT_EQ(m.rate(1_sec).bits_per_sec(), 1'000'000);
}

TEST(RateMeter, ExpiresOutsideWindow) {
  RateMeter m(1_sec);
  m.add(ByteSize(125'000), 100_ms);
  m.add(ByteSize(125'000), 1500_ms);
  // At t=2s the first entry (age 1.9 s) is out of the window.
  EXPECT_EQ(m.rate(2_sec).bits_per_sec(), 1'000'000);
  EXPECT_EQ(m.bytes_in_window().bytes(), 125'000);
}

}  // namespace
}  // namespace cgs
