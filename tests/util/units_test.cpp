#include "util/units.hpp"

#include <gtest/gtest.h>

namespace cgs {
namespace {

using namespace cgs::literals;

TEST(Units, ByteSizeArithmetic) {
  EXPECT_EQ((5_KB).bytes(), 5'000);
  EXPECT_EQ((2_MB).bytes(), 2'000'000);
  EXPECT_EQ((1_KB + 500_B).bytes(), 1'500);
  EXPECT_EQ((2_KB - 500_B).bytes(), 1'500);
  EXPECT_EQ((3 * 100_B).bytes(), 300);
  EXPECT_EQ((100_B * 3).bytes(), 300);
  EXPECT_EQ((1_KB).bits(), 8'000);
}

TEST(Units, ByteSizeComparison) {
  EXPECT_LT(1_KB, 2_KB);
  EXPECT_EQ(1000_B, 1_KB);
  EXPECT_GE(1_MB, 999_KB);
}

TEST(Units, BandwidthConstruction) {
  EXPECT_EQ((25_mbps).bits_per_sec(), 25'000'000);
  EXPECT_DOUBLE_EQ((25_mbps).megabits_per_sec(), 25.0);
  EXPECT_EQ(Bandwidth::mbps(1.5).bits_per_sec(), 1'500'000);
  EXPECT_TRUE(Bandwidth::zero().is_zero());
  EXPECT_FALSE((1_kbps).is_zero());
}

TEST(Units, TransmitTime) {
  // 1500 bytes at 12 Mb/s = 12000 bits / 12e6 bps = 1 ms.
  EXPECT_EQ((12_mbps).transmit_time(1500_B), 1_ms);
  // 1 byte at 8 bps = 1 s.
  EXPECT_EQ(Bandwidth::bps(8).transmit_time(1_B), 1_sec);
}

TEST(Units, BytesOver) {
  EXPECT_EQ((8_mbps).bytes_over(1_sec).bytes(), 1'000'000);
  EXPECT_EQ((8_mbps).bytes_over(500_ms).bytes(), 500'000);
  EXPECT_EQ((8_mbps).bytes_over(kTimeZero).bytes(), 0);
}

TEST(Units, BdpMatchesPaperScenario) {
  // Paper: 25 Mb/s with 16.5 ms RTT -> BDP = 25e6 * 0.0165 / 8 bytes.
  const ByteSize b = bdp(25_mbps, std::chrono::microseconds(16'500));
  EXPECT_EQ(b.bytes(), 51'562);
}

TEST(Units, RateOf) {
  EXPECT_EQ(rate_of(1500_B, 1_ms).bits_per_sec(), 12'000'000);
  EXPECT_TRUE(rate_of(1500_B, kTimeZero).is_zero());
  EXPECT_TRUE(rate_of(1500_B, -1_ms + kTimeZero).is_zero());
}

TEST(Units, BandwidthScaling) {
  EXPECT_EQ((10_mbps * 0.5).bits_per_sec(), 5'000'000);
  EXPECT_EQ((0.25 * 10_mbps).bits_per_sec(), 2'500'000);
  EXPECT_EQ((10_mbps + 5_mbps).bits_per_sec(), 15'000'000);
}

TEST(Units, SecondsRoundTrip) {
  EXPECT_DOUBLE_EQ(to_seconds(1500_ms), 1.5);
  EXPECT_EQ(from_seconds(1.5), 1500_ms);
  EXPECT_EQ(from_seconds(0.0), kTimeZero);
}

}  // namespace
}  // namespace cgs
