// End-to-end TCP behaviour over a real simulated bottleneck.
#include <gtest/gtest.h>

#include "net/queue.hpp"
#include "net/router.hpp"
#include "tcp/bulk_app.hpp"

namespace cgs::tcp {
namespace {

using namespace cgs::literals;

struct TcpHarness {
  sim::Simulator sim;
  net::PacketFactory factory;
  net::BottleneckRouter router;
  net::DelayLine access;
  BulkTcpFlow flow;

  TcpHarness(CcAlgo algo, Bandwidth cap, ByteSize queue, Time rtt = 16500_us)
      : router(sim, cap, 1_ms, std::make_unique<net::DropTailQueue>(queue)),
        access(sim, (rtt - 2_ms) / 2, &router.downstream_in()),
        flow(sim, factory, 7, algo) {
    router.register_client(7, &flow.receiver());
    flow.attach(&access,
                &router.make_upstream((rtt - 2_ms) / 2 + 1_ms, &flow.sender()));
  }

  /// Run the flow for `dur`; returns goodput in Mb/s.
  double run_goodput(Time dur) {
    flow.sender().start();
    sim.run_until(dur);
    return rate_of(flow.receiver().bytes_delivered(), dur)
        .megabits_per_sec();
  }
};

class TcpSaturationTest : public ::testing::TestWithParam<CcAlgo> {};

// §3.4: "We verified a solo iperf flow can saturate the link on our testbed
// at all three capacities with a 16.5 ms round-trip time."
TEST_P(TcpSaturationTest, SoloFlowSaturates15) {
  TcpHarness h(GetParam(), 15_mbps, bdp(15_mbps, 16500_us) * 2);
  EXPECT_GT(h.run_goodput(20_sec), 15.0 * 0.85);
}

TEST_P(TcpSaturationTest, SoloFlowSaturates25) {
  TcpHarness h(GetParam(), 25_mbps, bdp(25_mbps, 16500_us) * 2);
  EXPECT_GT(h.run_goodput(20_sec), 25.0 * 0.85);
}

TEST_P(TcpSaturationTest, SoloFlowSaturates35) {
  TcpHarness h(GetParam(), 35_mbps, bdp(35_mbps, 16500_us) * 2);
  EXPECT_GT(h.run_goodput(20_sec), 35.0 * 0.85);
}

TEST_P(TcpSaturationTest, SaturatesEvenShallowQueue) {
  // 0.5x BDP queue: loss-heavy but still most of the link.
  TcpHarness h(GetParam(), 25_mbps, ByteSize(bdp(25_mbps, 16500_us).bytes() / 2));
  EXPECT_GT(h.run_goodput(20_sec), 25.0 * 0.70);
}

TEST_P(TcpSaturationTest, NoForwardProgressWithoutStart) {
  TcpHarness h(GetParam(), 25_mbps, 100_KB);
  h.sim.run_until(1_sec);
  EXPECT_EQ(h.flow.receiver().bytes_delivered().bytes(), 0);
}

TEST_P(TcpSaturationTest, StopDrainsInflight) {
  TcpHarness h(GetParam(), 25_mbps, 100_KB);
  h.flow.sender().start();
  h.sim.run_until(5_sec);
  h.flow.sender().stop();
  h.sim.run_until(10_sec);
  EXPECT_EQ(h.flow.sender().inflight().bytes(), 0);
  EXPECT_FALSE(h.flow.sender().running());
}

INSTANTIATE_TEST_SUITE_P(AllAlgos, TcpSaturationTest,
                         ::testing::Values(CcAlgo::kCubic, CcAlgo::kBbr,
                                           CcAlgo::kReno, CcAlgo::kVegas),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

TEST(TcpE2e, CubicFillsQueueToLoss) {
  TcpHarness h(CcAlgo::kCubic, 25_mbps, bdp(25_mbps, 16500_us) * 2);
  h.flow.sender().start();
  h.sim.run_until(30_sec);
  // Loss-based control must have experienced drops.
  EXPECT_GT(h.router.bottleneck().queue().drops_total(), 0u);
  EXPECT_GT(h.flow.sender().loss_episodes_total(), 0u);
}

TEST(TcpE2e, BbrKeepsQueueShorterThanCubic) {
  // The paper's §4.3 explanation: BBR's 2xBDP inflight cap bounds queueing,
  // Cubic fills whatever the queue offers. With a 7x queue the time-average
  // occupancy under Cubic must exceed that under BBR.
  auto avg_queue = [](CcAlgo algo) {
    TcpHarness h(algo, 25_mbps, bdp(25_mbps, 16500_us) * 7);
    h.flow.sender().start();
    double sum = 0;
    int n = 0;
    sim::PeriodicTimer probe(h.sim, 100_ms, [&] {
      if (h.sim.now() > 5_sec) {
        sum += double(h.router.bottleneck().queue().byte_length().bytes());
        ++n;
      }
    });
    probe.start();
    h.sim.run_until(30_sec);
    return sum / n;
  };
  const double cubic_q = avg_queue(CcAlgo::kCubic);
  const double bbr_q = avg_queue(CcAlgo::kBbr);
  EXPECT_GT(cubic_q, bbr_q * 1.5);
}

TEST(TcpE2e, RetransmissionsRecoverAllData) {
  // Shallow queue forces losses; cumulative delivery must still be
  // contiguous (receiver only counts in-order bytes).
  TcpHarness h(CcAlgo::kCubic, 10_mbps,
               ByteSize(bdp(10_mbps, 16500_us).bytes() / 2));
  h.flow.sender().start();
  h.sim.run_until(10_sec);
  EXPECT_GT(h.flow.sender().retransmits_total(), 0u);
  // Everything acked was delivered in order.
  EXPECT_GE(h.flow.receiver().bytes_delivered().bytes(),
            h.flow.sender().bytes_acked().bytes() -
                2 * net::kTcpMss);
}

TEST(TcpE2e, RttInflatesWithQueueUnderCubic) {
  TcpHarness h(CcAlgo::kCubic, 25_mbps, bdp(25_mbps, 16500_us) * 7);
  h.flow.sender().start();
  h.sim.run_until(20_sec);
  // srtt should reflect substantial queueing above the 16.5 ms base.
  EXPECT_GT(to_seconds(h.flow.sender().rtt().srtt()), 0.030);
}

TEST(TcpE2e, DeterministicAcrossRuns) {
  auto run_once = [] {
    TcpHarness h(CcAlgo::kCubic, 25_mbps, 50_KB);
    h.flow.sender().start();
    h.sim.run_until(10_sec);
    return std::tuple{h.flow.receiver().bytes_delivered().bytes(),
                      h.flow.sender().retransmits_total(),
                      h.sim.processed_events()};
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace cgs::tcp
