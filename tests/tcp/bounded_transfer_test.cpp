// Bounded (HTTP-response-style) transfers on the TCP sender.
#include <gtest/gtest.h>

#include "core/metrics.hpp"
#include "net/queue.hpp"
#include "net/router.hpp"
#include "tcp/bulk_app.hpp"

namespace cgs::tcp {
namespace {

using namespace cgs::literals;

struct Harness {
  sim::Simulator sim;
  net::PacketFactory factory;
  net::BottleneckRouter router;
  net::DelayLine access;
  BulkTcpFlow flow;

  explicit Harness(Bandwidth cap = 25_mbps,
                   CcAlgo algo = CcAlgo::kCubic)
      : router(sim, cap, 1_ms,
               std::make_unique<net::DropTailQueue>(
                   bdp(cap, Time(16500_us)) * 2)),
        access(sim, Time(7250_us), &router.downstream_in()),
        flow(sim, factory, 4, algo) {
    router.register_client(4, &flow.receiver());
    flow.attach(&access,
                &router.make_upstream(Time(8250_us), &flow.sender()));
  }
};

TEST(BoundedTransfer, DeliversExactlyTheRequestedBytes) {
  Harness h;
  bool done = false;
  h.flow.sender().send_bounded(ByteSize(500'000), [&] { done = true; });
  h.sim.run_until(30_sec);
  EXPECT_TRUE(done);
  EXPECT_EQ(h.flow.receiver().bytes_delivered().bytes(), 500'000);
  EXPECT_EQ(h.flow.sender().inflight().bytes(), 0);
}

TEST(BoundedTransfer, CompletionFiresAfterFullAck) {
  Harness h;
  Time done_at = kTimeZero;
  h.flow.sender().send_bounded(ByteSize(100'000), [&] {
    done_at = h.sim.now();
  });
  h.sim.run_until(30_sec);
  ASSERT_GT(done_at, kTimeZero);
  // 100 kB at 25 Mb/s needs >= 32 ms + RTT; completion cannot be instant.
  EXPECT_GT(done_at, 40_ms);
}

TEST(BoundedTransfer, BackToBackTransfers) {
  Harness h;
  int completed = 0;
  std::function<void()> next = [&] {
    ++completed;
    if (completed < 5) {
      h.flow.sender().send_bounded(ByteSize(200'000), next);
    }
  };
  h.flow.sender().send_bounded(ByteSize(200'000), next);
  h.sim.run_until(60_sec);
  EXPECT_EQ(completed, 5);
  EXPECT_EQ(h.flow.receiver().bytes_delivered().bytes(), 5 * 200'000);
}

TEST(BoundedTransfer, SurvivesLossyLink) {
  // Tiny queue forces retransmissions; the transfer must still complete
  // exactly.
  sim::Simulator sim;
  net::PacketFactory factory;
  net::BottleneckRouter router(
      sim, Bandwidth::mbps(10.0), 1_ms,
      std::make_unique<net::DropTailQueue>(ByteSize(8'000)));
  net::DelayLine access(sim, Time(7250_us), &router.downstream_in());
  BulkTcpFlow flow(sim, factory, 4, CcAlgo::kCubic);
  router.register_client(4, &flow.receiver());
  flow.attach(&access, &router.make_upstream(Time(8250_us), &flow.sender()));

  bool done = false;
  flow.sender().send_bounded(ByteSize(2'000'000), [&] { done = true; });
  sim.run_until(120_sec);
  EXPECT_TRUE(done);
  EXPECT_GT(flow.sender().retransmits_total(), 0u);
  EXPECT_EQ(flow.receiver().bytes_delivered().bytes(), 2'000'000);
}

TEST(BoundedTransfer, LastSegmentMayBeShort) {
  Harness h;
  bool done = false;
  // Not a multiple of the MSS (1448).
  h.flow.sender().send_bounded(ByteSize(10'001), [&] { done = true; });
  h.sim.run_until(10_sec);
  EXPECT_TRUE(done);
  EXPECT_EQ(h.flow.receiver().bytes_delivered().bytes(), 10'001);
}

TEST(HarmMetric, Definitions) {
  EXPECT_DOUBLE_EQ(cgs::core::harm_more_is_better(20.0, 10.0), 0.5);
  EXPECT_DOUBLE_EQ(cgs::core::harm_more_is_better(20.0, 25.0), 0.0);
  EXPECT_DOUBLE_EQ(cgs::core::harm_more_is_better(0.0, 5.0), 0.0);
  EXPECT_DOUBLE_EQ(cgs::core::harm_less_is_better(20.0, 40.0), 0.5);
  EXPECT_DOUBLE_EQ(cgs::core::harm_less_is_better(40.0, 40.0), 0.0);
}

}  // namespace
}  // namespace cgs::tcp
