// TCP endpoint behaviour under injected path faults: multi-second
// blackouts (RTO backoff + cap), reordering (spurious dupACKs), and
// bursty Gilbert-Elliott loss against a CoDel bottleneck.
#include <gtest/gtest.h>

#include "net/codel.hpp"
#include "net/impairment.hpp"
#include "net/queue.hpp"
#include "net/router.hpp"
#include "tcp/bulk_app.hpp"

namespace cgs::tcp {
namespace {

using namespace cgs::literals;

/// TcpHarness with a netem-style impairment stage on the downstream path
/// (sender -> access pad -> impairment -> bottleneck).
struct ImpairedTcpHarness {
  sim::Simulator sim;
  net::PacketFactory factory;
  net::BottleneckRouter router;
  net::Impairment impair;
  net::DelayLine access;
  BulkTcpFlow flow;

  ImpairedTcpHarness(CcAlgo algo, Bandwidth cap, std::unique_ptr<net::Queue> q,
                     net::ImpairmentConfig cfg, Time rtt = 16500_us)
      : router(sim, cap, 1_ms, std::move(q)),
        impair(sim, factory, "down", std::move(cfg), Pcg32(7, 0xd01),
               &router.downstream_in()),
        access(sim, (rtt - 2_ms) / 2, &impair),
        flow(sim, factory, 7, algo) {
    router.register_client(7, &flow.receiver());
    flow.attach(&access,
                &router.make_upstream((rtt - 2_ms) / 2 + 1_ms, &flow.sender()));
  }
};

TEST(TcpRobustness, RtoBacksOffExponentiallyAcrossBlackout) {
  net::ImpairmentConfig cfg;
  cfg.outages.push_back({2_sec, 7_sec, net::OutagePolicy::kDrop});
  ImpairedTcpHarness h(CcAlgo::kCubic, 25_mbps,
                       std::make_unique<net::DropTailQueue>(100_KB),
                       cfg);
  // A livelocked retransmit loop would trip this; a healthy run is far under.
  h.sim.set_watchdog(10'000'000);
  h.flow.sender().start();
  h.sim.run_until(2_sec);
  const auto before = h.flow.receiver().bytes_delivered().bytes();
  EXPECT_GT(before, 0);

  h.sim.run_until(7_sec);
  // With min-RTO 200 ms and doubling (0.2, 0.4, 0.8, 1.6, 3.2 s) a 5 s
  // blackout fits about 5 RTO firings; a non-backed-off sender would fire
  // ~25 times and a livelocked one thousands.
  const auto rtos = h.flow.sender().rto_total();
  EXPECT_GE(rtos, 2u);
  EXPECT_LE(rtos, 8u);

  h.sim.run_until(20_sec);
  const auto after = h.flow.receiver().bytes_delivered().bytes();
  // The flow recovered: substantial new data landed after the outage.
  EXPECT_GT(after, before + 10'000'000);
  // No duplicate delivery: contiguous bytes at the receiver may lead the
  // sender's cumulative ACK only by the ACKs still in flight (~1 BDP).
  EXPECT_LE(after, h.flow.sender().bytes_acked().bytes() + 100'000);
}

TEST(TcpRobustness, RtoCapBoundsRetryGapAfterLongBlackout) {
  // Across a 128 s blackout the doubling sequence alone would push the next
  // retry past t=206 s; the 60 s ceiling (TcpSender::kMaxRto) guarantees a
  // probe lands within one cap interval of the link returning at t=130 s.
  net::ImpairmentConfig cfg;
  cfg.outages.push_back({2_sec, 130_sec, net::OutagePolicy::kDrop});
  ImpairedTcpHarness h(CcAlgo::kCubic, 25_mbps,
                       std::make_unique<net::DropTailQueue>(100_KB),
                       cfg);
  h.sim.set_watchdog(50'000'000);
  h.flow.sender().start();
  h.sim.run_until(130_sec);
  const auto during = h.flow.receiver().bytes_delivered().bytes();
  const auto rtos_during = h.flow.sender().rto_total();
  // Exponential backoff: ~10 firings over 128 s, not 640.
  EXPECT_LE(rtos_during, 12u);

  h.sim.run_until(Time(std::chrono::seconds(130)) + TcpSender::kMaxRto +
                  5_sec);
  EXPECT_GT(h.flow.receiver().bytes_delivered().bytes(), during + 1'000'000)
      << "sender did not probe within one capped RTO of the link returning";
}

TEST(TcpRobustness, ReorderingDupAcksDoNotStallTheFlow) {
  // 2 ms of reordering jitter on a 16.5 ms RTT path: enough to generate
  // spurious dupACK bursts (and the occasional spurious fast retransmit).
  // The sender must keep exiting recovery and hold most of the link.
  net::ImpairmentConfig cfg;
  cfg.jitter = 2_ms;
  cfg.allow_reorder = true;
  ImpairedTcpHarness h(CcAlgo::kCubic, 25_mbps,
                       std::make_unique<net::DropTailQueue>(
                           bdp(25_mbps, 16500_us) * 2),
                       cfg);
  h.sim.set_watchdog(50'000'000);
  h.flow.sender().start();
  h.sim.run_until(15_sec);
  const double goodput =
      rate_of(h.flow.receiver().bytes_delivered(), 15_sec).megabits_per_sec();
  // Spurious fast retransmits cost throughput (this stack has no RACK-style
  // reordering tolerance) but must never wedge the flow.
  EXPECT_GT(goodput, 25.0 * 0.25);
  EXPECT_GT(h.flow.sender().retransmits_total(), 0u);
  // Contiguous delivery despite the reordering (ACK-in-flight slack).
  EXPECT_LE(h.flow.receiver().bytes_delivered().bytes(),
            h.flow.sender().bytes_acked().bytes() + 100'000);
}

TEST(TcpRobustness, SurvivesGilbertElliottLossIntoCodel) {
  // ~2% bursty loss in front of a CoDel bottleneck: the combination of
  // SACK recovery and CoDel's own drops must not wedge either endpoint.
  net::ImpairmentConfig cfg;
  cfg.gilbert_elliott = net::GilbertElliott{
      .p_good_bad = 0.005, .p_bad_good = 0.25, .good_loss = 0.0,
      .bad_loss = 1.0};
  net::CodelParams params;
  params.capacity = bdp(25_mbps, 16500_us) * 2;
  ImpairedTcpHarness h(CcAlgo::kCubic, 25_mbps,
                       std::make_unique<net::CodelQueue>(params),
                       cfg);
  h.sim.set_watchdog(50'000'000);
  h.flow.sender().start();
  h.sim.run_until(20_sec);
  const double goodput =
      rate_of(h.flow.receiver().bytes_delivered(), 20_sec).megabits_per_sec();
  // Loss-limited, not wedged: real progress, real recoveries.
  EXPECT_GT(goodput, 2.0);
  EXPECT_GT(h.flow.sender().retransmits_total(), 0u);
  EXPECT_GT(h.impair.counters().dropped_random, 0u);
  EXPECT_LE(h.flow.receiver().bytes_delivered().bytes(),
            h.flow.sender().bytes_acked().bytes() + 100'000);
}

TEST(TcpRobustness, BlackoutRecoveryIsDeterministic) {
  auto run_once = [] {
    net::ImpairmentConfig cfg;
    cfg.outages.push_back({1_sec, 3_sec, net::OutagePolicy::kDrop});
    cfg.loss_rate = 0.01;
    ImpairedTcpHarness h(CcAlgo::kBbr, 25_mbps,
                         std::make_unique<net::DropTailQueue>(100_KB),
                         cfg);
    h.flow.sender().start();
    h.sim.run_until(10_sec);
    return std::tuple{h.flow.receiver().bytes_delivered().bytes(),
                      h.flow.sender().retransmits_total(),
                      h.flow.sender().rto_total(),
                      h.sim.processed_events()};
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace cgs::tcp
