#include "tcp/rtt_estimator.hpp"

#include <gtest/gtest.h>

namespace cgs::tcp {
namespace {

using namespace cgs::literals;

TEST(RttEstimator, InitialRtoIsOneSecond) {
  RttEstimator e;
  EXPECT_FALSE(e.has_sample());
  EXPECT_EQ(e.rto(), 1_sec);
}

TEST(RttEstimator, FirstSampleSeedsSrttAndVar) {
  RttEstimator e;
  e.update(100_ms);
  EXPECT_TRUE(e.has_sample());
  EXPECT_EQ(e.srtt(), 100_ms);
  EXPECT_EQ(e.rttvar(), 50_ms);
  // RTO = srtt + 4*var = 300 ms.
  EXPECT_EQ(e.rto(), 300_ms);
}

TEST(RttEstimator, ConvergesOnConstantRtt) {
  RttEstimator e;
  for (int i = 0; i < 100; ++i) e.update(50_ms);
  EXPECT_NEAR(to_seconds(e.srtt()), 0.050, 1e-4);
  EXPECT_LT(e.rttvar(), 1_ms);
  // RTO floors at 200 ms even when srtt + 4var is lower.
  EXPECT_EQ(e.rto(), 200_ms);
}

TEST(RttEstimator, VarianceGrowsWithJitter) {
  RttEstimator low, high;
  for (int i = 0; i < 50; ++i) {
    low.update(50_ms);
    high.update(i % 2 == 0 ? 20_ms : 80_ms);
  }
  EXPECT_GT(high.rttvar(), low.rttvar());
  // Both RTOs may clamp to the 200 ms floor; the raw srtt+4var must differ.
  EXPECT_GT(high.srtt() + 4 * high.rttvar(), low.srtt() + 4 * low.rttvar());
}

TEST(RttEstimator, TracksLatestSample) {
  RttEstimator e;
  e.update(10_ms);
  e.update(30_ms);
  EXPECT_EQ(e.latest(), 30_ms);
}

TEST(RttEstimator, RfcExampleWeights) {
  RttEstimator e;
  e.update(100_ms);
  e.update(200_ms);
  // srtt = 7/8*100 + 1/8*200 = 112.5 ms
  EXPECT_NEAR(to_seconds(e.srtt()) * 1e3, 112.5, 0.01);
  // rttvar = 3/4*50 + 1/4*|200-100| = 62.5 ms
  EXPECT_NEAR(to_seconds(e.rttvar()) * 1e3, 62.5, 0.01);
}

}  // namespace
}  // namespace cgs::tcp
