#include <gtest/gtest.h>

#include "tcp/reno.hpp"
#include "tcp/vegas.hpp"

namespace cgs::tcp {
namespace {

using namespace cgs::literals;

constexpr ByteSize kMss{1448};

AckEvent ack(Time now, std::int64_t bytes, Time rtt,
             ByteSize delivered_total = ByteSize(0),
             ByteSize inflight = ByteSize(14480)) {
  AckEvent ev;
  ev.now = now;
  ev.acked_bytes = ByteSize(bytes);
  ev.rtt = rtt;
  ev.delivered_total = delivered_total;
  ev.inflight = inflight;
  return ev;
}

TEST(Reno, SlowStartGrowsByAckedBytes) {
  Reno r(kMss);
  const auto before = r.cwnd();
  r.on_ack(ack(1_ms, 1448, 20_ms));
  EXPECT_EQ(r.cwnd().bytes(), before.bytes() + 1448);
  EXPECT_TRUE(r.in_slow_start());
}

TEST(Reno, CongestionAvoidanceAddsOneMssPerWindow) {
  Reno r(kMss);
  r.on_loss_episode({1_ms, ByteSize(0), kMss});  // leave slow start
  EXPECT_FALSE(r.in_slow_start());
  const auto w = r.cwnd();
  // Ack one full window: +1 MSS.
  std::int64_t acked = 0;
  Time t = 2_ms;
  while (acked < w.bytes()) {
    r.on_ack(ack(t, 1448, 20_ms));
    acked += 1448;
    t += 1_ms;
  }
  EXPECT_NEAR(double(r.cwnd().bytes()), double(w.bytes() + 1448), 1448.0);
}

TEST(Reno, LossHalvesWindow) {
  Reno r(kMss);
  for (int i = 0; i < 100; ++i) r.on_ack(ack(1_ms * i, 1448, 20_ms));
  const auto before = r.cwnd();
  r.on_loss_episode({200_ms, ByteSize(0), kMss});
  EXPECT_EQ(r.cwnd().bytes(), before.bytes() / 2);
  EXPECT_EQ(r.ssthresh(), r.cwnd());
}

TEST(Reno, RtoCollapsesToOneMss) {
  Reno r(kMss);
  for (int i = 0; i < 100; ++i) r.on_ack(ack(1_ms * i, 1448, 20_ms));
  r.on_rto(200_ms);
  EXPECT_EQ(r.cwnd().bytes(), 1448);
}

TEST(Reno, RecoveryFreezes) {
  Reno r(kMss);
  const auto w = r.cwnd();
  auto ev = ack(1_ms, 1448, 20_ms);
  ev.in_recovery = true;
  r.on_ack(ev);
  EXPECT_EQ(r.cwnd(), w);
}

TEST(Vegas, IncreasesWhenDelayLow) {
  Vegas v(kMss);
  v.on_loss_episode({1_ms, ByteSize(0), kMss});  // leave slow start
  const auto w = v.cwnd();
  // RTT == base RTT: expected == actual -> diff 0 < alpha -> +1 MSS per RTT.
  ByteSize delivered{0};
  Time t = 2_ms;
  for (int i = 0; i < 40; ++i) {
    delivered += kMss;
    v.on_ack(ack(t, 1448, 20_ms, delivered, ByteSize(5 * 1448)));
    t += 1_ms;
  }
  EXPECT_GT(v.cwnd(), w);
}

TEST(Vegas, BacksOffWhenQueueingDetected) {
  Vegas v(kMss);
  // Establish base RTT = 20 ms.
  ByteSize delivered{0};
  Time t = 1_ms;
  for (int i = 0; i < 30; ++i) {
    delivered += kMss;
    v.on_ack(ack(t, 1448, 20_ms, delivered, ByteSize(5 * 1448)));
    t += 1_ms;
  }
  const auto w = v.cwnd();
  // RTT doubles (heavy queuing): diff >> beta -> decrease per RTT.
  for (int i = 0; i < 60; ++i) {
    delivered += kMss;
    v.on_ack(ack(t, 1448, 40_ms, delivered, ByteSize(5 * 1448)));
    t += 1_ms;
  }
  EXPECT_LT(v.cwnd(), w);
}

TEST(Vegas, TracksBaseRttMinimum) {
  Vegas v(kMss);
  v.on_ack(ack(1_ms, 1448, 30_ms));
  v.on_ack(ack(2_ms, 1448, 22_ms));
  v.on_ack(ack(3_ms, 1448, 35_ms));
  EXPECT_EQ(v.base_rtt(), 22_ms);
}

TEST(Vegas, NamesAndFloors) {
  Vegas v(kMss);
  EXPECT_EQ(v.name(), "vegas");
  for (int i = 0; i < 30; ++i) v.on_loss_episode({1_ms * i, ByteSize(0), kMss});
  EXPECT_GE(v.cwnd().bytes(), 2 * 1448);
  v.on_rto(1_sec);
  EXPECT_GE(v.cwnd().bytes(), 2 * 1448);
}

TEST(CcFactory, MakesAllAlgorithms) {
  for (auto algo : {CcAlgo::kCubic, CcAlgo::kBbr, CcAlgo::kReno,
                    CcAlgo::kVegas}) {
    auto cc = make_cc(algo, kMss);
    ASSERT_NE(cc, nullptr);
    EXPECT_EQ(cc->name(), to_string(algo));
    EXPECT_GT(cc->cwnd().bytes(), 0);
  }
}

TEST(CcFactory, OnlyBbrIsRateDriven) {
  EXPECT_TRUE(make_cc(CcAlgo::kBbr, kMss)->rate_driven());
  EXPECT_FALSE(make_cc(CcAlgo::kCubic, kMss)->rate_driven());
  EXPECT_FALSE(make_cc(CcAlgo::kReno, kMss)->rate_driven());
  EXPECT_TRUE(make_cc(CcAlgo::kBbr, kMss)->pacing_rate().bits_per_sec() > 0);
  EXPECT_TRUE(make_cc(CcAlgo::kCubic, kMss)->pacing_rate().is_zero());
}

}  // namespace
}  // namespace cgs::tcp
