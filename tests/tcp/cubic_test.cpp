#include "tcp/cubic.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace cgs::tcp {
namespace {

using namespace cgs::literals;

constexpr ByteSize kMss{1448};

AckEvent ack_at(Time now, std::int64_t bytes = 1448,
                Time rtt = 20_ms, bool in_recovery = false) {
  AckEvent ev;
  ev.now = now;
  ev.acked_bytes = ByteSize(bytes);
  ev.rtt = rtt;
  ev.in_recovery = in_recovery;
  return ev;
}

TEST(Cubic, StartsInSlowStartWithIw10) {
  Cubic c(kMss);
  EXPECT_TRUE(c.in_slow_start());
  EXPECT_EQ(c.cwnd().bytes(), 10 * 1448);
}

TEST(Cubic, SlowStartDoublesPerRtt) {
  Cubic c(kMss);
  const double before = c.cwnd_segments();
  // Ack one full window.
  for (int i = 0; i < 10; ++i) c.on_ack(ack_at(1_ms * i));
  EXPECT_NEAR(c.cwnd_segments(), before * 2, 0.01);
}

TEST(Cubic, LossReducesWindowByBeta) {
  Cubic c(kMss);
  for (int i = 0; i < 100; ++i) c.on_ack(ack_at(1_ms * i));
  const double before = c.cwnd_segments();
  c.on_loss_episode({100_ms, ByteSize(100000), kMss});
  EXPECT_NEAR(c.cwnd_segments(), before * 0.7, 0.01);
  EXPECT_FALSE(c.in_slow_start());
}

TEST(Cubic, RecoveryFreezesWindow) {
  Cubic c(kMss);
  c.on_loss_episode({1_ms, ByteSize(10000), kMss});
  const double w = c.cwnd_segments();
  c.on_ack(ack_at(2_ms, 1448, 20_ms, /*in_recovery=*/true));
  EXPECT_DOUBLE_EQ(c.cwnd_segments(), w);
}

TEST(Cubic, ConcaveGrowthAfterLoss) {
  Cubic c(kMss);
  for (int i = 0; i < 200; ++i) c.on_ack(ack_at(1_ms * i));
  c.on_loss_episode({200_ms, ByteSize(100000), kMss});
  const double w0 = c.cwnd_segments();

  // Ack steadily for 2 simulated seconds; window must grow back toward and
  // past w_max (cubic's plateau then convex probe).
  Time t = 200_ms;
  double w1 = 0;
  for (int i = 0; i < 100; ++i) {
    t += 20_ms;
    c.on_ack(ack_at(t));
    w1 = c.cwnd_segments();
  }
  EXPECT_GT(w1, w0);
}

TEST(Cubic, CubicFunctionReturnsToWmaxAroundK) {
  // The defining property: the window regrows to ~W_max around t = K
  // after a loss at W_max, given an ample ACK supply.
  Cubic c(kMss);
  for (int i = 0; i < 300; ++i) c.on_ack(ack_at(1_ms * i));
  const double w_max = c.cwnd_segments();
  c.on_loss_episode({300_ms, ByteSize(100000), kMss});
  // K = cbrt(w_max * 0.3 / 0.4) seconds.
  const double k = std::cbrt(w_max * 0.3 / 0.4);

  // Supply a full window of ACKed bytes per RTT (what a real cwnd-sized
  // flight generates) so the window can track the cubic curve.  Use a long
  // RTT (100 ms): at short RTTs the RFC 8312 TCP-friendly region would
  // legitimately dominate the cubic term.
  Time t = 300_ms;
  const Time k_time = t + from_seconds(1.1 * k);
  while (t < k_time) {
    t += 100_ms;
    c.on_ack(ack_at(t, c.cwnd().bytes(), 100_ms));
  }
  EXPECT_NEAR(c.cwnd_segments(), w_max, w_max * 0.15);
  // And it keeps probing beyond W_max afterwards (convex region).
  for (int i = 0; i < 60; ++i) {
    t += 100_ms;
    c.on_ack(ack_at(t, c.cwnd().bytes(), 100_ms));
  }
  EXPECT_GT(c.cwnd_segments(), w_max);
}

TEST(Cubic, RtoCollapsesToOneSegment) {
  Cubic c(kMss);
  for (int i = 0; i < 50; ++i) c.on_ack(ack_at(1_ms * i));
  c.on_rto(50_ms);
  EXPECT_NEAR(c.cwnd_segments(), 1.0, 1e-9);
  // cwnd() floors at 2 segments for usability.
  EXPECT_EQ(c.cwnd().bytes(), 2 * 1448);
}

TEST(Cubic, FastConvergenceShrinksWmax) {
  Cubic c(kMss);
  for (int i = 0; i < 200; ++i) c.on_ack(ack_at(1_ms * i));
  c.on_loss_episode({200_ms, ByteSize(0), kMss});
  const double w_after_first = c.cwnd_segments();
  // Second loss below the previous w_max triggers fast convergence: the
  // next w_max is below the current cwnd.
  c.on_loss_episode({300_ms, ByteSize(0), kMss});
  EXPECT_LT(c.cwnd_segments(), w_after_first);
}

TEST(Cubic, NeverBelowTwoSegments) {
  Cubic c(kMss);
  for (int i = 0; i < 20; ++i) c.on_loss_episode({1_ms * i, ByteSize(0), kMss});
  EXPECT_GE(c.cwnd().bytes(), 2 * 1448);
}

}  // namespace
}  // namespace cgs::tcp
