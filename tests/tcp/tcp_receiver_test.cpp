// Unit tests for the TCP receiver's cumulative-ACK + SACK machinery.
#include "tcp/tcp_receiver.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace cgs::tcp {
namespace {

using namespace cgs::literals;

class AckCollector final : public net::PacketSink {
 public:
  void handle_packet(net::PacketPtr pkt) override {
    acks.push_back(std::get<net::TcpHeader>(pkt->header));
  }
  std::vector<net::TcpHeader> acks;
};

struct Rx {
  sim::Simulator sim;
  net::PacketFactory factory;
  AckCollector sink;
  TcpReceiver recv{sim, factory, 1};

  Rx() { recv.set_output(&sink); }

  void data(std::uint64_t seq, std::uint32_t len) {
    net::TcpHeader h;
    h.seq = seq;
    h.len = len;
    recv.handle_packet(factory.make(1, net::TrafficClass::kTcpData,
                                    std::int32_t(len) + 40, sim.now(), h));
  }
  const net::TcpHeader& last_ack() { return sink.acks.back(); }
};

TEST(TcpReceiver, InOrderAdvancesCumAck) {
  Rx rx;
  rx.data(0, 1000);
  EXPECT_EQ(rx.last_ack().ack, 1000u);
  rx.data(1000, 1000);
  EXPECT_EQ(rx.last_ack().ack, 2000u);
  EXPECT_EQ(rx.recv.bytes_delivered().bytes(), 2000);
}

TEST(TcpReceiver, GapHoldsCumAckAndSacks) {
  Rx rx;
  rx.data(0, 1000);
  rx.data(2000, 1000);  // hole at [1000, 2000)
  const auto& ack = rx.last_ack();
  EXPECT_EQ(ack.ack, 1000u);
  EXPECT_EQ(ack.sacks[0].start, 2000u);
  EXPECT_EQ(ack.sacks[0].end, 3000u);
}

TEST(TcpReceiver, FillingHoleAdvancesPastSackedData) {
  Rx rx;
  rx.data(0, 1000);
  rx.data(2000, 1000);
  rx.data(1000, 1000);  // fills the hole
  EXPECT_EQ(rx.last_ack().ack, 3000u);
  EXPECT_TRUE(rx.last_ack().sacks[0].empty());
}

TEST(TcpReceiver, MergesAdjacentOooBlocks) {
  Rx rx;
  rx.data(0, 1000);
  rx.data(2000, 1000);
  rx.data(3000, 1000);  // extends the block
  const auto& ack = rx.last_ack();
  EXPECT_EQ(ack.sacks[0].start, 2000u);
  EXPECT_EQ(ack.sacks[0].end, 4000u);
}

TEST(TcpReceiver, MostRecentBlockReportedFirst) {
  Rx rx;
  rx.data(0, 1000);
  rx.data(2000, 1000);   // block A
  rx.data(4000, 1000);   // block B (newest)
  const auto& ack = rx.last_ack();
  EXPECT_EQ(ack.sacks[0].start, 4000u);
  EXPECT_EQ(ack.sacks[1].start, 2000u);
}

TEST(TcpReceiver, ManyBlocksRotateThroughSackSlots) {
  Rx rx;
  rx.data(0, 1000);
  // Five disjoint OOO blocks: 2000, 4000, 6000, 8000, 10000.
  for (std::uint64_t s = 2000; s <= 10000; s += 2000) rx.data(s, 1000);
  // Collect reported block starts over several duplicate ACKs.
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 6; ++i) {
    rx.data(0, 1000);  // duplicate triggers another ACK
    for (const auto& b : rx.last_ack().sacks) {
      if (!b.empty()) seen.insert(b.start);
    }
  }
  // Every hidden block must eventually surface.
  EXPECT_EQ(seen.size(), 5u);
}

TEST(TcpReceiver, DuplicateDataReAcked) {
  Rx rx;
  rx.data(0, 1000);
  const auto n = rx.sink.acks.size();
  rx.data(0, 1000);  // spurious retransmission
  EXPECT_EQ(rx.sink.acks.size(), n + 1);
  EXPECT_EQ(rx.last_ack().ack, 1000u);
}

TEST(TcpReceiver, OverlappingSegmentsMerge) {
  Rx rx;
  rx.data(0, 1000);
  rx.data(1500, 1000);
  rx.data(1000, 1000);  // overlaps the OOO block [1500, 2500)
  EXPECT_EQ(rx.last_ack().ack, 2500u);
}

TEST(TcpReceiver, PureAcksIgnored) {
  Rx rx;
  net::TcpHeader h;
  h.is_ack = true;
  h.ack = 5000;
  rx.recv.handle_packet(
      rx.factory.make(1, net::TrafficClass::kTcpAck, 40, kTimeZero, h));
  EXPECT_TRUE(rx.sink.acks.empty());
  EXPECT_EQ(rx.recv.packets_received(), 0u);
}

}  // namespace
}  // namespace cgs::tcp
