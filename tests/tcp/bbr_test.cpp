#include "tcp/bbr.hpp"

#include <gtest/gtest.h>

namespace cgs::tcp {
namespace {

using namespace cgs::literals;

constexpr ByteSize kMss{1448};

AckEvent sample(Time now, Bandwidth rate, Time rtt, ByteSize inflight,
                ByteSize delivered_total, bool app_limited = false) {
  AckEvent ev;
  ev.now = now;
  ev.acked_bytes = kMss;
  ev.rtt = rtt;
  ev.inflight = inflight;
  ev.delivered_total = delivered_total;
  ev.rate.valid = true;
  ev.rate.delivery_rate = rate;
  ev.rate.app_limited = app_limited;
  return ev;
}

/// Feed a steady stream of ACK samples at `rate`/`rtt` and return the BBR.
void feed_steady(Bbr& b, Bandwidth rate, Time rtt, int n, Time start = 1_ms) {
  ByteSize delivered{0};
  Time t = start;
  for (int i = 0; i < n; ++i) {
    delivered += kMss;
    t += 2_ms;
    b.on_ack(sample(t, rate, rtt, bdp(rate, rtt), delivered));
  }
}

TEST(Bbr, StartsInStartupWithHighGain) {
  Bbr b(kMss);
  EXPECT_EQ(b.mode(), Bbr::Mode::kStartup);
  // Initial cwnd: 10 segments * high gain, floored at 4 segments.
  EXPECT_GE(b.cwnd().bytes(), 4 * 1448);
}

TEST(Bbr, BtlBwTracksMaxSample) {
  Bbr b(kMss);
  feed_steady(b, Bandwidth::mbps(10), 20_ms, 50);
  EXPECT_NEAR(b.btl_bw().megabits_per_sec(), 10.0, 0.01);
  feed_steady(b, Bandwidth::mbps(14), 20_ms, 50);
  EXPECT_NEAR(b.btl_bw().megabits_per_sec(), 14.0, 0.01);
}

TEST(Bbr, RtPropTracksMinRtt) {
  Bbr b(kMss);
  feed_steady(b, Bandwidth::mbps(10), 30_ms, 20);
  EXPECT_EQ(b.rt_prop(), 30_ms);
  feed_steady(b, Bandwidth::mbps(10), 18_ms, 20);
  EXPECT_EQ(b.rt_prop(), 18_ms);
  // Larger RTTs do not raise it within the 10 s window.
  feed_steady(b, Bandwidth::mbps(10), 40_ms, 20);
  EXPECT_EQ(b.rt_prop(), 18_ms);
}

TEST(Bbr, ExitsStartupWhenPipeFull) {
  Bbr b(kMss);
  // Plateaued bandwidth for many rounds -> Startup must end.
  feed_steady(b, Bandwidth::mbps(10), 20_ms, 400);
  EXPECT_NE(b.mode(), Bbr::Mode::kStartup);
}

TEST(Bbr, ReachesProbeBwAndCycles) {
  Bbr b(kMss);
  feed_steady(b, Bandwidth::mbps(10), 20_ms, 400);
  // Drain inflight below 1 BDP to trigger ProbeBW entry.
  ByteSize delivered = ByteSize(400 * 1448);
  b.on_ack(sample(2_sec, Bandwidth::mbps(10), 20_ms, ByteSize(1000),
                  delivered));
  EXPECT_EQ(b.mode(), Bbr::Mode::kProbeBw);
  // Pacing gain in ProbeBW is one of the cycle values.
  const double g = double(b.pacing_rate().bits_per_sec()) /
                   double(b.btl_bw().bits_per_sec());
  EXPECT_TRUE(g > 0.74 && g < 1.26);
}

TEST(Bbr, CwndIsTwoBdpInProbeBw) {
  Bbr b(kMss);
  feed_steady(b, Bandwidth::mbps(10), 20_ms, 400);
  ByteSize delivered = ByteSize(400 * 1448);
  b.on_ack(sample(2_sec, Bandwidth::mbps(10), 20_ms, ByteSize(1000),
                  delivered));
  ASSERT_EQ(b.mode(), Bbr::Mode::kProbeBw);
  const ByteSize expect = bdp(Bandwidth::mbps(10), 20_ms);
  EXPECT_NEAR(double(b.cwnd().bytes()), 2.0 * double(expect.bytes()),
              double(expect.bytes()) * 0.05);
}

TEST(Bbr, LossIsIgnored) {
  Bbr b(kMss);
  feed_steady(b, Bandwidth::mbps(10), 20_ms, 100);
  const ByteSize before = b.cwnd();
  for (int i = 0; i < 50; ++i) {
    b.on_loss_episode({1_sec, ByteSize(10000), kMss});
  }
  EXPECT_EQ(b.cwnd(), before);
}

TEST(Bbr, AppLimitedSamplesOnlyRaise) {
  Bbr b(kMss);
  feed_steady(b, Bandwidth::mbps(10), 20_ms, 60);
  EXPECT_NEAR(b.btl_bw().megabits_per_sec(), 10.0, 0.01);
  // App-limited lower samples must not drag the estimate down.
  ByteSize delivered = ByteSize(60 * 1448);
  Time t = 500_ms;
  for (int i = 0; i < 60; ++i) {
    delivered += kMss;
    t += 2_ms;
    b.on_ack(sample(t, Bandwidth::mbps(2), 20_ms, ByteSize(10000), delivered,
                    /*app_limited=*/true));
  }
  EXPECT_NEAR(b.btl_bw().megabits_per_sec(), 10.0, 0.01);
}

TEST(Bbr, ProbeRttAfterTenSecondsWithoutNewMin) {
  Bbr b(kMss);
  feed_steady(b, Bandwidth::mbps(10), 20_ms, 400);
  ByteSize delivered = ByteSize(400 * 1448);
  b.on_ack(sample(2_sec, Bandwidth::mbps(10), 20_ms, ByteSize(1000),
                  delivered));
  ASSERT_EQ(b.mode(), Bbr::Mode::kProbeBw);
  // 11 s pass with RTT above the current min -> ProbeRTT.
  delivered += kMss;
  b.on_ack(sample(13_sec, Bandwidth::mbps(10), 25_ms, ByteSize(50000),
                  delivered));
  EXPECT_EQ(b.mode(), Bbr::Mode::kProbeRtt);
  EXPECT_EQ(b.cwnd().bytes(), 4 * 1448);
}

TEST(Bbr, PacingRatePositiveBeforeFirstSample) {
  Bbr b(kMss);
  EXPECT_GT(b.pacing_rate().bits_per_sec(), 0);
}

}  // namespace
}  // namespace cgs::tcp
