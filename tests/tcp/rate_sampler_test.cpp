#include "tcp/rate_sampler.hpp"

#include <gtest/gtest.h>

namespace cgs::tcp {
namespace {

using namespace cgs::literals;

TEST(RateSampler, SteadyRateMeasured) {
  // Pipeline with 5 segments in flight: send every 10 ms, ack 50 ms after
  // each send, events processed in timestamp order.
  RateSampler s;
  std::vector<TxRecord> recs;
  RateSample last;
  int sent = 0, acked = 0;
  const int n = 30;
  for (Time t = kTimeZero; acked < n; t += 10_ms) {
    if (sent < n) {
      recs.push_back(s.on_send(t, ByteSize(1000 * (sent - acked))));
      ++sent;
    }
    if (t >= 50_ms) {
      last = s.on_ack(recs[std::size_t(acked)], ByteSize(1000), t);
      ++acked;
    }
  }
  ASSERT_TRUE(last.valid);
  // Steady state: 1000 B per 10 ms = 800 kb/s.
  EXPECT_NEAR(last.delivery_rate.megabits_per_sec(), 0.8, 0.05);
}

TEST(RateSampler, IdleRestartResetsClock) {
  RateSampler s;
  auto r1 = s.on_send(kTimeZero, ByteSize(0));  // idle start
  (void)s.on_ack(r1, ByteSize(1000), 20_ms);
  // Long idle, then restart: the idle gap must not count as send time.
  auto r2 = s.on_send(10_sec, ByteSize(0));
  auto rs = s.on_ack(r2, ByteSize(1000), 10_sec + 20_ms);
  ASSERT_TRUE(rs.valid);
  // 1000 B over 20 ms, not over 10 s.
  EXPECT_NEAR(rs.delivery_rate.megabits_per_sec(), 0.4, 0.01);
}

TEST(RateSampler, AppLimitedPropagatesUntilAcked) {
  RateSampler s;
  auto r1 = s.on_send(kTimeZero, ByteSize(0));
  s.set_app_limited(ByteSize(1000), kTimeZero);
  auto r2 = s.on_send(1_ms, ByteSize(1000));
  EXPECT_FALSE(r1.app_limited);
  EXPECT_TRUE(r2.app_limited);
  auto rs1 = s.on_ack(r1, ByteSize(1000), 20_ms);
  EXPECT_FALSE(rs1.app_limited);
  auto rs2 = s.on_ack(r2, ByteSize(1000), 21_ms);
  EXPECT_TRUE(rs2.app_limited);
  // After delivering past the marker, new sends are unconstrained.
  auto r3 = s.on_send(30_ms, ByteSize(0));
  EXPECT_FALSE(r3.app_limited);
}

TEST(RateSampler, DegenerateIntervalInvalid) {
  RateSampler s;
  auto r = s.on_send(kTimeZero, ByteSize(0));
  auto rs = s.on_ack(r, ByteSize(1000), kTimeZero);
  EXPECT_FALSE(rs.valid);
}

TEST(RateSampler, MinIntervalGuardRejectsMicroBursts) {
  RateSampler s;
  s.set_min_interval(10_ms);
  auto r1 = s.on_send(kTimeZero, ByteSize(0));
  (void)s.on_ack(r1, ByteSize(1000), 17_ms);
  // Two back-to-back sends after the ack: the second has both a tiny
  // send-gap and a tiny ack-gap when acked moments later.
  (void)s.on_send(Time(17'100_us), ByteSize(0));
  auto r3 = s.on_send(Time(17'200_us), ByteSize(1000));
  auto rs = s.on_ack(r3, ByteSize(1000), Time(17'400_us));
  EXPECT_FALSE(rs.valid);
  // Without the guard the same sample would be valid.
  RateSampler s2;
  auto q1 = s2.on_send(kTimeZero, ByteSize(0));
  (void)s2.on_ack(q1, ByteSize(1000), 17_ms);
  (void)s2.on_send(Time(17'100_us), ByteSize(0));
  auto q3 = s2.on_send(Time(17'200_us), ByteSize(1000));
  EXPECT_TRUE(s2.on_ack(q3, ByteSize(1000), Time(17'400_us)).valid);
}

TEST(RateSampler, DeliveredTotalAccumulates) {
  RateSampler s;
  auto r1 = s.on_send(kTimeZero, ByteSize(0));
  auto r2 = s.on_send(1_ms, ByteSize(1000));
  (void)s.on_ack(r1, ByteSize(1000), 20_ms);
  (void)s.on_ack(r2, ByteSize(1500), 21_ms);
  EXPECT_EQ(s.delivered_total().bytes(), 2500);
}

}  // namespace
}  // namespace cgs::tcp
