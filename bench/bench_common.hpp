// Shared helpers for the table/figure regeneration binaries: a tiny flag
// parser and condition-grid utilities.
#pragma once

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "cgstream.hpp"

namespace bench {

struct CommonArgs {
  int runs = 5;          // paper: 15 (--runs=15); default trimmed for time
  int threads = 0;       // 0 = hardware concurrency
  bool csv = false;      // also write CSV files next to the binary
  bool color = true;     // ANSI heatmap colouring
  std::uint64_t seed = 42;
  std::string csv_prefix;
};

inline CommonArgs parse_args(int argc, char** argv,
                             const char* default_prefix) {
  CommonArgs a;
  a.csv_prefix = default_prefix;
  a.color = ::isatty(1) != 0;  // plain text when piped to a file
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--runs=", 7) == 0) {
      a.runs = std::atoi(arg + 7);
    } else if (std::strncmp(arg, "--threads=", 10) == 0) {
      a.threads = std::atoi(arg + 10);
    } else if (std::strcmp(arg, "--csv") == 0) {
      a.csv = true;
    } else if (std::strcmp(arg, "--no-color") == 0) {
      a.color = false;
    } else if (std::strncmp(arg, "--seed=", 7) == 0) {
      a.seed = std::strtoull(arg + 7, nullptr, 10);
    } else if (std::strcmp(arg, "--help") == 0) {
      std::printf(
          "usage: %s [--runs=N] [--threads=N] [--csv] [--no-color] "
          "[--seed=S]\n",
          argv[0]);
      std::exit(0);
    }
  }
  return a;
}

/// The paper's base scenario for a grid cell.
inline cgs::core::Scenario make_scenario(cgs::stream::GameSystem system,
                                         double capacity_mbps,
                                         double queue_mult,
                                         std::optional<cgs::tcp::CcAlgo> cc,
                                         std::uint64_t seed) {
  cgs::core::Scenario sc;
  sc.system = system;
  sc.capacity = cgs::Bandwidth::mbps(capacity_mbps);
  sc.queue_bdp_mult = queue_mult;
  sc.tcp_algo = cc;
  sc.seed = seed;
  return sc;
}

inline const char* short_name(cgs::stream::GameSystem s) {
  using cgs::stream::GameSystem;
  switch (s) {
    case GameSystem::kStadia: return "Stadia";
    case GameSystem::kGeForce: return "GeForce";
    case GameSystem::kLuna: return "Luna";
  }
  return "?";
}

/// Sweep-cell label for one grid cell, e.g. "Stadia 25Mb/s 2.0xBDP cubic".
inline std::string cell_label(cgs::stream::GameSystem sys, double cap_mbps,
                              double queue_mult,
                              std::optional<cgs::tcp::CcAlgo> cc) {
  char buf[96];
  std::snprintf(buf, sizeof buf, "%s %.0fMb/s %.1fxBDP %s", short_name(sys),
                cap_mbps, queue_mult,
                cc ? std::string(cgs::tcp::to_string(*cc)).c_str() : "solo");
  return buf;
}

}  // namespace bench
