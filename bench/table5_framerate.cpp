// Table 5: client frame rate (f/s) while the competing TCP flow runs.
// Paper shape: >= ~50 f/s against Cubic everywhere (Stadia lowest ~51);
// degraded against BBR at 0.5x/2x queues (Stadia ~40, Luna down to 22.3 at
// 15 Mb/s / 0.5x; GeForce resilient > 50); everyone ~58-60 at 7x.
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv, "table5");

  using cgs::tcp::CcAlgo;

  std::printf(
      "Table 5 — frame rate (f/s) with competing TCP flow, %d runs per "
      "cell\n\n",
      args.runs);

  std::unique_ptr<cgs::CsvWriter> csv;
  if (args.csv) {
    csv = std::make_unique<cgs::CsvWriter>(args.csv_prefix + ".csv");
    csv->header({"capacity_mbps", "queue_mult", "system", "cc", "fps_mean",
                 "fps_sd", "game_loss"});
  }

  for (double q : {0.5, 2.0, 7.0}) {
    std::printf("=== queue %.1fx BDP ===\n", q);
    cgs::core::TextTable table;
    table.set_header({"Capacity", "Stadia/cubic", "Stadia/bbr",
                      "GeForce/cubic", "GeForce/bbr", "Luna/cubic",
                      "Luna/bbr"});
    for (double cap : {15.0, 25.0, 35.0}) {
      std::vector<std::string> row;
      char lbl[32];
      std::snprintf(lbl, sizeof lbl, "%.0f Mb/s", cap);
      row.emplace_back(lbl);
      for (auto sys : cgs::core::kAllSystems) {
        for (CcAlgo cc : {CcAlgo::kCubic, CcAlgo::kBbr}) {
          auto sc = bench::make_scenario(sys, cap, q, cc, args.seed);
          cgs::core::RunnerOptions opts;
          opts.runs = args.runs;
          opts.threads = args.threads;
          const auto res = cgs::core::run_condition(sc, opts);
          row.push_back(cgs::core::fmt_mean_sd(res.fps_mean, res.fps_sd));
          if (csv) {
            csv->row({std::to_string(cap), std::to_string(q),
                      std::string(bench::short_name(sys)),
                      std::string(cgs::tcp::to_string(cc)),
                      std::to_string(res.fps_mean),
                      std::to_string(res.fps_sd),
                      std::to_string(res.loss_mean)});
          }
        }
      }
      table.add_row(std::move(row));
    }
    std::printf("%s\n", table.render().c_str());
  }
  std::printf(
      "paper reference @15 Mb/s, 0.5x: Stadia 50.8/38.8, GeForce 57.9/51.7, "
      "Luna 53.7/22.3 (cubic/bbr).\n");
  return 0;
}
