// Figure 4 (a, b): adaptiveness vs fairness scatter.  One point per game
// system x network condition; response/recovery times normalised by the
// maxima observed across all points of the same competing-CCA panel, then
// A = 1/2 (1 - C/Cmax) + 1/2 (1 - E/Emax).
#include <cstdio>
#include <vector>

#include "bench_common.hpp"

namespace {

struct Point {
  cgs::stream::GameSystem system;
  double capacity;
  double queue;
  double fairness;
  cgs::core::ResponseRecovery rr;
};

char queue_marker(double q) {
  if (q < 1.0) return '-';
  if (q < 5.0) return 'o';
  return '+';
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv, "fig4");

  using cgs::tcp::CcAlgo;

  std::unique_ptr<cgs::CsvWriter> csv;
  if (args.csv) {
    csv = std::make_unique<cgs::CsvWriter>(args.csv_prefix + ".csv");
    csv->header({"cc", "system", "capacity_mbps", "queue_mult", "fairness",
                 "response_s", "recovery_s", "adaptiveness"});
  }

  for (CcAlgo cc : {CcAlgo::kCubic, CcAlgo::kBbr}) {
    std::vector<Point> pts;
    for (auto sys : cgs::core::kAllSystems) {
      for (double cap : {15.0, 25.0, 35.0}) {
        for (double q : {0.5, 2.0, 7.0}) {
          auto sc = bench::make_scenario(sys, cap, q, cc, args.seed);
          cgs::core::RunnerOptions opts;
          opts.runs = args.runs;
          opts.threads = args.threads;
          const auto res = cgs::core::run_condition(sc, opts);
          pts.push_back({sys, cap, q, res.fairness_mean, res.rr});
        }
      }
    }
    // Normalise by panel maxima (§4.2).
    double c_max = 1e-9, e_max = 1e-9;
    for (const auto& p : pts) {
      c_max = std::max(c_max, p.rr.response_s);
      e_max = std::max(e_max, p.rr.recovery_s);
    }

    std::printf(
        "Figure 4%s — adaptiveness vs fairness, game systems vs TCP %s "
        "(%d runs/point; Cmax=%.0fs Emax=%.0fs)\n",
        cc == CcAlgo::kCubic ? "a" : "b",
        std::string(cgs::tcp::to_string(cc)).c_str(), args.runs, c_max,
        e_max);
    std::printf("  marker: - 0.5x, o 2x, + 7x BDP\n");

    // 21 rows (A from 1.0 down to 0.0), 61 cols (fairness -1..1).
    std::vector<std::string> canvas(21, std::string(61, ' '));
    for (std::size_t i = 0; i < canvas.size(); ++i) canvas[i][30] = ':';
    for (const auto& p : pts) {
      const double a = cgs::core::adaptiveness(p.rr, c_max, e_max);
      const int row = std::clamp(int((1.0 - a) * 20.0 + 0.5), 0, 20);
      const int col = std::clamp(int((p.fairness + 1.0) * 30.0 + 0.5), 0, 60);
      char m = queue_marker(p.queue);
      // Distinguish systems by letter when markers collide.
      const char sys_c = bench::short_name(p.system)[0];
      canvas[std::size_t(row)][std::size_t(col)] =
          canvas[std::size_t(row)][std::size_t(col)] == ' ' ? m : sys_c;
      if (csv) {
        csv->row({std::string(cgs::tcp::to_string(cc)),
                  std::string(bench::short_name(p.system)),
                  std::to_string(p.capacity), std::to_string(p.queue),
                  std::to_string(p.fairness), std::to_string(p.rr.response_s),
                  std::to_string(p.rr.recovery_s), std::to_string(a)});
      }
    }
    std::printf("  A 1.0 %s\n", canvas[0].c_str());
    for (std::size_t i = 1; i + 1 < canvas.size(); ++i) {
      std::printf("      %s\n", canvas[i].c_str());
    }
    std::printf("  A 0.0 %s\n", canvas.back().c_str());
    std::printf("      fairness -1%28s+1\n", "0");

    // Per-system summary (the paper's coloured ovals).
    std::printf("\n  %-8s %-18s %-18s %s\n", "system", "fairness[min,max]",
                "adaptiveness[min,max]", "centre");
    for (auto sys : cgs::core::kAllSystems) {
      double fmin = 1, fmax = -1, amin = 1, amax = 0, fc = 0, ac = 0;
      int n = 0;
      for (const auto& p : pts) {
        if (p.system != sys) continue;
        const double a = cgs::core::adaptiveness(p.rr, c_max, e_max);
        fmin = std::min(fmin, p.fairness);
        fmax = std::max(fmax, p.fairness);
        amin = std::min(amin, a);
        amax = std::max(amax, a);
        fc += p.fairness;
        ac += a;
        ++n;
      }
      std::printf("  %-8s [%+.2f, %+.2f]     [%.2f, %.2f]          (%+.2f, %.2f)\n",
                  bench::short_name(sys), fmin, fmax, amin, amax, fc / n,
                  ac / n);
    }
    std::printf("\n");
  }
  return 0;
}
