// Ablation A2 (paper §2.2 context): two bulk TCP flows sharing the
// bottleneck — the Miyazawa / Claypool observation that intra-protocol
// pairs balance while Cubic-vs-BBR pairs are imbalanced, with the balance
// flipping with queue size (Cao et al.: queue vs BDP decides when BBR
// wins).
#include <cstdio>

#include "cgstream.hpp"

namespace {

using namespace cgs::literals;
using cgs::tcp::CcAlgo;

struct PairResult {
  double a_mbps;
  double b_mbps;
  double jain;
};

PairResult run_pair(CcAlgo a, CcAlgo b, double queue_mult) {
  cgs::sim::Simulator sim;
  cgs::net::PacketFactory factory;
  const auto cap = 25_mbps;
  const auto rtt = cgs::Time(16500_us);
  const auto qbytes =
      cgs::ByteSize(std::int64_t(double(bdp(cap, rtt).bytes()) * queue_mult));
  cgs::net::BottleneckRouter router(
      sim, cap, 1_ms, std::make_unique<cgs::net::DropTailQueue>(qbytes));
  cgs::net::DelayLine access(sim, (rtt - 2_ms) / 2, &router.downstream_in());

  cgs::tcp::BulkTcpFlow fa(sim, factory, 1, a);
  cgs::tcp::BulkTcpFlow fb(sim, factory, 2, b);
  router.register_client(1, &fa.receiver());
  router.register_client(2, &fb.receiver());
  fa.attach(&access, &router.make_upstream((rtt - 2_ms) / 2 + 1_ms,
                                           &fa.sender()));
  fb.attach(&access, &router.make_upstream((rtt - 2_ms) / 2 + 1_ms,
                                           &fb.sender()));
  fa.sender().start();
  fb.sender().start();

  // 60 s, measure the last 40 s.
  sim.run_until(20_sec);
  const auto a0 = fa.receiver().bytes_delivered();
  const auto b0 = fb.receiver().bytes_delivered();
  sim.run_until(60_sec);
  const double am =
      cgs::rate_of(fa.receiver().bytes_delivered() - a0, 40_sec)
          .megabits_per_sec();
  const double bm =
      cgs::rate_of(fb.receiver().bytes_delivered() - b0, 40_sec)
          .megabits_per_sec();
  return {am, bm, cgs::core::jain_index({am, bm})};
}

}  // namespace

int main() {
  std::printf(
      "Ablation A2 — two bulk TCP flows on a 25 Mb/s bottleneck "
      "(16.5 ms RTT), share over the last 40 of 60 s\n\n");

  cgs::core::TextTable table;
  table.set_header({"pair", "queue", "flow A Mb/s", "flow B Mb/s", "Jain"});
  const std::pair<CcAlgo, CcAlgo> pairs[] = {
      {CcAlgo::kCubic, CcAlgo::kCubic},
      {CcAlgo::kBbr, CcAlgo::kBbr},
      {CcAlgo::kCubic, CcAlgo::kBbr},
      {CcAlgo::kReno, CcAlgo::kCubic},
      {CcAlgo::kVegas, CcAlgo::kCubic},
      {CcAlgo::kVegas, CcAlgo::kBbr},
  };
  for (const auto& [a, b] : pairs) {
    for (double q : {0.5, 2.0, 7.0}) {
      const auto r = run_pair(a, b, q);
      char name[48], qs[16], am[16], bm[16], j[16];
      std::snprintf(name, sizeof name, "%s vs %s",
                    std::string(to_string(a)).c_str(),
                    std::string(to_string(b)).c_str());
      std::snprintf(qs, sizeof qs, "%.1fx", q);
      std::snprintf(am, sizeof am, "%.1f", r.a_mbps);
      std::snprintf(bm, sizeof bm, "%.1f", r.b_mbps);
      std::snprintf(j, sizeof j, "%.3f", r.jain);
      table.add_row({name, qs, am, bm, j});
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "expected: intra-protocol pairs near Jain=1; cubic-vs-bbr imbalanced "
      "(BBR favoured at small queues, Cubic at bloated queues); Vegas "
      "starved by both.\n");
  return 0;
}
