// Ablation A1 (paper §5 future work): replace the drop-tail router queue
// with CoDel / FQ-CoDel and repeat the Figure-3 style measurement at
// 25 Mb/s.  AQM signals congestion early and FQ isolates the flows, so the
// unfairness patterns of Figure 3 should largely vanish under FQ-CoDel and
// the bufferbloat RTTs of Table 4 should collapse toward the base RTT.
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv, "ablation_aqm");

  using cgs::core::QueueKind;
  using cgs::tcp::CcAlgo;

  std::printf(
      "Ablation A1 — queue discipline at the bottleneck (25 Mb/s, 7x BDP "
      "limit, %d runs per cell)\n\n",
      args.runs);

  cgs::core::TextTable table;
  table.set_header({"System", "CC", "qdisc", "fairness", "RTT ms", "fps",
                    "game Mb/s", "tcp Mb/s"});

  for (auto sys : cgs::core::kAllSystems) {
    for (CcAlgo cc : {CcAlgo::kCubic, CcAlgo::kBbr}) {
      for (QueueKind k : {QueueKind::kDropTail, QueueKind::kCoDel,
                          QueueKind::kFqCoDel}) {
        auto sc = bench::make_scenario(sys, 25.0, 7.0, cc, args.seed);
        sc.queue_kind = k;
        cgs::core::RunnerOptions opts;
        opts.runs = args.runs;
        opts.threads = args.threads;
        const auto res = cgs::core::run_condition(sc, opts);
        char f[32], r[32], fps[32], g[16], t[16];
        std::snprintf(f, sizeof f, "%+.2f", res.fairness_mean);
        std::snprintf(r, sizeof r, "%.1f (%.1f)", res.rtt_mean_ms,
                      res.rtt_sd_ms);
        std::snprintf(fps, sizeof fps, "%.1f", res.fps_mean);
        std::snprintf(g, sizeof g, "%.1f", res.game_fair_mbps);
        std::snprintf(t, sizeof t, "%.1f", res.tcp_fair_mbps);
        table.add_row({std::string(bench::short_name(sys)),
                       std::string(cgs::tcp::to_string(cc)),
                       std::string(cgs::core::to_string(k)), f, r, fps, g, t});
      }
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "expected: fq_codel pushes fairness toward 0 and RTT toward the "
      "16.5 ms base for every system/CCA pair.\n");
  return 0;
}
