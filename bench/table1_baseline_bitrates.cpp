// Table 1: steady-state game-system bitrates with no capacity constraint
// and no competing traffic.  Paper values: Stadia 27.5 (2.3), GeForce
// 24.5 (1.8), Luna 23.7 (0.9) Mb/s.
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv, "table1");

  std::printf(
      "Table 1 — game system bitrates without capacity constraints or "
      "competing traffic (Mb/s), %d runs\n\n",
      args.runs);

  cgs::core::TextTable table;
  table.set_header({"System", "Bitrate (Mb/s)", "paper"});
  const char* paper[] = {"27.5 (2.3)", "24.5 (1.8)", "23.7 (0.9)"};

  std::unique_ptr<cgs::CsvWriter> csv;
  if (args.csv) {
    csv = std::make_unique<cgs::CsvWriter>(args.csv_prefix + ".csv");
    csv->header({"system", "bitrate_mbps_mean", "bitrate_mbps_sd"});
  }

  int i = 0;
  for (auto sys : cgs::core::kAllSystems) {
    // ~1 Gb/s: unconstrained relative to any system's maximum.
    cgs::core::Scenario sc = bench::make_scenario(sys, 1000.0, 2.0,
                                                  std::nullopt, args.seed);
    cgs::core::RunnerOptions opts;
    opts.runs = args.runs;
    opts.threads = args.threads;
    const auto res = cgs::core::run_condition(sc, opts);
    table.add_row({std::string(bench::short_name(sys)),
                   cgs::core::fmt_mean_sd(res.steady_mean_mbps,
                                          res.steady_sd_mbps),
                   paper[i++]});
    if (csv) {
      csv->row({std::string(bench::short_name(sys)),
                std::to_string(res.steady_mean_mbps),
                std::to_string(res.steady_sd_mbps)});
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "note: the measured sd reflects in-run encoder variation only; the\n"
      "paper's sd additionally contains day-scale Internet variability.\n");
  return 0;
}
