// Extension E1 (paper §5 future work): the game stream competing with
// HTTP adaptive streaming video (a DASH/Netflix-style player) instead of a
// bulk download.  The player fetches 4 s chunks over TCP (Cubic or BBR),
// idles when its buffer is full, and adapts its quality ladder — a far
// burstier competitor than iperf.
#include <cstdio>

#include "apps/dash_video.hpp"
#include "bench_common.hpp"

namespace {

using namespace cgs::literals;

struct Result {
  double game_mbps;
  double game_fps;
  double video_quality_mbps;
  double video_stall_s;
  double rtt_ms;
};

Result run_one(cgs::stream::GameSystem sys, cgs::tcp::CcAlgo cc,
               std::uint64_t seed) {
  cgs::sim::Simulator sim;
  cgs::net::PacketFactory factory;
  const auto cap = 25_mbps;
  const cgs::Time rtt(16500_us);
  cgs::net::BottleneckRouter router(
      sim, cap, 1_ms,
      std::make_unique<cgs::net::DropTailQueue>(bdp(cap, rtt) * 2));
  const cgs::Time pad = (rtt - 2_ms) / 2;
  cgs::net::DelayLine access(sim, pad, &router.downstream_in());

  // Game stream.
  cgs::Pcg32 rng(seed);
  const auto& prof = cgs::stream::profile_for(sys);
  cgs::stream::StreamSender::Options so;
  so.flow = 1;
  so.burst_factor = prof.burst_factor;
  cgs::stream::StreamSender game_tx(sim, factory, so,
                                    cgs::stream::frame_config_for(sys),
                                    cgs::stream::make_controller(sys),
                                    rng.fork(1));
  cgs::stream::StreamReceiver game_rx(
      sim, factory,
      {.flow = 1, .fec_rate = prof.fec_rate,
       .playout_deadline = prof.playout_deadline});
  router.register_client(1, &game_rx);
  game_tx.set_output(&access);
  game_rx.set_output(&router.make_upstream(pad + 1_ms, &game_tx));

  // DASH video player.
  cgs::apps::DashVideoClient video(sim, factory, 2, cc);
  router.register_client(2, &video.flow().receiver());
  video.attach(&access,
               &router.make_upstream(pad + 1_ms, &video.flow().sender()));

  // Ping probe for RTT.
  cgs::core::PingClient ping(sim, factory, 3);
  cgs::core::PingResponder pong(sim, factory, 3);
  cgs::net::DelayLine ping_access(sim, pad, &router.downstream_in());
  pong.set_output(&ping_access);
  router.register_client(3, &ping);
  ping.set_output(&router.make_upstream(pad + 1_ms, &pong));

  // Schedule: game from 0; video during [60 s, 240 s); measure that window.
  game_rx.start();
  game_tx.start();
  ping.start();
  sim.schedule_at(60_sec, [&] { video.start(); });
  sim.schedule_at(240_sec, [&] { video.stop(); });

  std::int64_t game_bytes = 0;
  router.bottleneck().sniffer().on_deliver(
      [&](const cgs::net::Packet& p, cgs::Time t) {
        if (p.flow == 1 && t >= 60_sec && t < 240_sec) {
          game_bytes += p.size_bytes;
        }
      });

  sim.run_until(260_sec);

  Result r;
  r.game_mbps = cgs::rate_of(cgs::ByteSize(game_bytes), 180_sec)
                    .megabits_per_sec();
  r.game_fps = game_rx.display().fps_over(60_sec, 240_sec);
  r.video_quality_mbps = video.mean_quality().megabits_per_sec();
  r.video_stall_s = cgs::to_seconds(video.stall_time(240_sec));
  cgs::RunningStats rtt_ms;
  for (const auto& s : ping.samples()) {
    if (s.at >= 60_sec && s.at < 240_sec) {
      rtt_ms.add(cgs::to_seconds(s.rtt) * 1e3);
    }
  }
  r.rtt_ms = rtt_ms.mean();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv, "ext_video");

  std::printf(
      "Extension E1 — game stream vs DASH adaptive video (25 Mb/s, 2x BDP, "
      "video active 60-240 s)\n\n");

  cgs::core::TextTable table;
  table.set_header({"System", "video CC", "game Mb/s", "game fps",
                    "video quality Mb/s", "video stalls s", "RTT ms"});
  for (auto sys : cgs::core::kAllSystems) {
    for (auto cc : {cgs::tcp::CcAlgo::kCubic, cgs::tcp::CcAlgo::kBbr}) {
      const auto r = run_one(sys, cc, args.seed);
      char g[16], f[16], q[16], s[16], rt[16];
      std::snprintf(g, sizeof g, "%.1f", r.game_mbps);
      std::snprintf(f, sizeof f, "%.1f", r.game_fps);
      std::snprintf(q, sizeof q, "%.1f", r.video_quality_mbps);
      std::snprintf(s, sizeof s, "%.1f", r.video_stall_s);
      std::snprintf(rt, sizeof rt, "%.1f", r.rtt_ms);
      table.add_row({std::string(bench::short_name(sys)),
                     std::string(cgs::tcp::to_string(cc)), g, f, q, s, rt});
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "reading: DASH's on/off chunk fetching leaves the game stream idle "
      "gaps to recover in, unlike the paper's continuous iperf flow.\n");
  return 0;
}
