// Figure 2 (a-f): game-system bitrate vs time at a 25 Mb/s capacity with a
// competing TCP flow during [185 s, 370 s), one line per queue size
// (0.5x / 2x / 7x BDP), top row Cubic, bottom row BBR.
//
// Prints a compact sparkline rendering per panel and (with --csv) writes the
// full mean/CI series for plotting.
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv, "fig2");

  using cgs::tcp::CcAlgo;

  std::printf(
      "Figure 2 — bitrate vs time, 25 Mb/s capacity, TCP flow in "
      "[185 s, 370 s), %d runs per line\n"
      "(each char ~7 s; markers: | = TCP start/stop)\n\n",
      args.runs);

  for (CcAlgo cc : {CcAlgo::kCubic, CcAlgo::kBbr}) {
    for (auto sys : cgs::core::kAllSystems) {
      std::printf("--- %s vs TCP %s ---\n", bench::short_name(sys),
                  std::string(cgs::tcp::to_string(cc)).c_str());
      for (double q : {0.5, 2.0, 7.0}) {
        auto sc = bench::make_scenario(sys, 25.0, q, cc, args.seed);
        cgs::core::RunnerOptions opts;
        opts.runs = args.runs;
        opts.threads = args.threads;
        const auto res = cgs::core::run_condition(sc, opts);

        std::printf("  %3.1fx BDP game %s\n", q,
                    cgs::core::sparkline(res.game.mean).c_str());
        std::printf("           tcp %s\n",
                    cgs::core::sparkline(res.tcp.mean).c_str());
        std::printf(
            "           during-TCP game=%.1f tcp=%.1f Mb/s  "
            "response=%.0fs%s recovery=%.0fs%s\n",
            res.game_fair_mbps, res.tcp_fair_mbps, res.rr.response_s,
            res.rr.responded ? "" : "*", res.rr.recovery_s,
            res.rr.recovered ? "" : "*");

        if (args.csv) {
          const std::string path = args.csv_prefix + "_" +
                                   std::string(bench::short_name(sys)) + "_" +
                                   std::string(cgs::tcp::to_string(cc)) + "_q" +
                                   std::to_string(q) + ".csv";
          cgs::core::write_series_csv(path, std::chrono::milliseconds(500),
                                      res.game, &res.tcp);
        }
      }
      std::printf("\n");
    }
  }
  std::printf("(* = level not reached within the measurement window)\n");
  if (args.csv) std::printf("CSV series written with prefix %s_\n",
                            args.csv_prefix.c_str());
  return 0;
}
