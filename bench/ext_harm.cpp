// Extension E3 (paper §5 future work): harm-based analysis (Ware et al.,
// HotNets 2019).  Instead of throughput fairness, measure how much of each
// party's solo performance the other destroys, benchmarked against the
// harm Cubic does to another Cubic flow ("TCP-harm budget").
#include <cstdio>

#include "bench_common.hpp"

namespace {

using cgs::tcp::CcAlgo;

struct Cell {
  double game_tput_harm;   // competitor's harm to the game stream
  double game_fps_harm;
  double tcp_harm;         // game stream's harm to the TCP flow
};

Cell run_cell(cgs::stream::GameSystem sys, CcAlgo cc, double queue_mult,
              const bench::CommonArgs& args) {
  cgs::core::RunnerOptions opts;
  opts.runs = args.runs;
  opts.threads = args.threads;

  // Solo game stream.
  auto solo = bench::make_scenario(sys, 25.0, queue_mult, std::nullopt,
                                   args.seed);
  const auto rs = cgs::core::run_condition(solo, opts);

  // Competing.
  auto comp = bench::make_scenario(sys, 25.0, queue_mult, cc, args.seed);
  const auto rc = cgs::core::run_condition(comp, opts);

  // Solo TCP baseline on the same link: measured via the TCP-vs-TCP wiring
  // is overkill — a saturating solo flow achieves ~capacity; use the game
  // system's absence as baseline by running the scenario with the stream's
  // bitrate floor. Simpler and exact: solo TCP ≈ capacity minus protocol
  // overhead; we take the measured tcp rate when the game is at its floor
  // as ~24 Mb/s. For the harm ratio we use the nominal 24.0 Mb/s.
  constexpr double kSoloTcpMbps = 24.0;

  Cell out;
  out.game_tput_harm =
      cgs::core::harm_more_is_better(rs.steady_mean_mbps, rc.game_fair_mbps);
  out.game_fps_harm =
      cgs::core::harm_more_is_better(rs.fps_mean, rc.fps_mean);
  out.tcp_harm =
      cgs::core::harm_more_is_better(kSoloTcpMbps, rc.tcp_fair_mbps);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv, "ext_harm");

  std::printf(
      "Extension E3 — harm analysis (Ware et al.): fraction of solo "
      "performance destroyed (25 Mb/s, %d runs per cell)\n\n",
      args.runs);

  cgs::core::TextTable table;
  table.set_header({"System", "CC", "queue", "harm to game tput",
                    "harm to game fps", "harm to TCP tput"});
  for (auto sys : cgs::core::kAllSystems) {
    for (CcAlgo cc : {CcAlgo::kCubic, CcAlgo::kBbr}) {
      for (double q : {0.5, 2.0, 7.0}) {
        const auto c = run_cell(sys, cc, q, args);
        char qs[16], h1[16], h2[16], h3[16];
        std::snprintf(qs, sizeof qs, "%.1fx", q);
        std::snprintf(h1, sizeof h1, "%.2f", c.game_tput_harm);
        std::snprintf(h2, sizeof h2, "%.2f", c.game_fps_harm);
        std::snprintf(h3, sizeof h3, "%.2f", c.tcp_harm);
        table.add_row({std::string(bench::short_name(sys)),
                       std::string(cgs::tcp::to_string(cc)), qs, h1, h2, h3});
      }
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "reading: a flow pair is 'acceptable' under Ware et al. if it harms "
      "the other no more than another TCP flow would (~0.5 on this link).\n");
  return 0;
}
