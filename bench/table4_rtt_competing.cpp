// Table 4: round-trip time (ms) with a competing TCP flow (Cubic or BBR).
// Paper shape: RTT tracks the queue limit under Cubic (~17/40/110 ms at
// 0.5x/2x/7x for 25 Mb/s); under BBR the 7x case is roughly HALVED
// (~52-56 ms) because BBR's inflight cap (2xBDP) bounds the standing queue.
//
// All 54 cells run as one sweep on the shared work-stealing pool.
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv, "table4");

  using cgs::tcp::CcAlgo;

  std::printf(
      "Table 4 — round-trip time (ms) with a competing TCP flow, "
      "%d runs per cell\n\n",
      args.runs);

  const double caps[] = {15.0, 25.0, 35.0};
  const double queues[] = {0.5, 2.0, 7.0};
  const CcAlgo ccs[] = {CcAlgo::kCubic, CcAlgo::kBbr};

  std::vector<cgs::core::SweepCell> cells;
  for (double q : queues) {
    for (double cap : caps) {
      for (auto sys : cgs::core::kAllSystems) {
        for (CcAlgo cc : ccs) {
          cells.push_back({bench::cell_label(sys, cap, q, cc),
                           bench::make_scenario(sys, cap, q, cc, args.seed)});
        }
      }
    }
  }
  cgs::core::SweepOptions opts;
  opts.runs = args.runs;
  opts.threads = args.threads;
  const auto sweep = cgs::core::run_sweep(std::move(cells), opts);

  std::unique_ptr<cgs::CsvWriter> csv;
  if (args.csv) {
    csv = std::make_unique<cgs::CsvWriter>(args.csv_prefix + ".csv");
    csv->header({"capacity_mbps", "queue_mult", "system", "cc", "rtt_ms_mean",
                 "rtt_ms_sd"});
  }

  std::size_t idx = 0;
  for (double q : queues) {
    std::printf("=== queue %.1fx BDP ===\n", q);
    cgs::core::TextTable table;
    table.set_header({"Capacity", "Stadia/cubic", "Stadia/bbr",
                      "GeForce/cubic", "GeForce/bbr", "Luna/cubic",
                      "Luna/bbr"});
    for (double cap : caps) {
      std::vector<std::string> row;
      char lbl[32];
      std::snprintf(lbl, sizeof lbl, "%.0f Mb/s", cap);
      row.emplace_back(lbl);
      for (auto sys : cgs::core::kAllSystems) {
        for (CcAlgo cc : ccs) {
          const auto& res = sweep.results[idx++];
          row.push_back(
              cgs::core::fmt_mean_sd(res.rtt_mean_ms, res.rtt_sd_ms));
          if (csv) {
            csv->row({std::to_string(cap), std::to_string(q),
                      std::string(bench::short_name(sys)),
                      std::string(cgs::tcp::to_string(cc)),
                      std::to_string(res.rtt_mean_ms),
                      std::to_string(res.rtt_sd_ms)});
          }
        }
      }
      table.add_row(std::move(row));
    }
    std::printf("%s\n", table.render().c_str());
  }
  std::printf(
      "paper reference @25 Mb/s: cubic 17.8/40.0/110.6 and bbr "
      "20.7/44.2/55.9 ms for Stadia at 0.5x/2x/7x.\n");
  return 0;
}
