// Table 3: round-trip time (ms) without a competing TCP flow, per
// capacity x queue size x system.  Paper shape: ~16-17 ms at 0.5x queues,
// rising to ~18-22 ms at 7x (solo systems keep queuing low).
//
// All 27 cells run as one sweep on the shared work-stealing pool.
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv, "table3");

  std::printf(
      "Table 3 — round-trip time (ms) without a competing TCP flow, "
      "%d runs per cell\n\n",
      args.runs);

  const double caps[] = {15.0, 25.0, 35.0};
  const double queues[] = {0.5, 2.0, 7.0};

  std::vector<cgs::core::SweepCell> cells;
  for (double cap : caps) {
    for (double q : queues) {
      for (auto sys : cgs::core::kAllSystems) {
        cells.push_back(
            {bench::cell_label(sys, cap, q, std::nullopt),
             bench::make_scenario(sys, cap, q, std::nullopt, args.seed)});
      }
    }
  }
  cgs::core::SweepOptions opts;
  opts.runs = args.runs;
  opts.threads = args.threads;
  const auto sweep = cgs::core::run_sweep(std::move(cells), opts);

  std::unique_ptr<cgs::CsvWriter> csv;
  if (args.csv) {
    csv = std::make_unique<cgs::CsvWriter>(args.csv_prefix + ".csv");
    csv->header({"capacity_mbps", "queue_mult", "system", "rtt_ms_mean",
                 "rtt_ms_sd"});
  }

  cgs::core::TextTable table;
  table.set_header({"Capacity", "BDP", "Stadia", "GeForce", "Luna"});
  std::size_t idx = 0;
  for (double cap : caps) {
    for (double q : queues) {
      std::vector<std::string> row;
      char lbl[32];
      std::snprintf(lbl, sizeof lbl, "%.0f Mb/s", cap);
      row.emplace_back(lbl);
      std::snprintf(lbl, sizeof lbl, "%.1fx", q);
      row.emplace_back(lbl);
      for (auto sys : cgs::core::kAllSystems) {
        const auto& res = sweep.results[idx++];
        row.push_back(cgs::core::fmt_mean_sd(res.rtt_mean_ms, res.rtt_sd_ms));
        if (csv) {
          csv->row({std::to_string(cap), std::to_string(q),
                    std::string(bench::short_name(sys)),
                    std::to_string(res.rtt_mean_ms),
                    std::to_string(res.rtt_sd_ms)});
        }
      }
      table.add_row(std::move(row));
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "paper reference: 16-17 (small queues) rising ~25%% for larger "
      "queues; never near the queue-full delay.\n");
  return 0;
}
