// google-benchmark microbenchmarks of the simulation core: event queue
// throughput, link forwarding, TCP and full-testbed event rates.  These
// guard the "a 9-minute condition simulates in seconds" property the
// table/figure harnesses depend on.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>
#include <vector>

#include "cgstream.hpp"

namespace {

using namespace cgs::literals;

void BM_EventQueuePushPop(benchmark::State& state) {
  for (auto _ : state) {
    cgs::sim::EventQueue q;
    for (int i = 0; i < 1000; ++i) {
      q.push(cgs::Time(i * 1000), [] {});
    }
    while (!q.empty()) benchmark::DoNotOptimize(q.pop());
  }
  state.SetItemsProcessed(state.iterations() * 2000);
}
BENCHMARK(BM_EventQueuePushPop);

void BM_EventQueueCancelHeavy(benchmark::State& state) {
  // RTO-style workload: every event is rescheduled several times and most
  // are cancelled before firing, so the lazy-deletion + compaction path and
  // O(1) generation-tagged cancel dominate.
  for (auto _ : state) {
    cgs::sim::EventQueue q;
    cgs::sim::EventId ids[64] = {};
    for (int round = 0; round < 100; ++round) {
      for (int i = 0; i < 64; ++i) {
        if (ids[i] != cgs::sim::kInvalidEventId) q.cancel(ids[i]);
        ids[i] = q.push(cgs::Time((round * 64 + i) * 1000), [] {});
      }
      for (int i = 0; i < 64; i += 2) {
        ids[i] = q.reschedule(ids[i], cgs::Time((round * 64 + i) * 2000));
      }
    }
    while (!q.empty()) benchmark::DoNotOptimize(q.pop());
  }
  state.SetItemsProcessed(state.iterations() * 100 * (64 + 32));
}
BENCHMARK(BM_EventQueueCancelHeavy);

void BM_PacketChurn(benchmark::State& state) {
  // Steady-state make/free cycling through the factory pool: after the
  // first lap every acquire is a recycled packet, no allocator traffic.
  cgs::net::PacketFactory f;
  for (auto _ : state) {
    cgs::net::PacketPtr window[32];
    for (int lap = 0; lap < 32; ++lap) {
      for (int i = 0; i < 32; ++i) {
        window[std::size_t(i)] =
            f.make(1, cgs::net::TrafficClass::kTcpData, 1500,
                   cgs::Time(lap * 32 + i), cgs::net::TcpHeader{});
      }
      for (auto& p : window) p.reset();
    }
  }
  state.SetItemsProcessed(state.iterations() * 32 * 32);
}
BENCHMARK(BM_PacketChurn);

void BM_SimulatorTimerChurn(benchmark::State& state) {
  // One periodic timer: the pending set has depth ~1, the regime where a
  // plain binary/4-ary heap is already near-optimal.  This measures the
  // engine's fixed per-event overhead, not data-structure asymptotics —
  // see BM_SimulatorTimerChurnLoaded for the loaded regime.
  for (auto _ : state) {
    cgs::sim::Simulator sim;
    int fired = 0;
    cgs::sim::PeriodicTimer t(sim, 1_ms, [&] { ++fired; });
    t.start();
    sim.run_until(1_sec);
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SimulatorTimerChurn);

void BM_SimulatorTimerChurnLoaded(benchmark::State& state) {
  // N concurrent periodic timers with staggered periods (~1 ms, co-prime
  // offsets so deadlines interleave instead of phase-locking): the pending
  // set stays ~N deep, so per-tick cost is dominated by insert/extract at
  // depth N.  This is where the timer wheel's O(1) bucket routing beats a
  // heap's O(log N) sifts — a testbed run sits between the two regimes
  // (tens of live events), a sweep worker fans out far wider.
  const int n = int(state.range(0));
  std::uint64_t fired = 0;
  for (auto _ : state) {
    cgs::sim::Simulator sim;
    std::vector<std::unique_ptr<cgs::sim::PeriodicTimer>> timers;
    timers.reserve(std::size_t(n));
    for (int i = 0; i < n; ++i) {
      timers.push_back(std::make_unique<cgs::sim::PeriodicTimer>(
          sim, 1_ms + cgs::Time(i * 7919), [&] { ++fired; }));
      timers.back()->start();
    }
    sim.run_until(1_sec);
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(std::int64_t(fired));
}
BENCHMARK(BM_SimulatorTimerChurnLoaded)
    ->Arg(64)
    ->Arg(1024)
    ->Unit(benchmark::kMillisecond);

void BM_LinkForwarding(benchmark::State& state) {
  struct NullSink final : cgs::net::PacketSink {
    void handle_packet(cgs::net::PacketPtr) override {}
  };
  for (auto _ : state) {
    cgs::sim::Simulator sim;
    cgs::net::PacketFactory f;
    NullSink sink;
    cgs::net::Link link(sim, "l", 1_gbps, 1_ms,
                        std::make_unique<cgs::net::DropTailQueue>(10_MB),
                        &sink);
    for (int i = 0; i < 1000; ++i) {
      link.handle_packet(
          f.make(1, cgs::net::TrafficClass::kTcpData, 1500, sim.now(), {}));
    }
    sim.run();
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_LinkForwarding);

void BM_TcpSecond(benchmark::State& state) {
  // One simulated second of a saturating Cubic flow at 25 Mb/s.
  for (auto _ : state) {
    cgs::sim::Simulator sim;
    cgs::net::PacketFactory factory;
    cgs::net::BottleneckRouter router(
        sim, 25_mbps, 1_ms,
        std::make_unique<cgs::net::DropTailQueue>(
            bdp(25_mbps, cgs::Time(16500_us)) * 2));
    cgs::net::DelayLine access(sim, 7_ms, &router.downstream_in());
    cgs::tcp::BulkTcpFlow flow(sim, factory, 1, cgs::tcp::CcAlgo::kCubic);
    router.register_client(1, &flow.receiver());
    flow.attach(&access, &router.make_upstream(8_ms, &flow.sender()));
    flow.sender().start();
    sim.run_until(1_sec);
    benchmark::DoNotOptimize(flow.receiver().bytes_delivered());
  }
}
BENCHMARK(BM_TcpSecond)->Unit(benchmark::kMillisecond);

void BM_TestbedSecond(benchmark::State& state) {
  // One simulated second of the full paper testbed (game + TCP + ping).
  for (auto _ : state) {
    cgs::core::Scenario sc;
    sc.duration = 1_sec;
    sc.tcp_start = 100_ms;
    sc.tcp_stop = 900_ms;
    cgs::core::Testbed bed(sc);
    benchmark::DoNotOptimize(bed.run());
  }
}
BENCHMARK(BM_TestbedSecond)->Unit(benchmark::kMillisecond);

// -- sweep engine vs per-cell fork/join ------------------------------------
//
// A 6-cell x 5-seed grid of 1-second testbed runs at 4 threads.  The
// engine runs all 30 jobs on one work-stealing pool; the baseline drives
// each cell through run_condition (which forks and joins a fresh pool per
// cell, idling 3 of 4 workers on every cell's 5th run).  Acceptance:
// engine >= 1.3x faster on multicore hardware.

constexpr int kSweepRuns = 5;
constexpr int kSweepThreads = 4;

std::vector<cgs::core::SweepCell> sweep_grid() {
  std::vector<cgs::core::SweepCell> cells;
  for (double cap : {15.0, 25.0, 35.0}) {
    for (double q : {0.5, 2.0}) {
      cgs::core::Scenario sc;
      sc.capacity = cgs::Bandwidth::mbps(cap);
      sc.queue_bdp_mult = q;
      sc.duration = 1_sec;
      sc.tcp_start = 100_ms;
      sc.tcp_stop = 900_ms;
      cells.push_back({sc.label(), sc});
    }
  }
  return cells;
}

void BM_Sweep(benchmark::State& state) {
  for (auto _ : state) {
    cgs::core::SweepOptions opts;
    opts.runs = kSweepRuns;
    opts.threads = kSweepThreads;
    auto res = cgs::core::run_sweep(sweep_grid(), opts);
    benchmark::DoNotOptimize(res.results.data());
  }
  state.SetItemsProcessed(state.iterations() * 6 * kSweepRuns);
}
BENCHMARK(BM_Sweep)->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_SweepPerCellLoop(benchmark::State& state) {
  for (auto _ : state) {
    for (const auto& cell : sweep_grid()) {
      cgs::core::RunnerOptions opts;
      opts.runs = kSweepRuns;
      opts.threads = kSweepThreads;
      auto res = cgs::core::run_condition(cell.scenario, opts);
      benchmark::DoNotOptimize(res.runs);
    }
  }
  state.SetItemsProcessed(state.iterations() * 6 * kSweepRuns);
}
BENCHMARK(BM_SweepPerCellLoop)->Unit(benchmark::kMillisecond)->UseRealTime();

// -- hybrid-fidelity fleet --------------------------------------------------
//
// BM_FleetSecond: one simulated second of a game-stream testbed plus N
// fluid background sessions (no churn, so every iteration ticks the same
// population).  items processed = fleet session-seconds, so the reported
// items/s is directly comparable against packet-path flow-seconds
// (BM_TestbedSecond runs 3 packet flows per iteration).  Acceptance
// (ISSUE): the 1000-session point must come in >= 50x cheaper per
// session-second than the packet path's per-flow-second cost.

cgs::core::Scenario fleet_scenario(int sessions) {
  cgs::core::Scenario sc;
  sc.duration = 1_sec;
  sc.capacity = 1_gbps;  // headroom: measure fleet cost, not contention
  sc.tcp_algo = std::nullopt;
  const auto place = [&](cgs::net::FluidClass cls, std::uint32_t n) {
    cgs::net::FluidSourceSpec src;
    src.cls = cls;
    src.sessions = n;
    src.rate_jitter = 0.0;
    sc.fleet.sources.push_back(src);
  };
  place(cgs::net::FluidClass::kGameStream, std::uint32_t(sessions / 2));
  place(cgs::net::FluidClass::kBulkCubic, std::uint32_t(sessions / 4));
  place(cgs::net::FluidClass::kBulkBbr,
        std::uint32_t(sessions - sessions / 2 - sessions / 4));
  return sc;
}

void BM_FleetSecond(benchmark::State& state) {
  const int sessions = int(state.range(0));
  const cgs::core::Scenario sc = fleet_scenario(sessions);
  for (auto _ : state) {
    cgs::core::Testbed bed(sc);
    benchmark::DoNotOptimize(bed.run());
  }
  state.SetItemsProcessed(state.iterations() * sessions);
  state.counters["sessions"] = double(sessions);
}
BENCHMARK(BM_FleetSecond)->Arg(100)->Arg(1000)->Unit(benchmark::kMillisecond);

void BM_FluidTick(benchmark::State& state) {
  // The fleet layer's inner loop in isolation: one churn + demand +
  // capacity-sharing + digest pass over 1000 static sessions, no packet
  // traffic.  This is the O(sessions) arithmetic a 100 ms tick costs.
  cgs::sim::Simulator sim;
  cgs::net::PacketFactory factory;
  cgs::net::TopologyGraph graph(
      sim, factory, cgs::net::TopologySpec::single_bottleneck(1_gbps, 1_ms),
      {});
  cgs::net::FleetSpec spec;
  cgs::net::FluidSourceSpec src;
  src.cls = cgs::net::FluidClass::kGameStream;
  src.sessions = 1000;
  src.rate_jitter = 0.0;
  spec.sources.push_back(src);
  cgs::net::FluidAggregate fleet(sim, graph, spec, 1_sec, /*seed=*/1);
  for (auto _ : state) {
    fleet.tick();
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_FluidTick);

const cgs::core::RunTrace& bench_trace() {
  // One 1-second full-mix run, shared across iterations (the serializer
  // under test never mutates it).
  static const cgs::core::RunTrace trace = [] {
    cgs::core::Scenario sc;
    sc.duration = 1_sec;
    sc.tcp_start = 100_ms;
    sc.tcp_stop = 900_ms;
    cgs::core::Testbed bed(sc);
    return bed.run();
  }();
  return trace;
}

void BM_TraceSerialize(benchmark::State& state) {
  // The journal's per-job overhead floor: RunTrace -> bytes -> RunTrace.
  const cgs::core::RunTrace& t = bench_trace();
  std::size_t bytes = 0;
  for (auto _ : state) {
    const auto buf = cgs::core::serialize_trace(t);
    bytes = buf.size();
    auto rt = cgs::core::deserialize_trace(buf.data(), buf.size());
    benchmark::DoNotOptimize(rt.game_mbps.data());
  }
  state.SetBytesProcessed(state.iterations() * std::int64_t(bytes) * 2);
}
BENCHMARK(BM_TraceSerialize);

void BM_JournalAppend(benchmark::State& state) {
  // Record append with fsync off — isolates the format/CRC cost from disk
  // latency (the sync path is a durability guarantee, not a hot path).
  const std::string path = "bench_journal_scratch.jnl";
  cgs::core::JournalEntry e;
  e.cell = 1;
  e.run = 2;
  e.seed = 44;
  e.ok = true;
  e.payload = cgs::core::serialize_trace(bench_trace());
  e.trace_hash = cgs::core::trace_hash(bench_trace());
  cgs::core::JournalMeta meta;
  meta.note = "bench";
  auto w = cgs::core::JournalWriter::create(path, meta, /*sync=*/false);
  for (auto _ : state) {
    w.append(e);
  }
  state.SetBytesProcessed(state.iterations() *
                          std::int64_t(e.payload.size()));
  std::remove(path.c_str());
}
BENCHMARK(BM_JournalAppend);

}  // namespace

#ifndef CGS_BUILD_TYPE
#define CGS_BUILD_TYPE "unknown"
#endif

// Custom main instead of BENCHMARK_MAIN(): it embeds this binary's build
// type in the JSON context (tools/bench_simcore_json.py refuses to record
// a baseline from a debug build) while passing every standard
// google-benchmark flag straight through.  The ones this repo's workflows
// lean on (all composable):
//
//   --benchmark_filter=REGEX        run a subset (e.g. 'BM_TestbedSecond')
//   --benchmark_repetitions=N       N repetitions + min/median/mean/stddev
//   --benchmark_report_aggregates_only=true   hide per-repetition lines
//   --benchmark_out=F --benchmark_out_format=json   machine-readable dump
//   --benchmark_min_time=Ns         lengthen runs on noisy machines
//
// Unrecognized arguments are a hard error (exit 1), so a typo'd flag can
// never silently benchmark the wrong thing.
int main(int argc, char** argv) {
  // Record THIS binary's build type (the library_build_type google-benchmark
  // reports is libbenchmark's own, which poisoned an earlier baseline).
  benchmark::AddCustomContext("cgs_build_type", CGS_BUILD_TYPE);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
