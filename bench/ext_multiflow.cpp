// Extension E2 (paper §5 future work): "multiple flows and mixtures of
// flows" — the game stream against N competing bulk TCP flows, including a
// mixed Cubic+BBR pair.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"

namespace {

using namespace cgs::literals;
using cgs::tcp::CcAlgo;

struct Result {
  double game_mbps;
  double tcp_total_mbps;
  double game_fps;
  double rtt_ms;
};

Result run_one(cgs::stream::GameSystem sys, const std::vector<CcAlgo>& ccas,
               std::uint64_t seed) {
  cgs::sim::Simulator sim;
  cgs::net::PacketFactory factory;
  const auto cap = 25_mbps;
  const cgs::Time rtt(16500_us);
  cgs::net::BottleneckRouter router(
      sim, cap, 1_ms,
      std::make_unique<cgs::net::DropTailQueue>(bdp(cap, rtt) * 2));
  const cgs::Time pad = (rtt - 2_ms) / 2;
  cgs::net::DelayLine access(sim, pad, &router.downstream_in());

  cgs::Pcg32 rng(seed);
  const auto& prof = cgs::stream::profile_for(sys);
  cgs::stream::StreamSender::Options so;
  so.flow = 1;
  so.burst_factor = prof.burst_factor;
  cgs::stream::StreamSender game_tx(sim, factory, so,
                                    cgs::stream::frame_config_for(sys),
                                    cgs::stream::make_controller(sys),
                                    rng.fork(1));
  cgs::stream::StreamReceiver game_rx(
      sim, factory,
      {.flow = 1, .fec_rate = prof.fec_rate,
       .playout_deadline = prof.playout_deadline});
  router.register_client(1, &game_rx);
  game_tx.set_output(&access);
  game_rx.set_output(&router.make_upstream(pad + 1_ms, &game_tx));

  std::vector<std::unique_ptr<cgs::tcp::BulkTcpFlow>> flows;
  for (std::size_t i = 0; i < ccas.size(); ++i) {
    const auto id = cgs::net::FlowId(10 + i);
    auto f = std::make_unique<cgs::tcp::BulkTcpFlow>(sim, factory, id,
                                                     ccas[i]);
    router.register_client(id, &f->receiver());
    f->attach(&access,
              &router.make_upstream(pad + 1_ms, &f->sender()));
    f->schedule(sim, 60_sec, 240_sec);
    flows.push_back(std::move(f));
  }

  cgs::core::PingClient ping(sim, factory, 3);
  cgs::core::PingResponder pong(sim, factory, 3);
  cgs::net::DelayLine ping_access(sim, pad, &router.downstream_in());
  pong.set_output(&ping_access);
  router.register_client(3, &ping);
  ping.set_output(&router.make_upstream(pad + 1_ms, &pong));

  std::int64_t game_bytes = 0, tcp_bytes = 0;
  router.bottleneck().sniffer().on_deliver(
      [&](const cgs::net::Packet& p, cgs::Time t) {
        if (t < 90_sec || t >= 240_sec) return;  // settled window
        if (p.flow == 1) game_bytes += p.size_bytes;
        if (p.flow >= 10) tcp_bytes += p.size_bytes;
      });

  game_rx.start();
  game_tx.start();
  ping.start();
  sim.run_until(260_sec);

  Result r;
  r.game_mbps =
      cgs::rate_of(cgs::ByteSize(game_bytes), 150_sec).megabits_per_sec();
  r.tcp_total_mbps =
      cgs::rate_of(cgs::ByteSize(tcp_bytes), 150_sec).megabits_per_sec();
  r.game_fps = game_rx.display().fps_over(90_sec, 240_sec);
  cgs::RunningStats rtt_ms;
  for (const auto& s : ping.samples()) {
    if (s.at >= 90_sec && s.at < 240_sec) {
      rtt_ms.add(cgs::to_seconds(s.rtt) * 1e3);
    }
  }
  r.rtt_ms = rtt_ms.mean();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv, "ext_multiflow");

  std::printf(
      "Extension E2 — game stream vs multiple competing TCP flows "
      "(25 Mb/s, 2x BDP, flows active 60-240 s)\n\n");

  struct Mix {
    const char* name;
    std::vector<CcAlgo> ccas;
  };
  const Mix mixes[] = {
      {"1 cubic", {CcAlgo::kCubic}},
      {"2 cubic", {CcAlgo::kCubic, CcAlgo::kCubic}},
      {"4 cubic", {CcAlgo::kCubic, CcAlgo::kCubic, CcAlgo::kCubic,
                   CcAlgo::kCubic}},
      {"1 bbr", {CcAlgo::kBbr}},
      {"2 bbr", {CcAlgo::kBbr, CcAlgo::kBbr}},
      {"cubic+bbr", {CcAlgo::kCubic, CcAlgo::kBbr}},
  };

  cgs::core::TextTable table;
  table.set_header({"System", "competitors", "game Mb/s", "fair share",
                    "tcp total Mb/s", "game fps", "RTT ms"});
  for (auto sys : cgs::core::kAllSystems) {
    for (const auto& mix : mixes) {
      const auto r = run_one(sys, mix.ccas, args.seed);
      const double fair = 25.0 / double(mix.ccas.size() + 1);
      char g[16], fs[16], t[16], f[16], rt[16];
      std::snprintf(g, sizeof g, "%.1f", r.game_mbps);
      std::snprintf(fs, sizeof fs, "%.1f", fair);
      std::snprintf(t, sizeof t, "%.1f", r.tcp_total_mbps);
      std::snprintf(f, sizeof f, "%.1f", r.game_fps);
      std::snprintf(rt, sizeof rt, "%.1f", r.rtt_ms);
      table.add_row({std::string(bench::short_name(sys)), mix.name, g, fs, t,
                     f, rt});
    }
  }
  std::printf("%s\n", table.render().c_str());
  return 0;
}
