// Ablation A3: controller-component knockout.  Re-runs the centre cell
// (25 Mb/s, 2x BDP) with Stadia-like controller variants that disable one
// mechanism each, quantifying what each contributes:
//   - no-relative-delay : gradient detector off (hard ceiling + loss stay)
//   - no-standing-queue : tolerate permanently-standing queues
//   - no-loss-law       : delay-only control
//   - absolute-delay    : naive 25 ms absolute threshold — the
//                         death-spiral design DESIGN.md §4 warns about
#include <cstdio>

#include "bench_common.hpp"
#include "stream/controllers/stadia_like.hpp"

namespace {

using cgs::stream::StadiaLikeConfig;

struct Variant {
  const char* name;
  StadiaLikeConfig cfg;
};

std::vector<Variant> variants() {
  std::vector<Variant> out;
  out.push_back({"baseline", StadiaLikeConfig{}});

  StadiaLikeConfig no_rel;
  no_rel.detector.rel_factor = 1e9;
  out.push_back({"no-relative-delay", no_rel});

  StadiaLikeConfig no_standing;
  no_standing.standing_floor = cgs::Time(std::chrono::hours(1));
  out.push_back({"no-standing-queue", no_standing});

  StadiaLikeConfig no_loss;
  no_loss.loss_threshold = 1.1;  // unreachable
  out.push_back({"no-loss-law", no_loss});

  StadiaLikeConfig absolute;
  absolute.detector.rel_factor = 0.0;  // trigger when delay > abs_margin
  absolute.detector.abs_margin = std::chrono::milliseconds(25);
  absolute.standing_floor = cgs::Time(std::chrono::hours(1));
  out.push_back({"absolute-delay-25ms", absolute});
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv, "ablation_controller");

  using cgs::tcp::CcAlgo;

  std::printf(
      "Ablation A3 — Stadia-like controller component knockout "
      "(25 Mb/s, 2x BDP, %d runs per cell)\n\n",
      args.runs);

  cgs::core::TextTable table;
  table.set_header({"variant", "CC", "fairness", "game Mb/s", "RTT ms", "fps",
                    "loss %"});

  for (const auto& v : variants()) {
    for (CcAlgo cc : {CcAlgo::kCubic, CcAlgo::kBbr}) {
      auto sc = bench::make_scenario(cgs::stream::GameSystem::kStadia, 25.0,
                                     2.0, cc, args.seed);
      const StadiaLikeConfig cfg = v.cfg;
      sc.controller_override = [cfg] {
        return std::make_unique<cgs::stream::StadiaLikeController>(cfg);
      };
      cgs::core::RunnerOptions opts;
      opts.runs = args.runs;
      opts.threads = args.threads;
      const auto res = cgs::core::run_condition(sc, opts);

      char f[16], g[16], r[24], fps[16], l[16];
      std::snprintf(f, sizeof f, "%+.2f", res.fairness_mean);
      std::snprintf(g, sizeof g, "%.1f", res.game_fair_mbps);
      std::snprintf(r, sizeof r, "%.1f (%.1f)", res.rtt_mean_ms,
                    res.rtt_sd_ms);
      std::snprintf(fps, sizeof fps, "%.1f", res.fps_mean);
      std::snprintf(l, sizeof l, "%.2f", res.loss_mean * 100.0);
      table.add_row({v.name, std::string(cgs::tcp::to_string(cc)), f, g, r,
                     fps, l});
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "expected: absolute-delay collapses against Cubic's standing queue; "
      "no-standing-queue overheats against BBR; no-loss-law overruns "
      "shallow queues.\n");
  return 0;
}
