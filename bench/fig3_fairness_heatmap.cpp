// Figure 3: heatmaps of the bitrate-difference ratio
// (game - TCP) / capacity over 220-370 s, for each game system (blocks),
// capacity (rows) x queue size (columns), competing with TCP Cubic (top
// half) and TCP BBR (bottom half).
//
// The full 2x3x3x3 grid runs as ONE sweep on the shared work-stealing
// pool: late stragglers in one cell overlap with the next cell's runs
// instead of idling a per-cell fork/join pool.
//
// Paper shape targets (EXPERIMENTS.md): vs Cubic Stadia warm (hottest
// 0.5x/35), Luna near-fair, GeForce all-cool; vs BBR GeForce cooler still,
// Luna all-cool (coolest 0.5x/35), Stadia near-fair but warmer at 7x.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv, "fig3");

  using cgs::stream::GameSystem;
  using cgs::tcp::CcAlgo;

  const std::vector<double> caps = {35.0, 25.0, 15.0};
  const std::vector<double> queues = {0.5, 2.0, 7.0};
  const CcAlgo ccs[] = {CcAlgo::kCubic, CcAlgo::kBbr};

  std::printf(
      "Figure 3 — ratio of bitrate difference (game - TCP) / capacity, "
      "window 220-370 s, %d runs per cell\n\n",
      args.runs);

  // Flatten the whole grid, render-loop order (cc, system, cap, queue).
  std::vector<cgs::core::SweepCell> cells;
  for (CcAlgo cc : ccs) {
    for (GameSystem sys : cgs::core::kAllSystems) {
      for (double cap : caps) {
        for (double q : queues) {
          cells.push_back(
              {bench::cell_label(sys, cap, q, cc),
               bench::make_scenario(sys, cap, q, cc, args.seed)});
        }
      }
    }
  }
  cgs::core::SweepOptions opts;
  opts.runs = args.runs;
  opts.threads = args.threads;
  const auto sweep = cgs::core::run_sweep(std::move(cells), opts);

  std::unique_ptr<cgs::CsvWriter> csv;
  if (args.csv) {
    csv = std::make_unique<cgs::CsvWriter>(args.csv_prefix + "_fairness.csv");
    csv->header({"system", "cc", "capacity_mbps", "queue_mult",
                 "fairness_mean", "fairness_sd", "game_mbps", "tcp_mbps",
                 "loss"});
  }

  std::size_t idx = 0;
  for (CcAlgo cc : ccs) {
    std::printf("=== competing flow: TCP %s ===\n",
                std::string(cgs::tcp::to_string(cc)).c_str());
    for (GameSystem sys : cgs::core::kAllSystems) {
      std::vector<std::vector<double>> grid(
          caps.size(), std::vector<double>(queues.size(), 0.0));
      for (std::size_t r = 0; r < caps.size(); ++r) {
        for (std::size_t c = 0; c < queues.size(); ++c) {
          const auto& res = sweep.results[idx++];
          grid[r][c] = res.fairness_mean;
          if (csv) {
            csv->row({std::string(cgs::stream::to_string(sys)),
                      std::string(cgs::tcp::to_string(cc)),
                      std::to_string(caps[r]), std::to_string(queues[c]),
                      std::to_string(res.fairness_mean),
                      std::to_string(res.fairness_sd),
                      std::to_string(res.game_fair_mbps),
                      std::to_string(res.tcp_fair_mbps),
                      std::to_string(res.loss_mean)});
          }
        }
      }
      std::printf("%s\n",
                  cgs::core::render_heatmap_block(
                      std::string(bench::short_name(sys)) + " vs " +
                          std::string(cgs::tcp::to_string(cc)),
                      caps, queues, grid, args.color)
                      .c_str());
    }
  }
  if (csv) std::printf("CSV written to %s_fairness.csv\n",
                       args.csv_prefix.c_str());
  return 0;
}
