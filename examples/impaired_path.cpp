// Fault injection on the game-stream path: a netem-style impairment stage
// (bursty Gilbert-Elliott loss, jitter, a scheduled mid-run link outage)
// in front of the bottleneck, and what the stream does about it.
//
//   ./impaired_path [stadia|geforce|luna] [drop|hold]
//
// Prints a bitrate sparkline (watch the notch at the 3 s outage), the
// impairment stage's counters, and the endpoint hardening counters
// (frozen feedback windows, concealed frames, discarded duplicates).
#include <cstdio>
#include <cstring>

#include "cgstream.hpp"

namespace {

cgs::stream::GameSystem parse_system(const char* s) {
  using cgs::stream::GameSystem;
  if (std::strcmp(s, "geforce") == 0) return GameSystem::kGeForce;
  if (std::strcmp(s, "luna") == 0) return GameSystem::kLuna;
  return GameSystem::kStadia;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cgs::literals;

  cgs::core::Scenario sc;
  sc.system = argc > 1 ? parse_system(argv[1]) : cgs::stream::GameSystem::kStadia;
  const bool hold = argc > 2 && std::strcmp(argv[2], "hold") == 0;

  sc.tcp_algo = cgs::tcp::CcAlgo::kCubic;
  sc.capacity = 25_mbps;
  sc.duration = 60_sec;
  sc.tcp_start = 5_sec;
  sc.tcp_stop = 20_sec;
  sc.seed = 7;

  // The netem half of the router: ~1% loss in bursts (mean length 4),
  // 2 ms of delay jitter, small random duplication, and one 3 s outage.
  sc.impair_down.gilbert_elliott = cgs::net::GilbertElliott{
      .p_good_bad = 0.0025, .p_bad_good = 0.25,
      .good_loss = 0.0, .bad_loss = 1.0};
  sc.impair_down.jitter = 2_ms;
  sc.impair_down.duplicate_rate = 0.001;
  sc.impair_down.outages.push_back(
      {30_sec, 33_sec,
       hold ? cgs::net::OutagePolicy::kHold : cgs::net::OutagePolicy::kDrop});

  std::printf("scenario: %s + impaired path (outage policy: %s)\n",
              sc.label().c_str(),
              std::string(to_string(sc.impair_down.outages[0].policy)).c_str());

  cgs::core::Testbed bed(sc);
  const cgs::core::RunTrace trace = bed.run();

  std::printf("\ngame bitrate (Mb/s), outage at 30-33s:\n  %s\n",
              cgs::core::sparkline(trace.game_mbps).c_str());

  const auto& c = bed.downstream_impairment()->counters();
  std::printf("\nimpairment stage [%s]:\n",
              bed.downstream_impairment()->name().c_str());
  std::printf("  received   %llu\n", (unsigned long long)c.received);
  std::printf("  delivered  %llu\n", (unsigned long long)c.delivered);
  std::printf("  dropped    %llu random, %llu outage\n",
              (unsigned long long)c.dropped_random,
              (unsigned long long)c.dropped_outage);
  std::printf("  duplicated %llu, held %llu, released %llu\n",
              (unsigned long long)c.duplicated, (unsigned long long)c.held,
              (unsigned long long)c.released);

  std::printf("\nendpoint hardening:\n");
  std::printf("  feedback windows frozen (blackout) : %llu\n",
              (unsigned long long)bed.game_sender().stalled_windows());
  std::printf("  duplicate packets discarded        : %llu\n",
              (unsigned long long)bed.game_receiver().duplicates_discarded());
  std::printf("  frames concealed                   : %llu\n",
              (unsigned long long)bed.game_receiver().frames_concealed());

  const double pre = trace.mean_game_mbps(25_sec, 30_sec);
  const double post = trace.mean_game_mbps(36_sec, 43_sec);
  std::printf("\nbitrate before outage: %.1f Mb/s, after recovery: %.1f Mb/s\n",
              pre, post);
  return 0;
}
