// Capture a per-packet trace of one experiment — the simulator's
// "save the Wireshark capture" workflow — and print per-flow summaries.
//
//   ./trace_capture [stadia|geforce|luna] [cubic|bbr] [trace.csv]
//
// Demonstrates: TraceLog attached to the bottleneck, per-flow digests
// (goodput, drop rate, jitter), CSV export of the raw packet events.
#include <cstdio>
#include <cstring>
#include <string>

#include "cgstream.hpp"
#include "core/tracelog.hpp"

int main(int argc, char** argv) {
  using cgs::stream::GameSystem;
  using cgs::tcp::CcAlgo;

  cgs::core::Scenario sc;
  sc.system = argc > 1 && !std::strcmp(argv[1], "geforce") ? GameSystem::kGeForce
              : argc > 1 && !std::strcmp(argv[1], "luna")  ? GameSystem::kLuna
                                                           : GameSystem::kStadia;
  sc.tcp_algo = argc > 2 && !std::strcmp(argv[2], "bbr") ? CcAlgo::kBbr
                                                         : CcAlgo::kCubic;
  // A 3-minute excerpt keeps the CSV manageable (~1M events for 9 min).
  sc.duration = cgs::from_seconds(180);
  sc.tcp_start = cgs::from_seconds(60);
  sc.tcp_stop = cgs::from_seconds(120);

  cgs::core::Testbed bed(sc);
  cgs::core::TraceLog log;
  log.reserve(1'500'000);
  log.attach(bed.router().bottleneck());
  std::printf("capturing: %s\n", sc.label().c_str());
  (void)bed.run();

  std::printf("%zu packet events captured\n\n", log.size());

  auto print_phase = [&](const char* name, cgs::Time from, cgs::Time to) {
    std::printf("--- %s [%.0f, %.0f) s ---\n", name, cgs::to_seconds(from),
                cgs::to_seconds(to));
    cgs::core::TextTable t;
    t.set_header({"flow", "pkts", "drops", "drop %", "goodput Mb/s",
                  "jitter ms"});
    for (const auto& f : log.summarize(from, to)) {
      const char* names[] = {"?", "game", "tcp", "ping"};
      char pk[16], dr[16], dp[16], gp[16], ji[16];
      std::snprintf(pk, sizeof pk, "%llu",
                    (unsigned long long)f.packets_delivered);
      std::snprintf(dr, sizeof dr, "%llu",
                    (unsigned long long)f.packets_dropped);
      std::snprintf(dp, sizeof dp, "%.2f", f.drop_rate() * 100.0);
      std::snprintf(gp, sizeof gp, "%.2f", f.goodput().megabits_per_sec());
      std::snprintf(ji, sizeof ji, "%.2f", cgs::to_seconds(f.jitter) * 1e3);
      t.add_row({f.flow <= 3 ? names[f.flow] : std::to_string(f.flow), pk, dr,
                 dp, gp, ji});
    }
    std::printf("%s\n", t.render().c_str());
  };

  print_phase("before TCP", cgs::from_seconds(10), sc.tcp_start);
  print_phase("during TCP", sc.tcp_start, sc.tcp_stop);
  print_phase("after TCP", sc.tcp_stop, sc.duration);

  const std::string path = argc > 3 ? argv[3] : "trace.csv";
  log.write_csv(path);
  std::printf("raw packet events written to %s\n", path.c_str());
  return 0;
}
