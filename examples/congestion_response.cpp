// Reproduce one Figure-2 panel end to end: a chosen game system at 25 Mb/s
// with a competing TCP flow during the middle three minutes, printed as a
// time series and written to CSV for plotting.
//
//   ./congestion_response [stadia|geforce|luna] [cubic|bbr] [runs] [out.csv]
//
// Demonstrates: ExperimentRunner, cross-run aggregation with 95% CIs, the
// response/recovery metrics of §4.2, and CSV export.
#include <cstdio>
#include <cstring>
#include <string>

#include "cgstream.hpp"

int main(int argc, char** argv) {
  using cgs::stream::GameSystem;
  using cgs::tcp::CcAlgo;

  cgs::core::Scenario sc;
  sc.system = argc > 1 && !std::strcmp(argv[1], "geforce") ? GameSystem::kGeForce
              : argc > 1 && !std::strcmp(argv[1], "luna")  ? GameSystem::kLuna
                                                           : GameSystem::kStadia;
  sc.tcp_algo = argc > 2 && !std::strcmp(argv[2], "bbr") ? CcAlgo::kBbr
                                                         : CcAlgo::kCubic;
  sc.capacity = cgs::Bandwidth::mbps(25.0);
  sc.queue_bdp_mult = 2.0;

  cgs::core::RunnerOptions opts;
  opts.runs = argc > 3 ? std::atoi(argv[3]) : 5;
  opts.progress = [](int done, int total) {
    std::fprintf(stderr, "\r  run %d/%d", done, total);
    if (done == total) std::fprintf(stderr, "\n");
  };

  std::printf("condition: %s (%d runs)\n", sc.label().c_str(), opts.runs);
  const auto res = cgs::core::run_condition(sc, opts);

  // Print a decimated series: time, game mean +/- CI, tcp mean.
  std::printf("\n%8s %12s %10s %12s\n", "t (s)", "game (Mb/s)", "+/-CI",
              "tcp (Mb/s)");
  for (std::size_t i = 0; i < res.game.mean.size(); i += 40) {  // every 20 s
    std::printf("%8.0f %12.2f %10.2f %12.2f\n", double(i) * 0.5,
                res.game.mean[i], res.game.ci95[i], res.tcp.mean[i]);
  }

  std::printf("\nresponse time : %.1f s%s\n", res.rr.response_s,
              res.rr.responded ? "" : " (never settled)");
  std::printf("recovery time : %.1f s%s\n", res.rr.recovery_s,
              res.rr.recovered ? "" : " (never recovered)");
  std::printf("fairness      : %+.2f (sd %.2f across runs)\n",
              res.fairness_mean, res.fairness_sd);

  const std::string csv = argc > 4 ? argv[4] : "congestion_response.csv";
  cgs::core::write_series_csv(csv, std::chrono::milliseconds(500), res.game,
                              &res.tcp);
  std::printf("full series written to %s\n", csv.c_str());
  return 0;
}
