// Bufferbloat study: how router queue sizing changes what a game stream
// experiences — latency, loss and frame rate — when a bulk TCP download
// shares the last-mile link.  A distilled version of the paper's §4.3
// argument, swept over a finer queue grid than the paper's three points.
//
//   ./bufferbloat_study [cubic|bbr]
//
// Demonstrates: direct Testbed use with a custom sweep, the ping probe,
// and the display model.
#include <cstdio>
#include <cstring>

#include "cgstream.hpp"

int main(int argc, char** argv) {
  using cgs::tcp::CcAlgo;
  const CcAlgo cc = argc > 1 && !std::strcmp(argv[1], "bbr") ? CcAlgo::kBbr
                                                             : CcAlgo::kCubic;

  std::printf(
      "Bufferbloat sweep — Stadia-like stream + TCP %s bulk download, "
      "25 Mb/s bottleneck\n\n",
      std::string(cgs::tcp::to_string(cc)).c_str());

  cgs::core::TextTable table;
  table.set_header({"queue (xBDP)", "queue (KB)", "RTT ms", "p95 RTT",
                    "game loss %", "fps", "game Mb/s"});

  for (double q : {0.25, 0.5, 1.0, 2.0, 4.0, 7.0, 12.0}) {
    cgs::core::Scenario sc;
    sc.system = cgs::stream::GameSystem::kStadia;
    sc.tcp_algo = cc;
    sc.capacity = cgs::Bandwidth::mbps(25.0);
    sc.queue_bdp_mult = q;
    // Shortened schedule: 60 s warmup, 120 s competition, 30 s tail.
    sc.duration = cgs::from_seconds(210);
    sc.tcp_start = cgs::from_seconds(60);
    sc.tcp_stop = cgs::from_seconds(180);

    cgs::core::Testbed bed(sc);
    const auto trace = bed.run();

    std::vector<double> rtts;
    for (const auto& s : trace.rtt) {
      if (s.at >= sc.tcp_start && s.at < sc.tcp_stop) {
        rtts.push_back(cgs::to_seconds(s.rtt) * 1e3);
      }
    }
    char c0[16], c1[16], c2[16], c3[16], c4[16], c5[16], c6[16];
    std::snprintf(c0, sizeof c0, "%.2f", q);
    std::snprintf(c1, sizeof c1, "%.0f", double(sc.queue_bytes().bytes()) / 1e3);
    std::snprintf(c2, sizeof c2, "%.1f", cgs::mean_of(rtts));
    std::snprintf(c3, sizeof c3, "%.1f", cgs::percentile_of(rtts, 0.95));
    std::snprintf(c4, sizeof c4, "%.2f",
                  trace.game_loss_in(sc.tcp_start, sc.tcp_stop) * 100.0);
    std::snprintf(c5, sizeof c5, "%.1f",
                  trace.fps_over(sc.tcp_start, sc.tcp_stop));
    std::snprintf(c6, sizeof c6, "%.1f",
                  trace.mean_game_mbps(sc.tcp_start, sc.tcp_stop));
    table.add_row({c0, c1, c2, c3, c4, c5, c6});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "reading: small queues trade latency for loss; large queues trade "
      "loss for latency (bufferbloat).\nAgainst BBR the RTT growth "
      "saturates near 2x BDP — its inflight cap bounds the standing "
      "queue.\n");
  return 0;
}
