// A 3-hop parking-lot topology: the game stream traverses three
// bottlenecks in series while each hop carries its own single-hop cubic
// cross-traffic flow, so congestion is hop-local rather than end-to-end.
//
//   ./parking_lot [runs] [out_prefix]
//
// Demonstrates: ParkingLotParams / parking_lot_scenario, the per-link
// summary table (utilization, drops, peak queue depth per hop) and the
// per-link utilization series CSV export.
#include <cstdio>
#include <string>

#include "cgstream.hpp"

int main(int argc, char** argv) {
  using namespace std::chrono;

  cgs::core::ParkingLotParams p;
  p.hops = 3;
  p.cross_per_hop = 1;          // one cubic flow pinned to each hop
  p.tcp_start = seconds(185);   // the paper's competing-flow schedule, so
  p.tcp_stop = seconds(370);    // the 220-370 s fairness window applies
  p.duration = seconds(390);
  const cgs::core::Scenario sc = cgs::core::parking_lot_scenario(p);

  cgs::core::RunnerOptions opts;
  opts.runs = argc > 1 ? std::atoi(argv[1]) : 3;
  opts.progress = [](int done, int total) {
    std::fprintf(stderr, "\r  run %d/%d", done, total);
    if (done == total) std::fprintf(stderr, "\n");
  };

  std::printf("condition: %s (%d runs)\n\n", sc.label().c_str(), opts.runs);
  const auto res = cgs::core::run_condition(sc, opts);

  // Per-flow digest (end-to-end game + per-hop cross flows), then the
  // per-hop link digest: each hop's utilization, drops and peak depth.
  std::printf("%s\n", cgs::core::render_flow_summary(res).c_str());
  std::printf("%s\n", cgs::core::render_link_summary(res).c_str());

  const std::string prefix = argc > 2 ? argv[2] : "parking_lot";
  const std::string links_csv = prefix + "_links.csv";
  cgs::core::write_link_series_csv(links_csv, milliseconds(500),
                                   res.link_rows);
  std::printf("per-link series written to %s\n", links_csv.c_str());
  return 0;
}
