// Implementing your own game-streaming rate controller against the public
// RateController interface and racing it against the built-in systems.
//
// The example controller is a deliberately naive "half-the-rate-on-any-
// trouble" design; the point is the plumbing: plug a controller into a
// Scenario via controller_override and get the full measurement pipeline
// (fairness, response/recovery, RTT, fps) for free.
#include <algorithm>
#include <cstdio>
#include <memory>

#include "cgstream.hpp"

namespace {

using cgs::Bandwidth;

/// AIMD-flavoured toy controller: halve on loss or >15 ms queuing delay,
/// add 0.25 Mb/s per clean second.
class HalvingController final : public cgs::stream::RateController {
 public:
  cgs::stream::ControlDecision on_feedback(
      const cgs::stream::FeedbackSnapshot& fb) override {
    if (!fb.valid) return current();
    const bool trouble =
        fb.loss_fraction > 0.01 ||
        fb.queuing_delay > std::chrono::milliseconds(15);
    if (trouble && fb.now >= hold_until_) {
      rate_ = std::max(rate_ * 0.5, Bandwidth::mbps(1.0));
      hold_until_ = fb.now + std::chrono::seconds(1);
    } else if (!trouble) {
      rate_ = std::min(rate_ + Bandwidth::kbps(25), Bandwidth::mbps(25.0));
    }
    return current();
  }

  [[nodiscard]] cgs::stream::ControlDecision current() const override {
    return {rate_, 60.0};
  }

  [[nodiscard]] std::string_view name() const override { return "halving"; }

 private:
  Bandwidth rate_ = Bandwidth::mbps(10.0);
  cgs::Time hold_until_ = cgs::kTimeZero;
};

}  // namespace

int main() {
  using cgs::tcp::CcAlgo;

  std::printf(
      "Custom controller vs the built-in system models (25 Mb/s, 2x BDP, "
      "3 runs)\n\n");

  cgs::core::TextTable table;
  table.set_header({"controller", "CC", "fairness", "game Mb/s",
                    "response s", "recovery s"});

  for (CcAlgo cc : {CcAlgo::kCubic, CcAlgo::kBbr}) {
    for (int variant = 0; variant < 4; ++variant) {
      cgs::core::Scenario sc;
      sc.capacity = cgs::Bandwidth::mbps(25.0);
      sc.queue_bdp_mult = 2.0;
      sc.tcp_algo = cc;
      const char* name;
      switch (variant) {
        case 0:
          sc.system = cgs::stream::GameSystem::kStadia;
          name = "stadia-like";
          break;
        case 1:
          sc.system = cgs::stream::GameSystem::kGeForce;
          name = "geforce-like";
          break;
        case 2:
          sc.system = cgs::stream::GameSystem::kLuna;
          name = "luna-like";
          break;
        default:
          sc.system = cgs::stream::GameSystem::kStadia;  // profile for FEC etc.
          sc.controller_override = [] {
            return std::make_unique<HalvingController>();
          };
          name = "halving (custom)";
      }
      cgs::core::RunnerOptions opts;
      opts.runs = 3;
      const auto res = cgs::core::run_condition(sc, opts);
      char f[16], g[16], r1[16], r2[16];
      std::snprintf(f, sizeof f, "%+.2f", res.fairness_mean);
      std::snprintf(g, sizeof g, "%.1f", res.game_fair_mbps);
      std::snprintf(r1, sizeof r1, "%.0f%s", res.rr.response_s,
                    res.rr.responded ? "" : "*");
      std::snprintf(r2, sizeof r2, "%.0f%s", res.rr.recovery_s,
                    res.rr.recovered ? "" : "*");
      table.add_row({name, std::string(cgs::tcp::to_string(cc)), f, g, r1,
                     r2});
    }
  }
  std::printf("%s\n(* = never reached the band)\n", table.render().c_str());
  return 0;
}
