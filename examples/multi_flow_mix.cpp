// A 4-flow traffic mix through one bottleneck: two game streams (Stadia +
// GeForce NOW) sharing the link with two competing bulk TCP flows (cubic +
// BBR) during the paper's middle window, plus the usual ping probe.
//
//   ./multi_flow_mix [runs] [out.csv]
//
// Demonstrates: Scenario::flows (FlowSpec mixes), per-flow summary rows and
// the N-flow Jain fairness index, and the per-flow series CSV export.
#include <cstdio>
#include <string>

#include "cgstream.hpp"

int main(int argc, char** argv) {
  using cgs::core::FlowSpec;
  using cgs::stream::GameSystem;
  using cgs::tcp::CcAlgo;
  using namespace std::chrono;

  cgs::core::Scenario sc;
  sc.capacity = cgs::Bandwidth::mbps(50.0);  // room for two streams
  sc.queue_bdp_mult = 2.0;
  sc.flows = {
      FlowSpec::game_stream(GameSystem::kStadia),
      FlowSpec::game_stream(GameSystem::kGeForce),
      FlowSpec::bulk_tcp(CcAlgo::kCubic, seconds(185), seconds(370)),
      FlowSpec::bulk_tcp(CcAlgo::kBbr, seconds(185), seconds(370)),
      FlowSpec::ping(),
  };

  cgs::core::RunnerOptions opts;
  opts.runs = argc > 1 ? std::atoi(argv[1]) : 3;
  opts.progress = [](int done, int total) {
    std::fprintf(stderr, "\r  run %d/%d", done, total);
    if (done == total) std::fprintf(stderr, "\n");
  };

  std::printf("condition: %s (%d runs)\n\n", sc.label().c_str(), opts.runs);
  const auto res = cgs::core::run_condition(sc, opts);

  // Per-flow digest over the fairness window (220-370 s), then the N-flow
  // Jain index across the four throughput-bearing flows.
  std::printf("%s\n", cgs::core::render_flow_summary(res).c_str());

  const std::string csv = argc > 2 ? argv[2] : "multi_flow_mix.csv";
  cgs::core::write_flow_series_csv(csv, milliseconds(500), res.flow_rows);
  std::printf("per-flow series written to %s\n", csv.c_str());
  return 0;
}
