// Quickstart: simulate one game-streaming session competing with a TCP flow
// and print the headline metrics.
//
//   ./quickstart [stadia|geforce|luna] [cubic|bbr] [capacity_mbps] [queue_x]
//
// Defaults reproduce the paper's centre cell: Stadia vs Cubic, 25 Mb/s,
// 2x-BDP drop-tail queue, 3 runs.
#include <cstdio>
#include <cstring>
#include <string>

#include "cgstream.hpp"

namespace {

cgs::stream::GameSystem parse_system(const char* s) {
  using cgs::stream::GameSystem;
  if (std::strcmp(s, "geforce") == 0) return GameSystem::kGeForce;
  if (std::strcmp(s, "luna") == 0) return GameSystem::kLuna;
  return GameSystem::kStadia;
}

cgs::tcp::CcAlgo parse_cc(const char* s) {
  using cgs::tcp::CcAlgo;
  if (std::strcmp(s, "bbr") == 0) return CcAlgo::kBbr;
  if (std::strcmp(s, "reno") == 0) return CcAlgo::kReno;
  if (std::strcmp(s, "vegas") == 0) return CcAlgo::kVegas;
  return CcAlgo::kCubic;
}

}  // namespace

int main(int argc, char** argv) {
  cgs::core::Scenario sc;
  sc.system = argc > 1 ? parse_system(argv[1]) : cgs::stream::GameSystem::kStadia;
  sc.tcp_algo = argc > 2 ? parse_cc(argv[2]) : cgs::tcp::CcAlgo::kCubic;
  sc.capacity = cgs::Bandwidth::mbps(argc > 3 ? std::stod(argv[3]) : 25.0);
  sc.queue_bdp_mult = argc > 4 ? std::stod(argv[4]) : 2.0;

  std::printf("scenario: %s\n", sc.label().c_str());
  std::printf("queue: %lld bytes (%.1fx BDP)\n\n",
              static_cast<long long>(sc.queue_bytes().bytes()),
              sc.queue_bdp_mult);

  cgs::core::RunnerOptions opts;
  opts.runs = 3;
  const auto res = cgs::core::run_condition(sc, opts);

  std::printf("game bitrate (Mb/s), one char per ~7s:\n  %s\n",
              cgs::core::sparkline(res.game.mean).c_str());
  std::printf("tcp bitrate (Mb/s):\n  %s\n\n",
              cgs::core::sparkline(res.tcp.mean).c_str());

  const cgs::Time t0 = std::chrono::seconds(0);
  std::printf("steady game bitrate (125-185s): %s Mb/s\n",
              cgs::core::fmt_mean_sd(res.steady_mean_mbps,
                                     res.steady_sd_mbps).c_str());
  std::printf("fairness (game-tcp)/capacity  : %+.2f\n", res.fairness_mean);
  std::printf("response time                 : %.1f s%s\n", res.rr.response_s,
              res.rr.responded ? "" : " (never settled)");
  std::printf("recovery time                 : %.1f s%s\n", res.rr.recovery_s,
              res.rr.recovered ? "" : " (never recovered)");
  std::printf("RTT during competition        : %s ms\n",
              cgs::core::fmt_mean_sd(res.rtt_mean_ms, res.rtt_sd_ms).c_str());
  std::printf("frame rate during competition : %s f/s\n",
              cgs::core::fmt_mean_sd(res.fps_mean, res.fps_sd).c_str());
  std::printf("game packet loss (competition): %.3f%%\n",
              res.loss_mean * 100.0);
  (void)t0;
  return 0;
}
