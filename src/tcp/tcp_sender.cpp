#include "tcp/tcp_sender.hpp"

#include <algorithm>
#include <cassert>

#include "util/logging.hpp"

namespace cgs::tcp {

TcpSender::TcpSender(sim::Simulator& sim, net::PacketFactory& factory,
                     Options opts, std::unique_ptr<CongestionControl> cc)
    : sim_(sim),
      factory_(factory),
      opts_(opts),
      cc_(std::move(cc)),
      rto_timer_(sim, [this] { on_rto_fire(); }),
      pace_timer_(sim, [this] { try_send(); }) {
  assert(cc_ && "TcpSender requires a congestion control instance");
}

void TcpSender::start() {
  assert(out_ != nullptr && "set_output() before start()");
  running_ = true;
  app_limit_ = ~std::uint64_t{0};  // unlimited bulk (iperf mode)
  next_send_time_ = sim_.now();
  try_send();
}

void TcpSender::send_bounded(ByteSize bytes, std::function<void()> on_complete) {
  assert(out_ != nullptr && "set_output() before send_bounded()");
  if (app_limit_ == ~std::uint64_t{0}) app_limit_ = next_seq_;
  app_limit_ += std::uint64_t(bytes.bytes());
  on_complete_ = std::move(on_complete);
  running_ = true;
  next_send_time_ = std::max(next_send_time_, sim_.now());
  try_send();
}

void TcpSender::stop() {
  running_ = false;
  sampler_.set_app_limited(inflight_, sim_.now());
}

void TcpSender::try_send() {
  const ByteSize cwnd = cc_->cwnd();
  for (;;) {
    const Time now = sim_.now();
    if (pacing_enabled() && now < next_send_time_) {
      pace_timer_.arm(next_send_time_ - now);
      return;
    }

    // 1) Retransmissions of marked-lost segments take priority.
    std::uint64_t seq_to_send = 0;
    Segment* seg = nullptr;
    if (lost_pending_ > 0) {
      for (std::size_t i = 0; i < segs_.size(); ++i) {
        auto& e = segs_[i];
        if (e.seg.lost && !e.seg.sacked) {
          seq_to_send = e.seq;
          seg = &e.seg;
          break;
        }
      }
    }

    if (seg == nullptr) {
      // 2) New data, if the window and the application allow.
      if (!running_ || next_seq_ >= app_limit_) {
        if (next_seq_ >= app_limit_ && inflight_.bytes() > 0) {
          sampler_.set_app_limited(inflight_, sim_.now());
        }
        return;
      }
      const auto len = std::uint32_t(std::min<std::uint64_t>(
          std::uint64_t(opts_.mss.bytes()), app_limit_ - next_seq_));
      if (inflight_ + ByteSize(len) > cwnd) return;
      auto& entry =
          segs_.push_back(next_seq_, Segment{len, {}, false, false, false, false});
      seq_to_send = next_seq_;
      seg = &entry.seg;
      next_seq_ += len;
    } else if (inflight_ + ByteSize(seg->len) > cwnd && inflight_.bytes() > 0) {
      // Window full even for the retransmission; wait for more ACKs.
      return;
    }

    transmit(seq_to_send, *seg);

    if (pacing_enabled()) {
      const Bandwidth rate = cc_->pacing_rate();
      const Time gap = rate.transmit_time(
          ByteSize(seg->len + opts_.wire_overhead));
      next_send_time_ = std::max(next_send_time_, sim_.now()) + gap;
    }
  }
}

void TcpSender::transmit(std::uint64_t seq, Segment& seg) {
  if (seg.lost) {
    seg.lost = false;
    seg.retransmitted = true;
    ++retransmits_;
    if (lost_pending_ > 0) --lost_pending_;
  }
  seg.tx = sampler_.on_send(sim_.now(), inflight_);
  if (!seg.counted_inflight) {
    inflight_ += ByteSize(seg.len);
    seg.counted_inflight = true;
  }

  net::TcpHeader h;
  h.seq = seq;
  h.len = seg.len;
  h.is_ack = false;
  h.tx_id = next_tx_id_++;
  auto pkt = factory_.make(opts_.flow, net::TrafficClass::kTcpData,
                           std::int32_t(seg.len) + opts_.wire_overhead,
                           sim_.now(), h);
  out_->handle_packet(std::move(pkt));
  // RFC 6298 5.1: start the timer when it is not running. Re-arming on
  // every transmission would push the deadline out indefinitely and let a
  // lost retransmission wedge the connection.
  if (!rto_timer_.armed()) arm_rto();
}

void TcpSender::arm_rto() {
  // Exponential backoff with a Linux-like ceiling (TCP_RTO_MAX-style):
  // across a multi-second blackout the timer walks 2x per firing up to
  // kMaxRto and then holds, so the first probe after the path heals is at
  // most kMaxRto away — backoff never grows into a livelock-like stall.
  const Time rto = rtt_.rto() * (std::int64_t(1) << std::min(rto_backoff_, 10));
  rto_timer_.arm(std::min(rto, kMaxRto));
}

void TcpSender::handle_packet(net::PacketPtr pkt) {
  const auto* h = std::get_if<net::TcpHeader>(&pkt->header);
  if (h == nullptr || !h->is_ack) return;

  AckEvent ev;
  ev.now = sim_.now();
  ev.delivered_total = sampler_.delivered_total();

  const std::uint64_t prev_una = snd_una_;
  process_cumulative_ack(*h, ev);
  process_sack(*h, ev);

  // Dup-ACK bookkeeping: an ACK that moves nothing forward is a duplicate.
  if (h->ack == prev_una && ev.acked_bytes.bytes() == 0 && !segs_.empty()) {
    ++dupacks_;
  } else if (h->ack > prev_una) {
    dupacks_ = 0;
    rto_backoff_ = 0;
  }

  detect_loss(*h);

  // Recovery exit.
  if (in_recovery_ && snd_una_ >= recover_point_) {
    in_recovery_ = false;
    cc_->on_exit_recovery(ev.now);
  }

  ev.inflight = inflight_;
  ev.delivered_total = sampler_.delivered_total();
  ev.in_recovery = in_recovery_;
  cc_->on_ack(ev);

  if (segs_.empty()) {
    rto_timer_.cancel();
  } else if (h->ack > prev_una) {
    arm_rto();
  }

  // Bounded-transfer completion (HTTP response fully ACKed).
  if (app_limit_ != ~std::uint64_t{0} && snd_una_ >= app_limit_ &&
      on_complete_) {
    auto cb = std::move(on_complete_);
    on_complete_ = nullptr;
    cb();
  }
  try_send();
}

void TcpSender::process_cumulative_ack(const net::TcpHeader& h, AckEvent& ev) {
  if (h.ack <= snd_una_) return;

  RateSample best;
  Time best_sent = kTimeZero;
  while (!segs_.empty()) {
    auto& front = segs_.front();
    const std::uint64_t end = front.seq + front.seg.len;
    if (end > h.ack) break;
    Segment& seg = front.seg;

    if (seg.counted_inflight) {
      inflight_ -= ByteSize(seg.len);
      seg.counted_inflight = false;
    }
    if (!seg.sacked) {
      // SACKed bytes were already credited to the sampler; and only
      // segments delivered *now* may produce an RTT sample — a SACKed
      // segment's data arrived long before this cumulative ACK.
      const RateSample rs =
          sampler_.on_ack(seg.tx, ByteSize(seg.len), sim_.now());
      if (rs.valid && seg.tx.sent_time >= best_sent) {
        best = rs;
        best_sent = seg.tx.sent_time;
      }
      ev.acked_bytes += ByteSize(seg.len);
      if (!seg.retransmitted) {
        const Time rtt = sim_.now() - seg.tx.sent_time;  // Karn's rule
        rtt_.update(rtt);
        min_rtt_ = min_rtt_ == kTimeZero ? rtt : std::min(min_rtt_, rtt);
        sampler_.set_min_interval(min_rtt_);
        ev.rtt = rtt;
      }
    }
    if (seg.lost && lost_pending_ > 0) --lost_pending_;
    if (seg.sacked) sacked_bytes_ -= seg.len;
    segs_.pop_front();
  }
  snd_una_ = std::max(snd_una_, h.ack);
  if (best.valid) ev.rate = best;
}

void TcpSender::process_sack(const net::TcpHeader& h, AckEvent& ev) {
  for (const auto& blk : h.sacks) {
    if (blk.empty()) continue;
    for (std::size_t i = segs_.lower_bound(blk.start);
         i < segs_.size() && segs_[i].seq + segs_[i].seg.len <= blk.end; ++i) {
      Segment& seg = segs_[i].seg;
      if (seg.sacked) continue;
      seg.sacked = true;
      sacked_bytes_ += seg.len;
      if (seg.lost && lost_pending_ > 0) --lost_pending_;
      if (seg.counted_inflight) {
        inflight_ -= ByteSize(seg.len);
        seg.counted_inflight = false;
      }
      const RateSample rs =
          sampler_.on_ack(seg.tx, ByteSize(seg.len), sim_.now());
      if (rs.valid) ev.rate = rs;
      ev.acked_bytes += ByteSize(seg.len);
      if (!seg.retransmitted) {
        const Time rtt = sim_.now() - seg.tx.sent_time;
        rtt_.update(rtt);
        min_rtt_ = min_rtt_ == kTimeZero ? rtt : std::min(min_rtt_, rtt);
        sampler_.set_min_interval(min_rtt_);
        ev.rtt = rtt;
      }
    }
  }
}

void TcpSender::detect_loss(const net::TcpHeader& h) {
  (void)h;
  bool found_loss = false;

  // RFC 6675-style: an un-SACKed segment with >= 3 SACKed segments above it
  // is lost — but a segment already retransmitted may only be re-marked by
  // an RTO (prevents spurious-retransmission storms).  The scan can only
  // mark something when at least 3 MSS are currently SACKed, which is never
  // the case on the in-order fast path — skip the O(window) walk there.
  if (sacked_bytes_ >= 3 * opts_.mss.bytes()) {
    std::int64_t sacked_above = 0;
    for (std::size_t i = segs_.size(); i-- > 0;) {
      Segment& seg = segs_[i].seg;
      if (seg.sacked) {
        sacked_above += seg.len;
      } else if (!seg.lost && !seg.retransmitted &&
                 sacked_above >= 3 * opts_.mss.bytes()) {
        mark_lost(segs_[i].seq, seg);
        found_loss = true;
      }
    }
  }

  // Classic triple-dupACK fast retransmit: fires once on the third dupACK,
  // not on every subsequent duplicate.
  if (dupacks_ == 3 && !segs_.empty()) {
    auto& front = segs_.front();
    if (!front.seg.lost && !front.seg.sacked && !front.seg.retransmitted) {
      mark_lost(front.seq, front.seg);
      found_loss = true;
    }
  }

  // NewReno partial ACK: a cumulative ACK that advances but stays below the
  // recovery point exposes the next hole as lost too.
  if (in_recovery_ && snd_una_ < recover_point_ && dupacks_ == 0 &&
      !segs_.empty()) {
    auto& front = segs_.front();
    if (front.seq == snd_una_ && !front.seg.lost && !front.seg.sacked &&
        !front.seg.retransmitted) {
      mark_lost(front.seq, front.seg);
      found_loss = true;
    }
  }

  if (found_loss && !in_recovery_) enter_recovery();
  if (found_loss && in_recovery_) try_send();
}

void TcpSender::mark_lost(std::uint64_t seq, Segment& seg) {
  (void)seq;
  if (seg.lost || seg.sacked) return;
  seg.lost = true;
  ++lost_pending_;
  if (seg.counted_inflight) {
    inflight_ -= ByteSize(seg.len);
    seg.counted_inflight = false;
  }
}

void TcpSender::enter_recovery() {
  in_recovery_ = true;
  recover_point_ = next_seq_;
  ++loss_episodes_;
  LossEvent ev;
  ev.now = sim_.now();
  ev.inflight = inflight_;
  ev.lost_bytes = opts_.mss;
  cc_->on_loss_episode(ev);
}

void TcpSender::on_rto_fire() {
  if (segs_.empty()) return;
  ++rto_count_;
  ++rto_backoff_;
  // Everything unacked is presumed lost (no forward progress).
  for (std::size_t i = 0; i < segs_.size(); ++i) {
    auto& e = segs_[i];
    if (!e.seg.sacked) mark_lost(e.seq, e.seg);
  }
  dupacks_ = 0;
  in_recovery_ = true;
  recover_point_ = next_seq_;
  cc_->on_rto(sim_.now());
  next_send_time_ = sim_.now();
  try_send();
  if (!segs_.empty()) arm_rto();
}

}  // namespace cgs::tcp
