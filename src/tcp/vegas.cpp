#include "tcp/vegas.hpp"

#include <algorithm>

namespace cgs::tcp {

void Vegas::on_ack(const AckEvent& ack) {
  if (ack.rtt > kTimeZero) {
    base_rtt_ = std::min(base_rtt_, ack.rtt);
    min_rtt_this_rtt_ = std::min(min_rtt_this_rtt_, ack.rtt);
  }
  if (ack.in_recovery) return;

  if (cwnd_ < ssthresh_) {
    cwnd_ += ack.acked_bytes;
    // Vegas exits slow start when the delay signal appears; approximated by
    // the per-RTT check below.
  }

  // Once per RTT (delivered-bytes round counting), compare expected vs
  // actual throughput.
  if (ack.delivered_total < next_adjust_at_) return;
  next_adjust_at_ = ack.delivered_total + ack.inflight;

  if (base_rtt_ == kTimeInfinite || min_rtt_this_rtt_ == kTimeInfinite) return;
  const double base_s = to_seconds(base_rtt_);
  const double rtt_s = std::max(base_s, to_seconds(min_rtt_this_rtt_));
  min_rtt_this_rtt_ = kTimeInfinite;
  if (base_s <= 0.0) return;

  const double cwnd_seg = double(cwnd_.bytes()) / double(mss_.bytes());
  const double expected = cwnd_seg / base_s;  // segments per second
  const double actual = cwnd_seg / rtt_s;
  const double diff_seg = (expected - actual) * base_s;

  if (diff_seg < kAlphaSeg) {
    cwnd_ += mss_;
  } else if (diff_seg > kBetaSeg) {
    cwnd_ = std::max(ByteSize(cwnd_.bytes() - mss_.bytes()),
                     ByteSize(2 * mss_.bytes()));
    ssthresh_ = cwnd_;  // leave slow start once we back off
  }
}

void Vegas::on_loss_episode(const LossEvent& /*loss*/) {
  cwnd_ = std::max(ByteSize(std::int64_t(double(cwnd_.bytes()) * 0.75)),
                   ByteSize(2 * mss_.bytes()));
  ssthresh_ = cwnd_;
}

void Vegas::on_rto(Time /*now*/) {
  ssthresh_ = std::max(ByteSize(cwnd_.bytes() / 2), ByteSize(2 * mss_.bytes()));
  cwnd_ = ByteSize(2 * mss_.bytes());
}

}  // namespace cgs::tcp
