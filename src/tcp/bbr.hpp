// TCP BBR v1 (Cardwell et al., CACM 2017;
// draft-cardwell-iccrg-bbr-congestion-control-00).
//
// Model-based: estimates the bottleneck bandwidth (windowed max of delivery
// rate over 10 round trips) and the path's minimum RTT (windowed min over
// 10 s), paces at gain * BtlBw and caps inflight at cwnd_gain (2) * BDP —
// the cap the paper leans on to explain halved 7x-BDP queueing delays
// (§4.3, Table 4).
#pragma once

#include "tcp/congestion_control.hpp"
#include "util/filters.hpp"

namespace cgs::tcp {

class Bbr final : public CongestionControl {
 public:
  explicit Bbr(ByteSize mss, Time now = kTimeZero);

  void on_ack(const AckEvent& ack) override;
  void on_loss_episode(const LossEvent& loss) override;
  void on_rto(Time now) override;

  [[nodiscard]] ByteSize cwnd() const override;
  [[nodiscard]] Bandwidth pacing_rate() const override;
  [[nodiscard]] bool rate_driven() const override { return true; }
  [[nodiscard]] std::string_view name() const override { return "bbr"; }

  enum class Mode { kStartup, kDrain, kProbeBw, kProbeRtt };
  [[nodiscard]] Mode mode() const { return mode_; }
  [[nodiscard]] Bandwidth btl_bw() const;
  [[nodiscard]] Time rt_prop() const { return rt_prop_; }
  [[nodiscard]] int probe_bw_phase() const { return cycle_index_; }

 private:
  void update_round(const AckEvent& ack);
  void update_btl_bw(const AckEvent& ack);
  void update_rt_prop(const AckEvent& ack);
  void check_full_pipe(const AckEvent& ack);
  void check_drain(const AckEvent& ack);
  void update_probe_bw_cycle(const AckEvent& ack);
  void update_probe_rtt(const AckEvent& ack);
  [[nodiscard]] ByteSize bdp_bytes(double gain) const;
  void enter_probe_bw(Time now);

  static constexpr double kHighGain = 2.885;  // 2/ln(2)
  static constexpr double kDrainGain = 1.0 / kHighGain;
  static constexpr double kCwndGain = 2.0;
  static constexpr int kGainCycleLen = 8;
  static constexpr double kPacingGainCycle[kGainCycleLen] = {
      1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0};
  static constexpr Time kRtPropFilterLen = std::chrono::seconds(10);
  static constexpr Time kProbeRttDuration = std::chrono::milliseconds(200);
  static constexpr int kBtlBwFilterRounds = 10;

  ByteSize mss_;
  Mode mode_ = Mode::kStartup;

  // Bandwidth filter is round-trip indexed; we keep (value, round) pairs in
  // a time-parameterised filter keyed by round count.
  WindowedMaxFilter<std::int64_t> bw_filter_{Time(kBtlBwFilterRounds)};
  std::uint64_t round_count_ = 0;
  ByteSize next_round_delivered_{0};
  bool round_start_ = false;

  Time rt_prop_ = kTimeInfinite;
  Time rt_prop_stamp_ = kTimeZero;
  bool rt_prop_expired_ = false;

  double pacing_gain_ = kHighGain;
  double cwnd_gain_ = kHighGain;

  // Startup full-pipe detection.
  bool filled_pipe_ = false;
  Bandwidth full_bw_ = Bandwidth::zero();
  int full_bw_count_ = 0;

  // ProbeBW cycle.
  int cycle_index_ = 0;
  Time cycle_stamp_ = kTimeZero;

  // ProbeRTT.
  Time probe_rtt_done_stamp_ = kTimeZero;
  bool probe_rtt_round_done_ = false;

  ByteSize inflight_latest_{0};
  bool in_retrans_recovery_ = false;
  ByteSize prior_cwnd_{0};
};

}  // namespace cgs::tcp
