#include "tcp/rtt_estimator.hpp"

#include <algorithm>

namespace cgs::tcp {

namespace {
constexpr Time kMinRto = std::chrono::milliseconds(200);
constexpr Time kMaxRto = std::chrono::seconds(120);
constexpr Time kInitialRto = std::chrono::seconds(1);
}  // namespace

void RttEstimator::update(Time rtt) {
  latest_ = rtt;
  if (!has_sample_) {
    srtt_ = rtt;
    rttvar_ = rtt / 2;
    has_sample_ = true;
    return;
  }
  // RFC 6298: alpha = 1/8, beta = 1/4.
  const Time err = rtt > srtt_ ? rtt - srtt_ : srtt_ - rtt;
  rttvar_ = (3 * rttvar_ + err) / 4;
  srtt_ = (7 * srtt_ + rtt) / 8;
}

Time RttEstimator::rto() const {
  if (!has_sample_) return kInitialRto;
  const Time raw = srtt_ + 4 * rttvar_;
  return std::clamp(raw, kMinRto, kMaxRto);
}

}  // namespace cgs::tcp
