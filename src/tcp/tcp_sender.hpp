// Packet-level TCP bulk sender.
//
// Models the parts of a Linux TCP stack that shape bottleneck dynamics:
// byte-sequence segments, cumulative ACK + SACK scoreboard, dup-ACK fast
// retransmit with NewReno-style partial-ACK recovery, RTO with exponential
// backoff, Karn's rule for RTT samples, delivery-rate sampling, and optional
// pacing (BBR).  No handshake/teardown — flows start hot, like an iperf
// bulk download already in progress.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>

#include "net/packet.hpp"
#include "sim/timer.hpp"
#include "tcp/congestion_control.hpp"
#include "tcp/rate_sampler.hpp"
#include "tcp/rtt_estimator.hpp"

namespace cgs::tcp {

class TcpSender final : public net::PacketSink {
 public:
  struct Options {
    net::FlowId flow = 0;
    ByteSize mss{net::kTcpMss};
    std::int32_t wire_overhead = net::kIpTcpOverhead;
  };

  TcpSender(sim::Simulator& sim, net::PacketFactory& factory, Options opts,
            std::unique_ptr<CongestionControl> cc);

  /// Downstream path entry (router or access delay line). Must be set
  /// before start(); must outlive the sender.
  void set_output(net::PacketSink* out) { out_ = out; }

  /// Begin (or resume) bulk transmission of unlimited data.
  void start();
  /// Stop generating new data; in-flight segments drain normally.
  void stop();
  [[nodiscard]] bool running() const { return running_; }

  /// Queue `bytes` more application data and (re)start transmission; when
  /// everything queued so far is cumulatively ACKed, `on_complete` fires
  /// (HTTP-response semantics — used by the DASH video client).
  void send_bounded(ByteSize bytes, std::function<void()> on_complete);

  /// ACKs arrive here (wired from the upstream path).
  void handle_packet(net::PacketPtr pkt) override;

  [[nodiscard]] CongestionControl& cc() { return *cc_; }
  [[nodiscard]] const CongestionControl& cc() const { return *cc_; }
  [[nodiscard]] ByteSize inflight() const { return inflight_; }
  [[nodiscard]] ByteSize bytes_acked() const { return ByteSize(std::int64_t(snd_una_)); }
  [[nodiscard]] std::uint64_t retransmits_total() const { return retransmits_; }
  [[nodiscard]] std::uint64_t loss_episodes_total() const { return loss_episodes_; }
  [[nodiscard]] std::uint64_t rto_total() const { return rto_count_; }
  [[nodiscard]] const RttEstimator& rtt() const { return rtt_; }
  [[nodiscard]] net::FlowId flow() const { return opts_.flow; }

 private:
  struct Segment {
    std::uint32_t len = 0;
    TxRecord tx;               // rate-sampler snapshot from last transmit
    bool retransmitted = false;
    bool sacked = false;
    bool lost = false;          // marked for retransmission
    bool counted_inflight = false;
  };

  void try_send();
  /// Transmit (or retransmit) the segment starting at `seq`.
  void transmit(std::uint64_t seq, Segment& seg);
  void process_cumulative_ack(const net::TcpHeader& h, AckEvent& ev);
  void process_sack(const net::TcpHeader& h, AckEvent& ev);
  void detect_loss(const net::TcpHeader& h);
  void enter_recovery();
  void mark_lost(std::uint64_t seq, Segment& seg);
  void arm_rto();
  void on_rto_fire();
  [[nodiscard]] bool pacing_enabled() const {
    return !cc_->pacing_rate().is_zero();
  }

  sim::Simulator& sim_;
  net::PacketFactory& factory_;
  Options opts_;
  std::unique_ptr<CongestionControl> cc_;
  net::PacketSink* out_ = nullptr;

  bool running_ = false;
  // Application byte limit (bounded transfers); ~0ULL = unlimited.
  std::uint64_t app_limit_ = ~std::uint64_t{0};
  std::function<void()> on_complete_;
  std::uint64_t next_seq_ = 0;   // next new byte to send
  std::uint64_t snd_una_ = 0;    // lowest unacked byte
  std::map<std::uint64_t, Segment> segs_;  // keyed by first byte
  ByteSize inflight_{0};
  std::size_t lost_pending_ = 0;  // segments marked lost, not yet resent

  int dupacks_ = 0;
  bool in_recovery_ = false;
  std::uint64_t recover_point_ = 0;

  RttEstimator rtt_;
  Time min_rtt_ = kTimeZero;  // lifetime minimum, guards rate samples
  RateSampler sampler_;
  sim::OneShotTimer rto_timer_;
  int rto_backoff_ = 0;

  sim::OneShotTimer pace_timer_;
  Time next_send_time_ = kTimeZero;
  std::uint64_t next_tx_id_ = 1;

  std::uint64_t retransmits_ = 0;
  std::uint64_t loss_episodes_ = 0;
  std::uint64_t rto_count_ = 0;
};

}  // namespace cgs::tcp
