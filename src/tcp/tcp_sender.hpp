// Packet-level TCP bulk sender.
//
// Models the parts of a Linux TCP stack that shape bottleneck dynamics:
// byte-sequence segments, cumulative ACK + SACK scoreboard, dup-ACK fast
// retransmit with NewReno-style partial-ACK recovery, RTO with exponential
// backoff, Karn's rule for RTT samples, delivery-rate sampling, and optional
// pacing (BBR).  No handshake/teardown — flows start hot, like an iperf
// bulk download already in progress.
#pragma once

#include <cassert>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "net/packet.hpp"
#include "sim/timer.hpp"
#include "tcp/congestion_control.hpp"
#include "tcp/rate_sampler.hpp"
#include "tcp/rtt_estimator.hpp"

namespace cgs::tcp {

class TcpSender final : public net::PacketSink {
 public:
  /// Ceiling on the backed-off retransmission timeout (Linux TCP_RTO_MAX
  /// defaults to 120 s; we use a tighter bound sized for simulation runs).
  static constexpr Time kMaxRto = std::chrono::seconds(60);

  struct Options {
    net::FlowId flow = 0;
    ByteSize mss{net::kTcpMss};
    std::int32_t wire_overhead = net::kIpTcpOverhead;
  };

  TcpSender(sim::Simulator& sim, net::PacketFactory& factory, Options opts,
            std::unique_ptr<CongestionControl> cc);

  /// Downstream path entry (router or access delay line). Must be set
  /// before start(); must outlive the sender.
  void set_output(net::PacketSink* out) { out_ = out; }

  /// Begin (or resume) bulk transmission of unlimited data.
  void start();
  /// Stop generating new data; in-flight segments drain normally.
  void stop();
  [[nodiscard]] bool running() const { return running_; }

  /// Queue `bytes` more application data and (re)start transmission; when
  /// everything queued so far is cumulatively ACKed, `on_complete` fires
  /// (HTTP-response semantics — used by the DASH video client).
  void send_bounded(ByteSize bytes, std::function<void()> on_complete);

  /// ACKs arrive here (wired from the upstream path).
  void handle_packet(net::PacketPtr pkt) override;

  [[nodiscard]] CongestionControl& cc() { return *cc_; }
  [[nodiscard]] const CongestionControl& cc() const { return *cc_; }
  [[nodiscard]] ByteSize inflight() const { return inflight_; }
  [[nodiscard]] ByteSize bytes_acked() const { return ByteSize(std::int64_t(snd_una_)); }
  [[nodiscard]] std::uint64_t retransmits_total() const { return retransmits_; }
  [[nodiscard]] std::uint64_t loss_episodes_total() const { return loss_episodes_; }
  [[nodiscard]] std::uint64_t rto_total() const { return rto_count_; }
  [[nodiscard]] const RttEstimator& rtt() const { return rtt_; }
  [[nodiscard]] net::FlowId flow() const { return opts_.flow; }

 private:
  struct Segment {
    std::uint32_t len = 0;
    TxRecord tx;               // rate-sampler snapshot from last transmit
    bool retransmitted = false;
    bool sacked = false;
    bool lost = false;          // marked for retransmission
    bool counted_inflight = false;
  };

  /// Scoreboard storage. Segments enter strictly in sequence order and
  /// leave strictly from the front (cumulative ACK), so a power-of-two
  /// ring buffer replaces the former std::map: no per-segment node
  /// allocation, O(1) push/pop, binary-searchable by seq, and iteration
  /// stays cache-linear — this is touched on every ACK of every flow.
  class SegmentRing {
   public:
    struct Entry {
      std::uint64_t seq = 0;
      Segment seg;
    };

    [[nodiscard]] bool empty() const { return count_ == 0; }
    [[nodiscard]] std::size_t size() const { return count_; }
    [[nodiscard]] Entry& operator[](std::size_t i) {
      return buf_[(head_ + i) & mask_];
    }
    [[nodiscard]] const Entry& operator[](std::size_t i) const {
      return buf_[(head_ + i) & mask_];
    }
    [[nodiscard]] Entry& front() { return (*this)[0]; }
    [[nodiscard]] Entry& back() { return (*this)[count_ - 1]; }

    Entry& push_back(std::uint64_t seq, const Segment& seg) {
      assert(count_ == 0 || seq > back().seq);
      if (count_ == buf_.size()) grow();
      Entry& e = buf_[(head_ + count_++) & mask_];
      e.seq = seq;
      e.seg = seg;
      return e;
    }

    void pop_front() {
      assert(count_ > 0);
      head_ = (head_ + 1) & mask_;
      --count_;
    }

    /// Index of the first entry with entry.seq >= s; size() if none.
    [[nodiscard]] std::size_t lower_bound(std::uint64_t s) const {
      std::size_t lo = 0, hi = count_;
      while (lo < hi) {
        const std::size_t mid = (lo + hi) / 2;
        if ((*this)[mid].seq < s) {
          lo = mid + 1;
        } else {
          hi = mid;
        }
      }
      return lo;
    }

   private:
    void grow() {
      const std::size_t cap = buf_.empty() ? 64 : buf_.size() * 2;
      std::vector<Entry> next(cap);
      for (std::size_t i = 0; i < count_; ++i) next[i] = (*this)[i];
      buf_ = std::move(next);
      mask_ = cap - 1;
      head_ = 0;
    }

    std::vector<Entry> buf_;
    std::size_t mask_ = 0;
    std::size_t head_ = 0;
    std::size_t count_ = 0;
  };

  void try_send();
  /// Transmit (or retransmit) the segment starting at `seq`.
  void transmit(std::uint64_t seq, Segment& seg);
  void process_cumulative_ack(const net::TcpHeader& h, AckEvent& ev);
  void process_sack(const net::TcpHeader& h, AckEvent& ev);
  void detect_loss(const net::TcpHeader& h);
  void enter_recovery();
  void mark_lost(std::uint64_t seq, Segment& seg);
  void arm_rto();
  void on_rto_fire();
  [[nodiscard]] bool pacing_enabled() const {
    return !cc_->pacing_rate().is_zero();
  }

  sim::Simulator& sim_;
  net::PacketFactory& factory_;
  Options opts_;
  std::unique_ptr<CongestionControl> cc_;
  net::PacketSink* out_ = nullptr;

  bool running_ = false;
  // Application byte limit (bounded transfers); ~0ULL = unlimited.
  std::uint64_t app_limit_ = ~std::uint64_t{0};
  std::function<void()> on_complete_;
  std::uint64_t next_seq_ = 0;   // next new byte to send
  std::uint64_t snd_una_ = 0;    // lowest unacked byte
  SegmentRing segs_;             // scoreboard, ordered by first byte
  ByteSize inflight_{0};
  std::size_t lost_pending_ = 0;  // segments marked lost, not yet resent
  std::int64_t sacked_bytes_ = 0;  // bytes currently SACKed in the scoreboard

  int dupacks_ = 0;
  bool in_recovery_ = false;
  std::uint64_t recover_point_ = 0;

  RttEstimator rtt_;
  Time min_rtt_ = kTimeZero;  // lifetime minimum, guards rate samples
  RateSampler sampler_;
  sim::OneShotTimer rto_timer_;
  int rto_backoff_ = 0;

  sim::OneShotTimer pace_timer_;
  Time next_send_time_ = kTimeZero;
  std::uint64_t next_tx_id_ = 1;

  std::uint64_t retransmits_ = 0;
  std::uint64_t loss_episodes_ = 0;
  std::uint64_t rto_count_ = 0;
};

}  // namespace cgs::tcp
