// iperf-style bulk TCP flow: sender + receiver pair with scheduling helpers.
#pragma once

#include <memory>

#include "tcp/tcp_receiver.hpp"
#include "tcp/tcp_sender.hpp"

namespace cgs::tcp {

/// Owns one TCP sender/receiver pair and wires them to the caller-provided
/// path entries (downstream toward the receiver, upstream toward the
/// sender).  The equivalent of `iperf -c ... -t <dur>` in the paper.
class BulkTcpFlow {
 public:
  BulkTcpFlow(sim::Simulator& sim, net::PacketFactory& factory,
              net::FlowId flow, CcAlgo algo,
              ByteSize mss = ByteSize(net::kTcpMss));

  /// `downstream` receives data segments (server -> client path entry);
  /// `upstream` receives ACKs (client -> server path entry). Both must
  /// outlive the flow.
  void attach(net::PacketSink* downstream, net::PacketSink* upstream);

  /// Schedule start/stop at absolute simulation times.
  void schedule(sim::Simulator& sim, Time start_at, Time stop_at);

  [[nodiscard]] TcpSender& sender() { return sender_; }
  [[nodiscard]] TcpReceiver& receiver() { return receiver_; }
  [[nodiscard]] net::FlowId flow() const { return flow_; }

 private:
  net::FlowId flow_;
  TcpSender sender_;
  TcpReceiver receiver_;
};

}  // namespace cgs::tcp
