#include "tcp/tcp_receiver.hpp"

#include <algorithm>
#include <cassert>

namespace cgs::tcp {

void TcpReceiver::handle_packet(net::PacketPtr pkt) {
  const auto* h = std::get_if<net::TcpHeader>(&pkt->header);
  if (h == nullptr || h->is_ack || h->len == 0) return;
  ++pkts_;

  const std::uint64_t start = h->seq;
  const std::uint64_t end = h->seq + h->len;

  if (end <= rcv_nxt_) {
    // Duplicate of already-delivered data (spurious retransmission).
    send_ack();
    return;
  }

  if (start <= rcv_nxt_) {
    rcv_nxt_ = std::max(rcv_nxt_, end);
  } else {
    // Insert/merge into the out-of-order interval set.
    auto it = ooo_.lower_bound(start);
    if (it != ooo_.begin()) {
      auto prev = std::prev(it);
      if (prev->second >= start) it = prev;
    }
    std::uint64_t s = start, e = end;
    while (it != ooo_.end() && it->first <= e) {
      s = std::min(s, it->first);
      e = std::max(e, it->second);
      forget_block(it->first);
      it = ooo_.erase(it);
    }
    ooo_.emplace(s, e);
    touch_block(s);
  }

  // Pull any now-contiguous out-of-order data.
  for (auto it = ooo_.begin(); it != ooo_.end() && it->first <= rcv_nxt_;) {
    rcv_nxt_ = std::max(rcv_nxt_, it->second);
    forget_block(it->first);
    it = ooo_.erase(it);
  }

  send_ack();
}

void TcpReceiver::touch_block(std::uint64_t start) {
  forget_block(start);
  recent_blocks_.push_front(start);
}

void TcpReceiver::forget_block(std::uint64_t start) {
  for (auto it = recent_blocks_.begin(); it != recent_blocks_.end();) {
    if (*it == start) {
      it = recent_blocks_.erase(it);
    } else {
      ++it;
    }
  }
}

void TcpReceiver::send_ack() {
  if (out_ == nullptr) return;
  net::TcpHeader ack;
  ack.is_ack = true;
  ack.ack = rcv_nxt_;
  // RFC 2018: most recently updated block first, then rotate through the
  // remaining blocks so every block is reported within a few ACKs.
  int i = 0;
  for (std::uint64_t s : recent_blocks_) {
    if (i >= 3) break;
    auto it = ooo_.find(s);
    if (it == ooo_.end()) continue;
    ack.sacks[i++] = net::SackBlock{it->first, it->second};
  }
  if (i == 3 && recent_blocks_.size() > 3) {
    // Rotate the 2nd/3rd reported blocks to the back so hidden blocks
    // surface on subsequent ACKs (the first slot stays the freshest).
    recent_blocks_.push_back(recent_blocks_[1]);
    recent_blocks_.push_back(recent_blocks_[2]);
    recent_blocks_.erase(recent_blocks_.begin() + 1,
                         recent_blocks_.begin() + 3);
  }
  ++acks_;
  out_->handle_packet(factory_.make(flow_, net::TrafficClass::kTcpAck,
                                    net::kTcpAckWire, sim_.now(), ack));
}

}  // namespace cgs::tcp
