#include "tcp/bulk_app.hpp"

#include "tcp/bbr.hpp"
#include "tcp/cubic.hpp"
#include "tcp/reno.hpp"
#include "tcp/vegas.hpp"

namespace cgs::tcp {

std::string_view to_string(CcAlgo a) {
  switch (a) {
    case CcAlgo::kCubic: return "cubic";
    case CcAlgo::kBbr: return "bbr";
    case CcAlgo::kReno: return "reno";
    case CcAlgo::kVegas: return "vegas";
  }
  return "?";
}

std::unique_ptr<CongestionControl> make_cc(CcAlgo algo, ByteSize mss) {
  switch (algo) {
    case CcAlgo::kCubic: return std::make_unique<Cubic>(mss);
    case CcAlgo::kBbr: return std::make_unique<Bbr>(mss);
    case CcAlgo::kReno: return std::make_unique<Reno>(mss);
    case CcAlgo::kVegas: return std::make_unique<Vegas>(mss);
  }
  return nullptr;
}

BulkTcpFlow::BulkTcpFlow(sim::Simulator& sim, net::PacketFactory& factory,
                         net::FlowId flow, CcAlgo algo, ByteSize mss)
    : flow_(flow),
      sender_(sim, factory, TcpSender::Options{flow, mss, net::kIpTcpOverhead},
              make_cc(algo, mss)),
      receiver_(sim, factory, flow) {}

void BulkTcpFlow::attach(net::PacketSink* downstream,
                         net::PacketSink* upstream) {
  sender_.set_output(downstream);
  receiver_.set_output(upstream);
}

void BulkTcpFlow::schedule(sim::Simulator& sim, Time start_at, Time stop_at) {
  sim.schedule_at(start_at, [this] { sender_.start(); });
  sim.schedule_at(stop_at, [this] { sender_.stop(); });
}

}  // namespace cgs::tcp
