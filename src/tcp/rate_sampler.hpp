// Delivery-rate estimation per draft-cheng-iccrg-delivery-rate-estimation.
//
// Each transmitted segment snapshots connection delivery state; on ACK the
// sampler produces the bandwidth actually achieved between the send and the
// ACK — the signal BBR's model is built from.
#pragma once

#include <cstdint>

#include "util/units.hpp"

namespace cgs::tcp {

/// Per-segment connection snapshot taken at transmit time.
struct TxRecord {
  ByteSize delivered_at_send{0};  // C.delivered when this segment left
  Time delivered_time_at_send = kTimeZero;
  Time first_sent_time = kTimeZero;  // C.first_sent_time at send
  Time sent_time = kTimeZero;
  bool app_limited = false;
};

/// Result of sampling one ACKed segment.
struct RateSample {
  Bandwidth delivery_rate;  // zero when the interval was degenerate
  Time interval = kTimeZero;
  ByteSize delivered{0};    // bytes delivered over the interval
  bool app_limited = false;
  bool valid = false;
};

class RateSampler {
 public:
  /// Called when a segment is (re)transmitted; returns the snapshot that the
  /// sender should store with the segment.
  TxRecord on_send(Time now, ByteSize inflight_before_send);

  /// Called when a segment is cumulatively ACKed or SACKed.
  RateSample on_ack(const TxRecord& rec, ByteSize acked_bytes, Time now);

  /// Mark the connection app-limited until `delivered + inflight` is acked.
  void set_app_limited(ByteSize inflight, Time now);

  /// Samples whose interval is below this are marked invalid (the draft's
  /// `rs.interval < tp->min_rtt` guard against micro-burst inflation).
  void set_min_interval(Time t) { min_interval_ = t; }

  [[nodiscard]] ByteSize delivered_total() const { return delivered_; }

 private:
  ByteSize delivered_{0};
  Time delivered_time_ = kTimeZero;
  Time first_sent_time_ = kTimeZero;
  ByteSize app_limited_until_{0};  // delivered_ threshold; 0 = not limited
  Time min_interval_ = kTimeZero;
};

}  // namespace cgs::tcp
