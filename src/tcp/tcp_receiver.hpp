// TCP bulk receiver: cumulative ACKs with up to three SACK blocks.
#pragma once

#include <cstdint>
#include <deque>
#include <map>

#include "net/packet.hpp"
#include "sim/simulator.hpp"

namespace cgs::tcp {

class TcpReceiver final : public net::PacketSink {
 public:
  TcpReceiver(sim::Simulator& sim, net::PacketFactory& factory,
              net::FlowId flow)
      : sim_(sim), factory_(factory), flow_(flow) {}

  /// Upstream path entry for ACKs; must outlive the receiver.
  void set_output(net::PacketSink* out) { out_ = out; }

  void handle_packet(net::PacketPtr pkt) override;

  /// In-order bytes delivered to the "application".
  [[nodiscard]] ByteSize bytes_delivered() const {
    return ByteSize(std::int64_t(rcv_nxt_));
  }
  [[nodiscard]] std::uint64_t packets_received() const { return pkts_; }
  [[nodiscard]] std::uint64_t acks_sent() const { return acks_; }

 private:
  void send_ack();
  /// Mark a block as most-recently-updated.
  void touch_block(std::uint64_t start);
  /// Remove a block from the recency list (merged or consumed).
  void forget_block(std::uint64_t start);

  sim::Simulator& sim_;
  net::PacketFactory& factory_;
  net::FlowId flow_;
  net::PacketSink* out_ = nullptr;

  std::uint64_t rcv_nxt_ = 0;
  // Out-of-order intervals [start, end), disjoint, all > rcv_nxt_.
  std::map<std::uint64_t, std::uint64_t> ooo_;
  // Block starts in most-recently-updated-first order (RFC 2018 §4): the
  // sender must learn about every block within a few ACKs even though only
  // three blocks fit per ACK.
  std::deque<std::uint64_t> recent_blocks_;
  std::uint64_t pkts_ = 0;
  std::uint64_t acks_ = 0;
};

}  // namespace cgs::tcp
