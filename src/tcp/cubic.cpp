#include "tcp/cubic.hpp"

#include <algorithm>
#include <cmath>

namespace cgs::tcp {

Cubic::Cubic(ByteSize mss) : mss_(mss) {}

ByteSize Cubic::cwnd() const {
  return ByteSize(std::int64_t(std::max(2.0, cwnd_seg_) * double(mss_.bytes())));
}

double Cubic::w_cubic(double t_sec) const {
  const double d = t_sec - k_;
  return kC * d * d * d + w_max_seg_;
}

void Cubic::start_epoch(Time now) {
  epoch_started_ = true;
  epoch_start_ = now;
  // W_max was recorded at the last congestion event (with fast
  // convergence). If the window has since grown past it (post-RTO slow
  // start), the plateau is the current window.
  if (w_max_seg_ < cwnd_seg_) w_max_seg_ = cwnd_seg_;
  k_ = std::cbrt(w_max_seg_ * (1.0 - kBeta) / kC);
  w_est_seg_ = cwnd_seg_;
}

void Cubic::on_ack(const AckEvent& ack) {
  if (ack.in_recovery) return;  // window frozen during fast recovery
  if (ack.rtt > kTimeZero) last_rtt_ = ack.rtt;
  const double acked_seg = double(ack.acked_bytes.bytes()) / double(mss_.bytes());

  if (cwnd_seg_ < ssthresh_seg_) {
    cwnd_seg_ += acked_seg;  // slow start
    return;
  }

  if (!epoch_started_) start_epoch(ack.now);

  const double t = to_seconds(ack.now - epoch_start_);
  const double rtt_s = std::max(1e-4, to_seconds(last_rtt_));

  // TCP-friendly window estimate (RFC 8312 §4.2).
  w_est_seg_ += acked_seg * 3.0 * (1.0 - kBeta) / (1.0 + kBeta) / cwnd_seg_;

  const double target = w_cubic(t + rtt_s);
  double next = cwnd_seg_;
  if (target > cwnd_seg_) {
    next += (target - cwnd_seg_) / cwnd_seg_ * acked_seg;
  } else {
    // In the concave plateau / before K: grow very slowly.
    next += 0.01 * acked_seg / cwnd_seg_;
  }
  cwnd_seg_ = std::max(next, w_est_seg_);
}

void Cubic::on_loss_episode(const LossEvent& loss) {
  epoch_started_ = false;
  // RFC 8312 fast convergence: a loss below the previous plateau means a
  // new flow is taking bandwidth — release some by lowering W_max further.
  if (cwnd_seg_ < w_last_max_seg_) {
    w_max_seg_ = cwnd_seg_ * (2.0 - kBeta) / 2.0;
  } else {
    w_max_seg_ = cwnd_seg_;
  }
  w_last_max_seg_ = cwnd_seg_;
  cwnd_seg_ = std::max(2.0, cwnd_seg_ * kBeta);
  ssthresh_seg_ = cwnd_seg_;
  (void)loss;
}

void Cubic::on_rto(Time /*now*/) {
  ssthresh_seg_ = std::max(2.0, cwnd_seg_ * kBeta);
  cwnd_seg_ = 1.0;
  epoch_started_ = false;
  w_last_max_seg_ = std::max(w_last_max_seg_, ssthresh_seg_);
}

}  // namespace cgs::tcp
