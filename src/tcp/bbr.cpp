#include "tcp/bbr.hpp"

#include <algorithm>

namespace cgs::tcp {

Bbr::Bbr(ByteSize mss, Time now) : mss_(mss) {
  rt_prop_stamp_ = now;
  cycle_stamp_ = now;
}

Bandwidth Bbr::btl_bw() const {
  return Bandwidth(bw_filter_.get_or(0));
}

ByteSize Bbr::bdp_bytes(double gain) const {
  if (rt_prop_ == kTimeInfinite || btl_bw().is_zero()) {
    // No model yet: initial window of 10 segments scaled by gain.
    return ByteSize(std::int64_t(10 * mss_.bytes() * gain));
  }
  const ByteSize b = bdp(btl_bw(), rt_prop_);
  return ByteSize(std::int64_t(double(b.bytes()) * gain));
}

ByteSize Bbr::cwnd() const {
  if (mode_ == Mode::kProbeRtt) {
    return ByteSize(4 * mss_.bytes());
  }
  const ByteSize target = bdp_bytes(cwnd_gain_);
  return std::max(target, ByteSize(4 * mss_.bytes()));
}

Bandwidth Bbr::pacing_rate() const {
  const Bandwidth bw = btl_bw();
  if (bw.is_zero()) {
    // Before any sample: pace the initial window over the (unknown) RTT —
    // use a nominal 1 ms to be effectively unpaced at startup.
    return Bandwidth::mbps(100.0) * pacing_gain_;
  }
  return bw * pacing_gain_;
}

void Bbr::update_round(const AckEvent& ack) {
  round_start_ = false;
  if (ack.delivered_total >= next_round_delivered_) {
    next_round_delivered_ = ack.delivered_total + ack.inflight;
    ++round_count_;
    round_start_ = true;
  }
}

void Bbr::update_btl_bw(const AckEvent& ack) {
  if (!ack.rate.valid) return;
  if (ack.rate.app_limited &&
      ack.rate.delivery_rate.bits_per_sec() <= bw_filter_.get_or(0)) {
    return;  // app-limited samples may only raise the estimate
  }
  // The filter window is measured in rounds; reuse the time-window filter
  // with "time" = round count.
  bw_filter_.update(ack.rate.delivery_rate.bits_per_sec(),
                    Time(std::int64_t(round_count_)));
}

void Bbr::update_rt_prop(const AckEvent& ack) {
  rt_prop_expired_ = ack.now > rt_prop_stamp_ + kRtPropFilterLen;
  if (ack.rtt > kTimeZero && (ack.rtt <= rt_prop_ || rt_prop_expired_)) {
    rt_prop_ = ack.rtt;
    rt_prop_stamp_ = ack.now;
  }
}

void Bbr::check_full_pipe(const AckEvent& ack) {
  if (filled_pipe_ || !round_start_ || ack.rate.app_limited) return;
  // BtlBw still growing >= 25% per round?
  if (btl_bw().bits_per_sec() >=
      std::int64_t(double(full_bw_.bits_per_sec()) * 1.25)) {
    full_bw_ = btl_bw();
    full_bw_count_ = 0;
    return;
  }
  if (++full_bw_count_ >= 3) filled_pipe_ = true;
}

void Bbr::enter_probe_bw(Time now) {
  mode_ = Mode::kProbeBw;
  pacing_gain_ = 1.0;
  cwnd_gain_ = kCwndGain;
  // Start in a random-ish phase in real BBR; deterministic phase 2 here
  // (steady) keeps runs reproducible. Competing-BBR dynamics are preserved
  // because phase advancing is data-driven.
  cycle_index_ = 2;
  cycle_stamp_ = now;
}

void Bbr::check_drain(const AckEvent& ack) {
  if (mode_ == Mode::kStartup && filled_pipe_) {
    mode_ = Mode::kDrain;
    pacing_gain_ = kDrainGain;
    cwnd_gain_ = kHighGain;
  }
  if (mode_ == Mode::kDrain && ack.inflight <= bdp_bytes(1.0)) {
    enter_probe_bw(ack.now);
  }
}

void Bbr::update_probe_bw_cycle(const AckEvent& ack) {
  if (mode_ != Mode::kProbeBw) return;
  const double gain = kPacingGainCycle[cycle_index_];
  bool advance = false;
  const bool elapsed = ack.now - cycle_stamp_ >
                       (rt_prop_ == kTimeInfinite ? std::chrono::milliseconds(10)
                                                  : rt_prop_);
  if (gain > 1.0) {
    // Stay in the probing phase until we've actually created 1.25x BDP of
    // inflight (or a full rt_prop has passed and we saw losses).
    advance = elapsed && ack.inflight >= bdp_bytes(gain);
  } else if (gain < 1.0) {
    advance = elapsed || ack.inflight <= bdp_bytes(1.0);
  } else {
    advance = elapsed;
  }
  if (advance) {
    cycle_index_ = (cycle_index_ + 1) % kGainCycleLen;
    cycle_stamp_ = ack.now;
  }
  pacing_gain_ = kPacingGainCycle[cycle_index_];
}

void Bbr::update_probe_rtt(const AckEvent& ack) {
  if (rt_prop_expired_ && mode_ != Mode::kProbeRtt &&
      mode_ != Mode::kStartup) {
    mode_ = Mode::kProbeRtt;
    pacing_gain_ = 1.0;
    prior_cwnd_ = cwnd();
    probe_rtt_done_stamp_ = kTimeZero;
  }
  if (mode_ != Mode::kProbeRtt) return;

  if (probe_rtt_done_stamp_ == kTimeZero &&
      ack.inflight <= ByteSize(4 * mss_.bytes())) {
    probe_rtt_done_stamp_ = ack.now + kProbeRttDuration;
    probe_rtt_round_done_ = false;
    next_round_delivered_ = ack.delivered_total + ack.inflight;
  } else if (probe_rtt_done_stamp_ != kTimeZero) {
    if (round_start_) probe_rtt_round_done_ = true;
    if (probe_rtt_round_done_ && ack.now > probe_rtt_done_stamp_) {
      rt_prop_stamp_ = ack.now;
      if (filled_pipe_) {
        enter_probe_bw(ack.now);
      } else {
        mode_ = Mode::kStartup;
        pacing_gain_ = kHighGain;
        cwnd_gain_ = kHighGain;
      }
    }
  }
}

void Bbr::on_ack(const AckEvent& ack) {
  inflight_latest_ = ack.inflight;
  update_round(ack);
  update_btl_bw(ack);
  check_full_pipe(ack);
  check_drain(ack);
  update_probe_bw_cycle(ack);
  update_rt_prop(ack);
  update_probe_rtt(ack);
}

void Bbr::on_loss_episode(const LossEvent& /*loss*/) {
  // BBR v1 does not treat packet loss as a congestion signal; the inflight
  // cap (cwnd = 2*BDP) is its only bound. (This is exactly the behaviour the
  // paper references in §4.3.)
}

void Bbr::on_rto(Time /*now*/) {
  // Draft: on RTO, save cwnd and conservatively restart; the model
  // (BtlBw/RTprop filters) is retained.
  prior_cwnd_ = cwnd();
}

}  // namespace cgs::tcp
