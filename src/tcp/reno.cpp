#include "tcp/reno.hpp"

#include <algorithm>

namespace cgs::tcp {

void Reno::on_ack(const AckEvent& ack) {
  if (ack.in_recovery) return;
  if (cwnd_ < ssthresh_) {
    cwnd_ += ack.acked_bytes;  // slow start: +1 MSS per MSS acked
    return;
  }
  // Congestion avoidance: +1 MSS per cwnd of acked bytes.
  ack_credit_ += ack.acked_bytes.bytes();
  while (ack_credit_ >= cwnd_.bytes()) {
    ack_credit_ -= cwnd_.bytes();
    cwnd_ += mss_;
  }
}

void Reno::on_loss_episode(const LossEvent& /*loss*/) {
  ssthresh_ = std::max(ByteSize(cwnd_.bytes() / 2), ByteSize(2 * mss_.bytes()));
  cwnd_ = ssthresh_;
  ack_credit_ = 0;
}

void Reno::on_rto(Time /*now*/) {
  ssthresh_ = std::max(ByteSize(cwnd_.bytes() / 2), ByteSize(2 * mss_.bytes()));
  cwnd_ = mss_;
  ack_credit_ = 0;
}

}  // namespace cgs::tcp
