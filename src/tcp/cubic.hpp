// TCP Cubic (Ha, Rhee, Xu 2008; RFC 8312).
//
// Loss-based: the window follows a cubic function of time since the last
// congestion event, with a TCP-friendly (Reno-tracking) floor and fast
// convergence.  This is the algorithm the paper's iperf flow runs when
// configured "cubic" (Linux 5.4 default).
#pragma once

#include "tcp/congestion_control.hpp"

namespace cgs::tcp {

class Cubic final : public CongestionControl {
 public:
  explicit Cubic(ByteSize mss);

  void on_ack(const AckEvent& ack) override;
  void on_loss_episode(const LossEvent& loss) override;
  void on_rto(Time now) override;

  [[nodiscard]] ByteSize cwnd() const override;
  [[nodiscard]] std::string_view name() const override { return "cubic"; }

  // Exposed for unit tests.
  [[nodiscard]] double cwnd_segments() const { return cwnd_seg_; }
  [[nodiscard]] double ssthresh_segments() const { return ssthresh_seg_; }
  [[nodiscard]] bool in_slow_start() const { return cwnd_seg_ < ssthresh_seg_; }

 private:
  /// Cubic window (in segments) at time t since epoch start.
  [[nodiscard]] double w_cubic(double t_sec) const;
  void start_epoch(Time now);

  static constexpr double kBeta = 0.7;   // multiplicative decrease
  static constexpr double kC = 0.4;      // cubic scaling constant
  static constexpr double kInitCwnd = 10.0;

  ByteSize mss_;
  double cwnd_seg_ = kInitCwnd;
  double ssthresh_seg_ = 1e9;  // effectively infinite until first loss

  // Cubic epoch state.
  bool epoch_started_ = false;
  Time epoch_start_ = kTimeZero;
  double w_max_seg_ = 0.0;
  double w_last_max_seg_ = 0.0;
  double k_ = 0.0;  // time (s) for the cubic to return to w_max

  // TCP-friendly region estimate.
  double w_est_seg_ = 0.0;
  Time last_rtt_ = std::chrono::milliseconds(100);
};

}  // namespace cgs::tcp
