// RFC 6298 smoothed RTT estimation and retransmission timeout.
#pragma once

#include "util/units.hpp"

namespace cgs::tcp {

class RttEstimator {
 public:
  /// Linux-like bounds: min RTO 200 ms, max 120 s, initial 1 s.
  RttEstimator() = default;

  /// Feed one RTT measurement (from a never-retransmitted segment — Karn).
  void update(Time rtt);

  [[nodiscard]] bool has_sample() const { return has_sample_; }
  [[nodiscard]] Time srtt() const { return srtt_; }
  [[nodiscard]] Time rttvar() const { return rttvar_; }
  [[nodiscard]] Time latest() const { return latest_; }

  /// Current RTO (before exponential backoff).
  [[nodiscard]] Time rto() const;

 private:
  bool has_sample_ = false;
  Time srtt_ = kTimeZero;
  Time rttvar_ = kTimeZero;
  Time latest_ = kTimeZero;
};

}  // namespace cgs::tcp
