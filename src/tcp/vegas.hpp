// TCP Vegas (Brakmo & Peterson 1994) — the delay-based representative from
// Turkovic et al.'s taxonomy (paper §2.2); included as an extra baseline.
#pragma once

#include "tcp/congestion_control.hpp"

namespace cgs::tcp {

class Vegas final : public CongestionControl {
 public:
  explicit Vegas(ByteSize mss) : mss_(mss), cwnd_(10 * mss.bytes()) {}

  void on_ack(const AckEvent& ack) override;
  void on_loss_episode(const LossEvent& loss) override;
  void on_rto(Time now) override;

  [[nodiscard]] ByteSize cwnd() const override { return cwnd_; }
  [[nodiscard]] std::string_view name() const override { return "vegas"; }

  [[nodiscard]] Time base_rtt() const { return base_rtt_; }

 private:
  static constexpr double kAlphaSeg = 2.0;  // lower diff bound (segments)
  static constexpr double kBetaSeg = 4.0;   // upper diff bound (segments)

  ByteSize mss_;
  ByteSize cwnd_;
  ByteSize ssthresh_{std::int64_t(1) << 40};
  Time base_rtt_ = kTimeInfinite;
  Time min_rtt_this_rtt_ = kTimeInfinite;
  ByteSize next_adjust_at_{0};  // delivered_total threshold for per-RTT step
};

}  // namespace cgs::tcp
