// TCP NewReno-style AIMD — baseline congestion control for the ablation
// benches and for sanity-checking the sender machinery against textbook
// dynamics.
#pragma once

#include "tcp/congestion_control.hpp"

namespace cgs::tcp {

class Reno final : public CongestionControl {
 public:
  explicit Reno(ByteSize mss) : mss_(mss), cwnd_(10 * mss.bytes()) {}

  void on_ack(const AckEvent& ack) override;
  void on_loss_episode(const LossEvent& loss) override;
  void on_rto(Time now) override;

  [[nodiscard]] ByteSize cwnd() const override { return cwnd_; }
  [[nodiscard]] std::string_view name() const override { return "reno"; }

  [[nodiscard]] ByteSize ssthresh() const { return ssthresh_; }
  [[nodiscard]] bool in_slow_start() const { return cwnd_ < ssthresh_; }

 private:
  ByteSize mss_;
  ByteSize cwnd_;
  ByteSize ssthresh_{std::int64_t(1) << 40};
  std::int64_t ack_credit_ = 0;  // bytes acked since last CA increment
};

}  // namespace cgs::tcp
