// Pluggable TCP congestion control.
//
// The sender drives implementations through this interface; Cubic, BBR,
// Reno and Vegas live in sibling files.  cwnd is in bytes; a zero pacing
// rate means "not paced" (pure ACK clocking, as Linux Cubic without fq).
#pragma once

#include <memory>
#include <string_view>

#include "tcp/rate_sampler.hpp"
#include "util/units.hpp"

namespace cgs::tcp {

/// Everything a CC algorithm may want to know about one incoming ACK.
struct AckEvent {
  Time now = kTimeZero;
  ByteSize acked_bytes{0};     // newly cumulatively-acked + newly SACKed
  Time rtt = kTimeZero;        // measurement from this ACK (zero if none)
  RateSample rate;             // delivery-rate sample (may be !valid)
  ByteSize inflight{0};        // bytes in flight after processing this ACK
  ByteSize delivered_total{0}; // connection lifetime delivered bytes
  bool in_recovery = false;    // sender currently in fast recovery
};

/// A loss episode (one per fast-retransmit entry, not per lost packet).
struct LossEvent {
  Time now = kTimeZero;
  ByteSize inflight{0};
  ByteSize lost_bytes{0};
};

class CongestionControl {
 public:
  virtual ~CongestionControl() = default;

  virtual void on_ack(const AckEvent& ack) = 0;
  virtual void on_loss_episode(const LossEvent& loss) = 0;
  virtual void on_rto(Time now) = 0;
  /// Called when the sender leaves fast recovery.
  virtual void on_exit_recovery(Time /*now*/) {}

  [[nodiscard]] virtual ByteSize cwnd() const = 0;
  /// Zero = unpaced.
  [[nodiscard]] virtual Bandwidth pacing_rate() const { return Bandwidth::zero(); }
  /// True for algorithms (BBR) that keep sending through loss recovery at
  /// their model rate rather than freezing the window.
  [[nodiscard]] virtual bool rate_driven() const { return false; }
  [[nodiscard]] virtual std::string_view name() const = 0;
};

using CcFactory = std::unique_ptr<CongestionControl> (*)(ByteSize mss, Time now);

/// Which algorithm a scenario's competing flow runs.
enum class CcAlgo { kCubic, kBbr, kReno, kVegas };

[[nodiscard]] std::string_view to_string(CcAlgo a);
[[nodiscard]] std::unique_ptr<CongestionControl> make_cc(CcAlgo algo, ByteSize mss);

}  // namespace cgs::tcp
