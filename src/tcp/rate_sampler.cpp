#include "tcp/rate_sampler.hpp"

#include <algorithm>

namespace cgs::tcp {

TxRecord RateSampler::on_send(Time now, ByteSize inflight_before_send) {
  if (inflight_before_send.bytes() == 0) {
    // Restarting from idle: reset the delivery clock so idle time is not
    // counted as transmission time.
    first_sent_time_ = now;
    delivered_time_ = now;
  }
  TxRecord rec;
  rec.delivered_at_send = delivered_;
  rec.delivered_time_at_send = delivered_time_;
  rec.first_sent_time = first_sent_time_;
  rec.sent_time = now;
  rec.app_limited = app_limited_until_.bytes() != 0;
  first_sent_time_ = now;
  return rec;
}

RateSample RateSampler::on_ack(const TxRecord& rec, ByteSize acked_bytes,
                               Time now) {
  delivered_ += acked_bytes;
  delivered_time_ = now;
  if (app_limited_until_.bytes() != 0 && delivered_ > app_limited_until_) {
    app_limited_until_ = ByteSize(0);
  }

  RateSample rs;
  rs.app_limited = rec.app_limited;
  rs.delivered = delivered_ - rec.delivered_at_send;

  const Time send_elapsed = rec.sent_time - rec.first_sent_time;
  const Time ack_elapsed = now - rec.delivered_time_at_send;
  rs.interval = std::max(send_elapsed, ack_elapsed);
  if (rs.interval <= kTimeZero || rs.delivered.bytes() <= 0 ||
      rs.interval < min_interval_) {
    return rs;  // not valid
  }
  rs.delivery_rate = rate_of(rs.delivered, rs.interval);
  rs.valid = true;
  return rs;
}

void RateSampler::set_app_limited(ByteSize inflight, Time /*now*/) {
  app_limited_until_ = delivered_ + inflight;
  if (app_limited_until_.bytes() == 0) app_limited_until_ = ByteSize(1);
}

}  // namespace cgs::tcp
