#include "core/tracelog.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "util/csv.hpp"

namespace cgs::core {

std::string_view to_string(TraceEvent e) {
  switch (e) {
    case TraceEvent::kArrival: return "arrival";
    case TraceEvent::kDrop: return "drop";
    case TraceEvent::kTransmit: return "transmit";
    case TraceEvent::kDeliver: return "deliver";
  }
  return "?";
}

void TraceLog::record(TraceEvent e, const net::Packet& p, Time t) {
  records_.push_back(
      TraceRecord{t, e, p.flow, p.klass, p.size_bytes, p.uid});
}

void TraceLog::attach(net::Link& link, unsigned events) {
  auto want = [events](TraceEvent e) {
    return (events & (1u << unsigned(e))) != 0;
  };
  if (want(TraceEvent::kArrival)) {
    link.sniffer().on_arrival([this](const net::Packet& p, Time t) {
      record(TraceEvent::kArrival, p, t);
    });
  }
  if (want(TraceEvent::kDrop)) {
    link.sniffer().on_drop(
        [this](const net::Packet& p, net::DropReason, Time t) {
          record(TraceEvent::kDrop, p, t);
        });
  }
  if (want(TraceEvent::kTransmit)) {
    link.sniffer().on_transmit([this](const net::Packet& p, Time t) {
      record(TraceEvent::kTransmit, p, t);
    });
  }
  if (want(TraceEvent::kDeliver)) {
    link.sniffer().on_deliver([this](const net::Packet& p, Time t) {
      record(TraceEvent::kDeliver, p, t);
    });
  }
}

void TraceLog::write_csv(const std::string& path) const {
  CsvWriter csv(path);
  csv.header({"t_s", "event", "flow", "class", "size_bytes", "uid"});
  for (const auto& r : records_) {
    csv.row({std::to_string(to_seconds(r.at)),
             std::string(to_string(r.event)), std::to_string(r.flow),
             std::string(net::to_string(r.klass)),
             std::to_string(r.size_bytes), std::to_string(r.uid)});
  }
}

Bandwidth FlowSummary::goodput() const {
  if (last_delivery <= first_delivery) return Bandwidth::zero();
  return rate_of(ByteSize(bytes_delivered), last_delivery - first_delivery);
}

double FlowSummary::drop_rate() const {
  const auto total = packets_delivered + packets_dropped;
  return total == 0 ? 0.0 : double(packets_dropped) / double(total);
}

std::vector<FlowSummary> TraceLog::summarize(Time from, Time to) const {
  std::map<net::FlowId, FlowSummary> flows;
  std::map<net::FlowId, std::vector<Time>> deliveries;
  for (const auto& r : records_) {
    if (r.at < from || r.at >= to) continue;
    FlowSummary& s = flows[r.flow];
    s.flow = r.flow;
    if (r.event == TraceEvent::kDeliver) {
      ++s.packets_delivered;
      s.bytes_delivered += r.size_bytes;
      s.first_delivery = std::min(s.first_delivery, r.at);
      s.last_delivery = std::max(s.last_delivery, r.at);
      deliveries[r.flow].push_back(r.at);
    } else if (r.event == TraceEvent::kDrop) {
      ++s.packets_dropped;
    }
  }

  // Inter-arrival jitter: mean absolute deviation from the mean gap.
  for (auto& [flow, times] : deliveries) {
    if (times.size() < 3) continue;
    std::sort(times.begin(), times.end());
    double mean_gap = 0;
    for (std::size_t i = 1; i < times.size(); ++i) {
      mean_gap += to_seconds(times[i] - times[i - 1]);
    }
    mean_gap /= double(times.size() - 1);
    double mad = 0;
    for (std::size_t i = 1; i < times.size(); ++i) {
      mad += std::abs(to_seconds(times[i] - times[i - 1]) - mean_gap);
    }
    mad /= double(times.size() - 1);
    flows[flow].jitter = from_seconds(mad);
  }

  std::vector<FlowSummary> out;
  out.reserve(flows.size());
  for (auto& [id, s] : flows) out.push_back(s);
  return out;
}

}  // namespace cgs::core
