#include "core/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "util/stats.hpp"

namespace cgs::core {

namespace {

struct WindowStats {
  double mean = 0.0;
  double sd = 0.0;
};

WindowStats window_stats(const std::vector<double>& series, Time interval,
                         Time from, Time to) {
  RunningStats s;
  const auto lo = std::size_t(from.count() / interval.count());
  const auto hi =
      std::min(std::size_t(to.count() / interval.count()), series.size());
  for (std::size_t i = lo; i < hi; ++i) s.add(series[i]);
  return {s.mean(), s.stddev()};
}

/// First time in [from, limit) at which the trailing `smooth_n`-sample mean
/// of `series` lies within [level - band, level + band]; negative if never.
double first_entry_s(const std::vector<double>& series, Time interval,
                     Time from, Time limit, double level, double band,
                     int smooth_n) {
  const auto lo = std::size_t(from.count() / interval.count());
  const auto hi =
      std::min(std::size_t(limit.count() / interval.count()), series.size());
  for (std::size_t i = lo; i < hi; ++i) {
    RunningStats s;
    for (int k = 0; k < smooth_n && i >= std::size_t(k); ++k) {
      s.add(series[i - std::size_t(k)]);
    }
    const double v = s.mean();
    if (std::abs(v - level) <= band) {
      return to_seconds(Time(std::int64_t(i) * interval.count()) - from);
    }
  }
  return -1.0;
}

}  // namespace

double fairness_ratio(const std::vector<double>& game_mbps,
                      const std::vector<double>& tcp_mbps,
                      Time sample_interval, Bandwidth capacity,
                      const AnalysisWindows& w) {
  const WindowStats g =
      window_stats(game_mbps, sample_interval, w.fairness_from, w.fairness_to);
  const WindowStats t =
      window_stats(tcp_mbps, sample_interval, w.fairness_from, w.fairness_to);
  const double cap = capacity.megabits_per_sec();
  if (cap <= 0.0) return 0.0;
  return std::clamp((g.mean - t.mean) / cap, -1.0, 1.0);
}

ResponseRecovery response_recovery(const std::vector<double>& game_mbps,
                                   Time sample_interval, Time tcp_start,
                                   Time tcp_stop, const AnalysisWindows& w) {
  constexpr int kSmoothSamples = 5;  // 2.5 s trailing window at 0.5 s buckets

  const WindowStats original = window_stats(game_mbps, sample_interval,
                                            w.original_from, w.original_to);
  const WindowStats settled = window_stats(game_mbps, sample_interval,
                                           w.settled_from, w.settled_to);

  ResponseRecovery rr;

  // Guard: an sd of ~0 makes the band unreachable; floor it at 5% of level.
  const double resp_band = std::max(settled.sd, 0.05 * settled.mean);
  const double resp = first_entry_s(game_mbps, sample_interval, tcp_start,
                                    tcp_stop, settled.mean, resp_band,
                                    kSmoothSamples);
  const double resp_limit = to_seconds(tcp_stop - tcp_start);
  rr.responded = resp >= 0.0;
  rr.response_s = rr.responded ? resp : resp_limit;

  const double rec_band = std::max(original.sd, 0.05 * original.mean);
  const Time rec_limit_t = tcp_stop + w.recovery_limit;
  const double rec = first_entry_s(game_mbps, sample_interval, tcp_stop,
                                   rec_limit_t, original.mean, rec_band,
                                   kSmoothSamples);
  rr.recovered = rec >= 0.0;
  rr.recovery_s = rr.recovered ? rec : to_seconds(w.recovery_limit);
  return rr;
}

double adaptiveness(const ResponseRecovery& rr, double c_max_s,
                    double e_max_s) {
  const double c = c_max_s > 0.0 ? rr.response_s / c_max_s : 0.0;
  const double e = e_max_s > 0.0 ? rr.recovery_s / e_max_s : 0.0;
  return 0.5 * (1.0 - c) + 0.5 * (1.0 - e);
}

double harm_more_is_better(double solo, double with_competitor) {
  if (solo <= 0.0) return 0.0;
  return std::clamp((solo - with_competitor) / solo, 0.0, 1.0);
}

double harm_less_is_better(double solo, double with_competitor) {
  if (with_competitor <= 0.0) return 0.0;
  return std::clamp((with_competitor - solo) / with_competitor, 0.0, 1.0);
}

double jain_index(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0, sq = 0.0;
  for (double x : xs) {
    sum += x;
    sq += x * x;
  }
  if (sq <= 0.0) return 0.0;
  return sum * sum / (double(xs.size()) * sq);
}

std::vector<double> flow_throughputs_mbps(const RunTrace& t, Time from,
                                          Time to) {
  std::vector<double> out;
  out.reserve(t.flows.size());
  for (const FlowTrace& f : t.flows) {
    if (f.kind == FlowKind::kPing) continue;
    out.push_back(t.mean_bitrate_mbps(f.mbps, from, to));
  }
  return out;
}

double jain_index(const RunTrace& t, const AnalysisWindows& w) {
  return jain_index(flow_throughputs_mbps(t, w.fairness_from, w.fairness_to));
}

}  // namespace cgs::core
