#include "core/ping.hpp"

namespace cgs::core {

void PingResponder::handle_packet(net::PacketPtr pkt) {
  const auto* h = std::get_if<net::PingHeader>(&pkt->header);
  if (h == nullptr || h->is_reply || out_ == nullptr) return;
  net::PingHeader reply = *h;
  reply.is_reply = true;
  out_->handle_packet(factory_.make(flow_, net::TrafficClass::kPing,
                                    net::kPingWire, sim_.now(), reply));
}

PingClient::PingClient(sim::Simulator& sim, net::PacketFactory& factory,
                       net::FlowId flow, Time interval)
    : sim_(sim),
      factory_(factory),
      flow_(flow),
      timer_(sim, interval, [this] { send_ping(); }) {}

void PingClient::send_ping() {
  if (out_ == nullptr) return;
  net::PingHeader h;
  h.ping_id = next_id_++;
  h.is_reply = false;
  h.sent_time = sim_.now();
  out_->handle_packet(factory_.make(flow_, net::TrafficClass::kPing,
                                    net::kPingWire, sim_.now(), h));
}

void PingClient::handle_packet(net::PacketPtr pkt) {
  const auto* h = std::get_if<net::PingHeader>(&pkt->header);
  if (h == nullptr || !h->is_reply) return;
  samples_.push_back(Sample{sim_.now(), sim_.now() - h->sent_time});
}

}  // namespace cgs::core
