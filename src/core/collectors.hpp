// Trace collection: the simulator's Wireshark + PresentMon + ping log,
// digested into per-run time series (RunTrace).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/ping.hpp"
#include "core/scenario.hpp"
#include "net/link.hpp"
#include "stream/receiver.hpp"
#include "util/units.hpp"

namespace cgs::core {

/// Per-flow measured series: goodput buckets plus cumulative packet
/// counters sampled at bucket boundaries.
struct FlowTrace {
  net::FlowId id = 0;
  std::string name;
  FlowKind kind = FlowKind::kBulkTcp;

  /// Downstream goodput at the client side of the bottleneck, one bucket
  /// per sample interval, in Mb/s.
  std::vector<double> mbps;

  /// Cumulative packets at bucket boundaries (entry k = count at
  /// k * interval).  Game-stream flows sample their receiver's counters
  /// (loss-aware); other kinds count bottleneck deliveries, and pkts_lost
  /// stays zero for them.
  std::vector<std::uint64_t> pkts_recv;
  std::vector<std::uint64_t> pkts_lost;
};

/// Per-link measured series (one per topology link, in link declaration
/// order).
struct LinkTrace {
  std::string name;

  /// Delivered throughput per sample interval, all flows, in Mb/s.
  std::vector<double> util_mbps;

  /// Queue occupancy in bytes sampled at bucket boundaries (entry k =
  /// depth at k * interval).
  std::vector<std::uint64_t> depth_bytes;

  /// Cumulative drops at bucket boundaries (entry k = count at
  /// k * interval).
  std::vector<std::uint64_t> drops;
};

/// Everything measured in one experiment run.
struct RunTrace {
  Time sample_interval = std::chrono::milliseconds(500);
  Time duration = kTimeZero;

  /// Per-flow series, in mix declaration order.
  std::vector<FlowTrace> flows;

  // Legacy two-flow views, materialized at finalize() so the paper-default
  // pipeline (and every pre-mix test) keeps working unchanged: game_mbps is
  // the primary game-stream flow's series, tcp_mbps the element-wise sum of
  // every bulk-TCP flow (identical to the single flow's series for the
  // default mix).  The paper's 0.5 s bitrate computation, §4.1.
  std::vector<double> game_mbps;
  std::vector<double> tcp_mbps;

  // Ping RTT samples (primary ping flow).
  std::vector<PingClient::Sample> rtt;

  // Cumulative game-stream packet counters sampled per bucket (primary
  // game-stream flow view).
  std::vector<std::uint64_t> game_pkts_recv;
  std::vector<std::uint64_t> game_pkts_lost;

  // Router-queue drop counter sampled per bucket (all flows).
  std::vector<std::uint64_t> queue_drops;

  // Frame presentation timestamps at the client display (primary game-
  // stream flow).
  std::vector<Time> frame_times;

  /// Per-link series, in topology link order.  Always at least one entry
  /// (the synthesized default's "bottleneck" link).
  std::vector<LinkTrace> links;

  /// Fleet population digest (hybrid-fidelity runs); active stays false
  /// for scenarios with an empty fleet spec.
  net::FleetResult fleet;

  // -- per-flow lookups -----------------------------------------------------
  /// The trace of flow `id`, or nullptr when the mix has no such flow.
  [[nodiscard]] const FlowTrace* flow(net::FlowId id) const;
  /// The trace of the named link, or nullptr when there is no such link.
  [[nodiscard]] const LinkTrace* link(std::string_view name) const;
  /// Mean goodput of flow `id` over [from, to); 0 for unknown flows.
  [[nodiscard]] double mean_flow_mbps(net::FlowId id, Time from,
                                      Time to) const;

  // -- window helpers (from/to are absolute sim times) ---------------------
  [[nodiscard]] double mean_bitrate_mbps(const std::vector<double>& series,
                                         Time from, Time to) const;
  [[nodiscard]] double mean_game_mbps(Time from, Time to) const {
    return mean_bitrate_mbps(game_mbps, from, to);
  }
  [[nodiscard]] double mean_tcp_mbps(Time from, Time to) const {
    return mean_bitrate_mbps(tcp_mbps, from, to);
  }
  [[nodiscard]] double sd_bitrate_mbps(const std::vector<double>& series,
                                       Time from, Time to) const;
  [[nodiscard]] double mean_rtt_ms(Time from, Time to) const;
  [[nodiscard]] double sd_rtt_ms(Time from, Time to) const;
  /// Game packet loss fraction over the window.
  [[nodiscard]] double game_loss_in(Time from, Time to) const;
  /// Presented frames per second over the window.
  [[nodiscard]] double fps_over(Time from, Time to) const;

  [[nodiscard]] std::size_t bucket_of(Time t) const;
};

/// Wires taps into the testbed's components and assembles a RunTrace.
class TraceCollectors {
 public:
  /// What the collectors know about one flow of the mix.
  struct FlowInfo {
    net::FlowId id = 0;
    std::string name;
    FlowKind kind = FlowKind::kBulkTcp;
  };

  /// Trace-memory policy for large mixes.  stride multiplies the sample
  /// interval (stride 1 = the historical cadence, bit-identical); when
  /// max_flow_series > 0 only the first that-many mix flows materialize
  /// per-flow series — the rest keep O(1) state and their bulk-TCP bytes
  /// fold into the aggregate tcp_mbps view at finalize.
  struct Policy {
    std::size_t stride = 1;
    std::size_t max_flow_series = 0;
  };

  TraceCollectors(sim::Simulator& sim, Time duration, Time sample_interval,
                  std::vector<FlowInfo> flows);
  TraceCollectors(sim::Simulator& sim, Time duration, Time sample_interval,
                  std::vector<FlowInfo> flows, Policy policy);

  /// Subscribe to one topology link: per-link utilization/depth/drop
  /// series for everything it carries, plus per-flow goodput accounting
  /// for the flows in `terminal_flows` (the flows whose client-side hop
  /// this is — counting at the terminal hop keeps multi-hop flows from
  /// being double-counted).  Call once per link, in topology link order.
  void attach_link(net::Link& link, std::vector<net::FlowId> terminal_flows);
  /// Sample `recv`'s counters for flow `id` each bucket.  Must outlive
  /// collection.
  void attach_game_receiver(net::FlowId id, const stream::StreamReceiver& recv);

  /// Start periodic counter sampling.
  void start();

  /// Build the final trace (call after the run completes).  `ping` / `recv`
  /// fill the legacy rtt / frame_times views (primary flows); either may be
  /// nullptr.
  [[nodiscard]] RunTrace finalize(const PingClient* ping,
                                  const stream::StreamReceiver* recv) const;

 private:
  void sample_counters();
  [[nodiscard]] std::size_t bucket_of(Time t) const;

  sim::Simulator& sim_;
  Time duration_;
  Time interval_;
  std::size_t n_buckets_;

  std::vector<FlowInfo> flows_;
  /// Flows with materialized series: the first min(max_flow_series, n)
  /// mix entries (all of them when the policy cap is 0).
  std::size_t tracked_;
  std::unordered_map<net::FlowId, std::size_t> flow_index_;

  // Indexed [flow][bucket].
  std::vector<std::vector<std::int64_t>> bytes_;
  std::vector<std::vector<std::uint64_t>> recv_samples_;
  std::vector<std::vector<std::uint64_t>> lost_samples_;
  // Live per-flow delivered-packet counters (non-game flows).
  std::vector<std::uint64_t> pkt_counters_;
  // Per-game-flow receiver taps, parallel to flows_ (nullptr elsewhere).
  std::vector<const stream::StreamReceiver*> receivers_;

  std::vector<std::uint64_t> drops_;
  std::uint64_t drop_counter_ = 0;

  /// Terminal bulk-TCP bytes of untracked flows, per bucket: folded into
  /// the aggregate tcp_mbps view at finalize so top-K trims series, not
  /// throughput accounting.
  std::vector<std::int64_t> residual_tcp_bytes_;

  // Per-link series state (unique_ptr: sniffer callbacks capture stable
  // addresses across vector growth).
  struct LinkTap {
    std::string name;
    const net::Link* link = nullptr;
    std::vector<std::int64_t> util_bytes;   // [bucket]
    std::vector<std::uint64_t> depth;       // [boundary]
    std::vector<std::uint64_t> drops;       // [boundary]
    std::uint64_t drop_counter = 0;
  };
  std::vector<std::unique_ptr<LinkTap>> links_;

  sim::PeriodicTimer sampler_;
};

}  // namespace cgs::core
