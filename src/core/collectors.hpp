// Trace collection: the simulator's Wireshark + PresentMon + ping log,
// digested into per-run time series (RunTrace).
#pragma once

#include <cstdint>
#include <vector>

#include "core/ping.hpp"
#include "net/link.hpp"
#include "stream/receiver.hpp"
#include "util/units.hpp"

namespace cgs::core {

/// Everything measured in one experiment run.
struct RunTrace {
  Time sample_interval = std::chrono::milliseconds(500);
  Time duration = kTimeZero;

  // Downstream goodput at the client side of the bottleneck, one bucket per
  // sample interval, in Mb/s (the paper's 0.5 s bitrate computation, §4.1).
  std::vector<double> game_mbps;
  std::vector<double> tcp_mbps;

  // Ping RTT samples.
  std::vector<PingClient::Sample> rtt;

  // Cumulative game-stream packet counters sampled per bucket.
  std::vector<std::uint64_t> game_pkts_recv;
  std::vector<std::uint64_t> game_pkts_lost;

  // Router-queue drop counter sampled per bucket (all flows).
  std::vector<std::uint64_t> queue_drops;

  // Frame presentation timestamps at the client display.
  std::vector<Time> frame_times;

  // -- window helpers (from/to are absolute sim times) ---------------------
  [[nodiscard]] double mean_bitrate_mbps(const std::vector<double>& series,
                                         Time from, Time to) const;
  [[nodiscard]] double mean_game_mbps(Time from, Time to) const {
    return mean_bitrate_mbps(game_mbps, from, to);
  }
  [[nodiscard]] double mean_tcp_mbps(Time from, Time to) const {
    return mean_bitrate_mbps(tcp_mbps, from, to);
  }
  [[nodiscard]] double sd_bitrate_mbps(const std::vector<double>& series,
                                       Time from, Time to) const;
  [[nodiscard]] double mean_rtt_ms(Time from, Time to) const;
  [[nodiscard]] double sd_rtt_ms(Time from, Time to) const;
  /// Game packet loss fraction over the window.
  [[nodiscard]] double game_loss_in(Time from, Time to) const;
  /// Presented frames per second over the window.
  [[nodiscard]] double fps_over(Time from, Time to) const;

  [[nodiscard]] std::size_t bucket_of(Time t) const;
};

/// Wires taps into the testbed's components and assembles a RunTrace.
class TraceCollectors {
 public:
  TraceCollectors(sim::Simulator& sim, Time duration, Time sample_interval,
                  net::FlowId game_flow, net::FlowId tcp_flow);

  /// Subscribe to the bottleneck link (delivery + drop taps).
  void attach_bottleneck(net::Link& link);
  /// Sample game receiver counters each bucket. Must outlive collection.
  void attach_game_receiver(const stream::StreamReceiver& recv);

  /// Start periodic counter sampling.
  void start();

  /// Build the final trace (call after the run completes).
  [[nodiscard]] RunTrace finalize(const PingClient* ping,
                                  const stream::StreamReceiver* recv) const;

 private:
  void sample_counters();
  [[nodiscard]] std::size_t bucket_of(Time t) const;

  sim::Simulator& sim_;
  Time duration_;
  Time interval_;
  net::FlowId game_flow_;
  net::FlowId tcp_flow_;
  std::size_t n_buckets_;

  std::vector<std::int64_t> game_bytes_;
  std::vector<std::int64_t> tcp_bytes_;
  std::vector<std::uint64_t> drops_;
  std::vector<std::uint64_t> recv_samples_;
  std::vector<std::uint64_t> lost_samples_;

  const stream::StreamReceiver* game_recv_ = nullptr;
  std::uint64_t drop_counter_ = 0;
  sim::PeriodicTimer sampler_;
};

}  // namespace cgs::core
