#include "core/testbed.hpp"

#include "net/codel.hpp"
#include "util/rng.hpp"

namespace cgs::core {

namespace {
/// Bottleneck propagation delay (router -> clients segment).
constexpr Time kBottleneckProp = std::chrono::milliseconds(1);
}  // namespace

std::unique_ptr<net::Queue> Testbed::make_queue() const {
  const ByteSize limit = scenario_.queue_bytes();
  switch (scenario_.queue_kind) {
    case QueueKind::kDropTail:
      return std::make_unique<net::DropTailQueue>(limit);
    case QueueKind::kCoDel: {
      net::CodelParams p;
      p.capacity = limit;
      return std::make_unique<net::CodelQueue>(p);
    }
    case QueueKind::kFqCoDel: {
      net::CodelParams p;
      p.capacity = limit;
      return std::make_unique<net::FqCodelQueue>(p);
    }
  }
  return nullptr;
}

Testbed::Testbed(const Scenario& scenario) : scenario_(scenario) {
  scenario_.validate();
  Pcg32 master(scenario.seed);

  // Watchdog (fault-injection hardening): a run whose event count explodes
  // is livelocked; abort it with a diagnostic instead of spinning forever.
  // The auto budget is ~20x the busiest measured event rate per sim-second.
  std::uint64_t budget = scenario.watchdog_event_budget;
  if (budget == 0) {
    const auto secs =
        std::chrono::duration_cast<std::chrono::seconds>(scenario.duration)
            .count();
    budget = std::uint64_t(secs + 1) * 1'000'000;
  }
  if (budget != Scenario::kWatchdogDisabled) sim_.set_watchdog(budget);

  router_ = std::make_unique<net::BottleneckRouter>(
      sim_, scenario.capacity, kBottleneckProp, make_queue());

  // Downstream impairment sits between the access delay lines and the
  // bottleneck (netem on the router's ingress: one stage, all flows).
  // Impairment RNGs are derived straight from the seed on private PCG
  // streams so enabling them never perturbs the endpoint RNG forks.
  net::PacketSink* down_entry = &router_->downstream_in();
  if (scenario.impair_down.any()) {
    down_impair_ = std::make_unique<net::Impairment>(
        sim_, factory_, "down", scenario.impair_down,
        Pcg32(scenario.seed, 0xd01), &router_->downstream_in());
    down_entry = down_impair_.get();
  }
  // Upstream impairment is per reverse path (feedback / ACK / ping-request
  // direction); each stage draws from its own stream.
  const auto upstream_entry = [&](net::PacketSink& up, const char* name,
                                  std::uint64_t stream) -> net::PacketSink* {
    if (!scenario.impair_up.any()) return &up;
    up_impairs_.push_back(std::make_unique<net::Impairment>(
        sim_, factory_, name, scenario.impair_up,
        Pcg32(scenario.seed, stream), &up));
    return up_impairs_.back().get();
  };

  // RTT padding (§3.3): every flow sees base_rtt end to end. One-way split:
  // server->router access pad + bottleneck propagation downstream, a pure
  // delay line upstream.
  const Time pad = (scenario.base_rtt - 2 * kBottleneckProp) / 2;

  // --- game stream -------------------------------------------------------
  const auto& prof = stream::profile_for(scenario.system);
  {
    stream::StreamSender::Options so;
    so.flow = kGameFlow;
    so.burst_factor = prof.burst_factor;
    auto controller = scenario.controller_override
                          ? scenario.controller_override()
                          : stream::make_controller(scenario.system);
    game_sender_ = std::make_unique<stream::StreamSender>(
        sim_, factory_, so, stream::frame_config_for(scenario.system),
        std::move(controller), master.fork(0x6a6d));

    stream::StreamReceiver::Options ro;
    ro.flow = kGameFlow;
    ro.fec_rate = prof.fec_rate;
    ro.playout_deadline = prof.playout_deadline;
    game_recv_ = std::make_unique<stream::StreamReceiver>(sim_, factory_, ro);

    game_access_ = std::make_unique<net::DelayLine>(sim_, pad, down_entry);
    game_sender_->set_output(game_access_.get());
    router_->register_client(kGameFlow, game_recv_.get());
    game_recv_->set_output(upstream_entry(
        router_->make_upstream(pad + kBottleneckProp, game_sender_.get()),
        "up-game", 0xa01));
  }

  // --- competing TCP flow ------------------------------------------------
  if (scenario.tcp_algo) {
    tcp_flow_ = std::make_unique<tcp::BulkTcpFlow>(sim_, factory_, kTcpFlow,
                                                   *scenario.tcp_algo);
    tcp_access_ = std::make_unique<net::DelayLine>(sim_, pad, down_entry);
    router_->register_client(kTcpFlow, &tcp_flow_->receiver());
    tcp_flow_->attach(
        tcp_access_.get(),
        upstream_entry(
            router_->make_upstream(pad + kBottleneckProp, &tcp_flow_->sender()),
            "up-tcp", 0xa02));
  }

  // --- ping probe (client -> game server -> back through the queue) ------
  {
    ping_client_ = std::make_unique<PingClient>(sim_, factory_, kPingFlow);
    ping_responder_ =
        std::make_unique<PingResponder>(sim_, factory_, kPingFlow);
    ping_access_ = std::make_unique<net::DelayLine>(sim_, pad, down_entry);
    ping_responder_->set_output(ping_access_.get());
    router_->register_client(kPingFlow, ping_client_.get());
    ping_client_->set_output(upstream_entry(
        router_->make_upstream(pad + kBottleneckProp, ping_responder_.get()),
        "up-ping", 0xa03));
  }

  // --- collectors ---------------------------------------------------------
  collectors_ = std::make_unique<TraceCollectors>(
      sim_, scenario.duration, std::chrono::milliseconds(500), kGameFlow,
      kTcpFlow);
  collectors_->attach_bottleneck(router_->bottleneck());
  collectors_->attach_game_receiver(*game_recv_);
}

RunTrace Testbed::run() {
  game_recv_->start();
  game_sender_->start();
  ping_client_->start();
  collectors_->start();

  if (tcp_flow_) {
    tcp_flow_->schedule(sim_, scenario_.tcp_start, scenario_.tcp_stop);
  }

  sim_.run_until(scenario_.duration);
  return collectors_->finalize(ping_client_.get(), game_recv_.get());
}

}  // namespace cgs::core
