#include "core/testbed.hpp"

#include <chrono>
#include <csignal>
#include <cstring>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace cgs::core {

Pcg32 Testbed::flow_master_rng(std::uint64_t seed, net::FlowId id) {
  // Id 1 is the historical single-master derivation; see header.
  if (id == 1) return Pcg32(seed);
  return Pcg32(splitmix64(seed ^ (0x9e3779b97f4a7c15ULL * std::uint64_t(id))));
}

net::PacketSink* Testbed::upstream_entry(const FlowSpec& spec,
                                         net::PacketSink& up) {
  const net::ImpairmentConfig& cfg =
      spec.impair_up ? *spec.impair_up : scenario_.impair_up;
  if (!cfg.any()) return &up;
  // Private PCG stream per flow (0xa00 + id: matches the pre-registry
  // streams 0xa01/0xa02/0xa03 for the default game/tcp/ping mix).
  up_impairs_.push_back(std::make_unique<net::Impairment>(
      sim_, factory_, "up-" + spec.name, cfg,
      Pcg32(scenario_.seed, 0xa00 + std::uint64_t(spec.id)), &up));
  return up_impairs_.back().get();
}

void Testbed::build_game_flow(const FlowSpec& spec, Time pad_down,
                              Time pad_up) {
  const stream::GameSystem sys = spec.system.value_or(scenario_.system);
  const auto& prof = stream::profile_for(sys);

  GameFlow g;
  g.spec = spec;

  stream::StreamSender::Options so;
  so.flow = spec.id;
  so.burst_factor = prof.burst_factor;
  auto controller = scenario_.controller_override
                        ? scenario_.controller_override()
                        : stream::make_controller(sys);
  g.sender = std::make_unique<stream::StreamSender>(
      sim_, factory_, so, stream::frame_config_for(sys), std::move(controller),
      flow_master_rng(scenario_.seed, spec.id).fork(0x6a6d));

  stream::StreamReceiver::Options ro;
  ro.flow = spec.id;
  ro.fec_rate = prof.fec_rate;
  ro.playout_deadline = prof.playout_deadline;
  g.receiver = std::make_unique<stream::StreamReceiver>(sim_, factory_, ro);

  g.access = std::make_unique<net::DelayLine>(
      sim_, pad_down + spec.extra_owd, &graph_->downstream_entry(spec.id));
  g.sender->set_output(g.access.get());
  graph_->register_client(spec.id, g.receiver.get());
  g.receiver->set_output(upstream_entry(
      spec, graph_->make_upstream(spec.id, pad_up, g.sender.get())));
  games_.push_back(std::move(g));
}

void Testbed::build_tcp_flow(const FlowSpec& spec, Time pad_down,
                             Time pad_up) {
  TcpFlow t;
  t.spec = spec;
  t.flow = std::make_unique<tcp::BulkTcpFlow>(sim_, factory_, spec.id,
                                              spec.algo);
  t.access = std::make_unique<net::DelayLine>(
      sim_, pad_down + spec.extra_owd, &graph_->downstream_entry(spec.id));
  graph_->register_client(spec.id, &t.flow->receiver());
  t.flow->attach(t.access.get(),
                 upstream_entry(spec, graph_->make_upstream(
                                          spec.id, pad_up, &t.flow->sender())));
  tcps_.push_back(std::move(t));
}

void Testbed::build_ping_flow(const FlowSpec& spec, Time pad_down,
                              Time pad_up) {
  PingFlow p;
  p.spec = spec;
  p.client = std::make_unique<PingClient>(sim_, factory_, spec.id);
  p.responder = std::make_unique<PingResponder>(sim_, factory_, spec.id);
  p.access = std::make_unique<net::DelayLine>(
      sim_, pad_down + spec.extra_owd, &graph_->downstream_entry(spec.id));
  p.responder->set_output(p.access.get());
  graph_->register_client(spec.id, p.client.get());
  p.client->set_output(upstream_entry(
      spec, graph_->make_upstream(spec.id, pad_up, p.responder.get())));
  pings_.push_back(std::move(p));
}

Testbed::Testbed(const Scenario& scenario) : Testbed(scenario, nullptr) {}

Testbed::Testbed(const Scenario& scenario, util::Arena* arena)
    : scenario_(scenario), sim_(arena), factory_(arena) {
  scenario_.validate();

  // Watchdog (fault-injection hardening): a run whose event count explodes
  // is livelocked; abort it with a diagnostic instead of spinning forever.
  // The auto budget is ~20x the busiest measured event rate per sim-second.
  std::uint64_t budget = scenario.watchdog_event_budget;
  if (budget == 0) {
    const auto secs =
        std::chrono::duration_cast<std::chrono::seconds>(scenario.duration)
            .count();
    budget = std::uint64_t(secs + 1) * 1'000'000;
  }
  if (budget == Scenario::kWatchdogDisabled) budget = 0;  // 0 = no budget
  if (budget != 0 || scenario.watchdog_wall_budget_s > 0) {
    sim_.set_watchdog(budget, kTimeInfinite, scenario.watchdog_wall_budget_s);
  }

  // Instantiate the network graph.  Synthesized single-bottleneck specs
  // produce object-for-object the wiring the hard-wired BottleneckRouter
  // used to build (link "bottleneck", ingress impairment "down" on PCG
  // stream 0xd01), so legacy traces stay bit-identical.
  net::TopologyGraph::Config gc;
  gc.default_queue = scenario.queue_kind;
  gc.default_bdp_mult = scenario.queue_bdp_mult;
  gc.base_rtt = scenario.base_rtt;
  gc.seed = scenario.seed;
  graph_ = std::make_unique<net::TopologyGraph>(
      sim_, factory_, scenario_.effective_topology(), gc);
  if (graph_->link_count() == 1) {
    router_view_ = std::make_unique<net::BottleneckRouter>(*graph_);
  }

  // Instantiate every flow of the mix, in declaration order (ids, seeds and
  // upstream-impairment streams are all keyed by the spec's resolved id, so
  // the order only fixes event-queue tie-breaks, not any flow's RNG).
  //
  // RTT padding (§3.3): every flow sees base_rtt end to end, whatever its
  // path's fixed propagation.  The downstream access pad splits the slack
  // evenly around the downstream hops (the historical formula for the
  // 1-bottleneck graph), the upstream pad absorbs the rest.  Per-flow
  // extra_owd lengthens only the downstream access segment.
  const std::vector<FlowSpec> specs = scenario_.effective_flows();
  for (const FlowSpec& spec : specs) {
    const Time down_fixed = graph_->down_prop(spec.id);
    const Time up_fixed = graph_->up_prop(spec.id);
    const Time pad_down = (scenario_.base_rtt - 2 * down_fixed) / 2;
    const Time pad_up =
        scenario_.base_rtt - down_fixed - up_fixed - pad_down;
    switch (spec.kind) {
      case FlowKind::kGameStream:
        build_game_flow(spec, pad_down, pad_up);
        break;
      case FlowKind::kBulkTcp:
        build_tcp_flow(spec, pad_down, pad_up);
        break;
      case FlowKind::kPing:
        build_ping_flow(spec, pad_down, pad_up);
        break;
    }
  }

  // --- collectors ---------------------------------------------------------
  std::vector<TraceCollectors::FlowInfo> infos;
  infos.reserve(specs.size());
  for (const FlowSpec& spec : specs) {
    infos.push_back({spec.id, spec.name, spec.kind});
  }
  TraceCollectors::Policy policy;
  policy.stride = scenario_.trace_stride;
  policy.max_flow_series = scenario_.trace_max_flow_series;
  collectors_ = std::make_unique<TraceCollectors>(
      sim_, scenario.duration, std::chrono::milliseconds(500),
      std::move(infos), policy);
  for (std::size_t i = 0; i < graph_->link_count(); ++i) {
    // A flow's goodput is measured at its terminal (client-side) hop so
    // multi-hop flows are not double-counted.
    std::vector<net::FlowId> terminal;
    for (const FlowSpec& spec : specs) {
      if (graph_->terminal_link(spec.id) == i) terminal.push_back(spec.id);
    }
    collectors_->attach_link(graph_->link_at(i), std::move(terminal));
  }
  for (const GameFlow& g : games_) {
    collectors_->attach_game_receiver(g.spec.id, *g.receiver);
  }

  // --- fluid fleet ---------------------------------------------------------
  // Constructed only for non-empty specs: a fleet-free scenario touches no
  // link state and schedules no tick, keeping golden traces bit-identical.
  if (!scenario_.fleet.empty()) {
    fluid_ = std::make_unique<net::FluidAggregate>(
        sim_, *graph_, scenario_.fleet, scenario_.duration, scenario_.seed);
  }

  // --- invariant auditors --------------------------------------------------
  // Observer-only (no RNG draws, no scheduled events), so enabling them
  // never perturbs a trace; kAuto turns them on for Debug builds only,
  // keeping Release benchmark numbers clean.  One auditor per link.
#ifdef NDEBUG
  const bool audit_on = scenario_.audit == Scenario::AuditMode::kOn;
#else
  const bool audit_on = scenario_.audit != Scenario::AuditMode::kOff;
#endif
  if (audit_on) {
    // Any ingress impairment can duplicate/reorder, which legitimately
    // breaks per-flow sequence order at the links.
    bool impaired = false;
    for (std::size_t i = 0; i < graph_->link_count(); ++i) {
      if (graph_->ingress_impairment(i) != nullptr) impaired = true;
    }
    for (std::size_t i = 0; i < graph_->link_count(); ++i) {
      SimAuditor::Options ao;
      ao.queue_capacity = graph_->queue_capacity(i);
      ao.check_sequences = !impaired;
      ao.cell_label = graph_->link_count() == 1
                          ? scenario_.label()
                          : scenario_.label() + " / " +
                                graph_->link_at(i).name();
      ao.seed = scenario_.seed;
      auditors_.push_back(std::make_unique<SimAuditor>(std::move(ao)));
      auditors_.back()->attach(graph_->link_at(i));
    }
  }
}

net::BottleneckRouter& Testbed::router() {
  if (!router_view_) {
    throw std::logic_error(
        "Testbed: router(): topology '" + graph_->name() + "' has " +
        std::to_string(graph_->link_count()) +
        " links; use topology() to address individual links");
  }
  return *router_view_;
}

std::string Testbed::composition() const {
  std::ostringstream os;
  os << "mix[" << games_.size() << " game + " << tcps_.size() << " tcp + "
     << pings_.size() << " ping]";
  if (fluid_ != nullptr) {
    os << " fleet[" << fluid_->session_count() << " fluid sessions]";
  }
  return os.str();
}

stream::StreamSender& Testbed::game_sender() {
  if (games_.empty()) {
    throw std::logic_error(
        "Testbed: game_sender(): this mix has no game-stream flow "
        "(composition: " +
        composition() + ")");
  }
  return *games_.front().sender;
}

stream::StreamReceiver& Testbed::game_receiver() {
  if (games_.empty()) {
    throw std::logic_error(
        "Testbed: game_receiver(): this mix has no game-stream flow "
        "(composition: " +
        composition() + ")");
  }
  return *games_.front().receiver;
}

PingClient& Testbed::ping() {
  if (pings_.empty()) {
    throw std::logic_error(
        "Testbed: ping(): this mix has no ping flow (composition: " +
        composition() + ")");
  }
  return *pings_.front().client;
}

tcp::BulkTcpFlow* Testbed::tcp_flow() {
  return tcps_.empty() ? nullptr : tcps_.front().flow.get();
}

RunTrace Testbed::run() {
  inject_fault();
  // Deterministic per-link capacity changes (no-op without schedules, so
  // legacy scenarios see zero extra events).
  graph_->schedule_rate_changes();
  // Immediate starts first, in mix order, matching the pre-registry event
  // sequence (game receiver, game sender, ping client, collectors, then the
  // scheduled TCP start/stop events).
  for (GameFlow& g : games_) {
    if (g.spec.start <= kTimeZero) {
      g.receiver->start();
      g.sender->start();
    } else {
      sim_.schedule_at(g.spec.start, [&g] {
        g.receiver->start();
        g.sender->start();
      });
    }
    if (g.spec.stop) {
      sim_.schedule_at(*g.spec.stop, [&g] { g.sender->stop(); });
    }
  }
  for (PingFlow& p : pings_) {
    if (p.spec.start <= kTimeZero) {
      p.client->start();
    } else {
      sim_.schedule_at(p.spec.start, [&p] { p.client->start(); });
    }
    if (p.spec.stop) {
      sim_.schedule_at(*p.spec.stop, [&p] { p.client->stop(); });
    }
  }
  collectors_->start();
  if (fluid_) fluid_->start();
  for (TcpFlow& t : tcps_) {
    t.flow->schedule(sim_, t.spec.start,
                     t.spec.stop.value_or(scenario_.duration));
  }

  sim_.run_until(scenario_.duration);
  for (const auto& a : auditors_) a->final_check();
  RunTrace t = collectors_->finalize(
      pings_.empty() ? nullptr : pings_.front().client.get(),
      games_.empty() ? nullptr : games_.front().receiver.get());
  if (fluid_) t.fleet = fluid_->finalize();
  return t;
}

void Testbed::inject_fault() {
  const Scenario::FaultSpec& fault = scenario_.fault;
  if (fault.kind == Scenario::FaultKind::kNone) return;
  if (fault.seed != 0 && fault.seed != scenario_.seed) return;
  switch (fault.kind) {
    case Scenario::FaultKind::kCrash:
      // A real fatal signal, exactly what a wild pointer would produce:
      // in-process this kills the whole pool (which is the point of the
      // demonstration); forked it kills only the child.
      std::raise(SIGSEGV);
      return;
    case Scenario::FaultKind::kOom: {
      // Unbounded, touched allocations.  Under RLIMIT_AS this ends in
      // bad_alloc (classified kResource); uncapped it ends with the
      // kernel's OOM killer.  16 MB steps keep the loop brisk without
      // overshooting a limit by much.
      std::vector<std::unique_ptr<char[]>> hog;
      for (;;) {
        constexpr std::size_t kChunk = 16ull << 20;
        hog.push_back(std::make_unique<char[]>(kChunk));
        std::memset(hog.back().get(), 0x5a, kChunk);
      }
    }
    case Scenario::FaultKind::kSpin: {
      // A wedge the event and sim-time budgets cannot see: every 10 ms of
      // sim time one event burns ~20 ms of real time, so the event count
      // stays tiny while wall time runs away.  Caught by the wall-clock
      // watchdog in-process or the supervisor deadline when forked.
      sim_.schedule_at(kTimeZero, [this] {
        const auto until = std::chrono::steady_clock::now() +
                           std::chrono::milliseconds(20);
        while (std::chrono::steady_clock::now() < until) {
        }
        sim_.reschedule_current_in(std::chrono::milliseconds(10));
      });
      return;
    }
    case Scenario::FaultKind::kNone:
      return;
  }
}

}  // namespace cgs::core
