#include "core/testbed.hpp"

#include "net/codel.hpp"
#include "util/rng.hpp"

namespace cgs::core {

namespace {
/// Bottleneck propagation delay (router -> clients segment).
constexpr Time kBottleneckProp = std::chrono::milliseconds(1);
}  // namespace

std::unique_ptr<net::Queue> Testbed::make_queue() const {
  const ByteSize limit = scenario_.queue_bytes();
  switch (scenario_.queue_kind) {
    case QueueKind::kDropTail:
      return std::make_unique<net::DropTailQueue>(limit);
    case QueueKind::kCoDel: {
      net::CodelParams p;
      p.capacity = limit;
      return std::make_unique<net::CodelQueue>(p);
    }
    case QueueKind::kFqCoDel: {
      net::CodelParams p;
      p.capacity = limit;
      return std::make_unique<net::FqCodelQueue>(p);
    }
  }
  return nullptr;
}

Testbed::Testbed(const Scenario& scenario) : scenario_(scenario) {
  Pcg32 master(scenario.seed);

  router_ = std::make_unique<net::BottleneckRouter>(
      sim_, scenario.capacity, kBottleneckProp, make_queue());

  // RTT padding (§3.3): every flow sees base_rtt end to end. One-way split:
  // server->router access pad + bottleneck propagation downstream, a pure
  // delay line upstream.
  const Time pad = (scenario.base_rtt - 2 * kBottleneckProp) / 2;

  // --- game stream -------------------------------------------------------
  const auto& prof = stream::profile_for(scenario.system);
  {
    stream::StreamSender::Options so;
    so.flow = kGameFlow;
    so.burst_factor = prof.burst_factor;
    auto controller = scenario.controller_override
                          ? scenario.controller_override()
                          : stream::make_controller(scenario.system);
    game_sender_ = std::make_unique<stream::StreamSender>(
        sim_, factory_, so, stream::frame_config_for(scenario.system),
        std::move(controller), master.fork(0x6a6d));

    stream::StreamReceiver::Options ro;
    ro.flow = kGameFlow;
    ro.fec_rate = prof.fec_rate;
    ro.playout_deadline = prof.playout_deadline;
    game_recv_ = std::make_unique<stream::StreamReceiver>(sim_, factory_, ro);

    game_access_ =
        std::make_unique<net::DelayLine>(sim_, pad, &router_->downstream_in());
    game_sender_->set_output(game_access_.get());
    router_->register_client(kGameFlow, game_recv_.get());
    game_recv_->set_output(
        &router_->make_upstream(pad + kBottleneckProp, game_sender_.get()));
  }

  // --- competing TCP flow ------------------------------------------------
  if (scenario.tcp_algo) {
    tcp_flow_ = std::make_unique<tcp::BulkTcpFlow>(sim_, factory_, kTcpFlow,
                                                   *scenario.tcp_algo);
    tcp_access_ =
        std::make_unique<net::DelayLine>(sim_, pad, &router_->downstream_in());
    router_->register_client(kTcpFlow, &tcp_flow_->receiver());
    tcp_flow_->attach(
        tcp_access_.get(),
        &router_->make_upstream(pad + kBottleneckProp, &tcp_flow_->sender()));
  }

  // --- ping probe (client -> game server -> back through the queue) ------
  {
    ping_client_ = std::make_unique<PingClient>(sim_, factory_, kPingFlow);
    ping_responder_ =
        std::make_unique<PingResponder>(sim_, factory_, kPingFlow);
    ping_access_ =
        std::make_unique<net::DelayLine>(sim_, pad, &router_->downstream_in());
    ping_responder_->set_output(ping_access_.get());
    router_->register_client(kPingFlow, ping_client_.get());
    ping_client_->set_output(&router_->make_upstream(pad + kBottleneckProp,
                                                     ping_responder_.get()));
  }

  // --- collectors ---------------------------------------------------------
  collectors_ = std::make_unique<TraceCollectors>(
      sim_, scenario.duration, std::chrono::milliseconds(500), kGameFlow,
      kTcpFlow);
  collectors_->attach_bottleneck(router_->bottleneck());
  collectors_->attach_game_receiver(*game_recv_);
}

RunTrace Testbed::run() {
  game_recv_->start();
  game_sender_->start();
  ping_client_->start();
  collectors_->start();

  if (tcp_flow_) {
    tcp_flow_->schedule(sim_, scenario_.tcp_start, scenario_.tcp_stop);
  }

  sim_.run_until(scenario_.duration);
  return collectors_->finalize(ping_client_.get(), game_recv_.get());
}

}  // namespace cgs::core
