#include "core/journal.hpp"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <string_view>
#include <utility>

#include "util/crc32.hpp"

namespace cgs::core {
namespace {

constexpr char kMagic[8] = {'C', 'G', 'S', 'J', 'N', 'L', '0', '1'};
// v2: RunTrace payloads grew a per-link series section (topology layer).
// v3: RunTrace payloads grew a fleet digest tail (hybrid-fidelity layer).
constexpr std::uint32_t kVersion = 3;
constexpr std::uint32_t kRecordMagic = 0x4C4E5247u;  // "GRNL"
// magic + cell + run + seed + ok + class + trace_hash + payload_len.
constexpr std::size_t kRecordFixed = 4 + 4 + 4 + 8 + 1 + 1 + 8 + 4;
// Anything larger than this is a corrupt length field, not a real payload
// (the biggest payload is a serialized RunTrace, a few MB at most).
constexpr std::uint32_t kMaxPayload = 1u << 30;

[[noreturn]] void throw_errno(const std::string& op, const std::string& path) {
  const int err = errno;
  throw JournalError("journal: " + op + " '" + path + "': " +
                     std::strerror(err) + " (errno " + std::to_string(err) +
                     ")");
}

/// fsync with EINTR retry; throws naming the path and errno.  This is
/// where ENOSPC/EIO from deferred writeback most often surface.
void fsync_or_throw(int fd, const std::string& path) {
  while (::fsync(fd) != 0) {
    if (errno == EINTR) continue;
    throw_errno("fsync", path);
  }
}

// -- little binary buffer helpers -----------------------------------------

void put_bytes(std::vector<unsigned char>& out, const void* p, std::size_t n) {
  if (n == 0) return;
  const std::size_t off = out.size();
  out.resize(off + n);
  std::memcpy(out.data() + off, p, n);
}

void put_u8(std::vector<unsigned char>& out, std::uint8_t v) {
  out.push_back(v);
}

void put_u32(std::vector<unsigned char>& out, std::uint32_t v) {
  put_bytes(out, &v, sizeof v);
}

void put_u64(std::vector<unsigned char>& out, std::uint64_t v) {
  put_bytes(out, &v, sizeof v);
}

void put_i64(std::vector<unsigned char>& out, std::int64_t v) {
  put_bytes(out, &v, sizeof v);
}

void put_time(std::vector<unsigned char>& out, Time t) {
  put_i64(out, t.count());
}

void put_f64(std::vector<unsigned char>& out, double v) {
  put_bytes(out, &v, sizeof v);
}

void put_string(std::vector<unsigned char>& out, const std::string& s) {
  put_u32(out, std::uint32_t(s.size()));
  put_bytes(out, s.data(), s.size());
}

template <class T>
void put_pod_vec(std::vector<unsigned char>& out, const std::vector<T>& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  put_u32(out, std::uint32_t(v.size()));
  put_bytes(out, v.data(), v.size() * sizeof(T));
}

/// Bounds-checked sequential reader over a serialized payload.
class Cursor {
 public:
  Cursor(const unsigned char* data, std::size_t size)
      : p_(data), end_(data + size) {}

  void take(void* out, std::size_t n) {
    if (std::size_t(end_ - p_) < n) {
      throw JournalError("journal: truncated trace payload");
    }
    std::memcpy(out, p_, n);
    p_ += n;
  }

  std::uint8_t u8() {
    std::uint8_t v;
    take(&v, sizeof v);
    return v;
  }
  std::uint32_t u32() {
    std::uint32_t v;
    take(&v, sizeof v);
    return v;
  }
  std::uint64_t u64() {
    std::uint64_t v;
    take(&v, sizeof v);
    return v;
  }
  std::int64_t i64() {
    std::int64_t v;
    take(&v, sizeof v);
    return v;
  }
  Time time() { return Time(i64()); }
  double f64() {
    double v;
    take(&v, sizeof v);
    return v;
  }

  std::string string() {
    const std::uint32_t n = u32();
    check_count(n, 1);
    std::string s(n, '\0');
    take(s.data(), n);
    return s;
  }

  template <class T>
  std::vector<T> pod_vec() {
    static_assert(std::is_trivially_copyable_v<T>);
    const std::uint32_t n = u32();
    check_count(n, sizeof(T));
    std::vector<T> v(n);
    take(v.data(), n * sizeof(T));
    return v;
  }

  [[nodiscard]] bool done() const { return p_ == end_; }

 private:
  void check_count(std::uint64_t n, std::size_t elem) const {
    if (n * elem > std::size_t(end_ - p_)) {
      throw JournalError("journal: trace payload count exceeds payload size");
    }
  }

  const unsigned char* p_;
  const unsigned char* end_;
};

// -- low-level file I/O ----------------------------------------------------

void write_all(int fd, const void* data, std::size_t n,
               const std::string& path) {
  const auto* p = static_cast<const unsigned char*>(data);
  while (n > 0) {
    const ssize_t w = ::write(fd, p, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      throw_errno("write", path);
    }
    p += w;
    n -= std::size_t(w);
  }
}

std::vector<unsigned char> header_bytes(const JournalMeta& meta) {
  std::vector<unsigned char> out;
  put_bytes(out, kMagic, sizeof kMagic);
  put_u32(out, kVersion);
  put_u64(out, meta.fingerprint);
  put_u32(out, meta.runs);
  put_u32(out, meta.cells);
  put_string(out, meta.note);
  put_u32(out, util::crc32(out.data(), out.size()));
  return out;
}

std::vector<unsigned char> record_bytes(const JournalEntry& e) {
  std::vector<unsigned char> out;
  out.reserve(kRecordFixed + e.payload.size() + 4);
  put_u32(out, kRecordMagic);
  put_u32(out, e.cell);
  put_u32(out, e.run);
  put_u64(out, e.seed);
  put_u8(out, e.ok ? 1 : 0);
  put_u8(out, std::uint8_t(e.cls));
  put_u64(out, e.trace_hash);
  put_u32(out, std::uint32_t(e.payload.size()));
  put_bytes(out, e.payload.data(), e.payload.size());
  put_u32(out, util::crc32(out.data(), out.size()));
  return out;
}

}  // namespace

// -- scanning --------------------------------------------------------------

std::optional<JournalScan> read_journal(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) return std::nullopt;
    throw_errno("open", path);
  }
  std::vector<unsigned char> buf;
  {
    struct stat st {};
    if (::fstat(fd, &st) != 0) {
      ::close(fd);
      throw_errno("stat", path);
    }
    buf.resize(std::size_t(st.st_size));
    std::size_t off = 0;
    while (off < buf.size()) {
      const ssize_t r = ::read(fd, buf.data() + off, buf.size() - off);
      if (r < 0) {
        if (errno == EINTR) continue;
        ::close(fd);
        throw_errno("read", path);
      }
      if (r == 0) break;  // concurrent truncation; scan what we have
      off += std::size_t(r);
    }
    buf.resize(off);
    ::close(fd);
  }

  // Header: magic + version + fingerprint + runs + cells + note_len.
  constexpr std::size_t kHeaderFixed = 8 + 4 + 8 + 4 + 4 + 4;
  if (buf.size() < kHeaderFixed) return std::nullopt;  // died mid-creation
  if (std::memcmp(buf.data(), kMagic, sizeof kMagic) != 0) {
    throw JournalError("journal: '" + path + "' is not a CGS journal");
  }
  auto rd_u32 = [&](std::size_t off) {
    std::uint32_t v;
    std::memcpy(&v, buf.data() + off, sizeof v);
    return v;
  };
  auto rd_u64 = [&](std::size_t off) {
    std::uint64_t v;
    std::memcpy(&v, buf.data() + off, sizeof v);
    return v;
  };

  const std::uint32_t version = rd_u32(8);
  if (version != kVersion) {
    throw JournalError("journal: '" + path + "' has unsupported version " +
                       std::to_string(version));
  }
  JournalScan scan;
  scan.meta.fingerprint = rd_u64(12);
  scan.meta.runs = rd_u32(20);
  scan.meta.cells = rd_u32(24);
  const std::uint32_t note_len = rd_u32(28);
  const std::size_t header_total = kHeaderFixed + note_len + 4;
  if (note_len > kMaxPayload || buf.size() < header_total) {
    return std::nullopt;  // died while writing the header
  }
  scan.meta.note.assign(reinterpret_cast<const char*>(buf.data()) +
                            kHeaderFixed,
                        note_len);
  if (rd_u32(kHeaderFixed + note_len) !=
      util::crc32(buf.data(), kHeaderFixed + note_len)) {
    throw JournalError("journal: '" + path + "' header CRC mismatch");
  }

  // Records.
  std::size_t off = header_total;
  while (off < buf.size()) {
    const std::size_t avail = buf.size() - off;
    // Not even the fixed part fits, the magic is wrong, or the length field
    // is garbage: a torn tail if it is the last thing in the file.
    auto torn = [&] {
      scan.torn_tail = true;
      scan.valid_bytes = off;
      return scan;
    };
    if (avail < kRecordFixed) return torn();
    if (rd_u32(off) != kRecordMagic) return torn();
    const std::uint32_t payload_len = rd_u32(off + kRecordFixed - 4);
    if (payload_len > kMaxPayload) return torn();
    const std::size_t total = kRecordFixed + payload_len + 4;
    if (avail < total) return torn();

    const std::uint32_t stored_crc = rd_u32(off + total - 4);
    if (stored_crc != util::crc32(buf.data() + off, total - 4)) {
      // A complete-looking record with a bad CRC: torn only at end-of-file
      // (a crash mid-write); anywhere else the file is corrupt.
      if (off + total == buf.size()) return torn();
      throw JournalError("journal: '" + path + "' corrupt record at offset " +
                         std::to_string(off));
    }

    JournalEntry e;
    e.cell = rd_u32(off + 4);
    e.run = rd_u32(off + 8);
    e.seed = rd_u64(off + 12);
    e.ok = buf[off + 20] != 0;
    e.cls = error_class_from_byte(buf[off + 21]);
    e.trace_hash = rd_u64(off + 22);
    e.payload.assign(buf.begin() + std::ptrdiff_t(off + kRecordFixed),
                     buf.begin() + std::ptrdiff_t(off + kRecordFixed +
                                                  payload_len));
    scan.entries.push_back(std::move(e));
    off += total;
  }
  scan.valid_bytes = off;
  return scan;
}

std::vector<JournalFileInfo> scan_journal_dir(const std::string& dir) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) throw_errno("opendir", dir);
  std::vector<JournalFileInfo> out;
  for (;;) {
    errno = 0;
    const dirent* ent = ::readdir(d);
    if (ent == nullptr) break;
    const std::string name = ent->d_name;
    constexpr std::string_view kSuffix = ".jnl";
    if (name.size() <= kSuffix.size() ||
        name.compare(name.size() - kSuffix.size(), kSuffix.size(), kSuffix) !=
            0) {
      continue;
    }
    const std::string path = dir + "/" + name;
    try {
      const auto scan = read_journal(path);
      if (!scan) continue;  // died mid-creation: nothing recoverable
      JournalFileInfo info;
      info.path = path;
      info.meta = scan->meta;
      info.entries = scan->entries.size();
      info.torn_tail = scan->torn_tail;
      out.push_back(std::move(info));
    } catch (const JournalError&) {
      // Foreign or corrupt-beyond-repair file: a restart scan must not die
      // on one bad inode, it recovers everything else.
      continue;
    }
  }
  ::closedir(d);
  std::sort(out.begin(), out.end(),
            [](const JournalFileInfo& a, const JournalFileInfo& b) {
              return a.path < b.path;
            });
  return out;
}

// -- writing ---------------------------------------------------------------

JournalWriter JournalWriter::create(const std::string& path,
                                    const JournalMeta& meta, bool sync) {
  const int fd =
      ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) throw_errno("create", path);
  JournalWriter w(fd, sync, path);
  const auto hdr = header_bytes(meta);
  write_all(fd, hdr.data(), hdr.size(), path);
  if (sync) fsync_or_throw(fd, path);
  return w;
}

JournalWriter JournalWriter::append_to(const std::string& path,
                                       std::uint64_t valid_bytes, bool sync) {
  const int fd = ::open(path.c_str(), O_WRONLY);
  if (fd < 0) throw_errno("open", path);
  JournalWriter w(fd, sync, path);
  // Drop any torn tail before appending over it.
  if (::ftruncate(fd, off_t(valid_bytes)) != 0) throw_errno("truncate", path);
  if (::lseek(fd, off_t(valid_bytes), SEEK_SET) < 0) throw_errno("seek", path);
  return w;
}

JournalWriter::JournalWriter(JournalWriter&& o) noexcept
    : fd_(std::exchange(o.fd_, -1)),
      sync_(o.sync_),
      path_(std::move(o.path_)) {}

JournalWriter& JournalWriter::operator=(JournalWriter&& o) noexcept {
  if (this != &o) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(o.fd_, -1);
    sync_ = o.sync_;
    path_ = std::move(o.path_);
  }
  return *this;
}

JournalWriter::~JournalWriter() {
  // Silent close: a destructor cannot throw.  Callers that must learn
  // about deferred ENOSPC/EIO call close() explicitly first.
  if (fd_ >= 0) ::close(fd_);
}

void JournalWriter::append(const JournalEntry& e) {
  if (fd_ < 0) throw JournalError("journal: append on a moved-from writer");
  const auto rec = record_bytes(e);
  write_all(fd_, rec.data(), rec.size(), path_);
  if (sync_) fsync_or_throw(fd_, path_);
}

void JournalWriter::close() {
  if (fd_ < 0) return;
  const int fd = std::exchange(fd_, -1);
  // Without per-record fsync, buffered records may not have hit the disk
  // yet — flush now so a full filesystem fails the sweep loudly instead
  // of quietly truncating the journal.
  if (!sync_) {
    try {
      fsync_or_throw(fd, path_);
    } catch (...) {
      ::close(fd);
      throw;
    }
  }
  if (::close(fd) != 0) throw_errno("close", path_);
}

// -- RunTrace round-trip ---------------------------------------------------

std::vector<unsigned char> serialize_trace(const RunTrace& t) {
  std::vector<unsigned char> out;
  std::size_t est = 64;
  for (const FlowTrace& f : t.flows) {
    est += 64 + f.name.size() + f.mbps.size() * sizeof(double) +
           (f.pkts_recv.size() + f.pkts_lost.size()) * sizeof(std::uint64_t);
  }
  est += (t.game_mbps.size() + t.tcp_mbps.size()) * sizeof(double) +
         (t.game_pkts_recv.size() + t.game_pkts_lost.size() +
          t.queue_drops.size()) *
             sizeof(std::uint64_t) +
         t.rtt.size() * sizeof(PingClient::Sample) +
         t.frame_times.size() * sizeof(Time);
  out.reserve(est);
  put_time(out, t.sample_interval);
  put_time(out, t.duration);
  put_u32(out, std::uint32_t(t.flows.size()));
  for (const FlowTrace& f : t.flows) {
    put_u64(out, std::uint64_t(f.id));
    put_string(out, f.name);
    put_u8(out, std::uint8_t(f.kind));
    put_pod_vec(out, f.mbps);
    put_pod_vec(out, f.pkts_recv);
    put_pod_vec(out, f.pkts_lost);
  }
  put_pod_vec(out, t.game_mbps);
  put_pod_vec(out, t.tcp_mbps);
  put_pod_vec(out, t.rtt);
  put_pod_vec(out, t.game_pkts_recv);
  put_pod_vec(out, t.game_pkts_lost);
  put_pod_vec(out, t.queue_drops);
  put_pod_vec(out, t.frame_times);
  put_u32(out, std::uint32_t(t.links.size()));
  for (const LinkTrace& l : t.links) {
    put_string(out, l.name);
    put_pod_vec(out, l.util_mbps);
    put_pod_vec(out, l.depth_bytes);
    put_pod_vec(out, l.drops);
  }
  // Fleet digest tail (outside trace_hash, which covers only the legacy
  // views): one flag byte for fleet-free runs.
  put_u8(out, t.fleet.active ? 1 : 0);
  if (t.fleet.active) {
    const net::FleetResult& fl = t.fleet;
    put_u64(out, fl.ticks);
    put_u64(out, fl.session_ticks);
    put_u64(out, fl.stall_ticks);
    put_u64(out, fl.arrivals);
    put_u64(out, fl.departures);
    put_u32(out, fl.peak_sessions);
    put_u32(out, fl.final_sessions);
    put_f64(out, fl.mean_mbps);
    put_f64(out, fl.p50_mbps);
    put_f64(out, fl.p95_mbps);
    put_f64(out, fl.p99_mbps);
    put_f64(out, fl.stall_rate);
    put_f64(out, fl.jain);
    put_u32(out, std::uint32_t(fl.links.size()));
    for (const net::FleetLinkLoad& ll : fl.links) {
      put_string(out, ll.link);
      put_f64(out, ll.offered_mbps_mean);
      put_f64(out, ll.served_mbps_mean);
    }
  }
  return out;
}

RunTrace deserialize_trace(const unsigned char* data, std::size_t size) {
  Cursor c(data, size);
  RunTrace t;
  t.sample_interval = c.time();
  t.duration = c.time();
  const std::uint32_t n_flows = c.u32();
  t.flows.reserve(n_flows);
  for (std::uint32_t i = 0; i < n_flows; ++i) {
    FlowTrace f;
    f.id = net::FlowId(c.u64());
    f.name = c.string();
    f.kind = FlowKind(c.u8());
    f.mbps = c.pod_vec<double>();
    f.pkts_recv = c.pod_vec<std::uint64_t>();
    f.pkts_lost = c.pod_vec<std::uint64_t>();
    t.flows.push_back(std::move(f));
  }
  t.game_mbps = c.pod_vec<double>();
  t.tcp_mbps = c.pod_vec<double>();
  t.rtt = c.pod_vec<PingClient::Sample>();
  t.game_pkts_recv = c.pod_vec<std::uint64_t>();
  t.game_pkts_lost = c.pod_vec<std::uint64_t>();
  t.queue_drops = c.pod_vec<std::uint64_t>();
  t.frame_times = c.pod_vec<Time>();
  const std::uint32_t n_links = c.u32();
  t.links.reserve(n_links);
  for (std::uint32_t i = 0; i < n_links; ++i) {
    LinkTrace l;
    l.name = c.string();
    l.util_mbps = c.pod_vec<double>();
    l.depth_bytes = c.pod_vec<std::uint64_t>();
    l.drops = c.pod_vec<std::uint64_t>();
    t.links.push_back(std::move(l));
  }
  if (c.u8() != 0) {
    net::FleetResult& fl = t.fleet;
    fl.active = true;
    fl.ticks = c.u64();
    fl.session_ticks = c.u64();
    fl.stall_ticks = c.u64();
    fl.arrivals = c.u64();
    fl.departures = c.u64();
    fl.peak_sessions = c.u32();
    fl.final_sessions = c.u32();
    fl.mean_mbps = c.f64();
    fl.p50_mbps = c.f64();
    fl.p95_mbps = c.f64();
    fl.p99_mbps = c.f64();
    fl.stall_rate = c.f64();
    fl.jain = c.f64();
    const std::uint32_t n_loads = c.u32();
    fl.links.reserve(n_loads);
    for (std::uint32_t i = 0; i < n_loads; ++i) {
      net::FleetLinkLoad ll;
      ll.link = c.string();
      ll.offered_mbps_mean = c.f64();
      ll.served_mbps_mean = c.f64();
      fl.links.push_back(std::move(ll));
    }
  }
  if (!c.done()) {
    throw JournalError("journal: trailing bytes after trace payload");
  }
  return t;
}

// -- hashing ---------------------------------------------------------------

std::uint64_t fnv1a_bytes(std::uint64_t h, const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}

std::uint64_t trace_hash(const RunTrace& t) {
  std::uint64_t h = 1469598103934665603ULL;
  h = fnv1a_bytes(h, t.game_mbps.data(), t.game_mbps.size() * sizeof(double));
  h = fnv1a_bytes(h, t.tcp_mbps.data(), t.tcp_mbps.size() * sizeof(double));
  h = fnv1a_bytes(h, t.game_pkts_recv.data(),
                  t.game_pkts_recv.size() * sizeof(std::uint64_t));
  h = fnv1a_bytes(h, t.game_pkts_lost.data(),
                  t.game_pkts_lost.size() * sizeof(std::uint64_t));
  h = fnv1a_bytes(h, t.queue_drops.data(),
                  t.queue_drops.size() * sizeof(std::uint64_t));
  h = fnv1a_bytes(h, t.frame_times.data(),
                  t.frame_times.size() * sizeof(Time));
  h = fnv1a_bytes(h, t.rtt.data(), t.rtt.size() * sizeof(PingClient::Sample));
  return h;
}

std::uint64_t sweep_fingerprint(const std::vector<SweepCell>& cells,
                                int runs) {
  std::uint64_t h = 1469598103934665603ULL;
  auto mix_u64 = [&](std::uint64_t v) { h = fnv1a_bytes(h, &v, sizeof v); };
  auto mix_str = [&](const std::string& s) {
    mix_u64(s.size());
    h = fnv1a_bytes(h, s.data(), s.size());
  };

  mix_u64(std::uint64_t(runs));
  mix_u64(cells.size());
  for (const SweepCell& c : cells) {
    mix_str(c.label);
    const Scenario& sc = c.scenario;
    mix_str(sc.label());  // system/capacity/queue/algo in one line
    mix_u64(sc.seed);
    mix_u64(std::uint64_t(sc.duration.count()));
    mix_u64(std::uint64_t(sc.base_rtt.count()));
    mix_u64(std::uint64_t(sc.tcp_start.count()));
    mix_u64(std::uint64_t(sc.tcp_stop.count()));
    mix_u64(std::uint64_t(sc.queue_kind));
    mix_u64(sc.watchdog_event_budget);
    // Fault injection changes what the grid *is*, so an active fault must
    // fail fingerprint matching against a clean journal.  Mixed only when
    // armed so every pre-existing clean-grid fingerprint stays stable.
    // (The wall budget is deliberately absent: it is environmental and
    // never alters a healthy run's trace.)
    if (sc.fault.kind != Scenario::FaultKind::kNone) {
      mix_u64(std::uint64_t(sc.fault.kind));
      mix_u64(sc.fault.seed);
    }
    const auto flows = sc.effective_flows();
    mix_u64(flows.size());
    for (const FlowSpec& f : flows) {
      mix_u64(std::uint64_t(f.kind));
      mix_u64(std::uint64_t(f.id));
      mix_str(f.name);
      mix_u64(std::uint64_t(f.algo));
      mix_u64(std::uint64_t(f.start.count()));
      mix_u64(f.stop ? std::uint64_t(f.stop->count()) : ~std::uint64_t{0});
      mix_u64(std::uint64_t(f.extra_owd.count()));
    }
    // Explicit topologies change what the grid *is*; mixed only when
    // non-empty so every legacy single-bottleneck fingerprint stays stable.
    if (!sc.topology.empty()) {
      const net::TopologySpec topo = sc.topology.resolved();
      mix_str(topo.name);
      mix_u64(topo.links.size());
      for (const net::LinkSpec& l : topo.links) {
        mix_str(l.name);
        mix_u64(std::uint64_t(l.rate.bits_per_sec()));
        mix_u64(std::uint64_t(l.prop_delay.count()));
        mix_u64(l.queue ? std::uint64_t(*l.queue) + 1 : 0);
        if (l.queue_bdp_mult) {
          std::uint64_t bits;
          std::memcpy(&bits, &*l.queue_bdp_mult, sizeof bits);
          mix_u64(bits + 1);
        } else {
          mix_u64(0);
        }
        mix_u64(l.queue_bytes ? std::uint64_t(l.queue_bytes->bytes()) + 1 : 0);
        mix_u64(l.impair && l.impair->any() ? 1 : 0);
        mix_u64(l.rate_schedule.size());
        for (const net::RateChange& rc : l.rate_schedule) {
          mix_u64(std::uint64_t(rc.at.count()));
          mix_u64(std::uint64_t(rc.rate.bits_per_sec()));
        }
      }
      const auto mix_names = [&](const std::vector<std::string>& names) {
        mix_u64(names.size());
        for (const std::string& n : names) mix_str(n);
      };
      mix_names(topo.default_down);
      mix_names(topo.default_up);
      mix_u64(topo.paths.size());
      for (const net::PathSpec& p : topo.paths) {
        mix_u64(std::uint64_t(p.flow));
        mix_names(p.down);
        mix_names(p.up);
      }
    }
    // The fleet spec changes what the grid *is*; mixed only when non-empty
    // (same conditional pattern as fault/topology) so every fleet-free
    // fingerprint stays stable.
    if (!sc.fleet.empty()) {
      const auto mix_f64 = [&](double v) {
        std::uint64_t bits;
        std::memcpy(&bits, &v, sizeof bits);
        mix_u64(bits);
      };
      mix_u64(std::uint64_t(sc.fleet.tick.count()));
      mix_f64(sc.fleet.stall_threshold);
      mix_u64(sc.fleet.sources.size());
      for (const net::FluidSourceSpec& src : sc.fleet.sources) {
        mix_u64(std::uint64_t(src.cls));
        mix_str(src.link);
        mix_u64(src.sessions);
        mix_f64(src.rate_mbps);
        mix_f64(src.rate_jitter);
        mix_f64(src.arrival_per_min);
        mix_f64(src.mean_holding_s);
        mix_u64(src.diurnal.size());
        for (double d : src.diurnal) mix_f64(d);
        mix_u64(src.max_sessions);
      }
    }
    // Non-default trace policies thin the series a journal stores, so they
    // also distinguish grids (mixed only when non-default).
    if (sc.trace_stride != 1 || sc.trace_max_flow_series != 0) {
      mix_u64(sc.trace_stride);
      mix_u64(sc.trace_max_flow_series);
    }
  }
  return h;
}

}  // namespace cgs::core
