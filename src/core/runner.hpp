// Experiment execution: N seeded runs of a Scenario, optionally in
// parallel (each run owns an independent Simulator; nothing is shared).
// Both entry points are one-cell wrappers over the sweep engine
// (core/sweep.hpp); whole-grid campaigns should call run_sweep directly so
// every cell shares one worker pool.
#pragma once

#include <functional>

#include "core/aggregate.hpp"
#include "core/scenario.hpp"

namespace cgs::core {

struct RunnerOptions {
  int runs = 15;      // paper: 15 iterations per condition (§3.4)
  int threads = 0;    // 0 = hardware concurrency
  /// Optional progress callback (completed_runs, total_runs), counting
  /// failed runs as completed so the final call always reports (n, n).
  /// Calls are serialized and strictly increasing; exceptions it throws
  /// are counted and swallowed (see SweepReport::progress_errors) —
  /// reporting must not kill a worker thread.
  std::function<void(int, int)> progress;
};

/// Execute `opts.runs` seeded repetitions of `scenario` (seeds
/// scenario.seed, +1, ...) and return the raw traces in seed order.
/// Throws std::invalid_argument for runs <= 0 or an invalid scenario; if
/// any run throws (including a WatchdogError from a livelocked run), every
/// remaining run still executes and a std::runtime_error listing each
/// failing seed and message is thrown after the join.
[[nodiscard]] std::vector<RunTrace> run_many(const Scenario& scenario,
                                             const RunnerOptions& opts);

/// One-condition digest via the streaming path: each trace is folded into
/// a ConditionAccumulator the moment its run finishes and then freed, so
/// peak memory stays O(buckets) regardless of opts.runs.  Result is
/// bit-identical to summarize(scenario, run_many(scenario, opts)).
[[nodiscard]] ConditionResult run_condition(const Scenario& scenario,
                                            const RunnerOptions& opts);

}  // namespace cgs::core
