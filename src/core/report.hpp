// Plain-text rendering of the paper's tables, heatmaps and series — what
// the bench binaries print, plus CSV dumping for plotting.
#pragma once

#include <string>
#include <vector>

#include "core/aggregate.hpp"

namespace cgs::core {

/// "27.5 (2.3)" — the paper's mean-with-sd cell format.
[[nodiscard]] std::string fmt_mean_sd(double mean, double sd, int prec = 1);

/// Fixed-width text table.
class TextTable {
 public:
  void set_header(std::vector<std::string> cols);
  void add_row(std::vector<std::string> cells);
  [[nodiscard]] std::string render() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Render one system's 3x3 fairness heatmap block (capacities as rows,
/// queue multipliers as columns), ANSI-coloured when `color`.
[[nodiscard]] std::string render_heatmap_block(
    const std::string& title, const std::vector<double>& capacities_mbps,
    const std::vector<double>& queue_mults,
    const std::vector<std::vector<double>>& values, bool color);

/// Write a mean/CI time-series to CSV: t, mean, ci_low, ci_high [, tcp...].
void write_series_csv(const std::string& path, Time sample_interval,
                      const SeriesStats& game, const SeriesStats* tcp);

/// Per-flow summary table: one row per flow of the mix (id, kind, goodput
/// over the fairness window, share of capacity), followed by the N-flow
/// Jain index line.
[[nodiscard]] std::string render_flow_summary(const ConditionResult& res);

/// Per-flow mean/CI time-series CSV: t_s, then one
/// "<name>_mbps,<name>_ci_lo,<name>_ci_hi" column group per flow row.
void write_flow_series_csv(const std::string& path, Time sample_interval,
                           const std::vector<FlowSummaryRow>& rows);

/// Per-link summary table: one row per topology link (utilization over the
/// fairness window, end-of-run drops, peak queue depth).
[[nodiscard]] std::string render_link_summary(const ConditionResult& res);

/// Per-link mean/CI utilization CSV: t_s, then one
/// "<name>_mbps,<name>_ci_lo,<name>_ci_hi" column group per link row.
void write_link_series_csv(const std::string& path, Time sample_interval,
                           const std::vector<LinkSummaryRow>& rows);

/// Compact console sparkline of a bitrate series (for quick inspection).
[[nodiscard]] std::string sparkline(const std::vector<double>& series,
                                    std::size_t width = 80);

}  // namespace cgs::core
