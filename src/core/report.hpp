// Plain-text rendering of the paper's tables, heatmaps and series — what
// the bench binaries print, plus CSV dumping for plotting.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/aggregate.hpp"
#include "core/sweep.hpp"

namespace cgs::core {

/// "27.5 (2.3)" — the paper's mean-with-sd cell format.
[[nodiscard]] std::string fmt_mean_sd(double mean, double sd, int prec = 1);

/// Fixed-width text table.
class TextTable {
 public:
  void set_header(std::vector<std::string> cols);
  void add_row(std::vector<std::string> cells);
  [[nodiscard]] std::string render() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Render one system's 3x3 fairness heatmap block (capacities as rows,
/// queue multipliers as columns), ANSI-coloured when `color`.
[[nodiscard]] std::string render_heatmap_block(
    const std::string& title, const std::vector<double>& capacities_mbps,
    const std::vector<double>& queue_mults,
    const std::vector<std::vector<double>>& values, bool color);

/// Write a mean/CI time-series to CSV: t, mean, ci_low, ci_high [, tcp...].
void write_series_csv(const std::string& path, Time sample_interval,
                      const SeriesStats& game, const SeriesStats* tcp);

/// Per-flow summary table: one row per flow of the mix (id, kind, goodput
/// over the fairness window, share of capacity), followed by the N-flow
/// Jain index line.
[[nodiscard]] std::string render_flow_summary(const ConditionResult& res);

/// Per-flow mean/CI time-series CSV: t_s, then one
/// "<name>_mbps,<name>_ci_lo,<name>_ci_hi" column group per flow row.
void write_flow_series_csv(const std::string& path, Time sample_interval,
                           const std::vector<FlowSummaryRow>& rows);

/// Per-link summary table: one row per topology link (utilization over the
/// fairness window, end-of-run drops, peak queue depth).
[[nodiscard]] std::string render_link_summary(const ConditionResult& res);

/// Per-link mean/CI utilization CSV: t_s, then one
/// "<name>_mbps,<name>_ci_lo,<name>_ci_hi" column group per link row.
void write_link_series_csv(const std::string& path, Time sample_interval,
                           const std::vector<LinkSummaryRow>& rows);

/// Compact console sparkline of a bitrate series (for quick inspection).
[[nodiscard]] std::string sparkline(const std::vector<double>& series,
                                    std::size_t width = 80);

/// What write_sweep_csvs produced: the paths it wrote and the row counts,
/// so callers can report them.  fleet_path stays empty when no cell of the
/// sweep ran a fluid fleet (the file is not written at all).
struct SweepCsvFiles {
  std::string cells_path;
  std::size_t cell_rows = 0;
  std::string links_path;
  std::size_t link_rows = 0;
  std::string fleet_path;
  std::size_t fleet_rows = 0;
};

/// Write the standard sweep output set: <prefix>_cells.csv (one row per
/// cell), <prefix>_links.csv (one row per cell x topology link) and — only
/// when some cell ran a fluid fleet — <prefix>_fleet.csv.  This is THE
/// definition of the sweep CSV format: the sweep CLI and the sweep daemon
/// both call it, so a resumed or daemon-run sweep produces byte-identical
/// files to a direct CLI run.
SweepCsvFiles write_sweep_csvs(const std::string& prefix,
                               const SweepResult& sweep);

}  // namespace cgs::core
