#include "core/error.hpp"

#include <new>
#include <sstream>

#include "sim/simulator.hpp"

namespace cgs::core {

namespace {

std::string format_what(ErrorClass cls, const std::string& msg,
                        const ErrorContext& ctx) {
  std::ostringstream os;
  os << "[" << to_string(cls) << "]";
  if (!ctx.cell_label.empty()) os << " cell '" << ctx.cell_label << "'";
  if (ctx.seed != 0) os << " seed " << ctx.seed;
  if (ctx.sim_time != kTimeInfinite) {
    os << " t=" << to_seconds(ctx.sim_time) << "s";
  }
  if (ctx.flow != 0) os << " flow " << ctx.flow;
  os << ": " << msg;
  return os.str();
}

}  // namespace

std::string_view to_string(ErrorClass c) {
  switch (c) {
    case ErrorClass::kWatchdog: return "watchdog";
    case ErrorClass::kInvariant: return "invariant";
    case ErrorClass::kScenario: return "scenario";
    case ErrorClass::kUnclassified: return "unclassified";
    case ErrorClass::kCrash: return "crash";
    case ErrorClass::kTimeout: return "timeout";
    case ErrorClass::kResource: return "resource";
  }
  return "?";
}

SimError::SimError(ErrorClass cls, const std::string& msg, ErrorContext ctx)
    : std::runtime_error(format_what(cls, msg, ctx)),
      cls_(cls),
      ctx_(std::move(ctx)) {}

ErrorClass classify(const std::exception& e) {
  if (const auto* s = dynamic_cast<const SimError*>(&e)) {
    return s->error_class();
  }
  if (dynamic_cast<const sim::WatchdogError*>(&e) != nullptr) {
    return ErrorClass::kWatchdog;
  }
  if (dynamic_cast<const std::bad_alloc*>(&e) != nullptr) {
    return ErrorClass::kResource;
  }
  if (dynamic_cast<const std::invalid_argument*>(&e) != nullptr ||
      dynamic_cast<const std::logic_error*>(&e) != nullptr) {
    return ErrorClass::kScenario;
  }
  return ErrorClass::kUnclassified;
}

ErrorContext context_of(const std::exception& e) {
  if (const auto* s = dynamic_cast<const SimError*>(&e)) {
    return s->context();
  }
  if (const auto* w = dynamic_cast<const sim::WatchdogError*>(&e)) {
    ErrorContext ctx;
    ctx.sim_time = w->sim_time();
    return ctx;
  }
  return {};
}

std::string_view to_string(ProtoError e) {
  switch (e) {
    case ProtoError::kNone: return "ok";
    case ProtoError::kBadFrame: return "bad-frame";
    case ProtoError::kBadRequest: return "bad-request";
    case ProtoError::kUnknownGrid: return "unknown-grid";
    case ProtoError::kInvalidScenario: return "invalid-scenario";
    case ProtoError::kQueueFull: return "queue-full";
    case ProtoError::kUnknownJob: return "unknown-job";
    case ProtoError::kDraining: return "draining";
    case ProtoError::kInternal: return "internal";
  }
  return "?";
}

ProtoError proto_error_from_byte(std::uint8_t b) {
  switch (b) {
    case std::uint8_t(ProtoError::kNone): return ProtoError::kNone;
    case std::uint8_t(ProtoError::kBadFrame): return ProtoError::kBadFrame;
    case std::uint8_t(ProtoError::kBadRequest): return ProtoError::kBadRequest;
    case std::uint8_t(ProtoError::kUnknownGrid): return ProtoError::kUnknownGrid;
    case std::uint8_t(ProtoError::kInvalidScenario):
      return ProtoError::kInvalidScenario;
    case std::uint8_t(ProtoError::kQueueFull): return ProtoError::kQueueFull;
    case std::uint8_t(ProtoError::kUnknownJob): return ProtoError::kUnknownJob;
    case std::uint8_t(ProtoError::kDraining): return ProtoError::kDraining;
    default: return ProtoError::kInternal;
  }
}

ErrorClass error_class_from_byte(std::uint8_t b) {
  switch (b) {
    case std::uint8_t(ErrorClass::kWatchdog): return ErrorClass::kWatchdog;
    case std::uint8_t(ErrorClass::kInvariant): return ErrorClass::kInvariant;
    case std::uint8_t(ErrorClass::kScenario): return ErrorClass::kScenario;
    case std::uint8_t(ErrorClass::kCrash): return ErrorClass::kCrash;
    case std::uint8_t(ErrorClass::kTimeout): return ErrorClass::kTimeout;
    case std::uint8_t(ErrorClass::kResource): return ErrorClass::kResource;
    default: return ErrorClass::kUnclassified;
  }
}

}  // namespace cgs::core
