#include "core/error.hpp"

#include <new>
#include <sstream>

#include "sim/simulator.hpp"

namespace cgs::core {

namespace {

std::string format_what(ErrorClass cls, const std::string& msg,
                        const ErrorContext& ctx) {
  std::ostringstream os;
  os << "[" << to_string(cls) << "]";
  if (!ctx.cell_label.empty()) os << " cell '" << ctx.cell_label << "'";
  if (ctx.seed != 0) os << " seed " << ctx.seed;
  if (ctx.sim_time != kTimeInfinite) {
    os << " t=" << to_seconds(ctx.sim_time) << "s";
  }
  if (ctx.flow != 0) os << " flow " << ctx.flow;
  os << ": " << msg;
  return os.str();
}

}  // namespace

std::string_view to_string(ErrorClass c) {
  switch (c) {
    case ErrorClass::kWatchdog: return "watchdog";
    case ErrorClass::kInvariant: return "invariant";
    case ErrorClass::kScenario: return "scenario";
    case ErrorClass::kUnclassified: return "unclassified";
    case ErrorClass::kCrash: return "crash";
    case ErrorClass::kTimeout: return "timeout";
    case ErrorClass::kResource: return "resource";
  }
  return "?";
}

SimError::SimError(ErrorClass cls, const std::string& msg, ErrorContext ctx)
    : std::runtime_error(format_what(cls, msg, ctx)),
      cls_(cls),
      ctx_(std::move(ctx)) {}

ErrorClass classify(const std::exception& e) {
  if (const auto* s = dynamic_cast<const SimError*>(&e)) {
    return s->error_class();
  }
  if (dynamic_cast<const sim::WatchdogError*>(&e) != nullptr) {
    return ErrorClass::kWatchdog;
  }
  if (dynamic_cast<const std::bad_alloc*>(&e) != nullptr) {
    return ErrorClass::kResource;
  }
  if (dynamic_cast<const std::invalid_argument*>(&e) != nullptr ||
      dynamic_cast<const std::logic_error*>(&e) != nullptr) {
    return ErrorClass::kScenario;
  }
  return ErrorClass::kUnclassified;
}

ErrorContext context_of(const std::exception& e) {
  if (const auto* s = dynamic_cast<const SimError*>(&e)) {
    return s->context();
  }
  if (const auto* w = dynamic_cast<const sim::WatchdogError*>(&e)) {
    ErrorContext ctx;
    ctx.sim_time = w->sim_time();
    return ctx;
  }
  return {};
}

ErrorClass error_class_from_byte(std::uint8_t b) {
  switch (b) {
    case std::uint8_t(ErrorClass::kWatchdog): return ErrorClass::kWatchdog;
    case std::uint8_t(ErrorClass::kInvariant): return ErrorClass::kInvariant;
    case std::uint8_t(ErrorClass::kScenario): return ErrorClass::kScenario;
    case std::uint8_t(ErrorClass::kCrash): return ErrorClass::kCrash;
    case std::uint8_t(ErrorClass::kTimeout): return ErrorClass::kTimeout;
    case std::uint8_t(ErrorClass::kResource): return ErrorClass::kResource;
    default: return ErrorClass::kUnclassified;
  }
}

}  // namespace cgs::core
