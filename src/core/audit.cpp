#include "core/audit.hpp"

#include <sstream>

namespace cgs::core {

void SimAuditor::attach(net::Link& link) {
  link_ = &link;
  net::Sniffer& sn = link.sniffer();
  sn.on_arrival([this](const net::Packet& p, Time t) { on_arrival(p, t); });
  sn.on_drop([this](const net::Packet& p, net::DropReason, Time t) {
    on_drop(p, t);
  });
  sn.on_transmit([this](const net::Packet& p, Time t) { on_transmit(p, t); });
}

void SimAuditor::fail(const std::string& msg, Time t,
                      net::FlowId flow) const {
  ErrorContext ctx;
  ctx.cell_label = opts_.cell_label;
  ctx.seed = opts_.seed;
  ctx.sim_time = t;
  ctx.flow = flow;
  throw InvariantViolation(msg, std::move(ctx));
}

void SimAuditor::check_occupancy(Time t, net::FlowId flow) {
  ++checks_;
  const ByteSize occ = link_->queue().byte_length();
  if (occ < ByteSize(0)) {
    std::ostringstream os;
    os << "queue occupancy negative (" << occ.bytes() << " bytes)";
    fail(os.str(), t, flow);
  }
  if (opts_.queue_capacity > ByteSize(0) && occ > opts_.queue_capacity) {
    std::ostringstream os;
    os << "queue occupancy " << occ.bytes() << " bytes exceeds capacity "
       << opts_.queue_capacity.bytes() << " bytes";
    fail(os.str(), t, flow);
  }
}

void SimAuditor::check_flow(const FlowState& st, net::FlowId flow, Time t) {
  ++checks_;
  if (st.dropped + st.transmitted > st.arrived) {
    std::ostringstream os;
    os << "flow accounting: dropped (" << st.dropped.bytes()
       << ") + transmitted (" << st.transmitted.bytes()
       << ") exceeds arrived (" << st.arrived.bytes() << ") bytes";
    fail(os.str(), t, flow);
  }
}

void SimAuditor::on_arrival(const net::Packet& p, Time t) {
  ++checks_;
  if (p.size_bytes <= 0) {
    std::ostringstream os;
    os << "packet uid " << p.uid << " has non-positive wire size "
       << p.size_bytes;
    fail(os.str(), t, p.flow);
  }
  arrived_ += p.size();
  flows_[p.flow].arrived += p.size();
}

void SimAuditor::on_drop(const net::Packet& p, Time t) {
  dropped_ += p.size();
  FlowState& st = flows_[p.flow];
  st.dropped += p.size();
  check_flow(st, p.flow, t);
  check_occupancy(t, p.flow);
}

void SimAuditor::on_transmit(const net::Packet& p, Time t) {
  transmitted_ += p.size();
  ++transmitted_pkts_;
  FlowState& st = flows_[p.flow];
  st.transmitted += p.size();
  check_flow(st, p.flow, t);

  // Conservation at the transmitter: the packet just left the queue, so
  // everything that arrived and was neither dropped nor transmitted must
  // be the queue's current occupancy, to the byte.
  ++checks_;
  const ByteSize residual = arrived_ - dropped_ - transmitted_;
  if (residual != link_->queue().byte_length()) {
    std::ostringstream os;
    os << "byte conservation: arrived " << arrived_.bytes() << " - dropped "
       << dropped_.bytes() << " - transmitted " << transmitted_.bytes()
       << " = " << residual.bytes() << " bytes, but queue holds "
       << link_->queue().byte_length().bytes();
    fail(os.str(), t, p.flow);
  }
  check_occupancy(t, p.flow);

  if (opts_.check_sequences) {
    if (const auto* rtp = std::get_if<net::RtpHeader>(&p.header)) {
      ++checks_;
      if (st.saw_rtp && rtp->seq <= st.last_rtp_seq) {
        std::ostringstream os;
        os << "RTP sequence not increasing at bottleneck: seq " << rtp->seq
           << " after " << st.last_rtp_seq;
        fail(os.str(), t, p.flow);
      }
      st.saw_rtp = true;
      st.last_rtp_seq = rtp->seq;
    }
  }
}

void SimAuditor::final_check() const {
  if (link_ == nullptr) return;
  ++checks_;
  const ByteSize residual = arrived_ - dropped_ - transmitted_;
  if (residual != link_->queue().byte_length()) {
    std::ostringstream os;
    os << "end-of-run byte conservation: residual " << residual.bytes()
       << " bytes vs queue occupancy "
       << link_->queue().byte_length().bytes();
    fail(os.str(), kTimeInfinite, 0);
  }
  ++checks_;
  if (link_->packets_delivered() > transmitted_pkts_) {
    std::ostringstream os;
    os << "link delivered " << link_->packets_delivered()
       << " packets but only " << transmitted_pkts_
       << " were seen at the transmitter";
    fail(os.str(), kTimeInfinite, 0);
  }
}

}  // namespace cgs::core
