#include "core/aggregate.hpp"

#include <algorithm>
#include <utility>

#include "util/stats.hpp"

namespace cgs::core {

SeriesStats aggregate_series(const std::vector<std::vector<double>>& runs) {
  OnlineSeries s;
  for (const auto& r : runs) s.add(r);
  return series_stats(s);
}

SeriesStats series_stats(const OnlineSeries& s) {
  SeriesStats out;
  const std::size_t len = s.size();
  out.mean.resize(len);
  out.sd.resize(len);
  out.ci95.resize(len);
  for (std::size_t i = 0; i < len; ++i) {
    out.mean[i] = s[i].mean();
    out.sd[i] = s[i].stddev();
    out.ci95[i] = ci95_halfwidth(s[i]);
  }
  return out;
}

ConditionAccumulator::ConditionAccumulator(Scenario scenario)
    : sc_(std::move(scenario)) {}

void ConditionAccumulator::add(const RunTrace& t) {
  if (runs_ == 0) {
    ival_ = t.sample_interval;
    flow_rows_.reserve(t.flows.size());
    for (const FlowTrace& f : t.flows) {
      FlowRowAcc row;
      row.id = f.id;
      row.name = f.name;
      row.kind = f.kind;
      flow_rows_.push_back(std::move(row));
    }
    link_rows_.reserve(t.links.size());
    for (const LinkTrace& l : t.links) {
      LinkRowAcc row;
      row.name = l.name;
      link_rows_.push_back(std::move(row));
    }
  }
  ++runs_;

  game_.add(t.game_mbps);
  tcp_.add(t.tcp_mbps);

  const AnalysisWindows aw;
  // Per-flow digests: the first trace defines the mix shape; shorter mixes
  // in later traces skip the missing rows (matching the batch guard).
  for (std::size_t fi = 0; fi < flow_rows_.size(); ++fi) {
    if (fi >= t.flows.size()) continue;
    flow_rows_[fi].series.add(t.flows[fi].mbps);
    flow_rows_[fi].fair_win.add(t.mean_bitrate_mbps(
        t.flows[fi].mbps, aw.fairness_from, aw.fairness_to));
  }
  // Per-link digests (same first-trace shaping as the flow rows).
  for (std::size_t li = 0; li < link_rows_.size(); ++li) {
    if (li >= t.links.size()) continue;
    const LinkTrace& l = t.links[li];
    link_rows_[li].util.add(l.util_mbps);
    link_rows_[li].fair_win.add(
        t.mean_bitrate_mbps(l.util_mbps, aw.fairness_from, aw.fairness_to));
    // Cumulative boundary counters: the sampler's last firing lands on the
    // penultimate boundary slot (collectors quirk), so the end-of-run count
    // is the series maximum, not .back().
    std::uint64_t total = 0;
    for (std::uint64_t d : l.drops) total = std::max(total, d);
    link_rows_[li].drops.add(double(total));
    std::uint64_t peak = 0;
    for (std::uint64_t d : l.depth_bytes) peak = std::max(peak, d);
    link_rows_[li].peak_depth.add(double(peak));
  }
  jain_.add(jain_index(t, aw));

  // Measurement window: the competing-flow period (same window for solo
  // runs, keeping Tables 3 and 4 comparable).
  const Time win_from = sc_.tcp_start;
  const Time win_to = sc_.tcp_stop;

  if (sc_.tcp_algo) {
    fair_.add(fairness_ratio(t.game_mbps, t.tcp_mbps, ival_, sc_.capacity));
  }
  gfair_.add(t.mean_game_mbps(aw.fairness_from, aw.fairness_to));
  tfair_.add(t.mean_tcp_mbps(aw.fairness_from, aw.fairness_to));
  fps_.add(t.fps_over(win_from, win_to));
  loss_.add(t.game_loss_in(win_from, win_to));
  for (const auto& r : t.rtt) {
    if (r.at >= win_from && r.at < win_to) {
      rtt_all_.add(to_seconds(r.rtt) * 1e3);
    }
  }
  // Steady-state window: the last minute before the TCP flow arrives
  // (§4.2's "original bitrate" window, scaled to shortened schedules).
  const Time steady_from =
      win_from > std::chrono::seconds(60) ? win_from - std::chrono::seconds(60)
                                          : win_from / 2;
  steady_.add(t.mean_game_mbps(steady_from, win_from));

  if (t.fleet.active) {
    fleet_active_ = true;
    fp50_.add(t.fleet.p50_mbps);
    fp95_.add(t.fleet.p95_mbps);
    fp99_.add(t.fleet.p99_mbps);
    fmean_.add(t.fleet.mean_mbps);
    fstall_.add(t.fleet.stall_rate);
    fjain_.add(t.fleet.jain);
    fpeak_.add(double(t.fleet.peak_sessions));
    farr_.add(double(t.fleet.arrivals));
    fdep_.add(double(t.fleet.departures));
  }
}

ConditionResult ConditionAccumulator::finalize() const {
  ConditionResult res;
  res.scenario = sc_;
  res.runs = runs_;
  if (runs_ == 0) return res;

  res.game = series_stats(game_);
  res.tcp = series_stats(tcp_);
  res.flow_rows.reserve(flow_rows_.size());
  for (const FlowRowAcc& acc : flow_rows_) {
    FlowSummaryRow row;
    row.id = acc.id;
    row.name = acc.name;
    row.kind = acc.kind;
    row.series = series_stats(acc.series);
    row.fair_mbps_mean = acc.fair_win.mean();
    row.fair_mbps_sd = acc.fair_win.stddev();
    res.flow_rows.push_back(std::move(row));
  }
  res.link_rows.reserve(link_rows_.size());
  for (const LinkRowAcc& acc : link_rows_) {
    LinkSummaryRow row;
    row.name = acc.name;
    row.util = series_stats(acc.util);
    row.util_fair_mean = acc.fair_win.mean();
    row.util_fair_sd = acc.fair_win.stddev();
    row.drops_mean = acc.drops.mean();
    row.drops_sd = acc.drops.stddev();
    row.peak_depth_mean = acc.peak_depth.mean();
    res.link_rows.push_back(std::move(row));
  }
  res.jain_mean = jain_.mean();
  res.jain_sd = jain_.stddev();
  res.fairness_mean = fair_.mean();
  res.fairness_sd = fair_.stddev();
  res.game_fair_mbps = gfair_.mean();
  res.tcp_fair_mbps = tfair_.mean();
  res.fps_mean = fps_.mean();
  res.fps_sd = fps_.stddev();
  res.loss_mean = loss_.mean();
  res.rtt_mean_ms = rtt_all_.mean();
  res.rtt_sd_ms = rtt_all_.stddev();
  res.steady_mean_mbps = steady_.mean();
  res.steady_sd_mbps = steady_.stddev();

  res.rr =
      response_recovery(res.game.mean, ival_, sc_.tcp_start, sc_.tcp_stop);

  if (fleet_active_) {
    res.fleet.active = true;
    res.fleet.p50_mean = fp50_.mean();
    res.fleet.p50_sd = fp50_.stddev();
    res.fleet.p95_mean = fp95_.mean();
    res.fleet.p95_sd = fp95_.stddev();
    res.fleet.p99_mean = fp99_.mean();
    res.fleet.p99_sd = fp99_.stddev();
    res.fleet.mean_mbps_mean = fmean_.mean();
    res.fleet.mean_mbps_sd = fmean_.stddev();
    res.fleet.stall_mean = fstall_.mean();
    res.fleet.stall_sd = fstall_.stddev();
    res.fleet.jain_mean = fjain_.mean();
    res.fleet.jain_sd = fjain_.stddev();
    res.fleet.peak_sessions_mean = fpeak_.mean();
    res.fleet.arrivals_mean = farr_.mean();
    res.fleet.departures_mean = fdep_.mean();
  }
  return res;
}

ConditionResult summarize(const Scenario& sc,
                          const std::vector<RunTrace>& traces) {
  ConditionAccumulator acc(sc);
  for (const auto& t : traces) acc.add(t);
  return acc.finalize();
}

}  // namespace cgs::core
