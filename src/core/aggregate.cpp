#include "core/aggregate.hpp"

#include <algorithm>

#include "util/stats.hpp"

namespace cgs::core {

SeriesStats aggregate_series(const std::vector<std::vector<double>>& runs) {
  SeriesStats out;
  if (runs.empty()) return out;
  std::size_t len = runs.front().size();
  for (const auto& r : runs) len = std::min(len, r.size());

  out.mean.resize(len);
  out.sd.resize(len);
  out.ci95.resize(len);
  for (std::size_t i = 0; i < len; ++i) {
    RunningStats s;
    for (const auto& r : runs) s.add(r[i]);
    out.mean[i] = s.mean();
    out.sd[i] = s.stddev();
    out.ci95[i] = ci95_halfwidth(s);
  }
  return out;
}

ConditionResult summarize(const Scenario& sc,
                          const std::vector<RunTrace>& traces) {
  ConditionResult res;
  res.scenario = sc;
  res.runs = int(traces.size());
  if (traces.empty()) return res;

  std::vector<std::vector<double>> game_runs, tcp_runs;
  game_runs.reserve(traces.size());
  tcp_runs.reserve(traces.size());
  for (const auto& t : traces) {
    game_runs.push_back(t.game_mbps);
    tcp_runs.push_back(t.tcp_mbps);
  }
  res.game = aggregate_series(game_runs);
  res.tcp = aggregate_series(tcp_runs);

  const Time ival = traces.front().sample_interval;
  const AnalysisWindows aw;

  // Per-flow digests (every trace of a condition shares the mix shape).
  for (std::size_t fi = 0; fi < traces.front().flows.size(); ++fi) {
    const FlowTrace& proto = traces.front().flows[fi];
    FlowSummaryRow row;
    row.id = proto.id;
    row.name = proto.name;
    row.kind = proto.kind;
    std::vector<std::vector<double>> runs;
    RunningStats fair_win;
    runs.reserve(traces.size());
    for (const auto& t : traces) {
      if (fi >= t.flows.size()) continue;
      runs.push_back(t.flows[fi].mbps);
      fair_win.add(t.mean_bitrate_mbps(t.flows[fi].mbps, aw.fairness_from,
                                       aw.fairness_to));
    }
    row.series = aggregate_series(runs);
    row.fair_mbps_mean = fair_win.mean();
    row.fair_mbps_sd = fair_win.stddev();
    res.flow_rows.push_back(std::move(row));
  }
  RunningStats jain;
  for (const auto& t : traces) jain.add(jain_index(t, aw));
  res.jain_mean = jain.mean();
  res.jain_sd = jain.stddev();

  // Measurement window: the competing-flow period (same window for solo
  // runs, keeping Tables 3 and 4 comparable).
  const Time win_from = sc.tcp_start;
  const Time win_to = sc.tcp_stop;

  RunningStats fair, fps, loss, steady_m, gfair, tfair;
  RunningStats rtt_all;  // pooled RTT samples across runs
  std::vector<double> steady_means;
  for (const auto& t : traces) {
    if (sc.tcp_algo) {
      fair.add(fairness_ratio(t.game_mbps, t.tcp_mbps, ival, sc.capacity));
    }
    gfair.add(t.mean_game_mbps(aw.fairness_from, aw.fairness_to));
    tfair.add(t.mean_tcp_mbps(aw.fairness_from, aw.fairness_to));
    fps.add(t.fps_over(win_from, win_to));
    loss.add(t.game_loss_in(win_from, win_to));
    for (const auto& r : t.rtt) {
      if (r.at >= win_from && r.at < win_to) {
        rtt_all.add(to_seconds(r.rtt) * 1e3);
      }
    }
    // Steady-state window: the last minute before the TCP flow arrives
    // (§4.2's "original bitrate" window, scaled to shortened schedules).
    const Time steady_from =
        win_from > std::chrono::seconds(60) ? win_from - std::chrono::seconds(60)
                                            : win_from / 2;
    const double sm = t.mean_game_mbps(steady_from, win_from);
    steady_m.add(sm);
    steady_means.push_back(sm);
  }
  res.fairness_mean = fair.mean();
  res.fairness_sd = fair.stddev();
  res.game_fair_mbps = gfair.mean();
  res.tcp_fair_mbps = tfair.mean();
  res.fps_mean = fps.mean();
  res.fps_sd = fps.stddev();
  res.loss_mean = loss.mean();
  res.rtt_mean_ms = rtt_all.mean();
  res.rtt_sd_ms = rtt_all.stddev();
  res.steady_mean_mbps = steady_m.mean();
  res.steady_sd_mbps = steady_m.stddev();

  res.rr = response_recovery(res.game.mean, ival, sc.tcp_start, sc.tcp_stop);
  return res;
}

}  // namespace cgs::core
