#include "core/scenario.hpp"

#include <algorithm>
#include <sstream>

namespace cgs::core {

std::string_view to_string(QueueKind k) {
  switch (k) {
    case QueueKind::kDropTail: return "droptail";
    case QueueKind::kCoDel: return "codel";
    case QueueKind::kFqCoDel: return "fq_codel";
  }
  return "?";
}

ByteSize Scenario::queue_bytes() const {
  const ByteSize one_bdp = bdp(capacity, base_rtt);
  const auto bytes =
      std::int64_t(double(one_bdp.bytes()) * queue_bdp_mult);
  // Never below two full-size packets, or nothing can ever be forwarded.
  return ByteSize(std::max<std::int64_t>(bytes, 2 * 1514));
}

std::string Scenario::label() const {
  std::ostringstream os;
  os << stream::to_string(system) << " " << capacity.megabits_per_sec()
     << "Mb/s " << queue_bdp_mult << "xBDP ";
  if (tcp_algo) {
    os << "vs " << tcp::to_string(*tcp_algo);
  } else {
    os << "solo";
  }
  if (queue_kind != QueueKind::kDropTail) {
    os << " [" << to_string(queue_kind) << "]";
  }
  return os.str();
}

}  // namespace cgs::core
