#include "core/scenario.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>
#include <unordered_set>

namespace cgs::core {

namespace {
[[noreturn]] void invalid(const std::string& msg) {
  throw std::invalid_argument("Scenario: " + msg);
}
}  // namespace

std::string_view to_string(FlowKind k) {
  switch (k) {
    case FlowKind::kGameStream: return "game";
    case FlowKind::kBulkTcp: return "tcp";
    case FlowKind::kPing: return "ping";
  }
  return "?";
}

FlowSpec FlowSpec::game_stream(std::optional<stream::GameSystem> sys) {
  FlowSpec f;
  f.kind = FlowKind::kGameStream;
  f.system = sys;
  return f;
}

FlowSpec FlowSpec::bulk_tcp(tcp::CcAlgo algo, Time start,
                            std::optional<Time> stop) {
  FlowSpec f;
  f.kind = FlowKind::kBulkTcp;
  f.algo = algo;
  f.start = start;
  f.stop = stop;
  return f;
}

FlowSpec FlowSpec::ping() {
  FlowSpec f;
  f.kind = FlowKind::kPing;
  return f;
}

std::vector<FlowSpec> Scenario::effective_flows() const {
  std::vector<FlowSpec> out;
  if (flows.empty()) {
    // The paper's Figure-1 mix.  Ids are pinned to the historical values
    // (game=1, tcp=2, ping=3) so the default topology — including per-flow
    // seed derivation and fq_codel flow hashing — reproduces pre-registry
    // traces bit-exactly.
    FlowSpec g = FlowSpec::game_stream();
    g.id = 1;
    g.name = "game";
    out.push_back(std::move(g));
    if (tcp_algo) {
      FlowSpec t = FlowSpec::bulk_tcp(*tcp_algo, tcp_start, tcp_stop);
      t.id = 2;
      t.name = "tcp";
      out.push_back(std::move(t));
    }
    FlowSpec p = FlowSpec::ping();
    p.id = 3;
    p.name = "ping";
    out.push_back(std::move(p));
    return out;
  }

  out = flows;
  // Resolve auto ids (first free id in declaration order) and empty names.
  std::unordered_set<net::FlowId> used;
  for (const FlowSpec& f : out) {
    if (f.id != 0) used.insert(f.id);
  }
  net::FlowId next = 1;
  std::size_t index = 0;
  for (FlowSpec& f : out) {
    if (f.id == 0) {
      while (used.count(next) != 0) ++next;
      f.id = next;
      used.insert(next);
    }
    if (f.name.empty()) {
      std::ostringstream os;
      os << to_string(f.kind) << index;
      f.name = os.str();
    }
    ++index;
  }
  return out;
}

void Scenario::validate() const {
  if (capacity.bits_per_sec() <= 0) {
    std::ostringstream os;
    os << "capacity must be > 0 (got " << capacity.bits_per_sec() << " b/s)";
    invalid(os.str());
  }
  if (!(queue_bdp_mult > 0.0) || !std::isfinite(queue_bdp_mult)) {
    std::ostringstream os;
    os << "queue_bdp_mult must be > 0 (got " << queue_bdp_mult << ")";
    invalid(os.str());
  }
  if (duration <= kTimeZero) {
    std::ostringstream os;
    os << "duration must be > 0 (got " << to_seconds(duration) << " s)";
    invalid(os.str());
  }
  if (base_rtt <= kTimeZero) {
    std::ostringstream os;
    os << "base_rtt must be > 0 (got " << to_seconds(base_rtt) << " s)";
    invalid(os.str());
  }
  if (watchdog_wall_budget_s < 0) {
    std::ostringstream os;
    os << "watchdog_wall_budget_s must be >= 0 (got " << watchdog_wall_budget_s
       << ")";
    invalid(os.str());
  }
  // The scalar TCP schedule only matters for the synthesized default mix.
  if (flows.empty() && tcp_algo) {
    if (tcp_start < kTimeZero) {
      std::ostringstream os;
      os << "tcp_start must be >= 0 (got " << to_seconds(tcp_start) << " s)";
      invalid(os.str());
    }
    if (tcp_start >= tcp_stop) {
      std::ostringstream os;
      os << "tcp_start (" << to_seconds(tcp_start)
         << " s) must be before tcp_stop (" << to_seconds(tcp_stop) << " s)";
      invalid(os.str());
    }
    if (tcp_stop > duration) {
      std::ostringstream os;
      os << "tcp_stop (" << to_seconds(tcp_stop)
         << " s) must not exceed duration (" << to_seconds(duration) << " s)";
      invalid(os.str());
    }
  }
  if (!flows.empty()) {
    std::unordered_set<net::FlowId> ids;
    for (std::size_t i = 0; i < flows.size(); ++i) {
      const FlowSpec& f = flows[i];
      const auto field = [&](const char* leaf) {
        std::ostringstream os;
        os << "flows[" << i << "]." << leaf;
        return os.str();
      };
      if (f.id != 0 && !ids.insert(f.id).second) {
        std::ostringstream os;
        os << field("id") << " duplicates flow id " << f.id;
        invalid(os.str());
      }
      if (f.start < kTimeZero) {
        std::ostringstream os;
        os << field("start") << " must be >= 0 (got " << to_seconds(f.start)
           << " s)";
        invalid(os.str());
      }
      if (f.stop) {
        if (*f.stop <= f.start) {
          std::ostringstream os;
          os << field("stop") << " (" << to_seconds(*f.stop)
             << " s) must be after start (" << to_seconds(f.start) << " s)";
          invalid(os.str());
        }
        if (*f.stop > duration) {
          std::ostringstream os;
          os << field("stop") << " (" << to_seconds(*f.stop)
             << " s) must not exceed duration (" << to_seconds(duration)
             << " s)";
          invalid(os.str());
        }
      }
      if (f.extra_owd < kTimeZero) {
        std::ostringstream os;
        os << field("extra_owd") << " must be >= 0 (got "
           << to_seconds(f.extra_owd) << " s)";
        invalid(os.str());
      }
      if (f.impair_up) {
        f.impair_up->validate(field("impair_up"));
      }
    }
  }
  impair_down.validate("impair_down");
  impair_up.validate("impair_up");
  validate_topology();

  if (trace_stride < 1) {
    std::ostringstream os;
    os << "trace_stride must be >= 1 (got " << trace_stride << ")";
    invalid(os.str());
  }
  if (!fleet.empty()) {
    if (fleet.tick <= kTimeZero) {
      std::ostringstream os;
      os << "fleet.tick must be > 0 (got " << to_seconds(fleet.tick) << " s)";
      invalid(os.str());
    }
    if (fleet.tick > duration) {
      std::ostringstream os;
      os << "fleet.tick (" << to_seconds(fleet.tick)
         << " s) must not exceed duration (" << to_seconds(duration) << " s)";
      invalid(os.str());
    }
    if (!(fleet.stall_threshold > 0.0) || fleet.stall_threshold > 1.0 ||
        !std::isfinite(fleet.stall_threshold)) {
      std::ostringstream os;
      os << "fleet.stall_threshold must be in (0, 1] (got "
         << fleet.stall_threshold << ")";
      invalid(os.str());
    }
    const net::TopologySpec topo = effective_topology();
    for (std::size_t i = 0; i < fleet.sources.size(); ++i) {
      const net::FluidSourceSpec& src = fleet.sources[i];
      const auto field = [&](const char* leaf) {
        std::ostringstream os;
        os << "fleet.sources[" << i << "]." << leaf;
        return os.str();
      };
      if (src.sessions == 0 && !(src.arrival_per_min > 0.0)) {
        std::ostringstream os;
        os << field("sessions")
           << " must be > 0 (or arrival_per_min > 0): the source would "
              "never carry a session";
        invalid(os.str());
      }
      const auto check_nonneg = [&](const char* leaf, double v) {
        if (v < 0.0 || !std::isfinite(v)) {
          std::ostringstream os;
          os << field(leaf) << " must be finite and >= 0 (got " << v << ")";
          invalid(os.str());
        }
      };
      check_nonneg("rate_mbps", src.rate_mbps);
      check_nonneg("rate_jitter", src.rate_jitter);
      check_nonneg("arrival_per_min", src.arrival_per_min);
      check_nonneg("mean_holding_s", src.mean_holding_s);
      for (std::size_t j = 0; j < src.diurnal.size(); ++j) {
        if (src.diurnal[j] < 0.0 || !std::isfinite(src.diurnal[j])) {
          std::ostringstream os;
          os << field("diurnal") << "[" << j
             << "] must be finite and >= 0 (got " << src.diurnal[j] << ")";
          invalid(os.str());
        }
      }
      if (src.max_sessions > 0 && src.max_sessions < src.sessions) {
        std::ostringstream os;
        os << field("max_sessions") << " (" << src.max_sessions
           << ") must be >= sessions (" << src.sessions << ")";
        invalid(os.str());
      }
      if (!src.link.empty() && topo.link_index(src.link) < 0) {
        std::ostringstream os;
        os << field("link") << " references unknown link '" << src.link
           << "'";
        invalid(os.str());
      }
    }
  }
}

void Scenario::validate_topology() const {
  if (topology.empty()) return;
  if (impair_down.any()) {
    invalid(
        "impair_down cannot be combined with an explicit topology; set "
        "topology.links[i].impair on the hop instead");
  }
  const net::TopologySpec topo = topology.resolved();
  std::unordered_set<std::string> names;
  for (std::size_t i = 0; i < topo.links.size(); ++i) {
    const net::LinkSpec& l = topo.links[i];
    const auto field = [&](const char* leaf) {
      std::ostringstream os;
      os << "topology.links[" << i << "]." << leaf;
      return os.str();
    };
    if (!names.insert(l.name).second) {
      std::ostringstream os;
      os << field("name") << " duplicates link name '" << l.name << "'";
      invalid(os.str());
    }
    if (l.rate.bits_per_sec() <= 0) {
      std::ostringstream os;
      os << field("rate") << " must be > 0 (got " << l.rate.bits_per_sec()
         << " b/s)";
      invalid(os.str());
    }
    if (l.prop_delay < kTimeZero) {
      std::ostringstream os;
      os << field("prop_delay") << " must be >= 0 (got "
         << to_seconds(l.prop_delay) << " s)";
      invalid(os.str());
    }
    if (l.queue_bdp_mult &&
        (!(*l.queue_bdp_mult > 0.0) || !std::isfinite(*l.queue_bdp_mult))) {
      std::ostringstream os;
      os << field("queue_bdp_mult") << " must be > 0 (got "
         << *l.queue_bdp_mult << ")";
      invalid(os.str());
    }
    if (l.queue_bytes && l.queue_bytes->bytes() <= 0) {
      std::ostringstream os;
      os << field("queue_bytes") << " must be > 0 (got "
         << l.queue_bytes->bytes() << ")";
      invalid(os.str());
    }
    if (l.impair) l.impair->validate(field("impair"));
    Time prev = kTimeZero;
    for (std::size_t j = 0; j < l.rate_schedule.size(); ++j) {
      const net::RateChange& rc = l.rate_schedule[j];
      if (rc.rate.bits_per_sec() <= 0) {
        std::ostringstream os;
        os << field("rate_schedule") << "[" << j << "].rate must be > 0 (got "
           << rc.rate.bits_per_sec() << " b/s)";
        invalid(os.str());
      }
      if (rc.at < prev) {
        std::ostringstream os;
        os << field("rate_schedule") << "[" << j
           << "].at must be non-decreasing (got " << to_seconds(rc.at)
           << " s after " << to_seconds(prev) << " s)";
        invalid(os.str());
      }
      prev = rc.at;
    }
  }
  const auto check_names = [&](const std::vector<std::string>& path,
                               const std::string& where) {
    for (const std::string& n : path) {
      if (topo.link_index(n) < 0) {
        std::ostringstream os;
        os << where << " references unknown link '" << n << "'";
        invalid(os.str());
      }
    }
  };
  check_names(topo.default_down, "topology.default_down");
  check_names(topo.default_up, "topology.default_up");
  for (std::size_t i = 0; i < topo.paths.size(); ++i) {
    std::ostringstream where;
    where << "topology.paths[" << i << "]";
    check_names(topo.paths[i].down, where.str() + ".down");
    check_names(topo.paths[i].up, where.str() + ".up");
  }
  // RTT-padding feasibility (§3.3): each flow's fixed propagation must fit
  // under base_rtt so the access pads stay non-negative.
  for (const FlowSpec& f : effective_flows()) {
    const net::PathSpec* p = topo.path_for(f.id);
    Time down_fixed = kTimeZero;
    Time up_fixed = kTimeZero;
    const std::vector<std::string>& down =
        (p != nullptr && !p->down.empty()) ? p->down : topo.default_down;
    if (down.empty()) {
      for (const net::LinkSpec& l : topo.links) down_fixed += l.prop_delay;
    } else {
      for (const std::string& n : down) {
        down_fixed += topo.links[std::size_t(topo.link_index(n))].prop_delay;
      }
    }
    for (const std::string& n : p != nullptr ? p->up : topo.default_up) {
      up_fixed += topo.links[std::size_t(topo.link_index(n))].prop_delay;
    }
    const Time pad_down = (base_rtt - 2 * down_fixed) / 2;
    const Time pad_up = base_rtt - down_fixed - up_fixed - pad_down;
    if (pad_down < kTimeZero || pad_up < kTimeZero) {
      std::ostringstream os;
      os << "base_rtt (" << to_seconds(base_rtt)
         << " s) is too small for flow " << f.id << " ('" << f.name
         << "'): path propagation is " << to_seconds(down_fixed)
         << " s down + " << to_seconds(up_fixed) << " s up";
      invalid(os.str());
    }
  }
}

net::TopologySpec Scenario::effective_topology() const {
  if (!topology.empty()) return topology.resolved();
  net::TopologySpec t =
      net::TopologySpec::single_bottleneck(capacity, kBottleneckProp);
  if (impair_down.any()) t.links[0].impair = impair_down;
  return t;
}

ByteSize Scenario::queue_bytes() const {
  const ByteSize one_bdp = bdp(capacity, base_rtt);
  const auto bytes =
      std::int64_t(double(one_bdp.bytes()) * queue_bdp_mult);
  // Never below two full-size packets, or nothing can ever be forwarded.
  return ByteSize(std::max<std::int64_t>(bytes, 2 * 1514));
}

std::string Scenario::label() const {
  std::ostringstream os;
  os << stream::to_string(system) << " " << capacity.megabits_per_sec()
     << "Mb/s " << queue_bdp_mult << "xBDP ";
  if (!flows.empty()) {
    // Custom mix: count flows per kind, e.g. "mix[2 game + 2 tcp + 1 ping]".
    std::size_t games = 0, tcps = 0, pings = 0;
    for (const FlowSpec& f : flows) {
      if (f.kind == FlowKind::kGameStream) ++games;
      if (f.kind == FlowKind::kBulkTcp) ++tcps;
      if (f.kind == FlowKind::kPing) ++pings;
    }
    os << "mix[";
    const char* sep = "";
    for (auto [n, kind] : {std::pair{games, FlowKind::kGameStream},
                           {tcps, FlowKind::kBulkTcp},
                           {pings, FlowKind::kPing}}) {
      if (n == 0) continue;
      os << sep << n << " " << to_string(kind);
      sep = " + ";
    }
    os << "]";
  } else if (tcp_algo) {
    os << "vs " << tcp::to_string(*tcp_algo);
  } else {
    os << "solo";
  }
  if (queue_kind != QueueKind::kDropTail) {
    os << " [" << to_string(queue_kind) << "]";
  }
  if (!topology.empty()) {
    os << " @" << topology.name << "(" << topology.links.size() << " links)";
  }
  if (!fleet.empty()) {
    // e.g. "+fleet[300: 100 game + 200 cubic]" (initial populations).
    std::uint64_t per_class[3] = {0, 0, 0};
    for (const net::FluidSourceSpec& src : fleet.sources) {
      per_class[std::size_t(src.cls)] += src.sessions;
    }
    os << " +fleet[" << fleet.initial_sessions();
    const char* sep = ": ";
    for (auto cls : {net::FluidClass::kGameStream, net::FluidClass::kBulkCubic,
                     net::FluidClass::kBulkBbr}) {
      const std::uint64_t n = per_class[std::size_t(cls)];
      if (n == 0) continue;
      os << sep << n << " " << net::to_string(cls);
      sep = " + ";
    }
    os << "]";
  }
  return os.str();
}

Scenario parking_lot_scenario(const ParkingLotParams& p) {
  Scenario s;
  s.capacity = p.hop_rate;  // informational; per-link rates govern
  s.queue_bdp_mult = p.queue_bdp_mult;
  s.duration = p.duration;
  s.seed = p.seed;
  s.topology = net::TopologySpec::parking_lot(p.hops, p.hop_rate, p.hop_prop);

  const Time tcp_stop = p.tcp_stop.value_or(p.duration);
  net::FlowId next = 1;
  if (p.game_flow) {
    FlowSpec g = FlowSpec::game_stream();
    g.id = next++;
    g.name = "game";
    s.flows.push_back(std::move(g));
  }
  const auto add_tcp = [&](tcp::CcAlgo algo, const std::string& name) {
    FlowSpec t = FlowSpec::bulk_tcp(algo, p.tcp_start, tcp_stop);
    const net::FlowId id = next++;
    t.id = id;
    t.name = name;
    s.flows.push_back(std::move(t));
    return id;
  };
  for (std::size_t i = 0; i < p.bbr_flows; ++i) {
    std::ostringstream os;
    os << "bbr" << i;
    add_tcp(tcp::CcAlgo::kBbr, os.str());
  }
  for (std::size_t i = 0; i < p.cubic_flows; ++i) {
    std::ostringstream os;
    os << "cubic" << i;
    add_tcp(tcp::CcAlgo::kCubic, os.str());
  }
  for (std::size_t hop = 0; hop < p.hops; ++hop) {
    for (std::size_t c = 0; c < p.cross_per_hop; ++c) {
      std::ostringstream name, link;
      name << "x" << hop << "_" << c;
      link << "hop" << hop;
      const net::FlowId id = add_tcp(p.cross_algo, name.str());
      net::PathSpec path;
      path.flow = id;
      path.down = {link.str()};
      s.topology.paths.push_back(std::move(path));
    }
  }
  if (p.ping_flow) {
    FlowSpec ping = FlowSpec::ping();
    ping.id = next++;
    ping.name = "ping";
    s.flows.push_back(std::move(ping));
  }
  return s;
}

Scenario asymmetric_scenario(Bandwidth down_rate, Bandwidth up_rate) {
  Scenario s;
  s.capacity = down_rate;  // informational; per-link rates govern
  s.topology = net::TopologySpec::asymmetric(down_rate, up_rate,
                                             kBottleneckProp);
  return s;
}

}  // namespace cgs::core
