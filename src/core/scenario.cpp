#include "core/scenario.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace cgs::core {

namespace {
[[noreturn]] void invalid(const std::string& msg) {
  throw std::invalid_argument("Scenario: " + msg);
}
}  // namespace

void Scenario::validate() const {
  if (capacity.bits_per_sec() <= 0) {
    std::ostringstream os;
    os << "capacity must be > 0 (got " << capacity.bits_per_sec() << " b/s)";
    invalid(os.str());
  }
  if (!(queue_bdp_mult > 0.0) || !std::isfinite(queue_bdp_mult)) {
    std::ostringstream os;
    os << "queue_bdp_mult must be > 0 (got " << queue_bdp_mult << ")";
    invalid(os.str());
  }
  if (duration <= kTimeZero) {
    std::ostringstream os;
    os << "duration must be > 0 (got " << to_seconds(duration) << " s)";
    invalid(os.str());
  }
  if (base_rtt <= kTimeZero) {
    std::ostringstream os;
    os << "base_rtt must be > 0 (got " << to_seconds(base_rtt) << " s)";
    invalid(os.str());
  }
  // The TCP schedule only matters when a competing flow exists.
  if (tcp_algo) {
    if (tcp_start > tcp_stop) {
      std::ostringstream os;
      os << "tcp_start (" << to_seconds(tcp_start)
         << " s) must not exceed tcp_stop (" << to_seconds(tcp_stop) << " s)";
      invalid(os.str());
    }
    if (tcp_stop > duration) {
      std::ostringstream os;
      os << "tcp_stop (" << to_seconds(tcp_stop)
         << " s) must not exceed duration (" << to_seconds(duration) << " s)";
      invalid(os.str());
    }
  }
  impair_down.validate("impair_down");
  impair_up.validate("impair_up");
}

std::string_view to_string(QueueKind k) {
  switch (k) {
    case QueueKind::kDropTail: return "droptail";
    case QueueKind::kCoDel: return "codel";
    case QueueKind::kFqCoDel: return "fq_codel";
  }
  return "?";
}

ByteSize Scenario::queue_bytes() const {
  const ByteSize one_bdp = bdp(capacity, base_rtt);
  const auto bytes =
      std::int64_t(double(one_bdp.bytes()) * queue_bdp_mult);
  // Never below two full-size packets, or nothing can ever be forwarded.
  return ByteSize(std::max<std::int64_t>(bytes, 2 * 1514));
}

std::string Scenario::label() const {
  std::ostringstream os;
  os << stream::to_string(system) << " " << capacity.megabits_per_sec()
     << "Mb/s " << queue_bdp_mult << "xBDP ";
  if (tcp_algo) {
    os << "vs " << tcp::to_string(*tcp_algo);
  } else {
    os << "solo";
  }
  if (queue_kind != QueueKind::kDropTail) {
    os << " [" << to_string(queue_kind) << "]";
  }
  return os.str();
}

}  // namespace cgs::core
