#include "core/scenario.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>
#include <unordered_set>

namespace cgs::core {

namespace {
[[noreturn]] void invalid(const std::string& msg) {
  throw std::invalid_argument("Scenario: " + msg);
}
}  // namespace

std::string_view to_string(FlowKind k) {
  switch (k) {
    case FlowKind::kGameStream: return "game";
    case FlowKind::kBulkTcp: return "tcp";
    case FlowKind::kPing: return "ping";
  }
  return "?";
}

FlowSpec FlowSpec::game_stream(std::optional<stream::GameSystem> sys) {
  FlowSpec f;
  f.kind = FlowKind::kGameStream;
  f.system = sys;
  return f;
}

FlowSpec FlowSpec::bulk_tcp(tcp::CcAlgo algo, Time start,
                            std::optional<Time> stop) {
  FlowSpec f;
  f.kind = FlowKind::kBulkTcp;
  f.algo = algo;
  f.start = start;
  f.stop = stop;
  return f;
}

FlowSpec FlowSpec::ping() {
  FlowSpec f;
  f.kind = FlowKind::kPing;
  return f;
}

std::vector<FlowSpec> Scenario::effective_flows() const {
  std::vector<FlowSpec> out;
  if (flows.empty()) {
    // The paper's Figure-1 mix.  Ids are pinned to the historical values
    // (game=1, tcp=2, ping=3) so the default topology — including per-flow
    // seed derivation and fq_codel flow hashing — reproduces pre-registry
    // traces bit-exactly.
    FlowSpec g = FlowSpec::game_stream();
    g.id = 1;
    g.name = "game";
    out.push_back(std::move(g));
    if (tcp_algo) {
      FlowSpec t = FlowSpec::bulk_tcp(*tcp_algo, tcp_start, tcp_stop);
      t.id = 2;
      t.name = "tcp";
      out.push_back(std::move(t));
    }
    FlowSpec p = FlowSpec::ping();
    p.id = 3;
    p.name = "ping";
    out.push_back(std::move(p));
    return out;
  }

  out = flows;
  // Resolve auto ids (first free id in declaration order) and empty names.
  std::unordered_set<net::FlowId> used;
  for (const FlowSpec& f : out) {
    if (f.id != 0) used.insert(f.id);
  }
  net::FlowId next = 1;
  std::size_t index = 0;
  for (FlowSpec& f : out) {
    if (f.id == 0) {
      while (used.count(next) != 0) ++next;
      f.id = next;
      used.insert(next);
    }
    if (f.name.empty()) {
      std::ostringstream os;
      os << to_string(f.kind) << index;
      f.name = os.str();
    }
    ++index;
  }
  return out;
}

void Scenario::validate() const {
  if (capacity.bits_per_sec() <= 0) {
    std::ostringstream os;
    os << "capacity must be > 0 (got " << capacity.bits_per_sec() << " b/s)";
    invalid(os.str());
  }
  if (!(queue_bdp_mult > 0.0) || !std::isfinite(queue_bdp_mult)) {
    std::ostringstream os;
    os << "queue_bdp_mult must be > 0 (got " << queue_bdp_mult << ")";
    invalid(os.str());
  }
  if (duration <= kTimeZero) {
    std::ostringstream os;
    os << "duration must be > 0 (got " << to_seconds(duration) << " s)";
    invalid(os.str());
  }
  if (base_rtt <= kTimeZero) {
    std::ostringstream os;
    os << "base_rtt must be > 0 (got " << to_seconds(base_rtt) << " s)";
    invalid(os.str());
  }
  if (watchdog_wall_budget_s < 0) {
    std::ostringstream os;
    os << "watchdog_wall_budget_s must be >= 0 (got " << watchdog_wall_budget_s
       << ")";
    invalid(os.str());
  }
  // The scalar TCP schedule only matters for the synthesized default mix.
  if (flows.empty() && tcp_algo) {
    if (tcp_start < kTimeZero) {
      std::ostringstream os;
      os << "tcp_start must be >= 0 (got " << to_seconds(tcp_start) << " s)";
      invalid(os.str());
    }
    if (tcp_start >= tcp_stop) {
      std::ostringstream os;
      os << "tcp_start (" << to_seconds(tcp_start)
         << " s) must be before tcp_stop (" << to_seconds(tcp_stop) << " s)";
      invalid(os.str());
    }
    if (tcp_stop > duration) {
      std::ostringstream os;
      os << "tcp_stop (" << to_seconds(tcp_stop)
         << " s) must not exceed duration (" << to_seconds(duration) << " s)";
      invalid(os.str());
    }
  }
  if (!flows.empty()) {
    std::unordered_set<net::FlowId> ids;
    for (std::size_t i = 0; i < flows.size(); ++i) {
      const FlowSpec& f = flows[i];
      const auto field = [&](const char* leaf) {
        std::ostringstream os;
        os << "flows[" << i << "]." << leaf;
        return os.str();
      };
      if (f.id != 0 && !ids.insert(f.id).second) {
        std::ostringstream os;
        os << field("id") << " duplicates flow id " << f.id;
        invalid(os.str());
      }
      if (f.start < kTimeZero) {
        std::ostringstream os;
        os << field("start") << " must be >= 0 (got " << to_seconds(f.start)
           << " s)";
        invalid(os.str());
      }
      if (f.stop) {
        if (*f.stop <= f.start) {
          std::ostringstream os;
          os << field("stop") << " (" << to_seconds(*f.stop)
             << " s) must be after start (" << to_seconds(f.start) << " s)";
          invalid(os.str());
        }
        if (*f.stop > duration) {
          std::ostringstream os;
          os << field("stop") << " (" << to_seconds(*f.stop)
             << " s) must not exceed duration (" << to_seconds(duration)
             << " s)";
          invalid(os.str());
        }
      }
      if (f.extra_owd < kTimeZero) {
        std::ostringstream os;
        os << field("extra_owd") << " must be >= 0 (got "
           << to_seconds(f.extra_owd) << " s)";
        invalid(os.str());
      }
      if (f.impair_up) {
        f.impair_up->validate(field("impair_up"));
      }
    }
  }
  impair_down.validate("impair_down");
  impair_up.validate("impair_up");
}

std::string_view to_string(QueueKind k) {
  switch (k) {
    case QueueKind::kDropTail: return "droptail";
    case QueueKind::kCoDel: return "codel";
    case QueueKind::kFqCoDel: return "fq_codel";
  }
  return "?";
}

ByteSize Scenario::queue_bytes() const {
  const ByteSize one_bdp = bdp(capacity, base_rtt);
  const auto bytes =
      std::int64_t(double(one_bdp.bytes()) * queue_bdp_mult);
  // Never below two full-size packets, or nothing can ever be forwarded.
  return ByteSize(std::max<std::int64_t>(bytes, 2 * 1514));
}

std::string Scenario::label() const {
  std::ostringstream os;
  os << stream::to_string(system) << " " << capacity.megabits_per_sec()
     << "Mb/s " << queue_bdp_mult << "xBDP ";
  if (!flows.empty()) {
    // Custom mix: count flows per kind, e.g. "mix[2 game + 2 tcp + 1 ping]".
    std::size_t games = 0, tcps = 0, pings = 0;
    for (const FlowSpec& f : flows) {
      if (f.kind == FlowKind::kGameStream) ++games;
      if (f.kind == FlowKind::kBulkTcp) ++tcps;
      if (f.kind == FlowKind::kPing) ++pings;
    }
    os << "mix[";
    const char* sep = "";
    for (auto [n, kind] : {std::pair{games, FlowKind::kGameStream},
                           {tcps, FlowKind::kBulkTcp},
                           {pings, FlowKind::kPing}}) {
      if (n == 0) continue;
      os << sep << n << " " << to_string(kind);
      sep = " + ";
    }
    os << "]";
  } else if (tcp_algo) {
    os << "vs " << tcp::to_string(*tcp_algo);
  } else {
    os << "solo";
  }
  if (queue_kind != QueueKind::kDropTail) {
    os << " [" << to_string(queue_kind) << "]";
  }
  return os.str();
}

}  // namespace cgs::core
