// Latency probe pair — the testbed's `ping` to the game server (§3.4).
#pragma once

#include <vector>

#include "net/packet.hpp"
#include "sim/timer.hpp"

namespace cgs::core {

/// Echoes ping requests back down the (congested) downstream path.
class PingResponder final : public net::PacketSink {
 public:
  PingResponder(sim::Simulator& sim, net::PacketFactory& factory,
                net::FlowId flow)
      : sim_(sim), factory_(factory), flow_(flow) {}

  /// Downstream path entry for replies; must outlive the responder.
  void set_output(net::PacketSink* out) { out_ = out; }

  void handle_packet(net::PacketPtr pkt) override;

 private:
  sim::Simulator& sim_;
  net::PacketFactory& factory_;
  net::FlowId flow_;
  net::PacketSink* out_ = nullptr;
};

/// Sends periodic ping requests upstream and records reply RTTs.
class PingClient final : public net::PacketSink {
 public:
  struct Sample {
    Time at;
    Time rtt;
  };

  PingClient(sim::Simulator& sim, net::PacketFactory& factory,
             net::FlowId flow, Time interval = std::chrono::milliseconds(500));

  /// Upstream path entry for requests; must outlive the client.
  void set_output(net::PacketSink* out) { out_ = out; }

  void start() { timer_.start(true); }
  void stop() { timer_.stop(); }

  void handle_packet(net::PacketPtr pkt) override;

  [[nodiscard]] const std::vector<Sample>& samples() const { return samples_; }

 private:
  void send_ping();

  sim::Simulator& sim_;
  net::PacketFactory& factory_;
  net::FlowId flow_;
  net::PacketSink* out_ = nullptr;
  sim::PeriodicTimer timer_;
  std::uint32_t next_id_ = 1;
  std::vector<Sample> samples_;
};

}  // namespace cgs::core
