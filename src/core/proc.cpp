#include "core/proc.hpp"

#include <poll.h>
#include <signal.h>
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <sstream>
#include <stdexcept>

#include "util/crc32.hpp"
#include "util/rng.hpp"

namespace cgs::core::proc {
namespace {

// One result frame crosses the pipe, child -> supervisor:
//   u32 magic | u8 status (0 ok, 1 classified failure) | u8 class
//   | u32 payload_len | payload | u32 crc(everything before crc)
// A frame that is torn (child killed mid-write) or absent fails the CRC /
// length check and the supervisor falls back to exit-status classification.
constexpr std::uint32_t kFrameMagic = 0x50534743u;  // "CGSP"
constexpr std::size_t kFrameFixed = 4 + 1 + 1 + 4;

// Child exit codes for supervisor-protocol failures (never from the job).
constexpr int kExitWriteFailed = 121;

[[noreturn]] void supervisor_error(const char* op) {
  throw std::runtime_error(std::string("proc: ") + op + ": " +
                           std::strerror(errno));
}

void put_u32(std::vector<unsigned char>& out, std::uint32_t v) {
  const std::size_t off = out.size();
  out.resize(off + sizeof v);
  std::memcpy(out.data() + off, &v, sizeof v);
}

std::uint32_t get_u32(const unsigned char* p) {
  std::uint32_t v;
  std::memcpy(&v, p, sizeof v);
  return v;
}

/// Build the wire frame for one child verdict.
std::vector<unsigned char> frame_bytes(bool ok, ErrorClass cls,
                                       const unsigned char* payload,
                                       std::size_t payload_len) {
  std::vector<unsigned char> out;
  out.reserve(kFrameFixed + payload_len + 4);
  put_u32(out, kFrameMagic);
  out.push_back(ok ? 0 : 1);
  out.push_back(std::uint8_t(cls));
  put_u32(out, std::uint32_t(payload_len));
  if (payload_len > 0) {
    const std::size_t off = out.size();
    out.resize(off + payload_len);
    std::memcpy(out.data() + off, payload, payload_len);
  }
  put_u32(out, util::crc32(out.data(), out.size()));
  return out;
}

/// Parse the child's buffered pipe output.  False when no complete, intact
/// frame is present (absent, torn, or corrupt) — the caller then classifies
/// from the exit status instead.
bool parse_frame(const std::vector<unsigned char>& buf, ChildResult& out) {
  if (buf.size() < kFrameFixed + 4) return false;
  if (get_u32(buf.data()) != kFrameMagic) return false;
  const std::uint32_t payload_len = get_u32(buf.data() + 6);
  const std::size_t total = kFrameFixed + payload_len + 4;
  if (buf.size() != total) return false;
  if (get_u32(buf.data() + total - 4) != util::crc32(buf.data(), total - 4)) {
    return false;
  }
  const bool ok = buf[4] == 0;
  out.ok = ok;
  out.cls = ok ? ErrorClass::kUnclassified : error_class_from_byte(buf[5]);
  if (ok) {
    out.payload.assign(buf.begin() + std::ptrdiff_t(kFrameFixed),
                       buf.begin() + std::ptrdiff_t(kFrameFixed + payload_len));
  } else {
    out.message.assign(reinterpret_cast<const char*>(buf.data()) + kFrameFixed,
                       payload_len);
  }
  return true;
}

/// Apply the per-job caps inside the child.  Failures are ignored — a cap
/// that cannot be applied degrades to "uncapped", never to a dead child.
void apply_limits(const ResourceLimits& limits) {
  // Crash-heavy workloads must not litter (or stall on) core dumps.
  rlimit core{0, 0};
  (void)::setrlimit(RLIMIT_CORE, &core);
  if (limits.address_space_bytes > 0) {
    rlimit as{rlim_t(limits.address_space_bytes),
              rlim_t(limits.address_space_bytes)};
    (void)::setrlimit(RLIMIT_AS, &as);
  }
  if (limits.cpu_seconds > 0) {
    // Soft cap delivers SIGXCPU (classified kResource); the hard cap two
    // seconds later SIGKILLs a child that somehow survives it.
    rlimit cpu{rlim_t(limits.cpu_seconds), rlim_t(limits.cpu_seconds) + 2};
    (void)::setrlimit(RLIMIT_CPU, &cpu);
  }
}

[[noreturn]] void child_main(int write_fd, const ChildJob& job,
                             const ResourceLimits& limits) {
  apply_limits(limits);
  std::vector<unsigned char> frame;
  try {
    const std::vector<unsigned char> payload = job();
    frame = frame_bytes(true, ErrorClass::kUnclassified, payload.data(),
                        payload.size());
  } catch (const std::exception& e) {
    const char* what = e.what();
    frame = frame_bytes(false, classify(e),
                        reinterpret_cast<const unsigned char*>(what),
                        std::strlen(what));
  } catch (...) {
    static constexpr char kMsg[] = "unknown exception";
    frame = frame_bytes(false, ErrorClass::kUnclassified,
                        reinterpret_cast<const unsigned char*>(kMsg),
                        sizeof kMsg - 1);
  }
  if (!write_exact(write_fd, frame.data(), frame.size())) {
    ::_exit(kExitWriteFailed);
  }
  ::_exit(0);
}

const char* signal_name(int sig) {
  switch (sig) {
    case SIGSEGV: return "SIGSEGV";
    case SIGABRT: return "SIGABRT";
    case SIGBUS: return "SIGBUS";
    case SIGILL: return "SIGILL";
    case SIGFPE: return "SIGFPE";
    case SIGTRAP: return "SIGTRAP";
    case SIGSYS: return "SIGSYS";
    case SIGKILL: return "SIGKILL";
    case SIGXCPU: return "SIGXCPU";
    case SIGTERM: return "SIGTERM";
    case SIGINT: return "SIGINT";
    default: return "signal";
  }
}

/// Classify a child that died without delivering an intact result frame.
void classify_exit(int status, bool timed_out, const ResourceLimits& limits,
                   ChildResult& out) {
  out.ok = false;
  std::ostringstream os;
  if (timed_out) {
    // The supervisor's own SIGKILL: the deadline verdict wins regardless
    // of how the wait status reads.
    out.cls = ErrorClass::kTimeout;
    os << "job exceeded its " << limits.wall_seconds
       << " s wall-clock deadline and was killed";
    out.message = os.str();
    return;
  }
  if (WIFSIGNALED(status)) {
    const int sig = WTERMSIG(status);
    out.term_signal = sig;
    out.exit_status = -1;
    if (sig == SIGXCPU) {
      out.cls = ErrorClass::kResource;
      os << "child hit its " << limits.cpu_seconds
         << " s CPU rlimit (SIGXCPU)";
    } else if (sig == SIGKILL) {
      // Not our deadline kill, so the kernel's: the OOM killer (or an
      // operator) SIGKILLed the child.
      out.cls = ErrorClass::kResource;
      os << "child was SIGKILLed outside the supervisor "
         << "(kernel OOM killer or operator)";
    } else {
      out.cls = ErrorClass::kCrash;
      os << "child died on fatal signal " << sig << " (" << signal_name(sig)
         << ")";
    }
    out.message = os.str();
    return;
  }
  const int code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  out.exit_status = code;
  out.cls = ErrorClass::kCrash;
  os << "child exited with status " << code
     << " without reporting a result";
  out.message = os.str();
}

}  // namespace

bool write_exact(int fd, const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  while (n > 0) {
    const ssize_t w = ::write(fd, p, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += w;
    n -= std::size_t(w);
  }
  return true;
}

long read_some(int fd, void* data, std::size_t n) {
  for (;;) {
    const ssize_t r = ::read(fd, data, n);
    if (r >= 0) return long(r);
    if (errno != EINTR) return -1;
  }
}

bool read_exact(int fd, void* data, std::size_t n) {
  auto* p = static_cast<unsigned char*>(data);
  while (n > 0) {
    const long r = read_some(fd, p, n);
    if (r <= 0) return false;  // EOF short of n, or a real error
    p += r;
    n -= std::size_t(r);
  }
  return true;
}

ChildResult run_forked(const ChildJob& job, const ResourceLimits& limits) {
  int fds[2];
  if (::pipe(fds) != 0) supervisor_error("pipe");

  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(fds[0]);
    ::close(fds[1]);
    supervisor_error("fork");
  }
  if (pid == 0) {
    ::close(fds[0]);
    child_main(fds[1], job, limits);  // never returns
  }
  ::close(fds[1]);

  using Clock = std::chrono::steady_clock;
  const bool has_deadline = limits.wall_seconds > 0;
  const auto deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(limits.wall_seconds));

  ChildResult result;
  std::vector<unsigned char> buf;
  unsigned char chunk[4096];
  for (;;) {
    int timeout_ms = -1;
    if (has_deadline && !result.timed_out) {
      const auto remaining = std::chrono::duration_cast<
          std::chrono::milliseconds>(deadline - Clock::now());
      timeout_ms = int(std::max<std::int64_t>(remaining.count(), 0));
    }
    pollfd pfd{fds[0], POLLIN, 0};
    const int pr = ::poll(&pfd, 1, timeout_ms);
    if (pr < 0) {
      if (errno == EINTR) continue;
      ::kill(pid, SIGKILL);
      ::close(fds[0]);
      while (::waitpid(pid, nullptr, 0) < 0 && errno == EINTR) {}
      supervisor_error("poll");
    }
    if (pr == 0) {
      // Deadline expired with the child still holding the pipe open:
      // SIGKILL it and drain whatever it managed to write (EOF follows).
      result.timed_out = true;
      ::kill(pid, SIGKILL);
      continue;
    }
    // read_some retries EINTR internally; short reads accumulate in buf,
    // so a signal storm during a multi-MB frame costs retries, not bytes.
    const long r = read_some(fds[0], chunk, sizeof chunk);
    if (r < 0) break;   // real error: classify from the exit status
    if (r == 0) break;  // EOF: the child exited (or died)
    buf.insert(buf.end(), chunk, chunk + r);
  }
  ::close(fds[0]);

  int status = 0;
  while (::waitpid(pid, &status, 0) < 0) {
    if (errno != EINTR) supervisor_error("waitpid");
  }

  // An intact frame is authoritative: the job finished and reported before
  // anything killed the process.
  if (parse_frame(buf, result)) return result;
  classify_exit(status, result.timed_out, limits, result);
  return result;
}

std::uint32_t backoff_ms(std::uint32_t base_ms, std::uint32_t max_ms,
                         int attempt, std::uint64_t jitter_key) {
  if (base_ms == 0 || attempt <= 0) return 0;
  const int shift = std::min(attempt - 1, 20);
  const std::uint64_t raw = std::uint64_t(base_ms) << shift;
  const std::uint64_t capped = std::min<std::uint64_t>(raw, max_ms);
  // Deterministic jitter into [50%, 100%]: same key, same schedule.
  const std::uint64_t h =
      splitmix64(jitter_key ^ (0x9e3779b97f4a7c15ULL * std::uint64_t(attempt)));
  return std::uint32_t(capped / 2 + (h % (capped / 2 + 1)));
}

}  // namespace cgs::core::proc
