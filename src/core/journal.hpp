// Crash-safe run journal for sweeps.
//
// An append-only binary file with one CRC-checked record per finished
// (cell, seed) job: successful jobs carry the full serialized RunTrace
// (bit-exact, so a resumed sweep folds the identical bytes into its
// streaming accumulators) plus the golden-trace FNV-1a hash; failed jobs
// carry the error class and message so triage survives a crash.  Records
// are fsync'd as they are written — after a SIGKILL, OOM kill or power
// loss, everything up to the last completed record is recoverable, and a
// torn trailing record (a crash mid-write) is detected by its CRC/length
// and truncated away on the next open.
//
// Layout (native-endian; journals are machine-local scratch, not an
// interchange format):
//
//   header:  "CGSJNL01" | u32 version | u64 fingerprint | u32 runs
//            | u32 cells | u32 note_len | note bytes | u32 crc(header)
//   record:  u32 magic | u32 cell | u32 run | u64 seed | u8 ok | u8 class
//            | u64 trace_hash | u32 payload_len | payload
//            | u32 crc(record)
//
// The fingerprint digests the grid (cell labels, scenarios, runs); resume
// refuses a journal whose fingerprint does not match the grid being run.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/collectors.hpp"
#include "core/error.hpp"
#include "core/sweep.hpp"

namespace cgs::core {

/// Unrecoverable journal problem: I/O failure or corruption that is not a
/// torn tail (torn tails are repaired silently).
class JournalError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// The journal's fingerprint does not match the grid being resumed —
/// resuming would silently mix results from two different experiments.
class JournalMismatchError : public JournalError {
 public:
  using JournalError::JournalError;
};

struct JournalMeta {
  std::uint64_t fingerprint = 0;
  std::uint32_t runs = 0;
  std::uint32_t cells = 0;
  /// Free-form provenance line, e.g. "grid=fig3 seed=42 runs=5" — lets
  /// tools/replay rebuild the grid without guessing.
  std::string note;
};

/// One journaled (cell, seed) job.
struct JournalEntry {
  std::uint32_t cell = 0;
  std::uint32_t run = 0;  // seed index within the cell (seed = base + run)
  std::uint64_t seed = 0;
  bool ok = false;
  ErrorClass cls = ErrorClass::kUnclassified;  // meaningful when !ok
  std::uint64_t trace_hash = 0;                // golden FNV-1a (ok records)
  /// Serialized RunTrace (ok) or UTF-8 error message (failed).
  std::vector<unsigned char> payload;
};

/// Result of scanning a journal from disk.
struct JournalScan {
  JournalMeta meta;
  std::vector<JournalEntry> entries;
  /// File offset just past the last intact record; a resume opens the
  /// journal for append at this offset, truncating any torn tail.
  std::uint64_t valid_bytes = 0;
  /// True when a torn trailing record was detected (and excluded).
  bool torn_tail = false;
};

/// Scan `path`.  Returns nullopt when the file is missing or too short to
/// hold a complete header (a crash during creation): callers recreate it.
/// Throws JournalError for a corrupt header or a mid-file corrupt record;
/// a bad record that extends to end-of-file is a torn tail, not an error.
[[nodiscard]] std::optional<JournalScan> read_journal(const std::string& path);

/// One journal found by scan_journal_dir: its location, header metadata
/// and how far it got.  `entries` counts intact records only (a torn tail
/// is excluded, exactly as a resume would exclude it).
struct JournalFileInfo {
  std::string path;
  JournalMeta meta;
  std::size_t entries = 0;
  bool torn_tail = false;
  /// Every (cell, run) slot of the grid has a record: a resume against
  /// this journal re-runs nothing.
  [[nodiscard]] bool complete() const {
    return entries >= std::size_t(meta.runs) * meta.cells && entries > 0;
  }
};

/// Enumerate the intact journals directly under `dir` (files matching
/// "*.jnl"), sorted by path.  Built for a service restart scanning its
/// state directory: files that are missing headers, corrupt, foreign, or
/// unreadable are skipped — never thrown — because a directory that
/// accumulated junk must still be recoverable.  Throws JournalError only
/// when `dir` itself cannot be opened.
[[nodiscard]] std::vector<JournalFileInfo> scan_journal_dir(
    const std::string& dir);

/// Appends CRC'd records, optionally fsync'ing each one.
class JournalWriter {
 public:
  /// Create (or truncate) `path` and write a fresh header.
  [[nodiscard]] static JournalWriter create(const std::string& path,
                                            const JournalMeta& meta,
                                            bool sync = true);

  /// Open an existing journal for append, truncating to `valid_bytes`
  /// first (drops a torn tail detected by read_journal).
  [[nodiscard]] static JournalWriter append_to(const std::string& path,
                                               std::uint64_t valid_bytes,
                                               bool sync = true);

  JournalWriter(JournalWriter&& o) noexcept;
  JournalWriter& operator=(JournalWriter&& o) noexcept;
  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;
  ~JournalWriter();

  /// Append one record (write + optional fsync).  Throws JournalError
  /// naming the path and errno on I/O failure — ENOSPC and EIO surface at
  /// the record that hit them, not as silently missing data.
  void append(const JournalEntry& e);

  /// Flush (when not already fsync'ing per record) and close the file,
  /// throwing JournalError if the kernel reports a deferred write error —
  /// the destructor closes silently, so callers that care about ENOSPC on
  /// the final records must close() explicitly.  Idempotent.
  void close();

 private:
  JournalWriter(int fd, bool sync, std::string path)
      : fd_(fd), sync_(sync), path_(std::move(path)) {}

  int fd_ = -1;
  bool sync_ = true;
  std::string path_;
};

/// Exact binary round-trip of a RunTrace (doubles via memcpy — bit-exact).
[[nodiscard]] std::vector<unsigned char> serialize_trace(const RunTrace& t);
/// Throws JournalError if the payload is malformed.
[[nodiscard]] RunTrace deserialize_trace(const unsigned char* data,
                                         std::size_t size);

/// The golden-trace FNV-1a digest (same fields and order as
/// tools/golden_dump and tests/integration/golden_trace_test).
[[nodiscard]] std::uint64_t trace_hash(const RunTrace& t);

/// FNV-1a over one incremental value (exposed for fingerprint builders).
[[nodiscard]] std::uint64_t fnv1a_bytes(std::uint64_t h, const void* data,
                                        std::size_t n);

/// Digest of a grid: cell labels, scenario shape, seeds and run count.
/// Two sweeps with equal fingerprints execute exactly the same job list.
[[nodiscard]] std::uint64_t sweep_fingerprint(
    const std::vector<SweepCell>& cells, int runs);

}  // namespace cgs::core
