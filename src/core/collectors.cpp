#include "core/collectors.hpp"

#include <algorithm>
#include <cmath>

#include "util/stats.hpp"

namespace cgs::core {

namespace {
std::size_t bucket_index(Time t, Time interval) {
  return std::size_t(t.count() / interval.count());
}
}  // namespace

std::size_t RunTrace::bucket_of(Time t) const {
  return bucket_index(t, sample_interval);
}

double RunTrace::mean_bitrate_mbps(const std::vector<double>& series,
                                   Time from, Time to) const {
  RunningStats s;
  const std::size_t lo = bucket_of(from);
  const std::size_t hi = std::min(bucket_of(to), series.size());
  for (std::size_t i = lo; i < hi; ++i) s.add(series[i]);
  return s.mean();
}

double RunTrace::sd_bitrate_mbps(const std::vector<double>& series, Time from,
                                 Time to) const {
  RunningStats s;
  const std::size_t lo = bucket_of(from);
  const std::size_t hi = std::min(bucket_of(to), series.size());
  for (std::size_t i = lo; i < hi; ++i) s.add(series[i]);
  return s.stddev();
}

double RunTrace::mean_rtt_ms(Time from, Time to) const {
  RunningStats s;
  for (const auto& r : rtt) {
    if (r.at >= from && r.at < to) s.add(to_seconds(r.rtt) * 1e3);
  }
  return s.mean();
}

double RunTrace::sd_rtt_ms(Time from, Time to) const {
  RunningStats s;
  for (const auto& r : rtt) {
    if (r.at >= from && r.at < to) s.add(to_seconds(r.rtt) * 1e3);
  }
  return s.stddev();
}

double RunTrace::game_loss_in(Time from, Time to) const {
  if (game_pkts_recv.empty()) return 0.0;
  const std::size_t lo =
      std::min(bucket_of(from), game_pkts_recv.size() - 1);
  const std::size_t hi = std::min(bucket_of(to), game_pkts_recv.size() - 1);
  if (hi <= lo) return 0.0;
  const double recv = double(game_pkts_recv[hi] - game_pkts_recv[lo]);
  const double lost = double(game_pkts_lost[hi] - game_pkts_lost[lo]);
  const double expected = recv + lost;
  return expected > 0.0 ? lost / expected : 0.0;
}

double RunTrace::fps_over(Time from, Time to) const {
  if (to <= from) return 0.0;
  const auto lo = std::lower_bound(frame_times.begin(), frame_times.end(), from);
  const auto hi = std::lower_bound(frame_times.begin(), frame_times.end(), to);
  return double(std::distance(lo, hi)) / to_seconds(to - from);
}

TraceCollectors::TraceCollectors(sim::Simulator& sim, Time duration,
                                 Time sample_interval, net::FlowId game_flow,
                                 net::FlowId tcp_flow)
    : sim_(sim),
      duration_(duration),
      interval_(sample_interval),
      game_flow_(game_flow),
      tcp_flow_(tcp_flow),
      n_buckets_(bucket_index(duration, sample_interval) + 1),
      game_bytes_(n_buckets_, 0),
      tcp_bytes_(n_buckets_, 0),
      drops_(n_buckets_ + 1, 0),
      recv_samples_(n_buckets_ + 1, 0),
      lost_samples_(n_buckets_ + 1, 0),
      sampler_(sim, sample_interval, [this] { sample_counters(); }) {}

std::size_t TraceCollectors::bucket_of(Time t) const {
  return std::min(bucket_index(t, interval_), n_buckets_ - 1);
}

void TraceCollectors::attach_bottleneck(net::Link& link) {
  link.sniffer().on_deliver([this](const net::Packet& p, Time t) {
    const std::size_t b = bucket_of(t);
    if (p.flow == game_flow_) {
      game_bytes_[b] += p.size_bytes;
    } else if (p.flow == tcp_flow_) {
      tcp_bytes_[b] += p.size_bytes;
    }
  });
  link.sniffer().on_drop(
      [this](const net::Packet&, net::DropReason, Time) { ++drop_counter_; });
}

void TraceCollectors::attach_game_receiver(const stream::StreamReceiver& recv) {
  game_recv_ = &recv;
}

void TraceCollectors::start() { sampler_.start(); }

void TraceCollectors::sample_counters() {
  // The sampler fires at k * interval; entry k holds the cumulative counts
  // at that boundary (entry 0 stays zero: counts at t=0).
  const auto k = std::min(
      std::size_t((sim_.now().count() + interval_.count() / 2) /
                  interval_.count()),
      n_buckets_);
  drops_[k] = drop_counter_;
  if (game_recv_ != nullptr) {
    recv_samples_[k] = game_recv_->packets_received();
    lost_samples_[k] = game_recv_->packets_lost();
  }
}

RunTrace TraceCollectors::finalize(const PingClient* ping,
                                   const stream::StreamReceiver* recv) const {
  RunTrace t;
  t.sample_interval = interval_;
  t.duration = duration_;
  t.game_mbps.resize(n_buckets_);
  t.tcp_mbps.resize(n_buckets_);
  const double ival_s = to_seconds(interval_);
  for (std::size_t i = 0; i < n_buckets_; ++i) {
    t.game_mbps[i] = double(game_bytes_[i]) * 8.0 / ival_s / 1e6;
    t.tcp_mbps[i] = double(tcp_bytes_[i]) * 8.0 / ival_s / 1e6;
  }
  // Boundary-indexed cumulative counters: entry k = count at k * interval.
  t.queue_drops = drops_;
  t.game_pkts_recv = recv_samples_;
  t.game_pkts_lost = lost_samples_;
  if (ping != nullptr) t.rtt = ping->samples();
  if (recv != nullptr) t.frame_times = recv->display().presentation_times();
  return t;
}

}  // namespace cgs::core
