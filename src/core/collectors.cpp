#include "core/collectors.hpp"

#include <algorithm>
#include <cmath>

#include "util/stats.hpp"

namespace cgs::core {

namespace {
std::size_t bucket_index(Time t, Time interval) {
  return std::size_t(t.count() / interval.count());
}
}  // namespace

std::size_t RunTrace::bucket_of(Time t) const {
  return bucket_index(t, sample_interval);
}

const FlowTrace* RunTrace::flow(net::FlowId id) const {
  for (const FlowTrace& f : flows) {
    if (f.id == id) return &f;
  }
  return nullptr;
}

const LinkTrace* RunTrace::link(std::string_view name) const {
  for (const LinkTrace& l : links) {
    if (l.name == name) return &l;
  }
  return nullptr;
}

double RunTrace::mean_flow_mbps(net::FlowId id, Time from, Time to) const {
  const FlowTrace* f = flow(id);
  return f != nullptr ? mean_bitrate_mbps(f->mbps, from, to) : 0.0;
}

double RunTrace::mean_bitrate_mbps(const std::vector<double>& series,
                                   Time from, Time to) const {
  RunningStats s;
  const std::size_t lo = bucket_of(from);
  const std::size_t hi = std::min(bucket_of(to), series.size());
  for (std::size_t i = lo; i < hi; ++i) s.add(series[i]);
  return s.mean();
}

double RunTrace::sd_bitrate_mbps(const std::vector<double>& series, Time from,
                                 Time to) const {
  RunningStats s;
  const std::size_t lo = bucket_of(from);
  const std::size_t hi = std::min(bucket_of(to), series.size());
  for (std::size_t i = lo; i < hi; ++i) s.add(series[i]);
  return s.stddev();
}

double RunTrace::mean_rtt_ms(Time from, Time to) const {
  RunningStats s;
  for (const auto& r : rtt) {
    if (r.at >= from && r.at < to) s.add(to_seconds(r.rtt) * 1e3);
  }
  return s.mean();
}

double RunTrace::sd_rtt_ms(Time from, Time to) const {
  RunningStats s;
  for (const auto& r : rtt) {
    if (r.at >= from && r.at < to) s.add(to_seconds(r.rtt) * 1e3);
  }
  return s.stddev();
}

double RunTrace::game_loss_in(Time from, Time to) const {
  if (game_pkts_recv.empty()) return 0.0;
  const std::size_t lo =
      std::min(bucket_of(from), game_pkts_recv.size() - 1);
  const std::size_t hi = std::min(bucket_of(to), game_pkts_recv.size() - 1);
  if (hi <= lo) return 0.0;
  const double recv = double(game_pkts_recv[hi] - game_pkts_recv[lo]);
  const double lost = double(game_pkts_lost[hi] - game_pkts_lost[lo]);
  const double expected = recv + lost;
  return expected > 0.0 ? lost / expected : 0.0;
}

double RunTrace::fps_over(Time from, Time to) const {
  if (to <= from) return 0.0;
  const auto lo = std::lower_bound(frame_times.begin(), frame_times.end(), from);
  const auto hi = std::lower_bound(frame_times.begin(), frame_times.end(), to);
  return double(std::distance(lo, hi)) / to_seconds(to - from);
}

TraceCollectors::TraceCollectors(sim::Simulator& sim, Time duration,
                                 Time sample_interval,
                                 std::vector<FlowInfo> flows)
    : TraceCollectors(sim, duration, sample_interval, std::move(flows),
                      Policy{}) {}

TraceCollectors::TraceCollectors(sim::Simulator& sim, Time duration,
                                 Time sample_interval,
                                 std::vector<FlowInfo> flows, Policy policy)
    : sim_(sim),
      duration_(duration),
      interval_(sample_interval *
                std::int64_t(std::max<std::size_t>(policy.stride, 1))),
      n_buckets_(bucket_index(duration, interval_) + 1),
      flows_(std::move(flows)),
      tracked_(policy.max_flow_series == 0
                   ? flows_.size()
                   : std::min(policy.max_flow_series, flows_.size())),
      bytes_(tracked_, std::vector<std::int64_t>(n_buckets_, 0)),
      recv_samples_(tracked_, std::vector<std::uint64_t>(n_buckets_ + 1, 0)),
      lost_samples_(tracked_, std::vector<std::uint64_t>(n_buckets_ + 1, 0)),
      pkt_counters_(tracked_, 0),
      receivers_(tracked_, nullptr),
      drops_(n_buckets_ + 1, 0),
      residual_tcp_bytes_(n_buckets_, 0),
      sampler_(sim, interval_, [this] { sample_counters(); }) {
  for (std::size_t i = 0; i < flows_.size(); ++i) {
    flow_index_.emplace(flows_[i].id, i);
  }
}

std::size_t TraceCollectors::bucket_of(Time t) const {
  return std::min(bucket_index(t, interval_), n_buckets_ - 1);
}

void TraceCollectors::attach_link(net::Link& link,
                                  std::vector<net::FlowId> terminal_flows) {
  links_.push_back(std::make_unique<LinkTap>());
  LinkTap* tap = links_.back().get();
  tap->name = link.name();
  tap->link = &link;
  tap->util_bytes.assign(n_buckets_, 0);
  tap->depth.assign(n_buckets_ + 1, 0);
  tap->drops.assign(n_buckets_ + 1, 0);

  // Per-flow goodput is accounted only at a flow's terminal hop.  Flows
  // past the policy's series cap keep their bulk-TCP bytes in the shared
  // residual bucket instead of a per-flow series.
  constexpr std::size_t kResidual = ~std::size_t{0};
  std::unordered_map<net::FlowId, std::size_t> terminal;
  for (net::FlowId id : terminal_flows) {
    const auto it = flow_index_.find(id);
    if (it == flow_index_.end()) continue;
    if (it->second < tracked_) {
      terminal.emplace(id, it->second);
    } else if (flows_[it->second].kind == FlowKind::kBulkTcp) {
      terminal.emplace(id, kResidual);
    }
  }
  link.sniffer().on_deliver([this, tap, terminal = std::move(terminal)](
                                const net::Packet& p, Time t) {
    tap->util_bytes[bucket_of(t)] += p.size_bytes;
    const auto it = terminal.find(p.flow);
    if (it == terminal.end()) return;
    if (it->second == kResidual) {
      residual_tcp_bytes_[bucket_of(t)] += p.size_bytes;
      return;
    }
    bytes_[it->second][bucket_of(t)] += p.size_bytes;
    ++pkt_counters_[it->second];
  });
  link.sniffer().on_drop([this, tap](const net::Packet&, net::DropReason,
                                     Time) {
    ++tap->drop_counter;
    ++drop_counter_;
  });
}

void TraceCollectors::attach_game_receiver(net::FlowId id,
                                           const stream::StreamReceiver& recv) {
  const auto it = flow_index_.find(id);
  if (it != flow_index_.end() && it->second < tracked_) {
    receivers_[it->second] = &recv;
  }
}

void TraceCollectors::start() { sampler_.start(); }

void TraceCollectors::sample_counters() {
  // The sampler fires at k * interval; entry k holds the cumulative counts
  // at that boundary (entry 0 stays zero: counts at t=0).
  const auto k = std::min(
      std::size_t((sim_.now().count() + interval_.count() / 2) /
                  interval_.count()),
      n_buckets_);
  drops_[k] = drop_counter_;
  for (const auto& tap : links_) {
    tap->depth[k] = std::uint64_t(tap->link->queue().byte_length().bytes());
    tap->drops[k] = tap->drop_counter;
  }
  for (std::size_t i = 0; i < tracked_; ++i) {
    if (receivers_[i] != nullptr) {
      recv_samples_[i][k] = receivers_[i]->packets_received();
      lost_samples_[i][k] = receivers_[i]->packets_lost();
    } else {
      recv_samples_[i][k] = pkt_counters_[i];
    }
  }
}

RunTrace TraceCollectors::finalize(const PingClient* ping,
                                   const stream::StreamReceiver* recv) const {
  RunTrace t;
  t.sample_interval = interval_;
  t.duration = duration_;
  const double ival_s = to_seconds(interval_);

  t.flows.resize(tracked_);
  for (std::size_t i = 0; i < tracked_; ++i) {
    FlowTrace& f = t.flows[i];
    f.id = flows_[i].id;
    f.name = flows_[i].name;
    f.kind = flows_[i].kind;
    f.mbps.resize(n_buckets_);
    for (std::size_t b = 0; b < n_buckets_; ++b) {
      f.mbps[b] = double(bytes_[i][b]) * 8.0 / ival_s / 1e6;
    }
    // Boundary-indexed cumulative counters: entry k = count at k * interval.
    f.pkts_recv = recv_samples_[i];
    f.pkts_lost = lost_samples_[i];
  }

  // Legacy two-flow views: primary game flow + sum of bulk-TCP flows.
  t.game_mbps.assign(n_buckets_, 0.0);
  t.tcp_mbps.assign(n_buckets_, 0.0);
  t.game_pkts_recv.assign(n_buckets_ + 1, 0);
  t.game_pkts_lost.assign(n_buckets_ + 1, 0);
  bool game_seen = false;
  for (const FlowTrace& f : t.flows) {
    if (f.kind == FlowKind::kGameStream && !game_seen) {
      game_seen = true;
      t.game_mbps = f.mbps;
      t.game_pkts_recv = f.pkts_recv;
      t.game_pkts_lost = f.pkts_lost;
    } else if (f.kind == FlowKind::kBulkTcp) {
      for (std::size_t b = 0; b < n_buckets_; ++b) t.tcp_mbps[b] += f.mbps[b];
    }
  }
  // Untracked bulk-TCP flows still contribute to the aggregate view.
  for (std::size_t b = 0; b < n_buckets_; ++b) {
    t.tcp_mbps[b] += double(residual_tcp_bytes_[b]) * 8.0 / ival_s / 1e6;
  }

  t.queue_drops = drops_;

  t.links.resize(links_.size());
  for (std::size_t i = 0; i < links_.size(); ++i) {
    LinkTrace& l = t.links[i];
    l.name = links_[i]->name;
    l.util_mbps.resize(n_buckets_);
    for (std::size_t b = 0; b < n_buckets_; ++b) {
      l.util_mbps[b] = double(links_[i]->util_bytes[b]) * 8.0 / ival_s / 1e6;
    }
    l.depth_bytes = links_[i]->depth;
    l.drops = links_[i]->drops;
  }

  if (ping != nullptr) t.rtt = ping->samples();
  if (recv != nullptr) t.frame_times = recv->display().presentation_times();
  return t;
}

}  // namespace cgs::core
