#include "core/report.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

#include "util/csv.hpp"

namespace cgs::core {

std::string fmt_mean_sd(double mean, double sd, int prec) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(prec) << mean << " (" << sd << ")";
  return os.str();
}

void TextTable::set_header(std::vector<std::string> cols) {
  header_ = std::move(cols);
}

void TextTable::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(header_.size(), 0);
  auto grow = [&](const std::vector<std::string>& row) {
    if (row.size() > widths.size()) widths.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  grow(header_);
  for (const auto& r : rows_) grow(r);

  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string();
      os << std::left << std::setw(int(widths[i]) + 2) << cell;
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (auto w : widths) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& r : rows_) emit(r);
  return os.str();
}

namespace {
/// Map value in [-1, 1] to an ANSI 256-colour background: blue (cool,
/// negative: TCP wins) through white to red (warm, positive: game wins).
std::string cell_color(double v) {
  const double c = std::clamp(v, -1.0, 1.0);
  int code;
  if (c < -0.30) code = 27;        // strong blue
  else if (c < -0.15) code = 75;   // blue
  else if (c < -0.05) code = 153;  // light blue
  else if (c <= 0.05) code = 255;  // near-white
  else if (c <= 0.15) code = 223;  // light orange
  else if (c <= 0.30) code = 209;  // orange
  else code = 196;                 // red
  return "\033[48;5;" + std::to_string(code) + ";30m";
}
}  // namespace

std::string render_heatmap_block(
    const std::string& title, const std::vector<double>& capacities_mbps,
    const std::vector<double>& queue_mults,
    const std::vector<std::vector<double>>& values, bool color) {
  std::ostringstream os;
  os << title << '\n';
  os << std::setw(10) << "";
  for (double q : queue_mults) {
    std::ostringstream h;
    h << q << "x BDP";
    os << std::setw(10) << h.str();
  }
  os << '\n';
  for (std::size_t r = 0; r < capacities_mbps.size(); ++r) {
    std::ostringstream lbl;
    lbl << capacities_mbps[r] << " Mb/s";
    os << std::setw(10) << lbl.str();
    for (std::size_t c = 0; c < queue_mults.size(); ++c) {
      std::ostringstream cell;
      cell << std::showpos << std::fixed << std::setprecision(2)
           << values[r][c];
      if (color) {
        os << cell_color(values[r][c]) << std::setw(10) << cell.str()
           << "\033[0m";
      } else {
        os << std::setw(10) << cell.str();
      }
    }
    os << '\n';
  }
  return os.str();
}

void write_series_csv(const std::string& path, Time sample_interval,
                      const SeriesStats& game, const SeriesStats* tcp) {
  CsvWriter csv(path);
  if (tcp != nullptr) {
    csv.header({"t_s", "game_mean_mbps", "game_ci_lo", "game_ci_hi",
                "tcp_mean_mbps", "tcp_ci_lo", "tcp_ci_hi"});
  } else {
    csv.header({"t_s", "game_mean_mbps", "game_ci_lo", "game_ci_hi"});
  }
  const double dt = to_seconds(sample_interval);
  for (std::size_t i = 0; i < game.mean.size(); ++i) {
    const double t = double(i) * dt;
    if (tcp != nullptr && i < tcp->mean.size()) {
      csv.row({t, game.mean[i], game.mean[i] - game.ci95[i],
               game.mean[i] + game.ci95[i], tcp->mean[i],
               tcp->mean[i] - tcp->ci95[i], tcp->mean[i] + tcp->ci95[i]});
    } else {
      csv.row({t, game.mean[i], game.mean[i] - game.ci95[i],
               game.mean[i] + game.ci95[i]});
    }
  }
}

std::string render_flow_summary(const ConditionResult& res) {
  TextTable table;
  table.set_header({"flow", "id", "kind", "fair-win Mb/s", "share"});
  const double cap = res.scenario.capacity.megabits_per_sec();
  for (const FlowSummaryRow& row : res.flow_rows) {
    std::ostringstream share;
    share << std::fixed << std::setprecision(2)
          << (cap > 0.0 ? row.fair_mbps_mean / cap : 0.0);
    table.add_row({row.name, std::to_string(row.id),
                   std::string(to_string(row.kind)),
                   fmt_mean_sd(row.fair_mbps_mean, row.fair_mbps_sd),
                   share.str()});
  }
  std::ostringstream os;
  os << table.render();
  os << "Jain index (game+tcp flows): "
     << fmt_mean_sd(res.jain_mean, res.jain_sd, 3) << '\n';
  return os.str();
}

void write_flow_series_csv(const std::string& path, Time sample_interval,
                           const std::vector<FlowSummaryRow>& rows) {
  CsvWriter csv(path);
  std::vector<std::string> header{"t_s"};
  std::size_t len = 0;
  for (const FlowSummaryRow& r : rows) {
    header.push_back(r.name + "_mbps");
    header.push_back(r.name + "_ci_lo");
    header.push_back(r.name + "_ci_hi");
    len = std::max(len, r.series.mean.size());
  }
  csv.header(header);
  const double dt = to_seconds(sample_interval);
  for (std::size_t i = 0; i < len; ++i) {
    std::vector<double> cells{double(i) * dt};
    for (const FlowSummaryRow& r : rows) {
      if (i < r.series.mean.size()) {
        cells.push_back(r.series.mean[i]);
        cells.push_back(r.series.mean[i] - r.series.ci95[i]);
        cells.push_back(r.series.mean[i] + r.series.ci95[i]);
      } else {
        cells.push_back(0.0);
        cells.push_back(0.0);
        cells.push_back(0.0);
      }
    }
    csv.row(cells);
  }
}

std::string render_link_summary(const ConditionResult& res) {
  TextTable table;
  table.set_header({"link", "fair-win Mb/s", "drops", "peak depth B"});
  for (const LinkSummaryRow& row : res.link_rows) {
    std::ostringstream depth;
    depth << std::fixed << std::setprecision(0) << row.peak_depth_mean;
    table.add_row({row.name,
                   fmt_mean_sd(row.util_fair_mean, row.util_fair_sd),
                   fmt_mean_sd(row.drops_mean, row.drops_sd, 0),
                   depth.str()});
  }
  return table.render();
}

void write_link_series_csv(const std::string& path, Time sample_interval,
                           const std::vector<LinkSummaryRow>& rows) {
  CsvWriter csv(path);
  std::vector<std::string> header{"t_s"};
  std::size_t len = 0;
  for (const LinkSummaryRow& r : rows) {
    header.push_back(r.name + "_mbps");
    header.push_back(r.name + "_ci_lo");
    header.push_back(r.name + "_ci_hi");
    len = std::max(len, r.util.mean.size());
  }
  csv.header(header);
  const double dt = to_seconds(sample_interval);
  for (std::size_t i = 0; i < len; ++i) {
    std::vector<double> cells{double(i) * dt};
    for (const LinkSummaryRow& r : rows) {
      if (i < r.util.mean.size()) {
        cells.push_back(r.util.mean[i]);
        cells.push_back(r.util.mean[i] - r.util.ci95[i]);
        cells.push_back(r.util.mean[i] + r.util.ci95[i]);
      } else {
        cells.push_back(0.0);
        cells.push_back(0.0);
        cells.push_back(0.0);
      }
    }
    csv.row(cells);
  }
}

std::string sparkline(const std::vector<double>& series, std::size_t width) {
  static const char* kLevels[] = {" ", "▁", "▂", "▃", "▄", "▅", "▆", "▇", "█"};
  if (series.empty()) return "";
  const double hi = *std::max_element(series.begin(), series.end());
  if (hi <= 0.0) return std::string(width, ' ');

  std::string out;
  const std::size_t n = std::min(width, series.size());
  for (std::size_t i = 0; i < n; ++i) {
    // Downsample by averaging each chunk.
    const std::size_t lo = i * series.size() / n;
    const std::size_t up = std::max(lo + 1, (i + 1) * series.size() / n);
    double sum = 0.0;
    for (std::size_t k = lo; k < up; ++k) sum += series[k];
    const double v = sum / double(up - lo);
    const int lvl = std::clamp(int(std::lround(v / hi * 8.0)), 0, 8);
    out += kLevels[lvl];
  }
  return out;
}

SweepCsvFiles write_sweep_csvs(const std::string& prefix,
                               const SweepResult& sweep) {
  SweepCsvFiles files;

  files.cells_path = prefix + "_cells.csv";
  {
    CsvWriter csv(files.cells_path);
    csv.header({"cell", "runs", "fairness_mean", "fairness_sd",
                "game_fair_mbps", "tcp_fair_mbps", "jain_mean", "rtt_ms_mean",
                "rtt_ms_sd", "fps_mean", "loss_mean", "steady_mean_mbps",
                "response_s", "recovery_s"});
    for (std::size_t i = 0; i < sweep.results.size(); ++i) {
      const auto& r = sweep.results[i];
      csv.row({sweep.cells[i].label, std::to_string(r.runs),
               std::to_string(r.fairness_mean), std::to_string(r.fairness_sd),
               std::to_string(r.game_fair_mbps),
               std::to_string(r.tcp_fair_mbps), std::to_string(r.jain_mean),
               std::to_string(r.rtt_mean_ms), std::to_string(r.rtt_sd_ms),
               std::to_string(r.fps_mean), std::to_string(r.loss_mean),
               std::to_string(r.steady_mean_mbps),
               std::to_string(r.rr.response_s),
               std::to_string(r.rr.recovery_s)});
      ++files.cell_rows;
    }
  }

  // Per-link digest: one row per (cell, topology link).  Single-bottleneck
  // grids get one "bottleneck" row per cell; parking lots one per hop.
  files.links_path = prefix + "_links.csv";
  {
    CsvWriter lcsv(files.links_path);
    lcsv.header({"cell", "link", "util_fair_mbps_mean", "util_fair_mbps_sd",
                 "drops_mean", "drops_sd", "peak_depth_bytes_mean"});
    for (std::size_t i = 0; i < sweep.results.size(); ++i) {
      for (const auto& l : sweep.results[i].link_rows) {
        lcsv.row({sweep.cells[i].label, l.name,
                  std::to_string(l.util_fair_mean),
                  std::to_string(l.util_fair_sd), std::to_string(l.drops_mean),
                  std::to_string(l.drops_sd),
                  std::to_string(l.peak_depth_mean)});
        ++files.link_rows;
      }
    }
  }

  // Fleet population digest: one row per cell that ran a fluid fleet
  // (omitted entirely for fleet-free grids).
  std::size_t fleet_cells = 0;
  for (const auto& r : sweep.results) {
    if (r.fleet.active) ++fleet_cells;
  }
  if (fleet_cells > 0) {
    files.fleet_path = prefix + "_fleet.csv";
    CsvWriter fcsv(files.fleet_path);
    fcsv.header({"cell", "runs", "peak_sessions_mean", "p50_mbps_mean",
                 "p95_mbps_mean", "p99_mbps_mean", "mean_mbps_mean",
                 "stall_rate_mean", "jain_mean", "arrivals_mean",
                 "departures_mean"});
    for (std::size_t i = 0; i < sweep.results.size(); ++i) {
      const auto& f = sweep.results[i].fleet;
      if (!f.active) continue;
      fcsv.row({sweep.cells[i].label, std::to_string(sweep.results[i].runs),
                std::to_string(f.peak_sessions_mean),
                std::to_string(f.p50_mean), std::to_string(f.p95_mean),
                std::to_string(f.p99_mean), std::to_string(f.mean_mbps_mean),
                std::to_string(f.stall_mean), std::to_string(f.jain_mean),
                std::to_string(f.arrivals_mean),
                std::to_string(f.departures_mean)});
      ++files.fleet_rows;
    }
  }
  return files;
}

}  // namespace cgs::core
