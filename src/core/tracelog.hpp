// Per-packet event logging — the simulator's equivalent of saving the
// Wireshark capture, plus a small analyzer for per-flow statistics.
//
// Attach a TraceLog to any Link's sniffer; every arrival / drop / transmit /
// delivery is recorded with its timestamp, flow, class and size. Records can
// be exported to CSV (plot-ready) or digested into per-flow summaries
// (bytes, packets, drops, goodput, inter-arrival jitter).
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "net/link.hpp"
#include "net/packet.hpp"

namespace cgs::core {

enum class TraceEvent : std::uint8_t { kArrival, kDrop, kTransmit, kDeliver };

[[nodiscard]] std::string_view to_string(TraceEvent e);

struct TraceRecord {
  Time at;
  TraceEvent event;
  net::FlowId flow;
  net::TrafficClass klass;
  std::int32_t size_bytes;
  std::uint64_t uid;
};

/// Per-flow digest over a trace (or a time window of it).
struct FlowSummary {
  net::FlowId flow = 0;
  std::uint64_t packets_delivered = 0;
  std::uint64_t packets_dropped = 0;
  std::int64_t bytes_delivered = 0;
  Time first_delivery = kTimeInfinite;
  Time last_delivery = kTimeZero;

  /// Goodput over the flow's active span.
  [[nodiscard]] Bandwidth goodput() const;
  /// Fraction of arrivals dropped.
  [[nodiscard]] double drop_rate() const;
  /// Mean absolute deviation of delivery inter-arrival times.
  Time jitter = kTimeZero;
};

class TraceLog {
 public:
  /// Subscribe to every tap point of `link`. The TraceLog must outlive the
  /// link's traffic. `events` selects which tap points are recorded
  /// (bitmask of 1<<TraceEvent); default: drops + deliveries.
  void attach(net::Link& link,
              unsigned events = (1u << unsigned(TraceEvent::kDrop)) |
                                (1u << unsigned(TraceEvent::kDeliver)));

  [[nodiscard]] const std::vector<TraceRecord>& records() const {
    return records_;
  }
  [[nodiscard]] std::size_t size() const { return records_.size(); }
  void clear() { records_.clear(); }

  /// Reserve space up front for long captures.
  void reserve(std::size_t n) { records_.reserve(n); }

  /// Write all records as CSV: t_s, event, flow, class, size, uid.
  void write_csv(const std::string& path) const;

  /// Digest records in [from, to) into per-flow summaries.
  [[nodiscard]] std::vector<FlowSummary> summarize(
      Time from = kTimeZero, Time to = kTimeInfinite) const;

 private:
  void record(TraceEvent e, const net::Packet& p, Time t);

  std::vector<TraceRecord> records_;
};

}  // namespace cgs::core
