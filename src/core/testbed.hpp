// Builds the paper's Figure-1 testbed for one Scenario and executes the
// §3.4 schedule: game stream from t=0, competing iperf TCP flow over
// [tcp_start, tcp_stop), ping probes throughout, collectors tapping the
// bottleneck link.
#pragma once

#include <memory>

#include "core/collectors.hpp"
#include "core/ping.hpp"
#include "core/scenario.hpp"
#include "net/router.hpp"
#include "stream/receiver.hpp"
#include "stream/sender.hpp"
#include "tcp/bulk_app.hpp"

namespace cgs::core {

class Testbed {
 public:
  static constexpr net::FlowId kGameFlow = 1;
  static constexpr net::FlowId kTcpFlow = 2;
  static constexpr net::FlowId kPingFlow = 3;

  explicit Testbed(const Scenario& scenario);

  /// Execute the full schedule; returns the measured trace.
  [[nodiscard]] RunTrace run();

  // Component access (tests, custom schedules).
  [[nodiscard]] sim::Simulator& simulator() { return sim_; }
  [[nodiscard]] net::BottleneckRouter& router() { return *router_; }
  /// Downstream impairment stage, or nullptr when the scenario has none.
  [[nodiscard]] net::Impairment* downstream_impairment() {
    return down_impair_.get();
  }
  /// Per-flow upstream impairment stages (empty when the scenario has none).
  [[nodiscard]] const std::vector<std::unique_ptr<net::Impairment>>&
  upstream_impairments() const {
    return up_impairs_;
  }
  [[nodiscard]] stream::StreamSender& game_sender() { return *game_sender_; }
  [[nodiscard]] stream::StreamReceiver& game_receiver() { return *game_recv_; }
  [[nodiscard]] tcp::BulkTcpFlow* tcp_flow() { return tcp_flow_.get(); }
  [[nodiscard]] PingClient& ping() { return *ping_client_; }
  [[nodiscard]] const Scenario& scenario() const { return scenario_; }

 private:
  [[nodiscard]] std::unique_ptr<net::Queue> make_queue() const;

  Scenario scenario_;
  sim::Simulator sim_;
  net::PacketFactory factory_;

  std::unique_ptr<net::BottleneckRouter> router_;

  // Optional netem-style impairment stages (scenario.impair_down/up).
  std::unique_ptr<net::Impairment> down_impair_;
  std::vector<std::unique_ptr<net::Impairment>> up_impairs_;

  // Game stream endpoints + path segments.
  std::unique_ptr<stream::StreamSender> game_sender_;
  std::unique_ptr<stream::StreamReceiver> game_recv_;
  std::unique_ptr<net::DelayLine> game_access_;

  // Competing TCP flow (optional).
  std::unique_ptr<tcp::BulkTcpFlow> tcp_flow_;
  std::unique_ptr<net::DelayLine> tcp_access_;

  // Ping probe.
  std::unique_ptr<PingClient> ping_client_;
  std::unique_ptr<PingResponder> ping_responder_;
  std::unique_ptr<net::DelayLine> ping_access_;

  std::unique_ptr<TraceCollectors> collectors_;
};

}  // namespace cgs::core
