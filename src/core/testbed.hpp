// Builds the testbed topology for one Scenario and executes its schedule.
//
// The paper's Figure-1 setup (game stream from t=0, competing iperf TCP
// flow over [tcp_start, tcp_stop), ping probes throughout) is the default
// 3-flow mix; arbitrary N-flow mixes are instantiated from
// Scenario::flows.  The network shape comes from Scenario::topology (or
// the synthesized single-bottleneck graph): every flow gets its own
// endpoints, access delay line and schedule events, and is routed over its
// per-flow path through the net::TopologyGraph; collectors tap every link.
#pragma once

#include <memory>
#include <vector>

#include "core/audit.hpp"
#include "core/collectors.hpp"
#include "core/ping.hpp"
#include "core/scenario.hpp"
#include "net/fluid.hpp"
#include "net/router.hpp"
#include "net/topology.hpp"
#include "stream/receiver.hpp"
#include "stream/sender.hpp"
#include "tcp/bulk_app.hpp"
#include "util/arena.hpp"
#include "util/rng.hpp"

namespace cgs::core {

class Testbed {
 public:
  explicit Testbed(const Scenario& scenario);

  /// Arena-backed run: the event engine's slot/node slabs and the packet
  /// pool's chunks are carved from `arena` (which must outlive the
  /// Testbed).  Sweep workers reuse one arena across jobs — construct,
  /// run, destroy, arena.reset() — so steady-state job turnover performs
  /// no slab allocations at all.  Packets must not outlive the run.
  Testbed(const Scenario& scenario, util::Arena* arena);

  /// Execute the full schedule; returns the measured trace.
  [[nodiscard]] RunTrace run();

  /// Per-flow master RNG: a pure function of (scenario seed, flow id), so
  /// adding or removing one flow never perturbs another flow's stream.
  /// Flow id 1 keeps the pre-registry derivation (Pcg32(seed)) so the
  /// paper's default mix — whose only RNG consumer is the game sender on
  /// flow 1 — reproduces historical traces bit-exactly.
  [[nodiscard]] static Pcg32 flow_master_rng(std::uint64_t seed,
                                             net::FlowId id);

  // Instantiated flows, in mix declaration order within each kind.
  struct GameFlow {
    FlowSpec spec;
    std::unique_ptr<stream::StreamSender> sender;
    std::unique_ptr<stream::StreamReceiver> receiver;
    std::unique_ptr<net::DelayLine> access;
  };
  struct TcpFlow {
    FlowSpec spec;
    std::unique_ptr<tcp::BulkTcpFlow> flow;
    std::unique_ptr<net::DelayLine> access;
  };
  struct PingFlow {
    FlowSpec spec;
    std::unique_ptr<PingClient> client;
    std::unique_ptr<PingResponder> responder;
    std::unique_ptr<net::DelayLine> access;
  };

  // Component access (tests, custom schedules).
  [[nodiscard]] sim::Simulator& simulator() { return sim_; }

  /// The instantiated network graph.
  [[nodiscard]] net::TopologyGraph& topology() { return *graph_; }

  /// Legacy single-bottleneck view; throws std::logic_error naming the
  /// topology when the scenario's graph has more than one link (address
  /// links through topology() instead).
  [[nodiscard]] net::BottleneckRouter& router();

  /// First link's ingress impairment stage (the scenario-wide downstream
  /// stage for synthesized single-bottleneck graphs), or nullptr when none
  /// is configured.
  [[nodiscard]] net::Impairment* downstream_impairment() {
    return graph_->ingress_impairment(0);
  }
  /// Per-flow upstream impairment stages (empty when the scenario has none).
  [[nodiscard]] const std::vector<std::unique_ptr<net::Impairment>>&
  upstream_impairments() const {
    return up_impairs_;
  }

  [[nodiscard]] const std::vector<GameFlow>& game_flows() const {
    return games_;
  }
  [[nodiscard]] const std::vector<TcpFlow>& tcp_flows() const { return tcps_; }
  [[nodiscard]] const std::vector<PingFlow>& ping_flows() const {
    return pings_;
  }

  /// Primary game-stream endpoints; throws std::logic_error when the mix
  /// has no game-stream flow.
  [[nodiscard]] stream::StreamSender& game_sender();
  [[nodiscard]] stream::StreamReceiver& game_receiver();
  /// Primary ping client; throws std::logic_error when the mix has none.
  [[nodiscard]] PingClient& ping();
  /// Primary competing TCP flow, or nullptr when the mix has none.
  [[nodiscard]] tcp::BulkTcpFlow* tcp_flow();

  [[nodiscard]] const Scenario& scenario() const { return scenario_; }

  /// The fluid fleet runtime, or nullptr when the scenario's fleet spec is
  /// empty.
  [[nodiscard]] net::FluidAggregate* fleet() { return fluid_.get(); }

  /// The first link's invariant auditor, or nullptr when auditing resolved
  /// to off (Scenario::audit, kAuto = Debug builds only).
  [[nodiscard]] const SimAuditor* auditor() const {
    return auditors_.empty() ? nullptr : auditors_.front().get();
  }
  /// Per-link auditors, parallel to the topology's links (empty when off).
  [[nodiscard]] const std::vector<std::unique_ptr<SimAuditor>>& auditors()
      const {
    return auditors_;
  }

 private:
  /// Arm the scenario's test-only fault (Scenario::fault) at run start:
  /// no-op unless the fault targets this run's seed.
  void inject_fault();

  /// "mix[1 game + 1 tcp + 1 ping] fleet[200]"-style composition summary
  /// for accessor diagnostics.
  [[nodiscard]] std::string composition() const;

  void build_game_flow(const FlowSpec& spec, Time pad_down, Time pad_up);
  void build_tcp_flow(const FlowSpec& spec, Time pad_down, Time pad_up);
  void build_ping_flow(const FlowSpec& spec, Time pad_down, Time pad_up);
  /// Upstream path entry for `spec`: the graph's reverse path, fronted by
  /// an impairment stage when the spec (or scenario) configures one.
  [[nodiscard]] net::PacketSink* upstream_entry(const FlowSpec& spec,
                                                net::PacketSink& up);

  Scenario scenario_;
  sim::Simulator sim_;
  net::PacketFactory factory_;
  // sim_ and factory_ precede every component so endpoints/links are
  // destroyed (returning packets to the pool) before the engine and pool.

  std::unique_ptr<net::TopologyGraph> graph_;
  // Legacy facade over graph_, synthesized only for 1-link topologies.
  std::unique_ptr<net::BottleneckRouter> router_view_;

  // Per-flow upstream impairment stages (scenario.impair_up and per-flow
  // overrides); downstream stages live inside the graph.
  std::vector<std::unique_ptr<net::Impairment>> up_impairs_;

  std::vector<GameFlow> games_;
  std::vector<TcpFlow> tcps_;
  std::vector<PingFlow> pings_;

  std::unique_ptr<TraceCollectors> collectors_;
  std::vector<std::unique_ptr<SimAuditor>> auditors_;
  // Fluid background fleet; null when scenario_.fleet is empty, so the
  // packet path runs exactly the legacy code.
  std::unique_ptr<net::FluidAggregate> fluid_;
};

}  // namespace cgs::core
