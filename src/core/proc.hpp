// Fault-isolated job execution: a fork()ed child under a supervisor.
//
// The sweep engine's forked-isolation mode runs every (cell, seed) job in
// its own process so a poisoned job — a segfault in a new controller, an
// OOM from a pathological scenario, a wedged run the in-sim watchdog can't
// see — kills only its child, never the pool.  run_forked() is that
// substrate: it forks, applies per-job rlimits in the child, runs the job,
// ships the result back over a pipe as one CRC-framed message, and
// classifies every way the child can die into the ErrorClass taxonomy:
//
//   child reports cleanly   -> the job's own class (ok, or a classified
//                              simulation failure: watchdog/invariant/...)
//   fatal signal            -> kCrash    (SIGSEGV, SIGABRT, SIGBUS, ...)
//   supervisor deadline     -> kTimeout  (SIGKILL after wall_seconds)
//   rlimit / OOM kill       -> kResource (SIGXCPU, kernel OOM SIGKILL,
//                              bad_alloc under RLIMIT_AS)
//   anything else           -> kCrash with the raw exit status
//
// The payload protocol is byte-exact: a child that serializes a RunTrace
// hands the parent the identical bytes an in-process run would have
// journaled, which is what makes forked sweeps bit-identical to in-process
// ones.  The child never returns from run_forked — it _exit()s — so parent
// state (journals, accumulators, other workers) is never touched twice.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/error.hpp"

namespace cgs::core::proc {

/// Per-job caps applied in the child before the job runs.  Zero fields
/// inherit the parent's (usually unlimited) limits.
struct ResourceLimits {
  /// RLIMIT_AS in bytes: allocations beyond this fail with bad_alloc,
  /// which the child reports as a clean kResource failure.
  std::uint64_t address_space_bytes = 0;
  /// RLIMIT_CPU in seconds: the kernel SIGXCPUs (then SIGKILLs) a child
  /// that burns more CPU than this — kResource.
  std::uint32_t cpu_seconds = 0;
  /// Wall-clock deadline enforced by the *supervisor* with SIGKILL —
  /// kTimeout.  Catches wedged-but-idle children rlimits never see.
  double wall_seconds = 0;
};

/// What one forked job execution produced, as observed by the supervisor.
struct ChildResult {
  /// True when the child reported success; `payload` holds the job's bytes.
  bool ok = false;
  std::vector<unsigned char> payload;

  /// Failure classification (meaningful when !ok).
  ErrorClass cls = ErrorClass::kUnclassified;
  std::string message;

  /// Diagnostics: the signal that killed the child (0 = exited), its exit
  /// status (when signaled: -1), and whether the supervisor SIGKILLed it.
  int term_signal = 0;
  int exit_status = 0;
  bool timed_out = false;
};

/// The job body run inside the child.  Returns the success payload bytes;
/// a thrown exception is classified (core/error.hpp) and reported as a
/// clean failure.  Must not touch parent-owned shared state — the child is
/// a fork, so any mutation dies with it.
using ChildJob = std::function<std::vector<unsigned char>()>;

/// Run `job` in a fork()ed child under `limits` and reap it.  Never
/// throws for child-side problems (they come back classified in the
/// result); throws std::runtime_error only when the supervisor itself
/// cannot operate (pipe/fork failure).
[[nodiscard]] ChildResult run_forked(const ChildJob& job,
                                     const ResourceLimits& limits);

// --- EINTR-hardened fd I/O ---------------------------------------------------
//
// The supervisor and child talk over a pipe while signals fly (SIGCHLD
// from sibling workers, operator SIGTERM/SIGINT, profiler SIGPROF), and
// any of them can interrupt a read/write mid-frame or split it short.
// These helpers retry EINTR internally and accumulate short transfers, so
// frame-level code never sees a partial syscall.  They are equally valid
// on sockets and regular files (the sweep service reuses them).

/// Write exactly `n` bytes, retrying EINTR and short writes.  False on a
/// real error (errno is preserved).
bool write_exact(int fd, const void* data, std::size_t n);

/// Read up to `n` bytes, retrying EINTR only.  Returns the byte count
/// (0 = EOF), or -1 on a real error (errno is preserved).
long read_some(int fd, void* data, std::size_t n);

/// Read exactly `n` bytes, retrying EINTR and accumulating short reads.
/// False on EOF-before-n or a real error.
bool read_exact(int fd, void* data, std::size_t n);

/// Capped exponential backoff with deterministic jitter for retry
/// attempt `attempt` (1-based): min(base << (attempt-1), max), scaled
/// into [50%, 100%] by a splitmix64 hash of `jitter_key` and the attempt
/// — same key, same schedule, so retry timing is reproducible.
[[nodiscard]] std::uint32_t backoff_ms(std::uint32_t base_ms,
                                       std::uint32_t max_ms, int attempt,
                                       std::uint64_t jitter_key);

}  // namespace cgs::core::proc
