#include "core/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <utility>

#include "core/journal.hpp"
#include "core/testbed.hpp"
#include "util/arena.hpp"

namespace cgs::core {
namespace {

/// Chase-Lev work-stealing deque of job indices (memory orderings per
/// Le et al., "Correct and Efficient Work-Stealing for Weak Memory
/// Models", PPoPP '13).  The flat job list is known up front and jobs
/// never spawn jobs, so the buffer is sized once and there is no growth
/// path; indices are never recycled, which rules out ABA on top_.
class WorkDeque {
 public:
  explicit WorkDeque(std::size_t capacity) {
    std::size_t cap = 1;
    while (cap < std::max<std::size_t>(capacity, 2)) cap <<= 1;
    buf_ = std::make_unique<std::atomic<int>[]>(cap);
    mask_ = std::int64_t(cap) - 1;
  }

  /// Owner only.  Only called while seeding, before any thief runs, and
  /// never beyond capacity.
  void push(int job) {
    const auto b = bottom_.load(std::memory_order_relaxed);
    buf_[std::size_t(b & mask_)].store(job, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_release);
    bottom_.store(b + 1, std::memory_order_relaxed);
  }

  /// Owner only: take from the LIFO end.  False when empty.
  bool pop(int& out) {
    const auto b = bottom_.load(std::memory_order_relaxed) - 1;
    bottom_.store(b, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    auto t = top_.load(std::memory_order_relaxed);
    bool got = false;
    if (t <= b) {
      out = buf_[std::size_t(b & mask_)].load(std::memory_order_relaxed);
      got = true;
      if (t == b) {
        // Last element: race the thieves for it.
        if (!top_.compare_exchange_strong(t, t + 1,
                                          std::memory_order_seq_cst,
                                          std::memory_order_relaxed)) {
          got = false;
        }
        bottom_.store(b + 1, std::memory_order_relaxed);
      }
    } else {
      bottom_.store(b + 1, std::memory_order_relaxed);
    }
    return got;
  }

  /// Any thief: take from the FIFO end.  False on empty or a lost race
  /// (callers retry their victim scan).
  bool steal(int& out) {
    auto t = top_.load(std::memory_order_acquire);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    const auto b = bottom_.load(std::memory_order_acquire);
    if (t >= b) return false;
    out = buf_[std::size_t(t & mask_)].load(std::memory_order_relaxed);
    return top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                        std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> top_{0};
  std::atomic<std::int64_t> bottom_{0};
  std::unique_ptr<std::atomic<int>[]> buf_;
  std::int64_t mask_ = 0;
};

/// Per-cell delivery state: completions park here until every lower seed
/// has drained, keeping consume() calls in seed order.  A failed run parks
/// nullopt so the order still advances past it.  The buffer stays
/// O(threads) in practice: owners walk their slice in increasing job
/// order, so only stolen tail jobs arrive early.
struct CellState {
  std::mutex mu;
  int next_run = 0;
  std::map<int, std::optional<RunTrace>> pending;
};

}  // namespace

SweepSpec& SweepSpec::axis(std::string name, std::vector<AxisValue> values) {
  axes.push_back({std::move(name), std::move(values)});
  return *this;
}

std::vector<SweepCell> SweepSpec::cells() const {
  std::vector<SweepCell> out;
  out.push_back({"", base});
  for (const SweepAxis& ax : axes) {
    std::vector<SweepCell> next;
    next.reserve(out.size() * ax.values.size());
    for (const SweepCell& cell : out) {
      for (const AxisValue& v : ax.values) {
        SweepCell c = cell;
        if (!c.label.empty()) c.label += ' ';
        c.label += ax.name;
        c.label += '=';
        c.label += v.label;
        if (v.apply) v.apply(c.scenario);
        next.push_back(std::move(c));
      }
    }
    out = std::move(next);
  }
  return out;
}

SweepReport sweep_jobs(
    const std::vector<SweepCell>& cells, const SweepOptions& opts,
    const std::function<void(std::size_t, int, RunTrace&&)>& consume,
    const std::vector<PreloadedRun>& preloaded) {
  if (opts.runs <= 0) {
    throw std::invalid_argument("SweepOptions: runs must be > 0 (got " +
                                std::to_string(opts.runs) + ")");
  }
  SweepReport report;
  if (cells.empty()) {
    if (opts.on_snapshot) {
      ProgressSnapshot s;
      s.final = true;
      try {
        opts.on_snapshot(s);
      } catch (...) {
        ++report.progress_errors;
      }
    }
    return report;
  }
  // Fail nonsensical configs on the calling thread, before spawning workers.
  for (const SweepCell& c : cells) c.scenario.validate();

  const int runs = opts.runs;
  const int total = int(cells.size()) * runs;
  report.total = total;
  report.cell_failures.assign(cells.size(), 0);

  // Validate the preloaded slots up front, same as the scenarios.
  std::vector<char> is_preloaded(std::size_t(total), 0);
  for (const PreloadedRun& p : preloaded) {
    if (p.cell >= cells.size() || p.run < 0 || p.run >= runs) {
      throw std::invalid_argument(
          "sweep_jobs: preloaded job (cell " + std::to_string(p.cell) +
          ", run " + std::to_string(p.run) + ") is outside the grid");
    }
    char& mark = is_preloaded[p.cell * std::size_t(runs) + std::size_t(p.run)];
    if (mark != 0) {
      throw std::invalid_argument(
          "sweep_jobs: duplicate preloaded job (cell " +
          std::to_string(p.cell) + ", run " + std::to_string(p.run) + ")");
    }
    mark = 1;
  }

  unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 4;
  const int remaining_jobs = total - int(preloaded.size());
  const int threads = std::max(
      1, std::min(opts.threads > 0 ? opts.threads : int(hw),
                  std::max(remaining_jobs, 1)));

  std::vector<CellState> states(cells.size());
  std::mutex failures_mu;  // guards report.failures/cell_failures/counters

  std::atomic<int> done{0};
  std::mutex progress_mu;
  int reported = 0;  // guarded by progress_mu: keeps calls strictly 1..total

  // Snapshot machinery: per-cell delivery counts feed cells_finished, and
  // the failure-side counters are read under failures_mu so a snapshot is
  // one consistent cut of the sweep, not a smeared mix of counters.
  auto cell_delivered = std::make_unique<std::atomic<int>[]>(cells.size());
  std::atomic<std::size_t> cells_finished{0};
  using SnapClock = std::chrono::steady_clock;
  SnapClock::time_point last_snapshot{};  // guarded by progress_mu

  auto make_snapshot = [&](bool final_snapshot) {
    ProgressSnapshot s;
    s.total = total;
    s.cells = cells.size();
    s.finished = done.load(std::memory_order_acquire);
    s.cells_finished = cells_finished.load(std::memory_order_acquire);
    {
      std::lock_guard lk(failures_mu);
      s.succeeded = report.succeeded;
      s.failed = int(report.failed());
      s.skipped = report.skipped;
      s.retries = report.retries;
      s.quarantined = report.quarantined;
    }
    s.final = final_snapshot;
    return s;
  };

  auto report_one = [&] {
    done.fetch_add(1, std::memory_order_release);
    if (!opts.progress && !opts.on_snapshot) return;
    std::lock_guard lk(progress_mu);
    ++reported;
    if (opts.progress) {
      try {
        opts.progress(reported, total);
      } catch (...) {
        // A throwing progress callback must not kill a worker thread; the
        // swallow is counted so the caller still learns reporting is broken.
        ++report.progress_errors;
      }
    }
    if (opts.on_snapshot) {
      const auto now = SnapClock::now();
      if (opts.snapshot_interval_ms == 0 ||
          last_snapshot == SnapClock::time_point{} ||
          now - last_snapshot >=
              std::chrono::milliseconds(opts.snapshot_interval_ms)) {
        last_snapshot = now;
        try {
          opts.on_snapshot(make_snapshot(false));
        } catch (...) {
          ++report.progress_errors;
        }
      }
    }
  };

  // Record one final failure, respecting the per-cell message cap.
  auto record_failure = [&](SweepFailure&& f) {
    {
      std::lock_guard lk(failures_mu);
      std::size_t& count = report.cell_failures[f.cell];
      ++count;
      if (count <= opts.max_failures_per_cell) {
        report.failures.push_back(f);
      } else {
        ++report.failures_suppressed;
      }
    }
    if (opts.on_failure) {
      try {
        opts.on_failure(f);
      } catch (...) {
        // Failure observers (e.g. the journal hook) must not take down a
        // worker; the failure itself is already recorded above.
      }
    }
  };

  auto deliver = [&](int job, std::optional<RunTrace>&& trace) {
    const auto cell = std::size_t(job) / std::size_t(runs);
    CellState& st = states[cell];
    {
      std::lock_guard lk(st.mu);
      st.pending.emplace(job % runs, std::move(trace));
      for (auto it = st.pending.find(st.next_run); it != st.pending.end();
           it = st.pending.find(st.next_run)) {
        if (it->second.has_value()) {
          consume(cell, st.next_run, std::move(*it->second));
        }
        st.pending.erase(it);  // the trace dies here — nothing accumulates
        ++st.next_run;
      }
    }
    if (cell_delivered[cell].fetch_add(1, std::memory_order_acq_rel) + 1 ==
        runs) {
      cells_finished.fetch_add(1, std::memory_order_acq_rel);
    }
    report_one();
  };

  // Feed the preloaded results through the same seed-order delivery path,
  // on the calling thread, before any worker spawns: the fold order a
  // resumed sweep sees is exactly the order an uninterrupted sweep saw.
  for (const PreloadedRun& p : preloaded) {
    if (p.failure) {
      SweepFailure f = *p.failure;
      f.cell = p.cell;
      f.cell_label = cells[p.cell].label;
      record_failure(std::move(f));
    }
    std::optional<RunTrace> trace = p.trace;
    deliver(int(p.cell) * runs + p.run, std::move(trace));
    ++report.skipped;
  }

  auto stopped = [&] {
    return opts.stop != nullptr && opts.stop->load(std::memory_order_relaxed);
  };

  // Backoff between quarantine strikes: deterministic jitter keyed by the
  // job, sliced so a stop request is honored mid-sleep.
  auto backoff_sleep = [&](int attempt, std::size_t cell, std::uint64_t seed) {
    const std::uint64_t key = (std::uint64_t(cell) << 32) ^ seed;
    std::uint32_t left_ms =
        proc::backoff_ms(opts.backoff_base_ms, opts.backoff_max_ms, attempt,
                         key);
    while (left_ms > 0 && !stopped()) {
      const std::uint32_t slice = std::min<std::uint32_t>(left_ms, 10);
      std::this_thread::sleep_for(std::chrono::milliseconds(slice));
      left_ms -= slice;
    }
  };

  auto execute = [&](int job, util::Arena& arena) {
    const auto cell = std::size_t(job) / std::size_t(runs);
    const int run = job % runs;
    const std::uint64_t seed = cells[cell].scenario.seed + std::uint64_t(run);
    const bool forked = opts.isolation == Isolation::kForked;
    std::optional<RunTrace> trace;
    for (int attempt = 1;; ++attempt) {
      SweepFailure f;
      f.cell = cell;
      f.cell_label = cells[cell].label;
      f.seed = seed;
      f.attempts = attempt;
      if (forked) {
        // Run the job in its own process: the child executes the same
        // Testbed code path against a fresh arena and ships the bit-exact
        // serialized trace back over the pipe.  The supervisor classifies
        // every way the child can die (core/proc.hpp).
        Scenario sc = cells[cell].scenario;
        sc.seed = seed;
        const proc::ChildResult cr = proc::run_forked(
            [&sc]() {
              util::Arena child_arena;
              Testbed bed(sc, &child_arena);
              return serialize_trace(bed.run());
            },
            opts.limits);
        if (cr.ok) {
          try {
            trace = deserialize_trace(cr.payload.data(), cr.payload.size());
            break;
          } catch (const std::exception& e) {
            f.what = std::string("result frame did not deserialize: ") +
                     e.what();
            f.cls = ErrorClass::kUnclassified;
          }
        } else {
          f.what = cr.message;
          f.cls = cr.cls;
          // Child-side context (sim-time, flow) is unavailable for process
          // deaths; classified simulation failures embed it in what().
        }
      } else {
        try {
          Scenario sc = cells[cell].scenario;
          sc.seed = seed;
          // Recycle the worker's arena blocks; the previous job's Testbed
          // is already destroyed, so its slabs are dead storage by now.
          arena.reset();
          Testbed bed(sc, &arena);
          trace = bed.run();
          break;
        } catch (const std::exception& e) {
          f.what = e.what();
          f.cls = classify(e);
          const ErrorContext ctx = context_of(e);
          f.sim_time = ctx.sim_time;
          f.flow = ctx.flow;
        } catch (...) {
          f.what = "unknown exception";
          f.cls = ErrorClass::kUnclassified;
        }
      }
      // Deterministic failures reproduce identically — only possibly-
      // environmental (unclassified) ones earn another attempt.
      if (is_transient(f.cls) && attempt <= opts.max_retries && !stopped()) {
        std::lock_guard lk(failures_mu);
        ++report.retries;
        continue;
      }
      // Process deaths (forked mode) get their strikes: they too can be
      // environmental (co-tenant OOM, loaded host missing a deadline), but
      // a job that keeps killing its child is poison — quarantine it.
      if (forked && is_process_failure(f.cls)) {
        if (attempt < opts.quarantine_strikes && !stopped()) {
          {
            std::lock_guard lk(failures_mu);
            ++report.retries;
          }
          backoff_sleep(attempt, cell, seed);
          continue;
        }
        if (attempt >= opts.quarantine_strikes) {
          f.quarantined = true;
          std::lock_guard lk(failures_mu);
          ++report.quarantined;
        }
      }
      record_failure(std::move(f));
      break;
    }
    if (trace.has_value()) {
      std::lock_guard lk(failures_mu);
      ++report.succeeded;
    }
    deliver(job, std::move(trace));
  };

  // One deque per worker, seeded with a contiguous slice of the flat
  // cell-major job list (minus any preloaded slots).  Slices are pushed in
  // reverse so the owner's LIFO pop walks its seeds in increasing order
  // (keeping each cell's reorder buffer small) while thieves bite the far
  // end of a straggler's slice.
  std::vector<std::unique_ptr<WorkDeque>> deques;
  deques.reserve(std::size_t(threads));
  for (int w = 0; w < threads; ++w) {
    const int lo = int(std::int64_t(total) * w / threads);
    const int hi = int(std::int64_t(total) * (w + 1) / threads);
    auto dq = std::make_unique<WorkDeque>(std::size_t(hi - lo));
    for (int job = hi - 1; job >= lo; --job) {
      if (!is_preloaded[std::size_t(job)]) dq->push(job);
    }
    deques.push_back(std::move(dq));
  }

  auto worker = [&](int w) {
    WorkDeque& self = *deques[std::size_t(w)];
    // One arena per worker, reused across every job it executes: steady-
    // state job turnover stops touching the allocator for slab storage.
    util::Arena arena;
    int job = -1;
    for (;;) {
      // Graceful drain: finish nothing new once the stop flag flips; jobs
      // already executing elsewhere complete and get journaled.
      if (stopped()) return;
      if (self.pop(job)) {
        execute(job, arena);
        continue;
      }
      bool stolen = false;
      for (int k = 1; k < threads && !stolen; ++k) {
        stolen = deques[std::size_t((w + k) % threads)]->steal(job);
      }
      if (stolen) {
        execute(job, arena);
        continue;
      }
      // Every deque looked empty: remaining jobs (if any) are executing on
      // other workers right now — no new work can appear.
      if (done.load(std::memory_order_acquire) >= total) return;
      std::this_thread::yield();
    }
  };

  if (remaining_jobs > 0 && !stopped()) {
    if (threads == 1) {
      worker(0);
    } else {
      std::vector<std::thread> pool;
      pool.reserve(std::size_t(threads));
      for (int w = 0; w < threads; ++w) pool.emplace_back(worker, w);
      for (auto& t : pool) t.join();
    }
  }

  report.finished = done.load(std::memory_order_acquire);
  report.interrupted = report.finished < total;

  // The one guaranteed snapshot: emitted after the pool drains — complete
  // or interrupted — regardless of the throttle, so a subscriber always
  // sees the end state.
  if (opts.on_snapshot) {
    try {
      opts.on_snapshot(make_snapshot(true));
    } catch (...) {
      ++report.progress_errors;
    }
  }

  std::sort(report.failures.begin(), report.failures.end(),
            [](const SweepFailure& a, const SweepFailure& b) {
              return a.cell != b.cell ? a.cell < b.cell : a.seed < b.seed;
            });
  return report;
}

namespace {

/// Rebuild PreloadedRuns from a journal scan, deduplicating slots (first
/// record wins — duplicates can only come from a hand-edited file).
std::vector<PreloadedRun> preload_from_scan(const JournalScan& scan,
                                            const std::vector<SweepCell>& cells,
                                            int runs) {
  std::vector<PreloadedRun> out;
  std::vector<char> seen(cells.size() * std::size_t(runs), 0);
  out.reserve(scan.entries.size());
  for (const JournalEntry& e : scan.entries) {
    if (e.cell >= cells.size() || int(e.run) >= runs) continue;
    char& mark = seen[e.cell * std::size_t(runs) + e.run];
    if (mark != 0) continue;
    mark = 1;

    PreloadedRun p;
    p.cell = e.cell;
    p.run = int(e.run);
    if (e.ok) {
      p.trace = deserialize_trace(e.payload.data(), e.payload.size());
    } else {
      SweepFailure f;
      f.seed = e.seed;
      f.what.assign(reinterpret_cast<const char*>(e.payload.data()),
                    e.payload.size());
      f.cls = e.cls;
      p.failure = std::move(f);
    }
    out.push_back(std::move(p));
  }
  return out;
}

}  // namespace

SweepResult run_sweep(std::vector<SweepCell> cells, const SweepOptions& opts) {
  std::vector<ConditionAccumulator> accs;
  accs.reserve(cells.size());
  for (const SweepCell& c : cells) accs.emplace_back(c.scenario);

  // --- crash-safe journaling ----------------------------------------------
  std::optional<JournalWriter> writer;
  std::mutex journal_mu;
  std::vector<PreloadedRun> preloaded;
  std::vector<char> is_preloaded;
  if (!opts.journal_path.empty()) {
    const std::uint64_t fp = sweep_fingerprint(cells, opts.runs);
    if (auto scan = read_journal(opts.journal_path)) {
      if (scan->meta.fingerprint != fp) {
        throw JournalMismatchError(
            "journal '" + opts.journal_path +
            "' was written for a different grid (fingerprint mismatch); "
            "refusing to resume — delete it or pass the original grid");
      }
      preloaded = preload_from_scan(*scan, cells, opts.runs);
      writer = JournalWriter::append_to(opts.journal_path, scan->valid_bytes,
                                        opts.journal_sync);
    } else {
      JournalMeta meta;
      meta.fingerprint = fp;
      meta.runs = std::uint32_t(opts.runs);
      meta.cells = std::uint32_t(cells.size());
      meta.note = opts.journal_note;
      writer = JournalWriter::create(opts.journal_path, meta,
                                     opts.journal_sync);
    }
    is_preloaded.assign(cells.size() * std::size_t(opts.runs), 0);
    for (const PreloadedRun& p : preloaded) {
      is_preloaded[p.cell * std::size_t(opts.runs) + std::size_t(p.run)] = 1;
    }
  }

  SweepOptions jopts = opts;
  if (writer) {
    // Journal every fresh failure the moment it is final.
    jopts.on_failure = [&](const SweepFailure& f) {
      if (is_preloaded[f.cell * std::size_t(opts.runs) +
                       std::size_t(f.seed - cells[f.cell].scenario.seed)]) {
        return;  // re-reported preloaded failure, already on disk
      }
      JournalEntry e;
      e.cell = std::uint32_t(f.cell);
      e.run = std::uint32_t(f.seed - cells[f.cell].scenario.seed);
      e.seed = f.seed;
      e.ok = false;
      e.cls = f.cls;
      e.payload.assign(f.what.begin(), f.what.end());
      std::lock_guard lk(journal_mu);
      writer->append(e);
      if (opts.on_failure) opts.on_failure(f);
    };
  }

  const auto consume = [&](std::size_t cell, int run, RunTrace&& t) {
    if (writer &&
        !is_preloaded[cell * std::size_t(opts.runs) + std::size_t(run)]) {
      JournalEntry e;
      e.cell = std::uint32_t(cell);
      e.run = std::uint32_t(run);
      e.seed = cells[cell].scenario.seed + std::uint64_t(run);
      e.ok = true;
      e.trace_hash = trace_hash(t);
      e.payload = serialize_trace(t);
      std::lock_guard lk(journal_mu);
      writer->append(e);
    }
    accs[cell].add(t);
  };

  SweepResult res;
  res.report = sweep_jobs(cells, jopts, consume, preloaded);

  // Surface deferred write errors (ENOSPC/EIO under journal_sync=false)
  // now, while the caller can still react — not in a silent destructor.
  if (writer) writer->close();

  if (res.report.failed() != 0 && !res.report.interrupted &&
      opts.throw_on_failure) {
    std::ostringstream os;
    os << "run_sweep: " << res.report.failed() << " of "
       << cells.size() * std::size_t(opts.runs) << " jobs failed:";
    for (const SweepFailure& f : res.report.failures) {
      os << "\n  cell '" << f.cell_label << "' seed " << f.seed << ": "
         << f.what;
    }
    if (res.report.failures_suppressed > 0) {
      os << "\n  ... and " << res.report.failures_suppressed
         << " more (per-cell cap " << opts.max_failures_per_cell << ")";
    }
    throw std::runtime_error(os.str());
  }

  res.results.reserve(accs.size());
  for (ConditionAccumulator& a : accs) res.results.push_back(a.finalize());
  res.cells = std::move(cells);
  return res;
}

SweepResult run_sweep(const SweepSpec& spec, const SweepOptions& opts) {
  return run_sweep(spec.cells(), opts);
}

}  // namespace cgs::core
