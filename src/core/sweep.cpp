#include "core/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <utility>

#include "core/testbed.hpp"

namespace cgs::core {
namespace {

/// Chase-Lev work-stealing deque of job indices (memory orderings per
/// Le et al., "Correct and Efficient Work-Stealing for Weak Memory
/// Models", PPoPP '13).  The flat job list is known up front and jobs
/// never spawn jobs, so the buffer is sized once and there is no growth
/// path; indices are never recycled, which rules out ABA on top_.
class WorkDeque {
 public:
  explicit WorkDeque(std::size_t capacity) {
    std::size_t cap = 1;
    while (cap < std::max<std::size_t>(capacity, 2)) cap <<= 1;
    buf_ = std::make_unique<std::atomic<int>[]>(cap);
    mask_ = std::int64_t(cap) - 1;
  }

  /// Owner only.  Only called while seeding, before any thief runs, and
  /// never beyond capacity.
  void push(int job) {
    const auto b = bottom_.load(std::memory_order_relaxed);
    buf_[std::size_t(b & mask_)].store(job, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_release);
    bottom_.store(b + 1, std::memory_order_relaxed);
  }

  /// Owner only: take from the LIFO end.  False when empty.
  bool pop(int& out) {
    const auto b = bottom_.load(std::memory_order_relaxed) - 1;
    bottom_.store(b, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    auto t = top_.load(std::memory_order_relaxed);
    bool got = false;
    if (t <= b) {
      out = buf_[std::size_t(b & mask_)].load(std::memory_order_relaxed);
      got = true;
      if (t == b) {
        // Last element: race the thieves for it.
        if (!top_.compare_exchange_strong(t, t + 1,
                                          std::memory_order_seq_cst,
                                          std::memory_order_relaxed)) {
          got = false;
        }
        bottom_.store(b + 1, std::memory_order_relaxed);
      }
    } else {
      bottom_.store(b + 1, std::memory_order_relaxed);
    }
    return got;
  }

  /// Any thief: take from the FIFO end.  False on empty or a lost race
  /// (callers retry their victim scan).
  bool steal(int& out) {
    auto t = top_.load(std::memory_order_acquire);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    const auto b = bottom_.load(std::memory_order_acquire);
    if (t >= b) return false;
    out = buf_[std::size_t(t & mask_)].load(std::memory_order_relaxed);
    return top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                        std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> top_{0};
  std::atomic<std::int64_t> bottom_{0};
  std::unique_ptr<std::atomic<int>[]> buf_;
  std::int64_t mask_ = 0;
};

/// Per-cell delivery state: completions park here until every lower seed
/// has drained, keeping consume() calls in seed order.  A failed run parks
/// nullopt so the order still advances past it.  The buffer stays
/// O(threads) in practice: owners walk their slice in increasing job
/// order, so only stolen tail jobs arrive early.
struct CellState {
  std::mutex mu;
  int next_run = 0;
  std::map<int, std::optional<RunTrace>> pending;
};

}  // namespace

SweepSpec& SweepSpec::axis(std::string name, std::vector<AxisValue> values) {
  axes.push_back({std::move(name), std::move(values)});
  return *this;
}

std::vector<SweepCell> SweepSpec::cells() const {
  std::vector<SweepCell> out;
  out.push_back({"", base});
  for (const SweepAxis& ax : axes) {
    std::vector<SweepCell> next;
    next.reserve(out.size() * ax.values.size());
    for (const SweepCell& cell : out) {
      for (const AxisValue& v : ax.values) {
        SweepCell c = cell;
        if (!c.label.empty()) c.label += ' ';
        c.label += ax.name;
        c.label += '=';
        c.label += v.label;
        if (v.apply) v.apply(c.scenario);
        next.push_back(std::move(c));
      }
    }
    out = std::move(next);
  }
  return out;
}

std::vector<SweepFailure> sweep_jobs(
    const std::vector<SweepCell>& cells, const SweepOptions& opts,
    const std::function<void(std::size_t, int, RunTrace&&)>& consume) {
  if (opts.runs <= 0) {
    throw std::invalid_argument("SweepOptions: runs must be > 0 (got " +
                                std::to_string(opts.runs) + ")");
  }
  if (cells.empty()) return {};
  // Fail nonsensical configs on the calling thread, before spawning workers.
  for (const SweepCell& c : cells) c.scenario.validate();

  const int runs = opts.runs;
  const int total = int(cells.size()) * runs;

  unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 4;
  const int threads =
      std::max(1, std::min(opts.threads > 0 ? opts.threads : int(hw), total));

  std::vector<CellState> states(cells.size());
  std::vector<SweepFailure> failures;
  std::mutex failures_mu;

  std::atomic<int> done{0};
  std::mutex progress_mu;
  int reported = 0;  // guarded by progress_mu: keeps calls strictly 1..total

  auto report_one = [&] {
    done.fetch_add(1, std::memory_order_release);
    if (!opts.progress) return;
    std::lock_guard lk(progress_mu);
    ++reported;
    try {
      opts.progress(reported, total);
    } catch (...) {
      // A throwing progress callback must not kill a worker thread.
    }
  };

  auto deliver = [&](int job, std::optional<RunTrace>&& trace) {
    const auto cell = std::size_t(job) / std::size_t(runs);
    CellState& st = states[cell];
    {
      std::lock_guard lk(st.mu);
      st.pending.emplace(job % runs, std::move(trace));
      for (auto it = st.pending.find(st.next_run); it != st.pending.end();
           it = st.pending.find(st.next_run)) {
        if (it->second.has_value()) {
          consume(cell, st.next_run, std::move(*it->second));
        }
        st.pending.erase(it);  // the trace dies here — nothing accumulates
        ++st.next_run;
      }
    }
    report_one();
  };

  auto execute = [&](int job) {
    const auto cell = std::size_t(job) / std::size_t(runs);
    const int run = job % runs;
    const std::uint64_t seed = cells[cell].scenario.seed + std::uint64_t(run);
    std::optional<RunTrace> trace;
    try {
      Scenario sc = cells[cell].scenario;
      sc.seed = seed;
      Testbed bed(sc);
      trace = bed.run();
    } catch (const std::exception& e) {
      std::lock_guard lk(failures_mu);
      failures.push_back({cell, cells[cell].label, seed, e.what()});
    } catch (...) {
      std::lock_guard lk(failures_mu);
      failures.push_back({cell, cells[cell].label, seed, "unknown exception"});
    }
    deliver(job, std::move(trace));
  };

  // One deque per worker, seeded with a contiguous slice of the flat
  // cell-major job list.  Slices are pushed in reverse so the owner's LIFO
  // pop walks its seeds in increasing order (keeping each cell's reorder
  // buffer small) while thieves bite the far end of a straggler's slice.
  std::vector<std::unique_ptr<WorkDeque>> deques;
  deques.reserve(std::size_t(threads));
  for (int w = 0; w < threads; ++w) {
    const int lo = int(std::int64_t(total) * w / threads);
    const int hi = int(std::int64_t(total) * (w + 1) / threads);
    auto dq = std::make_unique<WorkDeque>(std::size_t(hi - lo));
    for (int job = hi - 1; job >= lo; --job) dq->push(job);
    deques.push_back(std::move(dq));
  }

  auto worker = [&](int w) {
    WorkDeque& self = *deques[std::size_t(w)];
    int job = -1;
    for (;;) {
      if (self.pop(job)) {
        execute(job);
        continue;
      }
      bool stolen = false;
      for (int k = 1; k < threads && !stolen; ++k) {
        stolen = deques[std::size_t((w + k) % threads)]->steal(job);
      }
      if (stolen) {
        execute(job);
        continue;
      }
      // Every deque looked empty: remaining jobs (if any) are executing on
      // other workers right now — no new work can appear.
      if (done.load(std::memory_order_acquire) >= total) return;
      std::this_thread::yield();
    }
  };

  if (threads == 1) {
    worker(0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(std::size_t(threads));
    for (int w = 0; w < threads; ++w) pool.emplace_back(worker, w);
    for (auto& t : pool) t.join();
  }

  std::sort(failures.begin(), failures.end(),
            [](const SweepFailure& a, const SweepFailure& b) {
              return a.cell != b.cell ? a.cell < b.cell : a.seed < b.seed;
            });
  return failures;
}

SweepResult run_sweep(std::vector<SweepCell> cells, const SweepOptions& opts) {
  std::vector<ConditionAccumulator> accs;
  accs.reserve(cells.size());
  for (const SweepCell& c : cells) accs.emplace_back(c.scenario);

  const auto failures = sweep_jobs(
      cells, opts,
      [&](std::size_t cell, int, RunTrace&& t) { accs[cell].add(t); });

  if (!failures.empty()) {
    std::ostringstream os;
    os << "run_sweep: " << failures.size() << " of "
       << cells.size() * std::size_t(opts.runs) << " jobs failed:";
    for (const SweepFailure& f : failures) {
      os << "\n  cell '" << f.cell_label << "' seed " << f.seed << ": "
         << f.what;
    }
    throw std::runtime_error(os.str());
  }

  SweepResult res;
  res.results.reserve(accs.size());
  for (ConditionAccumulator& a : accs) res.results.push_back(a.finalize());
  res.cells = std::move(cells);
  return res;
}

SweepResult run_sweep(const SweepSpec& spec, const SweepOptions& opts) {
  return run_sweep(spec.cells(), opts);
}

}  // namespace cgs::core
