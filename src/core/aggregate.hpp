// Cross-run aggregation: mean series with 95% confidence intervals (the
// shaded bands of Figure 2) and per-condition summary statistics.  Two
// entry points share one reduction: the streaming ConditionAccumulator
// (feed traces as they finish, O(1) traces held) and the batch summarize()
// convenience wrapper over it.
#pragma once

#include <vector>

#include "core/collectors.hpp"
#include "core/metrics.hpp"
#include "core/scenario.hpp"
#include "util/stats.hpp"

namespace cgs::core {

struct SeriesStats {
  std::vector<double> mean;
  std::vector<double> sd;
  std::vector<double> ci95;  // half-width
};

/// Element-wise aggregation of equal-length series.
[[nodiscard]] SeriesStats aggregate_series(
    const std::vector<std::vector<double>>& runs);

/// SeriesStats view (mean/sd/ci95 per element) of a streaming accumulator.
[[nodiscard]] SeriesStats series_stats(const OnlineSeries& s);

/// Cross-run digest of one flow of the mix.
struct FlowSummaryRow {
  net::FlowId id = 0;
  std::string name;
  FlowKind kind = FlowKind::kBulkTcp;

  SeriesStats series;  // goodput Mb/s per bucket, aggregated across runs

  // Mean goodput over the fairness window: mean/sd across runs.
  double fair_mbps_mean = 0.0;
  double fair_mbps_sd = 0.0;
};

/// Cross-run digest of one topology link.
struct LinkSummaryRow {
  std::string name;

  SeriesStats util;  // delivered Mb/s per bucket, aggregated across runs

  // Mean utilization over the fairness window: mean/sd across runs.
  double util_fair_mean = 0.0;
  double util_fair_sd = 0.0;

  // End-of-run cumulative drops: mean/sd across runs.
  double drops_mean = 0.0;
  double drops_sd = 0.0;

  // Peak sampled queue depth in bytes, averaged across runs.
  double peak_depth_mean = 0.0;
};

/// Cross-run digest of a cell's fluid fleet (hybrid-fidelity runs);
/// active stays false for fleet-free cells.
struct FleetSummary {
  bool active = false;

  // Population bitrate percentiles (per-run digests): mean/sd across runs.
  double p50_mean = 0.0, p50_sd = 0.0;
  double p95_mean = 0.0, p95_sd = 0.0;
  double p99_mean = 0.0, p99_sd = 0.0;
  double mean_mbps_mean = 0.0, mean_mbps_sd = 0.0;

  // Stall rate and population Jain: mean/sd across runs.
  double stall_mean = 0.0, stall_sd = 0.0;
  double jain_mean = 0.0, jain_sd = 0.0;

  // Churn digests, averaged across runs.
  double peak_sessions_mean = 0.0;
  double arrivals_mean = 0.0;
  double departures_mean = 0.0;
};

/// Everything the benches need about one grid cell.
struct ConditionResult {
  Scenario scenario;
  int runs = 0;

  SeriesStats game;  // bitrate Mb/s per 0.5 s bucket
  SeriesStats tcp;

  /// Per-flow digests, in mix order (the N-flow generalisation of
  /// game/tcp above).
  std::vector<FlowSummaryRow> flow_rows;

  /// Per-link digests, in topology link order.
  std::vector<LinkSummaryRow> link_rows;

  /// N-flow Jain index over the fairness window (ping excluded): mean/sd
  /// across runs.
  double jain_mean = 0.0;
  double jain_sd = 0.0;

  // Fairness ratio: mean/sd across runs (Fig 3 cell value).
  double fairness_mean = 0.0;
  double fairness_sd = 0.0;
  // Mean bitrates over the fairness window (220-370 s).
  double game_fair_mbps = 0.0;
  double tcp_fair_mbps = 0.0;

  // Response/recovery computed on the mean game series (Fig 4 inputs).
  ResponseRecovery rr;

  // Ping RTT over the measurement window, aggregated across runs
  // (Tables 3/4: mean with sd of all samples).
  double rtt_mean_ms = 0.0;
  double rtt_sd_ms = 0.0;

  // Display frame rate over the measurement window (Table 5).
  double fps_mean = 0.0;
  double fps_sd = 0.0;

  // Game packet loss fraction over the measurement window (§4.3).
  double loss_mean = 0.0;

  // Steady-state game bitrate (Table 1 and solo baselines).
  double steady_mean_mbps = 0.0;
  double steady_sd_mbps = 0.0;

  // Fleet population digest (hybrid-fidelity cells).
  FleetSummary fleet;
};

/// Streaming per-condition reducer: feed each RunTrace the moment its run
/// finishes and discard it — nothing but O(buckets) Welford state is
/// retained, so a whole grid sweep holds O(cells) memory instead of
/// O(cells x runs x samples).  Feeding traces in seed order makes
/// finalize() bit-identical to batch summarize() over the same traces (any
/// other order changes floating-point rounding only); the sweep engine
/// guarantees that order.
class ConditionAccumulator {
 public:
  explicit ConditionAccumulator(Scenario scenario);

  /// Fold one run's trace into the condition digest.
  void add(const RunTrace& t);

  /// Number of traces folded so far.
  [[nodiscard]] int runs() const { return runs_; }

  /// Digest of everything added so far.
  [[nodiscard]] ConditionResult finalize() const;

 private:
  struct FlowRowAcc {
    net::FlowId id = 0;
    std::string name;
    FlowKind kind = FlowKind::kBulkTcp;
    OnlineSeries series;
    OnlineStats fair_win;
  };
  struct LinkRowAcc {
    std::string name;
    OnlineSeries util;
    OnlineStats fair_win;
    OnlineStats drops;
    OnlineStats peak_depth;
  };

  Scenario sc_;
  int runs_ = 0;
  Time ival_ = kTimeZero;  // sample interval, captured from the first trace

  OnlineSeries game_, tcp_;
  std::vector<FlowRowAcc> flow_rows_;  // shaped by the first trace's mix
  std::vector<LinkRowAcc> link_rows_;  // shaped by the first trace's links
  OnlineStats jain_, fair_, fps_, loss_, steady_, gfair_, tfair_;
  OnlineStats rtt_all_;  // pooled RTT samples across runs

  // Fleet digests, folded only from traces with an active fleet.
  bool fleet_active_ = false;
  OnlineStats fp50_, fp95_, fp99_, fmean_, fstall_, fjain_;
  OnlineStats fpeak_, farr_, fdep_;
};

/// Digest per-run traces into a ConditionResult (batch path: delegates to
/// a ConditionAccumulator fed in trace order).
[[nodiscard]] ConditionResult summarize(const Scenario& scenario,
                                        const std::vector<RunTrace>& traces);

}  // namespace cgs::core
