// The paper's derived metrics (§4.1–§4.2): fairness ratio, response /
// recovery times, and the combined adaptiveness score.
#pragma once

#include <vector>

#include "core/collectors.hpp"
#include "core/scenario.hpp"
#include "util/units.hpp"

namespace cgs::core {

// Analysis windows from §4.1/§4.2, relative to the schedule constants.
struct AnalysisWindows {
  Time original_from = std::chrono::seconds(125);  // pre-TCP baseline
  Time original_to = std::chrono::seconds(185);
  Time settled_from = std::chrono::seconds(310);   // adjusted-to-TCP level
  Time settled_to = std::chrono::seconds(370);
  Time fairness_from = std::chrono::seconds(220);  // §4.1, skips response
  Time fairness_to = std::chrono::seconds(370);
  Time recovery_limit = std::chrono::seconds(185); // max measurable recovery
};

/// (game - tcp) / capacity over the fairness window; in [-1, 1].
[[nodiscard]] double fairness_ratio(const std::vector<double>& game_mbps,
                                    const std::vector<double>& tcp_mbps,
                                    Time sample_interval, Bandwidth capacity,
                                    const AnalysisWindows& w = {});

struct ResponseRecovery {
  double response_s = 0.0;  // C: time to contract after TCP arrival
  double recovery_s = 0.0;  // E: time to expand after TCP departure
  bool responded = false;   // false: never reached the adjusted band
  bool recovered = false;   // false: never reached the original band
};

/// §4.2 definitions, computed on a (mean) bitrate series: response time is
/// the first time after tcp_start at which the short-window average bitrate
/// is within one sd of the settled level; recovery analogously after
/// tcp_stop vs the original level.  Unreached bands are clamped to the
/// window length with responded/recovered = false.
[[nodiscard]] ResponseRecovery response_recovery(
    const std::vector<double>& game_mbps, Time sample_interval,
    Time tcp_start, Time tcp_stop, const AnalysisWindows& w = {});

/// A = 1/2 (1 - C/Cmax) + 1/2 (1 - E/Emax).
[[nodiscard]] double adaptiveness(const ResponseRecovery& rr, double c_max_s,
                                  double e_max_s);

/// Jain's fairness index over per-flow throughputs (extra metric used by
/// the TCP-vs-TCP ablation).
[[nodiscard]] double jain_index(const std::vector<double>& throughputs);

/// Mean per-flow goodput over [from, to) for every throughput-bearing flow
/// of the mix (game streams and bulk TCP; ping probes excluded), in
/// RunTrace flow order.
[[nodiscard]] std::vector<double> flow_throughputs_mbps(const RunTrace& t,
                                                        Time from, Time to);

/// N-flow Jain's fairness index over the fairness window: jain_index of
/// flow_throughputs_mbps.  1.0 = perfectly even split across game + TCP
/// flows; 1/N = one flow starves all others.
[[nodiscard]] double jain_index(const RunTrace& t,
                                const AnalysisWindows& w = {});

/// Harm (Ware et al., HotNets 2019; paper §5 future work): the fraction of
/// a flow's solo performance destroyed by a competitor.  For "more is
/// better" metrics (throughput): (solo - with) / solo.  Clamped to [0, 1];
/// 0 when solo is not positive.
[[nodiscard]] double harm_more_is_better(double solo, double with_competitor);

/// Harm for "less is better" metrics (delay, loss): (with - solo) / with.
[[nodiscard]] double harm_less_is_better(double solo, double with_competitor);

}  // namespace cgs::core
