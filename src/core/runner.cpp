#include "core/runner.hpp"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "core/testbed.hpp"

namespace cgs::core {

std::vector<RunTrace> run_many(const Scenario& scenario,
                               const RunnerOptions& opts) {
  const int n = std::max(1, opts.runs);
  std::vector<RunTrace> traces;
  traces.resize(std::size_t(n));

  unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 4;
  const int threads =
      std::max(1, std::min(opts.threads > 0 ? opts.threads : int(hw), n));

  std::atomic<int> next{0};
  std::atomic<int> done{0};
  std::mutex progress_mu;

  // A Testbed::run() throw inside a std::thread would reach std::terminate;
  // capture the first exception and rethrow it on the joining thread.
  std::exception_ptr first_error;
  std::mutex error_mu;

  auto worker = [&] {
    for (;;) {
      const int i = next.fetch_add(1);
      if (i >= n) return;
      try {
        Scenario sc = scenario;
        sc.seed = scenario.seed + std::uint64_t(i);
        Testbed bed(sc);
        traces[std::size_t(i)] = bed.run();
      } catch (...) {
        std::lock_guard lk(error_mu);
        if (!first_error) first_error = std::current_exception();
        next.store(n);  // stop handing out further runs
        return;
      }
      const int d = done.fetch_add(1) + 1;
      if (opts.progress) {
        std::lock_guard lk(progress_mu);
        opts.progress(d, n);
      }
    }
  };

  if (threads == 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(std::size_t(threads));
    for (int t = 0; t < threads; ++t) pool.emplace_back(worker);
    for (auto& t : pool) t.join();
  }
  if (first_error) std::rethrow_exception(first_error);
  return traces;
}

ConditionResult run_condition(const Scenario& scenario,
                              const RunnerOptions& opts) {
  return summarize(scenario, run_many(scenario, opts));
}

}  // namespace cgs::core
