#include "core/runner.hpp"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/testbed.hpp"

namespace cgs::core {

std::vector<RunTrace> run_many(const Scenario& scenario,
                               const RunnerOptions& opts) {
  if (opts.runs <= 0) {
    throw std::invalid_argument("RunnerOptions: runs must be > 0 (got " +
                                std::to_string(opts.runs) + ")");
  }
  // Fail nonsensical configs on the calling thread, before spawning workers.
  scenario.validate();

  const int n = opts.runs;
  std::vector<RunTrace> traces;
  traces.resize(std::size_t(n));

  unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 4;
  const int threads =
      std::max(1, std::min(opts.threads > 0 ? opts.threads : int(hw), n));

  std::atomic<int> next{0};
  std::atomic<int> done{0};
  std::mutex progress_mu;

  // A Testbed::run() throw inside a std::thread would reach std::terminate.
  // Collect *every* failure with its seed and rethrow after the join, so a
  // fault-injected livelock reads "seed 7 tripped the watchdog", not a
  // hung job or an anonymous first-exception rethrow.
  struct Failure {
    std::uint64_t seed;
    std::string what;
  };
  std::vector<Failure> failures;
  std::mutex failures_mu;

  auto worker = [&] {
    for (;;) {
      const int i = next.fetch_add(1);
      if (i >= n) return;
      const std::uint64_t seed = scenario.seed + std::uint64_t(i);
      try {
        Scenario sc = scenario;
        sc.seed = seed;
        Testbed bed(sc);
        traces[std::size_t(i)] = bed.run();
      } catch (const std::exception& e) {
        std::lock_guard lk(failures_mu);
        failures.push_back({seed, e.what()});
        continue;  // keep draining the remaining runs
      } catch (...) {
        std::lock_guard lk(failures_mu);
        failures.push_back({seed, "unknown exception"});
        continue;
      }
      const int d = done.fetch_add(1) + 1;
      if (opts.progress) {
        std::lock_guard lk(progress_mu);
        try {
          opts.progress(d, n);
        } catch (...) {
          // A throwing progress callback must not kill a worker thread (it
          // would strand the remaining runs); reporting is best-effort.
        }
      }
    }
  };

  if (threads == 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(std::size_t(threads));
    for (int t = 0; t < threads; ++t) pool.emplace_back(worker);
    for (auto& t : pool) t.join();
  }

  if (!failures.empty()) {
    // Workers race, so sort by seed for a stable, scannable message.
    std::sort(failures.begin(), failures.end(),
              [](const Failure& a, const Failure& b) { return a.seed < b.seed; });
    std::ostringstream os;
    os << "run_many: " << failures.size() << " of " << n
       << " runs failed:";
    for (const Failure& f : failures) {
      os << "\n  seed " << f.seed << ": " << f.what;
    }
    throw std::runtime_error(os.str());
  }
  return traces;
}

ConditionResult run_condition(const Scenario& scenario,
                              const RunnerOptions& opts) {
  return summarize(scenario, run_many(scenario, opts));
}

}  // namespace cgs::core
