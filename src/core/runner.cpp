#include "core/runner.hpp"

#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/sweep.hpp"

namespace cgs::core {
namespace {

/// A run_many-style condition is a one-cell sweep.
std::vector<SweepCell> one_cell(const Scenario& scenario) {
  std::vector<SweepCell> cells(1);
  cells[0].label = scenario.label();
  cells[0].scenario = scenario;
  return cells;
}

SweepOptions to_sweep_options(const RunnerOptions& opts) {
  if (opts.runs <= 0) {
    throw std::invalid_argument("RunnerOptions: runs must be > 0 (got " +
                                std::to_string(opts.runs) + ")");
  }
  SweepOptions sopts;
  sopts.runs = opts.runs;
  sopts.threads = opts.threads;
  sopts.progress = opts.progress;
  return sopts;
}

[[noreturn]] void throw_failures(const char* fn, const SweepReport& report,
                                 int n) {
  std::ostringstream os;
  os << fn << ": " << report.failed() << " of " << n << " runs failed:";
  for (const SweepFailure& f : report.failures) {
    os << "\n  seed " << f.seed << ": " << f.what;
  }
  if (report.failures_suppressed > 0) {
    os << "\n  ... and " << report.failures_suppressed << " more";
  }
  throw std::runtime_error(os.str());
}

}  // namespace

std::vector<RunTrace> run_many(const Scenario& scenario,
                               const RunnerOptions& opts) {
  const SweepOptions sopts = to_sweep_options(opts);
  std::vector<RunTrace> traces(std::size_t(opts.runs));
  const auto report = sweep_jobs(
      one_cell(scenario), sopts, [&](std::size_t, int run, RunTrace&& t) {
        traces[std::size_t(run)] = std::move(t);
      });
  if (report.failed() != 0) throw_failures("run_many", report, opts.runs);
  return traces;
}

ConditionResult run_condition(const Scenario& scenario,
                              const RunnerOptions& opts) {
  const SweepOptions sopts = to_sweep_options(opts);
  // Streaming path: each trace is folded and freed as its run finishes;
  // the seed-order delivery contract makes this bit-identical to
  // summarize(scenario, run_many(scenario, opts)).
  ConditionAccumulator acc(scenario);
  const auto report =
      sweep_jobs(one_cell(scenario), sopts,
                 [&](std::size_t, int, RunTrace&& t) { acc.add(t); });
  if (report.failed() != 0) throw_failures("run_condition", report, opts.runs);
  return acc.finalize();
}

}  // namespace cgs::core
