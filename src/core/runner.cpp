#include "core/runner.hpp"

#include <atomic>
#include <mutex>
#include <thread>
#include <vector>

#include "core/testbed.hpp"

namespace cgs::core {

std::vector<RunTrace> run_many(const Scenario& scenario,
                               const RunnerOptions& opts) {
  const int n = std::max(1, opts.runs);
  std::vector<RunTrace> traces;
  traces.resize(std::size_t(n));

  unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 4;
  const int threads =
      std::max(1, std::min(opts.threads > 0 ? opts.threads : int(hw), n));

  std::atomic<int> next{0};
  std::atomic<int> done{0};
  std::mutex progress_mu;

  auto worker = [&] {
    for (;;) {
      const int i = next.fetch_add(1);
      if (i >= n) return;
      Scenario sc = scenario;
      sc.seed = scenario.seed + std::uint64_t(i);
      Testbed bed(sc);
      traces[std::size_t(i)] = bed.run();
      const int d = done.fetch_add(1) + 1;
      if (opts.progress) {
        std::lock_guard lk(progress_mu);
        opts.progress(d, n);
      }
    }
  };

  if (threads == 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(std::size_t(threads));
    for (int t = 0; t < threads; ++t) pool.emplace_back(worker);
    for (auto& t : pool) t.join();
  }
  return traces;
}

ConditionResult run_condition(const Scenario& scenario,
                              const RunnerOptions& opts) {
  return summarize(scenario, run_many(scenario, opts));
}

}  // namespace cgs::core
