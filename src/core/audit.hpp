// Simulation invariant auditor.
//
// An observer-only sniffer subscriber on the bottleneck link that checks,
// at every queue event, the conservation laws the simulation must obey:
// bytes that arrived at the bottleneck either got dropped, got
// transmitted, or are still sitting in the queue — exactly.  It also
// bounds queue occupancy by the configured capacity, keeps per-flow
// counters sane (a flow can never drop or transmit more than arrived),
// and — when the path has no reordering impairment — checks that RTP
// sequence numbers leave the bottleneck strictly increasing per flow.
//
// The auditor only *reads* packets from the sniffer taps: it draws no RNG
// values and schedules no events, so traces are bit-identical with the
// audit on or off.  A violated invariant throws InvariantViolation with
// the sim-time and flow baked into its context, turning a silent
// accounting bug into a classified, replayable sweep failure.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>

#include "core/error.hpp"
#include "net/link.hpp"
#include "util/units.hpp"

namespace cgs::core {

class SimAuditor {
 public:
  struct Options {
    /// Queue capacity bound; ByteSize(0) skips the upper-bound check
    /// (fq_codel reports aggregate occupancy across sub-queues).
    ByteSize queue_capacity{0};
    /// Check per-flow RTP sequence monotonicity at the bottleneck's
    /// transmitter.  Must be off when the downstream path can duplicate or
    /// reorder (netem-style impairment) — those violations are legitimate.
    bool check_sequences = true;
    // Failure context, stamped into any InvariantViolation thrown.
    std::string cell_label;
    std::uint64_t seed = 0;
  };

  explicit SimAuditor(Options opts) : opts_(std::move(opts)) {}
  SimAuditor(const SimAuditor&) = delete;
  SimAuditor& operator=(const SimAuditor&) = delete;

  /// Subscribe to `link`'s sniffer taps.  The link must outlive the
  /// auditor's last callback (the testbed owns both).
  void attach(net::Link& link);

  /// End-of-run settlement: whatever arrived and was neither dropped nor
  /// transmitted must still be queued, and the link cannot have delivered
  /// more packets than the auditor saw transmitted.
  void final_check() const;

  /// Total invariant evaluations so far (tests assert the audit actually
  /// ran; ~4 per packet event).
  [[nodiscard]] std::uint64_t checks_run() const { return checks_; }

  [[nodiscard]] ByteSize arrived_bytes() const { return arrived_; }
  [[nodiscard]] ByteSize dropped_bytes() const { return dropped_; }
  [[nodiscard]] ByteSize transmitted_bytes() const { return transmitted_; }

 private:
  struct FlowState {
    ByteSize arrived{0};
    ByteSize dropped{0};
    ByteSize transmitted{0};
    bool saw_rtp = false;
    std::uint32_t last_rtp_seq = 0;
  };

  void on_arrival(const net::Packet& p, Time t);
  void on_drop(const net::Packet& p, Time t);
  void on_transmit(const net::Packet& p, Time t);
  void check_occupancy(Time t, net::FlowId flow);
  void check_flow(const FlowState& st, net::FlowId flow, Time t);
  [[noreturn]] void fail(const std::string& msg, Time t,
                         net::FlowId flow) const;

  Options opts_;
  const net::Link* link_ = nullptr;

  ByteSize arrived_{0};
  ByteSize dropped_{0};
  ByteSize transmitted_{0};
  std::uint64_t transmitted_pkts_ = 0;
  mutable std::uint64_t checks_ = 0;
  std::unordered_map<net::FlowId, FlowState> flows_;
};

}  // namespace cgs::core
