// Sweep engine: one persistent work-stealing worker pool over a whole
// parameter grid.
//
// The paper's artifacts (Fig 2-4, Tables 1/3-5) are grids of
// (system x CC algo x queue size x rate limit) cells, each averaged over
// many seeded runs.  A SweepSpec cross-products axes into a flat list of
// (cell, seed) jobs executed by one chase-lev-style work-stealing pool
// shared across all cells — no per-cell fork/join barrier, so late
// stragglers in one cell overlap with the next cell's runs.  Each finished
// RunTrace is folded into its cell's streaming ConditionAccumulator and
// freed immediately, bounding peak memory at O(cells + in-flight runs).
//
// Determinism contract: job (cell, i) runs Testbed(cell.scenario with
// seed = cell.scenario.seed + i) — exactly the per-seed derivation
// run_many has always used — and per-cell delivery is serialized in seed
// order (an internal reorder buffer parks out-of-order completions), so
// the streaming ConditionResult is bit-identical to batch summarize() over
// the same traces regardless of thread count or steal schedule.
//
// Crash safety: run_sweep can journal every finished (cell, seed) job to
// an append-only file (SweepOptions::journal_path, core/journal.hpp) and,
// on restart against the same grid, preload the journaled results instead
// of re-running them — folding them through the same seed-order delivery
// path, so a resumed sweep's ConditionResult is bit-identical to an
// uninterrupted one.  A stop flag (SweepOptions::stop) drains gracefully:
// in-flight jobs finish and are journaled, queued jobs stay queued, and
// the partial result comes back marked interrupted.
//
// Fault isolation: with SweepOptions::isolation = kForked each job runs in
// a fork()ed child under per-job rlimits and a wall-clock deadline
// (core/proc.hpp), so a segfault, OOM, or wedge kills one child instead of
// the sweep.  The child ships its RunTrace over a pipe via the bit-exact
// journal serialization, and the parent folds it through the same
// seed-order delivery path — forked results are bit-identical to
// in-process ones at any thread count.  A job whose child keeps dying is
// retried with capped jittered backoff and quarantined after
// quarantine_strikes total executions: recorded as a failure, journaled,
// and never run again (resume skips it like any journaled failure).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/aggregate.hpp"
#include "core/error.hpp"
#include "core/proc.hpp"
#include "core/scenario.hpp"

namespace cgs::core {

/// One value of a sweep axis: a display label plus a scenario mutator.
struct AxisValue {
  std::string label;
  std::function<void(Scenario&)> apply;
};

/// One axis of the grid, e.g. "queue" x {0.5, 2, 7}.
struct SweepAxis {
  std::string name;
  std::vector<AxisValue> values;
};

/// One fully-resolved grid cell.
struct SweepCell {
  std::string label;
  Scenario scenario;
};

/// Declarative grid: a base scenario crossed with mutator axes.
struct SweepSpec {
  Scenario base;
  std::vector<SweepAxis> axes;

  /// Append an axis (builder style).
  SweepSpec& axis(std::string name, std::vector<AxisValue> values);

  /// Cross product in row-major order (last axis fastest).  Labels join as
  /// "name=value name=value"; no axes yields the base scenario as one cell.
  [[nodiscard]] std::vector<SweepCell> cells() const;
};

/// One failed (cell, seed) job, classified for triage.
struct SweepFailure {
  std::size_t cell = 0;  // index into the cell list
  std::string cell_label;
  std::uint64_t seed = 0;
  std::string what;
  ErrorClass cls = ErrorClass::kUnclassified;
  Time sim_time = kTimeInfinite;  // kTimeInfinite = not known
  net::FlowId flow = 0;           // 0 = not flow-specific
  int attempts = 1;               // executions including retries
  /// Forked isolation only: the job kept killing its worker process and
  /// exhausted its quarantine strikes — it is recorded as failed and never
  /// executed again this sweep (nor on resume: the journal remembers).
  bool quarantined = false;
};

/// How each (cell, seed) job executes.
enum class Isolation : std::uint8_t {
  /// In the worker thread (the default): fastest, but a crashing or
  /// runaway job takes the whole sweep with it.
  kInProcess,
  /// In a fork()ed child per job under a supervisor (core/proc.hpp): a
  /// poisoned job costs one child, the sweep completes and quarantines it.
  /// Results cross the pipe via the bit-exact RunTrace serialization, so
  /// forked sweeps are bit-identical to in-process ones.
  kForked,
};

/// Throttled cross-thread progress summary (SweepOptions::on_snapshot):
/// one consistent reading of the sweep's counters, emitted at most every
/// snapshot_interval_ms instead of once per job — what a daemon streams to
/// subscribers and a CLI paints without drowning a large grid in per-job
/// callbacks.
struct ProgressSnapshot {
  int total = 0;        // jobs in the grid (cells x runs)
  int finished = 0;     // jobs delivered: successes + failures + preloaded
  int succeeded = 0;    // fresh jobs that produced a trace
  int failed = 0;       // failed jobs, preloaded and fresh
  int skipped = 0;      // jobs restored from a journal
  int retries = 0;      // extra attempts granted
  int quarantined = 0;  // jobs that exhausted their quarantine strikes
  std::size_t cells = 0;           // cells in the grid
  std::size_t cells_finished = 0;  // cells with every job delivered
  /// Set on the one guaranteed last snapshot, emitted when the pool has
  /// drained (complete or interrupted) regardless of the throttle.
  bool final = false;
};

struct SweepOptions {
  int runs = 15;    // seeded repetitions per cell (paper: 15, §3.4)
  int threads = 0;  // 0 = hardware concurrency
  /// Progress callback (completed_jobs, total_jobs) counting successes,
  /// failures AND journal-preloaded jobs, so the final call always reports
  /// (total, total).  Calls are serialized and strictly increasing;
  /// exceptions it throws are counted (SweepReport::progress_errors) and
  /// swallowed — reporting must not kill a worker thread.
  std::function<void(int, int)> progress;

  /// Throttled progress reporting: called with a ProgressSnapshot at most
  /// every snapshot_interval_ms (0 = every delivery), plus exactly once —
  /// final = true — after the pool drains, even when interrupted.  Calls
  /// are serialized with `progress`; exceptions are swallowed and counted
  /// in SweepReport::progress_errors.  Unset costs nothing.
  std::function<void(const ProgressSnapshot&)> on_snapshot;
  std::uint32_t snapshot_interval_ms = 500;

  /// Extra executions granted to *transient* failures (ErrorClass
  /// kUnclassified — foreign exceptions, possibly environmental).
  /// Deterministic simulation failures (watchdog, invariant, scenario)
  /// reproduce identically and are never retried.
  int max_retries = 0;

  // --- fault isolation -----------------------------------------------------

  /// Execution mode; see Isolation.  Defaults to in-process.
  Isolation isolation = Isolation::kInProcess;

  /// Per-job resource caps, applied in the child (forked mode only):
  /// address-space and CPU rlimits plus a supervisor-enforced wall-clock
  /// deadline.  Zero fields are uncapped.
  proc::ResourceLimits limits;

  /// Forked mode only: total executions granted to a job whose child dies
  /// a process death (kCrash / kTimeout / kResource) before the job is
  /// quarantined — recorded as failed, never run again this sweep.
  /// Process deaths are retried at all (unlike deterministic simulation
  /// failures) because they can be environmental: a transient OOM from a
  /// co-tenant, an operator kill, a loaded host missing a deadline.
  int quarantine_strikes = 3;

  /// Backoff between those strikes: capped exponential with deterministic
  /// jitter (proc::backoff_ms), base doubling per attempt up to the max.
  /// base 0 disables the sleep (tests).  Sleeps poll `stop` so a drain
  /// request is honored mid-backoff.
  std::uint32_t backoff_base_ms = 100;
  std::uint32_t backoff_max_ms = 2000;

  /// At most this many SweepFailure records are kept per cell; the rest
  /// are counted (SweepReport::failures_suppressed / cell_failures) but
  /// their messages dropped, bounding memory when a whole cell is sick.
  std::size_t max_failures_per_cell = 8;

  /// Graceful-drain flag: when it reads true, workers finish their
  /// in-flight job and stop pulling new ones.  The sweep returns a partial
  /// result with SweepReport::interrupted set (and, when journaling, every
  /// finished job safely on disk).  Typically flipped by a signal handler.
  const std::atomic<bool>* stop = nullptr;

  /// Called once per *final* failure (after retries are exhausted), from
  /// worker threads but serialized; exceptions it throws are swallowed.
  /// run_sweep uses this to journal failures as they happen.
  std::function<void(const SweepFailure&)> on_failure;

  // --- run_sweep only ------------------------------------------------------

  /// Non-empty enables crash-safe journaling: every finished job is
  /// appended (fsync'd) to this file, and a restart against the same grid
  /// resumes from it instead of re-running finished jobs.  A journal whose
  /// grid fingerprint does not match throws JournalMismatchError.
  std::string journal_path;
  /// fsync each journal record (the crash-safety guarantee).  Turn off
  /// only for benchmarks.
  bool journal_sync = true;
  /// Free-form provenance stored in the journal header (e.g. the CLI
  /// arguments that produced the grid), read back by tools/replay.
  std::string journal_note;

  /// run_sweep: throw std::runtime_error summarizing failures once all
  /// jobs drain (historical behaviour).  When false — or whenever the
  /// sweep was interrupted — run_sweep returns normally and callers read
  /// SweepResult::report for triage.
  bool throw_on_failure = true;
};

/// What happened during one sweep_jobs / run_sweep invocation.
struct SweepReport {
  /// Final failures in (cell, seed) order, at most max_failures_per_cell
  /// records per cell (suppressed ones are still counted below).
  std::vector<SweepFailure> failures;
  /// Total failed jobs per cell (including suppressed records), parallel
  /// to the cell list.
  std::vector<std::size_t> cell_failures;
  /// Failure records dropped by the per-cell cap.
  std::size_t failures_suppressed = 0;

  int total = 0;     // jobs in the grid (cells x runs)
  int finished = 0;  // jobs delivered: successes + failures + preloaded
  int succeeded = 0;  // fresh jobs that produced a trace this invocation
  int skipped = 0;    // jobs satisfied from preloaded/journaled results
  int retries = 0;    // extra attempts: transient retries + forked strikes
  int quarantined = 0;       // jobs that exhausted their quarantine strikes
  int progress_errors = 0;   // progress-callback exceptions swallowed
  bool interrupted = false;  // stop flag drained the pool before the end

  /// Jobs still queued when the pool drained (nonzero only when
  /// interrupted) — what a resume would have left to do.
  [[nodiscard]] int remaining() const { return total - finished; }
  /// Total failed jobs, preloaded and fresh, across all cells.
  [[nodiscard]] std::size_t failed() const {
    std::size_t n = 0;
    for (std::size_t c : cell_failures) n += c;
    return n;
  }
};

/// A previously-finished (cell, run) job fed back into the engine: either
/// a successful trace (delivered through consume in seed order, exactly as
/// if it had just run) or a recorded failure (re-reported, not re-run).
struct PreloadedRun {
  std::size_t cell = 0;
  int run = 0;
  std::optional<RunTrace> trace;        // success payload
  std::optional<SweepFailure> failure;  // recorded failure (no re-run)
};

/// Low-level engine: run every (cell, seed) job of the grid on one shared
/// work-stealing pool.  `consume(cell_index, run_index, trace)` is invoked
/// once per successful run from worker threads; calls for any one cell are
/// serialized and arrive in seed order (failed runs produce no call but
/// still advance the order), interleaved arbitrarily across cells.
/// `preloaded` jobs are delivered first (on the calling thread, in the
/// order given) and their slots never execute.  Every remaining job
/// executes even when others fail — unless opts.stop flips, which drains
/// the pool gracefully.  Failures come back sorted by (cell, seed) in the
/// report.  Throws std::invalid_argument for runs <= 0, an invalid cell
/// scenario, or an out-of-range/duplicate preloaded slot, before any
/// worker spawns.
[[nodiscard]] SweepReport sweep_jobs(
    const std::vector<SweepCell>& cells, const SweepOptions& opts,
    const std::function<void(std::size_t, int, RunTrace&&)>& consume,
    const std::vector<PreloadedRun>& preloaded = {});

/// The sweep's output: one ConditionResult per cell, parallel to `cells`.
struct SweepResult {
  std::vector<SweepCell> cells;
  std::vector<ConditionResult> results;
  SweepReport report;
};

/// Run the whole grid with streaming aggregation (one ConditionAccumulator
/// per cell), journaling and resuming via opts.journal_path when set.
/// With opts.throw_on_failure (the default) a completed sweep with
/// failures throws std::runtime_error listing them (capped per cell); an
/// interrupted sweep always returns normally with report.interrupted set
/// so the partial (journaled) state reaches the caller.
[[nodiscard]] SweepResult run_sweep(std::vector<SweepCell> cells,
                                    const SweepOptions& opts);

/// SweepSpec convenience overload: expand the cross product and run it.
[[nodiscard]] SweepResult run_sweep(const SweepSpec& spec,
                                    const SweepOptions& opts);

}  // namespace cgs::core
