// Sweep engine: one persistent work-stealing worker pool over a whole
// parameter grid.
//
// The paper's artifacts (Fig 2-4, Tables 1/3-5) are grids of
// (system x CC algo x queue size x rate limit) cells, each averaged over
// many seeded runs.  A SweepSpec cross-products axes into a flat list of
// (cell, seed) jobs executed by one chase-lev-style work-stealing pool
// shared across all cells — no per-cell fork/join barrier, so late
// stragglers in one cell overlap with the next cell's runs.  Each finished
// RunTrace is folded into its cell's streaming ConditionAccumulator and
// freed immediately, bounding peak memory at O(cells + in-flight runs).
//
// Determinism contract: job (cell, i) runs Testbed(cell.scenario with
// seed = cell.scenario.seed + i) — exactly the per-seed derivation
// run_many has always used — and per-cell delivery is serialized in seed
// order (an internal reorder buffer parks out-of-order completions), so
// the streaming ConditionResult is bit-identical to batch summarize() over
// the same traces regardless of thread count or steal schedule.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/aggregate.hpp"
#include "core/scenario.hpp"

namespace cgs::core {

/// One value of a sweep axis: a display label plus a scenario mutator.
struct AxisValue {
  std::string label;
  std::function<void(Scenario&)> apply;
};

/// One axis of the grid, e.g. "queue" x {0.5, 2, 7}.
struct SweepAxis {
  std::string name;
  std::vector<AxisValue> values;
};

/// One fully-resolved grid cell.
struct SweepCell {
  std::string label;
  Scenario scenario;
};

/// Declarative grid: a base scenario crossed with mutator axes.
struct SweepSpec {
  Scenario base;
  std::vector<SweepAxis> axes;

  /// Append an axis (builder style).
  SweepSpec& axis(std::string name, std::vector<AxisValue> values);

  /// Cross product in row-major order (last axis fastest).  Labels join as
  /// "name=value name=value"; no axes yields the base scenario as one cell.
  [[nodiscard]] std::vector<SweepCell> cells() const;
};

struct SweepOptions {
  int runs = 15;    // seeded repetitions per cell (paper: 15, §3.4)
  int threads = 0;  // 0 = hardware concurrency
  /// Progress callback (completed_jobs, total_jobs) counting successes AND
  /// failures, so the final call always reports (total, total).  Calls are
  /// serialized and strictly increasing; exceptions it throws are
  /// swallowed — reporting must not kill a worker thread.
  std::function<void(int, int)> progress;
};

/// One failed (cell, seed) job.
struct SweepFailure {
  std::size_t cell = 0;  // index into the cell list
  std::string cell_label;
  std::uint64_t seed = 0;
  std::string what;
};

/// Low-level engine: run every (cell, seed) job of the grid on one shared
/// work-stealing pool.  `consume(cell_index, run_index, trace)` is invoked
/// once per successful run from worker threads; calls for any one cell are
/// serialized and arrive in seed order (failed runs produce no call but
/// still advance the order), interleaved arbitrarily across cells.  Every
/// job executes even when others fail; the failures are returned sorted by
/// (cell, seed) — empty means a clean sweep.  Throws std::invalid_argument
/// for runs <= 0 or an invalid cell scenario, before any worker spawns.
[[nodiscard]] std::vector<SweepFailure> sweep_jobs(
    const std::vector<SweepCell>& cells, const SweepOptions& opts,
    const std::function<void(std::size_t, int, RunTrace&&)>& consume);

/// The sweep's output: one ConditionResult per cell, parallel to `cells`.
struct SweepResult {
  std::vector<SweepCell> cells;
  std::vector<ConditionResult> results;
};

/// Run the whole grid with streaming aggregation (one ConditionAccumulator
/// per cell).  Throws std::runtime_error listing every failed (cell, seed)
/// after all jobs drain.
[[nodiscard]] SweepResult run_sweep(std::vector<SweepCell> cells,
                                    const SweepOptions& opts);

/// SweepSpec convenience overload: expand the cross product and run it.
[[nodiscard]] SweepResult run_sweep(const SweepSpec& spec,
                                    const SweepOptions& opts);

}  // namespace cgs::core
