// Experiment configuration — one cell of the paper's parameter grid
// (Table 2) plus the schedule constants from §3.4.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "net/fluid.hpp"
#include "net/impairment.hpp"
#include "net/packet.hpp"
#include "net/topology.hpp"
#include "stream/profiles.hpp"
#include "tcp/congestion_control.hpp"
#include "util/units.hpp"

namespace cgs::core {

// QueueKind lives with the topology layer now (net/topology.hpp); aliased
// here so existing core::QueueKind spellings keep compiling.
using QueueKind = net::QueueKind;
using net::to_string;

/// Propagation delay of the synthesized default bottleneck link (the
/// router -> clients segment of the paper's Figure 1).
inline constexpr Time kBottleneckProp = std::chrono::milliseconds(1);

/// What kind of traffic source a FlowSpec instantiates.
enum class FlowKind { kGameStream, kBulkTcp, kPing };

[[nodiscard]] std::string_view to_string(FlowKind k);

/// One traffic source in the mix.  The paper's topology is the 3-flow
/// special case (game stream + optional bulk TCP + ping); arbitrary N-flow
/// mixes are built by filling Scenario::flows.
struct FlowSpec {
  FlowKind kind = FlowKind::kBulkTcp;

  /// Stable flow identifier used for routing, per-flow seeds and trace
  /// keys.  0 = auto-assign (first free id in declaration order).
  net::FlowId id = 0;

  /// Report / diagnostic label; empty synthesizes "<kind><index>".
  std::string name;

  /// Game-stream flows: system model; nullopt inherits Scenario::system.
  std::optional<stream::GameSystem> system;

  /// Bulk-tcp flows: congestion control algorithm.
  tcp::CcAlgo algo = tcp::CcAlgo::kCubic;

  /// Activity window.  start == kTimeZero: active from the beginning;
  /// stop == nullopt: active until the end of the run.
  Time start = kTimeZero;
  std::optional<Time> stop;

  /// Extra one-way delay appended to this flow's downstream access path on
  /// top of the scenario-wide base_rtt padding (heterogeneous-RTT mixes).
  Time extra_owd = kTimeZero;

  /// Per-flow upstream impairment override; nullopt inherits
  /// Scenario::impair_up.
  std::optional<net::ImpairmentConfig> impair_up;

  // Convenience factories for the common cases.
  [[nodiscard]] static FlowSpec game_stream(
      std::optional<stream::GameSystem> sys = std::nullopt);
  [[nodiscard]] static FlowSpec bulk_tcp(tcp::CcAlgo algo, Time start,
                                         std::optional<Time> stop);
  [[nodiscard]] static FlowSpec ping();
};

struct Scenario {
  stream::GameSystem system = stream::GameSystem::kStadia;

  /// Bottleneck capacity (paper: 15, 25 or 35 Mb/s; ~1 Gb/s = unconstrained).
  Bandwidth capacity = Bandwidth::mbps(25.0);

  /// Router queue size in multiples of BDP(capacity, base_rtt)
  /// (paper: 0.5, 2 or 7).
  double queue_bdp_mult = 2.0;

  /// Competing bulk TCP flow; nullopt = no competing traffic.  Ignored
  /// (together with tcp_start/tcp_stop) when `flows` is non-empty.
  std::optional<tcp::CcAlgo> tcp_algo = tcp::CcAlgo::kCubic;

  QueueKind queue_kind = QueueKind::kDropTail;

  /// All flows are delay-padded to this base round-trip time (§3.3).
  Time base_rtt = std::chrono::microseconds(16'500);

  // Schedule (§3.4): 9-minute trace, iperf in the middle 3 minutes.
  Time duration = std::chrono::seconds(555);
  Time tcp_start = std::chrono::seconds(185);
  Time tcp_stop = std::chrono::seconds(370);

  std::uint64_t seed = 1;

  /// Custom traffic mix.  Empty = the paper's default 3-flow mix
  /// synthesized from the scalar fields above (game stream id 1 from t=0,
  /// optional bulk TCP id 2 over [tcp_start, tcp_stop), ping id 3).  When
  /// non-empty, the scalar tcp_algo/tcp_start/tcp_stop are ignored.
  std::vector<FlowSpec> flows;

  /// The mix the testbed will instantiate: `flows` with ids/names resolved,
  /// or the synthesized paper-default mix when `flows` is empty.
  [[nodiscard]] std::vector<FlowSpec> effective_flows() const;

  /// Network shape.  Empty = the paper's Figure-1 single bottleneck
  /// synthesized from the scalar fields above (capacity, queue_kind,
  /// queue_bdp_mult, impair_down).  When non-empty, per-link rate/queue
  /// fields govern and the scalar capacity is informational only;
  /// impair_down must stay empty (set topology.links[i].impair instead).
  net::TopologySpec topology;

  /// The topology the testbed will instantiate: `topology` with link names
  /// resolved, or the synthesized single-bottleneck graph (with impair_down
  /// folded into the link) when `topology` is empty.
  [[nodiscard]] net::TopologySpec effective_topology() const;

  /// Fluid background fleet (hybrid fidelity): populations of flyweight
  /// background sessions placed per-link, modeled as aggregate rates on a
  /// coarse tick instead of per-packet endpoints.  Empty (the default) is
  /// a strict no-op — golden traces stay bit-identical.  See
  /// net/fluid.hpp and DESIGN.md "Hybrid fidelity & fleet modeling".
  net::FleetSpec fleet;

  /// Trace-memory policy for large mixes: the collector samples its series
  /// every sample_interval * trace_stride (stride 1 = the historical 500 ms
  /// cadence, golden-identical), and materializes per-flow series for at
  /// most trace_max_flow_series mix flows (0 = all; the remainder fold
  /// into the aggregate tcp_mbps view).
  std::size_t trace_stride = 1;
  std::size_t trace_max_flow_series = 0;

  /// Path impairments — the netem half of the paper's router.  The
  /// downstream stage sits in front of the shared bottleneck link (all
  /// downstream flows pass through it); the upstream spec is instantiated
  /// once per flow on its reverse path.  Defaults are no-ops.
  net::ImpairmentConfig impair_down;
  net::ImpairmentConfig impair_up;

  /// Disables the simulation watchdog when stored in watchdog_event_budget.
  static constexpr std::uint64_t kWatchdogDisabled = ~std::uint64_t{0};

  /// Event budget for the run's watchdog: a run processing more events than
  /// this aborts with a WatchdogError diagnostic instead of spinning (a
  /// fault-injected livelock becomes a test failure, not a hung CI job).
  /// 0 derives a generous duration-proportional budget.
  std::uint64_t watchdog_event_budget = 0;

  /// Wall-clock budget (real seconds) for the run's watchdog: a run that
  /// keeps the host CPU busy longer than this aborts with a WatchdogError
  /// carrying the budget and elapsed time.  Catches wedges the event and
  /// sim-time budgets cannot see — a handler spinning wall time away
  /// inside individual callbacks.  0 (the default) disables it.  This
  /// budget is environmental (it depends on host speed), so it is NOT
  /// mixed into sweep fingerprints and never alters a healthy run's trace.
  double watchdog_wall_budget_s = 0;

  /// Test-only deterministic fault injection: makes a chosen (cell, seed)
  /// job misbehave in a controlled way so the sweep engine's isolation and
  /// quarantine machinery can be exercised by real process deaths instead
  /// of mocks.  kNone (the default) is a strict no-op — a scenario with no
  /// fault produces bit-identical traces to one that never had the field.
  enum class FaultKind : std::uint8_t {
    kNone = 0,
    kCrash = 1,  ///< raise SIGSEGV at run start (fatal signal -> kCrash)
    kOom = 2,    ///< allocate without bound (bad_alloc / RLIMIT_AS / OOM
                 ///< kill -> kResource)
    kSpin = 3,   ///< burn real time in periodic sim events: invisible to
                 ///< event and sim-time budgets, caught by the wall
                 ///< watchdog in-process or the supervisor deadline forked
  };
  struct FaultSpec {
    FaultKind kind = FaultKind::kNone;
    /// Trigger only when the run's seed matches; 0 poisons every seed of
    /// the cell.
    std::uint64_t seed = 0;
  };
  FaultSpec fault;

  /// Invariant-audit policy for the run (byte conservation, queue bounds,
  /// sequence sanity at the bottleneck; see core/audit.hpp).  The auditor
  /// is observer-only — traces are bit-identical with it on or off — so
  /// kAuto enables it in Debug builds and disables it in Release, keeping
  /// benchmark numbers clean while every Debug test run is audited.
  enum class AuditMode : std::uint8_t { kAuto, kOn, kOff };
  AuditMode audit = AuditMode::kAuto;

  /// Optional: replace the profile's rate controller (ablation studies,
  /// custom-controller experiments). Called once per run.
  std::function<std::unique_ptr<stream::RateController>()> controller_override;

  /// Throws std::invalid_argument naming the offending field for
  /// nonsensical configurations (capacity <= 0, tcp_start > tcp_stop, ...).
  /// Testbed validates on construction; call directly to fail earlier.
  void validate() const;

  /// Topology-specific half of validate() (`topology.links[i].field`-named
  /// errors, path resolution, RTT-padding feasibility per flow).
  void validate_topology() const;

  /// Queue capacity in bytes implied by capacity/queue_bdp_mult/base_rtt.
  [[nodiscard]] ByteSize queue_bytes() const;

  /// Human-readable condition label, e.g. "Stadia 25Mb/s 2.0xBDP cubic".
  [[nodiscard]] std::string label() const;
};

/// Knobs for the canonical parking-lot scenario family (N bottlenecks in
/// series, end-to-end primary flows, single-hop cross traffic per hop).
struct ParkingLotParams {
  std::size_t hops = 3;
  Bandwidth hop_rate = Bandwidth::mbps(25.0);
  Time hop_prop = std::chrono::milliseconds(1);
  double queue_bdp_mult = 2.0;

  /// End-to-end primary flows (traverse every hop).
  bool game_flow = true;
  bool ping_flow = true;
  std::size_t bbr_flows = 0;    ///< N-BBR melee participants
  std::size_t cubic_flows = 0;  ///< N-Cubic melee participants

  /// Single-hop cross-traffic TCP flows on each hop.
  std::size_t cross_per_hop = 1;
  tcp::CcAlgo cross_algo = tcp::CcAlgo::kCubic;

  /// Activity window shared by every TCP flow (primary melee + cross).
  Time tcp_start = std::chrono::seconds(30);
  std::optional<Time> tcp_stop;

  Time duration = std::chrono::seconds(90);
  std::uint64_t seed = 1;
};

/// Build a parking-lot Scenario: topology from TopologySpec::parking_lot,
/// explicit flow ids (game=1, then melee TCP, then per-hop cross flows,
/// ping last) and PathSpecs pinning each cross flow to its single hop.
[[nodiscard]] Scenario parking_lot_scenario(const ParkingLotParams& params);

/// Build an asymmetric-access Scenario: the paper's default flow mix over
/// TopologySpec::asymmetric, so upstream ACK/feedback traffic contends on
/// its own constrained "up" link instead of an ideal delay line.
[[nodiscard]] Scenario asymmetric_scenario(Bandwidth down_rate,
                                           Bandwidth up_rate);

/// The paper's grid values.
inline constexpr double kQueueMults[] = {0.5, 2.0, 7.0};
inline constexpr double kCapacitiesMbps[] = {15.0, 25.0, 35.0};
inline constexpr stream::GameSystem kAllSystems[] = {
    stream::GameSystem::kStadia, stream::GameSystem::kGeForce,
    stream::GameSystem::kLuna};

}  // namespace cgs::core
