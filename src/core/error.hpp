// Structured simulation-error taxonomy.
//
// Every failure a sweep job can produce is classified into an ErrorClass so
// the engine can decide mechanically what to do with it: deterministic
// failures (a tripped watchdog, a violated invariant, a nonsensical
// scenario) are recorded and triaged, while unclassified failures — the
// only kind that can plausibly be environmental (OOM, a foreign exception)
// — are eligible for retry.  SimError carries the failure's context
// (cell label, seed, sim-time, flow) as structured fields instead of
// burying them in the what() string.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

#include "net/packet.hpp"
#include "util/units.hpp"

namespace cgs::core {

/// Failure taxonomy for sweep jobs and triage tables.
enum class ErrorClass : std::uint8_t {
  kWatchdog = 0,      // sim::WatchdogError — livelocked run, deterministic
  kInvariant = 1,     // InvariantViolation — conservation/sanity audit trip
  kScenario = 2,      // invalid or inconsistent configuration
  kUnclassified = 3,  // anything else (possibly environmental)
  // Process-level classes reported by the forked-isolation supervisor
  // (core/proc.hpp) — the job's *process* died, not its simulation logic.
  kCrash = 4,     // child killed by a fatal signal (SIGSEGV, SIGABRT, ...)
  kTimeout = 5,   // supervisor wall-clock deadline expired; child SIGKILLed
  kResource = 6,  // resource cap: rlimit kill (SIGXCPU), OOM, bad_alloc
};

[[nodiscard]] std::string_view to_string(ErrorClass c);

/// Classes worth re-running: a deterministic simulation error reproduces
/// identically, so only unclassified (possibly environmental) failures are
/// retried.
[[nodiscard]] constexpr bool is_transient(ErrorClass c) {
  return c == ErrorClass::kUnclassified;
}

/// Process-level failures the forked-mode supervisor observes from outside
/// the child.  Possibly environmental (a loaded machine wedges a wall
/// deadline, memory pressure fails an allocation), so forked sweeps grant
/// them strike-limited retries with backoff before quarantining the job.
[[nodiscard]] constexpr bool is_process_failure(ErrorClass c) {
  return c == ErrorClass::kCrash || c == ErrorClass::kTimeout ||
         c == ErrorClass::kResource;
}

/// Where in the grid/run a failure happened.  Fields default to "unknown":
/// the sweep engine fills cell/seed, the throwing component fills
/// sim_time/flow when it knows them.
struct ErrorContext {
  std::string cell_label;
  std::uint64_t seed = 0;
  Time sim_time = kTimeInfinite;  // kTimeInfinite = not known
  net::FlowId flow = 0;           // 0 = not flow-specific
};

/// Base of the structured error hierarchy.  what() embeds the context;
/// error_class()/context() expose it mechanically.
class SimError : public std::runtime_error {
 public:
  SimError(ErrorClass cls, const std::string& msg, ErrorContext ctx = {});

  [[nodiscard]] ErrorClass error_class() const { return cls_; }
  [[nodiscard]] const ErrorContext& context() const { return ctx_; }

 private:
  ErrorClass cls_;
  ErrorContext ctx_;
};

/// A conservation law or sanity bound the auditor checked did not hold —
/// the run's aggregates cannot be trusted.
class InvariantViolation : public SimError {
 public:
  explicit InvariantViolation(const std::string& msg, ErrorContext ctx = {})
      : SimError(ErrorClass::kInvariant, msg, std::move(ctx)) {}
};

/// A configuration problem detected after validate() — e.g. a journal that
/// does not match the grid being resumed.
class ScenarioError : public SimError {
 public:
  explicit ScenarioError(const std::string& msg, ErrorContext ctx = {})
      : SimError(ErrorClass::kScenario, msg, std::move(ctx)) {}
};

/// Classify an in-flight exception: SimError reports its own class,
/// sim::WatchdogError maps to kWatchdog, std::bad_alloc to kResource,
/// std::invalid_argument / std::logic_error to kScenario, everything else
/// to kUnclassified.
[[nodiscard]] ErrorClass classify(const std::exception& e);

/// Extract whatever structured context the exception carries (sim-time for
/// watchdog errors, full context for SimError); defaults elsewhere.
[[nodiscard]] ErrorContext context_of(const std::exception& e);

/// Decode a journal byte back into an ErrorClass (unknown values map to
/// kUnclassified rather than trusting on-disk data).
[[nodiscard]] ErrorClass error_class_from_byte(std::uint8_t b);

/// Protocol-facing error codes for the sweep service (src/svc): every way
/// the daemon can refuse a request maps to one of these, shipped inside an
/// error frame so a bad submission degrades to a structured reply instead
/// of a dead connection (or a dead daemon).  The byte values are wire
/// format — append, never renumber.
enum class ProtoError : std::uint8_t {
  kNone = 0,
  /// Malformed frame: bad magic, CRC mismatch, oversized length prefix.
  /// The stream cannot be resynchronized, so the session is closed after
  /// the error is sent.
  kBadFrame = 1,
  /// Well-framed but unintelligible request (unknown verb, missing field,
  /// unparseable value).  The session survives.
  kBadRequest = 2,
  /// Named grid the daemon's resolver does not know.
  kUnknownGrid = 3,
  /// Scenario::validate() rejected the submission; the message carries the
  /// field-naming validation error verbatim.
  kInvalidScenario = 4,
  /// Admission queue at capacity: backpressure, not memory growth.  The
  /// error frame carries an advisory retry_after_s.
  kQueueFull = 5,
  /// Job id not present in the store.
  kUnknownJob = 6,
  /// Daemon is draining: no new submissions, existing jobs finish.
  kDraining = 7,
  /// Daemon-side failure (journal I/O, resolver exception) — the request
  /// was fine, the service was not.
  kInternal = 8,
};

[[nodiscard]] std::string_view to_string(ProtoError e);

/// Decode a wire byte back into a ProtoError (unknown values map to
/// kInternal rather than trusting network data).
[[nodiscard]] ProtoError proto_error_from_byte(std::uint8_t b);

}  // namespace cgs::core
