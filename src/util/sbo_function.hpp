// Small-buffer-optimised move-only callable, the event queue's callback type.
//
// std::function heap-allocates for captures beyond ~2 pointers and requires
// copyable targets; simulation callbacks are pushed/popped millions of times
// per run and routinely capture move-only PacketPtrs.  SboFunction stores
// captures up to `Capacity` bytes inline (no allocation) and falls back to
// the heap only for oversized closures, which the hot path never produces.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace cgs::util {

template <std::size_t Capacity = 48,
          std::size_t Align = alignof(std::max_align_t)>
class SboFunction {
 public:
  static constexpr std::size_t kInlineCapacity = Capacity;
  static constexpr std::size_t kInlineAlignment = Align;
  // The heap fallback stores a Fn* in the inline storage.
  static_assert(Capacity >= sizeof(void*) && Align >= alignof(void*));

  SboFunction() = default;

  template <typename F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, SboFunction> &&
             std::is_invocable_r_v<void, std::remove_cvref_t<F>&>)
  SboFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    emplace(std::forward<F>(f));
  }

  SboFunction(SboFunction&& other) noexcept { move_from(other); }

  SboFunction& operator=(SboFunction&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  SboFunction(const SboFunction&) = delete;
  SboFunction& operator=(const SboFunction&) = delete;

  ~SboFunction() { reset(); }

  void operator()() { vt_->invoke(&storage_); }

  [[nodiscard]] explicit operator bool() const { return vt_ != nullptr; }

  /// True when the target lives on the heap (capture larger than Capacity).
  [[nodiscard]] bool heap_allocated() const { return vt_ != nullptr && vt_->heap; }

  void reset() {
    if (vt_ != nullptr) {
      vt_->destroy(&storage_);
      vt_ = nullptr;
    }
  }

 private:
  struct VTable {
    void (*invoke)(void*);
    // Move-construct into dst from src, then destroy src.
    void (*relocate)(void* dst, void* src);
    void (*destroy)(void*);
    bool heap;
  };

  template <typename F>
  void emplace(F&& f) {
    using Fn = std::remove_cvref_t<F>;
    if constexpr (sizeof(Fn) <= Capacity && alignof(Fn) <= Align &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (&storage_) Fn(std::forward<F>(f));
      static constexpr VTable vt{
          [](void* s) { (*std::launder(static_cast<Fn*>(s)))(); },
          [](void* dst, void* src) {
            Fn* from = std::launder(static_cast<Fn*>(src));
            ::new (dst) Fn(std::move(*from));
            from->~Fn();
          },
          [](void* s) { std::launder(static_cast<Fn*>(s))->~Fn(); },
          /*heap=*/false};
      vt_ = &vt;
    } else {
      ::new (&storage_) Fn*(new Fn(std::forward<F>(f)));
      static constexpr VTable vt{
          [](void* s) { (**std::launder(static_cast<Fn**>(s)))(); },
          [](void* dst, void* src) {
            Fn** from = std::launder(static_cast<Fn**>(src));
            ::new (dst) Fn*(*from);
          },
          [](void* s) { delete *std::launder(static_cast<Fn**>(s)); },
          /*heap=*/true};
      vt_ = &vt;
    }
  }

  void move_from(SboFunction& other) noexcept {
    vt_ = other.vt_;
    if (vt_ != nullptr) {
      vt_->relocate(&storage_, &other.storage_);
      other.vt_ = nullptr;
    }
  }

  const VTable* vt_ = nullptr;
  alignas(Align) std::byte storage_[Capacity];
};

}  // namespace cgs::util
