// Strong types for time, data size and bandwidth used throughout cgstream.
//
// The simulation core is integer-only: time is std::chrono::nanoseconds,
// sizes are whole bytes, bandwidth is bits per second.  Conversions that the
// measurement layer needs (seconds as double, Mb/s as double) are explicit.
#pragma once

#include <chrono>
#include <cstdint>
#include <ratio>

namespace cgs {

/// Simulation time. Absolute times are durations since simulation start.
using Time = std::chrono::nanoseconds;

constexpr Time kTimeZero{0};
/// Sentinel for "no time / unset".
constexpr Time kTimeInfinite{std::chrono::nanoseconds::max()};

/// Convert an absolute simulation time to seconds (for reporting only).
constexpr double to_seconds(Time t) {
  return std::chrono::duration<double>(t).count();
}

/// Convert seconds (possibly fractional) to simulation time.
constexpr Time from_seconds(double s) {
  return std::chrono::duration_cast<Time>(std::chrono::duration<double>(s));
}

/// Size of data in whole bytes.
class ByteSize {
 public:
  constexpr ByteSize() = default;
  constexpr explicit ByteSize(std::int64_t bytes) : bytes_(bytes) {}

  [[nodiscard]] constexpr std::int64_t bytes() const { return bytes_; }
  [[nodiscard]] constexpr std::int64_t bits() const { return bytes_ * 8; }
  [[nodiscard]] constexpr double kilobytes() const { return double(bytes_) / 1e3; }
  [[nodiscard]] constexpr double megabytes() const { return double(bytes_) / 1e6; }

  constexpr ByteSize& operator+=(ByteSize o) { bytes_ += o.bytes_; return *this; }
  constexpr ByteSize& operator-=(ByteSize o) { bytes_ -= o.bytes_; return *this; }
  friend constexpr ByteSize operator+(ByteSize a, ByteSize b) { return ByteSize(a.bytes_ + b.bytes_); }
  friend constexpr ByteSize operator-(ByteSize a, ByteSize b) { return ByteSize(a.bytes_ - b.bytes_); }
  friend constexpr ByteSize operator*(ByteSize a, std::int64_t k) { return ByteSize(a.bytes_ * k); }
  friend constexpr ByteSize operator*(std::int64_t k, ByteSize a) { return ByteSize(a.bytes_ * k); }
  friend constexpr auto operator<=>(ByteSize a, ByteSize b) = default;

 private:
  std::int64_t bytes_ = 0;
};

/// Bandwidth in bits per second.
class Bandwidth {
 public:
  constexpr Bandwidth() = default;
  constexpr explicit Bandwidth(std::int64_t bits_per_sec) : bps_(bits_per_sec) {}

  static constexpr Bandwidth bps(std::int64_t v) { return Bandwidth(v); }
  static constexpr Bandwidth kbps(double v) { return Bandwidth(std::int64_t(v * 1e3)); }
  static constexpr Bandwidth mbps(double v) { return Bandwidth(std::int64_t(v * 1e6)); }
  static constexpr Bandwidth gbps(double v) { return Bandwidth(std::int64_t(v * 1e9)); }
  /// Zero bandwidth (meaning: unlimited for links, or "no pacing").
  static constexpr Bandwidth zero() { return Bandwidth(0); }

  [[nodiscard]] constexpr std::int64_t bits_per_sec() const { return bps_; }
  [[nodiscard]] constexpr double megabits_per_sec() const { return double(bps_) / 1e6; }
  [[nodiscard]] constexpr bool is_zero() const { return bps_ == 0; }

  /// Time to serialise `size` at this bandwidth. Requires non-zero bandwidth.
  [[nodiscard]] constexpr Time transmit_time(ByteSize size) const {
    // bits * 1e9 / bps nanoseconds; guard the multiply with __int128.
    const auto ns = (static_cast<__int128>(size.bits()) * 1'000'000'000) / bps_;
    return Time(static_cast<std::int64_t>(ns));
  }

  /// Bytes delivered over `dt` at this bandwidth.
  [[nodiscard]] constexpr ByteSize bytes_over(Time dt) const {
    const auto bits = (static_cast<__int128>(bps_) * dt.count()) / 1'000'000'000;
    return ByteSize(static_cast<std::int64_t>(bits / 8));
  }

  friend constexpr Bandwidth operator*(Bandwidth b, double k) {
    return Bandwidth(std::int64_t(double(b.bps_) * k));
  }
  friend constexpr Bandwidth operator*(double k, Bandwidth b) { return b * k; }
  friend constexpr Bandwidth operator+(Bandwidth a, Bandwidth b) { return Bandwidth(a.bps_ + b.bps_); }
  friend constexpr auto operator<=>(Bandwidth a, Bandwidth b) = default;

 private:
  std::int64_t bps_ = 0;
};

/// Bandwidth-delay product in bytes (rounded down to whole bytes).
constexpr ByteSize bdp(Bandwidth bw, Time rtt) { return bw.bytes_over(rtt); }

/// Rate that delivers `size` over `dt`; zero if dt == 0.
constexpr Bandwidth rate_of(ByteSize size, Time dt) {
  if (dt <= kTimeZero) return Bandwidth::zero();
  const auto bps = (static_cast<__int128>(size.bits()) * 1'000'000'000) / dt.count();
  return Bandwidth(static_cast<std::int64_t>(bps));
}

namespace literals {
constexpr ByteSize operator""_B(unsigned long long v) { return ByteSize(std::int64_t(v)); }
constexpr ByteSize operator""_KB(unsigned long long v) { return ByteSize(std::int64_t(v) * 1'000); }
constexpr ByteSize operator""_MB(unsigned long long v) { return ByteSize(std::int64_t(v) * 1'000'000); }
constexpr Bandwidth operator""_kbps(unsigned long long v) { return Bandwidth(std::int64_t(v) * 1'000); }
constexpr Bandwidth operator""_mbps(unsigned long long v) { return Bandwidth(std::int64_t(v) * 1'000'000); }
constexpr Bandwidth operator""_gbps(unsigned long long v) { return Bandwidth(std::int64_t(v) * 1'000'000'000); }
constexpr Time operator""_sec(unsigned long long v) { return std::chrono::seconds(v); }
constexpr Time operator""_ms(unsigned long long v) { return std::chrono::milliseconds(v); }
constexpr Time operator""_us(unsigned long long v) { return std::chrono::microseconds(v); }
}  // namespace literals

}  // namespace cgs
