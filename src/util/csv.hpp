// Minimal CSV writer used by benches to dump plot-ready data.
#pragma once

#include <fstream>
#include <initializer_list>
#include <string>
#include <string_view>
#include <vector>

namespace cgs {

class CsvWriter {
 public:
  /// Opens `path` for writing; throws std::runtime_error on failure.
  explicit CsvWriter(const std::string& path);

  void header(std::initializer_list<std::string_view> cols);
  /// Dynamic-width variant (per-flow column groups).
  void header(const std::vector<std::string>& cols);
  void row(std::initializer_list<double> values);
  void row(const std::vector<double>& values);
  void row(const std::vector<std::string>& cells);

  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::ofstream out_;
};

/// Escape a cell per RFC 4180 (quotes doubled, wrap when needed).
std::string csv_escape(std::string_view cell);

}  // namespace cgs
