// Growable power-of-two FIFO ring.
//
// std::deque allocates and frees ~512-byte nodes as elements stream through,
// which puts the allocator on the per-packet path of every queue discipline.
// RingBuffer keeps one flat buffer that only ever grows: steady-state
// push/pop recycles the same storage.
#pragma once

#include <cassert>
#include <cstddef>
#include <utility>
#include <vector>

namespace cgs::util {

template <typename T>
class RingBuffer {
 public:
  [[nodiscard]] bool empty() const { return count_ == 0; }
  [[nodiscard]] std::size_t size() const { return count_; }

  [[nodiscard]] T& operator[](std::size_t i) {
    assert(i < count_);
    return buf_[(head_ + i) & mask_];
  }
  [[nodiscard]] const T& operator[](std::size_t i) const {
    assert(i < count_);
    return buf_[(head_ + i) & mask_];
  }
  [[nodiscard]] T& front() { return (*this)[0]; }
  [[nodiscard]] T& back() { return (*this)[count_ - 1]; }

  void push_back(T value) {
    if (count_ == buf_.size()) grow();
    buf_[(head_ + count_++) & mask_] = std::move(value);
  }

  T pop_front() {
    assert(count_ > 0);
    T value = std::move(buf_[head_]);
    buf_[head_] = T{};  // release resources held by the vacated slot
    head_ = (head_ + 1) & mask_;
    --count_;
    return value;
  }

  void clear() {
    while (count_ > 0) (void)pop_front();
  }

 private:
  void grow() {
    const std::size_t cap = buf_.empty() ? 16 : buf_.size() * 2;
    std::vector<T> next(cap);
    for (std::size_t i = 0; i < count_; ++i) next[i] = std::move((*this)[i]);
    buf_ = std::move(next);
    mask_ = cap - 1;
    head_ = 0;
  }

  std::vector<T> buf_;
  std::size_t mask_ = 0;
  std::size_t head_ = 0;
  std::size_t count_ = 0;
};

}  // namespace cgs::util
