// Deterministic pseudo-random number generation for simulations.
//
// PCG32 (O'Neill 2014, pcg-random.org, Apache-2.0 algorithm description):
// small state, excellent statistical quality, fully reproducible across
// platforms — which std::default_random_engine + std::*_distribution are not.
// All distributions are implemented here so a given seed yields a bit-exact
// event sequence on every compiler.
#pragma once

#include <cmath>
#include <cstdint>
#include <numbers>

namespace cgs {

/// SplitMix64 finalizer (Steele et al. 2014): a cheap, high-quality 64-bit
/// mixing function.  Used to derive independent per-component seeds from a
/// master seed without consuming generator state.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// PCG-XSH-RR 64/32 generator.
class Pcg32 {
 public:
  constexpr explicit Pcg32(std::uint64_t seed, std::uint64_t stream = 0xda3e39cb94b95bdbULL)
      : state_(0), inc_((stream << 1u) | 1u) {
    next_u32();
    state_ += seed;
    next_u32();
  }

  constexpr std::uint32_t next_u32() {
    const std::uint64_t old = state_;
    state_ = old * 6364136223846793005ULL + inc_;
    const auto xorshifted = static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
    const auto rot = static_cast<std::uint32_t>(old >> 59u);
    return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
  }

  constexpr std::uint64_t next_u64() {
    return (std::uint64_t(next_u32()) << 32) | next_u32();
  }

  /// Uniform in [0, 1).
  constexpr double next_double() {
    return double(next_u32()) * 0x1p-32;
  }

  /// Uniform integer in [0, bound) with rejection to remove modulo bias.
  constexpr std::uint32_t next_bounded(std::uint32_t bound) {
    if (bound <= 1) return 0;
    const std::uint32_t threshold = (0u - bound) % bound;
    for (;;) {
      const std::uint32_t r = next_u32();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * next_double(); }

  /// Standard normal via Box-Muller (polar-free form; deterministic).
  double normal() {
    // Guard against log(0).
    double u1 = next_double();
    while (u1 <= 0.0) u1 = next_double();
    const double u2 = next_double();
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
  }

  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Lognormal parameterised by the mean/sd of the *resulting* distribution.
  double lognormal_by_moments(double mean, double stddev) {
    const double v = stddev * stddev;
    const double m2 = mean * mean;
    const double sigma2 = std::log(1.0 + v / m2);
    const double mu = std::log(mean) - 0.5 * sigma2;
    return std::exp(normal(mu, std::sqrt(sigma2)));
  }

  double exponential(double mean) {
    double u = next_double();
    while (u <= 0.0) u = next_double();
    return -mean * std::log(u);
  }

  bool bernoulli(double p) { return next_double() < p; }

  /// Derive an independent generator (new stream) for a sub-component.
  Pcg32 fork(std::uint64_t salt) {
    return Pcg32(next_u64() ^ (salt * 0x9e3779b97f4a7c15ULL), next_u64() | 1u);
  }

 private:
  std::uint64_t state_;
  std::uint64_t inc_;
};

}  // namespace cgs
