// Tiny leveled logger. Off by default so million-event simulations stay fast;
// benches/tests flip the level when debugging.
#pragma once

#include <sstream>
#include <string>

namespace cgs {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Global minimum level. Not thread-safe by design: simulations are
/// single-threaded; set once at startup.
void set_log_level(LogLevel level);
LogLevel log_level();

void log_line(LogLevel level, const std::string& msg);

namespace detail {
template <typename... Args>
std::string concat(Args&&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}
}  // namespace detail

template <typename... Args>
void log(LogLevel level, Args&&... args) {
  if (level < log_level()) return;
  log_line(level, detail::concat(std::forward<Args>(args)...));
}

#define CGS_LOG_DEBUG(...) ::cgs::log(::cgs::LogLevel::kDebug, __VA_ARGS__)
#define CGS_LOG_INFO(...) ::cgs::log(::cgs::LogLevel::kInfo, __VA_ARGS__)
#define CGS_LOG_WARN(...) ::cgs::log(::cgs::LogLevel::kWarn, __VA_ARGS__)

}  // namespace cgs
