#include "util/stats.hpp"

#include <algorithm>
#include <array>
#include <cmath>

namespace cgs {

double OnlineStats::stddev() const { return std::sqrt(variance()); }

void OnlineSeries::add(std::span<const double> series) {
  if (runs_ == 0) {
    len_ = series.size();
    stats_.resize(len_);
  } else {
    len_ = std::min(len_, series.size());
  }
  for (std::size_t i = 0; i < len_; ++i) stats_[i].add(series[i]);
  ++runs_;
}

PercentileDigest::PercentileDigest(double lo, double hi, std::size_t bins)
    : lo_(lo),
      hi_(hi > lo ? hi : lo + 1.0),
      width_((hi_ - lo_) / double(bins == 0 ? 1 : bins)),
      bins_(bins == 0 ? 1 : bins, 0) {}

void PercentileDigest::add(double x) {
  const double v = std::clamp(x, lo_, hi_);
  auto b = std::size_t((v - lo_) / width_);
  if (b >= bins_.size()) b = bins_.size() - 1;
  ++bins_[b];
  ++n_;
  sum_ += v;
}

double PercentileDigest::percentile(double p) const {
  if (n_ == 0) return 0.0;
  // Rank of the wanted sample (0-based), then walk the histogram.
  const double rank = std::clamp(p, 0.0, 1.0) * double(n_ - 1);
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < bins_.size(); ++b) {
    if (bins_[b] == 0) continue;
    const auto in_bin = double(bins_[b]);
    if (rank < double(seen) + in_bin) {
      // Interpolate linearly through the bin's width by the rank's
      // position among the bin's samples.
      const double frac = (rank - double(seen) + 0.5) / in_bin;
      return lo_ + (double(b) + std::clamp(frac, 0.0, 1.0)) * width_;
    }
    seen += bins_[b];
  }
  return hi_;
}

double t_critical_95(std::size_t n) {
  if (n < 2) return 0.0;
  const std::size_t df = n - 1;
  // Two-sided 95% t-table; beyond 30 dof the normal value is within 2%.
  static constexpr std::array<double, 31> kTable = {
      0.0,    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262,
      2.228,  2.201,  2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093,
      2.086,  2.080,  2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045,
      2.042};
  if (df < kTable.size()) return kTable[df];
  if (df <= 60) return 2.000;
  if (df <= 120) return 1.980;
  return 1.960;
}

double ci95_halfwidth(const RunningStats& s) {
  if (s.count() < 2) return 0.0;
  return t_critical_95(s.count()) * s.stddev() / std::sqrt(double(s.count()));
}

double mean_of(std::span<const double> xs) {
  RunningStats s;
  for (double x : xs) s.add(x);
  return s.mean();
}

double stddev_of(std::span<const double> xs) {
  RunningStats s;
  for (double x : xs) s.add(x);
  return s.stddev();
}

double percentile_of(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  if (xs.size() == 1) return xs[0];
  const double pos = std::clamp(p, 0.0, 1.0) * double(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, xs.size() - 1);
  const double frac = pos - double(lo);
  return xs[lo] + frac * (xs[hi] - xs[lo]);
}

}  // namespace cgs
