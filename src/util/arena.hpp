// Per-run bump allocator backing slab-style storage (event slots, timer
// wheel nodes, packet chunks).
//
// A run's transient slabs all come from one Arena, so tearing a run down
// costs nothing beyond the owning objects' destructors, and a sweep worker
// can recycle the same blocks across jobs with reset() instead of handing
// pages back to the allocator between every Testbed.  Allocation is a
// pointer bump; blocks grow geometrically and are retained by reset(), so
// a worker's steady state touches the system allocator only while its
// largest job so far is still growing.
//
// The arena never runs destructors: callers must only place trivially
// destructible objects in it, or destroy them explicitly before reset().
// An Arena must outlive every object carved from it (for a Testbed run:
// the arena outlives the Testbed, and reset() happens only between runs).
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <vector>

namespace cgs::util {

class Arena {
 public:
  explicit Arena(std::size_t first_block_bytes = 64 * 1024)
      : next_block_bytes_(first_block_bytes) {}
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  ~Arena() {
    for (const Block& b : blocks_) ::operator delete(b.data, kBlockAlign);
  }

  /// Bump-allocate `bytes` aligned to `align` (align must be a power of
  /// two, at most kBlockAlign).
  void* allocate(std::size_t bytes, std::size_t align) {
    const std::uintptr_t base =
        reinterpret_cast<std::uintptr_t>(cursor_);
    const std::uintptr_t aligned = (base + (align - 1)) & ~(align - 1);
    const std::size_t padded = bytes + std::size_t(aligned - base);
    if (padded > remaining_) return allocate_slow(bytes, align);
    cursor_ += padded;
    remaining_ -= padded;
    used_ += padded;
    return reinterpret_cast<void*>(aligned);
  }

  /// Uninitialised storage for `n` objects of type T. The caller owns
  /// construction and (for non-trivial T) destruction.
  template <typename T>
  [[nodiscard]] T* allocate_array(std::size_t n) {
    static_assert(alignof(T) <= kBlockAlignment);
    return static_cast<T*>(allocate(n * sizeof(T), alignof(T)));
  }

  /// Rewind to empty, retaining every block for reuse. Anything previously
  /// allocated is dead storage from here on.
  void reset() {
    block_index_ = 0;
    used_ = 0;
    if (blocks_.empty()) {
      cursor_ = nullptr;
      remaining_ = 0;
    } else {
      cursor_ = blocks_[0].data;
      remaining_ = blocks_[0].size;
    }
    ++resets_;
  }

  /// Bytes handed out since construction / the last reset (padding
  /// included).
  [[nodiscard]] std::size_t bytes_used() const { return used_; }
  /// Total capacity currently held across all blocks.
  [[nodiscard]] std::size_t bytes_reserved() const {
    std::size_t total = 0;
    for (const Block& b : blocks_) total += b.size;
    return total;
  }
  [[nodiscard]] std::size_t block_count() const { return blocks_.size(); }
  [[nodiscard]] std::uint64_t reset_count() const { return resets_; }

  /// Alignment every block guarantees; the upper bound for allocate().
  static constexpr std::size_t kBlockAlignment = 64;

 private:
  static constexpr std::align_val_t kBlockAlign{kBlockAlignment};

  struct Block {
    std::byte* data = nullptr;
    std::size_t size = 0;
  };

  void* allocate_slow(std::size_t bytes, std::size_t align) {
    // Advance through retained blocks first; carve a fresh geometric block
    // only when none of them fits.
    while (block_index_ + 1 < blocks_.size()) {
      ++block_index_;
      cursor_ = blocks_[block_index_].data;
      remaining_ = blocks_[block_index_].size;
      if (bytes + align <= remaining_) return allocate(bytes, align);
    }
    std::size_t want = next_block_bytes_;
    while (want < bytes + align) want *= 2;
    next_block_bytes_ = want * 2;
    auto* data = static_cast<std::byte*>(::operator new(want, kBlockAlign));
    blocks_.push_back(Block{data, want});
    block_index_ = blocks_.size() - 1;
    cursor_ = data;
    remaining_ = want;
    return allocate(bytes, align);
  }

  std::vector<Block> blocks_;
  std::size_t block_index_ = 0;
  std::byte* cursor_ = nullptr;
  std::size_t remaining_ = 0;
  std::size_t next_block_bytes_;
  std::size_t used_ = 0;
  std::uint64_t resets_ = 0;
};

}  // namespace cgs::util
