// Time-windowed extremum filters and smoothing primitives.
//
// WindowedMaxFilter/WindowedMinFilter keep the extremum of samples whose age
// is within a sliding time window — the structure BBR uses for its max-
// bandwidth (10 RTT) and min-RTT (10 s) estimators.  Implemented as a
// monotonic deque: O(1) amortised update, O(k) space in distinct extrema.
#pragma once

#include <deque>

#include "util/units.hpp"

namespace cgs {

namespace detail {

template <typename V, typename Better>
class WindowedExtremumFilter {
 public:
  explicit WindowedExtremumFilter(Time window) : window_(window) {}

  void set_window(Time window) { window_ = window; }
  [[nodiscard]] Time window() const { return window_; }

  /// Insert a sample observed at `now`; evicts samples older than the window.
  void update(V value, Time now) {
    // Drop samples that the new one dominates (they can never be the
    // extremum again while `value` is in the window).
    while (!samples_.empty() && !Better{}(samples_.back().value, value)) {
      samples_.pop_back();
    }
    samples_.push_back({value, now});
    expire(now);
  }

  /// Remove samples older than the window as of `now`.
  void expire(Time now) {
    while (!samples_.empty() && now - samples_.front().at > window_) {
      samples_.pop_front();
    }
  }

  [[nodiscard]] bool empty() const { return samples_.empty(); }

  /// Current extremum. Requires !empty().
  [[nodiscard]] V get() const { return samples_.front().value; }

  [[nodiscard]] V get_or(V fallback) const {
    return samples_.empty() ? fallback : samples_.front().value;
  }

  void reset() { samples_.clear(); }

 private:
  struct Sample {
    V value;
    Time at;
  };
  Time window_;
  std::deque<Sample> samples_;
};

template <typename V>
struct StrictlyGreater {
  bool operator()(const V& a, const V& b) const { return a > b; }
};
template <typename V>
struct StrictlyLess {
  bool operator()(const V& a, const V& b) const { return a < b; }
};

}  // namespace detail

template <typename V>
using WindowedMaxFilter = detail::WindowedExtremumFilter<V, detail::StrictlyGreater<V>>;

template <typename V>
using WindowedMinFilter = detail::WindowedExtremumFilter<V, detail::StrictlyLess<V>>;

/// Exponentially-weighted moving average with fixed gain.
class Ewma {
 public:
  explicit Ewma(double gain) : gain_(gain) {}

  void update(double sample) {
    if (!initialized_) {
      value_ = sample;
      initialized_ = true;
    } else {
      value_ += gain_ * (sample - value_);
    }
  }

  [[nodiscard]] bool initialized() const { return initialized_; }
  [[nodiscard]] double value() const { return value_; }
  [[nodiscard]] double value_or(double fallback) const {
    return initialized_ ? value_ : fallback;
  }
  void reset() { initialized_ = false; value_ = 0.0; }

 private:
  double gain_;
  double value_ = 0.0;
  bool initialized_ = false;
};

/// Sliding-window byte counter: rate of bytes observed over the last window.
/// Used by receivers to estimate delivered bitrate.
class RateMeter {
 public:
  explicit RateMeter(Time window) : window_(window) {}

  void add(ByteSize size, Time now) {
    entries_.push_back({size, now});
    total_ += size;
    expire(now);
  }

  void expire(Time now) {
    while (!entries_.empty() && now - entries_.front().at > window_) {
      total_ -= entries_.front().size;
      entries_.pop_front();
    }
  }

  /// Average rate over the window ending at `now`.
  [[nodiscard]] Bandwidth rate(Time now) {
    expire(now);
    return rate_of(total_, window_);
  }

  [[nodiscard]] ByteSize bytes_in_window() const { return total_; }
  void reset() { entries_.clear(); total_ = ByteSize(0); }

 private:
  struct Entry {
    ByteSize size;
    Time at;
  };
  Time window_;
  std::deque<Entry> entries_;
  ByteSize total_{0};
};

}  // namespace cgs
