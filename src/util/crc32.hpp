// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), table-driven.
//
// Used by the run journal to detect torn or corrupted records: every
// appended record carries a CRC over its own bytes, so a crash mid-write
// is distinguishable from clean data on the next startup.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace cgs::util {

namespace detail {
constexpr std::array<std::uint32_t, 256> make_crc32_table() {
  std::array<std::uint32_t, 256> t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    t[i] = c;
  }
  return t;
}
inline constexpr std::array<std::uint32_t, 256> kCrc32Table =
    make_crc32_table();
}  // namespace detail

/// CRC of `n` bytes at `data`; chain calls by passing the previous result
/// as `seed` (crc32(b, nb, crc32(a, na)) == crc of a||b).
[[nodiscard]] inline std::uint32_t crc32(const void* data, std::size_t n,
                                         std::uint32_t seed = 0) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < n; ++i) {
    c = detail::kCrc32Table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace cgs::util
