#include "util/logging.hpp"

#include <cstdio>

namespace cgs {

namespace {
LogLevel g_level = LogLevel::kOff;

const char* level_name(LogLevel l) {
  switch (l) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level = level; }
LogLevel log_level() { return g_level; }

void log_line(LogLevel level, const std::string& msg) {
  std::fprintf(stderr, "[%s] %s\n", level_name(level), msg.c_str());
}

}  // namespace cgs
