#include "util/csv.hpp"

#include <sstream>
#include <stdexcept>

namespace cgs {

std::string csv_escape(std::string_view cell) {
  const bool needs_quote =
      cell.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quote) return std::string(cell);
  std::string out;
  out.reserve(cell.size() + 2);
  out.push_back('"');
  for (char c : cell) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

CsvWriter::CsvWriter(const std::string& path) : path_(path), out_(path) {
  if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
}

namespace {

template <typename Range>
void write_cells(std::ofstream& out, const Range& cols) {
  bool first = true;
  for (const auto& c : cols) {
    if (!first) out << ',';
    out << csv_escape(c);
    first = false;
  }
  out << '\n';
}

template <typename Range>
void write_values(std::ofstream& out, const Range& values) {
  bool first = true;
  std::ostringstream line;
  line.precision(10);
  for (double v : values) {
    if (!first) line << ',';
    line << v;
    first = false;
  }
  out << line.str() << '\n';
}

}  // namespace

void CsvWriter::header(std::initializer_list<std::string_view> cols) {
  write_cells(out_, cols);
}

void CsvWriter::header(const std::vector<std::string>& cols) {
  write_cells(out_, cols);
}

void CsvWriter::row(std::initializer_list<double> values) {
  write_values(out_, values);
}

void CsvWriter::row(const std::vector<double>& values) {
  write_values(out_, values);
}

void CsvWriter::row(const std::vector<std::string>& cells) {
  bool first = true;
  for (const auto& c : cells) {
    if (!first) out_ << ',';
    out_ << csv_escape(c);
    first = false;
  }
  out_ << '\n';
}

}  // namespace cgs
