#include "util/csv.hpp"

#include <sstream>
#include <stdexcept>

namespace cgs {

std::string csv_escape(std::string_view cell) {
  const bool needs_quote =
      cell.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quote) return std::string(cell);
  std::string out;
  out.reserve(cell.size() + 2);
  out.push_back('"');
  for (char c : cell) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

CsvWriter::CsvWriter(const std::string& path) : path_(path), out_(path) {
  if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
}

void CsvWriter::header(std::initializer_list<std::string_view> cols) {
  bool first = true;
  for (auto c : cols) {
    if (!first) out_ << ',';
    out_ << csv_escape(c);
    first = false;
  }
  out_ << '\n';
}

void CsvWriter::row(std::initializer_list<double> values) {
  bool first = true;
  std::ostringstream line;
  line.precision(10);
  for (double v : values) {
    if (!first) line << ',';
    line << v;
    first = false;
  }
  out_ << line.str() << '\n';
}

void CsvWriter::row(const std::vector<std::string>& cells) {
  bool first = true;
  for (const auto& c : cells) {
    if (!first) out_ << ',';
    out_ << csv_escape(c);
    first = false;
  }
  out_ << '\n';
}

}  // namespace cgs
