// Streaming statistics and confidence intervals for the measurement layer.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace cgs {

/// Welford streaming mean/variance: numerically stable for large-mean
/// low-variance inputs where the textbook E[x^2] - mean^2 form loses the
/// variance to catastrophic cancellation.
class OnlineStats {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / double(n_);
    m2_ += delta * (x - mean_);
  }

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 if fewer than 2 samples.
  [[nodiscard]] double variance() const { return n_ > 1 ? m2_ / double(n_ - 1) : 0.0; }
  [[nodiscard]] double stddev() const;
  void reset() { n_ = 0; mean_ = 0.0; m2_ = 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// Historical name; OnlineStats is the same accumulator.
using RunningStats = OnlineStats;

/// Element-wise Welford over a stream of series, one add() per run: the
/// streaming counterpart of core::aggregate_series.  Ragged inputs truncate
/// to the shortest series seen so far (the batch min-length rule); each
/// surviving element receives every run's sample in add() order, so feeding
/// runs in the same order as the batch path reproduces its output
/// bit-for-bit.
class OnlineSeries {
 public:
  /// Fold one run's series into the per-element accumulators.
  void add(std::span<const double> series);

  /// Number of series folded so far.
  [[nodiscard]] std::size_t runs() const { return runs_; }
  /// Current (min-across-runs) element count; 0 before the first add.
  [[nodiscard]] std::size_t size() const { return len_; }
  [[nodiscard]] const OnlineStats& operator[](std::size_t i) const {
    return stats_[i];
  }

 private:
  std::vector<OnlineStats> stats_;
  std::size_t len_ = 0;
  std::size_t runs_ = 0;
};

/// Fixed-bin streaming percentile digest: O(1) add, O(bins) quantile.
///
/// Samples are clamped into [lo, hi] and counted in equal-width bins;
/// percentile() linearly interpolates within the winning bin, so the
/// worst-case quantile error is one bin width.  This is the population
/// digest for fleet-scale metrics (thousands of per-session samples per
/// tick) where keeping every sample — or even a P² marker set per flow —
/// would defeat the O(cells) memory contract of streaming sweeps.
class PercentileDigest {
 public:
  PercentileDigest(double lo, double hi, std::size_t bins = 256);

  /// Fold one sample (clamped to [lo, hi]).
  void add(double x);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? sum_ / double(n_) : 0.0; }
  /// p in [0,1]; 0 before the first sample.
  [[nodiscard]] double percentile(double p) const;
  [[nodiscard]] double lo() const { return lo_; }
  [[nodiscard]] double hi() const { return hi_; }

 private:
  double lo_;
  double hi_;
  double width_;  // bin width
  std::vector<std::uint64_t> bins_;
  std::uint64_t n_ = 0;
  double sum_ = 0.0;
};

/// Two-sided Student-t critical value at 95% confidence for n-1 dof.
double t_critical_95(std::size_t n);

/// Half-width of the 95% confidence interval of the mean.
double ci95_halfwidth(const OnlineStats& s);

double mean_of(std::span<const double> xs);
double stddev_of(std::span<const double> xs);
/// p in [0,1]; linear interpolation between order statistics.
double percentile_of(std::vector<double> xs, double p);

}  // namespace cgs
