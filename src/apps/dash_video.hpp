// DASH/HLS-style adaptive video-on-demand client — the "competing Netflix
// stream" scenario from the paper's §5 future work.
//
// Models the essential player loop: fetch fixed-duration chunks over TCP at
// a quality picked from a bitrate ladder using a conservative throughput
// estimate; keep the playback buffer near a target; stall when it empties.
// The transport is this library's own TCP (any CcAlgo), using bounded
// transfers with completion callbacks.
#pragma once

#include <functional>
#include <vector>

#include "sim/timer.hpp"
#include "tcp/bulk_app.hpp"
#include "util/filters.hpp"

namespace cgs::apps {

struct DashConfig {
  /// Quality ladder (chunk encoding bitrates).
  std::vector<Bandwidth> ladder = {
      Bandwidth::mbps(1.0),  Bandwidth::mbps(2.5),  Bandwidth::mbps(5.0),
      Bandwidth::mbps(8.0),  Bandwidth::mbps(12.0), Bandwidth::mbps(16.0),
      Bandwidth::mbps(20.0)};
  Time chunk_duration = std::chrono::seconds(4);
  /// Stop requesting when this much playback is buffered.
  Time buffer_target = std::chrono::seconds(20);
  /// Throughput-estimate safety factor for quality selection.
  double safety = 0.8;
  /// EWMA gain for the per-chunk throughput estimate.
  double estimate_gain = 0.4;
};

/// Owns the TCP flow and drives the player loop.
class DashVideoClient {
 public:
  DashVideoClient(sim::Simulator& sim, net::PacketFactory& factory,
                  net::FlowId flow, tcp::CcAlgo algo, DashConfig cfg = {});

  /// Wire the underlying TCP flow (same contract as BulkTcpFlow::attach).
  void attach(net::PacketSink* downstream, net::PacketSink* upstream) {
    flow_.attach(downstream, upstream);
  }

  void start();
  void stop();

  // -- player state / stats -------------------------------------------------
  [[nodiscard]] Time buffer_level(Time now) const;
  [[nodiscard]] int chunks_fetched() const { return chunks_; }
  [[nodiscard]] std::size_t current_quality() const { return quality_; }
  [[nodiscard]] Bandwidth current_ladder_rate() const {
    return cfg_.ladder[quality_];
  }
  /// Total wall-clock time spent stalled (buffer empty while playing).
  [[nodiscard]] Time stall_time(Time now) const;
  [[nodiscard]] Bandwidth estimated_throughput() const {
    return Bandwidth(std::int64_t(estimate_bps_.value_or(0.0)));
  }
  [[nodiscard]] tcp::BulkTcpFlow& flow() { return flow_; }
  /// Mean ladder bitrate over all fetched chunks (video quality proxy).
  [[nodiscard]] Bandwidth mean_quality() const;

 private:
  void maybe_request(Time now);
  void on_chunk_complete(Time requested_at, ByteSize bytes);
  [[nodiscard]] std::size_t pick_quality() const;
  /// Advance the playback/stall clocks to `now`.
  void advance_playback(Time now) const;

  sim::Simulator& sim_;
  DashConfig cfg_;
  tcp::BulkTcpFlow flow_;
  sim::OneShotTimer wakeup_;

  bool running_ = false;
  bool fetching_ = false;
  std::size_t quality_ = 0;
  int chunks_ = 0;
  Ewma estimate_bps_{0.4};

  // Playback model: buffered media and stall accounting, advanced lazily.
  mutable Time buffered_ = kTimeZero;
  mutable Time stalled_total_ = kTimeZero;
  mutable Time last_advance_ = kTimeZero;

  std::int64_t quality_bps_sum_ = 0;
};

}  // namespace cgs::apps
