#include "apps/dash_video.hpp"

#include <algorithm>
#include <cassert>

namespace cgs::apps {

DashVideoClient::DashVideoClient(sim::Simulator& sim,
                                 net::PacketFactory& factory,
                                 net::FlowId flow, tcp::CcAlgo algo,
                                 DashConfig cfg)
    : sim_(sim),
      cfg_(cfg),
      flow_(sim, factory, flow, algo),
      wakeup_(sim, [this] { maybe_request(sim_.now()); }),
      estimate_bps_(cfg.estimate_gain) {
  assert(!cfg_.ladder.empty());
}

void DashVideoClient::start() {
  running_ = true;
  last_advance_ = sim_.now();
  maybe_request(sim_.now());
}

void DashVideoClient::stop() {
  running_ = false;
  wakeup_.cancel();
  flow_.sender().stop();
}

void DashVideoClient::advance_playback(Time now) const {
  const Time dt = now - last_advance_;
  last_advance_ = now;
  if (dt <= kTimeZero) return;
  if (buffered_ >= dt) {
    buffered_ -= dt;
  } else {
    stalled_total_ += dt - buffered_;
    buffered_ = kTimeZero;
  }
}

Time DashVideoClient::buffer_level(Time now) const {
  advance_playback(now);
  return buffered_;
}

Time DashVideoClient::stall_time(Time now) const {
  advance_playback(now);
  return stalled_total_;
}

std::size_t DashVideoClient::pick_quality() const {
  const double budget = estimate_bps_.value_or(
                            double(cfg_.ladder.front().bits_per_sec())) *
                        cfg_.safety;
  std::size_t best = 0;
  for (std::size_t i = 0; i < cfg_.ladder.size(); ++i) {
    if (double(cfg_.ladder[i].bits_per_sec()) <= budget) best = i;
  }
  return best;
}

void DashVideoClient::maybe_request(Time now) {
  if (!running_ || fetching_) return;
  advance_playback(now);

  if (buffered_ >= cfg_.buffer_target) {
    // Buffer full: wake when one chunk's worth has played out.
    wakeup_.arm(cfg_.chunk_duration);
    return;
  }

  quality_ = pick_quality();
  const Bandwidth rate = cfg_.ladder[quality_];
  const ByteSize bytes = rate.bytes_over(cfg_.chunk_duration);
  fetching_ = true;
  const Time requested_at = now;
  flow_.sender().send_bounded(bytes, [this, requested_at, bytes] {
    on_chunk_complete(requested_at, bytes);
  });
}

void DashVideoClient::on_chunk_complete(Time requested_at, ByteSize bytes) {
  const Time now = sim_.now();
  fetching_ = false;
  ++chunks_;
  quality_bps_sum_ += cfg_.ladder[quality_].bits_per_sec();
  const Time took = std::max(now - requested_at, Time(1));
  estimate_bps_.update(double(rate_of(bytes, took).bits_per_sec()));
  advance_playback(now);
  buffered_ += cfg_.chunk_duration;
  maybe_request(now);
}

Bandwidth DashVideoClient::mean_quality() const {
  if (chunks_ == 0) return Bandwidth::zero();
  return Bandwidth(quality_bps_sum_ / chunks_);
}

}  // namespace cgs::apps
