#include "sim/simulator.hpp"

#include <algorithm>
#include <sstream>

namespace cgs::sim {

void Simulator::watchdog_fail(const char* budget) const {
  std::ostringstream os;
  os << "simulation watchdog: " << budget << " exceeded after " << processed_
     << " events at sim time " << to_seconds(now_) << " s with "
     << queue_.size() << " pending events (likely livelock)";
  throw WatchdogError(os.str(), now_, processed_);
}

void Simulator::check_wall_budget() {
  const auto now = std::chrono::steady_clock::now();
  if (!wall_started_) {
    wall_started_ = true;
    wall_start_ = now;
    wall_last_check_ = now;
    wall_countdown_ = wall_interval_;
    return;
  }
  const double elapsed =
      std::chrono::duration<double>(now - wall_start_).count();
  if (elapsed > watchdog_wall_s_) {
    std::ostringstream os;
    os << "simulation watchdog: wall-clock budget of " << watchdog_wall_s_
       << " s exceeded (" << elapsed << " s elapsed) after " << processed_
       << " events at sim time " << to_seconds(now_) << " s with "
       << queue_.size() << " pending events (run is wedged or starved)";
    throw WatchdogError(os.str(), now_, processed_, watchdog_wall_s_, elapsed);
  }
  // Adapt the interval so detection latency tracks the budget, not the
  // per-event cost: slow events pull checks closer, fast events push them
  // apart (bounded, so overhead stays one clock read per <=4096 events).
  const double since_last =
      std::chrono::duration<double>(now - wall_last_check_).count();
  if (since_last < watchdog_wall_s_ / 16) {
    wall_interval_ = std::min(wall_interval_ * 2, kWallIntervalMax);
  } else if (since_last > watchdog_wall_s_ / 8) {
    wall_interval_ = std::max(wall_interval_ / 2, kWallIntervalMin);
  }
  wall_last_check_ = now;
  wall_countdown_ = wall_interval_;
}

EventId Simulator::reschedule_at(EventId id, Time at) {
  return queue_.reschedule(id, std::max(at, now_));
}

EventId Simulator::reschedule_in(EventId id, Time delay) {
  return reschedule_at(id, now_ + std::max(delay, kTimeZero));
}

EventId Simulator::reschedule_current_in(Time delay) {
  return queue_.reschedule_current(now_ + std::max(delay, kTimeZero));
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  now_ = queue_.next_time();
  if (watchdog_events_ != 0 && processed_ >= watchdog_events_) {
    watchdog_fail("event budget");
  }
  if (now_ > watchdog_time_) {
    watchdog_fail("sim-time budget");
  }
  if (wall_armed_ && --wall_countdown_ <= 0) check_wall_budget();
  ++processed_;
  // Runs the callback in place in its slot: no move of the closure, and
  // reschedule_current_in() can re-arm it with zero churn.
  queue_.run_top();
  return true;
}

void Simulator::run_until(Time deadline) {
  stopped_ = false;
  // One next_time() per iteration (step() would peek a second time), and
  // same-deadline packet runs dispatch as one batch.  The watchdog event
  // check can overshoot by up to one batch (≤ PacketBatch::kCapacity − 1
  // events); budgets are sized in millions, so the slack is noise.
  while (!stopped_ && !queue_.empty()) {
    const Time t = queue_.next_time();
    if (t > deadline) break;
    now_ = t;
    if (watchdog_events_ != 0 && processed_ >= watchdog_events_) {
      watchdog_fail("event budget");
    }
    if (now_ > watchdog_time_) {
      watchdog_fail("sim-time budget");
    }
    if (wall_armed_ && wall_countdown_ <= 0) check_wall_budget();
    const std::uint64_t ran = queue_.run_top_batched();
    processed_ += ran;
    wall_countdown_ -= std::int64_t(ran);
  }
  if (now_ < deadline) now_ = deadline;
}

void Simulator::run() {
  stopped_ = false;
  while (!stopped_ && !queue_.empty()) {
    now_ = queue_.next_time();
    if (watchdog_events_ != 0 && processed_ >= watchdog_events_) {
      watchdog_fail("event budget");
    }
    if (now_ > watchdog_time_) {
      watchdog_fail("sim-time budget");
    }
    if (wall_armed_ && wall_countdown_ <= 0) check_wall_budget();
    const std::uint64_t ran = queue_.run_top_batched();
    processed_ += ran;
    wall_countdown_ -= std::int64_t(ran);
  }
}

}  // namespace cgs::sim
