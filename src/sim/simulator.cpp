#include "sim/simulator.hpp"

#include <algorithm>
#include <sstream>

namespace cgs::sim {

void Simulator::watchdog_fail(const char* budget) const {
  std::ostringstream os;
  os << "simulation watchdog: " << budget << " exceeded after " << processed_
     << " events at sim time " << to_seconds(now_) << " s with "
     << queue_.size() << " pending events (likely livelock)";
  throw WatchdogError(os.str(), now_, processed_);
}

EventId Simulator::schedule_at(Time at, EventFn fn) {
  return queue_.push(std::max(at, now_), std::move(fn));
}

EventId Simulator::schedule_in(Time delay, EventFn fn) {
  return schedule_at(now_ + std::max(delay, kTimeZero), std::move(fn));
}

EventId Simulator::reschedule_at(EventId id, Time at) {
  return queue_.reschedule(id, std::max(at, now_));
}

EventId Simulator::reschedule_in(EventId id, Time delay) {
  return reschedule_at(id, now_ + std::max(delay, kTimeZero));
}

EventId Simulator::reschedule_current_in(Time delay) {
  return queue_.reschedule_current(now_ + std::max(delay, kTimeZero));
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  now_ = queue_.next_time();
  if (watchdog_events_ != 0 && processed_ >= watchdog_events_) {
    watchdog_fail("event budget");
  }
  if (now_ > watchdog_time_) {
    watchdog_fail("sim-time budget");
  }
  ++processed_;
  // Runs the callback in place in its slot: no move of the closure, and
  // reschedule_current_in() can re-arm it with zero churn.
  queue_.run_top();
  return true;
}

void Simulator::run_until(Time deadline) {
  stopped_ = false;
  while (!stopped_ && !queue_.empty() && queue_.next_time() <= deadline) {
    step();
  }
  if (now_ < deadline) now_ = deadline;
}

void Simulator::run() {
  stopped_ = false;
  while (!stopped_ && step()) {
  }
}

}  // namespace cgs::sim
