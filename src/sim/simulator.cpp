#include "sim/simulator.hpp"

#include <algorithm>
#include <sstream>

namespace cgs::sim {

void Simulator::watchdog_fail(const char* budget) const {
  std::ostringstream os;
  os << "simulation watchdog: " << budget << " exceeded after " << processed_
     << " events at sim time " << to_seconds(now_) << " s with "
     << queue_.size() << " pending events (likely livelock)";
  throw WatchdogError(os.str(), now_, processed_);
}

EventId Simulator::reschedule_at(EventId id, Time at) {
  return queue_.reschedule(id, std::max(at, now_));
}

EventId Simulator::reschedule_in(EventId id, Time delay) {
  return reschedule_at(id, now_ + std::max(delay, kTimeZero));
}

EventId Simulator::reschedule_current_in(Time delay) {
  return queue_.reschedule_current(now_ + std::max(delay, kTimeZero));
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  now_ = queue_.next_time();
  if (watchdog_events_ != 0 && processed_ >= watchdog_events_) {
    watchdog_fail("event budget");
  }
  if (now_ > watchdog_time_) {
    watchdog_fail("sim-time budget");
  }
  ++processed_;
  // Runs the callback in place in its slot: no move of the closure, and
  // reschedule_current_in() can re-arm it with zero churn.
  queue_.run_top();
  return true;
}

void Simulator::run_until(Time deadline) {
  stopped_ = false;
  // One next_time() per iteration (step() would peek a second time), and
  // same-deadline packet runs dispatch as one batch.  The watchdog event
  // check can overshoot by up to one batch (≤ PacketBatch::kCapacity − 1
  // events); budgets are sized in millions, so the slack is noise.
  while (!stopped_ && !queue_.empty()) {
    const Time t = queue_.next_time();
    if (t > deadline) break;
    now_ = t;
    if (watchdog_events_ != 0 && processed_ >= watchdog_events_) {
      watchdog_fail("event budget");
    }
    if (now_ > watchdog_time_) {
      watchdog_fail("sim-time budget");
    }
    processed_ += queue_.run_top_batched();
  }
  if (now_ < deadline) now_ = deadline;
}

void Simulator::run() {
  stopped_ = false;
  while (!stopped_ && !queue_.empty()) {
    now_ = queue_.next_time();
    if (watchdog_events_ != 0 && processed_ >= watchdog_events_) {
      watchdog_fail("event budget");
    }
    if (now_ > watchdog_time_) {
      watchdog_fail("sim-time budget");
    }
    processed_ += queue_.run_top_batched();
  }
}

}  // namespace cgs::sim
