#include "sim/simulator.hpp"

#include <algorithm>

namespace cgs::sim {

EventId Simulator::schedule_at(Time at, std::function<void()> fn) {
  return queue_.push(std::max(at, now_), std::move(fn));
}

EventId Simulator::schedule_in(Time delay, std::function<void()> fn) {
  return schedule_at(now_ + std::max(delay, kTimeZero), std::move(fn));
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  auto [at, fn] = queue_.pop();
  now_ = at;
  ++processed_;
  fn();
  return true;
}

void Simulator::run_until(Time deadline) {
  stopped_ = false;
  while (!stopped_ && !queue_.empty() && queue_.next_time() <= deadline) {
    step();
  }
  if (now_ < deadline) now_ = deadline;
}

void Simulator::run() {
  stopped_ = false;
  while (!stopped_ && step()) {
  }
}

}  // namespace cgs::sim
