#include "sim/timer.hpp"

#include <algorithm>

namespace cgs::sim {

void OneShotTimer::arm(Time delay) {
  expiry_ = sim_->now() + std::max(delay, kTimeZero);
  if (id_ != kInvalidEventId) {
    // Re-arm while pending (the per-ACK TCP RTO restart): move the event
    // in place instead of cancel + fresh push.
    const EventId moved = sim_->reschedule_at(id_, expiry_);
    if (moved != kInvalidEventId) {
      id_ = moved;
      return;
    }
  }
  id_ = sim_->schedule_at(expiry_, [this] {
    id_ = kInvalidEventId;
    fn_();
  });
}

void OneShotTimer::cancel() {
  if (id_ != kInvalidEventId) {
    sim_->cancel(id_);
    id_ = kInvalidEventId;
  }
}

void PeriodicTimer::start(bool fire_now) {
  stop();
  if (fire_now) {
    id_ = sim_->schedule_in(kTimeZero, [this] { fire(); });
  } else {
    id_ = sim_->schedule_in(period_, [this] { fire(); });
  }
}

void PeriodicTimer::stop() {
  if (id_ != kInvalidEventId) {
    sim_->cancel(id_);
    id_ = kInvalidEventId;
  }
}

void PeriodicTimer::fire() {
  // Re-arm before the callback so the callback may call stop(). The
  // rescheduled event reuses this closure in its slot: no cancel, no
  // push, no callback reconstruction per tick.
  id_ = sim_->reschedule_current_in(period_);
  fn_();
}

}  // namespace cgs::sim
