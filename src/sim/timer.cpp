#include "sim/timer.hpp"

namespace cgs::sim {

void OneShotTimer::arm(Time delay) {
  cancel();
  expiry_ = sim_->now() + delay;
  id_ = sim_->schedule_in(delay, [this] {
    id_ = kInvalidEventId;
    fn_();
  });
}

void OneShotTimer::cancel() {
  if (id_ != kInvalidEventId) {
    sim_->cancel(id_);
    id_ = kInvalidEventId;
  }
}

void PeriodicTimer::start(bool fire_now) {
  stop();
  if (fire_now) {
    id_ = sim_->schedule_in(kTimeZero, [this] { fire(); });
  } else {
    id_ = sim_->schedule_in(period_, [this] { fire(); });
  }
}

void PeriodicTimer::stop() {
  if (id_ != kInvalidEventId) {
    sim_->cancel(id_);
    id_ = kInvalidEventId;
  }
}

void PeriodicTimer::fire() {
  // Re-arm before the callback so the callback may call stop().
  id_ = sim_->schedule_in(period_, [this] { fire(); });
  fn_();
}

}  // namespace cgs::sim
