// Cancellable discrete-event scheduler with deterministic ordering.
//
// Ties in time are broken by insertion sequence number, so a given seed
// always produces a bit-identical run regardless of scheduler internals.
//
// Event engine v2 (see DESIGN.md §"Event engine v2"):
//  - Two-tier hierarchical timer wheel + far heap.  A 256-slot near wheel
//    at 2^16 ns (~65.5 µs) granularity covers the current 2^24 ns
//    (~16.8 ms) block; a 256-slot coarse wheel at block granularity covers
//    the next ~4.3 s; everything beyond falls back to a flat 4-ary min-heap.
//    Push is O(1) for the horizons that dominate simulation traffic
//    (serialisation, propagation, RTO/pacing, CoDel intervals).
//  - Due events are drained through a small sorted `due_` staging vector
//    (descending, popped from the back), so the exact (time, seq) total
//    order — and therefore every golden-trace hash — is preserved.
//  - Event records live in a slab of fixed-address 64-byte slots threaded
//    on a free list; steady-state push/pop/cancel never touches the
//    allocator.  EventIds are generation-tagged slot references, so
//    cancel() is an O(1) store and stale handles are simply ignored.
//  - Slots are a tagged union: general callbacks are inline SboFunctions,
//    while packet deliveries are typed {sink, packet} events dispatched
//    with no closure construction at all.  Typed packet events return no
//    handle (they can never be cancelled or rescheduled), which is what
//    makes same-deadline batch coalescing provably order-preserving.
//  - Lazy deletion everywhere: cancelled entries stay parked until they
//    surface, with a unified compaction sweep when stale entries outnumber
//    live ones 2:1.
#pragma once

#include <cstdint>
#include <type_traits>
#include <utility>
#include <vector>

#include "net/packet.hpp"
#include "util/arena.hpp"
#include "util/sbo_function.hpp"
#include "util/units.hpp"

namespace cgs::sim {

/// Generation-tagged handle: (slot index + 1) in the high 32 bits, the
/// slot's generation counter in the low 32. Never 0 for a real event.
using EventId = std::uint64_t;
constexpr EventId kInvalidEventId = 0;

/// Move-only callback type; inline capacity covers every closure the
/// simulation schedules (the largest captures a PacketPtr + this, 32
/// bytes).  Alignment is pointer-sized so a slot stays one cache line.
using EventFn = util::SboFunction<40, alignof(void*)>;

class EventQueue {
 public:
  /// With an arena, slot and wheel-node slabs are carved from it instead
  /// of the heap; the arena must outlive the queue.
  explicit EventQueue(util::Arena* arena = nullptr);
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;
  ~EventQueue();

  /// Schedule `fn` at absolute time `at`. Returns a handle for cancel().
  EventId push(Time at, EventFn fn);

  /// push() that constructs the callback directly in its slot.  Scheduling
  /// a lambda through here performs exactly one closure construction — no
  /// SboFunction moves, no manager-thunk calls — which matters at millions
  /// of timer arms per run.
  template <typename F>
    requires std::is_invocable_r_v<void, std::remove_cvref_t<F>&>
  EventId push_emplace(Time at, F&& fn) {
    const std::uint32_t i = alloc_slot();
    Slot& s = slot(i);
    ::new (&s.u.fn) EventFn(std::forward<F>(fn));
    s.kind = Kind::kCallback;
    push_entry(HeapEntry{at, next_seq_++, i, s.gen});
    ++live_count_;
    return make_id(i, s.gen);
  }

  /// Schedule delivery of `pkt` to `sink` at absolute time `at`.  Typed
  /// fast path for the packet pipeline: no closure, no handle — a packet
  /// event can never be cancelled or rescheduled, which licenses the
  /// engine to coalesce same-deadline runs into one PacketBatch.
  void push_packet(Time at, net::PacketSink* sink, net::PacketPtr pkt);

  /// Cancel a pending event; no-op if already fired or cancelled.
  void cancel(EventId id);

  /// Move a *pending* event to a new time without touching its callback.
  /// Returns the replacement handle (the old one becomes stale), or
  /// kInvalidEventId if `id` no longer names a pending event.
  EventId reschedule(EventId id, Time at);

  /// From inside a callback running under run_top(): re-push the current
  /// event at `at`, reusing its stored callback in place (no destroy, no
  /// reconstruct, no allocation). Returns the handle for the new firing.
  EventId reschedule_current(Time at);

  [[nodiscard]] bool empty() const { return live_count_ == 0; }
  [[nodiscard]] std::size_t size() const { return live_count_; }

  /// Time of the earliest pending event. Requires !empty().
  [[nodiscard]] Time next_time() {
    ensure_due();
    return due_.back().at;
  }

  /// Pop and return the earliest event. Requires !empty().  A typed packet
  /// event comes back wrapped in an equivalent delivery closure.
  struct Fired {
    Time at;
    EventFn fn;
  };
  Fired pop();

  /// Pop the earliest event and invoke its callback in place (the slot is
  /// only released after the callback returns, enabling
  /// reschedule_current()). Requires !empty().
  void run_top();

  /// Like run_top(), but when the earliest event is a typed packet event,
  /// coalesce the maximal run of consecutive same-deadline events bound
  /// for the same sink (up to PacketBatch::kCapacity) into one
  /// handle_batch() dispatch.  Returns the number of events consumed.
  /// Requires !empty().
  std::size_t run_top_batched();

  /// Total events ever pushed (for stats/tests). Counts initial pushes
  /// and reschedules alike, matching the sequence-number stream.
  [[nodiscard]] std::uint64_t pushed_total() const { return next_seq_ - 1; }

 private:
  // ---- slot slab ---------------------------------------------------------

  /// Typed payload of a packet-delivery event.
  struct PacketEvent {
    net::PacketPtr pkt;
    net::PacketSink* sink;
  };

  enum class Kind : std::uint8_t { kEmpty, kCallback, kPacket };

  struct alignas(64) Slot {
    union Payload {
      Payload() {}   // members are constructed/destroyed manually,
      ~Payload() {}  // keyed by the slot's Kind tag
      EventFn fn;
      PacketEvent pe;
    } u;
    std::uint32_t gen = 0;
    std::uint32_t next_free = 0;
    Kind kind = Kind::kEmpty;
  };
  static_assert(sizeof(EventFn) == 48);
  static_assert(sizeof(PacketEvent) == 32);
  static_assert(sizeof(Slot) == 64 && alignof(Slot) == 64,
                "one event record per cache line");

  // ---- scheduling entries ------------------------------------------------

  /// One scheduled firing: where it sits (due_/far_) or what a wheel node
  /// unpacks to.  (at, seq) is the total order; (slot, gen) validates
  /// against lazy deletion.
  struct HeapEntry {
    Time at;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t gen;
  };
  static_assert(sizeof(HeapEntry) == 24);

  /// Wheel-bucket chain node; indexes (not pointers) so slabs can grow.
  struct WheelNode {
    Time at;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t gen;
    std::uint32_t next;
    std::uint32_t pad_ = 0;
  };
  static_assert(sizeof(WheelNode) == 32);

  // ---- geometry ----------------------------------------------------------

  static constexpr std::uint32_t kChunkShift = 7;  // 128 slots per chunk
  static constexpr std::uint32_t kChunkSize = 1u << kChunkShift;
  static constexpr std::uint32_t kChunkMask = kChunkSize - 1;
  static constexpr std::uint32_t kNoSlot = 0xffffffffu;
  static constexpr std::uint32_t kNilNode = 0xffffffffu;
  static constexpr std::uint32_t kNodeChunkShift = 8;  // 256 nodes per chunk
  static constexpr std::uint32_t kNodeChunkSize = 1u << kNodeChunkShift;
  static constexpr std::uint32_t kNodeChunkMask = kNodeChunkSize - 1;

  static constexpr int kNearShift = 16;  // near slot = 2^16 ns ≈ 65.5 µs
  static constexpr int kWheelBits = 8;   // 256 buckets per wheel
  static constexpr int kWheelSize = 1 << kWheelBits;
  static constexpr int kWheelMask = kWheelSize - 1;
  static constexpr int kCoarseShift = kNearShift + kWheelBits;  // ~16.8 ms

  [[nodiscard]] Slot& slot(std::uint32_t i) {
    return chunks_[i >> kChunkShift][i & kChunkMask];
  }
  [[nodiscard]] WheelNode& node(std::uint32_t i) {
    return node_chunks_[i >> kNodeChunkShift][i & kNodeChunkMask];
  }
  [[nodiscard]] static EventId make_id(std::uint32_t slot_index,
                                       std::uint32_t gen) {
    return (EventId(slot_index) + 1) << 32 | gen;
  }

  [[nodiscard]] static std::int64_t near_index(Time at) {
    return at.count() >> kNearShift;
  }
  [[nodiscard]] static std::int64_t block_index(Time at) {
    return at.count() >> kCoarseShift;
  }

  // Free-list pop/push are the per-event allocator; they must inline into
  // push/pop paths, so only slab growth lives out of line.
  std::uint32_t alloc_slot() {
    if (free_head_ == kNoSlot) grow_slots();
    const std::uint32_t i = free_head_;
    free_head_ = slot(i).next_free;
    return i;
  }
  void grow_slots();
  void free_slot(std::uint32_t i) {
    Slot& s = slot(i);
    destroy_payload(s);
    s.next_free = free_head_;
    free_head_ = i;
  }
  void destroy_payload(Slot& s) {
    switch (s.kind) {
      case Kind::kCallback:
        s.u.fn.~EventFn();
        break;
      case Kind::kPacket:
        s.u.pe.~PacketEvent();
        break;
      case Kind::kEmpty:
        break;
    }
    s.kind = Kind::kEmpty;
  }
  [[nodiscard]] bool stale(const HeapEntry& e) {
    return slot(e.slot).gen != e.gen;
  }

  static bool before(const HeapEntry& a, const HeapEntry& b) {
    if (a.at != b.at) return a.at < b.at;
    return a.seq < b.seq;
  }

  // ---- routing / draining ------------------------------------------------

  /// Route an entry (its seq already claimed) to due_, a wheel bucket, or
  /// the far heap, based on its horizon.
  void push_entry(const HeapEntry& e);
  void due_insert(const HeapEntry& e);
  /// Refill due_ from the wheels/far heap until it holds the earliest
  /// pending event.  No-op while due_ already has entries.
  void ensure_due() {
    while (!due_.empty() && stale(due_.back())) {
      due_.pop_back();
      --entries_;
    }
    if (due_.empty()) refill_due();
  }
  void refill_due();
  /// Collect one near bucket into due_ (filter stale, sort by (at, seq)).
  void collect_near(int bucket);
  /// Jump the wheels forward to `target_block`, scattering its coarse
  /// bucket into the near wheel and migrating far-heap entries that the
  /// coarse horizon now covers.
  void advance_to_block(std::int64_t target_block);
  /// Pop due_.back() (already ensured non-stale) and dispatch it in place:
  /// the single-event tail shared by run_top() and run_top_batched().
  void dispatch_top();

  std::uint32_t alloc_node() {
    if (node_free_head_ == kNilNode) grow_nodes();
    const std::uint32_t i = node_free_head_;
    node_free_head_ = node(i).next;
    return i;
  }
  void grow_nodes();
  void free_node(std::uint32_t i) {
    node(i).next = node_free_head_;
    node_free_head_ = i;
  }
  void bucket_push(std::uint32_t* head, std::uint64_t* bitmap, int bucket,
                   const HeapEntry& e) {
    const std::uint32_t n = alloc_node();
    WheelNode& wn = node(n);
    wn.at = e.at;
    wn.seq = e.seq;
    wn.slot = e.slot;
    wn.gen = e.gen;
    wn.next = head[bucket];
    head[bucket] = n;
    bitmap[bucket >> 6] |= 1ull << (bucket & 63);
  }

  void far_push(const HeapEntry& e);
  void far_pop_root();
  void far_sift_up(std::size_t i);
  void far_sift_down(std::size_t i);
  void far_drop_stale();

  void maybe_compact();
  void compact();

  // ---- state -------------------------------------------------------------

  util::Arena* arena_;

  std::vector<Slot*> chunks_;
  std::uint32_t free_head_ = kNoSlot;
  std::uint32_t slot_count_ = 0;

  std::vector<WheelNode*> node_chunks_;
  std::uint32_t node_free_head_ = kNilNode;
  std::uint32_t node_count_ = 0;

  // Wheel position: cur_near_ is the next near slot (global index, not
  // modular) to drain; cur_block_ == cur_near_ >> kWheelBits.  Everything
  // strictly before cur_near_ lives in due_ (or has fired).
  std::int64_t cur_near_ = 0;
  std::int64_t cur_block_ = 0;

  std::uint32_t near_[kWheelSize];
  std::uint32_t coarse_[kWheelSize];
  std::uint64_t near_bm_[kWheelSize / 64] = {};
  std::uint64_t coarse_bm_[kWheelSize / 64] = {};

  /// Earliest pending events, sorted descending by (at, seq): back() is
  /// the global minimum.  Strictly earlier than anything in the wheels.
  std::vector<HeapEntry> due_;
  /// Events beyond the coarse horizon (≳4.3 s ahead): flat 4-ary min-heap.
  std::vector<HeapEntry> far_;
  /// Scratch for draining buckets without reallocating.
  std::vector<HeapEntry> scratch_;

  std::uint64_t next_seq_ = 1;
  std::size_t live_count_ = 0;
  /// Entries stored across due_/wheels/far_, stale included (compaction
  /// trigger).
  std::size_t entries_ = 0;

  // State for the event currently executing under run_top().
  std::uint32_t running_slot_ = kNoSlot;
  bool resched_pending_ = false;
  Time resched_at_ = kTimeZero;
  std::uint64_t resched_seq_ = 0;
};

}  // namespace cgs::sim
