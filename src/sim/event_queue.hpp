// Cancellable discrete-event priority queue with deterministic ordering.
//
// Ties in time are broken by insertion sequence number, so a given seed
// always produces a bit-identical run regardless of heap internals.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "util/units.hpp"

namespace cgs::sim {

using EventId = std::uint64_t;
constexpr EventId kInvalidEventId = 0;

class EventQueue {
 public:
  /// Schedule `fn` at absolute time `at`. Returns a handle for cancel().
  EventId push(Time at, std::function<void()> fn);

  /// Cancel a pending event; no-op if already fired or cancelled.
  void cancel(EventId id);

  [[nodiscard]] bool empty() const { return live_count_ == 0; }
  [[nodiscard]] std::size_t size() const { return live_count_; }

  /// Time of the earliest pending event. Requires !empty().
  [[nodiscard]] Time next_time();

  /// Pop and return the earliest event. Requires !empty().
  struct Fired {
    Time at;
    std::function<void()> fn;
  };
  Fired pop();

  /// Total events ever pushed (for stats/tests).
  [[nodiscard]] std::uint64_t pushed_total() const { return next_seq_ - 1; }

 private:
  struct Entry {
    Time at;
    EventId seq;
    // Ordered for a min-heap via std::greater.
    friend bool operator>(const Entry& a, const Entry& b) {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  void drop_cancelled();

  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  // fn storage separate from heap entries so cancel() can free the closure.
  std::unordered_map<EventId, std::function<void()>> fns_;
  EventId next_seq_ = 1;
  std::size_t live_count_ = 0;
};

}  // namespace cgs::sim
