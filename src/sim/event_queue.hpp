// Cancellable discrete-event priority queue with deterministic ordering.
//
// Ties in time are broken by insertion sequence number, so a given seed
// always produces a bit-identical run regardless of heap internals.
//
// Hot-path design (see DESIGN.md §"Performance architecture"):
//  - Event records live in a slab of fixed-address chunks threaded on a
//    free list; steady-state push/pop/cancel never touches the allocator.
//  - EventIds are generation-tagged slot references, so cancel() is an
//    O(1) array store (no hashing) and stale handles are simply ignored.
//  - The heap is a flat 4-ary min-heap with lazy deletion: cancelled
//    events stay in the heap until they surface (or a compaction sweep
//    removes them when stale entries outnumber live ones).
//  - Callbacks are SboFunction: captures up to 48 bytes are stored inline
//    in the slot, so scheduling a lambda allocates nothing.
#pragma once

#include <cstdint>
#include <vector>

#include "util/sbo_function.hpp"
#include "util/units.hpp"

namespace cgs::sim {

/// Generation-tagged handle: (slot index + 1) in the high 32 bits, the
/// slot's generation counter in the low 32. Never 0 for a real event.
using EventId = std::uint64_t;
constexpr EventId kInvalidEventId = 0;

/// Move-only callback type; inline capacity covers every closure the
/// simulation schedules (the largest captures a PacketPtr + this).
using EventFn = util::SboFunction<48>;

class EventQueue {
 public:
  EventQueue();
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;
  ~EventQueue();

  /// Schedule `fn` at absolute time `at`. Returns a handle for cancel().
  EventId push(Time at, EventFn fn);

  /// Cancel a pending event; no-op if already fired or cancelled.
  void cancel(EventId id);

  /// Move a *pending* event to a new time without touching its callback.
  /// Returns the replacement handle (the old one becomes stale), or
  /// kInvalidEventId if `id` no longer names a pending event.
  EventId reschedule(EventId id, Time at);

  /// From inside a callback running under run_top(): re-push the current
  /// event at `at`, reusing its stored callback in place (no destroy, no
  /// reconstruct, no allocation). Returns the handle for the new firing.
  EventId reschedule_current(Time at);

  [[nodiscard]] bool empty() const { return live_count_ == 0; }
  [[nodiscard]] std::size_t size() const { return live_count_; }

  /// Time of the earliest pending event. Requires !empty().
  [[nodiscard]] Time next_time();

  /// Pop and return the earliest event. Requires !empty().
  struct Fired {
    Time at;
    EventFn fn;
  };
  Fired pop();

  /// Pop the earliest event and invoke its callback in place (the slot is
  /// only released after the callback returns, enabling
  /// reschedule_current()). Requires !empty().
  void run_top();

  /// Total events ever pushed (for stats/tests). Counts initial pushes
  /// and reschedules alike, matching the sequence-number stream.
  [[nodiscard]] std::uint64_t pushed_total() const { return next_seq_ - 1; }

 private:
  struct Slot {
    EventFn fn;
    std::uint32_t gen = 0;
    std::uint32_t next_free = 0;
  };

  struct HeapEntry {
    Time at;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t gen;
  };

  static constexpr std::uint32_t kChunkShift = 7;  // 128 slots per chunk
  static constexpr std::uint32_t kChunkSize = 1u << kChunkShift;
  static constexpr std::uint32_t kChunkMask = kChunkSize - 1;
  static constexpr std::uint32_t kNoSlot = 0xffffffffu;

  [[nodiscard]] Slot& slot(std::uint32_t i) {
    return chunks_[i >> kChunkShift][i & kChunkMask];
  }
  [[nodiscard]] static EventId make_id(std::uint32_t slot_index,
                                       std::uint32_t gen) {
    return (EventId(slot_index) + 1) << 32 | gen;
  }

  std::uint32_t alloc_slot();
  void free_slot(std::uint32_t i);
  [[nodiscard]] bool stale(const HeapEntry& e) {
    return slot(e.slot).gen != e.gen;
  }

  static bool before(const HeapEntry& a, const HeapEntry& b) {
    if (a.at != b.at) return a.at < b.at;
    return a.seq < b.seq;
  }
  void heap_push(const HeapEntry& e);
  void heap_pop_root();
  void sift_up(std::size_t i);
  void sift_down(std::size_t i);
  void drop_stale();
  void maybe_compact();

  std::vector<Slot*> chunks_;
  std::uint32_t free_head_ = kNoSlot;
  std::uint32_t slot_count_ = 0;

  std::vector<HeapEntry> heap_;
  std::uint64_t next_seq_ = 1;
  std::size_t live_count_ = 0;

  // State for the event currently executing under run_top().
  std::uint32_t running_slot_ = kNoSlot;
  bool resched_pending_ = false;
  Time resched_at_ = kTimeZero;
  std::uint64_t resched_seq_ = 0;
};

}  // namespace cgs::sim
