// The simulation clock and scheduler every component hangs off.
//
// Single-threaded, no global state: construct one Simulator per run; tests
// run thousands of them in-process.
#pragma once

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "sim/event_queue.hpp"
#include "util/units.hpp"

namespace cgs::sim {

/// Thrown by step()/run*() when a watchdog budget is exceeded: the run is
/// almost certainly livelocked (events rescheduling each other without
/// making progress), so abort with a diagnostic instead of spinning.
/// Carries the trip point as structured fields so failure triage and
/// deterministic replay can report sim-time without parsing what().
class WatchdogError : public std::runtime_error {
 public:
  explicit WatchdogError(const std::string& msg, Time sim_time = kTimeZero,
                         std::uint64_t events_processed = 0,
                         double wall_budget_s = 0, double wall_elapsed_s = 0)
      : std::runtime_error(msg),
        sim_time_(sim_time),
        events_(events_processed),
        wall_budget_s_(wall_budget_s),
        wall_elapsed_s_(wall_elapsed_s) {}

  /// Simulation clock when the budget tripped.
  [[nodiscard]] Time sim_time() const { return sim_time_; }
  /// Events processed when the budget tripped.
  [[nodiscard]] std::uint64_t events_processed() const { return events_; }
  /// Wall-clock budget in seconds (0 when a sim budget tripped, not wall).
  [[nodiscard]] double wall_budget_s() const { return wall_budget_s_; }
  /// Wall-clock seconds actually elapsed when the budget tripped.
  [[nodiscard]] double wall_elapsed_s() const { return wall_elapsed_s_; }

 private:
  Time sim_time_ = kTimeZero;
  std::uint64_t events_ = 0;
  double wall_budget_s_ = 0;
  double wall_elapsed_s_ = 0;
};

class Simulator {
 public:
  /// With an arena, the event queue's slabs are carved from it instead of
  /// the heap; the arena must outlive the simulator.
  explicit Simulator(util::Arena* arena = nullptr) : queue_(arena) {}
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulation time (duration since start).
  [[nodiscard]] Time now() const { return now_; }

  /// Schedule at absolute simulation time; clamps to `now` if in the past.
  /// The callable is constructed directly in its event slot (one closure
  /// construction, no SboFunction move chain).
  template <typename F>
    requires std::is_invocable_r_v<void, std::remove_cvref_t<F>&>
  EventId schedule_at(Time at, F&& fn) {
    return queue_.push_emplace(std::max(at, now_), std::forward<F>(fn));
  }

  /// Schedule `delay` from now (negative delays clamp to zero).
  template <typename F>
    requires std::is_invocable_r_v<void, std::remove_cvref_t<F>&>
  EventId schedule_in(Time delay, F&& fn) {
    return schedule_at(now_ + std::max(delay, kTimeZero), std::forward<F>(fn));
  }

  /// Schedule delivery of `pkt` to `sink` at an absolute time (clamped to
  /// `now`).  Typed fast path: no closure, no handle, and same-deadline
  /// runs to one sink may be dispatched as a single PacketBatch.
  void push_packet_at(Time at, net::PacketSink* sink, net::PacketPtr pkt) {
    queue_.push_packet(std::max(at, now_), sink, std::move(pkt));
  }

  /// push_packet_at with a now-relative delay (clamped to zero).
  void push_packet_in(Time delay, net::PacketSink* sink, net::PacketPtr pkt) {
    push_packet_at(now_ + std::max(delay, kTimeZero), sink, std::move(pkt));
  }

  void cancel(EventId id) { queue_.cancel(id); }

  /// Move a pending event to a new absolute time (clamped to `now`),
  /// keeping its callback in place. Returns the replacement handle, or
  /// kInvalidEventId if the event already fired or was cancelled.
  EventId reschedule_at(EventId id, Time at);

  /// reschedule_at with a now-relative delay (clamped to zero).
  EventId reschedule_in(EventId id, Time delay);

  /// From inside an event callback: re-arm the currently executing event
  /// `delay` from now, reusing its stored callback with no allocation or
  /// callback churn (the PeriodicTimer fast path).
  EventId reschedule_current_in(Time delay);

  /// Run events until the queue empties or `deadline` passes. The clock is
  /// left at min(deadline, time of last event).
  void run_until(Time deadline);

  /// Run until the event queue is empty.
  void run();

  /// Process a single event if one exists; returns false when queue empty.
  bool step();

  /// Request run()/run_until() to return after the current event.
  void stop() { stopped_ = true; }

  /// Arm the watchdog: step()/run*() throw WatchdogError once more than
  /// `max_events` events have been processed, the clock passes
  /// `max_sim_time`, or more than `max_wall_seconds` of real time elapse
  /// while running.  0 / kTimeInfinite / 0 disable the respective budget.
  ///
  /// Event and sim-time budgets are exact and deterministic.  The wall
  /// budget is environmental by nature (it depends on host speed), so it is
  /// checked only every kWallCheckInterval events to keep steady_clock
  /// reads off the hot path; its clock starts at the first event processed
  /// after arming.  Unlike the other two budgets it catches livelocks that
  /// burn real time without burning events — a handler spinning inside one
  /// callback.
  void set_watchdog(std::uint64_t max_events, Time max_sim_time = kTimeInfinite,
                    double max_wall_seconds = 0) {
    watchdog_events_ = max_events;
    watchdog_time_ = max_sim_time;
    watchdog_wall_s_ = max_wall_seconds;
    wall_armed_ = max_wall_seconds > 0;
    wall_started_ = false;
    wall_countdown_ = 0;  // first check starts the wall clock
    wall_interval_ = 64;
  }

  [[nodiscard]] std::uint64_t watchdog_event_budget() const {
    return watchdog_events_;
  }
  [[nodiscard]] double watchdog_wall_budget_s() const {
    return watchdog_wall_s_;
  }

  [[nodiscard]] std::size_t pending_events() const { return queue_.size(); }
  [[nodiscard]] std::uint64_t processed_events() const { return processed_; }

 private:
  /// Bounds on the adaptive check interval for the wall budget: between
  /// steady_clock reads at least kWallIntervalMin and at most
  /// kWallIntervalMax events pass.  The interval doubles while checks land
  /// closer together than budget/16 of wall time (fast events: one clock
  /// read per 4096 events) and halves when they land further apart than
  /// budget/8 (slow events: detection latency stays a small fraction of
  /// the budget either way).
  static constexpr std::int64_t kWallIntervalMin = 1;
  static constexpr std::int64_t kWallIntervalMax = 4096;

  [[noreturn]] void watchdog_fail(const char* budget) const;
  /// Refill the countdown (adaptively), lazily start the wall clock, and
  /// throw when the elapsed wall time exceeds the budget.
  void check_wall_budget();

  EventQueue queue_;
  Time now_ = kTimeZero;
  std::uint64_t processed_ = 0;
  bool stopped_ = false;
  std::uint64_t watchdog_events_ = 0;   // 0 = no event budget
  Time watchdog_time_ = kTimeInfinite;  // kTimeInfinite = no time budget
  double watchdog_wall_s_ = 0;          // 0 = no wall budget
  bool wall_armed_ = false;
  bool wall_started_ = false;
  std::int64_t wall_countdown_ = 0;
  std::int64_t wall_interval_ = 64;
  std::chrono::steady_clock::time_point wall_start_{};
  std::chrono::steady_clock::time_point wall_last_check_{};
};

}  // namespace cgs::sim
