// Timer helpers on top of Simulator: a one-shot rearmable timer (TCP RTO)
// and a periodic timer (frame ticks, feedback intervals, samplers).
#pragma once

#include <functional>

#include "sim/simulator.hpp"

namespace cgs::sim {

/// One-shot timer that can be (re)armed and cancelled. Safe to re-arm from
/// inside its own callback.
class OneShotTimer {
 public:
  OneShotTimer(Simulator& sim, std::function<void()> fn)
      : sim_(&sim), fn_(std::move(fn)) {}
  ~OneShotTimer() { cancel(); }
  OneShotTimer(const OneShotTimer&) = delete;
  OneShotTimer& operator=(const OneShotTimer&) = delete;

  /// Arm (or re-arm) to fire `delay` from now.
  void arm(Time delay);
  void cancel();
  [[nodiscard]] bool armed() const { return id_ != kInvalidEventId; }
  /// Absolute expiry time if armed.
  [[nodiscard]] Time expiry() const { return expiry_; }

 private:
  Simulator* sim_;
  std::function<void()> fn_;
  EventId id_ = kInvalidEventId;
  Time expiry_ = kTimeZero;
};

/// Fixed-period repeating timer. Starts on start(), stops on stop() or
/// destruction. The callback runs once per period, first fire after one
/// period (or immediately if `fire_now`).
class PeriodicTimer {
 public:
  PeriodicTimer(Simulator& sim, Time period, std::function<void()> fn)
      : sim_(&sim), period_(period), fn_(std::move(fn)) {}
  ~PeriodicTimer() { stop(); }
  PeriodicTimer(const PeriodicTimer&) = delete;
  PeriodicTimer& operator=(const PeriodicTimer&) = delete;

  void start(bool fire_now = false);
  void stop();
  [[nodiscard]] bool running() const { return id_ != kInvalidEventId; }
  [[nodiscard]] Time period() const { return period_; }
  /// Takes effect from the next rearm.
  void set_period(Time period) { period_ = period; }

 private:
  void fire();

  Simulator* sim_;
  Time period_;
  std::function<void()> fn_;
  EventId id_ = kInvalidEventId;
};

}  // namespace cgs::sim
