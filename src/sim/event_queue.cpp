#include "sim/event_queue.hpp"

#include <cassert>

namespace cgs::sim {

EventQueue::EventQueue() = default;

EventQueue::~EventQueue() {
  for (Slot* chunk : chunks_) delete[] chunk;
}

std::uint32_t EventQueue::alloc_slot() {
  if (free_head_ == kNoSlot) {
    // Grow the slab by one fixed-address chunk; existing slots never move,
    // so callbacks executing in place stay valid while new events are
    // scheduled. Chunks are threaded onto the free list lowest-index-first
    // to keep slot assignment deterministic.
    auto* chunk = new Slot[kChunkSize];
    chunks_.push_back(chunk);
    const std::uint32_t base = slot_count_;
    slot_count_ += kChunkSize;
    for (std::uint32_t i = kChunkSize; i-- > 0;) {
      chunk[i].next_free = free_head_;
      free_head_ = base + i;
    }
  }
  const std::uint32_t i = free_head_;
  free_head_ = slot(i).next_free;
  return i;
}

void EventQueue::free_slot(std::uint32_t i) {
  Slot& s = slot(i);
  s.fn.reset();
  s.next_free = free_head_;
  free_head_ = i;
}

EventId EventQueue::push(Time at, EventFn fn) {
  const std::uint32_t i = alloc_slot();
  Slot& s = slot(i);
  s.fn = std::move(fn);
  heap_push(HeapEntry{at, next_seq_++, i, s.gen});
  ++live_count_;
  return make_id(i, s.gen);
}

void EventQueue::cancel(EventId id) {
  if (id == kInvalidEventId) return;
  const std::uint32_t i = std::uint32_t(id >> 32) - 1;
  if (i >= slot_count_) return;
  Slot& s = slot(i);
  if (s.gen != std::uint32_t(id)) return;  // already fired or cancelled
  if (i == running_slot_) {
    // Cancelling the in-flight reschedule of the currently executing
    // event: just drop the pending re-push; the slot is released (and its
    // callback destroyed) only after the callback returns.
    resched_pending_ = false;
    return;
  }
  ++s.gen;  // heap entries for this firing are now stale
  free_slot(i);
  --live_count_;
  maybe_compact();
}

EventId EventQueue::reschedule(EventId id, Time at) {
  if (id == kInvalidEventId) return kInvalidEventId;
  const std::uint32_t i = std::uint32_t(id >> 32) - 1;
  if (i >= slot_count_) return kInvalidEventId;
  Slot& s = slot(i);
  if (s.gen != std::uint32_t(id)) return kInvalidEventId;
  if (i == running_slot_) {
    resched_at_ = at;
    resched_seq_ = next_seq_++;
    resched_pending_ = true;
    return id;
  }
  ++s.gen;  // the old heap entry goes stale; lazy deletion reaps it
  heap_push(HeapEntry{at, next_seq_++, i, s.gen});
  maybe_compact();
  return make_id(i, s.gen);
}

EventId EventQueue::reschedule_current(Time at) {
  assert(running_slot_ != kNoSlot &&
         "reschedule_current() outside a run_top() callback");
  resched_at_ = at;
  // The sequence number is claimed now, not at the deferred heap push, so
  // events scheduled later in the same callback order after this one —
  // identical to the old cancel+push timer behaviour.
  resched_seq_ = next_seq_++;
  resched_pending_ = true;
  return make_id(running_slot_, slot(running_slot_).gen);
}

void EventQueue::drop_stale() {
  while (!heap_.empty() && stale(heap_[0])) heap_pop_root();
}

Time EventQueue::next_time() {
  drop_stale();
  assert(!heap_.empty() && "next_time() on empty queue");
  return heap_[0].at;
}

EventQueue::Fired EventQueue::pop() {
  drop_stale();
  assert(!heap_.empty() && "pop() on empty queue");
  const HeapEntry top = heap_[0];
  heap_pop_root();
  Slot& s = slot(top.slot);
  ++s.gen;
  --live_count_;
  Fired fired{top.at, std::move(s.fn)};
  free_slot(top.slot);
  return fired;
}

void EventQueue::run_top() {
  drop_stale();
  assert(!heap_.empty() && "run_top() on empty queue");
  const HeapEntry top = heap_[0];
  heap_pop_root();
  Slot& s = slot(top.slot);
  ++s.gen;  // the fired handle is stale from here on (cancel = no-op)
  --live_count_;
  running_slot_ = top.slot;
  resched_pending_ = false;
  s.fn();  // slot storage is chunk-stable; pushes inside never move it
  running_slot_ = kNoSlot;
  if (resched_pending_) {
    // In-place periodic path: the callback stays in its slot untouched.
    heap_push(HeapEntry{resched_at_, resched_seq_, top.slot, s.gen});
    ++live_count_;
  } else {
    free_slot(top.slot);
  }
}

void EventQueue::heap_push(const HeapEntry& e) {
  heap_.push_back(e);
  sift_up(heap_.size() - 1);
}

void EventQueue::heap_pop_root() {
  heap_[0] = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);
}

void EventQueue::sift_up(std::size_t i) {
  const HeapEntry e = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) >> 2;
    if (!before(e, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = e;
}

void EventQueue::sift_down(std::size_t i) {
  const std::size_t n = heap_.size();
  const HeapEntry e = heap_[i];
  for (;;) {
    const std::size_t first = (i << 2) + 1;
    if (first >= n) break;
    const std::size_t last = first + 4 < n ? first + 4 : n;
    std::size_t best = first;
    for (std::size_t c = first + 1; c < last; ++c) {
      if (before(heap_[c], heap_[best])) best = c;
    }
    if (!before(heap_[best], e)) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = e;
}

void EventQueue::maybe_compact() {
  // Lazy deletion can leave the heap dominated by stale entries under
  // cancel-heavy workloads (RTO timers re-armed per ACK). When stale
  // entries outnumber live ones by 2x, sweep and rebuild in O(n).
  if (heap_.size() < 64 || heap_.size() < 2 * live_count_) return;
  std::size_t kept = 0;
  for (const HeapEntry& e : heap_) {
    if (!stale(e)) heap_[kept++] = e;
  }
  heap_.resize(kept);
  if (kept > 1) {
    for (std::size_t i = ((kept - 2) >> 2) + 1; i-- > 0;) sift_down(i);
  }
}

}  // namespace cgs::sim
